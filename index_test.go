package ode

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

type Employee struct {
	Name string
	Dept string
	Age  int
}

func TestIndexBasicLookup(t *testing.T) {
	db := openDB(t, nil)
	emps, _ := Register[Employee](db, "Employee")
	byDept, err := emps.EnsureIndex("dept", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Dept), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error {
		for i, e := range []Employee{
			{"alice", "eng", 30}, {"bob", "eng", 40},
			{"carol", "sales", 35}, {"dave", "ops", 50},
		} {
			if _, err := emps.Create(tx, &e); err != nil {
				return fmt.Errorf("create %d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		hits, err := byDept.Lookup(tx, KeyString("eng"))
		if err != nil {
			return err
		}
		if len(hits) != 2 {
			t.Fatalf("eng lookup: %d hits", len(hits))
		}
		for _, h := range hits {
			v, err := h.Deref(tx)
			if err != nil || v.Dept != "eng" {
				t.Fatalf("hit %v: %+v %v", h, v, err)
			}
		}
		none, err := byDept.Lookup(tx, KeyString("legal"))
		if err != nil || len(none) != 0 {
			t.Fatalf("legal lookup: %d %v", len(none), err)
		}
		n, err := byDept.Count(tx)
		if err != nil || n != 4 {
			t.Fatalf("count: %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := byDept.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFollowsLatestVersion(t *testing.T) {
	db := openDB(t, &Options{Policy: DeltaChain})
	emps, _ := Register[Employee](db, "Employee")
	byDept, err := emps.EnsureIndex("dept", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Dept), true
	})
	if err != nil {
		t.Fatal(err)
	}
	var p Ptr[Employee]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = emps.Create(tx, &Employee{Name: "alice", Dept: "eng"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A new version moves alice to sales: the index must follow the
	// generic reference (latest version), not the old state.
	if err := db.Update(func(tx *Tx) error {
		nv, err := p.NewVersion(tx)
		if err != nil {
			return err
		}
		return nv.Modify(tx, func(e *Employee) { e.Dept = "sales" })
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		eng, _ := byDept.Lookup(tx, KeyString("eng"))
		sales, _ := byDept.Lookup(tx, KeyString("sales"))
		if len(eng) != 0 || len(sales) != 1 {
			t.Fatalf("after move: eng=%d sales=%d", len(eng), len(sales))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Deleting the sales version re-binds latest to the eng version; the
	// index must swing back.
	if err := db.Update(func(tx *Tx) error {
		latest, err := tx.Latest(p.OID())
		if err != nil {
			return err
		}
		return tx.DeleteVersion(p.OID(), latest)
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		eng, _ := byDept.Lookup(tx, KeyString("eng"))
		sales, _ := byDept.Lookup(tx, KeyString("sales"))
		if len(eng) != 1 || len(sales) != 0 {
			t.Fatalf("after version delete: eng=%d sales=%d", len(eng), len(sales))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Deleting the object removes the entry.
	if err := db.Update(func(tx *Tx) error { return p.Delete(tx) }); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		n, err := byDept.Count(tx)
		if err != nil || n != 0 {
			t.Fatalf("after object delete: %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := byDept.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRangeOrder(t *testing.T) {
	db := openDB(t, nil)
	emps, _ := Register[Employee](db, "Employee")
	byAge, err := emps.EnsureIndex("age", func(e *Employee) ([]byte, bool) {
		return KeyInt(int64(e.Age)), true
	})
	if err != nil {
		t.Fatal(err)
	}
	ages := []int{52, 17, -3, 40, 0, 99, 23}
	if err := db.Update(func(tx *Tx) error {
		for _, a := range ages {
			if _, err := emps.Create(tx, &Employee{Name: fmt.Sprintf("p%d", a), Age: a}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := db.View(func(tx *Tx) error {
		return byAge.Range(tx, KeyInt(0), KeyInt(53), func(_ []byte, p Ptr[Employee]) (bool, error) {
			v, err := p.Deref(tx)
			if err != nil {
				return false, err
			}
			got = append(got, v.Age)
			return true, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 17, 23, 40, 52}
	if len(got) != len(want) {
		t.Fatalf("range got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range order %v want %v", got, want)
		}
	}
}

func TestIndexBackfillAndPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	emps, _ := Register[Employee](db, "Employee")
	// Data first, index later: backfill must cover the extent.
	if err := db.Update(func(tx *Tx) error {
		for i := 0; i < 20; i++ {
			dept := "even"
			if i%2 == 1 {
				dept = "odd"
			}
			if _, err := emps.Create(tx, &Employee{Name: fmt.Sprintf("e%d", i), Dept: dept}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	byDept, err := emps.EnsureIndex("dept", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Dept), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		hits, err := byDept.Lookup(tx, KeyString("odd"))
		if err != nil || len(hits) != 10 {
			t.Fatalf("backfill: %d %v", len(hits), err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: entries persist, backfill is skipped, maintenance resumes.
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	emps2, _ := Register[Employee](db2, "Employee")
	byDept2, err := emps2.EnsureIndex("dept", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Dept), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Update(func(tx *Tx) error {
		_, err := emps2.Create(tx, &Employee{Name: "new", Dept: "odd"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db2.View(func(tx *Tx) error {
		hits, err := byDept2.Lookup(tx, KeyString("odd"))
		if err != nil || len(hits) != 11 {
			t.Fatalf("after reopen: %d %v", len(hits), err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialIndex(t *testing.T) {
	db := openDB(t, nil)
	emps, _ := Register[Employee](db, "Employee")
	adults, err := emps.EnsureIndex("adults", func(e *Employee) ([]byte, bool) {
		if e.Age < 18 {
			return nil, false
		}
		return KeyString(e.Name), true
	})
	if err != nil {
		t.Fatal(err)
	}
	var kid Ptr[Employee]
	if err := db.Update(func(tx *Tx) error {
		var err error
		if _, err = emps.Create(tx, &Employee{Name: "adult", Age: 30}); err != nil {
			return err
		}
		kid, err = emps.Create(tx, &Employee{Name: "kid", Age: 10})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		n, err := adults.Count(tx)
		if err != nil || n != 1 {
			t.Fatalf("partial count: %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The kid grows up: a new version crosses the predicate boundary and
	// must enter the index.
	if err := db.Update(func(tx *Tx) error {
		nv, err := kid.NewVersion(tx)
		if err != nil {
			return err
		}
		return nv.Modify(tx, func(e *Employee) { e.Age = 18 })
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		n, _ := adults.Count(tx)
		if n != 2 {
			t.Fatalf("after growing up: %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRollsBackWithTransaction(t *testing.T) {
	db := openDB(t, nil)
	emps, _ := Register[Employee](db, "Employee")
	byDept, err := emps.EnsureIndex("dept", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Dept), true
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	err = db.Update(func(tx *Tx) error {
		if _, err := emps.Create(tx, &Employee{Name: "ghost", Dept: "eng"}); err != nil {
			return err
		}
		return boom
	})
	if err == nil {
		t.Fatal("abort swallowed")
	}
	if err := db.View(func(tx *Tx) error {
		hits, err := byDept.Lookup(tx, KeyString("eng"))
		if err != nil || len(hits) != 0 {
			t.Fatalf("aborted index entry visible: %d %v", len(hits), err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Index still works after the abort.
	if err := db.Update(func(tx *Tx) error {
		_, err := emps.Create(tx, &Employee{Name: "real", Dept: "eng"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		hits, _ := byDept.Lookup(tx, KeyString("eng"))
		if len(hits) != 1 {
			t.Fatalf("post-abort maintenance broken: %d", len(hits))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := byDept.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDrop(t *testing.T) {
	db := openDB(t, nil)
	emps, _ := Register[Employee](db, "Employee")
	ix, err := emps.EnsureIndex("tmp", func(e *Employee) ([]byte, bool) {
		return KeyString(e.Name), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error {
		if _, err := emps.Create(tx, &Employee{Name: "x"}); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error { return ix.Drop(tx) }); err != nil {
		t.Fatal(err)
	}
	// Mutations after Drop no longer touch the index.
	if err := db.Update(func(tx *Tx) error {
		_, err := emps.Create(tx, &Employee{Name: "y"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	names, err := db.Engine().IndexNames()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		t.Fatalf("index survived drop: %s", n)
	}
}

func TestIndexKeyEscapingQuick(t *testing.T) {
	// Escaping must round-trip and preserve byte order exactly.
	rt := func(key []byte) bool {
		entry := indexEntryKey(key, OID(42))
		got, err := unescapeIndexKey(entry)
		return err == nil && bytes.Equal(got, key)
	}
	if err := quick.Check(rt, nil); err != nil {
		t.Fatal(err)
	}
	ord := func(a, b []byte) bool {
		ea, eb := escapeIndexKey(a), escapeIndexKey(b)
		return (bytes.Compare(a, b) < 0) == (bytes.Compare(ea, eb) < 0) &&
			(bytes.Compare(a, b) == 0) == (bytes.Compare(ea, eb) == 0)
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyHelpersOrdering(t *testing.T) {
	if bytes.Compare(KeyInt(-5), KeyInt(3)) >= 0 {
		t.Fatal("KeyInt sign ordering broken")
	}
	if bytes.Compare(KeyInt(-5), KeyInt(-2)) >= 0 {
		t.Fatal("KeyInt negative ordering broken")
	}
	if bytes.Compare(KeyUint(1), KeyUint(256)) >= 0 {
		t.Fatal("KeyUint ordering broken")
	}
	if string(KeyString("abc")) != "abc" {
		t.Fatal("KeyString identity broken")
	}
}
