package ode

import (
	"ode/internal/core"
	"ode/internal/oid"
)

// ErrTxDone reports use of a Tx after its Update/View closure returned.
// A handle is only valid inside the callback that created it; letting
// one escape and using it later was silently accepted before and now
// fails loudly.
var ErrTxDone = core.ErrTxDone

// Tx is a transaction handle. All object access goes through one; a Tx
// is only valid inside the db.Update / db.View callback that created it.
// It is invalidated when the callback returns: every later call fails
// with ErrTxDone. A Tx must not cross goroutines.
type Tx struct {
	db       *DB
	ctx      *core.Tx
	writable bool
	done     bool
}

// Writable reports whether mutations are allowed in this transaction.
func (tx *Tx) Writable() bool { return tx.writable }

// guard rejects use of an ended (escaped) handle.
func (tx *Tx) guard() error {
	if tx == nil || tx.done || tx.ctx == nil {
		return ErrTxDone
	}
	return nil
}

func (tx *Tx) guardWrite() error {
	if err := tx.guard(); err != nil {
		return err
	}
	if !tx.writable {
		return ErrReadOnly
	}
	return nil
}

// --- raw (untyped) object access ---
// These operate on raw byte payloads; most callers use the typed layer
// (Register / Type / Ptr / VPtr) instead.

// CreateRaw allocates an object of a registered type with raw content —
// the paper's pnew.
func (tx *Tx) CreateRaw(t TypeID, content []byte) (OID, VID, error) {
	if err := tx.guardWrite(); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	return tx.ctx.Create(t, content)
}

// ReadLatestRaw dereferences a generic reference: the latest version's
// content and vid.
func (tx *Tx) ReadLatestRaw(o OID) ([]byte, VID, error) {
	if err := tx.guard(); err != nil {
		return nil, oid.NilVID, err
	}
	return tx.ctx.ReadLatest(o)
}

// ReadVersionRaw dereferences a specific reference.
func (tx *Tx) ReadVersionRaw(o OID, v VID) ([]byte, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.ReadVersion(o, v)
}

// UpdateLatestRaw overwrites the latest version in place (no new
// version).
func (tx *Tx) UpdateLatestRaw(o OID, content []byte) (VID, error) {
	if err := tx.guardWrite(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.UpdateLatest(o, content)
}

// UpdateVersionRaw overwrites one version in place.
func (tx *Tx) UpdateVersionRaw(o OID, v VID, content []byte) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.UpdateVersion(o, v, content)
}

// NewVersion creates a version derived from the latest — newversion(oid).
func (tx *Tx) NewVersion(o OID) (VID, error) {
	if err := tx.guardWrite(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.NewVersion(o)
}

// NewVersionFrom creates a version derived from a specific base —
// newversion(vid).
func (tx *Tx) NewVersionFrom(o OID, base VID) (VID, error) {
	if err := tx.guardWrite(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.NewVersionFrom(o, base)
}

// DeleteObject removes an object and all its versions — pdelete(oid).
func (tx *Tx) DeleteObject(o OID) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.DeleteObject(o)
}

// DeleteVersion removes one version, splicing the derivation tree —
// pdelete(vid).
func (tx *Tx) DeleteVersion(o OID, v VID) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.DeleteVersion(o, v)
}

// --- metadata and traversal ---

// Exists reports whether the object is live.
func (tx *Tx) Exists(o OID) (bool, error) {
	if err := tx.guard(); err != nil {
		return false, err
	}
	return tx.ctx.Exists(o)
}

// TypeOf returns the catalog type of a live object.
func (tx *Tx) TypeOf(o OID) (TypeID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilType, err
	}
	return tx.ctx.TypeOf(o)
}

// Latest returns the vid the object id currently binds to.
func (tx *Tx) Latest(o OID) (VID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.Latest(o)
}

// Owner resolves a vid to its object.
func (tx *Tx) Owner(v VID) (OID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilOID, err
	}
	return tx.ctx.Owner(v)
}

// VersionCount returns the object's live version count.
func (tx *Tx) VersionCount(o OID) (uint64, error) {
	if err := tx.guard(); err != nil {
		return 0, err
	}
	return tx.ctx.VersionCount(o)
}

// VersionInfo is a version's metadata (stamp, relationships, storage).
type VersionInfo = core.VersionInfo

// Info returns a version's metadata.
func (tx *Tx) Info(o OID, v VID) (VersionInfo, error) {
	if err := tx.guard(); err != nil {
		return VersionInfo{}, err
	}
	return tx.ctx.Info(o, v)
}

// Dprev returns the derived-from parent — the paper's Dprevious.
func (tx *Tx) Dprev(o OID, v VID) (VID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.Dprev(o, v)
}

// Tprev returns the temporal predecessor — the paper's Tprevious.
func (tx *Tx) Tprev(o OID, v VID) (VID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.Tprev(o, v)
}

// Tnext returns the temporal successor.
func (tx *Tx) Tnext(o OID, v VID) (VID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.Tnext(o, v)
}

// DChildren returns the versions directly derived from v (alternatives
// when there are several).
func (tx *Tx) DChildren(o OID, v VID) ([]VID, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.DChildren(o, v)
}

// History returns the derivation chain from v back to the root.
func (tx *Tx) History(o OID, v VID) ([]VID, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.History(o, v)
}

// Leaves returns the tips of the object's alternative designs.
func (tx *Tx) Leaves(o OID) ([]VID, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.Leaves(o)
}

// Versions returns all live versions in temporal order.
func (tx *Tx) Versions(o OID) ([]VID, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.Versions(o)
}

// AsOf returns the version that was latest at stamp s.
func (tx *Tx) AsOf(o OID, s Stamp) (VID, bool, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, false, err
	}
	return tx.ctx.AsOf(o, s)
}

// AsOfWalk answers the same question as AsOf by walking the temporal
// chain (exists to cross-check the temporal index; used by benchmarks).
func (tx *Tx) AsOfWalk(o OID, s Stamp) (VID, bool, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, false, err
	}
	return tx.ctx.AsOfWalk(o, s)
}

// CurrentStamp returns the database's logical clock.
func (tx *Tx) CurrentStamp() Stamp {
	if err := tx.guard(); err != nil {
		return 0
	}
	return tx.ctx.CurrentStamp()
}

// Render returns a textual drawing of the object's version graph
// (derived-from tree plus temporal chain).
func (tx *Tx) Render(o OID) (string, error) {
	if err := tx.guard(); err != nil {
		return "", err
	}
	return tx.ctx.Render(o)
}

// --- configurations and contexts ---

// Binding ties a configuration slot to a component object; a zero VID
// binds dynamically (latest at resolve time), a set VID statically.
type Binding = core.Binding

// Resolved is a binding resolved to a concrete version.
type Resolved = core.Resolved

// SaveConfig stores a named configuration.
func (tx *Tx) SaveConfig(name string, bindings []Binding) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.SaveConfig(name, bindings)
}

// GetConfig returns a configuration's bindings.
func (tx *Tx) GetConfig(name string) ([]Binding, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	return tx.ctx.GetConfig(name)
}

// ResolveConfig resolves a configuration: static slots keep their pinned
// version, dynamic slots bind to the latest.
func (tx *Tx) ResolveConfig(name string) ([]Resolved, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.ResolveConfig(name)
}

// DeleteConfig removes a configuration.
func (tx *Tx) DeleteConfig(name string) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.DeleteConfig(name)
}

// Configs lists configuration names.
func (tx *Tx) Configs() ([]string, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.Configs()
}

// SetContext stores a context: default versions for a set of objects.
func (tx *Tx) SetContext(name string, defaults map[OID]VID) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.SetContext(name, defaults)
}

// GetContext returns a context's default-version map.
func (tx *Tx) GetContext(name string) (map[OID]VID, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	return tx.ctx.GetContext(name)
}

// ResolveInContext dereferences an object id under a context.
func (tx *Tx) ResolveInContext(ctx string, o OID) (VID, error) {
	if err := tx.guard(); err != nil {
		return oid.NilVID, err
	}
	return tx.ctx.ResolveInContext(ctx, o)
}

// DeleteContext removes a context.
func (tx *Tx) DeleteContext(name string) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.DeleteContext(name)
}

// Contexts lists context names.
func (tx *Tx) Contexts() ([]string, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.Contexts()
}

// --- extents ---

// Extent iterates every object of type t in oid order.
func (tx *Tx) Extent(t TypeID, fn func(o OID) (bool, error)) error {
	if err := tx.guard(); err != nil {
		return err
	}
	return tx.ctx.Extent(t, fn)
}

// ExtentCount returns the number of objects of type t.
func (tx *Tx) ExtentCount(t TypeID) (int, error) {
	if err := tx.guard(); err != nil {
		return 0, err
	}
	return tx.ctx.ExtentCount(t)
}

// --- version annotations ---

// Annotate sets (or clears, with an empty value) a key→value annotation
// on one version. Annotations are per-version state markers — the
// primitive behind Klahold-style version partitioning (valid /
// in-progress / effective ...), which the paper's related work cites.
func (tx *Tx) Annotate(o OID, v VID, key, value string) error {
	if err := tx.guardWrite(); err != nil {
		return err
	}
	return tx.ctx.Annotate(o, v, key, value)
}

// Annotations returns a version's annotation map (ok=false when none).
func (tx *Tx) Annotations(o OID, v VID) (map[string]string, bool, error) {
	if err := tx.guard(); err != nil {
		return nil, false, err
	}
	return tx.ctx.Annotations(o, v)
}

// Annotation returns one annotation value (ok=false when unset).
func (tx *Tx) Annotation(o OID, v VID, key string) (string, bool, error) {
	if err := tx.guard(); err != nil {
		return "", false, err
	}
	return tx.ctx.Annotation(o, v, key)
}

// VersionsWhere returns the versions whose annotation key equals value,
// in temporal order.
func (tx *Tx) VersionsWhere(o OID, key, value string) ([]VID, error) {
	if err := tx.guard(); err != nil {
		return nil, err
	}
	return tx.ctx.VersionsWhere(o, key, value)
}
