package ode_test

// Engine-level crash consistency through the public Options.FS hook: a
// versioned-object workload (objects, versions, pinned references) runs
// over the fault-injecting filesystem, the power dies after every
// mutating I/O operation, and the reopened database must contain every
// acked update — versions, temporal chains, and indexes intact
// (CheckIntegrity) — and keep accepting writes.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"ode"
	"ode/internal/faultfs"
)

type Widget struct {
	Name string
	Rev  int
}

// envShardCount mirrors the internal test helper: the matrix Makefile
// target re-runs this suite with ODE_SHARDS=4 so every injection point
// is also exercised against the sharded layout (shard WALs plus the
// coordinator log). Zero (unset) keeps the layout default.
func envShardCount() int {
	n, _ := strconv.Atoi(os.Getenv("ODE_SHARDS"))
	return n
}

// ackedState records what the workload was promised: per object, the
// highest rev whose Update returned nil.
type ackedState struct {
	ptrs map[string]ode.Ptr[Widget]
	rev  map[string]int
}

// runVersionWorkload creates nObjs objects and grows versions on each,
// checkpointing midway, until an injected fault stops it. Never closes.
func runVersionWorkload(fsys faultfs.FS) (ackedState, error) {
	return runVersionWorkloadOpts(fsys, nil)
}

// runVersionWorkloadOpts is runVersionWorkload with an optional Options
// mutator, so variants (e.g. the crash matrix with a hostile tracer
// installed) reuse the same op space.
func runVersionWorkloadOpts(fsys faultfs.FS, mutate func(*ode.Options)) (ackedState, error) {
	acked := ackedState{ptrs: map[string]ode.Ptr[Widget]{}, rev: map[string]int{}}
	opts := &ode.Options{PageSize: 512, CheckpointBytes: -1, FS: fsys, Shards: envShardCount()}
	if mutate != nil {
		mutate(opts)
	}
	db, err := ode.Open("/vdb", opts)
	if err != nil {
		return acked, err
	}
	widgets, err := ode.Register[Widget](db, "Widget")
	if err != nil {
		return acked, err
	}
	const nObjs, nVers = 3, 4
	for i := 0; i < nObjs; i++ {
		name := fmt.Sprintf("w%d", i)
		var p ode.Ptr[Widget]
		if err := db.Update(func(tx *ode.Tx) error {
			var err error
			p, err = widgets.Create(tx, &Widget{Name: name, Rev: 0})
			return err
		}); err != nil {
			return acked, err
		}
		acked.ptrs[name] = p
		acked.rev[name] = 0
		for v := 1; v <= nVers; v++ {
			if err := db.Update(func(tx *ode.Tx) error {
				nv, err := p.NewVersion(tx)
				if err != nil {
					return err
				}
				return nv.Modify(tx, func(w *Widget) { w.Rev = v })
			}); err != nil {
				return acked, err
			}
			acked.rev[name] = v
		}
		if i == nObjs/2 {
			if err := db.Checkpoint(); err != nil {
				return acked, err
			}
		}
	}
	return acked, nil
}

// verifyVersionImage reopens the crashed image and checks every acked
// object is at its acked rev with an intact version history.
func verifyVersionImage(crashed faultfs.FS, acked ackedState) error {
	db, err := ode.Open("/vdb", &ode.Options{PageSize: 512, FS: crashed})
	if err != nil {
		if len(acked.ptrs) == 0 {
			return nil
		}
		return fmt.Errorf("reopen with %d acked objects: %w", len(acked.ptrs), err)
	}
	defer db.Close()
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	if _, err := ode.Register[Widget](db, "Widget"); err != nil {
		return fmt.Errorf("re-register: %w", err)
	}
	for name, p := range acked.ptrs {
		wantRev := acked.rev[name]
		err := db.View(func(tx *ode.Tx) error {
			w, err := p.Deref(tx)
			if err != nil {
				return fmt.Errorf("deref %s: %w", name, err)
			}
			if w.Name != name || w.Rev != wantRev {
				return fmt.Errorf("%s: got %+v, want rev %d", name, w, wantRev)
			}
			// The temporal chain must hold every acked version 0..rev.
			vs, err := p.Versions(tx)
			if err != nil {
				return err
			}
			if len(vs) != wantRev+1 {
				return fmt.Errorf("%s: %d versions, want %d", name, len(vs), wantRev+1)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	// The recovered database must accept new versions (any one object).
	for name, p := range acked.ptrs {
		if err := db.Update(func(tx *ode.Tx) error {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return fmt.Errorf("post-recovery newversion %s: %w", name, err)
			}
			return nv.Modify(tx, func(w *Widget) { w.Rev = -1 })
		}); err != nil {
			return err
		}
		break
	}
	return nil
}

func TestEngineCrashMatrixPowerCut(t *testing.T) {
	// Dry run sizes the op space.
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runVersionWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	ops := dry.Counts().Ops
	if ops < 10 {
		t.Fatalf("op space suspiciously small: %d", ops)
	}
	// Sample every op point (cheap: in-memory, 512-byte pages).
	for n := uint64(1); n <= ops; n++ {
		mem := faultfs.NewMem()
		acked, _ := runVersionWorkload(faultfs.NewInjector(mem, faultfs.Plan{PowerCutAfterOps: n}))
		if err := verifyVersionImage(mem.Crash(false), acked); err != nil {
			t.Errorf("powerCutAfter=%d: %v", n, err)
		}
	}
	t.Logf("engine crash matrix: %d power-cut points", ops)
}

func TestEngineCrashMatrixFailedSyncs(t *testing.T) {
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runVersionWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	syncs := dry.Counts().Syncs
	for n := uint64(1); n <= syncs; n++ {
		for _, keep := range []bool{false, true} {
			mem := faultfs.NewMem()
			acked, _ := runVersionWorkload(faultfs.NewInjector(mem, faultfs.Plan{FailSyncN: n}))
			if err := verifyVersionImage(mem.Crash(keep), acked); err != nil {
				t.Errorf("failSync=%d keep=%v: %v", n, keep, err)
			}
		}
	}
	t.Logf("engine crash matrix: %d failed-sync points x2", syncs)
}
