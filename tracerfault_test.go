package ode_test

// Tracer-hook fault isolation: a tracer that panics, blocks forever, or
// is simply slow must never corrupt a commit, stall the pipeline, or
// change crash-recovery outcomes. Events past the bounded queue are
// dropped and counted — never waited for.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ode"
	"ode/internal/faultfs"
)

// recordingTracer collects every delivered span event.
type recordingTracer struct {
	mu     sync.Mutex
	events []ode.SpanEvent
}

func (r *recordingTracer) TraceSpan(ev ode.SpanEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func (r *recordingTracer) kinds() map[ode.SpanKind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[ode.SpanKind]int{}
	for _, ev := range r.events {
		out[ev.Kind]++
	}
	return out
}

// panicTracer panics on every delivery.
type panicTracer struct{}

func (panicTracer) TraceSpan(ode.SpanEvent) { panic("tracer exploded") }

// blockingTracer blocks forever on every delivery.
type blockingTracer struct{ block chan struct{} }

func (b blockingTracer) TraceSpan(ode.SpanEvent) { <-b.block }

func tracerWorkload(t *testing.T, db *ode.DB, commits int) {
	t.Helper()
	ty, err := ode.Register[Widget](db, "Widget")
	if err != nil {
		t.Fatal(err)
	}
	var p ode.Ptr[Widget]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		p, err = ty.Create(tx, &Widget{Name: "w", Rev: 0})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < commits; i++ {
		i := i
		if err := db.Update(func(tx *ode.Tx) error {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return err
			}
			return nv.Modify(tx, func(w *Widget) { w.Rev = i })
		}); err != nil {
			t.Fatalf("commit %d with hostile tracer: %v", i, err)
		}
	}
}

// TestTracerReceivesLifecycleEvents is the happy path: a well-behaved
// tracer sees the full span taxonomy for a commit-heavy run, in queue
// order, with begin/prepare/publish matching the commit count.
func TestTracerReceivesLifecycleEvents(t *testing.T) {
	rec := &recordingTracer{}
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Tracer: rec, CheckpointBytes: -1, Shards: envShardCount()})
	if err != nil {
		t.Fatal(err)
	}
	tracerWorkload(t, db, 8)
	// One deliberate abort and one checkpoint to cover those kinds too.
	wantErr := fmt.Errorf("boom")
	if err := db.Update(func(tx *ode.Tx) error {
		if _, err := ode.Register[Widget](db, "Widget"); err != nil {
			return err
		}
		return wantErr
	}); err != wantErr {
		t.Fatalf("abort returned %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Close flushes the queue: after it returns, every event emitted
	// before Close has been delivered or counted dropped.
	dropped := db.Metrics().TracerDropped
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("well-behaved tracer dropped %d events", dropped)
	}

	ks := rec.kinds()
	// init + register + create + 7 newversions = 10 committed writes;
	// each emits Begin, Prepare and Publish. The abort emits Begin and
	// Abort; the checkpoint emits Checkpoint; each fsync batch emits
	// Fsync.
	const committed = 10
	if ks[ode.SpanBegin] != committed+1 {
		t.Errorf("SpanBegin = %d, want %d", ks[ode.SpanBegin], committed+1)
	}
	if ks[ode.SpanPrepare] != committed {
		t.Errorf("SpanPrepare = %d, want %d", ks[ode.SpanPrepare], committed)
	}
	if ks[ode.SpanPublish] != committed {
		t.Errorf("SpanPublish = %d, want %d", ks[ode.SpanPublish], committed)
	}
	if ks[ode.SpanAbort] != 1 {
		t.Errorf("SpanAbort = %d, want 1", ks[ode.SpanAbort])
	}
	if ks[ode.SpanCheckpoint] != 1 {
		t.Errorf("SpanCheckpoint = %d, want 1", ks[ode.SpanCheckpoint])
	}
	if ks[ode.SpanFsync] == 0 || ks[ode.SpanFsync] > committed {
		t.Errorf("SpanFsync = %d, want 1..%d", ks[ode.SpanFsync], committed)
	}
	// Seq is assigned at emit: the delivered stream must be in order.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i := 1; i < len(rec.events); i++ {
		if rec.events[i].Seq <= rec.events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i,
				rec.events[i-1].Seq, rec.events[i].Seq)
		}
	}
}

// TestTracerPanicDoesNotCorruptCommits: every delivery panics; all
// commits must still succeed, the store must stay structurally intact,
// and the panicked events are counted as dropped.
func TestTracerPanicDoesNotCorruptCommits(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Tracer: panicTracer{}, CheckpointBytes: -1, Shards: envShardCount()})
	if err != nil {
		t.Fatal(err)
	}
	tracerWorkload(t, db, 20)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Delivery is asynchronous; wait for the consumer to have attempted
	// (and dropped) at least one event.
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().TracerDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panicking tracer never counted a drop")
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the hostile tracer must not have affected durability.
	db2, err := ode.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerBlockedQueueDropsNotStalls: a tracer that never returns
// fills the tiny queue; commits must keep completing at full speed,
// overflow events are dropped and counted, and Close must return within
// the bounded grace period instead of waiting for the tracer.
func TestTracerBlockedQueueDropsNotStalls(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{
		Tracer:          blockingTracer{block: block},
		TracerBuffer:    4,
		CheckpointBytes: -1,
		Shards:          envShardCount(),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tracerWorkload(t, db, 30) // ~90 events against a 4-slot queue
	workDur := time.Since(start)
	if dropped := db.Metrics().TracerDropped; dropped == 0 {
		t.Error("blocked tracer queue never dropped")
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	closeStart := time.Now()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// closeGrace is 1s; generous bound so slow CI doesn't flake.
	if d := time.Since(closeStart); d > 10*time.Second {
		t.Fatalf("Close took %v with a blocked tracer", d)
	}
	t.Logf("30 durable commits in %v with a fully blocked tracer", workDur)
}

// TestDebugListenerServesMetrics: the optional debug HTTP listener
// serves the Prometheus page and the JSON stats, and dies with the DB.
func TestDebugListenerServesMetrics(t *testing.T) {
	db, err := ode.Open(t.TempDir(), &ode.Options{DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("no debug address bound")
	}
	tracerWorkload(t, db, 5)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ode_commits_total", "ode_commit_latency_ns_bucket",
		"ode_wal_fsync_latency_ns_sum", "ode_versions",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ode.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits == 0 || st.Versions == 0 {
		t.Errorf("/stats implausible: %+v", st)
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug listener still serving after Close")
	}
}

// TestEngineCrashMatrixPowerCutWithTracer reruns the power-cut crash
// matrix with a panicking tracer installed: recovery outcomes must be
// exactly as without tracing (same verification, same acked state).
func TestEngineCrashMatrixPowerCutWithTracer(t *testing.T) {
	withTracer := func(o *ode.Options) { o.Tracer = panicTracer{} }
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runVersionWorkloadOpts(dry, withTracer); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	ops := dry.Counts().Ops
	if ops < 10 {
		t.Fatalf("op space suspiciously small: %d", ops)
	}
	for n := uint64(1); n <= ops; n++ {
		mem := faultfs.NewMem()
		acked, _ := runVersionWorkloadOpts(faultfs.NewInjector(mem, faultfs.Plan{PowerCutAfterOps: n}), withTracer)
		if err := verifyVersionImage(mem.Crash(false), acked); err != nil {
			t.Errorf("powerCutAfter=%d with tracer: %v", n, err)
		}
	}
	t.Logf("crash matrix with panicking tracer: %d power-cut points", ops)
}
