package ode

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"ode/internal/txn"
)

// openShardedDB opens a database with an explicit shard count in a
// fresh temp dir and returns it with its directory (for reopen tests).
func openShardedDB(t testing.TB, shards int, opts *Options) (*DB, string) {
	t.Helper()
	var o Options
	if opts != nil {
		o = *opts
	}
	o.Shards = shards
	dir := t.TempDir()
	db, err := Open(dir, &o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func TestShardedBasicAndReopen(t *testing.T) {
	db, dir := openShardedDB(t, 4, nil)
	if db.Shards() != 4 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	// Objects created in separate transactions round-robin across
	// shards; each then grows a version.
	const n = 24
	ptrs := make([]Ptr[Part], n)
	for i := 0; i < n; i++ {
		i := i
		if err := db.Update(func(tx *Tx) error {
			var err error
			ptrs[i], err = parts.Create(tx, &Part{Name: fmt.Sprintf("p%d", i), Rev: 0})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	shardsHit := map[uint64]bool{}
	for i := 0; i < n; i++ {
		shardsHit[uint64(ptrs[i].OID())%4] = true
		i := i
		if err := db.Update(func(tx *Tx) error {
			v, err := ptrs[i].NewVersion(tx)
			if err != nil {
				return err
			}
			return v.Set(tx, &Part{Name: fmt.Sprintf("p%d", i), Rev: 1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(shardsHit) != 4 {
		t.Fatalf("allocation hit %d/4 shards", len(shardsHit))
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Objects != n || st.Versions != 2*n {
		t.Fatalf("stats: %d objects, %d versions", st.Objects, st.Versions)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen adopting the layout (Shards=0): everything must be there.
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Shards() != 4 {
		t.Fatalf("adopted %d shards", db2.Shards())
	}
	parts2, err := Register[Part](db2, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.View(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			p, err := ptrs[i].Deref(tx)
			if err != nil {
				return fmt.Errorf("p%d: %w", i, err)
			}
			if p.Rev != 1 {
				return fmt.Errorf("p%d rev %d", i, p.Rev)
			}
		}
		cnt, err := parts2.Count(tx)
		if err != nil {
			return err
		}
		if cnt != n {
			return fmt.Errorf("extent %d", cnt)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCrossShardUpdate(t *testing.T) {
	db, _ := openShardedDB(t, 4, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	// Two objects on (very likely) different shards, created in
	// separate transactions.
	var a, b Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		a, err = parts.Create(tx, &Part{Name: "a"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for {
		if err := db.Update(func(tx *Tx) error {
			var err error
			b, err = parts.Create(tx, &Part{Name: "b"})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if uint64(b.OID())%4 != uint64(a.OID())%4 {
			break
		}
	}
	// One transaction versioning both: a cross-shard (2PC) commit.
	if err := db.Update(func(tx *Tx) error {
		va, err := a.NewVersion(tx)
		if err != nil {
			return err
		}
		if err := va.Set(tx, &Part{Name: "a", Rev: 1}); err != nil {
			return err
		}
		vb, err := b.NewVersion(tx)
		if err != nil {
			return err
		}
		return vb.Set(tx, &Part{Name: "b", Rev: 1})
	}); err != nil {
		t.Fatal(err)
	}
	// An aborting cross-shard transaction must leave both untouched.
	boom := errors.New("boom")
	err = db.Update(func(tx *Tx) error {
		if _, err := a.NewVersion(tx); err != nil {
			return err
		}
		if _, err := b.NewVersion(tx); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		for _, p := range []Ptr[Part]{a, b} {
			vs, err := tx.ctx.Versions(p.OID())
			if err != nil {
				return err
			}
			if len(vs) != 2 {
				return fmt.Errorf("%v has %d versions, want 2", p.OID(), len(vs))
			}
			cur, err := p.Deref(tx)
			if err != nil {
				return err
			}
			if cur.Rev != 1 {
				return fmt.Errorf("%v rev %d", p.OID(), cur.Rev)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyLayoutUpgrade proves a database laid down by the pre-shard
// code path (txn.Create + core over a bare Manager — exactly what
// earlier releases wrote) opens through the sharded Open, keeps its
// data, accepts writes, and stays in the legacy layout.
func TestLegacyLayoutUpgrade(t *testing.T) {
	dir := t.TempDir()
	// Write the fixture with the legacy entry points only.
	func() {
		db, err := Open(dir, &Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		parts, err := Register[Part](db, "Part")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Update(func(tx *Tx) error {
			p, err := parts.Create(tx, &Part{Name: "fixture", Rev: 0})
			if err != nil {
				return err
			}
			v, err := p.NewVersion(tx)
			if err != nil {
				return err
			}
			return v.Set(tx, &Part{Name: "fixture", Rev: 1})
		}); err != nil {
			t.Fatal(err)
		}
	}()
	// The directory must be the legacy pair — nothing shard-flavored.
	if _, err := os.Stat(filepath.Join(dir, txn.DataFileName)); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{txn.ShardsFileName, txn.CoordWALFileName} {
		if _, err := os.Stat(filepath.Join(dir, f)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("legacy database grew %s", f)
		}
	}
	// Default open adopts it as one shard.
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Shards() != 1 {
		t.Fatalf("legacy adopted as %d shards", db.Shards())
	}
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		var oids []Ptr[Part]
		if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
			oids = append(oids, p)
			return true, nil
		}); err != nil {
			return err
		}
		if len(oids) != 1 {
			return fmt.Errorf("extent %d", len(oids))
		}
		cur, err := oids[0].Deref(tx)
		if err != nil {
			return err
		}
		if cur.Name != "fixture" || cur.Rev != 1 {
			return fmt.Errorf("got %+v", cur)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Asking for a re-shard of an existing directory is refused.
	db.Close()
	if _, err := Open(dir, &Options{Shards: 4}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("legacy dir with Shards=4: %v", err)
	}
}

func TestShardedBackup(t *testing.T) {
	db, _ := openShardedDB(t, 3, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]Ptr[Part], 9)
	for i := range ptrs {
		i := i
		if err := db.Update(func(tx *Tx) error {
			var err error
			ptrs[i], err = parts.Create(tx, &Part{Name: fmt.Sprintf("b%d", i)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	dst := t.TempDir()
	if err := db.Backup(dst); err != nil {
		t.Fatal(err)
	}
	bdb, err := Open(dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer bdb.Close()
	if bdb.Shards() != 3 {
		t.Fatalf("backup has %d shards", bdb.Shards())
	}
	if err := bdb.View(func(tx *Tx) error {
		for i := range ptrs {
			if _, err := ptrs[i].Deref(tx); err != nil {
				return fmt.Errorf("b%d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := bdb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// crossShardPair creates two objects on different shards of db (the
// engine round-robins fresh objects across shards, so a few tries
// suffice) and returns them.
func crossShardPair(t *testing.T, db *DB, parts *Type[Part]) (a, b Ptr[Part]) {
	t.Helper()
	if err := db.Update(func(tx *Tx) error {
		var err error
		a, err = parts.Create(tx, &Part{Name: "a"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for {
		if err := db.Update(func(tx *Tx) error {
			var err error
			b, err = parts.Create(tx, &Part{Name: "b"})
			return err
		}); err != nil {
			t.Fatal(err)
		}
		// An id's top bits name its birth shard (storage.SlotOf).
		if uint64(b.OID())>>54 != uint64(a.OID())>>54 {
			return a, b
		}
	}
}

// TestShardedBackupAtomicCrossShard races Backup against a writer that
// keeps two objects on different shards at the same revision with
// cross-shard (2PC) commits. Every backup must hold one atomic cut:
// equal revisions. Before CheckpointExclusive, the per-shard
// checkpoints ran under separate mutex acquisitions, so a 2PC commit
// landing between them reached only the later-checkpointed shard's
// data file — and the copied snapshot held half a transaction.
func TestShardedBackupAtomicCrossShard(t *testing.T) {
	db, _ := openShardedDB(t, 2, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	a, b := crossShardPair(t, db, parts)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			for rev := 1; ; rev++ {
				select {
				case <-stop:
					return nil
				default:
				}
				if err := db.Update(func(tx *Tx) error {
					if err := a.Set(tx, &Part{Name: "a", Rev: rev}); err != nil {
						return err
					}
					return b.Set(tx, &Part{Name: "b", Rev: rev})
				}); err != nil {
					return err
				}
			}
		}()
	}()
	for i := 0; i < 4; i++ {
		dst := t.TempDir()
		if err := db.Backup(dst); err != nil {
			t.Fatal(err)
		}
		bdb, err := Open(dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = bdb.View(func(tx *Tx) error {
			pa, err := a.Deref(tx)
			if err != nil {
				return err
			}
			pb, err := b.Deref(tx)
			if err != nil {
				return err
			}
			if pa.Rev != pb.Rev {
				return fmt.Errorf("backup %d tore a cross-shard transaction: a.Rev=%d b.Rev=%d", i, pa.Rev, pb.Rev)
			}
			return nil
		})
		if err == nil {
			err = bdb.CheckIntegrity()
		}
		bdb.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShardedViewAtomicCrossShard asserts a View pins one atomic
// cross-shard snapshot: a 2PC transaction keeping two objects on
// different shards at the same revision must never be seen half-applied
// by a concurrent reader.
func TestShardedViewAtomicCrossShard(t *testing.T) {
	db, _ := openShardedDB(t, 2, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	a, b := crossShardPair(t, db, parts)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			for rev := 1; ; rev++ {
				select {
				case <-stop:
					return nil
				default:
				}
				if err := db.Update(func(tx *Tx) error {
					if err := a.Set(tx, &Part{Name: "a", Rev: rev}); err != nil {
						return err
					}
					return b.Set(tx, &Part{Name: "b", Rev: rev})
				}); err != nil {
					return err
				}
			}
		}()
	}()
	for i := 0; i < 500; i++ {
		if err := db.View(func(tx *Tx) error {
			pa, err := a.Deref(tx)
			if err != nil {
				return err
			}
			pb, err := b.Deref(tx)
			if err != nil {
				return err
			}
			if pa.Rev != pb.Rev {
				return fmt.Errorf("view %d saw a torn cross-shard transaction: a.Rev=%d b.Rev=%d", i, pa.Rev, pb.Rev)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestPartialShardedLayoutRefused: shard files without shards.ode — an
// interrupted create or a deleted superblock — must fail loudly rather
// than be silently re-created over.
func TestPartialShardedLayoutRefused(t *testing.T) {
	db, dir := openShardedDB(t, 2, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error {
		_, err := parts.Create(tx, &Part{Name: "orphan"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, txn.ShardsFileName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); !errors.Is(err, ErrPartialLayout) {
		t.Fatalf("open of partial layout: %v", err)
	}
	// An explicit shard count does not bypass the check either.
	if _, err := Open(dir, &Options{Shards: 2}); !errors.Is(err, ErrPartialLayout) {
		t.Fatalf("open of partial layout with Shards=2: %v", err)
	}
}

// TestShardedExtentOrderAndEarlyStop: the cross-shard extent merge must
// stream in global oid order and honour early termination.
func TestShardedExtentOrderAndEarlyStop(t *testing.T) {
	db, _ := openShardedDB(t, 4, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := db.Update(func(tx *Tx) error {
			_, err := parts.Create(tx, &Part{Name: fmt.Sprintf("e%d", i)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.View(func(tx *Tx) error {
		var seen []uint64
		if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
			seen = append(seen, uint64(p.OID()))
			return true, nil
		}); err != nil {
			return err
		}
		if len(seen) != n {
			return fmt.Errorf("extent yielded %d oids, want %d", len(seen), n)
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] <= seen[i-1] {
				return fmt.Errorf("extent out of order at %d: %d after %d", i, seen[i], seen[i-1])
			}
		}
		// Early stop: fn must be called exactly k times, and the prefix
		// must match the full scan's.
		const k = 7
		var head []uint64
		if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
			head = append(head, uint64(p.OID()))
			return len(head) < k, nil
		}); err != nil {
			return err
		}
		if len(head) != k {
			return fmt.Errorf("early stop yielded %d oids, want %d", len(head), k)
		}
		for i := range head {
			if head[i] != seen[i] {
				return fmt.Errorf("early-stop prefix diverges at %d", i)
			}
		}
		cnt, err := parts.Count(tx)
		if err != nil {
			return err
		}
		if cnt != n {
			return fmt.Errorf("count %d, want %d", cnt, n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedMetricsExposition(t *testing.T) {
	db, _ := openShardedDB(t, 2, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := db.Update(func(tx *Tx) error {
			_, err := parts.Create(tx, &Part{Name: "m"})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := db.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	page := sb.String()
	for _, want := range []string{
		`ode_commits_total`,
		`ode_shard_commits_total{shard="0"}`,
		`ode_shard_commits_total{shard="1"}`,
		`ode_shard_wal_bytes{shard="0"}`,
		`ode_shard_wal_fsync_latency_ns_bucket{shard="1",le=`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	ms := db.Metrics()
	if ms.Commits == 0 || ms.CommitLatency.Count == 0 {
		t.Fatalf("aggregated metrics empty: %+v", ms.Stats)
	}
}

// TestSoakShardedWriters is the sharded concurrency soak: 16 writers on
// 4 shards, each owning some objects and growing versions, with
// occasional cross-shard transactions. Afterwards every object's
// temporal and derived-from chains must be strictly linear (this
// workload never branches), which the full integrity check asserts —
// run it under -race via `make soak`.
func TestSoakShardedWriters(t *testing.T) {
	db, dir := openShardedDB(t, 4, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 16
		perTxn   = 6
		versions = 12
	)
	ptrs := make([]Ptr[Part], writers)
	for i := range ptrs {
		i := i
		if err := db.Update(func(tx *Tx) error {
			var err error
			ptrs[i], err = parts.Create(tx, &Part{Name: fmt.Sprintf("w%d", i)})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rev := 1; rev <= versions; rev++ {
				err := db.Update(func(tx *Tx) error {
					v, err := ptrs[w].NewVersion(tx)
					if err != nil {
						return err
					}
					if err := v.Set(tx, &Part{Name: fmt.Sprintf("w%d", w), Rev: rev}); err != nil {
						return err
					}
					// Every few revisions, also touch a neighbour's
					// object: a cross-shard commit whenever the two
					// OIDs land on different shards.
					if rev%perTxn == 0 {
						other := ptrs[(w+1)%writers]
						u, err := other.Deref(tx)
						if err != nil {
							return err
						}
						return other.Set(tx, u)
					}
					return nil
				})
				if err != nil {
					errs[w] = fmt.Errorf("writer %d rev %d: %w", w, rev, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Linear chains: each object's temporal order walks back through
	// every version with no branches in the derivation tree beyond the
	// in-place updates (which create no versions).
	if err := db.View(func(tx *Tx) error {
		for w := range ptrs {
			o := ptrs[w].OID()
			vs, err := tx.ctx.Versions(o)
			if err != nil {
				return err
			}
			if len(vs) != versions+1 {
				return fmt.Errorf("writer %d: %d versions, want %d", w, len(vs), versions+1)
			}
			leaves, err := tx.ctx.Leaves(o)
			if err != nil {
				return err
			}
			if len(leaves) != 1 {
				return fmt.Errorf("writer %d: %d leaves, chain branched", w, len(leaves))
			}
			hist, err := tx.ctx.History(o, leaves[0])
			if err != nil {
				return err
			}
			if len(hist) != versions+1 {
				return fmt.Errorf("writer %d: history %d, want %d", w, len(hist), versions+1)
			}
			// Temporal chain: stamps strictly increase along Versions.
			var last Stamp
			for _, v := range vs {
				info, err := tx.ctx.Info(o, v)
				if err != nil {
					return err
				}
				if info.Stamp <= last && last != 0 {
					return fmt.Errorf("writer %d: stamps not increasing", w)
				}
				last = info.Stamp
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Survives a reopen with everything intact.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	if st.Objects != writers || st.Versions != uint64(writers*(versions+1)) {
		t.Fatalf("after reopen: %d objects, %d versions", st.Objects, st.Versions)
	}
}

// TestShardedExtentMergeDuringCrossShard2PC is the regression net over
// the PR 5 fix that made the cross-shard streaming Extent merge read
// one torn-free published epoch: while writers land cross-shard 2PC
// commits that create new objects and touch two shards per
// transaction, every concurrent extent scan must be globally ordered,
// duplicate-free, and include every object whose commit completed
// before the scan's View began.
func TestShardedExtentMergeDuringCrossShard2PC(t *testing.T) {
	db, _ := openShardedDB(t, 4, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 4
		perWriter = 30
	)
	// Each writer gets an anchor pair pinned to different shards so
	// every iteration's Update is a genuine 2PC commit.
	anchorsA := make([]Ptr[Part], writers)
	anchorsB := make([]Ptr[Part], writers)
	var (
		mu        sync.Mutex
		committed []OID
	)
	for w := range anchorsA {
		anchorsA[w], anchorsB[w] = crossShardPair(t, db, parts)
		committed = append(committed, anchorsA[w].OID(), anchorsB[w].OID())
	}

	snapshot := func() []OID {
		mu.Lock()
		defer mu.Unlock()
		return append([]OID(nil), committed...)
	}

	var wg sync.WaitGroup
	writerErrs := make([]error, writers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, b := anchorsA[w], anchorsB[w]
			for i := 0; i < perWriter; i++ {
				var created Ptr[Part]
				err := db.Update(func(tx *Tx) error {
					var err error
					// Create + two updates on distinct shards: the
					// commit prepares several shards and decides
					// through the coordinator log.
					if created, err = parts.Create(tx, &Part{Name: fmt.Sprintf("c%d-%d", w, i)}); err != nil {
						return err
					}
					if err := a.Modify(tx, func(p *Part) { p.Rev++ }); err != nil {
						return err
					}
					return b.Modify(tx, func(p *Part) { p.Rev++ })
				})
				if err != nil {
					writerErrs[w] = fmt.Errorf("writer %d iter %d: %w", w, i, err)
					return
				}
				// Only after Update returns is the commit's epoch
				// published; from here on every scan must see it.
				mu.Lock()
				committed = append(committed, created.OID())
				mu.Unlock()
			}
		}()
	}

	scanErr := make(chan error, 1)
	go func() {
		defer close(scanErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mustSee := snapshot()
			var seen []OID
			err := db.View(func(tx *Tx) error {
				if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
					seen = append(seen, p.OID())
					return true, nil
				}); err != nil {
					return err
				}
				// Early-stop inside the same View pins the same merge
				// sources: the prefix must match the full scan.
				k := len(seen)/2 + 1
				var head []OID
				if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
					head = append(head, p.OID())
					return len(head) < k, nil
				}); err != nil {
					return err
				}
				if len(head) != k {
					return fmt.Errorf("early stop yielded %d oids, want %d", len(head), k)
				}
				for i := range head {
					if head[i] != seen[i] {
						return fmt.Errorf("early-stop prefix diverges at %d: %v vs %v", i, head[i], seen[i])
					}
				}
				return nil
			})
			if err != nil {
				scanErr <- err
				return
			}
			for i := 1; i < len(seen); i++ {
				if seen[i] <= seen[i-1] {
					scanErr <- fmt.Errorf("extent not globally ordered/duplicate-free at %d: %v after %v", i, seen[i], seen[i-1])
					return
				}
			}
			have := make(map[OID]bool, len(seen))
			for _, o := range seen {
				have[o] = true
			}
			for _, o := range mustSee {
				if !have[o] {
					scanErr <- fmt.Errorf("extent scan missing %v, committed before the View began", o)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err, ok := <-scanErr; ok && err != nil {
		t.Fatal(err)
	}
	for _, err := range writerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiescent: the final scan is exactly the committed set.
	final := snapshot()
	sort.Slice(final, func(i, j int) bool { return final[i] < final[j] })
	if err := db.View(func(tx *Tx) error {
		var seen []OID
		if err := parts.Extent(tx, func(p Ptr[Part]) (bool, error) {
			seen = append(seen, p.OID())
			return true, nil
		}); err != nil {
			return err
		}
		if len(seen) != len(final) {
			return fmt.Errorf("final extent has %d oids, want %d", len(seen), len(final))
		}
		for i := range seen {
			if seen[i] != final[i] {
				return fmt.Errorf("final extent diverges at %d: %v vs %v", i, seen[i], final[i])
			}
		}
		n, err := parts.Count(tx)
		if err != nil {
			return err
		}
		if n != len(final) {
			return fmt.Errorf("final count %d, want %d", n, len(final))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
