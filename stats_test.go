package ode

// Stats()/Metrics() accuracy: table-driven scripts whose every counter
// has a hand-computed expectation, plus the torn-read regression test
// for the seqlock-consistent Commits/Batches pair.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

var errStatsAbort = errors.New("stats: deliberate abort")

// statsScript runs k creating commits, one empty commit, j aborts and a
// final checkpoint against db, using the raw API so every commit is one
// object create.
func statsScript(t *testing.T, db *DB, k, j int) {
	t.Helper()
	tid, err := db.Engine().RegisterType("StatsBlob")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := db.Update(func(tx *Tx) error {
			_, _, err := tx.CreateRaw(tid, []byte(fmt.Sprintf("obj-%d", i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One empty commit: no pages dirtied, so it bumps Commits but joins
	// no fsync batch.
	if err := db.Update(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < j; i++ {
		err := db.Update(func(tx *Tx) error {
			if _, _, err := tx.CreateRaw(tid, []byte("doomed")); err != nil {
				return err
			}
			return errStatsAbort
		})
		if !errors.Is(err, errStatsAbort) {
			t.Fatalf("abort %d returned %v", i, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccuracy(t *testing.T) {
	const k, j = 5, 3
	// Expected commits: init-structures (1) + RegisterType (1) + k
	// creates + 1 empty commit. Batches: with group commit every
	// sequential non-empty commit is its own fsync batch — the empty
	// commit never enters the pipeline — and NoGroupCommit/NoSync
	// bypass batching entirely.
	const wantCommits = 2 + k + 1
	cases := []struct {
		name        string
		opts        Options
		wantBatches uint64
	}{
		{"grouped", Options{CheckpointBytes: -1}, 2 + k},
		{"nogroupcommit", Options{CheckpointBytes: -1, NoGroupCommit: true}, 0},
		{"nosync", Options{CheckpointBytes: -1, NoSync: true}, 0},
		{"nometrics", Options{CheckpointBytes: -1, NoMetrics: true}, 2 + k},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := openDB(t, &tc.opts)
			statsScript(t, db, k, j)

			st := db.Stats()
			if st.Commits != wantCommits {
				t.Errorf("Commits = %d, want %d", st.Commits, wantCommits)
			}
			if st.Aborts != j {
				t.Errorf("Aborts = %d, want %d", st.Aborts, j)
			}
			if st.Objects != k {
				t.Errorf("Objects = %d, want %d", st.Objects, k)
			}
			if st.Versions != k {
				t.Errorf("Versions = %d, want %d", st.Versions, k)
			}
			if st.Checkpoints != 1 {
				t.Errorf("Checkpoints = %d, want 1", st.Checkpoints)
			}
			if st.Batches != tc.wantBatches {
				t.Errorf("Batches = %d, want %d", st.Batches, tc.wantBatches)
			}
			if st.RecoveredTxns != 0 {
				t.Errorf("RecoveredTxns = %d, want 0", st.RecoveredTxns)
			}
			// The checkpoint was the last durable act: the WAL is back
			// to its 8-byte header.
			if st.WALBytes != 8 {
				t.Errorf("WALBytes = %d, want 8 after checkpoint", st.WALBytes)
			}

			ms := db.Metrics()
			if tc.opts.NoMetrics {
				// NoMetrics: Stats fields populated, distributions empty.
				if ms.Stats != st {
					t.Errorf("NoMetrics Stats mismatch: %+v vs %+v", ms.Stats, st)
				}
				if ms.CommitLatency.Count != 0 || ms.BatchSize.Count != 0 {
					t.Errorf("NoMetrics histograms populated: %+v", ms.CommitLatency)
				}
				return
			}
			if ms.CommitLatency.Count != st.Commits {
				t.Errorf("CommitLatency.Count = %d, want %d", ms.CommitLatency.Count, st.Commits)
			}
			if ms.CheckpointDuration.Count != 1 {
				t.Errorf("CheckpointDuration.Count = %d, want 1", ms.CheckpointDuration.Count)
			}
			if ms.BatchSize.Count != st.Batches {
				t.Errorf("BatchSize.Count = %d, want %d", ms.BatchSize.Count, st.Batches)
			}
			if tc.wantBatches > 0 {
				// Every batched commit was non-empty, so the batch-size
				// histogram sums to the non-empty commit count.
				if ms.BatchSize.Sum != wantCommits-1 {
					t.Errorf("Sum(BatchSize) = %d, want %d", ms.BatchSize.Sum, wantCommits-1)
				}
				if ms.WALFsyncLatency.Count == 0 {
					t.Error("durable run recorded no WAL fsyncs")
				}
			}
			if ms.DprevWalkLen.Count != 0 || ms.TprevWalkLen.Count != 0 {
				t.Errorf("walk histograms populated without walks: %d/%d",
					ms.DprevWalkLen.Count, ms.TprevWalkLen.Count)
			}
		})
	}
}

// TestStatsTornReadRegression is the regression test for the seqlock
// around the Commits/Batches pair. The writer side adds batches BEFORE
// commits inside the locked section, so an unsynchronised reader could
// observe the impossible state Batches > Commits; Stats() must never
// return it, no matter how many commits and batch publications land
// mid-poll.
func TestStatsTornReadRegression(t *testing.T) {
	const committers = 4
	const perCommitter = 40
	db := openDB(t, &Options{CheckpointBytes: -1})
	tid, err := db.Engine().RegisterType("TornBlob")
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]OID, committers)
	if err := db.Update(func(tx *Tx) error {
		for i := range objs {
			o, _, err := tx.CreateRaw(tid, []byte("x"))
			if err != nil {
				return err
			}
			objs[i] = o
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var (
		committerWG sync.WaitGroup
		pollerWG    sync.WaitGroup
		stop        atomic.Bool
	)
	for i := 0; i < committers; i++ {
		committerWG.Add(1)
		go func(o OID) {
			defer committerWG.Done()
			for n := 0; n < perCommitter; n++ {
				if err := db.Update(func(tx *Tx) error {
					_, err := tx.UpdateLatestRaw(o, []byte(fmt.Sprintf("v%d", n)))
					return err
				}); err != nil {
					t.Errorf("committer: %v", err)
					return
				}
			}
		}(objs[i])
	}
	// Pollers hammer Stats() while the committers run; every snapshot
	// must be internally consistent.
	for p := 0; p < 2; p++ {
		pollerWG.Add(1)
		go func() {
			defer pollerWG.Done()
			for {
				st := db.Stats()
				if st.Batches > st.Commits {
					t.Errorf("torn read: Batches (%d) > Commits (%d)", st.Batches, st.Commits)
					return
				}
				if stop.Load() {
					return
				}
			}
		}()
	}
	committerWG.Wait()
	stop.Store(true)
	pollerWG.Wait()

	st := db.Stats()
	want := uint64(2 + 1 + committers*perCommitter) // init + register + seed + updates
	if st.Commits != want {
		t.Errorf("Commits = %d, want %d", st.Commits, want)
	}
}
