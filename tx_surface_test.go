package ode

// Surface tests for the Tx facade: every public wrapper is exercised
// through the public API at least once (semantics are tested in depth
// in internal/core; these catch wiring mistakes in the facade).

import (
	"strings"
	"testing"
)

func TestTxFacadeSurface(t *testing.T) {
	db := openDB(t, &Options{Policy: DeltaChain})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	var v0, v1 VPtr[Part]
	var stamp0 Stamp

	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "root"})
		if err != nil {
			return err
		}
		v0, err = p.Pin(tx)
		if err != nil {
			return err
		}
		stamp0 = tx.CurrentStamp()
		v1, err = p.NewVersion(tx)
		if err != nil {
			return err
		}
		// Configuration + context through the Tx facade.
		if err := tx.SaveConfig("facade", []Binding{
			{Slot: "only", Obj: p.OID(), VID: v0.VID()},
		}); err != nil {
			return err
		}
		return tx.SetContext("facade-ctx", map[OID]VID{p.OID(): v0.VID()})
	}); err != nil {
		t.Fatal(err)
	}

	if err := db.View(func(tx *Tx) error {
		// Owner / Tnext / Leaves / AsOf / Render.
		owner, err := tx.Owner(v0.VID())
		if err != nil || owner != p.OID() {
			t.Fatalf("Owner: %v %v", owner, err)
		}
		tn, err := tx.Tnext(p.OID(), v0.VID())
		if err != nil || tn != v1.VID() {
			t.Fatalf("Tnext: %v %v", tn, err)
		}
		leaves, err := tx.Leaves(p.OID())
		if err != nil || len(leaves) != 1 || leaves[0] != v1.VID() {
			t.Fatalf("Leaves: %v %v", leaves, err)
		}
		at, ok, err := tx.AsOf(p.OID(), stamp0)
		if err != nil || !ok || at != v0.VID() {
			t.Fatalf("AsOf: %v %v %v", at, ok, err)
		}
		graph, err := tx.Render(p.OID())
		if err != nil || !strings.Contains(graph, "derived-from:") {
			t.Fatalf("Render: %q %v", graph, err)
		}
		// Ptr-level Leaves and AsOf.
		pl, err := p.Leaves(tx)
		if err != nil || len(pl) != 1 {
			t.Fatalf("Ptr.Leaves: %v %v", pl, err)
		}
		pa, ok, err := p.AsOf(tx, stamp0)
		if err != nil || !ok || pa.VID() != v0.VID() {
			t.Fatalf("Ptr.AsOf: %v %v %v", pa, ok, err)
		}
		// VPtr.Tnext.
		vn, err := v0.Tnext(tx)
		if err != nil || vn.VID() != v1.VID() {
			t.Fatalf("VPtr.Tnext: %v %v", vn, err)
		}
		// Config facade reads.
		bs, ok, err := tx.GetConfig("facade")
		if err != nil || !ok || len(bs) != 1 || bs[0].Slot != "only" {
			t.Fatalf("GetConfig: %v %v %v", bs, ok, err)
		}
		rs, err := tx.ResolveConfig("facade")
		if err != nil || len(rs) != 1 || rs[0].VID != v0.VID() {
			t.Fatalf("ResolveConfig: %v %v", rs, err)
		}
		names, err := tx.Configs()
		if err != nil || len(names) != 1 {
			t.Fatalf("Configs: %v %v", names, err)
		}
		// Context facade reads.
		m, ok, err := tx.GetContext("facade-ctx")
		if err != nil || !ok || m[p.OID()] != v0.VID() {
			t.Fatalf("GetContext: %v %v %v", m, ok, err)
		}
		rv, err := tx.ResolveInContext("facade-ctx", p.OID())
		if err != nil || rv != v0.VID() {
			t.Fatalf("ResolveInContext: %v %v", rv, err)
		}
		ctxs, err := tx.Contexts()
		if err != nil || len(ctxs) != 1 {
			t.Fatalf("Contexts: %v %v", ctxs, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Deletion wrappers.
	if err := db.Update(func(tx *Tx) error {
		if err := tx.DeleteConfig("facade"); err != nil {
			return err
		}
		return tx.DeleteContext("facade-ctx")
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		if names, _ := tx.Configs(); len(names) != 0 {
			t.Fatalf("config survived: %v", names)
		}
		if names, _ := tx.Contexts(); len(names) != 0 {
			t.Fatalf("context survived: %v", names)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTriggerScopeFacades(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	objHits, allHits := 0, 0
	idObj := db.OnObject(p.OID(), OnAny, false, func(Event) { objHits++ })
	idAll := db.OnAll(OnAny, false, func(Event) { allHits++ })
	if err := db.Update(func(tx *Tx) error {
		_, err := p.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if objHits != 1 || allHits != 1 {
		t.Fatalf("scoped triggers: obj=%d all=%d", objHits, allHits)
	}
	db.RemoveTrigger(idObj)
	db.RemoveTrigger(idAll)
	if err := db.Update(func(tx *Tx) error {
		_, err := p.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if objHits != 1 || allHits != 1 {
		t.Fatal("removed triggers still firing")
	}
}

func TestIndexClose(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	ix, err := parts.EnsureIndex("byname", func(p *Part) ([]byte, bool) {
		return KeyString(p.Name), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error {
		_, err := parts.Create(tx, &Part{Name: "a"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ix.Close() // detach the maintenance trigger; entries stay
	if err := db.Update(func(tx *Tx) error {
		_, err := parts.Create(tx, &Part{Name: "b"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		n, err := ix.Count(tx)
		if err != nil || n != 1 {
			t.Fatalf("closed index maintained: %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
