// Package ode is a Go reproduction of the object-versioning design of
// the Ode object database ("Object Versioning in Ode", Agrawal, Buroff,
// Gehani & Shasha, ICDE 1991).
//
// The package provides persistent objects with identity, orthogonal
// versioning (any object can grow versions at any time, at no cost
// before the first NewVersion), generic references that always bind to
// the latest version (Ptr), specific references that pin one version
// (VPtr), automatically maintained temporal and derived-from
// relationships, version deletion with derivation-tree splicing,
// configurations, contexts, and triggers — all over a from-scratch
// storage engine with a write-ahead log and crash recovery.
//
// # Quick start
//
//	db, err := ode.Open(dir, nil)
//	parts, err := ode.Register[Part](db, "Part")
//	err = db.Update(func(tx *ode.Tx) error {
//	    p, err := parts.Create(tx, &Part{Name: "ALU"})   // pnew
//	    v0, err := p.Pin(tx)                             // specific ref
//	    v1, err := p.NewVersion(tx)                      // newversion
//	    err = v1.Set(tx, &Part{Name: "ALU", Rev: 2})
//	    cur, err := p.Deref(tx)                          // latest (Rev 2)
//	    old, err := v0.Deref(tx)                         // pinned (Rev 0)
//	    return err
//	})
//
// All reads and writes happen inside db.View / db.Update transactions;
// Update transactions are atomic and durable (WAL + crash recovery).
package ode

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ode/internal/core"
	"ode/internal/faultfs"
	"ode/internal/oid"
	"ode/internal/txn"
)

// Re-exported identifier types. OID is a generic reference to an object
// (binds to the latest version); VID identifies one immutable-identity
// version; Stamp is the logical creation clock.
type (
	// OID is an object id: a generic reference.
	OID = oid.OID
	// VID is a version id: a specific reference.
	VID = oid.VID
	// Stamp is a logical timestamp assigned at version creation.
	Stamp = oid.Stamp
	// TypeID is a registered type's catalog id.
	TypeID = oid.TypeID
)

// Errors surfaced by the public API.
var (
	ErrNoObject  = core.ErrNoObject
	ErrNoVersion = core.ErrNoVersion
	ErrNoType    = core.ErrNoType
	// ErrReadOnly reports a mutation inside a View transaction or on a
	// database opened with Options.ReadOnly.
	ErrReadOnly = txn.ErrReadOnly
	ErrClosed   = txn.ErrClosed
	// ErrShardMismatch reports Options.Shards disagreeing with the
	// shard count of an existing database directory.
	ErrShardMismatch = txn.ErrShardMismatch
	// ErrMixedLayout reports a directory containing both the legacy
	// single-file layout and the sharded layout.
	ErrMixedLayout = txn.ErrMixedLayout
	// ErrPartialLayout reports a directory containing shard files but no
	// shard-count metadata (an interrupted create or a deleted
	// shards.ode); Open refuses it rather than re-create over the
	// leftovers.
	ErrPartialLayout = txn.ErrPartialLayout
)

// (ErrTxDone is declared alongside Tx in tx.go.)

// StoragePolicy selects how version payloads are stored on disk.
type StoragePolicy = core.PayloadPolicy

// FS is the pluggable filesystem seam beneath the storage stack (see
// internal/faultfs). Production never sets it; the crash-consistency
// test matrix injects deterministic device faults through it.
type FS = faultfs.FS

// Storage policies: FullCopy stores each version whole; DeltaChain
// stores versions as binary deltas against their derived-from parent
// with periodic full keyframes (the SCCS/RCS-style policy the paper
// describes).
const (
	FullCopy   = core.FullCopy
	DeltaChain = core.DeltaChain
)

// Options configures Open. The zero value (or nil) gives a 4 KiB page
// size, synchronous commits, and full-copy version storage.
type Options struct {
	// Shards is the number of independent storage shards (heap + WAL +
	// buffer pool + commit pipeline). Objects are routed to shards by
	// id, so unrelated commits proceed in parallel on distinct shards;
	// a transaction touching one shard commits exactly as before, one
	// touching several uses two-phase commit through a coordinator log.
	// 0 adopts an existing directory's layout (GOMAXPROCS for a fresh
	// one); an explicit value must match an existing directory. 1 keeps
	// the legacy single-file layout, byte-compatible with databases
	// created before sharding existed.
	Shards int
	// Policy selects FullCopy (default) or DeltaChain version storage.
	Policy StoragePolicy
	// MaxChain bounds delta chains (keyframe interval) under DeltaChain;
	// 0 means core.DefaultMaxChain.
	MaxChain int
	// DeltaTier enables the delta storage tier (DESIGN.md §14): stored
	// full payloads of cold versions are demoted to deltas against
	// their derived-from parent — inline when a version gains a D-child
	// or loses one to pdelete, and in the background by a per-shard
	// compactor — and materialised contents are served through an
	// epoch-tagged LRU cache. Works under either Policy.
	DeltaTier bool
	// AnchorInterval bounds how far any version may sit from a full
	// anchor under DeltaTier; the compactor promotes versions found
	// deeper (e.g. after the interval was lowered). 0 means MaxChain.
	AnchorInterval int
	// MatCacheBytes is the materialisation cache budget under
	// DeltaTier; 0 means core.DefaultCacheBytes (4 MiB), negative
	// disables the cache.
	MatCacheBytes int64
	// DerefCacheBytes is the read-side dereference cache budget: a
	// sharded, epoch-tagged LRU of (latest vid, materialised content)
	// keyed by object id, letting hot Deref/latest reads on snapshot
	// transactions skip page decoding entirely. Independent of
	// DeltaTier. 0 means core.DefaultDerefCacheBytes (4 MiB), negative
	// disables it.
	DerefCacheBytes int64
	// CompactInterval paces the background compactor under DeltaTier:
	// each physical shard is swept in bounded transactions at most this
	// often. 0 means DefaultCompactInterval; negative disables the
	// background goroutines (inline demotion and the cache remain, and
	// Compact still runs sweeps on demand).
	CompactInterval time.Duration
	// PageSize applies when creating a new database (default 4096).
	PageSize int
	// PoolPages is the buffer-pool capacity in pages (default 1024).
	PoolPages int
	// NoSync disables fsync on commit. Much faster; the most recent
	// commits may be lost on a crash (database integrity is preserved).
	NoSync bool
	// NoGroupCommit disables group commit: every Update then appends and
	// fsyncs its own WAL records while holding the writer lock, instead
	// of sharing one fsync with every transaction committing in the same
	// window. Benchmarks use it as the pre-batching baseline.
	NoGroupCommit bool
	// CommitBatchSize caps how many concurrent Updates one group-commit
	// fsync may cover; 0 means txn.DefaultCommitBatchSize (64).
	CommitBatchSize int
	// CommitBatchDelay makes the group committer wait that long after a
	// batch's first commit for more to join. 0 (the default) flushes
	// immediately: commits batch only as far as they naturally pile up
	// behind an in-flight fsync, and single-writer latency is unchanged.
	// A positive delay buys larger batches at exactly that much added
	// commit latency.
	CommitBatchDelay time.Duration
	// CheckpointBytes sets the WAL size that triggers a checkpoint;
	// <0 disables automatic checkpoints.
	CheckpointBytes int64
	// ReadOnly opens the database without write permission.
	ReadOnly bool
	// FS overrides the filesystem the data file and WAL live on. Nil
	// (the default) means the real OS; tests install a fault-injecting
	// implementation to exercise crash consistency.
	FS FS
	// Tracer, when set, receives structured span events for every
	// write transaction (begin/prepare/fsync/publish/abort) and
	// checkpoint. The tracer runs on its own goroutine behind a
	// bounded queue: it may be slow, block, or panic without ever
	// stalling or corrupting a commit — events past the queue bound
	// are dropped and counted in Metrics().TracerDropped.
	Tracer Tracer
	// TracerBuffer bounds the tracer event queue; 0 means
	// DefaultTracerBuffer (1024).
	TracerBuffer int
	// NoMetrics disables the observability layer entirely — no
	// counters, histograms, or commit-path timestamps. It exists as
	// the uninstrumented baseline for the overhead benchmark (E13);
	// production should leave it false (the instrumented hot path
	// costs a few atomic adds per commit).
	NoMetrics bool
	// DebugAddr, when non-empty, starts a debug HTTP listener on that
	// address (e.g. "127.0.0.1:6060" or "127.0.0.1:0") serving
	// GET /metrics (Prometheus text exposition) and GET /stats
	// (Stats as JSON). The listener closes with the DB; the bound
	// address is available from DebugAddr().
	DebugAddr string
}

// DB is an open Ode database.
type DB struct {
	coord *txn.Coordinator
	eng   *core.Engine
	path  string

	// background compactor state (compact.go); nil unless DeltaTier is
	// on with a non-negative CompactInterval.
	compactStop chan struct{}
	compactDone chan struct{}

	// debug HTTP listener state (metrics.go); nil without DebugAddr.
	debugLis net.Listener
	debugSrv *http.Server
}

// dir returns the database directory.
func (db *DB) dir() string { return db.path }

// Dir returns the database directory path.
func (db *DB) Dir() string { return db.path }

// Open opens the database in dir, creating it (and dir) if absent.
func Open(dir string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	topts := txn.Options{
		Shards:           o.Shards,
		NoSync:           o.NoSync,
		NoGroupCommit:    o.NoGroupCommit,
		CommitBatchSize:  o.CommitBatchSize,
		CommitBatchDelay: o.CommitBatchDelay,
		CheckpointBytes:  o.CheckpointBytes,
		FS:               o.FS,
		NoMetrics:        o.NoMetrics,
		Tracer:           o.Tracer,
		TracerBuffer:     o.TracerBuffer,
	}
	topts.Storage.PageSize = o.PageSize
	topts.Storage.PoolPages = o.PoolPages
	topts.Storage.ReadOnly = o.ReadOnly

	fsys := o.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if o.ReadOnly {
		// A read-only open must never create files; require one of the
		// two layouts to already exist.
		_, legacyErr := fsys.Stat(filepath.Join(dir, txn.DataFileName))
		_, shardErr := fsys.Stat(filepath.Join(dir, txn.ShardsFileName))
		if errors.Is(legacyErr, os.ErrNotExist) && errors.Is(shardErr, os.ErrNotExist) {
			return nil, fmt.Errorf("ode: no database at %s", dir)
		}
	}
	coord, err := txn.OpenCoordinator(dir, topts)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewSharded(coord, core.Options{
		Policy:          o.Policy,
		MaxChain:        o.MaxChain,
		DeltaTier:       o.DeltaTier,
		AnchorInterval:  o.AnchorInterval,
		CacheBytes:      o.MatCacheBytes,
		DerefCacheBytes: o.DerefCacheBytes,
	})
	if err != nil {
		coord.Close()
		return nil, err
	}
	db := &DB{coord: coord, eng: eng, path: dir}
	if o.DeltaTier && !o.ReadOnly && o.CompactInterval >= 0 {
		db.startCompactor(o.CompactInterval)
	}
	if o.DebugAddr != "" {
		if err := db.startDebugServer(o.DebugAddr); err != nil {
			db.stopCompactor()
			coord.Close()
			return nil, fmt.Errorf("ode: debug listener: %w", err)
		}
	}
	return db, nil
}

// Shards returns the number of logical storage shards backing this
// database — the count new allocations spread over. After a merge the
// physical file count can be higher (emptied shards are kept).
func (db *DB) Shards() int { return db.coord.N() }

// Reshard changes the logical shard count to n while the database keeps
// serving transactions: a split (for example 4 → 8) spreads existing and
// future load over more shards, a merge (8 → 4) folds shards away. Data
// moves in small transactional chunks through the ordinary two-phase
// commit path, so a crash at any point leaves the database recoverable —
// reopening finishes with a consistent map, and an interrupted reshard
// can simply be issued again to complete the migration. Concurrent
// Updates are restarted transparently when a chunk's routing flip
// commits under them. Only databases created with Shards >= 2 can
// reshard; n may exceed the original count.
func (db *DB) Reshard(n int) error {
	return db.eng.Reshard(n)
}

// ReshardProgress is the live progress snapshot of a Reshard: whether
// one is active, its target count, and the chunks, objects and versions
// migrated so far (counters freeze when the reshard completes).
type ReshardProgress = txn.ReshardProgress

// ReshardProgress reports the live progress of an in-flight Reshard:
// whether one is active, its target count, and the chunks, objects and
// versions migrated so far.
func (db *DB) ReshardProgress() txn.ReshardProgress {
	return db.eng.ReshardProgress()
}

// Close checkpoints and closes the database.
func (db *DB) Close() error {
	db.stopDebugServer()
	db.stopCompactor()
	return db.coord.Close()
}

// Update runs fn in a read-write transaction. If fn returns nil the
// transaction commits durably; on error or panic it rolls back
// completely. The Tx is invalid once fn returns (ErrTxDone on later
// use).
func (db *DB) Update(fn func(tx *Tx) error) error {
	return db.eng.Write(func(ctx *core.Tx) error {
		tx := &Tx{db: db, ctx: ctx, writable: true}
		defer func() { tx.done = true }()
		return fn(tx)
	})
}

// View runs fn in a read-only transaction against a snapshot of the
// most recently committed state. Views run fully concurrently with each
// other and with Updates: a View neither blocks nor is blocked by a
// writer (including its commit fsync). On a sharded database the
// snapshot is taken atomically with respect to cross-shard commits: an
// Update that touched several shards is visible on all of them or none
// of them, never torn (single-shard Updates committing while the
// snapshot is taken may land shard by shard, but each is confined to
// one shard, so no transaction is ever seen partially). The Tx is
// invalid once fn returns (ErrTxDone on later use).
func (db *DB) View(fn func(tx *Tx) error) error {
	return db.eng.Read(func(ctx *core.Tx) error {
		tx := &Tx{db: db, ctx: ctx}
		defer func() { tx.done = true }()
		return fn(tx)
	})
}

// Checkpoint flushes the page files and truncates the write-ahead logs
// (every shard's, and the coordinator's decision log).
func (db *DB) Checkpoint() error { return db.coord.Checkpoint() }

// Stats aggregates engine and transaction-manager counters.
type Stats struct {
	Objects     uint64
	Versions    uint64
	Commits     uint64
	Aborts      uint64
	Checkpoints uint64
	WALBytes    int64
	// Batches counts group-commit fsyncs; Commits/Batches is the mean
	// number of transactions sharing one fsync. Zero with NoGroupCommit
	// or NoSync.
	Batches uint64
	// RecoveredTxns counts committed transactions replayed from the WAL
	// by crash recovery at Open.
	RecoveredTxns uint64
	// DerefCacheHits/Misses/Evictions/Bytes are the read-side
	// dereference cache counters (all zero when disabled).
	DerefCacheHits      uint64
	DerefCacheMisses    uint64
	DerefCacheEvictions uint64
	DerefCacheBytes     int64
	// AllocLeases counts batched id-allocator leases taken from the
	// superblock counters; AllocIDs counts ids handed out. Their ratio
	// approaches the lease size on allocation-heavy workloads.
	AllocLeases uint64
	AllocIDs    uint64
}

// Stats returns current database statistics.
func (db *DB) Stats() Stats {
	es := db.eng.Stats()
	ms := db.coord.Stats()
	ds, _ := db.eng.DerefCacheStats()
	leases, ids := db.eng.AllocStats()
	return Stats{
		Objects:             es.Objects,
		Versions:            es.Versions,
		Commits:             ms.Commits,
		Aborts:              ms.Aborts,
		Checkpoints:         ms.Checkpoints,
		WALBytes:            ms.WALBytes,
		Batches:             ms.Batches,
		RecoveredTxns:       ms.RecoveredTxns,
		DerefCacheHits:      ds.Hits,
		DerefCacheMisses:    ds.Misses,
		DerefCacheEvictions: ds.Evictions,
		DerefCacheBytes:     ds.Bytes,
		AllocLeases:         leases,
		AllocIDs:            ids,
	}
}

// CheckIntegrity validates every structural invariant of every object
// and index (expensive; meant for tests and tools).
func (db *DB) CheckIntegrity() error {
	return db.eng.Read(func(tx *core.Tx) error { return tx.CheckAll() })
}

// Engine exposes the underlying engine for the repository's internal
// tools and benchmarks. It is not part of the stable API.
func (db *DB) Engine() *core.Engine { return db.eng }
