package ode_test

// Crash matrix over the online-resharding path: a seeded 4-shard store
// live-splits to 8 and merges back to 4 over the fault-injecting
// filesystem, the power dies after every mutating I/O operation in the
// whole run — shard-file creation, chunk migration 2PC, map-frame
// appends, the lot — and the reopened image must pass a full integrity
// check, serve every acked object at its acked state, complete a fresh
// Reshard (the resume path), and keep accepting writes.

import (
	"fmt"
	"testing"

	"ode"
	"ode/internal/faultfs"
)

type reshardAcked struct {
	ptrs   map[string]ode.Ptr[Widget]
	rev    map[string]int
	split  bool // Reshard(8) returned nil
	merged bool // Reshard(4) returned nil
}

// runReshardWorkload seeds a 4-shard store, splits it to 8 and merges
// back to 4, reading objects back after each step. Never closes.
func runReshardWorkload(fsys faultfs.FS) (reshardAcked, error) {
	acked := reshardAcked{ptrs: map[string]ode.Ptr[Widget]{}, rev: map[string]int{}}
	opts := &ode.Options{PageSize: 512, CheckpointBytes: -1, FS: fsys, Shards: 4}
	db, err := ode.Open("/vdb", opts)
	if err != nil {
		return acked, err
	}
	widgets, err := ode.Register[Widget](db, "Widget")
	if err != nil {
		return acked, err
	}
	const nObjs, nVers = 6, 2
	for i := 0; i < nObjs; i++ {
		name := fmt.Sprintf("w%d", i)
		var p ode.Ptr[Widget]
		if err := db.Update(func(tx *ode.Tx) error {
			var err error
			p, err = widgets.Create(tx, &Widget{Name: name, Rev: 0})
			return err
		}); err != nil {
			return acked, err
		}
		acked.ptrs[name] = p
		acked.rev[name] = 0
		for v := 1; v <= nVers; v++ {
			if err := db.Update(func(tx *ode.Tx) error {
				nv, err := p.NewVersion(tx)
				if err != nil {
					return err
				}
				return nv.Modify(tx, func(w *Widget) { w.Rev = v })
			}); err != nil {
				return acked, err
			}
			acked.rev[name] = v
		}
	}
	if err := db.Reshard(8); err != nil {
		return acked, err
	}
	acked.split = true
	if err := checkAcked(db, acked); err != nil {
		return acked, fmt.Errorf("after split: %w", err)
	}
	if err := db.Reshard(4); err != nil {
		return acked, err
	}
	acked.merged = true
	if err := checkAcked(db, acked); err != nil {
		return acked, fmt.Errorf("after merge: %w", err)
	}
	// The merged store must still accept writes before the run ends.
	for name, p := range acked.ptrs {
		rev := acked.rev[name] + 1
		if err := db.Update(func(tx *ode.Tx) error {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return err
			}
			return nv.Modify(tx, func(w *Widget) { w.Rev = rev })
		}); err != nil {
			return acked, err
		}
		acked.rev[name] = rev
		break
	}
	return acked, nil
}

// checkAcked derefs every acked object at its acked rev.
func checkAcked(db *ode.DB, acked reshardAcked) error {
	return db.View(func(tx *ode.Tx) error {
		for name, p := range acked.ptrs {
			w, err := p.Deref(tx)
			if err != nil {
				return fmt.Errorf("deref %s: %w", name, err)
			}
			if w.Name != name || w.Rev != acked.rev[name] {
				return fmt.Errorf("%s: got %+v, want rev %d", name, w, acked.rev[name])
			}
		}
		return nil
	})
}

// verifyReshardImage reopens the crashed image and checks integrity,
// acked state, reshard resumability, and write availability.
func verifyReshardImage(crashed faultfs.FS, acked reshardAcked) error {
	// No Shards option: mid-reshard the logical count is whichever side
	// of the flip recovery lands on, and both are valid.
	db, err := ode.Open("/vdb", &ode.Options{PageSize: 512, FS: crashed})
	if err != nil {
		if len(acked.ptrs) == 0 {
			return nil
		}
		return fmt.Errorf("reopen with %d acked objects: %w", len(acked.ptrs), err)
	}
	defer db.Close()
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	if _, err := ode.Register[Widget](db, "Widget"); err != nil {
		return fmt.Errorf("re-register: %w", err)
	}
	if err := checkAcked(db, acked); err != nil {
		return err
	}
	// A crash mid-migration must leave the store able to finish the job:
	// issue a fresh split on the recovered image and re-verify.
	if err := db.Reshard(8); err != nil {
		return fmt.Errorf("reshard after recovery: %w", err)
	}
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity after resumed reshard: %w", err)
	}
	if err := checkAcked(db, acked); err != nil {
		return fmt.Errorf("after resumed reshard: %w", err)
	}
	for name, p := range acked.ptrs {
		if err := db.Update(func(tx *ode.Tx) error {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return fmt.Errorf("post-recovery newversion %s: %w", name, err)
			}
			return nv.Modify(tx, func(w *Widget) { w.Rev = -1 })
		}); err != nil {
			return err
		}
		break
	}
	return nil
}

// TestReshardCrashMatrixPowerCut cuts power after every mutating I/O
// operation across the seed + split + merge run.
func TestReshardCrashMatrixPowerCut(t *testing.T) {
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runReshardWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	ops := dry.Counts().Ops
	if ops < 10 {
		t.Fatalf("op space suspiciously small: %d", ops)
	}
	for n := uint64(1); n <= ops; n++ {
		mem := faultfs.NewMem()
		acked, _ := runReshardWorkload(faultfs.NewInjector(mem, faultfs.Plan{PowerCutAfterOps: n}))
		if err := verifyReshardImage(mem.Crash(false), acked); err != nil {
			t.Errorf("powerCutAfter=%d: %v", n, err)
		}
	}
	t.Logf("reshard crash matrix: %d power-cut points", ops)
}

// TestReshardCrashMatrixFailedSyncs fails every fsync point instead:
// the reshard must surface the error and leave a recoverable store.
func TestReshardCrashMatrixFailedSyncs(t *testing.T) {
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runReshardWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	syncs := dry.Counts().Syncs
	step := uint64(1)
	if testing.Short() {
		step = 7
	}
	for n := uint64(1); n <= syncs; n += step {
		for _, keep := range []bool{false, true} {
			mem := faultfs.NewMem()
			acked, _ := runReshardWorkload(faultfs.NewInjector(mem, faultfs.Plan{FailSyncN: n}))
			if err := verifyReshardImage(mem.Crash(keep), acked); err != nil {
				t.Errorf("failSync=%d keep=%v: %v", n, keep, err)
			}
		}
	}
	t.Logf("reshard crash matrix: %d failed-sync points x2 (step %d)", syncs, step)
}
