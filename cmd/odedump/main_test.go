package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ode"
)

type widget struct {
	Name string
}

func buildTestDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	widgets, err := ode.Register[widget](db, "widget")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *ode.Tx) error {
		p, err := widgets.Create(tx, &widget{Name: "w1"})
		if err != nil {
			return err
		}
		if _, err := p.NewVersion(tx); err != nil {
			return err
		}
		pin, err := p.Pin(tx)
		if err != nil {
			return err
		}
		if err := tx.SaveConfig("demo", []ode.Binding{
			{Slot: "main", Obj: p.OID(), VID: pin.VID()},
			{Slot: "tip", Obj: p.OID()},
		}); err != nil {
			return err
		}
		return tx.SetContext("rel", map[ode.OID]ode.VID{p.OID(): pin.VID()})
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDumpOutput(t *testing.T) {
	dir := buildTestDB(t)
	var sb strings.Builder
	if err := run([]string{"-check", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"objects:      1",
		"versions:     2",
		"widget",
		"configurations:",
		"demo:",
		"static v",
		"dynamic (latest)",
		"contexts:",
		"rel: 1 pinned",
		"version graphs:",
		"derived-from:",
		"*latest",
		"integrity check... ok",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpNoGraphs(t *testing.T) {
	dir := buildTestDB(t)
	var sb strings.Builder
	if err := run([]string{"-graphs=false", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "version graphs:") {
		t.Fatal("graphs rendered despite -graphs=false")
	}
}

func TestDumpUsageError(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("missing dbdir accepted")
	}
}

func TestDumpMissingDB(t *testing.T) {
	// Opening a fresh temp dir creates an empty database; dumping it
	// must succeed with zero objects.
	var sb strings.Builder
	if err := run([]string{t.TempDir()}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objects:      0") {
		t.Fatalf("empty dump wrong:\n%s", sb.String())
	}
}

func TestDumpShardedLayout(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	widgets, err := ode.Register[widget](db, "widget")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := db.Update(func(tx *ode.Tx) error {
			_, err := widgets.Create(tx, &widget{Name: "s"})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-check", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"layout:       sharded (3)",
		"data.000", "wal.002", "coord.ode",
		"shard 000:", "shard 002:",
		"objects:      6",
		"integrity check... ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpMixedLayoutFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a legacy data file next to the sharded layout.
	if err := os.WriteFile(filepath.Join(dir, "data.ode"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{dir}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "both legacy") {
		t.Fatalf("mixed layout not refused: %v", err)
	}
}

// TestDumpMixedLayoutErrorsIs pins the refusal's error identity: a
// caller (or script) must be able to errors.Is the failure, not match
// message text.
func TestDumpMixedLayoutErrorsIs(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "data.ode"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{dir}, &strings.Builder{})
	if !errors.Is(err, ode.ErrMixedLayout) {
		t.Fatalf("want ErrMixedLayout, got %v", err)
	}
}

// TestDumpPartialLayoutErrorsIs: shard files without shards.ode are a
// damaged directory; the dump must refuse (with the txn layer's error
// identity) rather than quietly create a fresh database next to the
// orphaned data.
func TestDumpPartialLayoutErrorsIs(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "shards.ode")); err != nil {
		t.Fatal(err)
	}
	err = run([]string{dir}, &strings.Builder{})
	if !errors.Is(err, ode.ErrPartialLayout) {
		t.Fatalf("want ErrPartialLayout, got %v", err)
	}
	// The same directory with only the coordinator log left behind is
	// still partial.
	for _, name := range []string{"data.000", "data.001", "wal.000", "wal.001"} {
		os.Remove(filepath.Join(dir, name))
	}
	err = run([]string{dir}, &strings.Builder{})
	if !errors.Is(err, ode.ErrPartialLayout) {
		t.Fatalf("coord.ode-only dir: want ErrPartialLayout, got %v", err)
	}
}

// buildGoldenDB grows a fixed 4-shard database single-threaded, so
// every byte of the dump is reproducible.
func buildGoldenDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	widgets, err := ode.Register[widget](db, "widget")
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]ode.Ptr[widget], 8)
	for i := range ptrs {
		i := i
		if err := db.Update(func(tx *ode.Tx) error {
			var err error
			ptrs[i], err = widgets.Create(tx, &widget{Name: "g" + string(rune('0'+i))})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Update(func(tx *ode.Tx) error {
		if _, err := ptrs[0].NewVersion(tx); err != nil {
			return err
		}
		pin, err := ptrs[1].Pin(tx)
		if err != nil {
			return err
		}
		if err := tx.SaveConfig("golden", []ode.Binding{
			{Slot: "head", Obj: ptrs[0].OID()},
			{Slot: "pinned", Obj: ptrs[1].OID(), VID: pin.VID()},
		}); err != nil {
			return err
		}
		return tx.SetContext("golden-ctx", map[ode.OID]ode.VID{ptrs[1].OID(): pin.VID()})
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDumpShardedGolden compares the complete dump of a fixed 4-shard
// database against testdata/sharded4.golden (regenerate with
// UPDATE_GOLDEN=1 go test ./cmd/odedump).
func TestDumpShardedGolden(t *testing.T) {
	dir := buildGoldenDB(t)
	var sb strings.Builder
	if err := run([]string{"-check", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	got := strings.ReplaceAll(sb.String(), dir, "<DIR>")
	golden := filepath.Join("testdata", "sharded4.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("dump diverges from %s (regenerate with UPDATE_GOLDEN=1 if intended):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}
