package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ode"
)

type widget struct {
	Name string
}

func buildTestDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	widgets, err := ode.Register[widget](db, "widget")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *ode.Tx) error {
		p, err := widgets.Create(tx, &widget{Name: "w1"})
		if err != nil {
			return err
		}
		if _, err := p.NewVersion(tx); err != nil {
			return err
		}
		pin, err := p.Pin(tx)
		if err != nil {
			return err
		}
		if err := tx.SaveConfig("demo", []ode.Binding{
			{Slot: "main", Obj: p.OID(), VID: pin.VID()},
			{Slot: "tip", Obj: p.OID()},
		}); err != nil {
			return err
		}
		return tx.SetContext("rel", map[ode.OID]ode.VID{p.OID(): pin.VID()})
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDumpOutput(t *testing.T) {
	dir := buildTestDB(t)
	var sb strings.Builder
	if err := run([]string{"-check", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"objects:      1",
		"versions:     2",
		"widget",
		"configurations:",
		"demo:",
		"static v",
		"dynamic (latest)",
		"contexts:",
		"rel: 1 pinned",
		"version graphs:",
		"derived-from:",
		"*latest",
		"integrity check... ok",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpNoGraphs(t *testing.T) {
	dir := buildTestDB(t)
	var sb strings.Builder
	if err := run([]string{"-graphs=false", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "version graphs:") {
		t.Fatal("graphs rendered despite -graphs=false")
	}
}

func TestDumpUsageError(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("missing dbdir accepted")
	}
}

func TestDumpMissingDB(t *testing.T) {
	// Opening a fresh temp dir creates an empty database; dumping it
	// must succeed with zero objects.
	var sb strings.Builder
	if err := run([]string{t.TempDir()}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objects:      0") {
		t.Fatalf("empty dump wrong:\n%s", sb.String())
	}
}

func TestDumpShardedLayout(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	widgets, err := ode.Register[widget](db, "widget")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := db.Update(func(tx *ode.Tx) error {
			_, err := widgets.Create(tx, &widget{Name: "s"})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-check", dir}, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"layout:       sharded (3)",
		"data.000", "wal.002", "coord.ode",
		"shard 000:", "shard 002:",
		"objects:      6",
		"integrity check... ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpMixedLayoutFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db, err := ode.Open(dir, &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a legacy data file next to the sharded layout.
	if err := os.WriteFile(filepath.Join(dir, "data.ode"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{dir}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "both legacy") {
		t.Fatalf("mixed layout not refused: %v", err)
	}
}
