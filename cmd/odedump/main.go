// Command odedump inspects an Ode database directory: statistics, the
// type catalog, payload-representation totals (full copies vs deltas),
// secondary indexes, every object's version graph (in the paper's
// notation), configurations, contexts — and optionally a full integrity
// check.
//
// Usage:
//
//	odedump [-check] [-graphs=false] [-max N] <dbdir>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ode"
	"ode/internal/storage"
	"ode/internal/txn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "odedump: %v\n", err)
		os.Exit(1)
	}
}

// describeLayout classifies dir without opening it. For a sharded
// directory it prints the shard metadata and enumerates every shard's
// data and WAL file with sizes; a directory carrying both layouts is an
// error (same ErrMixedLayout the open would raise, surfaced early and
// loudly).
func describeLayout(w io.Writer, dir string) (string, error) {
	_, legacyErr := os.Stat(filepath.Join(dir, txn.DataFileName))
	_, shardErr := os.Stat(filepath.Join(dir, txn.ShardsFileName))
	legacy, sharded := legacyErr == nil, shardErr == nil
	switch {
	case legacy && sharded:
		return "", fmt.Errorf("%w: refusing to dump %s", txn.ErrMixedLayout, dir)
	case sharded:
		st, err := txn.ReadShardsState(nil, dir)
		if err != nil {
			return "", err
		}
		n := st.Map.N()
		fmt.Fprintf(w, "shard files:  %s (%d logical, %d physical, created %d)\n",
			txn.ShardsFileName, n, st.Phys, st.Created)
		size := func(name string) string {
			fi, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				return "MISSING"
			}
			return fmt.Sprintf("%d bytes", fi.Size())
		}
		for i := 0; i < st.Phys; i++ {
			fmt.Fprintf(w, "  %s %s, %s %s\n",
				txn.ShardDataFileName(i), size(txn.ShardDataFileName(i)),
				txn.ShardWALFileName(i), size(txn.ShardWALFileName(i)))
		}
		fmt.Fprintf(w, "  %s %s\n", txn.CoordWALFileName, size(txn.CoordWALFileName))
		// The persisted routing map: one line per contiguous id range.
		// Undecided flips in the coordinator log may supersede it at
		// open; an epoch above 0 marks a database that has resharded.
		fmt.Fprintf(w, "shard map:    epoch %d, %d ranges\n", st.Map.Epoch(), len(st.Map.Ranges()))
		ranges := st.Map.Ranges()
		for i, r := range ranges {
			hi := "end"
			if i+1 < len(ranges) {
				hi = fmt.Sprintf("%#x", ranges[i+1].Start)
			}
			fmt.Fprintf(w, "  [%#x, %s) -> shard %d\n", r.Start, hi, r.Shard)
		}
		return fmt.Sprintf("sharded (%d)", n), nil
	case legacy:
		return "legacy (single shard)", nil
	default:
		// No metadata file of either layout. Shard files without their
		// shards.ode are a damaged directory, not a fresh one: opening
		// would quietly create a new database next to the orphaned data,
		// so refuse with the same error the txn layer raises.
		if names, err := os.ReadDir(dir); err == nil {
			for _, e := range names {
				if isOrphanShardFile(e.Name()) {
					return "", fmt.Errorf("%w: refusing to dump %s (found %s)", txn.ErrPartialLayout, dir, e.Name())
				}
			}
		}
		// Neither layout: the open below creates a fresh database (the
		// historical dump-an-empty-dir behavior).
		return "fresh (created on open)", nil
	}
}

// isOrphanShardFile reports whether name is a per-shard data/WAL file
// or the coordinator log — the files whose presence without shards.ode
// marks a partial sharded layout.
func isOrphanShardFile(name string) bool {
	if name == txn.CoordWALFileName {
		return true
	}
	var rest string
	switch {
	case len(name) > 5 && name[:5] == "data.":
		rest = name[5:]
	case len(name) > 4 && name[:4] == "wal.":
		rest = name[4:]
	default:
		return false
	}
	if len(rest) != 3 {
		return false
	}
	for _, c := range rest {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// run parses args and dumps the database to w (separated from main for
// testing).
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("odedump", flag.ContinueOnError)
	checkFlag := fs.Bool("check", false, "run the full structural integrity check")
	graphsFlag := fs.Bool("graphs", true, "render per-object version graphs")
	maxFlag := fs.Int("max", 50, "maximum objects to render (-1 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: odedump [-check] [-graphs] [-max N] <dbdir>")
	}
	dir := fs.Arg(0)

	// Classify the on-disk layout before opening: a sharded directory
	// gets its files enumerated, and a directory carrying both layouts
	// is refused here with the underlying error (opening it would fail
	// with the same ErrMixedLayout).
	layout, err := describeLayout(w, dir)
	if err != nil {
		return err
	}

	db, err := ode.Open(dir, nil)
	if err != nil {
		return err
	}
	defer db.Close()

	st := db.Stats()
	fmt.Fprintf(w, "database:     %s\n", dir)
	fmt.Fprintf(w, "layout:       %s\n", layout)
	fmt.Fprintf(w, "objects:      %d\n", st.Objects)
	fmt.Fprintf(w, "versions:     %d\n", st.Versions)
	fmt.Fprintf(w, "wal bytes:    %d\n", st.WALBytes)
	// Per-shard summaries: durable epoch, WAL size, page census.
	for i, m := range db.Engine().Coordinator().Shards() {
		ss := m.Stats()
		_ = m.Read(func(v *storage.TxView) error {
			census, err := v.Census()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "shard %03d:    epoch %d, wal %d bytes, %d commits recovered\n",
				i, v.Epoch(), ss.WALBytes, ss.RecoveredTxns)
			fmt.Fprintf(w, "  pages:      %d slotted, %d btree, %d overflow, %d free\n",
				census.Slotted, census.BTree, census.Overflow, census.Free)
			fmt.Fprintf(w, "  records:    %d (%d live bytes, %d reusable)\n",
				census.Records, census.SlottedLiveBytes, census.SlottedFreeBytes)
			return nil
		})
	}
	// Live routing state (may be newer than the persisted frame when an
	// undecided flip was recovered from the coordinator log).
	if m := db.Engine().Coordinator().Map(); m.Epoch() > 0 {
		fmt.Fprintf(w, "routing:      epoch %d, %d logical shards, %d ranges\n",
			m.Epoch(), m.N(), len(m.Ranges()))
	}
	// How version payloads are physically stored: a store that has run
	// under the delta tier shows delta/same records and a heap smaller
	// than the logical payload volume.
	if ps, err := db.Engine().PayloadStats(); err == nil {
		fmt.Fprintf(w, "payloads:     %d full, %d delta, %d same-as-parent\n",
			ps.Full, ps.Delta, ps.Same)
		fmt.Fprintf(w, "  heap:       %d bytes (%d full + %d delta), logical %d bytes, max chain depth %d\n",
			ps.HeapBytes(), ps.FullBytes, ps.DeltaBytes, ps.LogicalBytes, ps.MaxDepth)
	}
	fmt.Fprintln(w)

	eng := db.Engine()
	err = db.View(func(tx *ode.Tx) error {
		types, err := eng.Types()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "types:")
		for _, name := range types {
			id, _, err := eng.LookupType(name)
			if err != nil {
				return err
			}
			n, err := tx.ExtentCount(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-24s %v  (%d objects)\n", name, id, n)
		}
		fmt.Fprintln(w)

		if idx, err := eng.IndexNames(); err == nil && len(idx) > 0 {
			fmt.Fprintln(w, "indexes:")
			for _, name := range idx {
				n, err := eng.IndexLen(name)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %-40s %d entries\n", name, n)
			}
			fmt.Fprintln(w)
		}

		if names, err := tx.Configs(); err == nil && len(names) > 0 {
			fmt.Fprintln(w, "configurations:")
			for _, name := range names {
				bs, _, err := tx.GetConfig(name)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %s:\n", name)
				for _, b := range bs {
					binding := "dynamic (latest)"
					if !b.VID.IsNil() {
						binding = fmt.Sprintf("static %v", b.VID)
					}
					fmt.Fprintf(w, "    %-16s %v  %s\n", b.Slot, b.Obj, binding)
				}
			}
			fmt.Fprintln(w)
		}
		if names, err := tx.Contexts(); err == nil && len(names) > 0 {
			fmt.Fprintln(w, "contexts:")
			for _, name := range names {
				m, _, err := tx.GetContext(name)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %s: %d pinned\n", name, len(m))
			}
			fmt.Fprintln(w)
		}

		if *graphsFlag {
			fmt.Fprintln(w, "version graphs:")
			rendered := 0
			for _, name := range types {
				id, _, _ := eng.LookupType(name)
				err := tx.Extent(id, func(o ode.OID) (bool, error) {
					if *maxFlag >= 0 && rendered >= *maxFlag {
						return false, nil
					}
					s, err := tx.Render(o)
					if err != nil {
						return false, err
					}
					fmt.Fprintln(w, s)
					rendered++
					return true, nil
				})
				if err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	if *checkFlag {
		fmt.Fprint(w, "integrity check... ")
		if err := db.CheckIntegrity(); err != nil {
			fmt.Fprintf(w, "FAILED\n")
			return err
		}
		fmt.Fprintln(w, "ok")
	}
	return nil
}
