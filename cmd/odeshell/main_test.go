package main

import (
	"strings"
	"testing"

	"ode"
)

func testShell(t *testing.T) (*shell, *strings.Builder) {
	t.Helper()
	// Shards: 1 — the scripts below address objects by literal id (o1,
	// v2, ...), which requires the single-shard layout's sequential ids
	// regardless of the host's core count.
	db, err := ode.Open(t.TempDir(), &ode.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var sb strings.Builder
	return &shell{db: db, out: &sb}, &sb
}

func mustExec(t *testing.T, sh *shell, line string) {
	t.Helper()
	if err := sh.exec(line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
}

func TestShellSession(t *testing.T) {
	sh, out := testShell(t)
	mustExec(t, sh, "new part first content")
	mustExec(t, sh, "nv o1")
	mustExec(t, sh, "set o1 v2 second content")
	mustExec(t, sh, "nv o1 v1") // alternative from the root
	mustExec(t, sh, "show o1")
	mustExec(t, sh, "read o1")
	mustExec(t, sh, "read o1 v1")
	mustExec(t, sh, "hist o1 v2")
	mustExec(t, sh, "leaves o1")
	mustExec(t, sh, "asof o1 1")
	mustExec(t, sh, "ls part")
	mustExec(t, sh, "types")
	mustExec(t, sh, "stats")
	mustExec(t, sh, "check")
	mustExec(t, sh, "help")

	got := out.String()
	for _, want := range []string{
		"created o1 (root version v1)",
		"new version v2",
		"new version v3",
		"derived-from:",
		"latest v3 = \"first content\"", // alternative copies the root's content
		"v1 = \"first content\"",
		"v2 → v1",
		"[v2 v3]",
		"as of @1: v1",
		"o1 (3 versions)",
		"part",
		"Objects:1",
		"ok",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("session output missing %q:\n%s", want, got)
		}
	}
}

func TestShellCache(t *testing.T) {
	sh, out := testShell(t)
	mustExec(t, sh, "new part some content")
	mustExec(t, sh, "read o1") // snapshot read: populates the deref cache
	mustExec(t, sh, "read o1") // second read hits it
	mustExec(t, sh, "cache")

	got := out.String()
	for _, want := range []string{"derefcache:", "hit rate", "allocator:", "leases"} {
		if !strings.Contains(got, want) {
			t.Fatalf("cache output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "derefcache:  1 hits") {
		t.Fatalf("expected exactly one deref cache hit:\n%s", got)
	}
}

func TestShellShardsAndReshard(t *testing.T) {
	db, err := ode.Open(t.TempDir(), &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var sb strings.Builder
	sh := &shell{db: db, out: &sb}
	for i := 0; i < 8; i++ {
		mustExec(t, sh, "new part some content")
	}
	mustExec(t, sh, "shards")
	mustExec(t, sh, "reshard 4")
	mustExec(t, sh, "shards")
	mustExec(t, sh, "check")
	got := sb.String()
	for _, want := range []string{
		"2 logical / 2 physical shards",
		"resharded to 4 logical shards",
		"4 logical / 4 physical shards",
		"shard 3:",
		"-> shard 0",
		"ok",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if err := sh.exec("reshard x"); err == nil {
		t.Fatal("reshard x: expected error")
	}
	if err := sh.exec("reshard"); err == nil {
		t.Fatal("bare reshard: expected error")
	}
}

func TestShellDelete(t *testing.T) {
	sh, _ := testShell(t)
	mustExec(t, sh, "new doc hello")
	mustExec(t, sh, "nv o1")
	mustExec(t, sh, "del o1 v1")
	mustExec(t, sh, "del o1")
	if err := sh.exec("read o1"); err == nil {
		t.Fatal("read of deleted object succeeded")
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := testShell(t)
	cases := []string{
		"bogus",
		"new onlytype",
		"read o999",
		"read oX",
		"set o1 v1",
		"ls nosuchtype",
		"asof o1 notanumber",
		"hist o1",
	}
	for _, line := range cases {
		if err := sh.exec(line); err == nil {
			t.Fatalf("%q: expected error", line)
		}
	}
}
