package main

import (
	"strings"
	"testing"

	"ode"
)

// TestShellPayloadsAndCompact drives the delta-tier surfaces: a chain of
// small edits, the payloads report before and after an explicit compact
// sweep, and the contents still reading back exactly afterwards.
func TestShellPayloadsAndCompact(t *testing.T) {
	db, err := ode.Open(t.TempDir(), &ode.Options{
		Shards: 1, DeltaTier: true, AnchorInterval: 4, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var sb strings.Builder
	sh := &shell{db: db, out: &sb}

	mustExec(t, sh, "new doc the quick brown fox jumps over the lazy dog")
	for i := 0; i < 9; i++ {
		mustExec(t, sh, "nv o1")
	}
	mustExec(t, sh, "set o1 v10 the quick brown cat jumps over the lazy dog")
	mustExec(t, sh, "payloads")
	mustExec(t, sh, "compact")
	mustExec(t, sh, "payloads")
	mustExec(t, sh, "read o1 v5")
	mustExec(t, sh, "check")

	got := sb.String()
	for _, want := range []string{
		"compacted:",
		"delta", // payloads report mentions the representation
		"v5 = \"the quick brown fox jumps over the lazy dog\"",
		"ok",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// After the sweep the store must actually hold deltas and respect
	// the anchor-interval depth bound.
	ps, err := db.Engine().PayloadStats()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Delta == 0 && ps.Same == 0 {
		t.Fatalf("no dependent payloads after compact: %+v", ps)
	}
	if ps.MaxDepth > 4 {
		t.Fatalf("chain depth %d exceeds anchor interval 4", ps.MaxDepth)
	}
}
