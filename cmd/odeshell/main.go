// Command odeshell is a tiny interactive shell over an Ode database for
// exploring the versioning primitives by hand.
//
// Usage: odeshell <dbdir>
//
// Commands:
//
//	types                         list registered types
//	new <type> <text>             pnew: create an object (registers type)
//	show <oid>                    render the version graph
//	read <oid> [vid]              deref generic (latest) or specific
//	set <oid> <vid> <text>        update a version in place
//	nv <oid> [vid]                newversion from latest or from vid
//	del <oid> [vid]               pdelete object or one version
//	hist <oid> <vid>              derivation history
//	leaves <oid>                  alternative tips
//	asof <oid> <stamp>            historical lookup
//	ls <type>                     extent listing
//	stats                         database statistics
//	shards                        per-shard breakdown and the shard map
//	reshard <n>                   live split/merge to n logical shards
//	payloads                      payload representation totals (full vs delta)
//	compact                       sweep the delta tier to its compacted fixpoint
//	check                         integrity check
//	quit
//
// The shell opens with the delta tier enabled but the background
// compactor off: inspecting a store never rewrites payloads on its own,
// and the explicit compact command does exactly one sweep when asked.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ode"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: odeshell <dbdir>")
		os.Exit(2)
	}
	db, err := ode.Open(os.Args[1], &ode.Options{DeltaTier: true, CompactInterval: -1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "odeshell: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	sh := &shell{db: db, out: os.Stdout}
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("ode shell — 'help' for commands, 'quit' to exit")
	fmt.Print("> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			if err := sh.exec(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		}
		fmt.Print("> ")
	}
}

type shell struct {
	db  *ode.DB
	out io.Writer
}

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, "types | new <type> <text> | show <oid> | read <oid> [vid] | set <oid> <vid> <text>")
		fmt.Fprintln(s.out, "nv <oid> [vid] | del <oid> [vid] | hist <oid> <vid> | leaves <oid> | asof <oid> <stamp>")
		fmt.Fprintln(s.out, "ls <type> | stats | shards | reshard <n> | payloads | compact | cache | metrics | check | quit")
		return nil
	case "types":
		return s.db.View(func(tx *ode.Tx) error {
			names, err := s.db.Engine().Types()
			if err != nil {
				return err
			}
			for _, n := range names {
				fmt.Fprintln(s.out, " ", n)
			}
			return nil
		})
	case "new":
		if len(args) < 2 {
			return fmt.Errorf("usage: new <type> <text>")
		}
		tid, err := s.db.Engine().RegisterType(args[0])
		if err != nil {
			return err
		}
		return s.db.Update(func(tx *ode.Tx) error {
			o, v, err := tx.CreateRaw(tid, []byte(strings.Join(args[1:], " ")))
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "created %v (root version %v)\n", o, v)
			return nil
		})
	case "show":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		return s.db.View(func(tx *ode.Tx) error {
			graph, err := tx.Render(o)
			if err != nil {
				return err
			}
			fmt.Fprint(s.out, graph)
			return nil
		})
	case "read":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		return s.db.View(func(tx *ode.Tx) error {
			if len(args) > 1 {
				v, err := parseVID(args, 1)
				if err != nil {
					return err
				}
				content, err := tx.ReadVersionRaw(o, v)
				if err != nil {
					return err
				}
				fmt.Fprintf(s.out, "%v = %q\n", v, content)
				return nil
			}
			content, v, err := tx.ReadLatestRaw(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "latest %v = %q\n", v, content)
			return nil
		})
	case "set":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		v, err := parseVID(args, 1)
		if err != nil {
			return err
		}
		if len(args) < 3 {
			return fmt.Errorf("usage: set <oid> <vid> <text>")
		}
		return s.db.Update(func(tx *ode.Tx) error {
			return tx.UpdateVersionRaw(o, v, []byte(strings.Join(args[2:], " ")))
		})
	case "nv":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		return s.db.Update(func(tx *ode.Tx) error {
			var nv ode.VID
			if len(args) > 1 {
				base, err := parseVID(args, 1)
				if err != nil {
					return err
				}
				nv, err = tx.NewVersionFrom(o, base)
				if err != nil {
					return err
				}
			} else {
				var err error
				nv, err = tx.NewVersion(o)
				if err != nil {
					return err
				}
			}
			fmt.Fprintf(s.out, "new version %v\n", nv)
			return nil
		})
	case "del":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		return s.db.Update(func(tx *ode.Tx) error {
			if len(args) > 1 {
				v, err := parseVID(args, 1)
				if err != nil {
					return err
				}
				return tx.DeleteVersion(o, v)
			}
			return tx.DeleteObject(o)
		})
	case "hist":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		v, err := parseVID(args, 1)
		if err != nil {
			return err
		}
		return s.db.View(func(tx *ode.Tx) error {
			hist, err := tx.History(o, v)
			if err != nil {
				return err
			}
			strs := make([]string, len(hist))
			for i, h := range hist {
				strs[i] = h.String()
			}
			fmt.Fprintln(s.out, strings.Join(strs, " → "))
			return nil
		})
	case "leaves":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		return s.db.View(func(tx *ode.Tx) error {
			ls, err := tx.Leaves(o)
			if err != nil {
				return err
			}
			fmt.Fprintln(s.out, ls)
			return nil
		})
	case "asof":
		o, err := parseOID(args, 0)
		if err != nil {
			return err
		}
		if len(args) < 2 {
			return fmt.Errorf("usage: asof <oid> <stamp>")
		}
		n, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		return s.db.View(func(tx *ode.Tx) error {
			v, ok, err := tx.AsOf(o, ode.Stamp(n))
			if err != nil {
				return err
			}
			if !ok {
				fmt.Fprintln(s.out, "no version at that stamp")
				return nil
			}
			fmt.Fprintf(s.out, "as of @%d: %v\n", n, v)
			return nil
		})
	case "ls":
		if len(args) < 1 {
			return fmt.Errorf("usage: ls <type>")
		}
		tid, ok, err := s.db.Engine().LookupType(args[0])
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("unknown type %q", args[0])
		}
		return s.db.View(func(tx *ode.Tx) error {
			return tx.Extent(tid, func(o ode.OID) (bool, error) {
				n, err := tx.VersionCount(o)
				if err != nil {
					return false, err
				}
				fmt.Fprintf(s.out, "  %v (%d versions)\n", o, n)
				return true, nil
			})
		})
	case "stats":
		st := s.db.Stats()
		fmt.Fprintf(s.out, "%+v\n", st)
		return nil
	case "shards":
		c := s.db.Engine().Coordinator()
		m := c.Map()
		fmt.Fprintf(s.out, "%d logical / %d physical shards, map epoch %d\n",
			c.N(), c.NumShards(), m.Epoch())
		per := s.db.Engine().ShardStats()
		for i, sm := range c.Shards() {
			ms := sm.Stats()
			var objs, vers uint64
			if i < len(per) {
				objs, vers = per[i].Objects, per[i].Versions
			}
			fmt.Fprintf(s.out, "  shard %d: %d objects, %d versions, %d commits, %d aborts, %d WAL bytes\n",
				i, objs, vers, ms.Commits, ms.Aborts, ms.WALBytes)
		}
		ranges := m.Ranges()
		fmt.Fprintf(s.out, "map (%d ranges):\n", len(ranges))
		for i, r := range ranges {
			hi := "end"
			if i+1 < len(ranges) {
				hi = fmt.Sprintf("%#x", ranges[i+1].Start)
			}
			fmt.Fprintf(s.out, "  [%#x, %s) -> shard %d\n", r.Start, hi, r.Shard)
		}
		return nil
	case "reshard":
		if len(args) != 1 {
			return fmt.Errorf("usage: reshard <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad shard count %q", args[0])
		}
		if err := s.db.Reshard(n); err != nil {
			return err
		}
		rp := s.db.ReshardProgress()
		fmt.Fprintf(s.out, "resharded to %d logical shards: %d chunks, %d objects, %d versions moved\n",
			s.db.Shards(), rp.Chunks, rp.Objects, rp.Versions)
		return nil
	case "payloads":
		ps, err := s.db.Engine().PayloadStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%d full, %d delta, %d same-as-parent\n", ps.Full, ps.Delta, ps.Same)
		fmt.Fprintf(s.out, "heap %d bytes (%d full + %d delta), logical %d bytes, max chain depth %d\n",
			ps.HeapBytes(), ps.FullBytes, ps.DeltaBytes, ps.LogicalBytes, ps.MaxDepth)
		return nil
	case "compact":
		st, err := s.db.Compact()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "compacted: %d objects examined, %d demoted, %d promoted, %d bytes saved\n",
			st.Objects, st.Demoted, st.Promoted, st.BytesSaved)
		return nil
	case "cache":
		hitRate := func(h, m uint64) float64 {
			if h+m == 0 {
				return 0
			}
			return 100 * float64(h) / float64(h+m)
		}
		if cs, ok := s.db.Engine().MatCacheStats(); ok {
			fmt.Fprintf(s.out, "matcache:    %d hits, %d misses (%.1f%% hit rate), %d evictions, %d entries, %d bytes\n",
				cs.Hits, cs.Misses, hitRate(cs.Hits, cs.Misses), cs.Evictions, cs.Entries, cs.Bytes)
		} else {
			fmt.Fprintln(s.out, "matcache:    disabled")
		}
		if ds, ok := s.db.Engine().DerefCacheStats(); ok {
			fmt.Fprintf(s.out, "derefcache:  %d hits, %d misses (%.1f%% hit rate), %d evictions, %d entries, %d bytes\n",
				ds.Hits, ds.Misses, hitRate(ds.Hits, ds.Misses), ds.Evictions, ds.Entries, ds.Bytes)
			c := s.db.Engine().Coordinator()
			if c.NumShards() > 1 {
				for i := 0; i < c.NumShards(); i++ {
					h, m := s.db.Engine().DerefCacheShardStats(i)
					if h+m > 0 {
						fmt.Fprintf(s.out, "  shard %d: %d hits, %d misses (%.1f%%)\n", i, h, m, hitRate(h, m))
					}
				}
			}
		} else {
			fmt.Fprintln(s.out, "derefcache:  disabled")
		}
		leases, ids := s.db.Engine().AllocStats()
		fmt.Fprintf(s.out, "allocator:   %d leases, %d ids", leases, ids)
		if leases > 0 {
			fmt.Fprintf(s.out, " (%.1f ids/lease)", float64(ids)/float64(leases))
		}
		fmt.Fprintln(s.out)
		return nil
	case "metrics", ".metrics":
		// Prometheus text exposition: counters, gauges and latency
		// histograms (commit, fsync, checkpoint, chain walks).
		return s.db.WriteMetrics(s.out)
	case "check":
		if err := s.db.CheckIntegrity(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "ok")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func parseOID(args []string, i int) (ode.OID, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing oid argument")
	}
	s := strings.TrimPrefix(args[i], "o")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad oid %q", args[i])
	}
	return ode.OID(n), nil
}

func parseVID(args []string, i int) (ode.VID, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing vid argument")
	}
	s := strings.TrimPrefix(args[i], "v")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad vid %q", args[i])
	}
	return ode.VID(n), nil
}
