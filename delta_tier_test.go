package ode

// Delta storage tier (DESIGN.md §14) test battery: deterministic
// demotion/promotion behavior, the encode→demote→materialize round-trip
// property test across anchor intervals (with interior D-parent
// deletes), materialisation-cache correctness, and delta chains
// surviving a live reshard. Run by `make delta-matrix` at ODE_SHARDS=1
// and 4 under -race.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ode/internal/core"
	"ode/internal/oid"
)

// editBytes returns a small random mutation of prev: a few in-place
// byte flips, sometimes an append or truncation — the "small change"
// shape delta encoding exists for.
func editBytes(rng *rand.Rand, prev []byte) []byte {
	out := make([]byte, len(prev))
	copy(out, prev)
	switch rng.Intn(10) {
	case 0: // append
		extra := make([]byte, 1+rng.Intn(64))
		rng.Read(extra)
		out = append(out, extra...)
	case 1: // truncate (never to empty)
		if len(out) > 2 {
			out = out[:1+rng.Intn(len(out)-1)]
		}
	}
	for i, edits := 0, 1+rng.Intn(3); i < edits; i++ {
		if len(out) == 0 {
			break
		}
		off := rng.Intn(len(out))
		n := 1 + rng.Intn(16)
		if off+n > len(out) {
			n = len(out) - off
		}
		rng.Read(out[off : off+n])
	}
	return out
}

func payloadStats(t *testing.T, db *DB) core.PayloadStats {
	t.Helper()
	ps, err := db.Engine().PayloadStats()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// verifyAll checks every tracked version materialises bit-for-bit, from
// both a snapshot View (cache path) and an Update (live-state path).
func verifyAll(t *testing.T, db *DB, want map[VID][]byte, owner map[VID]OID) {
	t.Helper()
	check := func(tx *Tx) error {
		for v, content := range want {
			got, err := tx.ReadVersionRaw(owner[v], v)
			if err != nil {
				return fmt.Errorf("read %v: %w", v, err)
			}
			if !bytes.Equal(got, content) {
				return fmt.Errorf("version %v: got %d bytes, want %d (content differs)", v, len(got), len(content))
			}
		}
		return nil
	}
	if err := db.View(check); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(check); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaTierDemotion pins the deterministic behavior: a linear chain
// built under FullCopy demotes to deltas with anchors every
// AnchorInterval links, reclaims most of the payload heap, and a reopen
// with a smaller interval promotes anchors back in.
func TestDeltaTierDemotion(t *testing.T) {
	dir := t.TempDir()
	opts := &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 8, CompactInterval: -1,
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := db.Engine().RegisterType("DeltaBlob")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	content := make([]byte, 2048)
	rng.Read(content)

	var o OID
	want := map[VID][]byte{}
	owner := map[VID]OID{}
	err = db.Update(func(tx *Tx) error {
		var v VID
		var err error
		o, v, err = tx.CreateRaw(tid, content)
		if err != nil {
			return err
		}
		want[v] = content
		owner[v] = o
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		content = editBytes(rng, content)
		err := db.Update(func(tx *Tx) error {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			if err := tx.UpdateVersionRaw(o, v, content); err != nil {
				return err
			}
			cp := make([]byte, len(content))
			copy(cp, content)
			want[v] = cp
			owner[v] = o
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	ps := payloadStats(t, db)
	if ps.Delta == 0 {
		t.Fatalf("no demotions happened: %+v", ps)
	}
	if ps.MaxDepth > 8 {
		t.Fatalf("chain depth %d exceeds anchor interval 8", ps.MaxDepth)
	}
	if ps.HeapBytes()*2 >= ps.LogicalBytes {
		t.Fatalf("expected >2x space reduction on a 41-version edit chain: heap=%d logical=%d", ps.HeapBytes(), ps.LogicalBytes)
	}
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a tighter bound: the compactor must insert anchors.
	opts2 := *opts
	opts2.AnchorInterval = 2
	db, err = Open(dir, &opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted == 0 {
		t.Fatalf("expected promotions when the interval shrank 8 -> 2: %+v", st)
	}
	if ps := payloadStats(t, db); ps.MaxDepth > 2 {
		t.Fatalf("chain depth %d exceeds anchor interval 2 after promotion sweep", ps.MaxDepth)
	}
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Compaction is idempotent at the fixpoint.
	st, err = db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Demoted != 0 || st.Promoted != 0 {
		t.Fatalf("second sweep was not a no-op: %+v", st)
	}
}

// TestDeltaRoundTripProperty is the satellite property test: random
// edit sequences with branching, interior D-parent deletes, in-place
// updates and interleaved compaction sweeps round-trip bit-for-bit at
// every version, across anchor intervals {1, 4, 16}, under both
// storage policies, including after a reopen.
func TestDeltaRoundTripProperty(t *testing.T) {
	for _, policy := range []StoragePolicy{FullCopy, DeltaChain} {
		for _, interval := range []int{1, 4, 16} {
			name := fmt.Sprintf("policy=%d/interval=%d", policy, interval)
			t.Run(name, func(t *testing.T) {
				testDeltaRoundTrip(t, policy, interval, 64+int64(interval))
			})
		}
	}
}

func testDeltaRoundTrip(t *testing.T, policy StoragePolicy, interval int, seed int64) {
	dir := t.TempDir()
	opts := &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true, Policy: policy,
		DeltaTier: true, AnchorInterval: interval, CompactInterval: -1,
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := db.Engine().RegisterType("PropBlob")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))

	want := map[VID][]byte{}  // every live version's expected content
	owner := map[VID]OID{}    // vid -> object
	perObj := map[OID][]VID{} // live vids per object, insertion order

	record := func(o OID, v VID, content []byte) {
		cp := make([]byte, len(content))
		copy(cp, content)
		want[v] = cp
		owner[v] = o
		perObj[o] = append(perObj[o], v)
	}
	// Seed three objects.
	var objs []OID
	for i := 0; i < 3; i++ {
		content := make([]byte, 256+rng.Intn(1024))
		rng.Read(content)
		err := db.Update(func(tx *Tx) error {
			o, v, err := tx.CreateRaw(tid, content)
			if err != nil {
				return err
			}
			objs = append(objs, o)
			record(o, v, content)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pickVID := func(o OID) VID {
		vs := perObj[o]
		return vs[rng.Intn(len(vs))]
	}

	const ops = 180
	for i := 0; i < ops; i++ {
		o := objs[rng.Intn(len(objs))]
		err := db.Update(func(tx *Tx) error {
			switch r := rng.Intn(100); {
			case r < 40: // branch from a random existing version, then edit
				base := pickVID(o)
				v, err := tx.NewVersionFrom(o, base)
				if err != nil {
					return err
				}
				content := editBytes(rng, want[base])
				if err := tx.UpdateVersionRaw(o, v, content); err != nil {
					return err
				}
				record(o, v, content)
			case r < 60: // linear newversion from latest, keep content
				latest, err := tx.Latest(o)
				if err != nil {
					return err
				}
				v, err := tx.NewVersion(o)
				if err != nil {
					return err
				}
				record(o, v, want[latest])
			case r < 75: // in-place edit of a random version
				v := pickVID(o)
				content := editBytes(rng, want[v])
				if err := tx.UpdateVersionRaw(o, v, content); err != nil {
					return err
				}
				cp := make([]byte, len(content))
				copy(cp, content)
				want[v] = cp
			default: // delete a random (often interior D-parent) version
				if len(perObj[o]) < 3 {
					return nil // keep objects alive
				}
				idx := rng.Intn(len(perObj[o]))
				v := perObj[o][idx]
				if err := tx.DeleteVersion(o, v); err != nil {
					return err
				}
				delete(want, v)
				delete(owner, v)
				perObj[o] = append(perObj[o][:idx], perObj[o][idx+1:]...)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%20 == 19 {
			if _, err := db.Compact(); err != nil {
				t.Fatalf("compact after op %d: %v", i, err)
			}
		}
		if i%45 == 44 {
			verifyAll(t, db, want, owner)
		}
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	ps := payloadStats(t, db)
	if ps.MaxDepth > interval {
		t.Fatalf("stored depth %d exceeds anchor interval %d", ps.MaxDepth, interval)
	}
	if ps.Delta == 0 {
		t.Fatalf("property run never demoted anything (vacuous): %+v", ps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything must survive a reopen (chains on disk, cold cache).
	db, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaMatCache verifies the epoch-tagged cache: hot snapshot reads
// hit, the hit returns correct bytes, a commit advances the epoch so
// stale entries are never served, and writers bypass the cache.
func TestDeltaMatCache(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 4, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("CacheBlob")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	content := make([]byte, 1024)
	rng.Read(content)

	var o OID
	var vids []VID
	err = db.Update(func(tx *Tx) error {
		var v VID
		var err error
		o, v, err = tx.CreateRaw(tid, content)
		vids = append(vids, v)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	contents := map[VID][]byte{vids[0]: append([]byte(nil), content...)}
	for i := 0; i < 10; i++ {
		content = editBytes(rng, content)
		cp := append([]byte(nil), content...)
		err := db.Update(func(tx *Tx) error {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			vids = append(vids, v)
			contents[v] = cp
			return tx.UpdateVersionRaw(o, v, cp)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	read := func(v VID) []byte {
		var got []byte
		if err := db.View(func(tx *Tx) error {
			var err error
			got, err = tx.ReadVersionRaw(o, v)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	target := vids[5]
	first := read(target)
	st0, ok := db.Engine().MatCacheStats()
	if !ok {
		t.Fatal("cache disabled despite DeltaTier")
	}
	second := read(target)
	st1, _ := db.Engine().MatCacheStats()
	if st1.Hits <= st0.Hits {
		t.Fatalf("second snapshot read did not hit the cache: %+v -> %+v", st0, st1)
	}
	if !bytes.Equal(first, second) || !bytes.Equal(first, contents[target]) {
		t.Fatal("cached read returned different bytes")
	}

	// Commit an edit to the cached version: the epoch advances, so the
	// next read must see the new content, not the cached old bytes.
	newContent := editBytes(rng, contents[target])
	if err := db.Update(func(tx *Tx) error {
		return tx.UpdateVersionRaw(o, target, newContent)
	}); err != nil {
		t.Fatal(err)
	}
	if got := read(target); !bytes.Equal(got, newContent) {
		t.Fatalf("stale cache entry served after commit: got %d bytes, want %d", len(got), len(newContent))
	}
	// A writer must read its own uncommitted state, never the cache.
	if err := db.Update(func(tx *Tx) error {
		probe := editBytes(rng, newContent)
		if err := tx.UpdateVersionRaw(o, target, probe); err != nil {
			return err
		}
		got, err := tx.ReadVersionRaw(o, target)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, probe) {
			t.Fatal("writer read did not see its own uncommitted update")
		}
		return fmt.Errorf("rollback")
	}); err == nil {
		t.Fatal("expected deliberate rollback error")
	}
	if got := read(target); !bytes.Equal(got, newContent) {
		t.Fatal("rolled-back content leaked into reads")
	}
}

// TestDeltaReshardCarriesChains moves whole objects (including demoted
// delta chains) across shards with a live Reshard and verifies every
// version still materialises.
func TestDeltaReshardCarriesChains(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{
		Shards: 2, PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 4, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("MoveBlob")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	want := map[VID][]byte{}
	owner := map[VID]OID{}
	for i := 0; i < 6; i++ {
		content := make([]byte, 1024)
		rng.Read(content)
		var o OID
		err := db.Update(func(tx *Tx) error {
			var v VID
			var err error
			o, v, err = tx.CreateRaw(tid, content)
			if err != nil {
				return err
			}
			want[v] = append([]byte(nil), content...)
			owner[v] = o
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 12; j++ {
			content = editBytes(rng, content)
			cp := append([]byte(nil), content...)
			err := db.Update(func(tx *Tx) error {
				v, err := tx.NewVersion(o)
				if err != nil {
					return err
				}
				want[v] = cp
				owner[v] = o
				return tx.UpdateVersionRaw(o, v, cp)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if ps := payloadStats(t, db); ps.Delta == 0 {
		t.Fatalf("no delta chains to move: %+v", ps)
	}
	if err := db.Reshard(4); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Chains still compact and verify on their new shards.
	if err := db.Reshard(2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, want, owner)
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaBackgroundCompactor proves the paced per-shard sweepers do
// the demotion work on their own: with a short CompactInterval and no
// explicit Compact call, edit chains demote in the background (the
// supervisor also picks up shards a live Reshard adds), every version
// keeps materialising exactly, and Close drains the sweepers cleanly.
func TestDeltaBackgroundCompactor(t *testing.T) {
	dir := t.TempDir()
	shards := envShards()
	if shards < 2 {
		shards = 2 // the mid-test Reshard needs the sharded layout
	}
	// Build the history with the delta tier OFF: every payload lands as
	// a full copy and the inline NewVersion demotion hook never fires,
	// so any delta that appears after the reopen below can only have
	// been written by the background sweepers.
	db, err := Open(dir, &Options{Shards: shards, PageSize: 1024, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()
	tid, err := db.Engine().RegisterType("BgBlob")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	want := map[VID][]byte{}
	owner := map[VID]OID{}
	var objs []OID
	latest := map[OID][]byte{}
	for i := 0; i < 3; i++ {
		content := make([]byte, 1024)
		rng.Read(content)
		err := db.Update(func(tx *Tx) error {
			o, v, err := tx.CreateRaw(tid, content)
			if err != nil {
				return err
			}
			objs = append(objs, o)
			want[v] = content
			owner[v] = o
			latest[o] = content
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 12; r++ {
		for _, o := range objs {
			content := editBytes(rng, latest[o])
			err := db.Update(func(tx *Tx) error {
				v, err := tx.NewVersion(o)
				if err != nil {
					return err
				}
				want[v] = content
				owner[v] = o
				return tx.UpdateVersionRaw(o, v, content)
			})
			if err != nil {
				t.Fatal(err)
			}
			latest[o] = content
		}
	}
	if ps := payloadStats(t, db); ps.Delta+ps.Same != 0 {
		t.Fatalf("delta tier off, yet %d deltas / %d shared payloads", ps.Delta, ps.Same)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the tier on and fast ticks. No explicit Compact: the
	// only writers of deltas from here on are the background sweepers.
	db, err = Open(dir, &Options{
		Shards: shards, PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 4,
		CompactInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDelta := func(stage string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			if ps := payloadStats(t, db); ps.Delta > 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: background compactor demoted nothing: %+v", stage, payloadStats(t, db))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitDelta("after reopen")

	// Live reshard while the sweepers run: the supervisor must start
	// sweepers for the added physical shards, and chains rebuilt on the
	// new shards must be demoted again.
	if err := db.Reshard(shards * 2); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		content := editBytes(rng, latest[o])
		err := db.Update(func(tx *Tx) error {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			want[v] = content
			owner[v] = o
			return tx.UpdateVersionRaw(o, v, content)
		})
		if err != nil {
			t.Fatal(err)
		}
		latest[o] = content
	}
	waitDelta("after reshard")
	// Give the supervisor a few ticks to start sweepers for the added
	// shards before shrinking back: the merged-away physical shards
	// must then be skipped cleanly by both the sweep and the stats
	// scan.
	time.Sleep(25 * time.Millisecond)
	if err := db.Reshard(shards); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	verifyAll(t, db, want, owner)
	if ps := payloadStats(t, db); ps.MaxDepth > 4 {
		t.Fatalf("chain depth %d exceeds anchor interval 4", ps.MaxDepth)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPrimitives drives the per-version demote/promote primitives
// through the routing layer (Tx.DemoteVersion / Tx.PromoteVersion, the
// odeshell surface) and pins every refusal: derivation roots, the
// latest version, already-demoted and already-full payloads, the
// anchor-interval bound, and deltas that would not actually shrink the
// payload. Contents are re-verified after every representation change.
func TestDeltaPrimitives(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 1, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("DeltaPrim")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	base := make([]byte, 512)
	rng.Read(base)
	contents := [][]byte{base}
	for i := 0; i < 3; i++ {
		contents = append(contents, editBytes(rng, contents[i]))
	}
	var o OID
	var vids []VID
	err = db.Update(func(tx *Tx) error {
		var v VID
		var err error
		o, v, err = tx.CreateRaw(tid, contents[0])
		if err != nil {
			return err
		}
		vids = append(vids, v)
		for _, c := range contents[1:] {
			v, err = tx.NewVersion(o)
			if err != nil {
				return err
			}
			if err := tx.UpdateVersionRaw(o, v, c); err != nil {
				return err
			}
			vids = append(vids, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A second object whose middle version shares nothing with its
	// parent: the delta would be bigger than the content, so demotion
	// must refuse rather than grow the heap.
	noise := make([]byte, 256)
	rng.Read(noise)
	var o2 OID
	var c2 VID
	err = db.Update(func(tx *Tx) error {
		first := make([]byte, 256)
		rng.Read(first)
		var err error
		o2, _, err = tx.CreateRaw(tid, first)
		if err != nil {
			return err
		}
		c2, err = tx.NewVersion(o2)
		if err != nil {
			return err
		}
		if err := tx.UpdateVersionRaw(o2, c2, noise); err != nil {
			return err
		}
		last, err := tx.NewVersion(o2)
		if err != nil {
			return err
		}
		return tx.UpdateVersionRaw(o2, last, editBytes(rng, noise))
	})
	if err != nil {
		t.Fatal(err)
	}

	step := func(name string, want bool, fn func(tx *core.Tx) (bool, error)) {
		t.Helper()
		err := db.Engine().Write(func(tx *core.Tx) error {
			ok, err := fn(tx)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			if ok != want {
				return fmt.Errorf("%s: got %v, want %v", name, ok, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// v2 was already demoted inline when v3 gained it as a D-child
	// (the NewVersion hook), so the chain sits at v1(full) →
	// v2(delta,1) → v3(full) → v4(full,latest).
	step("demote root", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[0]) })
	step("demote latest", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[3]) })
	step("re-demote v2", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[1]) })
	// v3's parent sits at depth 1; one more link would exceed
	// AnchorInterval=1.
	step("demote v3 over bound", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[2]) })
	step("demote incompressible", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o2, c2) })
	step("promote v2", true, func(tx *core.Tx) (bool, error) { return tx.PromoteVersion(o, vids[1]) })
	step("re-promote v2", false, func(tx *core.Tx) (bool, error) { return tx.PromoteVersion(o, vids[1]) })
	// With v2 re-anchored at depth 0, v3 is demotable again.
	step("demote v3", true, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[2]) })
	step("re-demote v3", false, func(tx *core.Tx) (bool, error) { return tx.DemoteVersion(o, vids[2]) })

	err = db.View(func(tx *Tx) error {
		for i, v := range vids {
			got, err := tx.ReadVersionRaw(o, v)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, contents[i]) {
				return fmt.Errorf("version %d content changed across demote/promote", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPromoteShared promotes a version that shares its parent's
// bytes outright (the DeltaChain policy's copy-free NewVersion): the
// promotion must insert a fresh heap record rather than updating the
// parent's.
func TestDeltaPromoteShared(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true,
		Policy: DeltaChain, MaxChain: 8,
		DeltaTier: true, AnchorInterval: 8, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("DeltaPrim")
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("shared-bytes "), 40)
	var o OID
	var shared VID
	err = db.Update(func(tx *Tx) error {
		var err error
		o, _, err = tx.CreateRaw(tid, content)
		if err != nil {
			return err
		}
		// No UpdateVersionRaw: under DeltaChain this version shares its
		// parent's payload record.
		shared, err = tx.NewVersion(o)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Engine().Write(func(tx *core.Tx) error {
		if ok, err := tx.DemoteVersion(o, shared); err != nil || ok {
			return fmt.Errorf("demote shared: got %v, %v; want false, nil", ok, err)
		}
		ok, err := tx.PromoteVersion(o, shared)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("promote shared: got false, want true")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(func(tx *Tx) error {
		got, err := tx.ReadVersionRaw(o, shared)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, content) {
			return fmt.Errorf("shared version content changed across promotion")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaCompactorDefaultPacing opens with CompactInterval: 0 — the
// documented "use DefaultCompactInterval" setting — and closes again:
// the sweepers and supervisor must start and drain cleanly without a
// single tick having fired.
func TestDeltaCompactorDefaultPacing(t *testing.T) {
	db, err := Open(t.TempDir(), &Options{
		Shards: envShards(), PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 4, CompactInterval: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaCompactBudget drives CompactShard/CompactAll with a
// one-mutation budget over a history built entirely under full-copy
// storage: every sweep transaction commits at most one demotion, the
// resume cursor re-enters the same object while work remains (More) and
// steps past it when the budget ran out exactly at the boundary. A
// reopen at a smaller anchor interval then replays the same loop on the
// promotion side, exercising the budget-cut branch that leaves an
// over-deep chain readable for the next pass.
func TestDeltaCompactBudget(t *testing.T) {
	dir := t.TempDir()
	shards := envShards()
	base := &Options{Shards: shards, PageSize: 1024, NoSync: true}
	db, err := Open(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()
	tid, err := db.Engine().RegisterType("BudgetBlob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err == nil {
		t.Fatal("Compact without Options.DeltaTier should fail")
	}
	rng := rand.New(rand.NewSource(99))
	content := make([]byte, 512)
	rng.Read(content)
	var o OID
	contents := [][]byte{}
	var vids []VID
	err = db.Update(func(tx *Tx) error {
		var v VID
		var err error
		o, v, err = tx.CreateRaw(tid, content)
		if err != nil {
			return err
		}
		vids = append(vids, v)
		contents = append(contents, content)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 19; i++ {
		content = editBytes(rng, content)
		err := db.Update(func(tx *Tx) error {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			vids = append(vids, v)
			contents = append(contents, content)
			return tx.UpdateVersionRaw(o, v, content)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	verify := func() {
		t.Helper()
		err := db.View(func(tx *Tx) error {
			for i, v := range vids {
				got, err := tx.ReadVersionRaw(o, v)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, contents[i]) {
					return fmt.Errorf("version %d content changed", i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Demotion side, one mutation per transaction.
	db, err = Open(dir, &Options{
		Shards: shards, PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 8, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A shard index past the layout is a no-op, not an error.
	if st, next, err := db.Engine().CompactShard(1000, oid.NilOID, 1); err != nil || st.Objects != 0 || next != oid.NilOID {
		t.Fatalf("out-of-range shard: stats %+v next %v err %v", st, next, err)
	}
	st, err := db.Engine().CompactAll(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Demoted == 0 {
		t.Fatalf("budgeted sweep demoted nothing: %+v", st)
	}
	// lim <= 0 adopts the default budget (a no-op at the fixpoint).
	if _, _, err := db.Engine().CompactShard(0, oid.NilOID, 0); err != nil {
		t.Fatal(err)
	}
	verify()
	ps := payloadStats(t, db)
	if ps.Delta == 0 || ps.MaxDepth > 8 {
		t.Fatalf("after demotion fixpoint: %+v", ps)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Promotion side: the stored chains are now up to 8 deep; a reopen
	// at interval 2 must anchor them back, one promotion per
	// transaction, leaving the not-yet-anchored tails readable between
	// sweeps.
	db, err = Open(dir, &Options{
		Shards: shards, PageSize: 1024, NoSync: true,
		DeltaTier: true, AnchorInterval: 2, CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err = db.Engine().CompactAll(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted == 0 {
		t.Fatalf("interval shrink promoted nothing: %+v", st)
	}
	// lim <= 0 adopts the default budget (fixpoint already reached).
	if _, err := db.Engine().CompactAll(0); err != nil {
		t.Fatal(err)
	}
	verify()
	if ps := payloadStats(t, db); ps.MaxDepth > 2 {
		t.Fatalf("chain depth %d exceeds shrunken anchor interval 2", ps.MaxDepth)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
