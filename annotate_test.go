package ode

import (
	"errors"
	"testing"
)

func TestAnnotationsLifecycle(t *testing.T) {
	db := openDB(t, &Options{Policy: DeltaChain})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	var v0, v1 VPtr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "ann"})
		if err != nil {
			return err
		}
		v0, err = p.Pin(tx)
		if err != nil {
			return err
		}
		v1, err = p.NewVersion(tx)
		if err != nil {
			return err
		}
		if err := v0.Annotate(tx, "state", "released"); err != nil {
			return err
		}
		if err := v0.Annotate(tx, "qualified-by", "alice"); err != nil {
			return err
		}
		return v1.Annotate(tx, "state", "in-progress")
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		m, ok, err := v0.Annotations(tx)
		if err != nil || !ok || len(m) != 2 || m["state"] != "released" {
			t.Fatalf("v0 annotations: %v %v %v", m, ok, err)
		}
		got, ok, err := v1.Annotation(tx, "state")
		if err != nil || !ok || got != "in-progress" {
			t.Fatalf("v1 state: %q %v %v", got, ok, err)
		}
		// Annotations are per-version: v1 has no qualified-by.
		if _, ok, _ := v1.Annotation(tx, "qualified-by"); ok {
			t.Fatal("annotation leaked across versions")
		}
		// Klahold-style partition query.
		rel, err := tx.VersionsWhere(p.OID(), "state", "released")
		if err != nil || len(rel) != 1 || rel[0] != v0.VID() {
			t.Fatalf("VersionsWhere: %v %v", rel, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Clearing and overwriting.
	if err := db.Update(func(tx *Tx) error {
		if err := v0.Annotate(tx, "qualified-by", ""); err != nil { // clear
			return err
		}
		return v1.Annotate(tx, "state", "released") // overwrite
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		if _, ok, _ := v0.Annotation(tx, "qualified-by"); ok {
			t.Fatal("cleared annotation survived")
		}
		rel, err := tx.VersionsWhere(p.OID(), "state", "released")
		if err != nil || len(rel) != 2 {
			t.Fatalf("after promote: %v %v", rel, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotationsRemovedWithVersion(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	var v1 VPtr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{})
		if err != nil {
			return err
		}
		v1, err = p.NewVersion(tx)
		if err != nil {
			return err
		}
		return v1.Annotate(tx, "state", "draft")
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error { return v1.Delete(tx) }); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		// The version is gone; its annotation record must be gone too
		// (verified indirectly: a same-key re-creation starts clean).
		if _, ok, _ := tx.Annotations(p.OID(), v1.VID()); ok {
			t.Fatal("annotations survived version deletion")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Deleting the whole object removes its annotations too.
	if err := db.Update(func(tx *Tx) error {
		pin, err := p.Pin(tx)
		if err != nil {
			return err
		}
		if err := pin.Annotate(tx, "state", "whatever"); err != nil {
			return err
		}
		return p.Delete(tx)
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		names, err := tx.Configs()
		if err != nil || len(names) != 0 {
			t.Fatalf("config tree residue: %v %v", names, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotateErrors(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := db.Update(func(tx *Tx) error {
		return tx.Annotate(p.OID(), VID(999), "k", "v")
	})
	if !errors.Is(err, ErrNoVersion) {
		t.Fatalf("annotate ghost version: %v", err)
	}
	err = db.Update(func(tx *Tx) error {
		pin, _ := p.Pin(tx)
		return pin.Annotate(tx, "", "v")
	})
	if err == nil {
		t.Fatal("empty annotation key accepted")
	}
	// Read-only transactions reject annotation writes.
	err = db.View(func(tx *Tx) error {
		pin, _ := p.Pin(tx)
		return pin.Annotate(tx, "k", "v")
	})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("annotate in View: %v", err)
	}
}

// TestReleaseWorkflowWithAnnotations ties annotations to the paper's
// design-management story: in-progress versions are iterated on, one is
// marked released, and the release context is built from the partition
// query.
func TestReleaseWorkflowWithAnnotations(t *testing.T) {
	db := openDB(t, &Options{Policy: DeltaChain})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "chip", Rev: 0})
		if err != nil {
			return err
		}
		// Three design iterations, all in-progress.
		for i := 1; i <= 3; i++ {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return err
			}
			if err := nv.Modify(tx, func(x *Part) { x.Rev = i }); err != nil {
				return err
			}
			if err := nv.Annotate(tx, "state", "in-progress"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Qualification passes on Rev 2: promote it and build the release
	// context from the annotation partition.
	if err := db.Update(func(tx *Tx) error {
		versions, err := p.Versions(tx)
		if err != nil {
			return err
		}
		var chosen VPtr[Part]
		for _, v := range versions {
			val, err := v.Deref(tx)
			if err != nil {
				return err
			}
			if val.Rev == 2 {
				chosen = v
			}
		}
		if err := chosen.Annotate(tx, "state", "released"); err != nil {
			return err
		}
		rel, err := tx.VersionsWhere(p.OID(), "state", "released")
		if err != nil || len(rel) != 1 {
			return err
		}
		return tx.SetContext("release", map[OID]VID{p.OID(): rel[0]})
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		v, err := tx.ResolveInContext("release", p.OID())
		if err != nil {
			return err
		}
		pin := VPtr[Part]{obj: p.OID(), vid: v, ty: parts}
		val, err := pin.Deref(tx)
		if err != nil || val.Rev != 2 {
			t.Fatalf("release resolves to Rev %d", val.Rev)
		}
		tip, _ := p.Deref(tx)
		if tip.Rev != 3 {
			t.Fatalf("tip should be Rev 3, got %d", tip.Rev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
