package ode

import (
	"errors"
	"sync"
	"time"

	"ode/internal/core"
	"ode/internal/oid"
)

// CompactStats reports the effect of a compaction sweep: objects
// examined, full payloads demoted to deltas, dependent payloads
// promoted to full anchors, and payload bytes reclaimed.
type CompactStats = core.CompactStats

// DefaultCompactInterval paces the background compactor when
// Options.CompactInterval is zero.
const DefaultCompactInterval = 250 * time.Millisecond

// compactBatch caps demotions+promotions per background compaction
// transaction, bounding both commit size and how long the compactor
// holds a shard's writer mutex — a checkpoint or backup waiting on
// CheckpointExclusive is never stalled behind an unbounded sweep.
const compactBatch = 64

// Compact synchronously sweeps every shard to completion in bounded
// transactions: cold full payloads are demoted to deltas, over-deep
// chains get full anchors inserted. It is the deterministic form of the
// background compactor — tests and odeshell call it to reach the
// compacted fixpoint on demand. Works even when the background
// goroutines are disabled (CompactInterval < 0), but requires
// Options.DeltaTier.
func (db *DB) Compact() (CompactStats, error) {
	if !db.eng.DeltaTier() {
		return CompactStats{}, errors.New("ode: Compact requires Options.DeltaTier")
	}
	return db.eng.CompactAll(compactBatch)
}

// startCompactor launches one paced sweeper goroutine per physical
// shard plus a supervisor that spawns sweepers for shards a later
// Reshard adds. Each sweeper advances a cursor one bounded transaction
// per tick, so compaction trickles along behind foreground work.
func (db *DB) startCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultCompactInterval
	}
	db.compactStop = make(chan struct{})
	db.compactDone = make(chan struct{})

	var wg sync.WaitGroup
	sweeper := func(s int) {
		defer wg.Done()
		cursor := oid.NilOID
		for {
			select {
			case <-db.compactStop:
				return
			case <-time.After(interval):
			}
			// Checkpoint/reshard awareness: batches are small by
			// construction, and while a reshard is migrating chunks the
			// compactor stands down entirely rather than contending for
			// shard mutexes with the migration's 2PC transactions.
			if db.ReshardProgress().Active {
				continue
			}
			stats, next, err := db.eng.CompactShard(s, cursor, compactBatch)
			if err != nil {
				if errors.Is(err, ErrClosed) {
					return
				}
				continue // transient (e.g. routing epoch change mid-join)
			}
			_ = stats
			cursor = next
		}
	}

	go func() {
		defer close(db.compactDone)
		spawned := db.eng.Coordinator().NumShards()
		for s := 0; s < spawned; s++ {
			wg.Add(1)
			go sweeper(s)
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-db.compactStop:
				wg.Wait()
				return
			case <-ticker.C:
				for n := db.eng.Coordinator().NumShards(); spawned < n; spawned++ {
					wg.Add(1)
					go sweeper(spawned)
				}
			}
		}
	}()
}

// stopCompactor stops the background sweepers and waits for them to
// drain; safe to call when none were started.
func (db *DB) stopCompactor() {
	if db.compactStop == nil {
		return
	}
	close(db.compactStop)
	<-db.compactDone
	db.compactStop = nil
	db.compactDone = nil
}
