package ode

// Smoke tests for the runnable examples: each must build, run to
// completion, and print its key narrative lines. They execute `go run`,
// so they are skipped in -short mode.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, path string) string {
	t.Helper()
	cmd := exec.Command("go", "run", path)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s failed: %v\n%s", path, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run go run")
	}
	out := runExample(t, "./examples/quickstart")
	for _, want := range []string{
		"generic deref:  {Name:ALU Rev:1}",
		"specific deref: {Name:ALU Rev:0}",
		"alternative tips:",
		"after pdelete(oid): objects=0 versions=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("quickstart missing %q:\n%s", want, out)
		}
	}
}

func TestExampleCAD(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run go run")
	}
	out := runExample(t, "./examples/cad")
	for _, want := range []string{
		"schematic evolution:",
		"fault representation still qualified against: alu-rev-A",
		"release-1 context:",
		"integrity check passed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("cad missing %q:\n%s", want, out)
		}
	}
}

func TestExampleAddressBook(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run go run")
	}
	out := runExample(t, "./examples/addressbook")
	for _, want := range []string{
		"address book (initial):",
		"3 Pine Rd",
		"as of audit point 0",
		"1 Elm St",
		"Alice's address history (walking Tprevious):",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("addressbook missing %q:\n%s", want, out)
		}
	}
}

func TestExamplePolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run go run")
	}
	out := runExample(t, "./examples/policies")
	for _, want := range []string{
		"percolation created 2 extra versions",
		"notifications delivered synchronously",
		"checked in as public version",
		"ALU version graph after the whole session:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("policies missing %q:\n%s", want, out)
		}
	}
}

func TestExampleInventory(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run go run")
	}
	out := runExample(t, "./examples/inventory")
	for _, want := range []string{
		"initial stock:",
		"WID-1(qty=120)",
		"low stock (qty < 10):",
		"after WID-1 moved to the dock (as a new version):",
		"WID-1 history: originally 120 units in aisle-3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inventory missing %q:\n%s", want, out)
		}
	}
}
