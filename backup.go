package ode

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ode/internal/txn"
)

// Backup writes a consistent snapshot of the database into dstDir
// (which must not already contain a database). It checkpoints every
// shard and copies the data file(s) under ONE acquisition of every
// shard's writer mutex (txn.Coordinator.CheckpointExclusive): no commit
// — and in particular no cross-shard 2PC commit — can land between the
// per-shard flushes or between the flushes and the copy, so the backup
// is one atomic cut of the whole database with empty logs. Writers (and
// further checkpoints) are blocked for the duration; snapshot readers
// keep running, since they never touch the data files' mutable tails.
// A sharded database copies the shard metadata file (creation header
// plus the current shard-map frame) and every PHYSICAL shard's data
// file — after a merge there are more files than logical shards; the
// WALs and the coordinator decision log are empty at the copy point and
// are recreated on open. The file set is enumerated inside the
// exclusive section, which also excludes reshards (CheckpointExclusive
// holds the reshard lock), so a concurrent split cannot add shard files
// between the enumeration and the copy.
func (db *DB) Backup(dstDir string) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return fmt.Errorf("ode: backup mkdir: %w", err)
	}
	// Pre-checkpoint outside the exclusive section so the bulk of the
	// flushing happens without writers blocked; the exclusive checkpoint
	// below then only handles the delta committed since.
	if err := db.Checkpoint(); err != nil {
		return err
	}
	return db.coord.CheckpointExclusive(func() error {
		var files []string
		if db.coord.NumShards() == 1 {
			// One physical shard = the legacy single-file layout (a
			// sharded database is created with >= 2 and never shrinks).
			files = []string{txn.DataFileName}
		} else {
			files = []string{txn.ShardsFileName}
			for i := 0; i < db.coord.NumShards(); i++ {
				files = append(files, txn.ShardDataFileName(i))
			}
		}
		for _, f := range files {
			if _, err := os.Stat(filepath.Join(dstDir, f)); err == nil {
				return fmt.Errorf("ode: backup target %s already exists", filepath.Join(dstDir, f))
			}
		}
		src := db.dir()
		for _, f := range files {
			if err := copyFileSync(filepath.Join(src, f), filepath.Join(dstDir, f)); err != nil {
				return err
			}
		}
		return nil
	})
}

// copyFileSync copies src to dst and fsyncs the result.
func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("ode: backup open: %w", err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("ode: backup create: %w", err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fmt.Errorf("ode: backup copy: %w", err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
