package ode

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ode/internal/txn"
)

// Backup writes a consistent snapshot of the database into dstDir
// (which must not already contain a database). It checkpoints first, so
// the snapshot is a single data file with an empty log, then copies the
// data file while holding the writer mutex exclusively — writers (and
// further checkpoints) are blocked for the duration; snapshot readers
// keep running, since they never touch the data file's mutable tail.
func (db *DB) Backup(dstDir string) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return fmt.Errorf("ode: backup mkdir: %w", err)
	}
	dst := filepath.Join(dstDir, txn.DataFileName)
	if _, err := os.Stat(dst); err == nil {
		return fmt.Errorf("ode: backup target %s already exists", dst)
	}
	// Checkpoint: all committed state reaches the data file; the WAL is
	// truncated to its header.
	if err := db.Checkpoint(); err != nil {
		return err
	}
	// Copy under the writer mutex: writers (and further checkpoints) are
	// excluded, so the file cannot change underneath the copy.
	return db.mgr.Exclusive(func() error {
		src := db.dir()
		in, err := os.Open(filepath.Join(src, txn.DataFileName))
		if err != nil {
			return fmt.Errorf("ode: backup open: %w", err)
		}
		defer in.Close()
		out, err := os.Create(dst)
		if err != nil {
			return fmt.Errorf("ode: backup create: %w", err)
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return fmt.Errorf("ode: backup copy: %w", err)
		}
		if err := out.Sync(); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}
