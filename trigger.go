package ode

import (
	"ode/internal/core"
	"ode/internal/trigger"
)

// Triggers: O++ attaches once/perpetual triggers to objects; the paper
// relies on them so that change notification (§1) and version
// percolation (§2) remain user policies rather than kernel features.
// Handlers run synchronously inside the firing transaction, so a
// trigger may perform further mutations atomically with the event.

// Event describes one versioning operation delivered to a trigger.
type Event = trigger.Event

// EventKind enumerates the operations triggers can watch.
type EventKind = trigger.Kind

// Event kinds.
const (
	EvCreate        = trigger.KindCreate
	EvUpdate        = trigger.KindUpdate
	EvNewVersion    = trigger.KindNewVersion
	EvDeleteVersion = trigger.KindDeleteVersion
	EvDeleteObject  = trigger.KindDeleteObject
)

// EventMask selects event kinds; build with On.
type EventMask = trigger.Mask

// On builds an EventMask from kinds.
func On(kinds ...EventKind) EventMask { return trigger.MaskOf(kinds...) }

// OnAny selects every event kind.
const OnAny = trigger.All

// TriggerHandler is a trigger body.
type TriggerHandler = trigger.Handler

// TriggerID identifies a registered trigger for removal.
type TriggerID = trigger.SubID

// OnObject registers a trigger on one object. once=true gives O++'s
// "once" semantics: the trigger fires at most one time.
func (db *DB) OnObject(o OID, mask EventMask, once bool, h TriggerHandler) TriggerID {
	return db.eng.Bus().OnObject(o, mask, once, h)
}

// OnType registers a trigger on every object of a type.
func (db *DB) OnType(t TypeID, mask EventMask, once bool, h TriggerHandler) TriggerID {
	return db.eng.Bus().OnType(t, mask, once, h)
}

// OnAll registers a database-wide trigger.
func (db *DB) OnAll(mask EventMask, once bool, h TriggerHandler) TriggerID {
	return db.eng.Bus().OnAll(mask, once, h)
}

// RemoveTrigger cancels a trigger registration.
func (db *DB) RemoveTrigger(id TriggerID) { db.eng.Bus().Unsubscribe(id) }

// TxOf returns the firing transaction of an event, as a public handle.
// Handlers must do all further reads and writes through it so their
// effects stay atomic with the triggering operation. The handle shares
// the firing transaction's lifetime: it is invalid (ErrTxDone) once
// that transaction ends.
func (db *DB) TxOf(ev Event) *Tx {
	ctx, ok := ev.Tx.(*core.Tx)
	if !ok || ctx == nil {
		return nil
	}
	return &Tx{db: db, ctx: ctx, writable: ctx.Writable()}
}
