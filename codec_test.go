package ode

import (
	"errors"
	"fmt"
	"testing"
)

func TestGobCodecRoundtrip(t *testing.T) {
	type nested struct {
		M map[string][]int
		P *int
	}
	c := GobCodec[nested]{}
	seven := 7
	in := &nested{M: map[string][]int{"a": {1, 2, 3}}, P: &seven}
	raw, err := c.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.M["a"]) != 3 || out.P == nil || *out.P != 7 {
		t.Fatalf("roundtrip: %+v", out)
	}
}

func TestGobCodecRejectsGarbage(t *testing.T) {
	c := GobCodec[Part]{}
	if _, err := c.Unmarshal([]byte("definitely not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// failingCodec simulates serialisation failures to test propagation.
type failingCodec struct {
	failMarshal, failUnmarshal bool
}

var errCodec = errors.New("codec boom")

func (f failingCodec) Marshal(*Part) ([]byte, error) {
	if f.failMarshal {
		return nil, errCodec
	}
	return []byte("ok"), nil
}

func (f failingCodec) Unmarshal([]byte) (*Part, error) {
	if f.failUnmarshal {
		return nil, errCodec
	}
	return &Part{}, nil
}

func TestCodecErrorPropagation(t *testing.T) {
	db := openDB(t, nil)
	bad, err := RegisterWithCodec[Part](db, "BadMarshal", failingCodec{failMarshal: true})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *Tx) error {
		_, err := bad.Create(tx, &Part{})
		return err
	})
	if !errors.Is(err, errCodec) {
		t.Fatalf("marshal failure not propagated: %v", err)
	}
	// Nothing was created by the failed marshal.
	if st := db.Stats(); st.Objects != 0 {
		t.Fatalf("failed marshal created object: %+v", st)
	}

	badU, err := RegisterWithCodec[Part](db, "BadUnmarshal", failingCodec{failUnmarshal: true})
	if err != nil {
		t.Fatal(err)
	}
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = badU.Create(tx, &Part{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err = db.View(func(tx *Tx) error {
		_, err := p.Deref(tx)
		return err
	})
	if !errors.Is(err, errCodec) {
		t.Fatalf("unmarshal failure not propagated: %v", err)
	}
}

func TestPtrSurface(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	var vp VPtr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "s"})
		if err != nil {
			return err
		}
		vp, err = p.Pin(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var zeroP Ptr[Part]
	var zeroV VPtr[Part]
	if !zeroP.IsNil() || !zeroV.IsNil() {
		t.Fatal("zero pointers not nil")
	}
	if p.IsNil() || vp.IsNil() {
		t.Fatal("live pointers nil")
	}
	if p.String() != p.OID().String() {
		t.Fatalf("Ptr.String = %q", p.String())
	}
	want := fmt.Sprintf("%v/%v", vp.OID(), vp.VID())
	if vp.String() != want {
		t.Fatalf("VPtr.String = %q want %q", vp.String(), want)
	}
	if vp.Ptr().OID() != p.OID() {
		t.Fatal("VPtr.Ptr() lost the object")
	}
	if parts.Name() != "Part" || parts.ID() == 0 {
		t.Fatalf("type surface: %q %v", parts.Name(), parts.ID())
	}
	// Nil-reference traversal results: the root's Dprev is a nil VPtr.
	if err := db.View(func(tx *Tx) error {
		d, err := vp.Dprev(tx)
		if err != nil {
			return err
		}
		if !d.IsNil() {
			t.Fatalf("root Dprev = %v", d)
		}
		tp, err := vp.Tprev(tx)
		if err != nil || !tp.IsNil() {
			t.Fatalf("root Tprev = %v, %v", tp, err)
		}
		if !tx.Writable() {
			return nil
		}
		t.Fatal("View transaction claims writable")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestModifyAndDChildren(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	var v0 VPtr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Rev: 1})
		if err != nil {
			return err
		}
		if err := p.Modify(tx, func(x *Part) { x.Rev *= 10 }); err != nil {
			return err
		}
		v0, err = p.Pin(tx)
		if err != nil {
			return err
		}
		// Two alternatives from v0.
		if _, err := v0.NewVersion(tx); err != nil {
			return err
		}
		_, err = v0.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		v, err := v0.Deref(tx)
		if err != nil || v.Rev != 10 {
			t.Fatalf("modify result: %+v %v", v, err)
		}
		kids, err := v0.DChildren(tx)
		if err != nil || len(kids) != 2 {
			t.Fatalf("DChildren: %v %v", kids, err)
		}
		versions, err := p.Versions(tx)
		if err != nil || len(versions) != 3 {
			t.Fatalf("Versions: %d %v", len(versions), err)
		}
		hist, err := kids[0].History(tx)
		if err != nil || len(hist) != 2 || hist[1].VID() != v0.VID() {
			t.Fatalf("History: %v %v", hist, err)
		}
		info, err := kids[0].Info(tx)
		if err != nil || info.Dprev != v0.VID() {
			t.Fatalf("Info: %+v %v", info, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
