package ode

// Randomized concurrent soak test for the observability layer: N
// goroutines run a mixed NewVersion / delete-version / in-place-update /
// read / history / as-of workload against disjoint objects while an
// in-memory model tracks exactly what each worker was acked. At the end
// every Stats counter and every metrics histogram count must reconcile
// EXACTLY with the model — not approximately: commits, aborts, live
// versions, walk counts, and the commit-latency histogram population
// are all closed-form functions of the op log. Run under -race this is
// also the concurrency stress for the seqlock'd Commits/Batches pair
// and the lock-free histograms.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// msoakObject is the model of one object: its live versions in temporal
// order and the payload each was last acked with.
type msoakObject struct {
	oid     OID
	order   []VID          // live versions, temporal (creation) order
	content map[VID][]byte // expected payload per live version
}

func (so *msoakObject) latest() VID { return so.order[len(so.order)-1] }

func (so *msoakObject) remove(v VID) {
	for i, x := range so.order {
		if x == v {
			so.order = append(so.order[:i], so.order[i+1:]...)
			break
		}
	}
	delete(so.content, v)
}

// msoakTally is one worker's op log summary.
type msoakTally struct {
	commits      uint64 // successful Updates (incl. the create batch)
	aborts       uint64 // deliberate rollbacks
	historyCalls uint64 // tx.History invocations
	asofCalls    uint64 // tx.AsOfWalk invocations
}

var errMsoakAbort = errors.New("soak: deliberate abort")

func msoakPayload(rng *rand.Rand) []byte {
	p := make([]byte, 16+rng.Intn(48))
	rng.Read(p)
	return p
}

// msoakWorker runs ops operations against its own disjoint objects.
func msoakWorker(t *testing.T, db *DB, tid TypeID, seed int64, nObjs, ops int) (msoakTally, []*msoakObject, error) {
	rng := rand.New(rand.NewSource(seed))
	var tally msoakTally
	objs := make([]*msoakObject, 0, nObjs)

	// One create commit seeds this worker's objects.
	err := db.Update(func(tx *Tx) error {
		for i := 0; i < nObjs; i++ {
			p := msoakPayload(rng)
			o, v, err := tx.CreateRaw(tid, p)
			if err != nil {
				return err
			}
			objs = append(objs, &msoakObject{
				oid:     o,
				order:   []VID{v},
				content: map[VID][]byte{v: p},
			})
		}
		return nil
	})
	if err != nil {
		return tally, nil, err
	}
	tally.commits++

	for i := 0; i < ops; i++ {
		so := objs[rng.Intn(len(objs))]
		switch op := rng.Intn(100); {
		case op < 30: // newversion with fresh content
			p := msoakPayload(rng)
			var nv VID
			err := db.Update(func(tx *Tx) error {
				var err error
				if nv, err = tx.NewVersion(so.oid); err != nil {
					return err
				}
				return tx.UpdateVersionRaw(so.oid, nv, p)
			})
			if err != nil {
				return tally, nil, err
			}
			tally.commits++
			so.order = append(so.order, nv)
			so.content[nv] = p
		case op < 45: // in-place update of the latest version
			p := msoakPayload(rng)
			var got VID
			err := db.Update(func(tx *Tx) error {
				var err error
				got, err = tx.UpdateLatestRaw(so.oid, p)
				return err
			})
			if err != nil {
				return tally, nil, err
			}
			tally.commits++
			if want := so.latest(); got != want {
				return tally, nil, fmt.Errorf("UpdateLatestRaw hit %v, model latest %v", got, want)
			}
			so.content[got] = p
		case op < 55: // delete one version (only with ≥2 live: a
			// 1-version pdelete removes the whole object, which the
			// model keeps out of this workload on purpose)
			if len(so.order) < 2 {
				continue
			}
			v := so.order[rng.Intn(len(so.order))]
			err := db.Update(func(tx *Tx) error {
				return tx.DeleteVersion(so.oid, v)
			})
			if err != nil {
				return tally, nil, err
			}
			tally.commits++
			so.remove(v)
		case op < 65: // deliberate abort after a real mutation
			err := db.Update(func(tx *Tx) error {
				if _, err := tx.NewVersion(so.oid); err != nil {
					return err
				}
				return errMsoakAbort
			})
			if !errors.Is(err, errMsoakAbort) {
				return tally, nil, fmt.Errorf("abort commit returned %v", err)
			}
			tally.aborts++
		case op < 85: // read a random live version, verify content
			v := so.order[rng.Intn(len(so.order))]
			want := so.content[v]
			err := db.View(func(tx *Tx) error {
				got, err := tx.ReadVersionRaw(so.oid, v)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("version %v content mismatch", v)
				}
				return nil
			})
			if err != nil {
				return tally, nil, err
			}
		case op < 95: // derivation-history walk from the latest version
			latest := so.latest()
			err := db.View(func(tx *Tx) error {
				h, err := tx.History(so.oid, latest)
				if err != nil {
					return err
				}
				if len(h) == 0 || h[0] != latest {
					return fmt.Errorf("history of %v starts with %v", latest, h)
				}
				return nil
			})
			if err != nil {
				return tally, nil, err
			}
			tally.historyCalls++
		default: // temporal as-of walk; at the current stamp it must
			// resolve to the model's latest live version
			err := db.View(func(tx *Tx) error {
				v, ok, err := tx.AsOfWalk(so.oid, tx.CurrentStamp())
				if err != nil {
					return err
				}
				if !ok || v != so.latest() {
					return fmt.Errorf("as-of now: got %v ok=%v, want %v", v, ok, so.latest())
				}
				return nil
			})
			if err != nil {
				return tally, nil, err
			}
			tally.asofCalls++
		}
	}
	return tally, objs, nil
}

// runSoak is one full soak run: open, register, fan out workers, then
// reconcile every counter against the merged model.
func runSoak(t *testing.T, seed int64) {
	t.Helper()
	const (
		workers       = 8
		objsPerWorker = 3
		opsPerWorker  = 80
	)
	// Default options: group commit on, real fsyncs — the batch path is
	// part of what the reconciliation covers. Checkpoints off so the
	// checkpoint count stays a model quantity.
	db := openDB(t, &Options{CheckpointBytes: -1})
	tid, err := db.Engine().RegisterType("SoakBlob")
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		tallies []msoakTally
		model   []*msoakObject
		failed  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tally, objs, err := msoakWorker(t, db, tid, seed*1000+int64(w), objsPerWorker, opsPerWorker)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && failed == nil {
				failed = fmt.Errorf("worker %d: %w", w, err)
			}
			tallies = append(tallies, tally)
			model = append(model, objs...)
		}(w)
	}
	wg.Wait()
	if failed != nil {
		t.Fatal(failed)
	}

	var total msoakTally
	liveVersions := uint64(0)
	for _, tl := range tallies {
		total.commits += tl.commits
		total.aborts += tl.aborts
		total.historyCalls += tl.historyCalls
		total.asofCalls += tl.asofCalls
	}
	for _, so := range model {
		liveVersions += uint64(len(so.order))
	}

	// Exact reconciliation. The +2 is the two bootstrap commits every
	// fresh database performs: core.New's init-structures transaction
	// and the first RegisterType.
	st := db.Stats()
	ms := db.Metrics()
	wantCommits := total.commits + 2
	if st.Commits != wantCommits {
		t.Errorf("Commits = %d, model %d", st.Commits, wantCommits)
	}
	if st.Aborts != total.aborts {
		t.Errorf("Aborts = %d, model %d", st.Aborts, total.aborts)
	}
	if want := uint64(workers * objsPerWorker); st.Objects != want {
		t.Errorf("Objects = %d, model %d", st.Objects, want)
	}
	if st.Versions != liveVersions {
		t.Errorf("Versions = %d, model %d", st.Versions, liveVersions)
	}
	if st.Checkpoints != 0 {
		t.Errorf("Checkpoints = %d, want 0 (disabled)", st.Checkpoints)
	}
	if st.Batches > st.Commits {
		t.Errorf("Batches (%d) > Commits (%d)", st.Batches, st.Commits)
	}
	if st.Batches == 0 {
		t.Error("grouped run produced no batches")
	}
	// Histogram populations are closed-form: one commit-latency sample
	// per commit; every commit here is non-empty and grouped, so the
	// batch-size histogram sums to the commit count and has one sample
	// per fsync batch; one walk sample per History/AsOfWalk call.
	if ms.CommitLatency.Count != st.Commits {
		t.Errorf("CommitLatency.Count = %d, want %d", ms.CommitLatency.Count, st.Commits)
	}
	if ms.BatchSize.Sum != st.Commits {
		t.Errorf("Sum(BatchSize) = %d, want %d", ms.BatchSize.Sum, st.Commits)
	}
	if ms.BatchSize.Count != st.Batches {
		t.Errorf("BatchSize.Count = %d, want %d", ms.BatchSize.Count, st.Batches)
	}
	if ms.DprevWalkLen.Count != total.historyCalls {
		t.Errorf("DprevWalk.Count = %d, model %d", ms.DprevWalkLen.Count, total.historyCalls)
	}
	if ms.TprevWalkLen.Count != total.asofCalls {
		t.Errorf("TprevWalk.Count = %d, model %d", ms.TprevWalkLen.Count, total.asofCalls)
	}

	// The surviving structure must match the model object-by-object,
	// and the whole store must still pass the integrity sweep.
	err = db.View(func(tx *Tx) error {
		for _, so := range model {
			vs, err := tx.Versions(so.oid)
			if err != nil {
				return err
			}
			if len(vs) != len(so.order) {
				return fmt.Errorf("%v: %d versions, model %d", so.oid, len(vs), len(so.order))
			}
			for i, v := range vs {
				if v != so.order[i] {
					return fmt.Errorf("%v: version[%d] = %v, model %v", so.oid, i, v, so.order[i])
				}
			}
			latest, err := tx.Latest(so.oid)
			if err != nil {
				return err
			}
			if latest != so.latest() {
				return fmt.Errorf("%v: latest %v, model %v", so.oid, latest, so.latest())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// soakSeeds returns the seeds to soak: the ODE_SOAK_SEEDS environment
// variable as a comma-separated list (e.g. ODE_SOAK_SEEDS=1,2,3,17 for
// a longer hunt; see `make help`), defaulting to the standard three.
// Parsing is strict — mirroring workload.ParseSeeds, which this package
// cannot import (internal/workload imports ode): a typo in the list
// fails the run instead of silently soaking fewer seeds than asked.
func soakSeeds(t *testing.T) []int64 {
	t.Helper()
	env := os.Getenv("ODE_SOAK_SEEDS")
	if strings.TrimSpace(env) == "" {
		return []int64{1, 2, 3}
	}
	var seeds []int64
	for i, part := range strings.Split(env, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			t.Fatalf("ODE_SOAK_SEEDS %q: entry %d is empty", env, i+1)
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			t.Fatalf("ODE_SOAK_SEEDS %q: entry %d (%q) is not an integer", env, i+1, part)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

func TestSoakMetricsReconciliation(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runSoak(t, seed) })
	}
}
