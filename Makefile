GO ?= go
FUZZTIME ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-consistency fault matrix (DESIGN.md §8, §12) under the race
# detector: every WAL/storage injection point plus the engine-level
# matrix through the public Options.FS hook, at both shard dimensions —
# ODE_SHARDS=1 is the legacy single-shard layout, ODE_SHARDS=4 re-runs
# the engine-level matrix against four shard WALs plus the 2PC
# coordinator log (the coordinator's own fault matrix runs in
# ./internal/txn either way).
matrix:
	ODE_SHARDS=1 $(GO) test -race -run 'FaultMatrix|RecoveryDeterministic|PoolReadFault|EngineCrashMatrix|FailedCommitSync' ./internal/txn ./internal/storage .
	ODE_SHARDS=4 $(GO) test -race -count=1 -run 'FaultMatrix|EngineCrashMatrix|FailedCommitSync' .

# Short continuous-fuzz pass over every native fuzz target (seed
# corpora under testdata/fuzz always run as part of plain `go test`;
# this explores beyond them). One target at a time — `go test -fuzz`
# accepts a single pattern per run.
fuzz:
	$(GO) test -fuzz FuzzScanEnd -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzBatchTail -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzReaderOps -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/codec

# Metrics-reconciling soak suite (soak_test.go) under the race
# detector: randomized concurrent workloads whose Stats/Metrics
# counters must reconcile exactly with an in-memory model, plus the
# tracer fault-isolation tests — at Shards=1 and again at Shards=4
# (per-shard pipelines, cross-shard 2PC, rolled-up metrics).
soak:
	ODE_SHARDS=1 $(GO) test -race -count=1 -run 'TestSoak|TestStats|TestTracer' .
	ODE_SHARDS=4 $(GO) test -race -count=1 -run 'TestSoak|TestStats|TestTracer' .

# Line coverage, with a hard floor on internal/obs: the observability
# layer is pure bookkeeping, so uncovered lines are untested claims.
cover:
	$(GO) test -cover ./...
	$(GO) test -coverprofile=/tmp/obs.cover ./internal/obs
	@$(GO) tool cover -func=/tmp/obs.cover | awk '/^total:/ { \
	  pct = $$3 + 0; \
	  printf "internal/obs coverage: %s (floor 85%%)\n", $$3; \
	  if (pct < 85) { print "FAIL: internal/obs below 85% coverage"; exit 1 } }'

check: build vet race matrix soak

.PHONY: build test vet race matrix fuzz soak cover check
