GO ?= go
FUZZTIME ?= 30s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-consistency fault matrix (DESIGN.md §8) under the race
# detector: every WAL/storage injection point plus the engine-level
# matrix through the public Options.FS hook.
matrix:
	$(GO) test -race -run 'FaultMatrix|RecoveryDeterministic|PoolReadFault|EngineCrashMatrix|FailedCommitSync' ./internal/txn ./internal/storage .

# Short continuous-fuzz pass over every native fuzz target (seed
# corpora under testdata/fuzz always run as part of plain `go test`;
# this explores beyond them). One target at a time — `go test -fuzz`
# accepts a single pattern per run.
fuzz:
	$(GO) test -fuzz FuzzScanEnd -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzBatchTail -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzReaderOps -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/codec

cover:
	$(GO) test -cover ./...

check: build vet race matrix

.PHONY: build test vet race matrix fuzz cover check
