GO ?= go
FUZZTIME ?= 30s
# Comma-separated soak seeds, e.g. `make soak ODE_SOAK_SEEDS=1,2,3,17`.
# Empty means the suite's default three (1,2,3).
ODE_SOAK_SEEDS ?=

# Bare `make` keeps building, as before the help target existed.
.DEFAULT_GOAL := build

help:
	@echo "Targets:"
	@echo "  build    go build ./..."
	@echo "  test     go test ./..."
	@echo "  vet      go vet ./..."
	@echo "  race     full test suite under -race"
	@echo "  matrix   crash-consistency fault matrix at 1 and 4 shards (-race)"
	@echo "  soak     metrics-reconciling soak suite at 1 and 4 shards (-race);"
	@echo "           seeds default to 1,2,3 — override with a comma-separated"
	@echo "           list, e.g. make soak ODE_SOAK_SEEDS=1,2,3,17,99"
	@echo "  ycsb     odebench E15 smoke: oracle-checked YCSB workload, every"
	@echo "           version shape at 1 and 4 shards, under -race"
	@echo "  delta-matrix  delta-tier battery: round-trip property, crash matrix"
	@echo "           over compactor demotions, deep-chain workload, at"
	@echo "           ODE_SHARDS=1 and 4, under -race; plus odebench E17 smoke"
	@echo "  hotpath  allocation-regression gates on the commit and cached"
	@echo "           deref paths, plus odebench E18 smoke"
	@echo "  fuzz     continuous fuzz over every native target, FUZZTIME=$(FUZZTIME) each"
	@echo "  fuzz-smoke  same targets at 10s each — the CI tier"
	@echo "  cover    line coverage, with 85% floors on internal/obs,"
	@echo "           internal/workload, internal/delta, internal/matcache and"
	@echo "           (per-file, over the delta battery) the two compact.go files"
	@echo "  check    build + vet + race + matrix + soak + ycsb + delta-matrix + hotpath"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-consistency fault matrix (DESIGN.md §8, §12) under the race
# detector: every WAL/storage injection point plus the engine-level
# matrix through the public Options.FS hook, at both shard dimensions —
# ODE_SHARDS=1 is the legacy single-shard layout, ODE_SHARDS=4 re-runs
# the engine-level matrix against four shard WALs plus the 2PC
# coordinator log (the coordinator's own fault matrix runs in
# ./internal/txn either way).
matrix:
	ODE_SHARDS=1 $(GO) test -race -run 'FaultMatrix|RecoveryDeterministic|PoolReadFault|EngineCrashMatrix|FailedCommitSync' ./internal/txn ./internal/storage .
	ODE_SHARDS=4 $(GO) test -race -count=1 -run 'FaultMatrix|EngineCrashMatrix|FailedCommitSync' .

# Short continuous-fuzz pass over every native fuzz target (seed
# corpora under testdata/fuzz always run as part of plain `go test`;
# this explores beyond them). One target at a time — `go test -fuzz`
# accepts a single pattern per run.
fuzz:
	$(GO) test -fuzz FuzzScanEnd -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzBatchTail -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -fuzz FuzzCoordDecisionScan -fuzztime $(FUZZTIME) ./internal/txn
	$(GO) test -fuzz FuzzReaderOps -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -fuzz FuzzAppendEncoder -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -fuzz FuzzDeltaChain -fuzztime $(FUZZTIME) ./internal/delta

# The 10-second-per-target tier CI runs on every push: long enough to
# explore past the seed corpora, short enough for a PR gate.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# Metrics-reconciling soak suite (soak_test.go) under the race
# detector: randomized concurrent workloads whose Stats/Metrics
# counters must reconcile exactly with an in-memory model, plus the
# tracer fault-isolation tests — at Shards=1 and again at Shards=4
# (per-shard pipelines, cross-shard 2PC, rolled-up metrics). Seeds are
# configurable: ODE_SOAK_SEEDS=1,2,3,17 runs four seeds per dimension.
soak:
	ODE_SHARDS=1 ODE_SOAK_SEEDS=$(ODE_SOAK_SEEDS) $(GO) test -race -count=1 -run 'TestSoak|TestStats|TestTracer' .
	ODE_SHARDS=4 ODE_SOAK_SEEDS=$(ODE_SOAK_SEEDS) $(GO) test -race -count=1 -run 'TestSoak|TestStats|TestTracer' .

# The E15 oracle-checked workload smoke (EXPERIMENTS.md E15): every
# version shape at 1 and 4 shards, zipfian + uniform, under -race.
# Every read in every window is validated against the in-memory
# reference model; any divergence fails with a seed+trace repro.
ycsb:
	$(GO) run -race ./cmd/odebench -scale ci -only E15 -ycsbjson ""

# The hot-path gate (DESIGN.md §15, EXPERIMENTS.md E18): the
# allocation-regression tests pin the zero-copy commit path and the
# cached dereference read to their measured allocs/op ceilings, then
# the E18 benchmark runs at ci scale as an end-to-end smoke — alloc
# reductions, cache speedup, hit rates.
hotpath:
	$(GO) test -count=1 -run 'TestCommitPathAllocs|TestHotDerefAllocs' -v .
	$(GO) run ./cmd/odebench -scale ci -only E18 -hotpathjson ""

# The delta-tier battery (DESIGN.md §14, EXPERIMENTS.md E17): the
# random-edit round-trip property across anchor intervals, the crash
# matrix over compactor demotion commits, the materialisation cache and
# reshard-interaction tests, and the deep-chain oracle workload — at
# both shard dimensions under -race — then the E17 benchmark at ci
# scale as an end-to-end smoke.
delta-matrix:
	ODE_SHARDS=1 $(GO) test -race -count=1 -run 'TestDelta' .
	ODE_SHARDS=4 $(GO) test -race -count=1 -run 'TestDelta' .
	$(GO) test -race -count=1 -run 'TestDeepChainShape' ./internal/workload
	$(GO) run -race ./cmd/odebench -scale ci -only E17 -deltajson ""

# Line coverage, with hard floors on internal/obs and internal/workload:
# the observability layer is pure bookkeeping and the workload harness
# is the correctness oracle — uncovered lines there are untested claims.
cover:
	$(GO) test -cover ./...
	$(GO) test -coverprofile=/tmp/obs.cover ./internal/obs
	@$(GO) tool cover -func=/tmp/obs.cover | awk '/^total:/ { \
	  pct = $$3 + 0; \
	  printf "internal/obs coverage: %s (floor 85%%)\n", $$3; \
	  if (pct < 85) { print "FAIL: internal/obs below 85% coverage"; exit 1 } }'
	$(GO) test -coverprofile=/tmp/workload.cover ./internal/workload
	@$(GO) tool cover -func=/tmp/workload.cover | awk '/^total:/ { \
	  pct = $$3 + 0; \
	  printf "internal/workload coverage: %s (floor 85%%)\n", $$3; \
	  if (pct < 85) { print "FAIL: internal/workload below 85% coverage"; exit 1 } }'
	$(GO) test -coverprofile=/tmp/delta.cover ./internal/delta
	@$(GO) tool cover -func=/tmp/delta.cover | awk '/^total:/ { \
	  pct = $$3 + 0; \
	  printf "internal/delta coverage: %s (floor 85%%)\n", $$3; \
	  if (pct < 85) { print "FAIL: internal/delta below 85% coverage"; exit 1 } }'
	$(GO) test -coverprofile=/tmp/matcache.cover ./internal/matcache
	@$(GO) tool cover -func=/tmp/matcache.cover | awk '/^total:/ { \
	  pct = $$3 + 0; \
	  printf "internal/matcache coverage: %s (floor 85%%)\n", $$3; \
	  if (pct < 85) { print "FAIL: internal/matcache below 85% coverage"; exit 1 } }'
	# The compaction write-side lives in internal/core/compact.go and
	# the sweeper pacing in compact.go, both exercised from the root
	# delta battery (including its read-fault and crash matrices) — so
	# the 85% floors here are per-file, measured over that battery. The
	# uncovered remainder is I/O-error returns the fault matrices don't
	# reach.
	$(GO) test -count=1 -run 'TestDelta' -coverprofile=/tmp/deltatier.cover -coverpkg=./internal/core,. .
	@for f in ode/internal/core/compact.go ode/compact.go; do \
	  awk -v file="$$f" '$$1 ~ "^"file { t += $$2; if ($$3 > 0) c += $$2 } END { \
	    pct = 100*c/t; \
	    printf "%s coverage: %.1f%% (floor 85%%)\n", file, pct; \
	    if (pct < 85) { printf "FAIL: %s below 85%% coverage\n", file; exit 1 } }' /tmp/deltatier.cover || exit 1; \
	done

check: build vet race matrix soak ycsb delta-matrix hotpath

.PHONY: help build test vet race matrix fuzz fuzz-smoke soak ycsb delta-matrix hotpath cover check
