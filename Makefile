GO ?= go

.PHONY: build test vet race matrix check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The crash-consistency fault matrix (DESIGN.md §8) under the race
# detector: every WAL/storage injection point plus the engine-level
# matrix through the public Options.FS hook.
matrix:
	$(GO) test -race -run 'FaultMatrix|RecoveryDeterministic|PoolReadFault|EngineCrashMatrix|FailedCommitSync' ./internal/txn ./internal/storage .

check: build vet race matrix
