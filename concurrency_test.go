package ode

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEscapedTxReturnsErrTxDone pins the handle lifecycle: a *Tx that
// leaks out of its View/Update closure must refuse every operation with
// ErrTxDone instead of silently running against later database state.
func TestEscapedTxReturnsErrTxDone(t *testing.T) {
	db := openDB(t, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	var escaped *Tx
	var o OID
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{Name: "escapee"})
		if err != nil {
			return err
		}
		o = p.OID()
		escaped = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := escaped.Latest(o); !errors.Is(err, ErrTxDone) {
		t.Fatalf("read on escaped update tx: %v", err)
	}
	if _, err := escaped.NewVersion(o); !errors.Is(err, ErrTxDone) {
		t.Fatalf("write on escaped update tx: %v", err)
	}
	if _, _, err := escaped.CreateRaw(0, nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("create on escaped update tx: %v", err)
	}

	if err := db.View(func(tx *Tx) error {
		escaped = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := escaped.Versions(o); !errors.Is(err, ErrTxDone) {
		t.Fatalf("read on escaped view tx: %v", err)
	}

	var nilTx *Tx
	if _, err := nilTx.Latest(o); !errors.Is(err, ErrTxDone) {
		t.Fatalf("read on nil tx: %v", err)
	}

	// None of the rejected calls touched the database.
	if err := db.View(func(tx *Tx) error {
		vs, err := tx.Versions(o)
		if err != nil {
			return err
		}
		if len(vs) != 1 {
			t.Fatalf("escaped tx mutated state: %d versions", len(vs))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersConsistentSnapshots is the reader/writer stress
// test for the epoch-pinned snapshot machinery (DESIGN.md §9). Reader
// goroutines traverse History/Dprev while a writer loops
// NewVersion/DeleteVersion against the same object; every View must see
// a frozen, internally consistent version graph for its whole lifetime.
// Run under -race this also proves readers share no unsynchronised
// state with the writer.
func TestConcurrentReadersConsistentSnapshots(t *testing.T) {
	db := openDB(t, &Options{NoSync: true})
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	var o OID
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{Name: "hot"})
		if err != nil {
			return err
		}
		o = p.OID()
		for i := 0; i < 8; i++ {
			if _, err := p.NewVersion(tx); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const (
		readers     = 8
		writerIters = 250
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Writer: advance the tip and prune the tail, keeping a sliding
	// window of versions so readers race against both creation and
	// deletion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < writerIters; i++ {
			if err := db.Update(func(tx *Tx) error {
				if _, err := tx.NewVersion(o); err != nil {
					return err
				}
				vs, err := tx.Versions(o)
				if err != nil {
					return err
				}
				if len(vs) > 12 {
					return tx.DeleteVersion(o, vs[1])
				}
				return nil
			}); err != nil {
				errs <- fmt.Errorf("writer iter %d: %w", i, err)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				err := db.View(func(tx *Tx) error {
					vs, err := tx.Versions(o)
					if err != nil {
						return err
					}
					set := make(map[VID]bool, len(vs))
					for _, v := range vs {
						set[v] = true
					}
					for _, v := range vs {
						if _, err := tx.Info(o, v); err != nil {
							return fmt.Errorf("version %v vanished mid-view: %w", v, err)
						}
						d, err := tx.Dprev(o, v)
						if err != nil {
							return err
						}
						if d != 0 && !set[d] {
							return fmt.Errorf("dprev %v of %v outside snapshot version set", d, v)
						}
					}
					latest, err := tx.Latest(o)
					if err != nil {
						return err
					}
					if _, err := tx.History(o, latest); err != nil {
						return err
					}
					// The version set must not move while the view lives.
					again, err := tx.Versions(o)
					if err != nil {
						return err
					}
					if len(again) != len(vs) {
						return fmt.Errorf("snapshot moved under view: %d -> %d versions", len(vs), len(again))
					}
					_ = db.Stats() // atomic counters: must be clean under -race
					return nil
				})
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
