// Quickstart: the Ode versioning primitives in one sitting — pnew,
// generic vs specific references, newversion, traversals, and pdelete.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"ode"
)

// Part is an ordinary Go struct; nothing about it declares that it will
// be versioned (version orthogonality: the decision is made per object,
// per call, not per type).
type Part struct {
	Name string
	Rev  int
}

func main() {
	dir, err := os.MkdirTemp("", "ode-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	parts, err := ode.Register[Part](db, "Part")
	if err != nil {
		log.Fatal(err)
	}

	var p ode.Ptr[Part]   // generic reference: binds to the latest version
	var v0 ode.VPtr[Part] // specific reference: pins one version
	err = db.Update(func(tx *ode.Tx) error {
		// pnew: the object persists by construction; no insert call.
		var err error
		p, err = parts.Create(tx, &Part{Name: "ALU", Rev: 0})
		if err != nil {
			return err
		}
		// Pin today's state before evolving it.
		v0, err = p.Pin(tx)
		return err
	})
	check(err)
	fmt.Printf("created %v, pinned %v\n", p, v0)

	// newversion: the object id re-binds to the new version; the pinned
	// reference keeps seeing the old state.
	err = db.Update(func(tx *ode.Tx) error {
		v1, err := p.NewVersion(tx)
		if err != nil {
			return err
		}
		return v1.Modify(tx, func(x *Part) { x.Rev = 1 })
	})
	check(err)

	err = db.View(func(tx *ode.Tx) error {
		cur, err := p.Deref(tx) // late binding → Rev 1
		if err != nil {
			return err
		}
		old, err := v0.Deref(tx) // early binding → Rev 0
		if err != nil {
			return err
		}
		fmt.Printf("generic deref:  %+v\n", *cur)
		fmt.Printf("specific deref: %+v\n", *old)
		return nil
	})
	check(err)

	// Alternatives: derive a second version from v0 in parallel with the
	// revision above — the derived-from relationship is a tree.
	err = db.Update(func(tx *ode.Tx) error {
		alt, err := v0.NewVersion(tx)
		if err != nil {
			return err
		}
		return alt.Modify(tx, func(x *Part) { x.Name = "ALU-lowpower"; x.Rev = 1 })
	})
	check(err)

	// Traversals: Dprevious (derivation), Tprevious (time), leaves.
	err = db.View(func(tx *ode.Tx) error {
		graph, err := tx.Render(p.OID())
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", graph)
		leaves, err := p.Leaves(tx)
		if err != nil {
			return err
		}
		fmt.Printf("alternative tips: %v\n", leaves)
		for _, leaf := range leaves {
			hist, err := leaf.History(tx)
			if err != nil {
				return err
			}
			fmt.Printf("  history of %v: %v\n", leaf.VID(), hist)
		}
		return nil
	})
	check(err)

	// pdelete(vid): remove one version; the derivation tree splices.
	err = db.Update(func(tx *ode.Tx) error { return v0.Delete(tx) })
	check(err)
	err = db.View(func(tx *ode.Tx) error {
		graph, err := tx.Render(p.OID())
		if err != nil {
			return err
		}
		fmt.Printf("\nafter pdelete(%v):\n%s", v0.VID(), graph)
		return nil
	})
	check(err)

	// pdelete(oid): the object and all versions disappear.
	err = db.Update(func(tx *ode.Tx) error { return p.Delete(tx) })
	check(err)
	st := db.Stats()
	fmt.Printf("\nafter pdelete(oid): objects=%d versions=%d\n", st.Objects, st.Versions)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
