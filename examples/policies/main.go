// Policies example: the paper keeps the versioning kernel minimal and
// argues that change notification, version percolation, and
// checkin/checkout models are *policies* users build from primitives
// and triggers (§1, §2, §7). This example runs all three policies from
// internal/policy over one design database.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"os"

	"ode"
	"ode/internal/policy"
)

// Module is a design unit; Board aggregates modules.
type Module struct {
	Name string
	HDL  string
}

func main() {
	dir, err := os.MkdirTemp("", "ode-policies-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	modules, err := ode.Register[Module](db, "Module")
	check(err)

	// A three-level composite: board ⊃ cpu ⊃ alu.
	var alu, cpu, board ode.Ptr[Module]
	err = db.Update(func(tx *ode.Tx) error {
		var err error
		if alu, err = modules.Create(tx, &Module{Name: "alu", HDL: "alu-v0"}); err != nil {
			return err
		}
		if cpu, err = modules.Create(tx, &Module{Name: "cpu", HDL: "cpu-v0"}); err != nil {
			return err
		}
		board, err = modules.Create(tx, &Module{Name: "board", HDL: "board-v0"})
		return err
	})
	check(err)

	// --- policy 1: change notification ------------------------------------
	notifier := policy.NewNotifier(db)
	notifier.WatchObject("release-manager", board.OID(), ode.OnAny)
	notifier.WatchType("audit-log", modules.ID(), ode.On(ode.EvNewVersion))

	// --- policy 2: version percolation -------------------------------------
	perc := policy.NewPercolator(db)
	perc.Declare(cpu.OID(), alu.OID())
	perc.Declare(board.OID(), cpu.OID())
	perc.Enable()

	// One small edit to the ALU...
	err = db.Update(func(tx *ode.Tx) error {
		nv, err := alu.NewVersion(tx)
		if err != nil {
			return err
		}
		return nv.Modify(tx, func(m *Module) { m.HDL = "alu-v1-fixed-carry" })
	})
	check(err)
	check(perc.Err())

	err = db.View(func(tx *ode.Tx) error {
		fmt.Println("after one ALU edit with percolation enabled:")
		for _, p := range []ode.Ptr[Module]{alu, cpu, board} {
			n, err := p.VersionCount(tx)
			if err != nil {
				return err
			}
			v, err := p.Deref(tx)
			if err != nil {
				return err
			}
			fmt.Printf("  %-6s versions=%d\n", v.Name, n)
		}
		return nil
	})
	check(err)
	fmt.Printf("percolation created %d extra versions (the cascade the paper\n", perc.Created())
	fmt.Println("warns about — which is why it is a policy, not a primitive)")

	fmt.Println("\nnotifications delivered synchronously inside the transaction:")
	for _, n := range notifier.Drain("audit-log") {
		fmt.Printf("  audit-log: %v on %v (new version %v)\n", n.Event.Kind, n.Event.Obj, n.Event.VID)
	}
	for _, n := range notifier.Drain("release-manager") {
		fmt.Printf("  release-manager: %v on %v\n", n.Event.Kind, n.Event.Obj)
	}
	perc.Disable()

	// --- policy 3: checkout/checkin workspaces -----------------------------
	fmt.Println("\nORION-style checkout/checkin built over contexts:")
	ws := policy.NewWorkspace(db, "alice")
	err = db.Update(func(tx *ode.Tx) error {
		working, err := ws.Checkout(tx, alu.OID())
		if err != nil {
			return err
		}
		fmt.Printf("  alice checked out %v as private working version %v\n", alu.OID(), working)
		return nil
	})
	check(err)
	// Alice edits privately; the public view is unaffected.
	err = db.Update(func(tx *ode.Tx) error {
		cur, _, err := ws.Read(tx, alu.OID())
		if err != nil {
			return err
		}
		_ = cur
		return ws.Write(tx, alu.OID(), []byte("alu-v2-alice-draft"))
	})
	check(err)
	err = db.View(func(tx *ode.Tx) error {
		private, _, err := ws.Read(tx, alu.OID())
		if err != nil {
			return err
		}
		public, _, err := tx.ReadLatestRaw(alu.OID())
		if err != nil {
			return err
		}
		fmt.Printf("  workspace sees: %.30q\n", private)
		fmt.Printf("  public sees:    %d gob-encoded bytes (unchanged Module)\n", len(public))
		return nil
	})
	check(err)
	// Checkin promotes the draft to the public latest.
	err = db.Update(func(tx *ode.Tx) error {
		promoted, err := ws.Checkin(tx, alu.OID())
		if err != nil {
			return err
		}
		fmt.Printf("  checked in as public version %v\n", promoted)
		return nil
	})
	check(err)
	err = db.View(func(tx *ode.Tx) error {
		public, v, err := tx.ReadLatestRaw(alu.OID())
		if err != nil {
			return err
		}
		fmt.Printf("  public latest is now %v = %.30q\n", v, public)
		graph, err := tx.Render(alu.OID())
		if err != nil {
			return err
		}
		fmt.Printf("\nALU version graph after the whole session:\n%s", graph)
		return nil
	})
	check(err)
	check(db.CheckIntegrity())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
