// Address-book example: the paper's §2 motivating case for generic and
// specific references. "An address-book object that keeps track of
// current addresses requires references to the latest versions of person
// objects" (generic / late binding); a historical audit instead pins
// specific versions (as-of access — the accounting/legal/financial use
// the paper cites for the temporal relationship).
//
//	go run ./examples/addressbook
package main

import (
	"fmt"
	"log"
	"os"

	"ode"
)

// Person evolves as people move; every move is a new version.
type Person struct {
	Name    string
	Address string
}

// AddressBook holds generic references (OIDs): it always sees current
// addresses without any bookkeeping when people move.
type AddressBook struct {
	Name    string
	Members []ode.OID
}

func main() {
	dir, err := os.MkdirTemp("", "ode-addressbook-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	people, err := ode.Register[Person](db, "Person")
	check(err)
	books, err := ode.Register[AddressBook](db, "AddressBook")
	check(err)

	// Create three people and an address book referring to them
	// generically.
	var book ode.Ptr[AddressBook]
	var stamps []ode.Stamp // audit points
	err = db.Update(func(tx *ode.Tx) error {
		var members []ode.OID
		for _, pr := range []Person{
			{"Alice", "1 Elm St"},
			{"Bob", "9 Maple Dr"},
			{"Carol", "4 Birch Ln"},
		} {
			p, err := people.Create(tx, &pr)
			if err != nil {
				return err
			}
			members = append(members, p.OID())
		}
		var err error
		book, err = books.Create(tx, &AddressBook{Name: "friends", Members: members})
		if err != nil {
			return err
		}
		stamps = append(stamps, tx.CurrentStamp())
		return nil
	})
	check(err)

	printBook := func(header string) {
		err := db.View(func(tx *ode.Tx) error {
			b, err := book.Deref(tx)
			if err != nil {
				return err
			}
			fmt.Println(header)
			for _, m := range b.Members {
				p, err := people.Ref(tx, m)
				if err != nil {
					return err
				}
				v, err := p.Deref(tx) // generic: latest address
				if err != nil {
					return err
				}
				fmt.Printf("  %-6s %s\n", v.Name, v.Address)
			}
			return nil
		})
		check(err)
	}
	printBook("address book (initial):")

	// People move: each move is a new version of the person. The book is
	// untouched yet always current — that is the point of generic
	// references.
	moves := []struct{ name, addr string }{
		{"Alice", "2 Oak Ave"},
		{"Bob", "7 Cedar Ct"},
		{"Alice", "3 Pine Rd"},
	}
	for _, mv := range moves {
		err = db.Update(func(tx *ode.Tx) error {
			matches, err := people.Select(tx, func(p *Person) bool { return p.Name == mv.name })
			if err != nil {
				return err
			}
			nv, err := matches[0].NewVersion(tx)
			if err != nil {
				return err
			}
			if err := nv.Modify(tx, func(p *Person) { p.Address = mv.addr }); err != nil {
				return err
			}
			stamps = append(stamps, tx.CurrentStamp())
			return nil
		})
		check(err)
	}
	printBook("\naddress book (after three moves, book object untouched):")

	// Historical audit: where did everyone live at each recorded stamp?
	err = db.View(func(tx *ode.Tx) error {
		b, err := book.Deref(tx)
		if err != nil {
			return err
		}
		for i, s := range stamps {
			fmt.Printf("\nas of audit point %d (stamp %v):\n", i, s)
			for _, m := range b.Members {
				p, err := people.Ref(tx, m)
				if err != nil {
					return err
				}
				at, ok, err := p.AsOf(tx, s)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				v, err := at.Deref(tx) // specific: the historical state
				if err != nil {
					return err
				}
				fmt.Printf("  %-6s %s\n", v.Name, v.Address)
			}
		}
		return nil
	})
	check(err)

	// The temporal chain of one person, walked with Tprev.
	err = db.View(func(tx *ode.Tx) error {
		matches, err := people.Select(tx, func(p *Person) bool { return p.Name == "Alice" })
		if err != nil {
			return err
		}
		cur, err := matches[0].Pin(tx)
		if err != nil {
			return err
		}
		fmt.Println("\nAlice's address history (walking Tprevious):")
		for !cur.IsNil() {
			v, err := cur.Deref(tx)
			if err != nil {
				return err
			}
			fmt.Printf("  %v: %s\n", cur.VID(), v.Address)
			cur, err = cur.Tprev(tx)
			if err != nil {
				return err
			}
		}
		return nil
	})
	check(err)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
