// CAD design-evolution example: the paper's §5 DMS scenario. An ALU chip
// has three representations — schematic, fault, and timing — built as
// configurations over shared data objects. The design evolves through
// revisions and alternatives; static bindings keep qualified
// representations reproducible while dynamic bindings track the tip;
// a release context freezes a shippable state.
//
//	go run ./examples/cad
package main

import (
	"fmt"
	"log"
	"os"

	"ode"
)

// The three data objects of the DMS example. Each is an ordinary struct.
type (
	// SchematicData is the circuit netlist.
	SchematicData struct {
		Netlist string
		Gates   int
	}
	// Vectors are the test vectors used by fault and timing analysis.
	Vectors struct {
		Patterns []string
	}
	// TimingCommands drive the timing analyser.
	TimingCommands struct {
		Script string
	}
)

func main() {
	dir, err := os.MkdirTemp("", "ode-cad-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schematics, err := ode.Register[SchematicData](db, "SchematicData")
	check(err)
	vectors, err := ode.Register[Vectors](db, "Vectors")
	check(err)
	timings, err := ode.Register[TimingCommands](db, "TimingCommands")
	check(err)

	// --- initial design state -------------------------------------------
	var schematic ode.Ptr[SchematicData]
	var vecs ode.Ptr[Vectors]
	var tcmd ode.Ptr[TimingCommands]
	var schemA ode.VPtr[SchematicData]
	err = db.Update(func(tx *ode.Tx) error {
		var err error
		schematic, err = schematics.Create(tx, &SchematicData{Netlist: "alu-rev-A", Gates: 1200})
		if err != nil {
			return err
		}
		if schemA, err = schematic.Pin(tx); err != nil {
			return err
		}
		vecs, err = vectors.Create(tx, &Vectors{Patterns: []string{"0000", "1111"}})
		if err != nil {
			return err
		}
		tcmd, err = timings.Create(tx, &TimingCommands{Script: "analyze -corner slow"})
		if err != nil {
			return err
		}

		// Each representation is a configuration (paper §5).
		if err := tx.SaveConfig("alu/schematic", []ode.Binding{
			{Slot: "schematic", Obj: schematic.OID()}, // dynamic
		}); err != nil {
			return err
		}
		if err := tx.SaveConfig("alu/fault", []ode.Binding{
			// The fault run was qualified against schematic rev A: pin it.
			{Slot: "schematic", Obj: schematic.OID(), VID: schemA.VID()},
			{Slot: "vectors", Obj: vecs.OID()}, // vectors track the tip
		}); err != nil {
			return err
		}
		return tx.SaveConfig("alu/timing", []ode.Binding{
			{Slot: "schematic", Obj: schematic.OID()},
			{Slot: "vectors", Obj: vecs.OID()},
			{Slot: "timing", Obj: tcmd.OID()},
		})
	})
	check(err)
	fmt.Println("initial design state created; representations registered")

	// --- design evolution -------------------------------------------------
	// Two revisions of the schematic, and an alternative low-power variant
	// branched from rev A (the derived-from tree, not a linear chain).
	err = db.Update(func(tx *ode.Tx) error {
		revB, err := schematic.NewVersion(tx)
		if err != nil {
			return err
		}
		if err := revB.Modify(tx, func(s *SchematicData) {
			s.Netlist = "alu-rev-B"
			s.Gates = 1180
		}); err != nil {
			return err
		}
		revC, err := revB.NewVersion(tx)
		if err != nil {
			return err
		}
		if err := revC.Modify(tx, func(s *SchematicData) {
			s.Netlist = "alu-rev-C"
			s.Gates = 1150
		}); err != nil {
			return err
		}
		lowPower, err := schemA.NewVersion(tx) // alternative from rev A
		if err != nil {
			return err
		}
		return lowPower.Modify(tx, func(s *SchematicData) {
			s.Netlist = "alu-lowpower-A"
			s.Gates = 1300
		})
	})
	check(err)

	err = db.View(func(tx *ode.Tx) error {
		graph, err := tx.Render(schematic.OID())
		if err != nil {
			return err
		}
		fmt.Printf("\nschematic evolution:\n%s\n", graph)
		leaves, err := schematic.Leaves(tx)
		if err != nil {
			return err
		}
		fmt.Println("alternative designs (leaves of the derived-from tree):")
		for _, leaf := range leaves {
			s, err := leaf.Deref(tx)
			if err != nil {
				return err
			}
			fmt.Printf("  %v: %s (%d gates)\n", leaf.VID(), s.Netlist, s.Gates)
		}
		return nil
	})
	check(err)

	// --- representations resolve per their binding modes ------------------
	err = db.View(func(tx *ode.Tx) error {
		for _, name := range []string{"alu/schematic", "alu/fault", "alu/timing"} {
			rs, err := tx.ResolveConfig(name)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s:\n", name)
			for _, r := range rs {
				fmt.Printf("  %-10s → %v\n", r.Slot, r.VID)
			}
		}
		// The fault representation's schematic is still rev A.
		rs, err := tx.ResolveConfig("alu/fault")
		if err != nil {
			return err
		}
		for _, r := range rs {
			if r.Slot != "schematic" {
				continue
			}
			pinned, err := schematics.Ref(tx, r.Obj)
			if err != nil {
				return err
			}
			_ = pinned
			s, err := schemA.Deref(tx)
			if err != nil {
				return err
			}
			fmt.Printf("\nfault representation still qualified against: %s\n", s.Netlist)
		}
		return nil
	})
	check(err)

	// --- a release context pins defaults ---------------------------------
	err = db.Update(func(tx *ode.Tx) error {
		latestVecs, err := tx.Latest(vecs.OID())
		if err != nil {
			return err
		}
		return tx.SetContext("alu/release-1", map[ode.OID]ode.VID{
			schematic.OID(): schemA.VID(), // ship rev A
			vecs.OID():      latestVecs,
		})
	})
	check(err)
	err = db.View(func(tx *ode.Tx) error {
		v, err := tx.ResolveInContext("alu/release-1", schematic.OID())
		if err != nil {
			return err
		}
		tip, err := tx.Latest(schematic.OID())
		if err != nil {
			return err
		}
		fmt.Printf("\nrelease-1 context: schematic resolves to %v (tip is %v)\n", v, tip)
		// Objects the context does not pin fall back to the tip.
		tv, err := tx.ResolveInContext("alu/release-1", tcmd.OID())
		if err != nil {
			return err
		}
		fmt.Printf("release-1 context: timing commands resolve to tip %v (unpinned)\n", tv)
		return nil
	})
	check(err)

	check(db.CheckIntegrity())
	fmt.Println("\nintegrity check passed")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
