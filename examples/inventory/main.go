// Inventory example: secondary indexes over latest versions — the
// library's rendering of O++'s indexed extent queries. An index is
// maintained by triggers inside each transaction, so it always reflects
// the generic-reference view of the data: the key of an object is the
// key of its *latest* version, and newversion moves objects between
// index buckets automatically.
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"os"

	"ode"
)

// Item is a stocked part.
type Item struct {
	SKU      string
	Location string
	Qty      int
}

func main() {
	dir, err := os.MkdirTemp("", "ode-inventory-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := ode.Open(dir, &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	items, err := ode.Register[Item](db, "Item")
	check(err)

	// Two indexes: by warehouse location (equality lookups) and by
	// quantity (range scans, order-preserving integer keys).
	byLocation, err := items.EnsureIndex("location", func(i *Item) ([]byte, bool) {
		return ode.KeyString(i.Location), true
	})
	check(err)
	byQty, err := items.EnsureIndex("qty", func(i *Item) ([]byte, bool) {
		return ode.KeyInt(int64(i.Qty)), true
	})
	check(err)

	// Stock the warehouse.
	var widget ode.Ptr[Item]
	err = db.Update(func(tx *ode.Tx) error {
		stock := []Item{
			{"WID-1", "aisle-3", 120},
			{"WID-2", "aisle-3", 4},
			{"GAD-1", "aisle-7", 77},
			{"GAD-2", "aisle-7", 0},
			{"SPK-9", "dock", 950},
		}
		for i, it := range stock {
			p, err := items.Create(tx, &it)
			if err != nil {
				return err
			}
			if i == 0 {
				widget = p
			}
		}
		return nil
	})
	check(err)

	dump := func(header string) {
		err := db.View(func(tx *ode.Tx) error {
			fmt.Println(header)
			hits, err := byLocation.Lookup(tx, ode.KeyString("aisle-3"))
			if err != nil {
				return err
			}
			fmt.Print("  in aisle-3: ")
			for _, h := range hits {
				v, err := h.Deref(tx)
				if err != nil {
					return err
				}
				fmt.Printf("%s(qty=%d) ", v.SKU, v.Qty)
			}
			fmt.Println()
			fmt.Println("  low stock (qty < 10):")
			return byQty.Range(tx, ode.KeyInt(0), ode.KeyInt(10),
				func(_ []byte, p ode.Ptr[Item]) (bool, error) {
					v, err := p.Deref(tx)
					if err != nil {
						return false, err
					}
					fmt.Printf("    %s: %d left in %s\n", v.SKU, v.Qty, v.Location)
					return true, nil
				})
		})
		check(err)
	}
	dump("initial stock:")

	// A stock move is a new version (the paper's versioning, not an
	// in-place overwrite — the history stays auditable). The indexes
	// follow the latest version automatically.
	err = db.Update(func(tx *ode.Tx) error {
		nv, err := widget.NewVersion(tx)
		if err != nil {
			return err
		}
		return nv.Modify(tx, func(i *Item) {
			i.Location = "dock"
			i.Qty = 3
		})
	})
	check(err)
	check(byLocation.Err())
	check(byQty.Err())
	dump("\nafter WID-1 moved to the dock (as a new version):")

	// The old state is still pinned in history.
	err = db.View(func(tx *ode.Tx) error {
		versions, err := widget.Versions(tx)
		if err != nil {
			return err
		}
		old, err := versions[0].Deref(tx)
		if err != nil {
			return err
		}
		fmt.Printf("\nWID-1 history: originally %d units in %s (version %v)\n",
			old.Qty, old.Location, versions[0].VID())
		return nil
	})
	check(err)
	check(db.CheckIntegrity())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
