module ode

go 1.22
