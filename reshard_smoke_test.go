package ode

import (
	"fmt"
	"testing"
)

func TestReshardSmoke(t *testing.T) {
	db, _ := openShardedDB(t, 4, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []Ptr[Part]
	for i := 0; i < 50; i++ {
		if err := db.Update(func(tx *Tx) error {
			p, err := parts.Create(tx, &Part{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return err
			}
			ptrs = append(ptrs, p)
			if i%3 == 0 {
				_, err = p.NewVersion(tx)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Reshard(8); err != nil {
		t.Fatalf("split: %v", err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after split: %v", err)
	}
	pr := db.ReshardProgress()
	t.Logf("split: chunks=%d objects=%d versions=%d", pr.Chunks, pr.Objects, pr.Versions)
	for i, p := range ptrs {
		if err := db.View(func(tx *Tx) error {
			v, err := p.Deref(tx)
			if err != nil {
				return err
			}
			if v.Name != fmt.Sprintf("p%d", i) {
				return fmt.Errorf("p%d read %q", i, v.Name)
			}
			return nil
		}); err != nil {
			t.Fatalf("after split: %v", err)
		}
	}
	if err := db.Reshard(4); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after merge: %v", err)
	}
	// Split again: revives merged-away shards.
	if err := db.Reshard(8); err != nil {
		t.Fatalf("re-split: %v", err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after re-split: %v", err)
	}
	for i, p := range ptrs {
		if err := db.View(func(tx *Tx) error {
			v, err := p.Deref(tx)
			if err != nil {
				return err
			}
			if v.Name != fmt.Sprintf("p%d", i) {
				return fmt.Errorf("p%d read %q", i, v.Name)
			}
			return nil
		}); err != nil {
			t.Fatalf("after re-split: %v", err)
		}
	}
	// Reopen: recovery must agree.
	dir := db.Dir()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
	if got := db2.Shards(); got != 8 {
		t.Fatalf("reopened with %d logical shards, want 8", got)
	}
}
