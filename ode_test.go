package ode

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
)

// Part is the test domain type (mirrors the quickstart).
type Part struct {
	Name string
	Rev  int
	Data []byte
}

// envShards returns the shard count forced by ODE_SHARDS, or 0 (layout
// default) when unset. The matrix and soak Makefile targets run their
// suites at both Shards=1 and Shards=4 through this hook.
func envShards() int {
	n, _ := strconv.Atoi(os.Getenv("ODE_SHARDS"))
	return n
}

func openDB(t testing.TB, opts *Options) *DB {
	t.Helper()
	if opts == nil {
		opts = &Options{}
	}
	if opts.Shards == 0 {
		opts.Shards = envShards()
	}
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t, nil)
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	var p Ptr[Part]
	var v0, v1 VPtr[Part]
	err = db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "ALU", Rev: 0})
		if err != nil {
			return err
		}
		v0, err = p.Pin(tx)
		if err != nil {
			return err
		}
		v1, err = p.NewVersion(tx)
		if err != nil {
			return err
		}
		return v1.Set(tx, &Part{Name: "ALU", Rev: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(func(tx *Tx) error {
		cur, err := p.Deref(tx) // generic: binds to latest
		if err != nil {
			return err
		}
		if cur.Rev != 1 {
			t.Fatalf("latest Rev = %d", cur.Rev)
		}
		old, err := v0.Deref(tx) // specific: pinned
		if err != nil {
			return err
		}
		if old.Rev != 0 {
			t.Fatalf("pinned Rev = %d", old.Rev)
		}
		d, err := v1.Dprev(tx)
		if err != nil || d.VID() != v0.VID() {
			t.Fatalf("Dprev = %v, %v", d, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestViewRejectsMutation(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "x"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := db.View(func(tx *Tx) error {
		if _, err := parts.Create(tx, &Part{}); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("Create in View: %v", err)
		}
		if err := p.Set(tx, &Part{}); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("Set in View: %v", err)
		}
		if _, err := p.NewVersion(tx); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("NewVersion in View: %v", err)
		}
		if err := p.Delete(tx); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("Delete in View: %v", err)
		}
		if err := tx.SaveConfig("c", nil); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("SaveConfig in View: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeSafetyOfRef(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	type Other struct{ X int }
	others, _ := Register[Other](db, "Other")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "a"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := db.View(func(tx *Tx) error {
		if _, err := others.Ref(tx, p.OID()); err == nil {
			t.Fatal("cross-type Ref accepted")
		}
		q, err := parts.Ref(tx, p.OID())
		if err != nil {
			return err
		}
		v, err := q.Deref(tx)
		if err != nil || v.Name != "a" {
			t.Fatalf("Ref deref: %+v %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtentAndSelect(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	if err := db.Update(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			if _, err := parts.Create(tx, &Part{Name: fmt.Sprintf("p%d", i), Rev: i}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		n, err := parts.Count(tx)
		if err != nil || n != 10 {
			t.Fatalf("count = %d, %v", n, err)
		}
		hits, err := parts.Select(tx, func(p *Part) bool { return p.Rev >= 7 })
		if err != nil || len(hits) != 3 {
			t.Fatalf("select: %d, %v", len(hits), err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAddressBookGenericReferences reproduces the paper's §2 motivating
// example: "an address-book object that keeps track of current addresses
// requires references to the latest versions of person objects".
func TestAddressBookGenericReferences(t *testing.T) {
	type Person struct {
		Name    string
		Address string
	}
	db := openDB(t, &Options{Policy: DeltaChain})
	people, _ := Register[Person](db, "Person")

	var alice Ptr[Person]
	var aliceAt []VPtr[Person] // historical pins
	if err := db.Update(func(tx *Tx) error {
		var err error
		alice, err = people.Create(tx, &Person{Name: "Alice", Address: "1 Elm St"})
		if err != nil {
			return err
		}
		pin, err := alice.Pin(tx)
		if err != nil {
			return err
		}
		aliceAt = append(aliceAt, pin)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Alice moves twice; each move is a new version.
	for _, addr := range []string{"2 Oak Ave", "3 Pine Rd"} {
		if err := db.Update(func(tx *Tx) error {
			nv, err := alice.NewVersion(tx)
			if err != nil {
				return err
			}
			if err := nv.Modify(tx, func(p *Person) { p.Address = addr }); err != nil {
				return err
			}
			aliceAt = append(aliceAt, nv)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.View(func(tx *Tx) error {
		// The address book holds the generic reference: always current.
		cur, err := alice.Deref(tx)
		if err != nil || cur.Address != "3 Pine Rd" {
			t.Fatalf("current address: %+v %v", cur, err)
		}
		// Historical pins still resolve (the historical-database use).
		for i, want := range []string{"1 Elm St", "2 Oak Ave", "3 Pine Rd"} {
			got, err := aliceAt[i].Deref(tx)
			if err != nil || got.Address != want {
				t.Fatalf("history %d: %+v %v", i, got, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTriggersFireInsideUpdate(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var events []EventKind
	db.OnType(parts.ID(), OnAny, false, func(e Event) {
		events = append(events, e.Kind)
	})
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{Name: "t"})
		if err != nil {
			return err
		}
		nv, err := p.NewVersion(tx)
		if err != nil {
			return err
		}
		if err := nv.Set(tx, &Part{Name: "t2"}); err != nil {
			return err
		}
		return nv.Delete(tx)
	}); err != nil {
		t.Fatal(err)
	}
	want := []EventKind{EvCreate, EvNewVersion, EvUpdate, EvDeleteVersion}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v want %v", events, want)
		}
	}
}

func TestOnceTrigger(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	n := 0
	db.OnType(parts.ID(), On(EvNewVersion), true, func(Event) { n++ })
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{})
		if err != nil {
			return err
		}
		if _, err := p.NewVersion(tx); err != nil {
			return err
		}
		_, err = p.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("once trigger fired %d times", n)
	}
}

func TestConcurrentViews(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "shared", Data: make([]byte, 1000)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				err := db.View(func(tx *Tx) error {
					v, err := p.Deref(tx)
					if err != nil {
						return err
					}
					if v.Name != "shared" {
						return fmt.Errorf("torn read: %+v", v)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReadersAndWriterInterleave(t *testing.T) {
	db := openDB(t, &Options{NoSync: true})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Rev: 0})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.View(func(tx *Tx) error {
					v, err := p.Deref(tx)
					if err != nil {
						return err
					}
					if v.Rev < 0 {
						return fmt.Errorf("bad rev %d", v.Rev)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 1; i <= 50; i++ {
		i := i
		if err := db.Update(func(tx *Tx) error {
			return p.Modify(tx, func(v *Part) { v.Rev = i })
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		v, err := p.Deref(tx)
		if err != nil || v.Rev != 50 {
			t.Fatalf("final rev: %+v %v", v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenPreservesTypedData(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Register[Part](db, "Part")
	if err != nil {
		t.Fatal(err)
	}
	var o OID
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{Name: "durable", Rev: 7})
		if err != nil {
			return err
		}
		o = p.OID()
		_, err = p.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, &Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	parts2, err := Register[Part](db2, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.View(func(tx *Tx) error {
		p, err := parts2.Ref(tx, o)
		if err != nil {
			return err
		}
		v, err := p.Deref(tx)
		if err != nil || v.Name != "durable" || v.Rev != 7 {
			t.Fatalf("reopen: %+v %v", v, err)
		}
		n, _ := p.VersionCount(tx)
		if n != 2 {
			t.Fatalf("version count = %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{})
		if err != nil {
			return err
		}
		_, err = p.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Objects != 1 || st.Versions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Commits == 0 {
		t.Fatalf("no commits recorded: %+v", st)
	}
}

func TestUpdateRollbackOnError(t *testing.T) {
	db := openDB(t, nil)
	parts, _ := Register[Part](db, "Part")
	boom := errors.New("boom")
	err := db.Update(func(tx *Tx) error {
		if _, err := parts.Create(tx, &Part{Name: "ghost"}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if st := db.Stats(); st.Objects != 0 {
		t.Fatalf("aborted object counted: %+v", st)
	}
	if err := db.View(func(tx *Tx) error {
		n, err := parts.Count(tx)
		if err != nil || n != 0 {
			t.Fatalf("ghost visible: %d %v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReadOnlyMissing(t *testing.T) {
	if _, err := Open(t.TempDir(), &Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of missing database succeeded")
	}
}

func TestBackupAndRestore(t *testing.T) {
	db := openDB(t, &Options{Policy: DeltaChain})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Name: "original", Rev: 1})
		if err != nil {
			return err
		}
		nv, err := p.NewVersion(tx)
		if err != nil {
			return err
		}
		return nv.Modify(tx, func(x *Part) { x.Rev = 2 })
	}); err != nil {
		t.Fatal(err)
	}
	backupDir := t.TempDir()
	if err := db.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	// Changes after the backup must not appear in the snapshot.
	if err := db.Update(func(tx *Tx) error {
		return p.Modify(tx, func(x *Part) { x.Name = "post-backup" })
	}); err != nil {
		t.Fatal(err)
	}
	// Open the backup as an independent database.
	restored, err := Open(backupDir, &Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	rparts, err := Register[Part](restored, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.View(func(tx *Tx) error {
		q, err := rparts.Ref(tx, p.OID())
		if err != nil {
			return err
		}
		v, err := q.Deref(tx)
		if err != nil {
			return err
		}
		if v.Name != "original" || v.Rev != 2 {
			t.Fatalf("backup content: %+v", v)
		}
		n, _ := q.VersionCount(tx)
		if n != 2 {
			t.Fatalf("backup versions: %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := restored.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Backing up onto an existing database is refused.
	if err := db.Backup(backupDir); err == nil {
		t.Fatal("backup over existing database accepted")
	}
	if db.Dir() == restored.Dir() {
		t.Fatal("Dir() not distinguishing databases")
	}
}

func TestReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts, _ := Register[Part](db, "Part")
	var o OID
	if err := db.Update(func(tx *Tx) error {
		p, err := parts.Create(tx, &Part{Name: "ro"})
		o = p.OID()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, &Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	rparts, err := Register[Part](ro, "Part")
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.View(func(tx *Tx) error {
		p, err := rparts.Ref(tx, o)
		if err != nil {
			return err
		}
		v, err := p.Deref(tx)
		if err != nil || v.Name != "ro" {
			t.Fatalf("read-only read: %+v %v", v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Writes and checkpoints are rejected with ErrReadOnly.
	err = ro.Update(func(tx *Tx) error { return nil })
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Update on read-only: %v", err)
	}
	if err := ro.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Checkpoint on read-only: %v", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}
	// The database is untouched and still writable afterwards.
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyRefusesPendingRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	parts, _ := Register[Part](db, "Part")
	if err := db.Update(func(tx *Tx) error {
		_, err := parts.Create(tx, &Part{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close): the WAL holds committed work.
	if _, err := Open(dir, &Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open with pending recovery succeeded")
	}
	// A writable open recovers; then read-only works.
	db2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(dir, &Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	ro.Close()
}

func TestConcurrentUpdatersSerialize(t *testing.T) {
	db := openDB(t, &Options{NoSync: true})
	parts, _ := Register[Part](db, "Part")
	var p Ptr[Part]
	if err := db.Update(func(tx *Tx) error {
		var err error
		p, err = parts.Create(tx, &Part{Rev: 0})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// 8 goroutines × 25 read-modify-write increments each: with the
	// single-writer lock, no increment can be lost.
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := db.Update(func(tx *Tx) error {
					return p.Modify(tx, func(v *Part) { v.Rev++ })
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.View(func(tx *Tx) error {
		v, err := p.Deref(tx)
		if err != nil {
			return err
		}
		if v.Rev != workers*iters {
			t.Fatalf("lost updates: Rev = %d, want %d", v.Rev, workers*iters)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}
