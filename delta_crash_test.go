package ode_test

// Crash matrix over the delta tier's compactor: a 2-shard store builds
// edit chains (inline demotion on NewVersion), then explicit Compact
// sweeps demote the rest — and the power dies after every mutating I/O
// operation, or every fsync fails, across the whole run. The reopened
// image must pass a full integrity check, materialise every acked
// version bit-for-bit (no version lost, no half-demoted payload
// visible), finish the interrupted compaction (idempotent recovery),
// and keep accepting writes.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ode"
	"ode/internal/faultfs"
)

type deltaAcked struct {
	content map[ode.VID][]byte // every acked version's bytes
	owner   map[ode.VID]ode.OID
}

func deltaCrashOpts(fsys faultfs.FS) *ode.Options {
	return &ode.Options{
		PageSize: 512, CheckpointBytes: -1, FS: fsys, Shards: 2,
		DeltaTier: true, AnchorInterval: 4, CompactInterval: -1,
	}
}

// crashEdit derives a deterministic small edit of prev.
func crashEdit(rng *rand.Rand, prev []byte) []byte {
	out := make([]byte, len(prev))
	copy(out, prev)
	off := rng.Intn(len(out))
	n := 12
	if off+n > len(out) {
		n = len(out) - off
	}
	rng.Read(out[off : off+n])
	return out
}

// runDeltaWorkload builds demote-heavy state with explicit compaction
// sweeps between write phases. Never closes the DB (the crash does).
func runDeltaWorkload(fsys faultfs.FS) (deltaAcked, error) {
	acked := deltaAcked{content: map[ode.VID][]byte{}, owner: map[ode.VID]ode.OID{}}
	db, err := ode.Open("/vdb", deltaCrashOpts(fsys))
	if err != nil {
		return acked, err
	}
	tid, err := db.Engine().RegisterType("CrashBlob")
	if err != nil {
		return acked, err
	}
	rng := rand.New(rand.NewSource(4242))
	const nObjs, nVers = 4, 6
	objs := make([]ode.OID, 0, nObjs)
	latest := map[ode.OID][]byte{}
	for i := 0; i < nObjs; i++ {
		content := make([]byte, 600)
		rng.Read(content)
		var o ode.OID
		var v ode.VID
		if err := db.Update(func(tx *ode.Tx) error {
			var err error
			o, v, err = tx.CreateRaw(tid, content)
			return err
		}); err != nil {
			return acked, err
		}
		// Record acked state only after the commit fsync succeeded.
		acked.content[v] = append([]byte(nil), content...)
		acked.owner[v] = o
		objs = append(objs, o)
		latest[o] = content
	}
	grow := func(rounds int) error {
		for r := 0; r < rounds; r++ {
			for _, o := range objs {
				content := crashEdit(rng, latest[o])
				var v ode.VID
				if err := db.Update(func(tx *ode.Tx) error {
					var err error
					v, err = tx.NewVersion(o)
					if err != nil {
						return err
					}
					return tx.UpdateVersionRaw(o, v, content)
				}); err != nil {
					return err
				}
				acked.content[v] = append([]byte(nil), content...)
				acked.owner[v] = o
				latest[o] = content
			}
		}
		return nil
	}
	// Phase 1: chains grow (inline demotions commit with each
	// NewVersion). Phase 2: an explicit compaction sweep — THE demotion
	// commits this matrix is about. Phase 3: more edits on demoted
	// chains, then a second sweep.
	if err := grow(nVers); err != nil {
		return acked, err
	}
	if _, err := db.Compact(); err != nil {
		return acked, err
	}
	if err := grow(2); err != nil {
		return acked, err
	}
	if _, err := db.Compact(); err != nil {
		return acked, err
	}
	if err := checkDeltaAcked(db, acked); err != nil {
		return acked, fmt.Errorf("post-compact verify: %w", err)
	}
	return acked, nil
}

// checkDeltaAcked materialises every acked version and compares bytes.
func checkDeltaAcked(db *ode.DB, acked deltaAcked) error {
	return db.View(func(tx *ode.Tx) error {
		for v, want := range acked.content {
			got, err := tx.ReadVersionRaw(acked.owner[v], v)
			if err != nil {
				return fmt.Errorf("read %v: %w", v, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("version %v: content differs after crash (got %d bytes, want %d)", v, len(got), len(want))
			}
		}
		return nil
	})
}

// verifyDeltaImage reopens the crashed image: integrity, acked
// contents, compaction resumability, writability.
func verifyDeltaImage(crashed faultfs.FS, acked deltaAcked) error {
	db, err := ode.Open("/vdb", deltaCrashOpts(crashed))
	if err != nil {
		if len(acked.content) == 0 {
			return nil
		}
		return fmt.Errorf("reopen with %d acked versions: %w", len(acked.content), err)
	}
	defer db.Close()
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	if err := checkDeltaAcked(db, acked); err != nil {
		return err
	}
	// An interrupted sweep must simply be runnable again, twice over
	// (idempotence at the fixpoint).
	if _, err := db.Compact(); err != nil {
		return fmt.Errorf("compact after recovery: %w", err)
	}
	st, err := db.Compact()
	if err != nil {
		return fmt.Errorf("second compact after recovery: %w", err)
	}
	if st.Demoted != 0 || st.Promoted != 0 {
		return fmt.Errorf("recovery compaction not idempotent: %+v", st)
	}
	if err := db.CheckIntegrity(); err != nil {
		return fmt.Errorf("integrity after compact: %w", err)
	}
	if err := checkDeltaAcked(db, acked); err != nil {
		return fmt.Errorf("after compact: %w", err)
	}
	// Still writable.
	var tid ode.TypeID
	if tid, err = db.Engine().RegisterType("CrashBlob"); err != nil {
		return fmt.Errorf("re-register: %w", err)
	}
	return db.Update(func(tx *ode.Tx) error {
		_, _, err := tx.CreateRaw(tid, []byte("post-crash"))
		return err
	})
}

// TestDeltaCrashMatrixPowerCut cuts power after every mutating I/O
// operation across the build + compact + edit + compact run.
func TestDeltaCrashMatrixPowerCut(t *testing.T) {
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runDeltaWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	ops := dry.Counts().Ops
	if ops < 60 {
		t.Fatalf("op space suspiciously small: %d", ops)
	}
	step := uint64(1)
	if testing.Short() {
		step = 5
	}
	for n := uint64(1); n <= ops; n += step {
		mem := faultfs.NewMem()
		acked, _ := runDeltaWorkload(faultfs.NewInjector(mem, faultfs.Plan{PowerCutAfterOps: n}))
		if err := verifyDeltaImage(mem.Crash(false), acked); err != nil {
			t.Errorf("powerCutAfter=%d: %v", n, err)
		}
	}
	t.Logf("delta crash matrix: %d power-cut points (step %d)", ops, step)
}

// TestDeltaCrashMatrixFailedSyncs fails every fsync point instead: the
// failing commit (possibly a compactor demotion batch) must surface the
// error and leave a recoverable store.
func TestDeltaCrashMatrixFailedSyncs(t *testing.T) {
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	if _, err := runDeltaWorkload(dry); err != nil {
		t.Fatalf("dry run: %v", err)
	}
	syncs := dry.Counts().Syncs
	if syncs < 10 {
		t.Fatalf("sync space suspiciously small: %d", syncs)
	}
	step := uint64(1)
	if testing.Short() {
		step = 7
	}
	for n := uint64(1); n <= syncs; n += step {
		for _, keep := range []bool{false, true} {
			mem := faultfs.NewMem()
			acked, _ := runDeltaWorkload(faultfs.NewInjector(mem, faultfs.Plan{FailSyncN: n}))
			if err := verifyDeltaImage(mem.Crash(keep), acked); err != nil {
				t.Errorf("failSync=%d keep=%v: %v", n, keep, err)
			}
		}
	}
	t.Logf("delta crash matrix: %d failed-sync points x2 (step %d)", syncs, step)
}

// TestDeltaCompactReadFaults points a transient EIO at every stretch of
// the compaction sweep's read path: the sweep must fail cleanly (no
// partial demotion visible, every acked version still materialises) and
// an immediate retry must finish the job. The build phase runs without
// the delta tier so the whole demotion workload is left for the faulted
// sweep.
func TestDeltaCompactReadFaults(t *testing.T) {
	buildOpts := func(fsys faultfs.FS) *ode.Options {
		// A tiny pool forces the sweep to hit the disk rather than
		// serve every page from cache.
		return &ode.Options{
			PageSize: 512, PoolPages: 8, CheckpointBytes: -1, FS: fsys, Shards: 2,
		}
	}
	sweepOpts := func(fsys faultfs.FS) *ode.Options {
		o := buildOpts(fsys)
		o.DeltaTier = true
		o.AnchorInterval = 4
		o.CompactInterval = -1
		return o
	}
	build := func(fsys faultfs.FS) (deltaAcked, error) {
		acked := deltaAcked{content: map[ode.VID][]byte{}, owner: map[ode.VID]ode.OID{}}
		db, err := ode.Open("/vdb", buildOpts(fsys))
		if err != nil {
			return acked, err
		}
		defer db.Close()
		tid, err := db.Engine().RegisterType("CrashBlob")
		if err != nil {
			return acked, err
		}
		rng := rand.New(rand.NewSource(515))
		for i := 0; i < 2; i++ {
			content := make([]byte, 600)
			rng.Read(content)
			var o ode.OID
			if err := db.Update(func(tx *ode.Tx) error {
				var v ode.VID
				var err error
				o, v, err = tx.CreateRaw(tid, content)
				if err != nil {
					return err
				}
				acked.content[v] = append([]byte(nil), content...)
				acked.owner[v] = o
				return nil
			}); err != nil {
				return acked, err
			}
			for j := 0; j < 8; j++ {
				content = crashEdit(rng, content)
				if err := db.Update(func(tx *ode.Tx) error {
					v, err := tx.NewVersion(o)
					if err != nil {
						return err
					}
					acked.content[v] = append([]byte(nil), content...)
					acked.owner[v] = o
					return tx.UpdateVersionRaw(o, v, content)
				}); err != nil {
					return acked, err
				}
			}
		}
		return acked, nil
	}

	// Dry run: how many reads does the image consume up to the sweep,
	// and how many does the sweep itself add?
	dry := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{})
	acked, err := build(dry)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ode.Open("/vdb", sweepOpts(dry))
	if err != nil {
		t.Fatal(err)
	}
	r0 := dry.Counts().Reads
	st, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Demoted == 0 {
		t.Fatalf("dry sweep demoted nothing: %+v", st)
	}
	r1 := dry.Counts().Reads
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if r1 == r0 {
		t.Fatalf("sweep performed no reads (pool too large?): %d", r0)
	}

	// Fault every ~Nth read of the sweep window.
	stride := (r1 - r0) / 12
	if stride == 0 {
		stride = 1
	}
	points := 0
	for n := r0 + 1; n <= r1; n += stride {
		points++
		inj := faultfs.NewInjector(faultfs.NewMem(), faultfs.Plan{FailReadN: n})
		if _, err := build(inj); err != nil {
			t.Fatalf("failRead=%d: build phase touched the fault: %v", n, err)
		}
		db, err := ode.Open("/vdb", sweepOpts(inj))
		if err != nil {
			t.Fatalf("failRead=%d: reopen touched the fault: %v", n, err)
		}
		if _, err := db.Compact(); err == nil {
			t.Fatalf("failRead=%d: sweep succeeded through an injected read fault", n)
		}
		// The fault was transient: everything still materialises and a
		// retried sweep reaches the fixpoint.
		if err := checkDeltaAcked(db, acked); err != nil {
			t.Fatalf("failRead=%d: %v", n, err)
		}
		st, err := db.Compact()
		if err != nil {
			t.Fatalf("failRead=%d: retried sweep: %v", n, err)
		}
		if st.Demoted == 0 {
			t.Fatalf("failRead=%d: retried sweep demoted nothing", n)
		}
		if err := checkDeltaAcked(db, acked); err != nil {
			t.Fatalf("failRead=%d: after retried sweep: %v", n, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("failRead=%d: close: %v", n, err)
		}
	}
	t.Logf("read-fault matrix: %d injection points across a %d-read sweep window", points, r1-r0)
}
