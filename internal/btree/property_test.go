package btree

// Property-based test: the tree is driven by long random interleavings
// of insert / replace / delete / lookup across many seeds, and after
// EVERY mutation the full invariant set is re-asserted against a map
// model — Check() (key ordering, balance, leaf chain), Len, exact
// Ascend contents in sorted order, SeekLE and Max agreement. Small
// pages force deep trees so splits, merges and leaf-chain unlinking
// all fire constantly.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// propKey biases keys into a small space so deletes and replaces hit
// existing keys often enough to exercise structural shrinking.
func propKey(rng *rand.Rand) []byte {
	return []byte(fmt.Sprintf("key-%04d", rng.Intn(400)))
}

func propVal(rng *rand.Rand) []byte {
	v := make([]byte, 1+rng.Intn(24))
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// assertMatchesModel checks every queryable invariant of tr against the
// reference model.
func assertMatchesModel(t *testing.T, tr *Tree, model map[string]string, step int) {
	t.Helper()
	fail := func(format string, args ...interface{}) {
		t.Fatalf("step %d: %s", step, fmt.Sprintf(format, args...))
	}
	if err := tr.Check(); err != nil {
		fail("structural invariant broken: %v", err)
	}
	n, err := tr.Len()
	if err != nil {
		fail("Len: %v", err)
	}
	if n != len(model) {
		fail("Len %d, model has %d", n, len(model))
	}

	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Full iteration must yield exactly the model, in order.
	i := 0
	if err := tr.Ascend(nil, nil, func(k, v []byte) (bool, error) {
		if i >= len(keys) {
			fail("Ascend yielded extra key %q", k)
		}
		if string(k) != keys[i] || string(v) != model[keys[i]] {
			fail("Ascend[%d] = %q=%q, want %q=%q", i, k, v, keys[i], model[keys[i]])
		}
		i++
		return true, nil
	}); err != nil {
		fail("Ascend: %v", err)
	}
	if i != len(keys) {
		fail("Ascend stopped at %d of %d", i, len(keys))
	}

	// Max agrees with the model's last key.
	k, v, ok, err := tr.Max()
	if err != nil {
		fail("Max: %v", err)
	}
	if len(keys) == 0 {
		if ok {
			fail("Max found %q in empty tree", k)
		}
	} else {
		last := keys[len(keys)-1]
		if !ok || string(k) != last || string(v) != model[last] {
			fail("Max = %q=%q ok=%v, want %q=%q", k, v, ok, last, model[last])
		}
	}
}

// assertPointQueries spot-checks Get and SeekLE against the model (run
// on a sample of steps; it is O(keyspace) rather than O(tree)).
func assertPointQueries(t *testing.T, tr *Tree, model map[string]string, rng *rand.Rand, step int) {
	t.Helper()
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for probe := 0; probe < 8; probe++ {
		k := propKey(rng)
		want, inModel := model[string(k)]
		got, ok, err := tr.Get(k)
		if err != nil {
			t.Fatalf("step %d: Get(%q): %v", step, k, err)
		}
		if ok != inModel || (ok && string(got) != want) {
			t.Fatalf("step %d: Get(%q) = %q,%v; model %q,%v", step, k, got, ok, want, inModel)
		}
		// SeekLE must return the greatest model key <= k.
		var wantLE string
		haveLE := false
		for _, mk := range keys {
			if mk <= string(k) {
				wantLE, haveLE = mk, true
			}
		}
		lk, lv, lok, err := tr.SeekLE(k)
		if err != nil {
			t.Fatalf("step %d: SeekLE(%q): %v", step, k, err)
		}
		if lok != haveLE || (lok && (string(lk) != wantLE || string(lv) != model[wantLE])) {
			t.Fatalf("step %d: SeekLE(%q) = %q=%q,%v; want %q,%v",
				step, k, lk, lv, lok, wantLE, haveLE)
		}
	}
}

func TestPropertyRandomOps(t *testing.T) {
	seeds := 12
	steps := 300
	if testing.Short() {
		seeds, steps = 4, 120
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
			// Alternate page sizes across seeds: 512 forces deep trees and
			// constant splits; 4096 exercises wide nodes.
			pageSize := 512
			if seed%3 == 2 {
				pageSize = 4096
			}
			tr, _ := testTree(t, pageSize)
			model := map[string]string{}
			for step := 0; step < steps; step++ {
				op := rng.Intn(10)
				switch {
				case op < 5: // insert or replace
					k, v := propKey(rng), propVal(rng)
					if err := tr.Put(k, v); err != nil {
						t.Fatalf("step %d: Put(%q): %v", step, k, err)
					}
					model[string(k)] = string(v)
				case op < 8: // delete (often missing)
					k := propKey(rng)
					_, inModel := model[string(k)]
					found, err := tr.Delete(k)
					if err != nil {
						t.Fatalf("step %d: Delete(%q): %v", step, k, err)
					}
					if found != inModel {
						t.Fatalf("step %d: Delete(%q) = %v, model %v", step, k, found, inModel)
					}
					delete(model, string(k))
				default: // pure lookups this step
					assertPointQueries(t, tr, model, rng, step)
				}
				assertMatchesModel(t, tr, model, step)
			}
			// Drain the tree completely: the empty-tree path and the last
			// leaf-chain unlinks must hold up too.
			for k := range model {
				found, err := tr.Delete([]byte(k))
				if err != nil || !found {
					t.Fatalf("drain Delete(%q): %v %v", k, found, err)
				}
				delete(model, k)
			}
			assertMatchesModel(t, tr, model, steps)
		})
	}
}

// TestPropertyOrderedVsReverse loads the same key set in ascending,
// descending and shuffled order; all three must converge to identical
// iteration contents (regression net for order-dependent split bugs).
func TestPropertyOrderedVsReverse(t *testing.T) {
	const n = 500
	contents := func(load func(i int) int) []string {
		tr, _ := testTree(t, 512)
		for i := 0; i < n; i++ {
			j := load(i)
			k := []byte(fmt.Sprintf("key-%05d", j))
			if err := tr.Put(k, []byte(fmt.Sprintf("val-%d", j))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
		var out []string
		if err := tr.Ascend(nil, nil, func(k, v []byte) (bool, error) {
			out = append(out, string(k)+"="+string(v))
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	asc := contents(func(i int) int { return i })
	desc := contents(func(i int) int { return n - 1 - i })
	perm := rand.New(rand.NewSource(99)).Perm(n)
	shuf := contents(func(i int) int { return perm[i] })

	if !equalStrings(asc, desc) || !equalStrings(asc, shuf) {
		t.Fatal("insertion order changed the tree's contents")
	}
	if len(asc) != n {
		t.Fatalf("lost keys: %d of %d", len(asc), n)
	}
	if !sort.StringsAreSorted(asc) {
		t.Fatal("iteration out of order")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
