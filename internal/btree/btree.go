// Package btree implements a disk-backed B+tree over the storage layer's
// pages. It is the index substrate for the engine: the object table
// (oid → header), the version index ((oid, vid) → record), the temporal
// index ((oid, stamp) → vid), the type catalog, and per-type extents are
// all B+trees.
//
// Keys and values are byte strings ordered by bytes.Compare. Keys and
// values are size-limited (a fraction of the page size) so that every
// node holds several entries; callers index large payloads indirectly by
// storing RIDs as values.
//
// Nodes are fully re-encoded on modification — simple, crash-safe under
// the page-image WAL, and fast enough at database page sizes. Deletion
// is lazy: empty nodes are pruned and the root collapsed, but partially
// empty nodes are not rebalanced (space is reclaimed when a node
// empties; ordering invariants are unaffected).
package btree

import (
	"bytes"
	"errors"
	"fmt"

	"ode/internal/codec"
	"ode/internal/oid"
	"ode/internal/storage"
)

// ErrKeyTooLarge reports a key beyond the per-node size budget.
var ErrKeyTooLarge = errors.New("btree: key too large")

// ErrValTooLarge reports a value beyond the per-node size budget.
var ErrValTooLarge = errors.New("btree: value too large")

// Tree is a handle on one B+tree. The root page may change across
// mutations; persist Root() after every mutating call (the engine stores
// it in a superblock root slot).
//
// A handle memoises a few decoded nodes for its own lifetime (one
// transaction — the engine opens fresh handles per transaction), which
// collapses the repeated root/branch decodes of consecutive operations
// into one. Coherence holds because every mutation flows through the
// same handle: readNode hands out the one cached *node per page,
// mutating operations update that object in place and writeNode
// re-encodes it, so the cache can never diverge from the page. The one
// pattern this forbids is mutating the tree from inside an Ascend
// callback on the same handle; all engine code collects first and
// mutates after iteration.
type Tree struct {
	st   *storage.TxView
	root oid.PageID

	cache [treeCacheSlots]nodeCacheEntry
	hand  uint8
}

// treeCacheSlots bounds the per-handle decoded-node cache: enough for
// the root and the hot spine of a descent, small enough that a bulk
// scan just round-robins through it.
const treeCacheSlots = 8

type nodeCacheEntry struct {
	id oid.PageID
	n  *node
}

func (t *Tree) cached(id oid.PageID) *node {
	for i := range t.cache {
		if t.cache[i].id == id && t.cache[i].n != nil {
			return t.cache[i].n
		}
	}
	return nil
}

func (t *Tree) cacheNode(id oid.PageID, n *node) {
	for i := range t.cache {
		if t.cache[i].id == id && t.cache[i].n != nil {
			t.cache[i].n = n
			return
		}
	}
	t.cache[t.hand] = nodeCacheEntry{id: id, n: n}
	t.hand = (t.hand + 1) % treeCacheSlots
}

// uncache drops a page freed by a prune so a later reallocation of the
// id can never resolve to the stale node.
func (t *Tree) uncache(id oid.PageID) {
	for i := range t.cache {
		if t.cache[i].id == id {
			t.cache[i] = nodeCacheEntry{}
		}
	}
}

// node is the decoded form of a B+tree page.
type node struct {
	leaf     bool
	next     oid.PageID   // leaf-chain link (leaves only)
	keys     [][]byte     // sorted
	vals     [][]byte     // leaves: len(vals) == len(keys)
	children []oid.PageID // internal: len(children) == len(keys)+1
}

// Create allocates an empty tree (a single empty leaf) and returns it.
func Create(st *storage.TxView) (*Tree, error) {
	p, err := st.Allocate(storage.PageBTree)
	if err != nil {
		return nil, err
	}
	t := &Tree{st: st, root: p.ID}
	if err := t.writeNode(p, &node{leaf: true}); err != nil {
		return nil, err
	}
	return t, nil
}

// Open returns a handle on the tree rooted at root.
func Open(st *storage.TxView, root oid.PageID) *Tree {
	return &Tree{st: st, root: root}
}

// Root returns the current root page id.
func (t *Tree) Root() oid.PageID { return t.root }

// MaxValueSize returns the largest value Put accepts; callers with
// larger payloads must indirect through the record heap.
func (t *Tree) MaxValueSize() int { return t.maxVal() }

// maxKey returns the largest permitted key for the store's page size.
func (t *Tree) maxKey() int { return t.bodyCap() / 16 }

// maxVal returns the largest permitted value.
func (t *Tree) maxVal() int { return t.bodyCap() / 8 }

func (t *Tree) bodyCap() int { return t.st.PageSize() - storage.HeaderSize }

// --- node (de)serialisation ---

func encodeNode(n *node, capHint int) []byte {
	b := make([]byte, 0, capHint)
	if n.leaf {
		b = codec.AppendU8(b, 1)
		b = codec.AppendU32(b, uint32(n.next))
		b = codec.AppendU16(b, uint16(len(n.keys)))
		for i, k := range n.keys {
			b = codec.AppendBytes32(b, k)
			b = codec.AppendBytes32(b, n.vals[i])
		}
	} else {
		b = codec.AppendU8(b, 0)
		b = codec.AppendU32(b, 0)
		b = codec.AppendU16(b, uint16(len(n.keys)))
		// A node whose last child was just pruned encodes transiently
		// with no children; its parent frees it in the same operation.
		if len(n.children) == 0 {
			b = codec.AppendU32(b, uint32(oid.NilPage))
		} else {
			b = codec.AppendU32(b, uint32(n.children[0]))
		}
		for i, k := range n.keys {
			b = codec.AppendBytes32(b, k)
			b = codec.AppendU32(b, uint32(n.children[i+1]))
		}
	}
	return b
}

func decodeNode(body []byte) (*node, error) {
	// One arena copy of the node body up front: every key and value
	// subslices it, so a decode costs O(1) allocations instead of one
	// per entry (decodes dominate the commit path's allocation profile).
	// The copy also detaches the node from the page buffer exactly like
	// the old per-entry copies did — writeNode may later overwrite the
	// page body in place within the same transaction.
	arena := append([]byte(nil), body...)
	r := codec.NewReader(arena)
	n := &node{}
	n.leaf = r.U8() == 1
	n.next = oid.PageID(r.U32())
	count := int(r.U16())
	if n.leaf {
		n.keys = make([][]byte, count)
		n.vals = make([][]byte, count)
		for i := 0; i < count; i++ {
			n.keys[i] = r.Bytes32()
			n.vals[i] = r.Bytes32()
		}
	} else {
		n.children = make([]oid.PageID, 1, count+1)
		n.children[0] = oid.PageID(r.U32())
		n.keys = make([][]byte, count)
		for i := 0; i < count; i++ {
			n.keys[i] = r.Bytes32()
			n.children = append(n.children, oid.PageID(r.U32()))
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("btree: corrupt node: %w", r.Err())
	}
	return n, nil
}

func (t *Tree) readNode(id oid.PageID) (*node, error) {
	if n := t.cached(id); n != nil {
		return n, nil
	}
	p, err := t.st.GetTyped(id, storage.PageBTree)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(p.Body())
	if err != nil {
		return nil, err
	}
	t.cacheNode(id, n)
	return n, nil
}

func (t *Tree) writeNode(p *storage.Page, n *node) error {
	enc := encodeNode(n, t.bodyCap())
	if len(enc) > t.bodyCap() {
		return fmt.Errorf("btree: internal error: node %d encodes to %d > %d", p.ID, len(enc), t.bodyCap())
	}
	id := p.ID
	p = t.st.Touch(p)
	body := p.Body()
	copy(body, enc)
	clear(body[len(enc):])
	t.cacheNode(id, n)
	return nil
}

func (t *Tree) writeNodeID(id oid.PageID, n *node) error {
	p, err := t.st.GetTyped(id, storage.PageBTree)
	if err != nil {
		return err
	}
	return t.writeNode(p, n)
}

// nodeSize returns the encoded size of n.
func nodeSize(n *node) int {
	return len(encodeNode(n, 256))
}

// --- lookup ---

// Get returns the value for key and whether it is present. The returned
// slice is a copy.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i, found := search(n.keys, key)
			if !found {
				return nil, false, nil
			}
			return n.vals[i], true, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// search returns the index of key in keys (found=true) or the insertion
// point (found=false).
func search(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndex returns which child to descend into for key: the child
// holding keys < keys[i] separators per standard B+tree routing
// (keys[i] is the smallest key reachable via children[i+1]).
func childIndex(keys [][]byte, key []byte) int {
	i, found := search(keys, key)
	if found {
		return i + 1
	}
	return i
}

// --- insert ---

// Put inserts or replaces key's value.
func (t *Tree) Put(key, val []byte) error {
	if len(key) > t.maxKey() {
		return fmt.Errorf("%w: %d > %d", ErrKeyTooLarge, len(key), t.maxKey())
	}
	if len(val) > t.maxVal() {
		return fmt.Errorf("%w: %d > %d", ErrValTooLarge, len(val), t.maxVal())
	}
	sep, right, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if right == oid.NilPage {
		return nil
	}
	// Root split: grow the tree by one level.
	p, err := t.st.Allocate(storage.PageBTree)
	if err != nil {
		return err
	}
	newRoot := &node{
		leaf:     false,
		keys:     [][]byte{sep},
		children: []oid.PageID{t.root, right},
	}
	if err := t.writeNode(p, newRoot); err != nil {
		return err
	}
	t.root = p.ID
	return nil
}

// insert descends into id; on child split it returns the separator key
// and new right sibling for the caller to absorb.
func (t *Tree) insert(id oid.PageID, key, val []byte) ([]byte, oid.PageID, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, oid.NilPage, err
	}
	if n.leaf {
		i, found := search(n.keys, key)
		if found {
			n.vals[i] = append([]byte(nil), val...)
		} else {
			n.keys = insertAt(n.keys, i, append([]byte(nil), key...))
			n.vals = insertAt(n.vals, i, append([]byte(nil), val...))
		}
		return t.finishNode(id, n)
	}
	ci := childIndex(n.keys, key)
	sep, right, err := t.insert(n.children[ci], key, val)
	if err != nil {
		return nil, oid.NilPage, err
	}
	if right != oid.NilPage {
		n.keys = insertAt(n.keys, ci, sep)
		n.children = insertAt(n.children, ci+1, right)
	}
	return t.finishNode(id, n)
}

// finishNode writes n back, splitting first if it no longer fits.
func (t *Tree) finishNode(id oid.PageID, n *node) ([]byte, oid.PageID, error) {
	if nodeSize(n) <= t.bodyCap() {
		return nil, oid.NilPage, t.writeNodeID(id, n)
	}
	// Split: left keeps the first half, right gets the rest.
	mid := len(n.keys) / 2
	if mid == 0 {
		mid = 1
	}
	rp, err := t.st.Allocate(storage.PageBTree)
	if err != nil {
		return nil, oid.NilPage, err
	}
	var sep []byte
	var rightN *node
	if n.leaf {
		rightN = &node{
			leaf: true,
			next: n.next,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
		}
		sep = append([]byte(nil), n.keys[mid]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rp.ID
	} else {
		// The median key moves up; it is not duplicated below.
		sep = n.keys[mid]
		rightN = &node{
			leaf:     false,
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]oid.PageID(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.writeNode(rp, rightN); err != nil {
		return nil, oid.NilPage, err
	}
	if err := t.writeNodeID(id, n); err != nil {
		return nil, oid.NilPage, err
	}
	return sep, rp.ID, nil
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// --- delete ---

// Delete removes key, reporting whether it was present. Empty leaves are
// pruned from their parents; an internal root with a single child is
// collapsed.
func (t *Tree) Delete(key []byte) (bool, error) {
	deleted, _, err := t.remove(t.root, key)
	if err != nil || !deleted {
		return deleted, err
	}
	// Collapse trivial root chain.
	for {
		n, err := t.readNode(t.root)
		if err != nil {
			return true, err
		}
		if n.leaf || len(n.children) != 1 {
			return true, nil
		}
		old := t.root
		t.root = n.children[0]
		t.uncache(old)
		if err := t.st.Free(old); err != nil {
			return true, err
		}
	}
}

// remove deletes key under id, returning (deleted, nowEmpty).
func (t *Tree) remove(id oid.PageID, key []byte) (bool, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i, found := search(n.keys, key)
		if !found {
			return false, false, nil
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		if err := t.writeNodeID(id, n); err != nil {
			return false, false, err
		}
		return true, len(n.keys) == 0, nil
	}
	ci := childIndex(n.keys, key)
	deleted, childEmpty, err := t.remove(n.children[ci], key)
	if err != nil || !deleted {
		return deleted, false, err
	}
	if childEmpty {
		// Prune the empty child. Note: pruning a leaf leaves its
		// predecessor's leaf-chain link pointing at a freed page only
		// transiently — we fix the chain below before freeing.
		if err := t.unlinkLeafChain(n, ci); err != nil {
			return true, false, err
		}
		empty := n.children[ci]
		n.children = removeAt(n.children, ci)
		if ci > 0 {
			n.keys = removeAt(n.keys, ci-1)
		} else if len(n.keys) > 0 {
			n.keys = removeAt(n.keys, 0)
		}
		t.uncache(empty)
		if err := t.st.Free(empty); err != nil {
			return true, false, err
		}
		if err := t.writeNodeID(id, n); err != nil {
			return true, false, err
		}
		return true, len(n.children) == 0, nil
	}
	return true, false, nil
}

// unlinkLeafChain repairs the leaf chain around n.children[ci] before it
// is pruned. Only needed when the child is a leaf; the predecessor leaf
// may live under a different subtree, so we walk from the leftmost leaf.
func (t *Tree) unlinkLeafChain(parent *node, ci int) error {
	child, err := t.readNode(parent.children[ci])
	if err != nil {
		return err
	}
	if !child.leaf {
		return nil
	}
	// Find the leaf whose next pointer is the victim by walking the
	// chain from the tree's leftmost leaf.
	victim := parent.children[ci]
	cur, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	for cur != oid.NilPage && cur != victim {
		cn, err := t.readNode(cur)
		if err != nil {
			return err
		}
		if cn.next == victim {
			cn.next = child.next
			return t.writeNodeID(cur, cn)
		}
		cur = cn.next
	}
	return nil // victim is the leftmost leaf; nothing points at it
}

func (t *Tree) leftmostLeaf() (oid.PageID, error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return oid.NilPage, err
		}
		if n.leaf {
			return id, nil
		}
		id = n.children[0]
	}
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// --- iteration ---

// Ascend calls fn for every key in [from, to) in ascending order; nil
// from means from the smallest key, nil to means to the end. Iteration
// stops early if fn returns false. Key and value slices passed to fn are
// owned by the iteration and must be copied if retained.
//
// fn must not mutate the tree.
func (t *Tree) Ascend(from, to []byte, fn func(key, val []byte) (bool, error)) error {
	// Descend to the leaf containing from.
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			break
		}
		if from == nil {
			id = n.children[0]
		} else {
			id = n.children[childIndex(n.keys, from)]
		}
	}
	for id != oid.NilPage {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		start := 0
		if from != nil {
			start, _ = search(n.keys, from)
		}
		for i := start; i < len(n.keys); i++ {
			if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
				return nil
			}
			ok, err := fn(n.keys[i], n.vals[i])
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		from = nil // only the first leaf needs offsetting
		id = n.next
	}
	return nil
}

// AscendPrefix iterates all keys with the given prefix in ascending
// order.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key, val []byte) (bool, error)) error {
	return t.Ascend(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the
// prefix, or nil if the prefix is all 0xFF.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// SeekLE returns the largest key ≤ key and its value, or ok=false when
// every key in the tree is greater. It runs top-down in O(log n).
func (t *Tree) SeekLE(key []byte) (k, v []byte, ok bool, err error) {
	return t.seekLE(t.root, key)
}

func (t *Tree) seekLE(id oid.PageID, key []byte) ([]byte, []byte, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, nil, false, err
	}
	if n.leaf {
		i, found := search(n.keys, key)
		if found {
			return n.keys[i], n.vals[i], true, nil
		}
		if i == 0 {
			return nil, nil, false, nil
		}
		return n.keys[i-1], n.vals[i-1], true, nil
	}
	// Try the child that would contain key, then fall back leftward: the
	// predecessor, if any, is the maximum of the nearest non-empty
	// subtree to the left.
	for ci := childIndex(n.keys, key); ci >= 0; ci-- {
		k, v, ok, err := t.seekLE(n.children[ci], key)
		if err != nil {
			return nil, nil, false, err
		}
		if ok {
			return k, v, true, nil
		}
	}
	return nil, nil, false, nil
}

// Max returns the largest key in the tree, or ok=false when empty.
func (t *Tree) Max() (k, v []byte, ok bool, err error) {
	id := t.root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, nil, false, err
		}
		if n.leaf {
			if len(n.keys) == 0 {
				return nil, nil, false, nil
			}
			last := len(n.keys) - 1
			return n.keys[last], n.vals[last], true, nil
		}
		id = n.children[len(n.children)-1]
	}
}

// Len counts the keys in the tree (O(n); used by tests and tools).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Ascend(nil, nil, func(_, _ []byte) (bool, error) {
		n++
		return true, nil
	})
	return n, err
}

// Check validates structural invariants (key ordering within and across
// nodes, child counts, leaf-chain consistency) and returns a descriptive
// error on the first violation. Used by tests and odedump.
func (t *Tree) Check() error {
	var prev []byte
	first := true
	return t.Ascend(nil, nil, func(k, _ []byte) (bool, error) {
		if !first && bytes.Compare(prev, k) >= 0 {
			return false, fmt.Errorf("btree: order violation: %q !< %q", prev, k)
		}
		prev = append(prev[:0], k...)
		first = false
		return true, nil
	})
}
