package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"ode/internal/storage"
)

func testTree(t testing.TB, pageSize int) (*Tree, *storage.TxView) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bt.ode")
	st, err := storage.Create(path, storage.Options{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	v := st.OpenWriter(nil)
	tr, err := Create(v)
	if err != nil {
		t.Fatal(err)
	}
	return tr, v
}

func TestPutGetBasic(t *testing.T) {
	tr, _ := testTree(t, 512)
	if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	// Replace.
	if err := tr.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = tr.Get([]byte("k1"))
	if !ok || string(v) != "v2" {
		t.Fatalf("replace: %q", v)
	}
	// Missing.
	_, ok, err = tr.Get([]byte("nope"))
	if err != nil || ok {
		t.Fatal("phantom key")
	}
}

func TestSizeLimits(t *testing.T) {
	tr, _ := testTree(t, 512)
	if err := tr.Put(make([]byte, 1000), []byte("v")); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("want ErrKeyTooLarge, got %v", err)
	}
	if err := tr.Put([]byte("k"), make([]byte, 1000)); !errors.Is(err, ErrValTooLarge) {
		t.Fatalf("want ErrValTooLarge, got %v", err)
	}
}

func TestSplitsAndOrderedScan(t *testing.T) {
	tr, _ := testTree(t, 512) // small pages force deep trees
	const n = 2000
	perm := rand.New(rand.NewSource(11)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key%06d", i))
		v := []byte(fmt.Sprintf("val%d", i))
		if err := tr.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	err := tr.Ascend(nil, nil, func(k, v []byte) (bool, error) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d of %d", count, n)
	}
	// Point lookups after deep splits.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, ok, err := tr.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("lookup %q: %q %v %v", k, v, ok, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr, _ := testTree(t, 512)
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Ascend([]byte("020"), []byte("025"), func(k, _ []byte) (bool, error) {
		got = append(got, string(k))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"020", "021", "022", "023", "024"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	_ = tr.Ascend(nil, nil, func(_, _ []byte) (bool, error) {
		n++
		return n < 3, nil
	})
	if n != 3 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr, _ := testTree(t, 512)
	keys := []string{"a:1", "a:2", "ab:1", "b:1", "b:2", "c:9"}
	for _, k := range keys {
		if err := tr.Put([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := tr.AscendPrefix([]byte("a:"), func(k, _ []byte) (bool, error) {
		got = append(got, string(k))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a:1" || got[1] != "a:2" {
		t.Fatalf("prefix scan got %v", got)
	}
	// All-0xFF prefix edge case.
	if err := tr.Put([]byte{0xFF, 0xFF}, []byte("last")); err != nil {
		t.Fatal(err)
	}
	found := false
	if err := tr.AscendPrefix([]byte{0xFF}, func(k, _ []byte) (bool, error) {
		found = true
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("0xFF prefix scan missed key")
	}
}

func TestDelete(t *testing.T) {
	tr, _ := testTree(t, 512)
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a missing key.
	ok, err := tr.Delete([]byte("zzzz"))
	if err != nil || ok {
		t.Fatalf("phantom delete: %v %v", ok, err)
	}
	// Delete everything.
	for i := 0; i < 500; i++ {
		ok, err := tr.Delete([]byte(fmt.Sprintf("%05d", i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	n, err := tr.Len()
	if err != nil || n != 0 {
		t.Fatalf("len after drain: %d %v", n, err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Tree still usable.
	if err := tr.Put([]byte("again"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get([]byte("again"))
	if !ok || string(v) != "yes" {
		t.Fatal("tree unusable after drain")
	}
}

func TestDrainReleasesPages(t *testing.T) {
	tr, st := testTree(t, 512)
	for i := 0; i < 1000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%06d", i)), bytes.Repeat([]byte("v"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	grown := st.NumPages()
	for i := 0; i < 1000; i++ {
		if _, err := tr.Delete([]byte(fmt.Sprintf("%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Refill: freed pages must be recycled, so the file must not grow
	// much beyond its previous footprint.
	for i := 0; i < 1000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("%06d", i)), bytes.Repeat([]byte("v"), 20)); err != nil {
			t.Fatal(err)
		}
	}
	if st.NumPages() > grown+grown/4 {
		t.Fatalf("pages leaked: %d after refill vs %d", st.NumPages(), grown)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.ode")
	st, err := storage.Create(path, storage.Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	v := st.OpenWriter(nil)
	tr, err := Create(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("p%04d", i)), []byte(fmt.Sprintf("%d", i*i))); err != nil {
			t.Fatal(err)
		}
	}
	v.SetRoot(0, tr.Root())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := storage.Open(path, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	v2 := st2.OpenWriter(nil)
	tr2 := Open(v2, v2.Root(0))
	for i := 0; i < 300; i += 7 {
		v, ok, err := tr2.Get([]byte(fmt.Sprintf("p%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("%d", i*i) {
			t.Fatalf("reopen lookup %d: %q %v %v", i, v, ok, err)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestModelCheck drives the tree against a sorted map model.
func TestModelCheck(t *testing.T) {
	tr, _ := testTree(t, 512)
	rng := rand.New(rand.NewSource(77))
	model := map[string]string{}
	keyspace := func() string { return fmt.Sprintf("k%04d", rng.Intn(800)) }
	for step := 0; step < 8000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			k, v := keyspace(), fmt.Sprintf("v%d", step)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d put: %v", step, err)
			}
			model[k] = v
		case 5, 6, 7: // get
			k := keyspace()
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatalf("step %d get: %v", step, err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("step %d get %q: got (%q,%v) want (%q,%v)", step, k, v, ok, want, wantOK)
			}
		default: // delete
			k := keyspace()
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			_, wantOK := model[k]
			if ok != wantOK {
				t.Fatalf("step %d delete %q: got %v want %v", step, k, ok, wantOK)
			}
			delete(model, k)
		}
	}
	// Final: full scan equals sorted model.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	var gotKeys []string
	err := tr.Ascend(nil, nil, func(k, v []byte) (bool, error) {
		gotKeys = append(gotKeys, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("scan value mismatch at %q", k)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan %d keys, model %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("key %d: got %q want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeKeysAndValuesWithinLimits(t *testing.T) {
	tr, _ := testTree(t, 4096)
	// Keys near the limit still allow multiple entries per node.
	for i := 0; i < 50; i++ {
		k := bytes.Repeat([]byte{byte('a' + i%26)}, 200)
		k = append(k, byte(i))
		if err := tr.Put(k, bytes.Repeat([]byte("V"), 400)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	n, _ := tr.Len()
	if n != 50 {
		t.Fatalf("len = %d", n)
	}
}

func BenchmarkPut(b *testing.B) {
	tr, _ := testTree(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key%09d", i))
		if err := tr.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr, _ := testTree(b, 4096)
	const n = 10000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%09d", i))
		if err := tr.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key%09d", i%n))
		if _, ok, err := tr.Get(k); err != nil || !ok {
			b.Fatal("missing key")
		}
	}
}

func TestSeekLEAndMax(t *testing.T) {
	tr, _ := testTree(t, 512)
	// Empty tree.
	if _, _, ok, err := tr.SeekLE([]byte("x")); err != nil || ok {
		t.Fatalf("empty SeekLE: %v %v", ok, err)
	}
	if _, _, ok, err := tr.Max(); err != nil || ok {
		t.Fatalf("empty Max: %v %v", ok, err)
	}
	for i := 0; i < 500; i += 2 { // even keys only
		if err := tr.Put([]byte(fmt.Sprintf("%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Exact hit.
	k, v, ok, err := tr.SeekLE([]byte("00100"))
	if err != nil || !ok || string(k) != "00100" || string(v) != "v100" {
		t.Fatalf("exact SeekLE: %q %q %v %v", k, v, ok, err)
	}
	// Between keys: odd target finds preceding even.
	k, _, ok, err = tr.SeekLE([]byte("00101"))
	if err != nil || !ok || string(k) != "00100" {
		t.Fatalf("between SeekLE: %q %v %v", k, ok, err)
	}
	// Below the minimum.
	if _, _, ok, _ := tr.SeekLE([]byte("!")); ok {
		t.Fatal("SeekLE below min returned a key")
	}
	// Above the maximum clamps to max.
	k, _, ok, _ = tr.SeekLE([]byte("zzzzz"))
	if !ok || string(k) != "00498" {
		t.Fatalf("SeekLE above max: %q %v", k, ok)
	}
	k, _, ok, err = tr.Max()
	if err != nil || !ok || string(k) != "00498" {
		t.Fatalf("Max: %q %v %v", k, ok, err)
	}
}

func TestSeekLEModel(t *testing.T) {
	tr, _ := testTree(t, 512)
	rng := rand.New(rand.NewSource(13))
	var keys []string
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%06d", rng.Intn(100000))
		if err := tr.Put([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for probe := 0; probe < 500; probe++ {
		q := fmt.Sprintf("%06d", rng.Intn(100000))
		// Model answer: largest key <= q.
		idx := sort.SearchStrings(keys, q)
		var want string
		haveWant := false
		if idx < len(keys) && keys[idx] == q {
			want, haveWant = q, true
		} else if idx > 0 {
			want, haveWant = keys[idx-1], true
		}
		k, _, ok, err := tr.SeekLE([]byte(q))
		if err != nil {
			t.Fatal(err)
		}
		if ok != haveWant || (ok && string(k) != want) {
			t.Fatalf("SeekLE(%q): got (%q,%v) want (%q,%v)", q, k, ok, want, haveWant)
		}
	}
}
