package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestAbortRecordRoundtrip(t *testing.T) {
	l, _ := tempLog(t)
	if _, err := l.AppendBegin(5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAbort(5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCheckpoint(); err != nil {
		t.Fatal(err)
	}
	var kinds []uint8
	if err := l.Scan(func(r Record) error {
		kinds = append(kinds, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint8{RecBegin, RecAbort, RecCheckpoint}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v want %v", kinds, want)
		}
	}
}

func TestOversizedLengthWordTreatedAsTorn(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	goodEnd := l.End()
	l.Close()
	// Append a frame claiming an absurd payload length.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:4], MaxRecord+1)
	if _, err := f.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != goodEnd {
		t.Fatalf("oversized frame not trimmed: %v want %v", l2.End(), goodEnd)
	}
}

func TestUnknownRecordTypeRejectedByScan(t *testing.T) {
	l, _ := tempLog(t)
	// Craft a structurally valid (CRC-correct) record with a bogus type
	// by using the internal append.
	if _, err := l.append([]byte{0x7E, 0x01}); err != nil {
		t.Fatal(err)
	}
	err := l.Scan(func(Record) error { return nil })
	if err == nil {
		t.Fatal("unknown record type accepted by scan")
	}
}

func TestScanCallbackErrorPropagates(t *testing.T) {
	l, _ := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	sentinel := bytes.ErrTooLarge
	if err := l.Scan(func(Record) error { return sentinel }); err != sentinel {
		t.Fatalf("callback error lost: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	l, _ := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appends, syncs := l.Stats()
	if appends != 2 || syncs != 1 {
		t.Fatalf("stats = %d appends, %d syncs", appends, syncs)
	}
}

func TestOpenDirectoryFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir)); err == nil {
		t.Fatal("opening a directory as a WAL succeeded")
	}
}
