package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/oid"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.ode")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func TestAppendScanRoundtrip(t *testing.T) {
	l, _ := tempLog(t)
	img := bytes.Repeat([]byte{0xAB}, 256)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPageImage(1, 7, img); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := l.Scan(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Type != RecBegin || recs[0].Tx != 1 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Type != RecPageImage || recs[1].Page != 7 || !bytes.Equal(recs[1].Data, img) {
		t.Fatalf("rec1 wrong: page=%v len=%d", recs[1].Page, len(recs[1].Data))
	}
	if recs[2].Type != RecCommit {
		t.Fatalf("rec2 = %+v", recs[2])
	}
	// LSNs strictly increase and start after the header.
	if !(recs[0].LSN >= 8 && recs[0].LSN < recs[1].LSN && recs[1].LSN < recs[2].LSN) {
		t.Fatalf("LSNs not increasing: %v %v %v", recs[0].LSN, recs[1].LSN, recs[2].LSN)
	}
}

func TestReopenFindsEnd(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.AppendBegin(3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	end := l.End()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != end {
		t.Fatalf("end %v != %v", l2.End(), end)
	}
	// New appends continue after the old end.
	lsn, err := l2.AppendBegin(4)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != end {
		t.Fatalf("append lsn %v != old end %v", lsn, end)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	goodEnd := l.End()
	if _, err := l.AppendPageImage(2, 9, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Tear the final record: chop 10 bytes off the file.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-10); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != goodEnd {
		t.Fatalf("torn tail not trimmed: end %v want %v", l2.End(), goodEnd)
	}
	n := 0
	if err := l2.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan after trim saw %d records", n)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	goodEnd := l.End()
	if _, err := l.AppendPageImage(1, 3, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte of the last record (not the frame).
	raw, _ := os.ReadFile(path)
	raw[len(raw)-5] ^= 0x5A
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.End() != goodEnd {
		t.Fatalf("corrupt tail not trimmed: %v want %v", l2.End(), goodEnd)
	}
}

func TestResetAfterCheckpoint(t *testing.T) {
	l, _ := tempLog(t)
	for i := 0; i < 10; i++ {
		if _, err := l.AppendPageImage(1, oid.PageID(i+1), make([]byte, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Size() <= 8 {
		t.Fatal("log empty before reset")
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 8 {
		t.Fatalf("size after reset = %d", l.Size())
	}
	n := 0
	if err := l.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("records after reset: %d", n)
	}
	// Log is reusable after reset.
	if _, err := l.AppendBegin(9); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := l.Scan(func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("records after reset+append: %d", n)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("this is not a log, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("garbage accepted as WAL")
	}
}

func TestEmptyFileInitialised(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.End() != 8 {
		t.Fatalf("end = %v", l.End())
	}
}

func TestScanVisibleWithoutSync(t *testing.T) {
	// Scan must flush the buffered writer so it sees its own appends.
	l, _ := tempLog(t)
	if _, err := l.AppendBegin(1); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("unsynced append invisible to scan: %d", n)
	}
}
