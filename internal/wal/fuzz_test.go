package wal

// Native fuzz targets for the WAL record scanner. The contract under
// attack: whatever bytes a crash (or a hostile disk) leaves after the
// header, opening the log must never panic, must accept only CRC-framed
// prefixes, must be idempotent (re-opening the truncated file finds the
// same end), and — the group-commit case — a torn or garbage tail
// appended after a batch of valid records must surface as clean
// end-of-log without losing or inventing any record before it.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"ode/internal/faultfs"
	"ode/internal/oid"
)

const fuzzLogPath = "/fuzz.wal"

// writeRaw creates path on fsys holding exactly content.
func writeRaw(t testing.TB, fsys faultfs.FS, path string, content []byte) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// header returns a valid WAL file header.
func header() []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint32(hdr[4:8], version)
	return hdr[:]
}

// FuzzScanEnd feeds arbitrary bytes as the post-header body of a log
// file and opens it. Properties: no panic, the accepted end stays
// within the file, reopening the (truncated) file is a fixed point, and
// scanning the accepted prefix never panics.
func FuzzScanEnd(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	// A valid one-record body as a structured seed.
	{
		mem := faultfs.NewMem()
		l, err := OpenFS(mem, fuzzLogPath)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := l.AppendBegin(7); err != nil {
			f.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			f.Fatal(err)
		}
		l.Close()
		fl, _ := mem.OpenFile(fuzzLogPath, os.O_RDONLY, 0)
		size, _ := fl.Size()
		body := make([]byte, size-headerSize)
		fl.ReadAt(body, headerSize)
		fl.Close()
		f.Add(body)
		f.Add(append(body, 0xff, 0x00, 0x13, 0x37))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		mem := faultfs.NewMem()
		writeRaw(t, mem, fuzzLogPath, append(header(), body...))
		l, err := OpenFS(mem, fuzzLogPath)
		if err != nil {
			return // a rejected log is fine; panics are not
		}
		end := l.End()
		if end < headerSize || int64(end) > int64(headerSize+len(body)) {
			t.Fatalf("accepted end %v outside file [%d,%d]", end, headerSize, headerSize+len(body))
		}
		// Scanning the accepted prefix must not panic. It may error on a
		// CRC-valid frame whose payload is not a known record (scanEnd
		// validates framing, not semantics), but it must never read past
		// the end it declared.
		_ = l.Scan(func(rec Record) error {
			if rec.LSN >= end {
				t.Fatalf("record at %v beyond declared end %v", rec.LSN, end)
			}
			return nil
		})
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// Idempotence: the truncated file must reopen to the same end.
		l2, err := OpenFS(mem, fuzzLogPath)
		if err != nil {
			t.Fatalf("reopen of truncated log failed: %v", err)
		}
		if l2.End() != end {
			t.Fatalf("reopen moved end: %v -> %v", end, l2.End())
		}
		l2.Close()
	})
}

// FuzzBatchTail builds a real log — half its transactions appended
// record-by-record, half staged through the group-commit Frames path —
// then splices an arbitrary tail after it and reopens. The valid prefix
// must survive byte-for-byte: same records, same order, no phantoms
// before the old end.
func FuzzBatchTail(f *testing.F) {
	f.Add([]byte("\x02page-image-payload"), []byte("torn"))
	f.Add([]byte("\x05" + string(make([]byte, 64))), []byte{0xff, 0x00, 0x01, 0xfe})
	f.Add([]byte{0x01}, []byte{})

	f.Fuzz(func(t *testing.T, seed, tail []byte) {
		nTxns := 1
		var page []byte
		if len(seed) > 0 {
			nTxns = int(seed[0])%4 + 1
			page = seed[1:]
			if len(page) > 4096 {
				page = page[:4096]
			}
		}
		mem := faultfs.NewMem()
		l, err := OpenFS(mem, fuzzLogPath)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nTxns; i++ {
			tx := oid.TxID(i + 1)
			if i%2 == 0 {
				fr := &Frames{}
				fr.Begin(tx)
				fr.PageImage(tx, oid.PageID(i), page)
				fr.Commit(tx)
				if _, err := l.AppendFrames(fr); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := l.AppendBegin(tx); err != nil {
					t.Fatal(err)
				}
				if _, err := l.AppendPageImage(tx, oid.PageID(i), page); err != nil {
					t.Fatal(err)
				}
				if _, err := l.AppendCommit(tx); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		validEnd := l.End()
		var want []Record
		if err := l.Scan(func(rec Record) error {
			rec.Data = append([]byte(nil), rec.Data...)
			want = append(want, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// The crash: arbitrary bytes land after the valid prefix.
		fl, err := mem.OpenFile(fuzzLogPath, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fl.WriteAt(tail, int64(validEnd)); err != nil {
			t.Fatal(err)
		}
		fl.Close()

		l2, err := OpenFS(mem, fuzzLogPath)
		if err != nil {
			t.Fatalf("reopen after tail: %v", err)
		}
		defer l2.Close()
		if l2.End() < validEnd {
			t.Fatalf("tail cost committed records: end %v < valid end %v", l2.End(), validEnd)
		}
		var got []Record
		stop := errors.New("past valid prefix")
		if err := l2.Scan(func(rec Record) error {
			if rec.LSN >= validEnd {
				return stop
			}
			rec.Data = append([]byte(nil), rec.Data...)
			got = append(got, rec)
			return nil
		}); err != nil && !errors.Is(err, stop) {
			t.Fatalf("scan of valid prefix failed: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("valid prefix changed: %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type ||
				got[i].Tx != want[i].Tx || got[i].Page != want[i].Page ||
				!bytes.Equal(got[i].Data, want[i].Data) {
				t.Fatalf("record %d changed: %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
