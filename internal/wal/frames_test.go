package wal

// The zero-copy Frames staging path (beginRecord/endRecord reserve and
// patch) must frame records byte-for-byte as the Writer-based framing
// it replaced — the batch leader splices fr.buf straight into the log,
// so any divergence is an on-disk format change.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"ode/internal/codec"
	"ode/internal/oid"
)

// refFrame is the pre-refactor framing: build the payload in a Writer,
// then prepend [len][crc].
func refFrame(dst []byte, payload []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], codec.Checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func TestFramesMatchesReferenceFraming(t *testing.T) {
	image := bytes.Repeat([]byte{0x5a, 0x00, 0xff}, 1365) // 4095 bytes, odd size
	const tx = oid.TxID(123456789)
	const page = oid.PageID(0xDEADBE)
	const gtid = uint64(1) << 60

	var fr Frames
	fr.Grow(len(image) + 64)
	fr.Begin(tx)
	fr.PageImage(tx, page, image)
	fr.Commit(tx)
	fr.Prepare(tx, gtid)

	var want []byte
	want = refFrame(want, codec.NewWriter(16).U8(RecBegin).UVarint(uint64(tx)).Bytes())
	want = refFrame(want, codec.NewWriter(len(image)+24).U8(RecPageImage).UVarint(uint64(tx)).U32(uint32(page)).Raw(image).Bytes())
	want = refFrame(want, codec.NewWriter(16).U8(RecCommit).UVarint(uint64(tx)).Bytes())
	want = refFrame(want, codec.NewWriter(24).U8(RecPrepare).UVarint(uint64(tx)).UVarint(gtid).Bytes())

	if !bytes.Equal(fr.buf, want) {
		t.Fatalf("Frames staging diverges from reference framing:\n  got  %d bytes\n  want %d bytes", len(fr.buf), len(want))
	}
	if fr.Records() != 4 {
		t.Fatalf("Records() = %d, want 4", fr.Records())
	}
	if fr.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", fr.Len(), len(want))
	}
}

// TestFramesGrowNoRealloc proves Grow pre-sizing makes staging
// allocation-free after the initial reservation.
func TestFramesGrowNoRealloc(t *testing.T) {
	image := make([]byte, 4096)
	var fr Frames
	fr.Grow(3*(len(image)+18) + 64)
	base := cap(fr.buf)
	fr.Begin(1)
	for i := 0; i < 3; i++ {
		fr.PageImage(1, oid.PageID(i), image)
	}
	fr.Commit(1)
	if cap(fr.buf) != base {
		t.Fatalf("staging grew the buffer despite Grow: cap %d -> %d", base, cap(fr.buf))
	}
}
