// Package wal implements the write-ahead log that makes Ode commits
// durable: an append-only file of CRC-framed records. The transaction
// layer logs full after-images of every page a transaction dirtied,
// followed by a commit record; recovery replays the images of committed
// transactions in log order.
//
// Framing: the file starts with an 8-byte header (magic, version); each
// record is [u32 payloadLen][u32 crc32c(payload)][payload]. A record's
// LSN is the file offset of its length word, so LSNs are nonzero and
// strictly increasing. A torn tail (incomplete or corrupt final record,
// as left by a crash mid-write) is detected by the CRC and truncated on
// open.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"time"

	"ode/internal/codec"
	"ode/internal/faultfs"
	"ode/internal/obs"
	"ode/internal/oid"
)

// Record types.
const (
	RecBegin      uint8 = 1 // transaction start
	RecPageImage  uint8 = 2 // full page after-image
	RecCommit     uint8 = 3 // transaction durable
	RecAbort      uint8 = 4 // informational; aborted txns are ignored anyway
	RecCheckpoint uint8 = 5 // page file reflects everything before this LSN
	RecPrepare    uint8 = 6 // 2PC: shard-local prepare, carries the global txn id
	RecShardMap   uint8 = 7 // coordinator log only: shard-map image decided by tx
)

// headerSize is the fixed file header before the first record.
const headerSize = 8

// HeaderSize is the fixed file header size, exported so the sharded
// transaction layer can aggregate WAL sizes without double-counting
// per-file headers.
const HeaderSize = headerSize

const magic uint32 = 0x4F44454C // "ODEL"
const version uint32 = 1

// ErrBadLog reports a log file whose header is not a WAL.
var ErrBadLog = errors.New("wal: bad log header")

// MaxRecord bounds record payloads against corrupt length words.
const MaxRecord = 1 << 26

// Record is a decoded log record.
type Record struct {
	LSN  oid.LSN
	Type uint8
	Tx   oid.TxID
	Page oid.PageID // RecPageImage only
	Data []byte     // RecPageImage: the page image; RecShardMap: the map image
	GTID uint64     // RecPrepare only: global (cross-shard) transaction id
}

// seqWriter adapts a positional faultfs.File to the io.Writer the
// append buffer needs, tracking the append offset explicitly (the VFS
// has no Seek, which keeps crash semantics simple).
type seqWriter struct {
	f   faultfs.File
	off int64
}

func (w *seqWriter) Write(p []byte) (int, error) {
	n, err := w.f.WriteAt(p, w.off)
	w.off += int64(n)
	return n, err
}

// Log is an open write-ahead log.
type Log struct {
	f    faultfs.File
	sw   *seqWriter
	w    *bufio.Writer
	end  oid.LSN // next append offset
	path string

	appends uint64
	syncs   uint64

	// scratch is the reusable payload buffer for the direct Append*
	// methods. Appends already serialize on the bufio writer, so one
	// buffer per log is safe.
	scratch []byte

	// m, when set, receives the fsync-latency distribution. Nil (the
	// default, and the NoMetrics baseline) records nothing.
	m *obs.Metrics
}

// SetMetrics wires the observability registry in. Call before the log
// is shared across goroutines (the manager does so at open).
func (l *Log) SetMetrics(m *obs.Metrics) { l.m = m }

// Open opens or creates the log at path on the real OS filesystem.
func Open(path string) (*Log, error) { return OpenFS(faultfs.OS, path) }

// OpenFS opens or creates the log at path on fsys (nil means the real
// OS), validates its header, scans for the end of the valid prefix, and
// truncates any torn tail.
func OpenFS(fsys faultfs.FS, path string) (*Log, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	sw := &seqWriter{f: f}
	l := &Log{f: f, sw: sw, w: bufio.NewWriterSize(sw, 1<<16), path: path}
	if size < headerSize {
		// Fresh (or hopelessly torn) log: write a new header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		var hdr [headerSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], magic)
		binary.BigEndian.PutUint32(hdr[4:8], version)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		l.end = headerSize
		sw.off = headerSize
		return l, nil
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		f.Close()
		return nil, ErrBadLog
	}
	if binary.BigEndian.Uint32(hdr[4:8]) != version {
		f.Close()
		return nil, fmt.Errorf("%w: version %d", ErrBadLog, binary.BigEndian.Uint32(hdr[4:8]))
	}
	end, err := scanEnd(f, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	if int64(end) < size {
		if err := f.Truncate(int64(end)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	l.end = end
	sw.off = int64(end)
	return l, nil
}

// scanEnd walks records from the header to find the end of the valid
// prefix. Only evidence of a torn tail — EOF, a short read at the end
// of the file, an implausible length, a CRC mismatch — ends the prefix;
// a device error (EIO) is returned as an error instead. Conflating the
// two (as this function once did) turned a transient read fault at open
// time into silent truncation of committed transactions.
func scanEnd(f io.ReaderAt, size int64) (oid.LSN, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, headerSize, size-headerSize), 1<<16)
	off := int64(headerSize)
	var frame [8]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return oid.LSN(off), nil // clean EOF or torn frame header
			}
			return 0, fmt.Errorf("wal: scan at %d: %w", off, err)
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		crc := binary.BigEndian.Uint32(frame[4:8])
		if n == 0 {
			// No record has an empty payload (every payload starts with a
			// type byte) — but a zero-filled block, the classic artifact
			// of a torn multi-sector write, frames as one: length 0, CRC
			// 0, and crc32c("") is 0. Found by FuzzBatchTail; without
			// this check such a tail was accepted here and then failed
			// recovery's decode.
			return oid.LSN(off), nil
		}
		if n > MaxRecord || int64(n) > size-off-8 {
			return oid.LSN(off), nil // torn or corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return oid.LSN(off), nil
			}
			return 0, fmt.Errorf("wal: scan at %d: %w", off, err)
		}
		if codec.Checksum(payload) != crc {
			return oid.LSN(off), nil // torn write
		}
		off += 8 + int64(n)
	}
}

// End returns the LSN one past the last durable-framed record.
func (l *Log) End() oid.LSN { return l.end }

// Size returns the current log size in bytes.
func (l *Log) Size() int64 { return int64(l.end) }

// Stats returns append and sync counters.
func (l *Log) Stats() (appends, syncs uint64) { return l.appends, l.syncs }

func (l *Log) append(payload []byte) (oid.LSN, error) {
	lsn := l.end
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], codec.Checksum(payload))
	if _, err := l.w.Write(frame[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end += oid.LSN(8 + len(payload))
	l.appends++
	return lsn, nil
}

// Frames is a staged run of records, framed byte-for-byte as append
// would write them but held in memory. Group commit uses it to build a
// transaction's Begin/PageImage/Commit run under the writer mutex
// (while the page images are stable) and hand it to the batch leader,
// which splices whole runs into the log with AppendFrames outside that
// mutex. Page images are copied at staging time, so a Frames never
// aliases live pool pages.
//
// Records are encoded once, directly into buf: beginRecord reserves the
// 8-byte frame header, the payload is appended in place with the codec
// Append* family, and endRecord patches the length and CRC back over
// the reservation. There is no intermediate payload buffer anywhere on
// the staging path.
type Frames struct {
	buf  []byte
	recs uint64
}

// Reset empties the staged run, keeping the buffer for reuse (the
// transaction layer pools Frames across commits).
func (fr *Frames) Reset() {
	fr.buf = fr.buf[:0]
	fr.recs = 0
}

// Grow pre-sizes the staging buffer so a transaction whose footprint is
// known up front (prepare knows its touched-page count and page size)
// stages without intermediate growth copies.
func (fr *Frames) Grow(n int) {
	if free := cap(fr.buf) - len(fr.buf); free < n {
		grown := make([]byte, len(fr.buf), len(fr.buf)+n)
		copy(grown, fr.buf)
		fr.buf = grown
	}
}

// beginRecord reserves the 8-byte [len][crc] frame header and returns
// the payload's start offset; the caller appends the payload to fr.buf
// and closes the record with endRecord.
func (fr *Frames) beginRecord() int {
	fr.buf = append(fr.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	return len(fr.buf)
}

// endRecord patches the frame header reserved by beginRecord with the
// length and CRC of everything appended since.
func (fr *Frames) endRecord(start int) {
	payload := fr.buf[start:]
	binary.BigEndian.PutUint32(fr.buf[start-8:start-4], uint32(len(payload)))
	binary.BigEndian.PutUint32(fr.buf[start-4:start], codec.Checksum(payload))
	fr.recs++
}

// Begin stages tx's begin record.
func (fr *Frames) Begin(tx oid.TxID) {
	s := fr.beginRecord()
	fr.buf = codec.AppendU8(fr.buf, RecBegin)
	fr.buf = codec.AppendUVarint(fr.buf, uint64(tx))
	fr.endRecord(s)
}

// PageImage stages a full after-image of page id for tx (copied).
func (fr *Frames) PageImage(tx oid.TxID, id oid.PageID, image []byte) {
	s := fr.beginRecord()
	fr.buf = codec.AppendU8(fr.buf, RecPageImage)
	fr.buf = codec.AppendUVarint(fr.buf, uint64(tx))
	fr.buf = codec.AppendU32(fr.buf, uint32(id))
	fr.buf = append(fr.buf, image...)
	fr.endRecord(s)
}

// Commit stages tx's commit record.
func (fr *Frames) Commit(tx oid.TxID) {
	s := fr.beginRecord()
	fr.buf = codec.AppendU8(fr.buf, RecCommit)
	fr.buf = codec.AppendUVarint(fr.buf, uint64(tx))
	fr.endRecord(s)
}

// Prepare stages tx's 2PC prepare record, carrying the global txn id
// that ties this shard-local participant to its coordinator decision.
func (fr *Frames) Prepare(tx oid.TxID, gtid uint64) {
	s := fr.beginRecord()
	fr.buf = codec.AppendU8(fr.buf, RecPrepare)
	fr.buf = codec.AppendUVarint(fr.buf, uint64(tx))
	fr.buf = codec.AppendUVarint(fr.buf, gtid)
	fr.endRecord(s)
}

// Len returns the staged size in bytes.
func (fr *Frames) Len() int { return len(fr.buf) }

// Records returns the number of staged records.
func (fr *Frames) Records() uint64 { return fr.recs }

// AppendFrames appends a staged run to the log and returns the LSN of
// its first record. Like append it only buffers; the run is durable
// after the next Sync.
func (l *Log) AppendFrames(fr *Frames) (oid.LSN, error) {
	lsn := l.end
	if _, err := l.w.Write(fr.buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end += oid.LSN(len(fr.buf))
	l.appends += fr.recs
	return lsn, nil
}

// AppendBegin logs the start of tx.
func (l *Log) AppendBegin(tx oid.TxID) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecBegin)
	b = codec.AppendUVarint(b, uint64(tx))
	l.scratch = b
	return l.append(b)
}

// AppendPageImage logs a full after-image of page id for tx.
func (l *Log) AppendPageImage(tx oid.TxID, id oid.PageID, image []byte) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecPageImage)
	b = codec.AppendUVarint(b, uint64(tx))
	b = codec.AppendU32(b, uint32(id))
	b = append(b, image...)
	l.scratch = b
	return l.append(b)
}

// AppendCommit logs tx's commit record.
func (l *Log) AppendCommit(tx oid.TxID) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecCommit)
	b = codec.AppendUVarint(b, uint64(tx))
	l.scratch = b
	return l.append(b)
}

// AppendAbort logs an informational abort record.
func (l *Log) AppendAbort(tx oid.TxID) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecAbort)
	b = codec.AppendUVarint(b, uint64(tx))
	l.scratch = b
	return l.append(b)
}

// AppendPrepare logs tx's 2PC prepare record with its global txn id.
func (l *Log) AppendPrepare(tx oid.TxID, gtid uint64) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecPrepare)
	b = codec.AppendUVarint(b, uint64(tx))
	b = codec.AppendUVarint(b, gtid)
	l.scratch = b
	return l.append(b)
}

// AppendShardMap logs a shard-map image proposed by global transaction
// tx. The image takes effect only if tx's commit record follows it in
// the same log (the coordinator log), so the map flip and the data move
// it describes share one atomic commit point.
func (l *Log) AppendShardMap(tx oid.TxID, image []byte) (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecShardMap)
	b = codec.AppendUVarint(b, uint64(tx))
	b = append(b, image...)
	l.scratch = b
	return l.append(b)
}

// AppendCheckpoint logs a checkpoint marker.
func (l *Log) AppendCheckpoint() (oid.LSN, error) {
	b := codec.AppendU8(l.scratch[:0], RecCheckpoint)
	b = codec.AppendUVarint(b, 0)
	l.scratch = b
	return l.append(b)
}

// Sync flushes buffered appends and fsyncs the log. A commit is durable
// only after Sync returns.
func (l *Log) Sync() error {
	var start time.Time
	if l.m != nil {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs++
	if l.m != nil {
		l.m.FsyncLatencyNS.ObserveDuration(time.Since(start))
	}
	return nil
}

// Reset truncates the log back to its header after a checkpoint has made
// the page file current.
func (l *Log) Reset() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.w.Reset(l.sw)
	l.sw.off = headerSize
	l.end = headerSize
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	return nil
}

// TruncateTo rolls the log back to lsn, discarding buffered appends and
// truncating the file. The transaction layer uses it when a commit's
// records failed to reach stable storage (append or sync error): the
// caller reported the commit as failed, so its records must not survive
// for recovery to replay — otherwise a commit the application was told
// failed could silently reappear after a crash.
func (l *Log) TruncateTo(lsn oid.LSN) error {
	if lsn < headerSize || lsn > l.end {
		return fmt.Errorf("wal: truncate to %v outside [%d,%v]", lsn, headerSize, l.end)
	}
	// Drop buffered bytes (and any sticky write error) first; the file
	// mutation below is then the only thing that can fail.
	l.w.Reset(l.sw)
	l.sw.off = int64(lsn)
	l.end = lsn
	if err := l.f.Truncate(int64(lsn)); err != nil {
		return fmt.Errorf("wal: truncate to %v: %w", lsn, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	return nil
}

// Scan iterates every valid record in LSN order. fn may retain Record.Data
// (each record's payload is freshly allocated).
func (l *Log) Scan(fn func(rec Record) error) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	sr := io.NewSectionReader(l.f, headerSize, int64(l.end)-headerSize)
	r := bufio.NewReaderSize(sr, 1<<16)
	off := int64(headerSize)
	var frame [8]byte
	for off < int64(l.end) {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return fmt.Errorf("wal: scan frame at %d: %w", off, err)
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		crc := binary.BigEndian.Uint32(frame[4:8])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("wal: scan payload at %d: %w", off, err)
		}
		if codec.Checksum(payload) != crc {
			return fmt.Errorf("wal: crc mismatch at %d", off)
		}
		rec, err := decode(oid.LSN(off), payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += 8 + int64(n)
	}
	return nil
}

func decode(lsn oid.LSN, payload []byte) (Record, error) {
	r := codec.NewReader(payload)
	rec := Record{LSN: lsn}
	rec.Type = r.U8()
	rec.Tx = oid.TxID(r.UVarint())
	if rec.Type == RecPageImage {
		rec.Page = oid.PageID(r.U32())
		rec.Data = payload[r.Offset():]
	}
	if rec.Type == RecPrepare {
		rec.GTID = r.UVarint()
	}
	if rec.Type == RecShardMap {
		rec.Data = payload[r.Offset():]
	}
	if r.Err() != nil {
		return Record{}, fmt.Errorf("wal: corrupt record at %v: %w", lsn, r.Err())
	}
	switch rec.Type {
	case RecBegin, RecPageImage, RecCommit, RecAbort, RecCheckpoint, RecPrepare, RecShardMap:
		return rec, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d at %v", rec.Type, lsn)
	}
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
