package trigger

import (
	"testing"

	"ode/internal/oid"
)

func ev(kind Kind, obj oid.OID, typ oid.TypeID) Event {
	return Event{Kind: kind, Obj: obj, Type: typ}
}

func TestMask(t *testing.T) {
	m := MaskOf(KindCreate, KindNewVersion)
	if !m.Has(KindCreate) || !m.Has(KindNewVersion) {
		t.Fatal("mask missing kinds")
	}
	if m.Has(KindUpdate) || m.Has(KindDeleteObject) {
		t.Fatal("mask has extra kinds")
	}
	for k := KindCreate; k < kindCount; k++ {
		if !All.Has(k) {
			t.Fatalf("All missing %v", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindCreate:        "create",
		KindUpdate:        "update",
		KindNewVersion:    "newversion",
		KindDeleteVersion: "deleteversion",
		KindDeleteObject:  "deleteobject",
		Kind(99):          "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
}

func TestObjectScoping(t *testing.T) {
	b := NewBus()
	var got []oid.OID
	b.OnObject(1, All, false, func(e Event) { got = append(got, e.Obj) })
	b.Fire(ev(KindUpdate, 1, 0))
	b.Fire(ev(KindUpdate, 2, 0)) // different object: no delivery
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestTypeScoping(t *testing.T) {
	b := NewBus()
	n := 0
	b.OnType(5, All, false, func(Event) { n++ })
	b.Fire(ev(KindCreate, 1, 5))
	b.Fire(ev(KindCreate, 2, 5))
	b.Fire(ev(KindCreate, 3, 6))
	if n != 2 {
		t.Fatalf("type handler ran %d times", n)
	}
}

func TestGlobalAndKindFilter(t *testing.T) {
	b := NewBus()
	n := 0
	b.OnAll(MaskOf(KindNewVersion), false, func(Event) { n++ })
	b.Fire(ev(KindNewVersion, 1, 1))
	b.Fire(ev(KindUpdate, 1, 1)) // filtered out
	b.Fire(ev(KindNewVersion, 9, 2))
	if n != 2 {
		t.Fatalf("global handler ran %d times", n)
	}
}

func TestOnceRemovedAfterFirstDelivery(t *testing.T) {
	b := NewBus()
	n := 0
	b.OnObject(1, All, true, func(Event) { n++ })
	if b.Subscriptions() != 1 {
		t.Fatal("subscription not registered")
	}
	b.Fire(ev(KindUpdate, 1, 0))
	b.Fire(ev(KindUpdate, 1, 0))
	if n != 1 {
		t.Fatalf("once trigger ran %d times", n)
	}
	if b.Subscriptions() != 0 {
		t.Fatal("once subscription not removed")
	}
}

func TestOnceDoesNotReenterItself(t *testing.T) {
	b := NewBus()
	n := 0
	b.OnObject(1, All, true, func(e Event) {
		n++
		// A handler that fires another event must not re-trigger itself.
		if n < 5 {
			b.Fire(ev(KindUpdate, 1, 0))
		}
	})
	b.Fire(ev(KindUpdate, 1, 0))
	if n != 1 {
		t.Fatalf("once trigger re-entered: %d", n)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	n := 0
	id1 := b.OnObject(1, All, false, func(Event) { n++ })
	id2 := b.OnType(2, All, false, func(Event) { n++ })
	id3 := b.OnAll(All, false, func(Event) { n++ })
	b.Unsubscribe(id1)
	b.Unsubscribe(id2)
	b.Unsubscribe(id3)
	b.Unsubscribe(9999) // unknown: no-op
	b.Fire(ev(KindUpdate, 1, 2))
	if n != 0 {
		t.Fatalf("unsubscribed handler ran: %d", n)
	}
	if b.Subscriptions() != 0 {
		t.Fatal("subscriptions leaked")
	}
}

func TestDeterministicOrder(t *testing.T) {
	b := NewBus()
	var order []int
	b.OnAll(All, false, func(Event) { order = append(order, 1) })
	b.OnObject(1, All, false, func(Event) { order = append(order, 2) })
	b.OnType(3, All, false, func(Event) { order = append(order, 3) })
	b.Fire(ev(KindUpdate, 1, 3))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v (want subscription order)", order)
	}
}

func TestFireReturnsCountAndStats(t *testing.T) {
	b := NewBus()
	b.OnAll(All, false, func(Event) {})
	b.OnObject(4, All, false, func(Event) {})
	if got := b.Fire(ev(KindUpdate, 4, 0)); got != 2 {
		t.Fatalf("Fire returned %d", got)
	}
	if got := b.Fire(ev(KindUpdate, 5, 0)); got != 1 {
		t.Fatalf("Fire returned %d", got)
	}
	if b.Fired() != 3 {
		t.Fatalf("Fired = %d", b.Fired())
	}
}

func TestAllScopesReceiveSameEvent(t *testing.T) {
	b := NewBus()
	var events []Event
	b.OnObject(7, MaskOf(KindNewVersion), false, func(e Event) { events = append(events, e) })
	b.OnType(2, MaskOf(KindNewVersion), false, func(e Event) { events = append(events, e) })
	e := Event{Kind: KindNewVersion, Obj: 7, VID: 12, Prev: 11, Type: 2, Stamp: 99}
	b.Fire(e)
	if len(events) != 2 {
		t.Fatalf("deliveries = %d", len(events))
	}
	for _, got := range events {
		if got != e {
			t.Fatalf("event mangled: %+v", got)
		}
	}
}
