// Package trigger implements the event bus behind O++-style triggers.
// The paper deliberately leaves change notification and version
// percolation out of the kernel, arguing (§1, §7) that "users can
// implement such a facility using O++ triggers". This bus is that
// facility's mechanism: synchronous handlers attached to an object, a
// type, or the whole database, in once or perpetual mode (O++'s two
// trigger flavours).
//
// Handlers run synchronously inside the firing transaction, so a policy
// written as a trigger (e.g. percolation, see internal/policy) can make
// further changes atomically with the triggering operation.
package trigger

import (
	"sort"
	"sync"

	"ode/internal/oid"
)

// Kind enumerates the version-related events the engine fires.
type Kind uint8

// Event kinds.
const (
	KindCreate        Kind = iota // object created (pnew)
	KindUpdate                    // in-place update of a version's contents
	KindNewVersion                // newversion() created a version
	KindDeleteVersion             // pdelete(vid)
	KindDeleteObject              // pdelete(oid): object and all versions
	kindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCreate:
		return "create"
	case KindUpdate:
		return "update"
	case KindNewVersion:
		return "newversion"
	case KindDeleteVersion:
		return "deleteversion"
	case KindDeleteObject:
		return "deleteobject"
	default:
		return "unknown"
	}
}

// Mask selects a set of kinds.
type Mask uint8

// MaskOf builds a Mask from kinds.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// All selects every event kind.
const All = Mask(1<<kindCount - 1)

// Has reports whether the mask includes k.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// Event describes one engine operation delivered to handlers.
type Event struct {
	Kind  Kind
	Obj   oid.OID
	VID   oid.VID    // affected version (new version for KindNewVersion)
	Prev  oid.VID    // derived-from parent (KindNewVersion), else nil
	Type  oid.TypeID // the object's catalog type
	Stamp oid.Stamp  // logical creation stamp of the operation

	// Tx is the firing transaction's engine handle (a *core.Tx, typed
	// any to avoid an import cycle). Handlers run synchronously inside
	// that transaction and must do their further reads and writes
	// through it; it is invalid once the transaction ends.
	Tx any
}

// Handler is a trigger body. Handlers run synchronously inside the
// firing transaction; an error they need to signal should be recorded in
// closed-over state (the engine does not interpret handler outcomes, so
// triggers cannot veto operations — they are notifications, as in O++).
type Handler func(Event)

// SubID identifies a subscription for cancellation.
type SubID uint64

type sub struct {
	id      SubID
	mask    Mask
	once    bool
	handler Handler
}

// Bus routes events to subscriptions. A Bus is safe for concurrent
// subscription management; Fire is called under the engine's transaction
// lock.
type Bus struct {
	mu     sync.Mutex
	nextID SubID
	global map[SubID]*sub
	byObj  map[oid.OID]map[SubID]*sub
	byType map[oid.TypeID]map[SubID]*sub

	fired uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		global: make(map[SubID]*sub),
		byObj:  make(map[oid.OID]map[SubID]*sub),
		byType: make(map[oid.TypeID]map[SubID]*sub),
	}
}

// OnObject subscribes h to events on one object. once=true removes the
// subscription after its first delivery (O++ "once" triggers).
func (b *Bus) OnObject(obj oid.OID, mask Mask, once bool, h Handler) SubID {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.newSub(mask, once, h)
	m := b.byObj[obj]
	if m == nil {
		m = make(map[SubID]*sub)
		b.byObj[obj] = m
	}
	m[s.id] = s
	return s.id
}

// OnType subscribes h to events on every object of a type.
func (b *Bus) OnType(t oid.TypeID, mask Mask, once bool, h Handler) SubID {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.newSub(mask, once, h)
	m := b.byType[t]
	if m == nil {
		m = make(map[SubID]*sub)
		b.byType[t] = m
	}
	m[s.id] = s
	return s.id
}

// OnAll subscribes h to every event in the database.
func (b *Bus) OnAll(mask Mask, once bool, h Handler) SubID {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.newSub(mask, once, h)
	b.global[s.id] = s
	return s.id
}

func (b *Bus) newSub(mask Mask, once bool, h Handler) *sub {
	b.nextID++
	return &sub{id: b.nextID, mask: mask, once: once, handler: h}
}

// Unsubscribe cancels a subscription; unknown ids are ignored.
func (b *Bus) Unsubscribe(id SubID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.global, id)
	for obj, m := range b.byObj {
		delete(m, id)
		if len(m) == 0 {
			delete(b.byObj, obj)
		}
	}
	for t, m := range b.byType {
		delete(m, id)
		if len(m) == 0 {
			delete(b.byType, t)
		}
	}
}

// Fire delivers ev to all matching subscriptions in ascending SubID
// order (deterministic) and returns how many handlers ran. Once
// subscriptions are removed before their handler runs, so a handler that
// triggers further events cannot re-enter itself.
func (b *Bus) Fire(ev Event) int {
	b.mu.Lock()
	var matched []*sub
	collect := func(m map[SubID]*sub) {
		for _, s := range m {
			if s.mask.Has(ev.Kind) {
				matched = append(matched, s)
			}
		}
	}
	collect(b.global)
	if m, ok := b.byObj[ev.Obj]; ok {
		collect(m)
	}
	if m, ok := b.byType[ev.Type]; ok {
		collect(m)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].id < matched[j].id })
	for _, s := range matched {
		if s.once {
			b.removeLocked(s.id)
		}
	}
	b.fired += uint64(len(matched))
	b.mu.Unlock()

	for _, s := range matched {
		s.handler(ev)
	}
	return len(matched)
}

func (b *Bus) removeLocked(id SubID) {
	delete(b.global, id)
	for obj, m := range b.byObj {
		if _, ok := m[id]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(b.byObj, obj)
			}
			return
		}
	}
	for t, m := range b.byType {
		if _, ok := m[id]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(b.byType, t)
			}
			return
		}
	}
}

// Fired returns the number of handler deliveries since creation.
func (b *Bus) Fired() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fired
}

// Subscriptions returns the number of live subscriptions (for tests and
// stats).
func (b *Bus) Subscriptions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.global)
	for _, m := range b.byObj {
		n += len(m)
	}
	for _, m := range b.byType {
		n += len(m)
	}
	return n
}
