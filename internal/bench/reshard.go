package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ode"
	"ode/internal/workload"
)

// ReshardJSONPath, when non-empty, is where E16 writes its
// machine-readable results. cmd/odebench points it at
// BENCH_reshard.json in the invocation directory; tests leave it empty.
var ReshardJSONPath = ""

// ReshardBenchResult is one E16 row: a (shape, phase) window, where
// phase is "steady" (no rebalance) or "rebalance" (live split/merge
// cycles running concurrently with the workload).
type ReshardBenchResult struct {
	Shape       string  `json:"shape"`
	Phase       string  `json:"phase"`
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	Objects     int     `json:"objects"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	CommitP50US float64 `json:"commit_p50_us"`
	CommitP95US float64 `json:"commit_p95_us"`
	CommitP99US float64 `json:"commit_p99_us"`
	ReadP50US   float64 `json:"read_p50_us"`
	ReadP95US   float64 `json:"read_p95_us"`
	ReadP99US   float64 `json:"read_p99_us"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	// Rebalance-phase extras: split/merge cycles completed and totals
	// moved by the migration transactions. Zero on steady rows.
	Cycles        int    `json:"cycles,omitempty"`
	MovedChunks   uint64 `json:"moved_chunks,omitempty"`
	MovedObjects  uint64 `json:"moved_objects,omitempty"`
	MovedVersions uint64 `json:"moved_versions,omitempty"`
	MergedBack    bool   `json:"merged_back,omitempty"`
}

// E16 — rebalance impact: the oracle-checked workload harness run in
// paired windows per shape, one steady-state and one with live
// Reshard split/merge cycles (4→8→4) racing the workers on the same
// store size. Every read in both windows is validated against the
// reference model, so the rebalance window doubles as a correctness
// run; the table contrasts tail latency during vs outside rebalance.
func E16(root string, s Scale) (*Table, error) {
	workers := 8
	cycles := 2
	shapes := []workload.Shape{workload.ShapeLinear, workload.ShapeChurn}
	if s.Smoke || s.Factor > 1 {
		workers = 4
		cycles = 1
		shapes = []workload.Shape{workload.ShapeLinear}
	}
	const shards = 4
	objects := s.n(1024)
	opsPerWorker := s.n(2000)

	t := &Table{
		Title: "E16 — online rebalance impact (oracle-checked)",
		Note: fmt.Sprintf("%d workers, %d objects, %d ops/worker per window on a %d-shard store; the rebalance window runs %d live 4→8→4 split/merge cycle(s) concurrently with the workload, every read validated against the reference model. commit = engine-side Update latency, read = harness-side validated View latency.",
			workers, objects, opsPerWorker, shards, cycles),
		Headers: []string{"shape", "phase", "ops/s", "commit p50/p95/p99 (µs)", "read p50/p95/p99 (µs)", "moved (chunks/objs/vers)"},
	}

	var results []ReshardBenchResult
	seed := int64(1600)
	cell := 0
	for _, shape := range shapes {
		for _, phase := range []string{"steady", "rebalance"} {
			cell++
			seed++
			cfg := workload.Config{
				Seed: seed, Dir: filepath.Join(root, fmt.Sprintf("e16-%03d", cell)),
				Shards: shards, Workers: workers,
				Objects: objects, OpsPerWorker: opsPerWorker,
				Shape: shape, Dist: workload.KeyZipfian,
				Options: &ode.Options{NoSync: true, CheckpointBytes: -1},
			}
			var moved ReshardBenchResult // accumulates Mid-side counters
			if phase == "rebalance" {
				cfg.Mid = func(db *ode.DB) error {
					for i := 0; i < cycles; i++ {
						if err := db.Reshard(2 * shards); err != nil {
							return fmt.Errorf("split: %w", err)
						}
						rp := db.ReshardProgress()
						moved.MovedChunks += rp.Chunks
						moved.MovedObjects += rp.Objects
						moved.MovedVersions += rp.Versions
						if err := db.Reshard(shards); err != nil {
							return fmt.Errorf("merge: %w", err)
						}
						rp = db.ReshardProgress()
						moved.MovedChunks += rp.Chunks
						moved.MovedObjects += rp.Objects
						moved.MovedVersions += rp.Versions
						moved.Cycles++
					}
					moved.MergedBack = true
					return nil
				}
			}
			res, err := workload.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E16 %s/%s: %w", shape, phase, err)
			}
			r := ReshardBenchResult{
				Shape: string(shape), Phase: phase, Shards: shards,
				Workers: workers, Objects: objects,
				Ops:           res.Ops,
				OpsPerSec:     res.OpsPerSec,
				CommitP50US:   usFromNS(res.CommitLatency.P50()),
				CommitP95US:   usFromNS(res.CommitLatency.P95()),
				CommitP99US:   usFromNS(res.CommitLatency.P99()),
				ReadP50US:     usFromNS(res.ReadLatency.P50()),
				ReadP95US:     usFromNS(res.ReadLatency.P95()),
				ReadP99US:     usFromNS(res.ReadLatency.P99()),
				ElapsedMS:     res.Elapsed.Milliseconds(),
				Cycles:        moved.Cycles,
				MovedChunks:   moved.MovedChunks,
				MovedObjects:  moved.MovedObjects,
				MovedVersions: moved.MovedVersions,
				MergedBack:    moved.MergedBack,
			}
			results = append(results, r)
			movedCell := "—"
			if phase == "rebalance" {
				movedCell = fmt.Sprintf("%d/%d/%d", r.MovedChunks, r.MovedObjects, r.MovedVersions)
			}
			t.AddRow(r.Shape, r.Phase,
				fmt.Sprintf("%.0f", r.OpsPerSec),
				fmt.Sprintf("%.0f/%.0f/%.0f", r.CommitP50US, r.CommitP95US, r.CommitP99US),
				fmt.Sprintf("%.0f/%.0f/%.0f", r.ReadP50US, r.ReadP95US, r.ReadP99US),
				movedCell)
		}
	}

	if ReshardJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string               `json:"experiment"`
			Results    []ReshardBenchResult `json:"results"`
		}{"E16-online-rebalance-impact", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(ReshardJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
