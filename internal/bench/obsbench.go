package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ode"
)

// ObsJSONPath, when non-empty, is where E13 writes its machine-readable
// results. cmd/odebench points it at BENCH_obs.json in the invocation
// directory; tests leave it empty so quick runs emit nothing.
var ObsJSONPath = ""

// ObsResult is one E13 measurement cell.
type ObsResult struct {
	Committers    int     `json:"committers"`
	Mode          string  `json:"mode"` // "baseline" (NoMetrics) or "instrumented"
	CommitsPerSec float64 `json:"commits_per_sec"`
	Commits       int64   `json:"commits"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P95LatencyUS  float64 `json:"p95_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	Millis        int64   `json:"window_ms"`
	Reps          int     `json:"reps"`
}

// ObsComparison pairs the two modes at one concurrency level.
type ObsComparison struct {
	Committers  int     `json:"committers"`
	OverheadPct float64 `json:"overhead_pct"` // (baseline - instrumented) / baseline × 100
}

// median of a non-empty slice (sorts a copy).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// E13 — observability overhead: commit throughput with the metrics
// layer on (the default: atomic counter adds plus two time.Now() calls
// per commit) versus NoMetrics (every instrumentation site compiled
// down to a nil check). Same workload shape as E12 — small in-place
// updates on disjoint objects — but with NoSync commits: an
// fsync-bound run has ±30% device jitter between identical cells,
// which swamps a few-percent effect, while NoSync is both stable and
// adversarial for instrumentation (the more commits per second, the
// more instrumentation per second).
//
// Even NoSync runs see ±10% machine noise between cells on shared
// hardware, and back-to-back cells have a slot bias (the later run
// benefits from a warm CPU and page cache), so the overhead is
// measured with an ABBA design: each rep runs four windows in the
// order baseline, instrumented, instrumented, baseline, and computes
// one ratio from the two sums — slot effects cancel exactly within
// the rep, and temporally correlated drift cancels in the ratio. The
// reported overhead is the median of the per-rep ratios. The
// acceptance bar is instrumented within 3% of baseline at both
// concurrency levels.
func E13(root string, s Scale) (*Table, error) {
	window := time.Duration(600/s.Factor) * time.Millisecond
	if window < 120*time.Millisecond {
		window = 120 * time.Millisecond
	}
	reps := 5
	if s.Factor > 1 {
		reps = 1
	}

	t := &Table{
		Title:   "E13 — Observability overhead: instrumented vs NoMetrics commit throughput",
		Note:    fmt.Sprintf("E12's workload with NoSync commits (small in-place updates, 512-byte pages, checkpoints off) for %v per run, %d ABBA reps per cell (baseline, instrumented, instrumented, baseline — slot bias cancels within the rep). baseline = Options.NoMetrics (no counters, no timestamps); instrumented = default. commits/s columns are medians; overhead is the median of per-rep (baseline − instrumented)/baseline ratios, which cancels machine noise a cross-run comparison cannot. The contract is <3%%.", window, reps),
		Headers: []string{"committers", "baseline commits/s", "instrumented commits/s", "overhead", "instr p50/p95/p99 (µs)"},
	}

	var results []ObsResult
	var comparisons []ObsComparison
	cell := 0
	for _, n := range []int{1, 16} {
		var baseCPS, instrCPS, ratios []float64
		var instrHist ode.HistSnapshot
		var instrCommits int64
		// One discarded warm-up window per level absorbs CPU ramp-up.
		if _, _, _, _, err := groupCommitCell(filepath.Join(root, fmt.Sprintf("e13-warm-%d", n)),
			&ode.Options{CheckpointBytes: -1, PageSize: 512, NoSync: true}, n, window); err != nil {
			return nil, err
		}
		for rep := 0; rep < reps; rep++ {
			var sum [2]float64 // [baseline, instrumented]
			for _, baseline := range []bool{true, false, false, true} {
				opts := &ode.Options{CheckpointBytes: -1, PageSize: 512, NoSync: true}
				if baseline {
					opts.NoMetrics = true
				}
				cell++
				dir := filepath.Join(root, fmt.Sprintf("e13-%02d", cell))
				commits, _, _, hist, err := groupCommitCell(dir, opts, n, window)
				if err != nil {
					return nil, err
				}
				cps := float64(commits) / window.Seconds()
				if baseline {
					sum[0] += cps
					baseCPS = append(baseCPS, cps)
				} else {
					sum[1] += cps
					instrCPS = append(instrCPS, cps)
					if commits > instrCommits {
						instrCommits = commits
						instrHist = hist
					}
				}
			}
			if sum[0] > 0 {
				ratios = append(ratios, (sum[0]-sum[1])/sum[0]*100)
			}
		}
		overhead := median(ratios)
		results = append(results,
			ObsResult{Committers: n, Mode: "baseline", CommitsPerSec: median(baseCPS),
				Millis: window.Milliseconds(), Reps: reps},
			ObsResult{Committers: n, Mode: "instrumented", CommitsPerSec: median(instrCPS),
				Commits: instrCommits,
				P50LatencyUS: usFromNS(instrHist.P50()), P95LatencyUS: usFromNS(instrHist.P95()),
				P99LatencyUS: usFromNS(instrHist.P99()),
				Millis:       window.Milliseconds(), Reps: reps})
		comparisons = append(comparisons, ObsComparison{Committers: n, OverheadPct: overhead})
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", median(baseCPS)),
			fmt.Sprintf("%.0f", median(instrCPS)),
			fmt.Sprintf("%+.1f%%", overhead),
			fmt.Sprintf("%.0f/%.0f/%.0f", usFromNS(instrHist.P50()),
				usFromNS(instrHist.P95()), usFromNS(instrHist.P99())))
	}

	if ObsJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment  string          `json:"experiment"`
			Results     []ObsResult     `json:"results"`
			Comparisons []ObsComparison `json:"comparisons"`
		}{"E13-obs-overhead", results, comparisons}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(ObsJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
