package bench

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTableMarkdown(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Note:    "a note",
		Headers: []string{"a", "b"},
	}
	tb.AddRow("1", "2")
	md := tb.Markdown()
	for _, want := range []string{"### demo", "a note", "| a | b |", "| 1 | 2 |", "| --- | --- |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	if tm.Mean() != 0 || tm.P99() != 0 {
		t.Fatal("empty timer nonzero")
	}
	tm.TimeN(100, func() { time.Sleep(time.Microsecond) })
	if tm.Mean() <= 0 || tm.P99() < tm.Mean()/2 {
		t.Fatalf("implausible stats: mean=%v p99=%v", tm.Mean(), tm.P99())
	}
}

func TestFormatting(t *testing.T) {
	if got := Ns(5 * time.Millisecond); got != "5.00 ms" {
		t.Fatalf("Ns ms: %q", got)
	}
	if got := Ns(1500 * time.Nanosecond); got != "1.50 µs" {
		t.Fatalf("Ns µs: %q", got)
	}
	if got := Ns(900 * time.Nanosecond); got != "900 ns" {
		t.Fatalf("Ns ns: %q", got)
	}
	if got := Bytes(2 << 20); got != "2.00 MiB" {
		t.Fatalf("Bytes MiB: %q", got)
	}
	if got := Bytes(3 << 10); got != "3.00 KiB" {
		t.Fatalf("Bytes KiB: %q", got)
	}
	if got := Bytes(12); got != "12 B" {
		t.Fatalf("Bytes B: %q", got)
	}
}

func TestPayloadAndEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Payload(rng, 1000, 0)
	if len(p) != 1000 {
		t.Fatal("payload size")
	}
	q := Payload(rng, 1000, 1)
	for _, b := range q {
		if b != 0 {
			t.Fatal("fully redundant payload must be constant")
		}
	}
	e := Edit(rng, p, 3, 8)
	if len(e) != len(p) {
		t.Fatal("edit changed length")
	}
	diff := 0
	for i := range p {
		if p[i] != e[i] {
			diff++
		}
	}
	if diff == 0 || diff > 3*8 {
		t.Fatalf("edit touched %d bytes", diff)
	}
}

// TestAllExperimentsQuick runs every experiment at Quick scale: the
// harness must complete and produce plausible tables. This doubles as
// the integration test for the whole stack.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tb, err := ex.Run(t.TempDir(), Quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if tb.Title == "" || len(tb.Headers) == 0 {
				t.Fatal("malformed table")
			}
			for _, r := range tb.Rows {
				if len(r) != len(tb.Headers) {
					t.Fatalf("row width %d != headers %d", len(r), len(tb.Headers))
				}
			}
		})
	}
}
