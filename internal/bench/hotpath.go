package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ode"
)

// HotpathJSONPath, when non-empty, is where E18 writes its
// machine-readable results. cmd/odebench points it at
// BENCH_hotpath.json in the invocation directory; tests leave it empty.
var HotpathJSONPath = ""

// e18PreRefactorCommitAllocs is the measured allocs/op of the grouped
// commit path (one Update doing one UpdateLatestRaw of a 256-byte
// payload, Shards: 1, checkpoints off) BEFORE the zero-copy staging
// refactor: codec buffers copied into WAL frames copied into the splice
// batch, per-id superblock bumps, per-entry btree decode copies. The
// refactor's acceptance bar is ≥40% below this number; the constant
// records the provenance the comparison runs against, since the old
// path no longer exists to re-measure.
const e18PreRefactorCommitAllocs = 92.0

// e18PreRefactorDerefAllocs is the same recorded baseline for the hot
// latest-read path (one View doing one ReadLatestRaw of the same
// object) before the btree arena decode and the dereference cache.
const e18PreRefactorDerefAllocs = 29.0

// HotpathAllocResult is E18's allocation measurement for one path.
type HotpathAllocResult struct {
	Path          string  `json:"path"` // "commit" or "hot-deref"
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BaselineAlloc float64 `json:"pre_refactor_allocs_per_op"`
	ReductionPct  float64 `json:"reduction_pct"`
	Ops           int     `json:"ops"`
}

// HotpathReadResult is one hot-read measurement cell.
type HotpathReadResult struct {
	Shards      int     `json:"shards"`
	Mode        string  `json:"mode"` // "cache" or "nocache"
	Readers     int     `json:"readers"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	Reads       int64   `json:"reads"`
	MeanUS      float64 `json:"mean_us"`
	P50US       float64 `json:"p50_us"`
	P99US       float64 `json:"p99_us"`
	HitRate     float64 `json:"cache_hit_rate"`
	Millis      int64   `json:"window_ms"`
	Reps        int     `json:"reps"`
}

// HotpathComparison pairs the modes at one shard count.
type HotpathComparison struct {
	Shards     int     `json:"shards"`
	P50Speedup float64 `json:"p50_speedup"` // nocache p50 / cache p50
}

// allocsPerOp measures the process-wide mallocs per call of fn on a
// single goroutine, the same way testing.AllocsPerRun does (one warm-up
// call, then ReadMemStats around n calls).
func allocsPerOp(n int, fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n), nil
}

// e18AllocCell measures the two hot paths' allocs/op on the reference
// single-shard configuration.
func e18AllocCell(dir string, ops int) (commit, deref float64, err error) {
	db, ty, err := openBench(dir, &ode.Options{Shards: 1, CheckpointBytes: -1})
	if err != nil {
		return 0, 0, err
	}
	defer db.Close()
	payload := Payload(rand.New(rand.NewSource(18)), 256, 0.5)
	var o ode.OID
	if err := db.Update(func(tx *ode.Tx) error {
		p, err := ty.Create(tx, &Blob{Data: payload})
		o = p.OID()
		return err
	}); err != nil {
		return 0, 0, err
	}
	commit, err = allocsPerOp(ops, func() error {
		return db.Update(func(tx *ode.Tx) error {
			_, err := tx.UpdateLatestRaw(o, payload)
			return err
		})
	})
	if err != nil {
		return 0, 0, err
	}
	deref, err = allocsPerOp(ops, func() error {
		return db.View(func(tx *ode.Tx) error {
			_, _, err := tx.ReadLatestRaw(o)
			return err
		})
	})
	return commit, deref, err
}

// e18ReadBatch is how many hot reads one View transaction performs: a
// snapshot pin (one epoch pin per shard) is paid once per transaction,
// so batching reads the way real read workloads do keeps the measured
// per-read latency about dereferencing rather than about pinning.
const e18ReadBatch = 8

// e18ReadWindow runs nReaders goroutines looping validated hot-read
// transactions (e18ReadBatch reads per View) over a fixed object set
// for one window, recording each transaction's per-read latency.
// Returns total reads, per-read latency samples (ns) and the deref
// cache hit rate over the window.
func e18ReadWindow(db *ode.DB, objs []ode.OID, nReaders int, window time.Duration) (int64, []float64, float64, error) {
	before := db.Stats()
	var (
		reads    atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		samples  []float64
		errOnce  sync.Once
		firstErr error
	)
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := make([]float64, 0, 4096)
			i := r
			for !stop.Load() {
				start := i
				t0 := time.Now()
				err := db.View(func(tx *ode.Tx) error {
					for k := 0; k < e18ReadBatch; k++ {
						o := objs[(start+k)%len(objs)]
						content, _, err := tx.ReadLatestRaw(o)
						if err != nil {
							return err
						}
						if len(content) == 0 {
							return fmt.Errorf("empty read of %v", o)
						}
					}
					return nil
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
				i += e18ReadBatch
				local = append(local, float64(time.Since(t0).Nanoseconds())/e18ReadBatch)
				reads.Add(e18ReadBatch)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(r)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return 0, nil, 0, firstErr
	}
	after := db.Stats()
	hits := after.DerefCacheHits - before.DerefCacheHits
	misses := after.DerefCacheMisses - before.DerefCacheMisses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return reads.Load(), samples, rate, nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// e18OpenReadDB opens one store with n shards, seeds the hot object set
// (one create per transaction so the round-robin allocator spreads them
// across shards) and pre-warms nothing: each window's first touches
// fill cache and pool alike, and windows are long relative to the fill.
func e18OpenReadDB(dir string, shards, nObjs int, cache bool) (*ode.DB, []ode.OID, error) {
	opts := &ode.Options{Shards: shards, CheckpointBytes: -1, DerefCacheBytes: -1}
	if cache {
		opts.DerefCacheBytes = 0 // default budget
	}
	db, ty, err := openBench(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(1800 + int64(shards)))
	objs := make([]ode.OID, nObjs)
	for i := range objs {
		if err := db.Update(func(tx *ode.Tx) error {
			p, err := ty.Create(tx, &Blob{Data: Payload(rng, 256, 0.5)})
			objs[i] = p.OID()
			return err
		}); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	return db, objs, nil
}

// E18 — hot-path refactor: allocations on the grouped commit path and
// latency of hot latest-version reads with the dereference cache.
//
// Part one re-measures the two hot paths' allocs/op and compares them
// to the recorded pre-refactor baselines (92 commit / 29 deref) — the
// zero-copy staging contract is ≥40% fewer commit-path allocations.
//
// Part two measures hot-read latency at 1/4/8 shards with the
// dereference cache on vs off. Cells are ABBA-paired like E13: each rep
// runs four windows (nocache, cache, cache, nocache) against two
// long-lived stores, so slot bias (warm CPU, page cache) cancels within
// the rep; the reported speedup is the median of per-rep p50 ratios.
// The acceptance bar is ≥2x lower p50 with the cache on.
func E18(root string, s Scale) (*Table, error) {
	window := time.Duration(400/s.Factor) * time.Millisecond
	if window < 100*time.Millisecond {
		window = 100 * time.Millisecond
	}
	reps := 3
	shardCounts := []int{1, 4, 8}
	if s.Smoke {
		reps = 1
		shardCounts = []int{1, 4}
	}
	allocOps := s.n(400)
	// One reader: the reference host is single-core, where concurrent
	// readers measure the scheduler, not the read path.
	const readers = 1
	const hotObjects = 64

	t := &Table{
		Title: "E18 — Hot paths: zero-copy commit staging and the dereference cache",
		Note: fmt.Sprintf("Part 1: allocs/op of one grouped commit (Update + 256-byte UpdateLatestRaw, Shards: 1) and one hot latest read, vs the recorded pre-refactor baselines (%.0f / %.0f); the staging contract is ≥40%% fewer commit allocs. Part 2: %d reader(s) loop validated hot-read transactions (%d ReadLatestRaw per View, amortising the per-shard snapshot pin the way read workloads do) over %d hot objects for %v per window; ABBA reps (nocache, cache, cache, nocache — slot bias cancels within the rep, %d reps) per shard count; latencies are per read; speedup is the median per-rep nocache/cache p50 ratio, bar ≥2x.",
			e18PreRefactorCommitAllocs, e18PreRefactorDerefAllocs, readers, e18ReadBatch, hotObjects, window, reps),
		Headers: []string{"cell", "shards", "mode", "reads/s", "mean (µs)", "p50/p99 (µs)", "hit rate", "speedup"},
	}

	// --- part 1: allocations ---
	commitAllocs, derefAllocs, err := e18AllocCell(filepath.Join(root, "e18-alloc"), allocOps)
	if err != nil {
		return nil, err
	}
	allocResults := []HotpathAllocResult{
		{Path: "commit", AllocsPerOp: commitAllocs, BaselineAlloc: e18PreRefactorCommitAllocs,
			ReductionPct: 100 * (1 - commitAllocs/e18PreRefactorCommitAllocs), Ops: allocOps},
		{Path: "hot-deref", AllocsPerOp: derefAllocs, BaselineAlloc: e18PreRefactorDerefAllocs,
			ReductionPct: 100 * (1 - derefAllocs/e18PreRefactorDerefAllocs), Ops: allocOps},
	}
	for _, a := range allocResults {
		t.AddRow("allocs", "1", a.Path,
			fmt.Sprintf("%.1f allocs/op", a.AllocsPerOp), "",
			fmt.Sprintf("was %.0f", a.BaselineAlloc), "",
			fmt.Sprintf("-%.0f%%", a.ReductionPct))
	}

	// --- part 2: hot-read latency, ABBA over cache on/off ---
	var readResults []HotpathReadResult
	var comparisons []HotpathComparison
	for _, shards := range shardCounts {
		dbOff, objsOff, err := e18OpenReadDB(filepath.Join(root, fmt.Sprintf("e18-r%d-off", shards)), shards, hotObjects, false)
		if err != nil {
			return nil, err
		}
		dbOn, objsOn, err := e18OpenReadDB(filepath.Join(root, fmt.Sprintf("e18-r%d-on", shards)), shards, hotObjects, true)
		if err != nil {
			dbOff.Close()
			return nil, err
		}
		var ratios []float64
		agg := map[string]*HotpathReadResult{
			"nocache": {Shards: shards, Mode: "nocache", Readers: readers, Millis: window.Milliseconds(), Reps: reps},
			"cache":   {Shards: shards, Mode: "cache", Readers: readers, Millis: window.Milliseconds(), Reps: reps},
		}
		samplesByMode := map[string][]float64{}
		for rep := 0; rep < reps; rep++ {
			var p50 [2]float64 // [nocache, cache] medians of this rep's windows
			var perRep = map[string][]float64{}
			for _, mode := range []string{"nocache", "cache", "cache", "nocache"} {
				db, objs := dbOn, objsOn
				if mode == "nocache" {
					db, objs = dbOff, objsOff
				}
				reads, samples, rate, err := e18ReadWindow(db, objs, readers, window)
				if err != nil {
					dbOff.Close()
					dbOn.Close()
					return nil, err
				}
				r := agg[mode]
				r.Reads += reads
				r.ReadsPerSec += float64(reads) / window.Seconds() / float64(2*reps)
				if mode == "cache" {
					// Rate over all cache windows (monotone counters make
					// the last window's cumulative view wrong; average the
					// per-window rates instead).
					r.HitRate += rate / float64(2*reps)
				}
				perRep[mode] = append(perRep[mode], samples...)
				samplesByMode[mode] = append(samplesByMode[mode], samples...)
			}
			for i, mode := range []string{"nocache", "cache"} {
				xs := perRep[mode]
				sort.Float64s(xs)
				p50[i] = percentile(xs, 0.50)
			}
			if p50[1] > 0 {
				ratios = append(ratios, p50[0]/p50[1])
			}
		}
		dbOff.Close()
		dbOn.Close()
		speedup := median(ratios)
		comparisons = append(comparisons, HotpathComparison{Shards: shards, P50Speedup: speedup})
		for _, mode := range []string{"nocache", "cache"} {
			xs := samplesByMode[mode]
			sort.Float64s(xs)
			r := agg[mode]
			r.P50US = percentile(xs, 0.50) / 1e3
			r.P99US = percentile(xs, 0.99) / 1e3
			var sum float64
			for _, x := range xs {
				sum += x
			}
			if len(xs) > 0 {
				r.MeanUS = sum / float64(len(xs)) / 1e3
			}
			readResults = append(readResults, *r)
			spd := ""
			if mode == "cache" {
				spd = fmt.Sprintf("%.2fx", speedup)
			}
			hr := ""
			if mode == "cache" {
				hr = fmt.Sprintf("%.1f%%", 100*r.HitRate)
			}
			t.AddRow("hot-read", fmt.Sprintf("%d", shards), mode,
				fmt.Sprintf("%.0f", r.ReadsPerSec),
				fmt.Sprintf("%.1f", r.MeanUS),
				fmt.Sprintf("%.1f/%.1f", r.P50US, r.P99US),
				hr, spd)
		}
	}

	if HotpathJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment  string               `json:"experiment"`
			Allocs      []HotpathAllocResult `json:"allocs"`
			Reads       []HotpathReadResult  `json:"reads"`
			Comparisons []HotpathComparison  `json:"comparisons"`
		}{"E18-hotpath", allocResults, readResults, comparisons}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(HotpathJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
