package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode"
	"ode/internal/faultfs"
)

// ShardJSONPath, when non-empty, is where E14 writes its
// machine-readable results. cmd/odebench points it at BENCH_shard.json
// in the invocation directory; tests leave it empty.
var ShardJSONPath = ""

// e14FsyncLatency is the modeled device: every fsync costs this much,
// like a commodity SSD (tmpfs fsyncs in microseconds, which hides the
// very bottleneck sharding parallelizes — independent WAL pipelines
// waiting on the device concurrently).
const e14FsyncLatency = 3 * time.Millisecond

// slowFS wraps a filesystem and charges e14FsyncLatency per Sync.
type slowFS struct{ inner faultfs.FS }

func (s slowFS) OpenFile(path string, flag int, perm os.FileMode) (faultfs.File, error) {
	f, err := s.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowFile{f}, nil
}
func (s slowFS) Stat(path string) (int64, error)              { return s.inner.Stat(path) }
func (s slowFS) MkdirAll(path string, perm os.FileMode) error { return s.inner.MkdirAll(path, perm) }
func (s slowFS) ReadDir(dir string) ([]string, error)         { return s.inner.ReadDir(dir) }

func (s slowFS) SyncDir(dir string) error {
	time.Sleep(e14FsyncLatency)
	return s.inner.SyncDir(dir)
}

type slowFile struct{ faultfs.File }

func (f slowFile) Sync() error {
	time.Sleep(e14FsyncLatency)
	return f.File.Sync()
}

// ShardResult is one E14 measurement cell.
type ShardResult struct {
	Shards        int     `json:"shards"`
	Committers    int     `json:"committers"`
	Workload      string  `json:"workload"` // "single", "cross" (2PC-heavy) or "grouped"
	CommitsPerSec float64 `json:"commits_per_sec"`
	Commits       int64   `json:"commits"`
	MeanLatencyUS float64 `json:"mean_latency_us"`
	P50LatencyUS  float64 `json:"p50_latency_us"`
	P95LatencyUS  float64 `json:"p95_latency_us"`
	P99LatencyUS  float64 `json:"p99_latency_us"`
	Millis        int64   `json:"window_ms"`
}

// shardCell opens a store with n shards on the modeled device, seeds
// one object per committer (the engine round-robins fresh objects
// across shards, so committers land evenly), and lets each committer
// loop small in-place updates for one window. With crossShard, every
// transaction touches the committer's own object AND its neighbour's —
// on distinct shards that is a presumed-abort 2PC commit. With grouped
// false the store runs one fsync per transaction (NoGroupCommit), the
// regime where per-shard WAL pipelines scale commit throughput; with
// grouped true the default batching pipeline runs instead.
func shardCell(dir string, shards, nCommitters int, crossShard, grouped bool, window time.Duration) (int64, time.Duration, ode.HistSnapshot, error) {
	var hist ode.HistSnapshot
	db, err := ode.Open(dir, &ode.Options{
		Shards:          shards,
		CheckpointBytes: -1,
		PageSize:        512,
		NoGroupCommit:   !grouped,
		FS:              slowFS{faultfs.OS},
	})
	if err != nil {
		return 0, 0, hist, err
	}
	defer db.Close()
	ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
	if err != nil {
		return 0, 0, hist, err
	}
	objs := make([]ode.OID, nCommitters)
	rng := rand.New(rand.NewSource(14))
	for i := range objs {
		// One create per transaction: the allocator round-robins each
		// transaction's first object, spreading committers over shards.
		if err := db.Update(func(tx *ode.Tx) error {
			p, err := ty.Create(tx, &Blob{Data: Payload(rng, 128, 0.5)})
			objs[i] = p.OID()
			return err
		}); err != nil {
			return 0, 0, hist, err
		}
	}

	var (
		commits   atomic.Int64
		latencyNS atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	for i := 0; i < nCommitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine, next := objs[i], objs[(i+1)%nCommitters]
			payload := Payload(rand.New(rand.NewSource(int64(i))), 64, 0.5)
			for !stop.Load() {
				t0 := time.Now()
				err := db.Update(func(tx *ode.Tx) error {
					if _, err := tx.UpdateLatestRaw(mine, payload); err != nil {
						return err
					}
					if crossShard {
						if _, err := tx.UpdateLatestRaw(next, payload); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
				latencyNS.Add(time.Since(t0).Nanoseconds())
				commits.Add(1)
			}
		}(i)
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return 0, 0, hist, firstErr
	}
	hist = db.Metrics().CommitLatency
	return commits.Load(), time.Duration(latencyNS.Load()), hist, nil
}

// E14 — shard scaling: synchronous commit throughput of 16 concurrent
// committers as the shard count grows, on a modeled commodity device
// (every fsync costs e14FsyncLatency). Each shard owns its WAL, buffer
// pool, writer mutex and commit pipeline:
//
//   - single: every transaction stays on its committer's shard, one
//     fsync per transaction. At one shard the writer mutex serializes
//     the device waits; at N shards the pipelines wait on the device
//     concurrently — the architectural win this experiment gates on.
//   - cross: every transaction also touches a neighbour's object,
//     usually on another shard — each commit is a presumed-abort 2PC
//     (two prepares + a coordinator decision record), pricing the
//     cross-shard path.
//   - grouped: the default group-commit pipeline, where concurrent
//     commits already share one fsync; its shard-scaling win is CPU
//     parallelism of staging/btree work, which a single-core host
//     cannot show — the row is the honest control, not the headline.
func E14(root string, s Scale) (*Table, error) {
	window := time.Duration(2000/s.Factor) * time.Millisecond
	if window < 300*time.Millisecond {
		window = 300 * time.Millisecond
	}
	const committers = 16

	t := &Table{
		Title:   "E14 — Sharding: 16-committer commit throughput vs shard count",
		Note:    fmt.Sprintf("16 committers loop small in-place updates on their own objects for %v per cell on a modeled device (%v per fsync; tmpfs hides the device wait sharding parallelizes). single = shard-local txns, one fsync each (per-shard WAL pipelines overlap device waits); cross = every txn spans two shards (2PC: two prepares + coordinator record); grouped = default group-commit pipeline (batching already shares the fsync — its sharding win is multicore staging, not visible on one core). Speedup is vs the 1-shard cell of the same workload.", window, e14FsyncLatency),
		Headers: []string{"shards", "workload", "commits/s", "speedup", "mean (µs)", "p50/p95/p99 (µs)"},
	}

	var results []ShardResult
	base := map[string]float64{}
	cell := 0
	for _, workload := range []string{"single", "cross", "grouped"} {
		for _, n := range []int{1, 2, 4, 8} {
			cell++
			dir := filepath.Join(root, fmt.Sprintf("e14-%02d", cell))
			commits, latency, hist, err := shardCell(dir, n, committers,
				workload == "cross", workload == "grouped", window)
			if err != nil {
				return nil, err
			}
			r := ShardResult{
				Shards:        n,
				Committers:    committers,
				Workload:      workload,
				CommitsPerSec: float64(commits) / window.Seconds(),
				Commits:       commits,
				P50LatencyUS:  usFromNS(hist.P50()),
				P95LatencyUS:  usFromNS(hist.P95()),
				P99LatencyUS:  usFromNS(hist.P99()),
				Millis:        window.Milliseconds(),
			}
			if commits > 0 {
				r.MeanLatencyUS = float64(latency.Microseconds()) / float64(commits)
			}
			results = append(results, r)
			if n == 1 {
				base[workload] = r.CommitsPerSec
			}
			speedup := 0.0
			if base[workload] > 0 {
				speedup = r.CommitsPerSec / base[workload]
			}
			t.AddRow(fmt.Sprintf("%d", n), workload,
				fmt.Sprintf("%.0f", r.CommitsPerSec),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", r.MeanLatencyUS),
				fmt.Sprintf("%.0f/%.0f/%.0f", r.P50LatencyUS, r.P95LatencyUS, r.P99LatencyUS))
		}
	}

	if ShardJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string        `json:"experiment"`
			Results    []ShardResult `json:"results"`
		}{"E14-shard-scaling", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(ShardJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
