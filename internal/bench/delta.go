package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"ode"
)

// DeltaJSONPath, when non-empty, is where E17 writes its
// machine-readable results. cmd/odebench points it at BENCH_delta.json
// in the invocation directory; tests leave it empty.
var DeltaJSONPath = ""

// DeltaResult is one E17 cell: a storage mode (full copies, or the
// delta tier at one anchor interval) measured on the same deep linear
// edit chain. Ratios are against the full-copy baseline of the same
// run, so they cancel host drift.
type DeltaResult struct {
	Mode           string `json:"mode"` // "full" or "delta"
	AnchorInterval int    `json:"anchor_interval"`
	Versions       int    `json:"versions"`
	PayloadBytes   int    `json:"payload_bytes"`

	// Physical representation after the compaction fixpoint.
	FullPayloads  int `json:"full_payloads"`
	DeltaPayloads int `json:"delta_payloads"`
	SamePayloads  int `json:"same_payloads"`
	HeapBytes     int64  `json:"heap_bytes"`
	LogicalBytes  int64  `json:"logical_bytes"`
	MaxDepth      int    `json:"max_depth"`
	// SpaceReduction is fullHeapBytes / heapBytes (1.0 for the baseline
	// itself; the delta rows are the headline claim).
	SpaceReduction float64 `json:"space_reduction_vs_full"`

	// Cold reads: random-depth derefs with the materialisation cache
	// reset before every read, so each one walks its delta chain from
	// the nearest full anchor.
	ColdP50US float64 `json:"cold_p50_us"`
	ColdP99US float64 `json:"cold_p99_us"`
	// ColdMaxLinks is the largest payload-record walk any
	// materialisation did (from ode_delta_chain_len): bounded by the
	// anchor interval plus the anchor itself.
	ColdMaxLinks uint64 `json:"cold_max_links"`

	// Hot reads: the same version re-read with a warm cache, against
	// the full-copy baseline's read of the same version.
	HotMeanUS float64 `json:"hot_mean_us"`
	HotP99US  float64 `json:"hot_p99_us"`
	// HotVsFull is hotMean / baselineHotMean (≤ ~1.0 expected: a cache
	// hit skips the version-index lookup and the heap read).
	HotVsFull float64 `json:"hot_vs_full_ratio"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// deltaEdit mutates a copy of prev: a short random splice, the shape of
// successive revisions in the paper's CAD setting. The result differs
// from prev by ~24 bytes, so a delta encoding is small while a full
// copy pays the whole payload again.
func deltaEdit(rng *rand.Rand, prev []byte) []byte {
	out := append([]byte(nil), prev...)
	off := rng.Intn(len(out) - 24)
	rng.Read(out[off : off+24])
	return out
}

// E17 — delta-compressed version storage: one object grows a deep
// linear chain of small edits under (a) full-copy storage and (b) the
// delta tier at anchor intervals 4 and 16. After compacting to the
// fixpoint we measure the payload heap against the logical payload
// volume, cold reads that materialise through the delta chain, and hot
// cache-hit reads against the full-copy baseline.
func E17(root string, s Scale) (*Table, error) {
	nVersions := s.n(1000)
	if nVersions < 40 {
		nVersions = 40
	}
	const payloadBytes = 1024
	coldReads := s.n(400)
	hotReads := s.n(2000)

	t := &Table{
		Title: "E17 — delta-compressed version storage (deep-history chain)",
		Note: fmt.Sprintf("one object, %d-version linear chain of 24-byte edits on a %d-byte payload; delta rows are compacted to the fixpoint before measuring. space reduction = full-copy heap / delta heap. cold = cache reset before every read (full chain walk); hot = warm-cache re-reads of one deep version vs the full-copy baseline.",
			nVersions, payloadBytes),
		Headers: []string{"mode", "anchor", "payload heap", "space vs full", "max depth", "cold p50/p99 (µs)", "max links", "hot mean (µs)", "hot vs full"},
	}

	type cfg struct {
		mode     string
		interval int
	}
	cfgs := []cfg{{"full", 0}, {"delta", 4}, {"delta", 16}}

	var results []DeltaResult
	var fullHeap int64
	var fullHotMeanUS float64
	for ci, c := range cfgs {
		dir := filepath.Join(root, fmt.Sprintf("e17-%d", ci))
		opts := &ode.Options{
			NoSync: true, CheckpointBytes: -1, Shards: 1,
			CompactInterval: -1, // sweeps below are explicit and deterministic
		}
		if c.mode == "delta" {
			opts.DeltaTier = true
			opts.AnchorInterval = c.interval
			opts.MatCacheBytes = 8 << 20
		}
		db, err := ode.Open(dir, opts)
		if err != nil {
			return nil, err
		}
		tid, err := db.Engine().RegisterType("DeltaBench")
		if err != nil {
			db.Close()
			return nil, err
		}

		// Build the chain deterministically (same seed per mode, so
		// every mode stores byte-identical version history).
		rng := rand.New(rand.NewSource(1700))
		content := make([]byte, payloadBytes)
		rng.Read(content)
		var o ode.OID
		vids := make([]ode.VID, 0, nVersions)
		err = db.Update(func(tx *ode.Tx) error {
			var v ode.VID
			var err error
			o, v, err = tx.CreateRaw(tid, content)
			vids = append(vids, v)
			return err
		})
		if err == nil {
			for len(vids) < nVersions {
				content = deltaEdit(rng, content)
				err = db.Update(func(tx *ode.Tx) error {
					v, err := tx.NewVersion(o)
					if err != nil {
						return err
					}
					vids = append(vids, v)
					return tx.UpdateVersionRaw(o, v, content)
				})
				if err != nil {
					break
				}
			}
		}
		if err == nil && c.mode == "delta" {
			_, err = db.Compact()
		}
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("E17 %s/%d: %w", c.mode, c.interval, err)
		}

		ps, err := db.Engine().PayloadStats()
		if err != nil {
			db.Close()
			return nil, err
		}

		// Cold: reset the cache before every read so each deref walks
		// its chain from the nearest anchor.
		readRng := rand.New(rand.NewSource(1701))
		var coldTm Timer
		err = db.View(func(tx *ode.Tx) error {
			for i := 0; i < coldReads; i++ {
				v := vids[readRng.Intn(len(vids))]
				db.Engine().ResetMatCache()
				coldTm.Time(func() {
					if _, err := tx.ReadVersionRaw(o, v); err != nil {
						panic(err)
					}
				})
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}

		// Hot: one deep (delta-encoded) version, warm cache.
		hotV := vids[len(vids)-2]
		var hotTm Timer
		err = db.View(func(tx *ode.Tx) error {
			if _, err := tx.ReadVersionRaw(o, hotV); err != nil {
				return err
			}
			hotTm.TimeN(hotReads, func() {
				if _, err := tx.ReadVersionRaw(o, hotV); err != nil {
					panic(err)
				}
			})
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}

		ms := db.Metrics()
		if err := db.Close(); err != nil {
			return nil, err
		}

		r := DeltaResult{
			Mode: c.mode, AnchorInterval: c.interval,
			Versions: nVersions, PayloadBytes: payloadBytes,
			FullPayloads: ps.Full, DeltaPayloads: ps.Delta, SamePayloads: ps.Same,
			HeapBytes: ps.HeapBytes(), LogicalBytes: ps.LogicalBytes,
			MaxDepth:     ps.MaxDepth,
			ColdP50US:    float64(coldTm.Mean().Nanoseconds()) / 1e3,
			ColdP99US:    float64(coldTm.P99().Nanoseconds()) / 1e3,
			ColdMaxLinks: ms.DeltaChainLen.Max,
			HotMeanUS:    float64(hotTm.Mean().Nanoseconds()) / 1e3,
			HotP99US:     float64(hotTm.P99().Nanoseconds()) / 1e3,
			CacheHits:    ms.CacheHits, CacheMisses: ms.CacheMisses,
		}
		if c.mode == "full" {
			fullHeap = r.HeapBytes
			fullHotMeanUS = r.HotMeanUS
			r.SpaceReduction = 1
			r.HotVsFull = 1
		} else {
			if r.HeapBytes > 0 {
				r.SpaceReduction = float64(fullHeap) / float64(r.HeapBytes)
			}
			if fullHotMeanUS > 0 {
				r.HotVsFull = r.HotMeanUS / fullHotMeanUS
			}
		}
		results = append(results, r)
		t.AddRow(r.Mode, fmt.Sprintf("%d", r.AnchorInterval), Bytes(r.HeapBytes),
			fmt.Sprintf("%.1fx", r.SpaceReduction),
			fmt.Sprintf("%d", r.MaxDepth),
			fmt.Sprintf("%.1f/%.1f", r.ColdP50US, r.ColdP99US),
			fmt.Sprintf("%d", r.ColdMaxLinks),
			fmt.Sprintf("%.2f", r.HotMeanUS),
			fmt.Sprintf("%.2fx", r.HotVsFull))
	}

	if DeltaJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string        `json:"experiment"`
			Results    []DeltaResult `json:"results"`
		}{"E17-delta-compressed-version-storage", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(DeltaJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
