package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ode"
)

// BenchmarkConcurrentReads measures one View traversal (Versions +
// Dprev walk + History) per op, split across 1/4/16 reader goroutines,
// with and without a hot writer churning NewVersion/DeleteVersion on
// the same object. Under epoch-pinned snapshot reads the hot-writer
// numbers should track the idle ones instead of collapsing during the
// writer's commit fsync.
func BenchmarkConcurrentReads(b *testing.B) {
	for _, nReaders := range []int{1, 4, 16} {
		for _, hot := range []bool{false, true} {
			writer := "idle"
			if hot {
				writer = "hot"
			}
			b.Run(fmt.Sprintf("readers=%d/writer=%s", nReaders, writer), func(b *testing.B) {
				db, err := ode.Open(b.TempDir(), &ode.Options{})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
				if err != nil {
					b.Fatal(err)
				}
				o, err := concurrencySeed(db, ty)
				if err != nil {
					b.Fatal(err)
				}

				stop := make(chan struct{})
				var wwg sync.WaitGroup
				if hot {
					wwg.Add(1)
					go func() {
						defer wwg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							// Paced like E11: the cell measures readers not
							// blocking behind commits, not one core's
							// time-slicing against a flat-out writer.
							time.Sleep(time.Millisecond)
							err := db.Update(func(tx *ode.Tx) error {
								if _, err := tx.NewVersion(o); err != nil {
									return err
								}
								vs, err := tx.Versions(o)
								if err != nil {
									return err
								}
								if len(vs) > 16 {
									return tx.DeleteVersion(o, vs[1])
								}
								return nil
							})
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}

				b.ResetTimer()
				var next atomic.Int64
				var rwg sync.WaitGroup
				for r := 0; r < nReaders; r++ {
					rwg.Add(1)
					go func() {
						defer rwg.Done()
						for next.Add(1) <= int64(b.N) {
							err := db.View(func(tx *ode.Tx) error {
								vs, err := tx.Versions(o)
								if err != nil {
									return err
								}
								for _, v := range vs {
									if _, err := tx.Dprev(o, v); err != nil {
										return err
									}
								}
								latest, err := tx.Latest(o)
								if err != nil {
									return err
								}
								_, err = tx.History(o, latest)
								return err
							})
							if err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				rwg.Wait()
				b.StopTimer()
				close(stop)
				wwg.Wait()
			})
		}
	}
}
