package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode"
)

// GroupCommitJSONPath, when non-empty, is where E12 writes its
// machine-readable results. cmd/odebench points it at
// BENCH_groupcommit.json in the invocation directory; tests leave it
// empty so quick runs emit nothing.
var GroupCommitJSONPath = ""

// GroupCommitResult is one E12 measurement cell. The percentile columns
// come from the engine's own commit-latency histogram (db.Metrics()),
// so they are exact to within one power-of-two bucket width.
type GroupCommitResult struct {
	Committers      int     `json:"committers"`
	Mode            string  `json:"mode"` // "baseline" (NoGroupCommit) or "grouped"
	CommitsPerSec   float64 `json:"commits_per_sec"`
	Commits         int64   `json:"commits"`
	Batches         uint64  `json:"fsync_batches"`
	MeanLatencyUS   float64 `json:"mean_latency_us"`
	P50LatencyUS    float64 `json:"p50_latency_us"`
	P95LatencyUS    float64 `json:"p95_latency_us"`
	P99LatencyUS    float64 `json:"p99_latency_us"`
	Millis          int64   `json:"window_ms"`
	MeanCommitGroup float64 `json:"mean_commit_group"`
}

// usFromNS converts a nanosecond histogram quantile to microseconds.
func usFromNS(ns uint64) float64 { return float64(ns) / 1e3 }

// groupCommitCell opens a fresh store with the given options, seeds one
// object per committer (disjoint objects — the cell measures the commit
// pipeline, not version-level contention) and lets nCommitters
// goroutines commit small in-place updates back-to-back with real
// fsyncs for one wall-clock window. It returns total commits, the
// fsync-batch count, the summed per-commit latency, and the engine's
// commit-latency histogram snapshot (zero-valued under NoMetrics).
func groupCommitCell(dir string, opts *ode.Options, nCommitters int, window time.Duration) (int64, uint64, time.Duration, ode.HistSnapshot, error) {
	var hist ode.HistSnapshot
	db, err := ode.Open(dir, opts)
	if err != nil {
		return 0, 0, 0, hist, err
	}
	defer db.Close()
	ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
	if err != nil {
		return 0, 0, 0, hist, err
	}

	objs := make([]ode.OID, nCommitters)
	rng := rand.New(rand.NewSource(12))
	if err := db.Update(func(tx *ode.Tx) error {
		for i := range objs {
			p, err := ty.Create(tx, &Blob{Data: Payload(rng, 128, 0.5)})
			if err != nil {
				return err
			}
			objs[i] = p.OID()
		}
		return nil
	}); err != nil {
		return 0, 0, 0, hist, err
	}
	startBatches := db.Stats().Batches

	var (
		commits   atomic.Int64
		latencyNS atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	for i := 0; i < nCommitters; i++ {
		wg.Add(1)
		go func(o ode.OID) {
			defer wg.Done()
			payload := Payload(rand.New(rand.NewSource(int64(len(objs)))), 64, 0.5)
			for !stop.Load() {
				t0 := time.Now()
				// A small in-place update is the canonical group-commit
				// workload: almost no CPU per txn, so the commit cost IS
				// the WAL flush. It is also stationary — NewVersion would
				// grow the version index over the window and make later
				// commits dearer than earlier ones.
				err := db.Update(func(tx *ode.Tx) error {
					_, err := tx.UpdateLatestRaw(o, payload)
					return err
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
				latencyNS.Add(time.Since(t0).Nanoseconds())
				commits.Add(1)
			}
		}(objs[i])
	}
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	if firstErr != nil {
		return 0, 0, 0, hist, firstErr
	}
	hist = db.Metrics().CommitLatency
	return commits.Load(), db.Stats().Batches - startBatches,
		time.Duration(latencyNS.Load()), hist, nil
}

// E12 — group-commit throughput: synchronous commit rate as committer
// concurrency grows, grouped WAL batching versus the one-fsync-per-txn
// baseline (NoGroupCommit). With batching, concurrent committers share
// a single fsync per group, so throughput should scale well past the
// device's fsync rate while the baseline stays pinned to it. The
// 1-committer row doubles as the latency-regression check: grouping
// may add at most the configured batch delay (default 0 — the leader
// flushes immediately and batches form from natural backpressure).
func E12(root string, s Scale) (*Table, error) {
	window := time.Duration(1500/s.Factor) * time.Millisecond
	if window < 150*time.Millisecond {
		window = 150 * time.Millisecond
	}

	t := &Table{
		Title:   "E12 — Group commit: synchronous commit throughput vs committer concurrency",
		Note:    fmt.Sprintf("Each committer loops a small in-place update on its own object with real fsyncs for %v per cell (512-byte pages, checkpoints off). baseline = NoGroupCommit (one WAL fsync per txn); grouped = default pipeline (concurrent commits share one fsync). Speedup = grouped/baseline commits/s.", window),
		Headers: []string{"committers", "baseline commits/s", "grouped commits/s", "speedup", "mean group", "grouped p50/p95/p99 (µs)"},
	}

	var results []GroupCommitResult
	cell := 0
	for _, n := range []int{1, 4, 16, 64} {
		var perMode [2]GroupCommitResult
		for mi, mode := range []string{"baseline", "grouped"} {
			// Checkpoints off in both modes: a checkpoint stalls the whole
			// pipeline while it flushes the heap, and those pauses land at
			// different points per run — pure commit throughput is what
			// this experiment compares. 512-byte pages keep the physical
			// redo images small (~3.5KB per commit instead of ~27KB), so
			// the commit cost is the fsync rather than WAL write
			// bandwidth — the regime group commit exists for, and the one
			// small-object OLTP workloads actually sit in.
			opts := &ode.Options{CheckpointBytes: -1, PageSize: 512}
			if mode == "baseline" {
				opts.NoGroupCommit = true
			}
			cell++
			dir := filepath.Join(root, fmt.Sprintf("e12-%02d", cell))
			commits, batches, latency, hist, err := groupCommitCell(dir, opts, n, window)
			if err != nil {
				return nil, err
			}
			r := GroupCommitResult{
				Committers:    n,
				Mode:          mode,
				CommitsPerSec: float64(commits) / window.Seconds(),
				Commits:       commits,
				Batches:       batches,
				P50LatencyUS:  usFromNS(hist.P50()),
				P95LatencyUS:  usFromNS(hist.P95()),
				P99LatencyUS:  usFromNS(hist.P99()),
				Millis:        window.Milliseconds(),
			}
			if commits > 0 {
				r.MeanLatencyUS = float64(latency.Microseconds()) / float64(commits)
			}
			if batches > 0 {
				r.MeanCommitGroup = float64(commits) / float64(batches)
			}
			perMode[mi] = r
			results = append(results, r)
		}
		speedup := 0.0
		if perMode[0].CommitsPerSec > 0 {
			speedup = perMode[1].CommitsPerSec / perMode[0].CommitsPerSec
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", perMode[0].CommitsPerSec),
			fmt.Sprintf("%.0f", perMode[1].CommitsPerSec),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.1f", perMode[1].MeanCommitGroup),
			fmt.Sprintf("%.0f/%.0f/%.0f", perMode[1].P50LatencyUS,
				perMode[1].P95LatencyUS, perMode[1].P99LatencyUS))
	}

	if GroupCommitJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string              `json:"experiment"`
			Results    []GroupCommitResult `json:"results"`
		}{"E12-groupcommit", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(GroupCommitJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
