// Package bench implements the experiment harness behind EXPERIMENTS.md:
// workload generators, timing helpers, and the E1–E9 experiments from
// DESIGN.md §4.2. cmd/odebench runs them and prints the tables; the
// root-level bench_test.go exposes the same code paths as testing.B
// benchmarks.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Table is a simple experiment result table rendered as GitHub-flavoured
// markdown.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	b.WriteString("\n")
	return b.String()
}

// Timer measures wall-clock latency distributions.
type Timer struct {
	samples []time.Duration
}

// Time runs fn once and records its duration.
func (tm *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	tm.samples = append(tm.samples, time.Since(start))
}

// TimeN runs fn n times, recording each duration.
func (tm *Timer) TimeN(n int, fn func()) {
	for i := 0; i < n; i++ {
		tm.Time(fn)
	}
}

// Mean returns the mean sample duration.
func (tm *Timer) Mean() time.Duration {
	if len(tm.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range tm.samples {
		sum += s
	}
	return sum / time.Duration(len(tm.samples))
}

// P99 returns the 99th-percentile sample.
func (tm *Timer) P99() time.Duration {
	if len(tm.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), tm.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ns formats a duration as nanoseconds with unit.
func Ns(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2f µs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%d ns", d.Nanoseconds())
	}
}

// Bytes formats a byte count.
func Bytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Payload produces a pseudo-random payload of the given size with the
// given compressibility: redundancy 0 is uniform random bytes;
// redundancy 1 is a single repeated byte. Versioning workloads in the
// paper's CAD setting are highly redundant between versions; redundancy
// here controls *within*-payload structure.
func Payload(rng *rand.Rand, size int, redundancy float64) []byte {
	out := make([]byte, size)
	alphabet := int(1 + (1-redundancy)*255)
	if alphabet < 1 {
		alphabet = 1
	}
	for i := range out {
		out[i] = byte(rng.Intn(alphabet))
	}
	return out
}

// Edit applies nEdits random point edits (of editLen bytes each) to a
// copy of content — the "small change" between successive versions.
func Edit(rng *rand.Rand, content []byte, nEdits, editLen int) []byte {
	out := append([]byte(nil), content...)
	if len(out) == 0 {
		return out
	}
	for e := 0; e < nEdits; e++ {
		at := rng.Intn(len(out))
		for j := at; j < at+editLen && j < len(out); j++ {
			out[j] ^= byte(rng.Intn(255) + 1)
		}
	}
	return out
}
