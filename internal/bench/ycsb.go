package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ode"
	"ode/internal/workload"
)

// YCSBJSONPath, when non-empty, is where E15 writes its
// machine-readable results. cmd/odebench points it at BENCH_ycsb.json
// in the invocation directory; tests leave it empty.
var YCSBJSONPath = ""

// YCSBResult is one aggregated E15 cell: a (shape, shards,
// distribution) triple summed over its measurement windows.
type YCSBResult struct {
	Shape       string  `json:"shape"`
	Shards      int     `json:"shards"`
	Dist        string  `json:"dist"`
	Workers     int     `json:"workers"`
	Objects     int     `json:"objects"`
	Windows     int     `json:"windows"`
	Ops         int64   `json:"ops"`
	Mutations   int64   `json:"mutations"`
	Reads       int64   `json:"reads"`
	ExtentScans int64   `json:"extent_scans"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	CommitP50US float64 `json:"commit_p50_us"`
	CommitP95US float64 `json:"commit_p95_us"`
	CommitP99US float64 `json:"commit_p99_us"`
	ReadP50US   float64 `json:"read_p50_us"`
	ReadP95US   float64 `json:"read_p95_us"`
	ReadP99US   float64 `json:"read_p99_us"`
	ElapsedMS   int64   `json:"elapsed_ms"`
}

// ycsbAgg accumulates one (shape, shards, dist) cell across windows.
type ycsbAgg struct {
	r          YCSBResult
	elapsedSec float64
	commit     ode.HistSnapshot
	read       ode.HistSnapshot
}

func (a *ycsbAgg) add(res *workload.Result) {
	a.r.Windows++
	a.r.Ops += res.Ops
	a.r.Mutations += res.Mutations
	a.r.Reads += res.Reads
	a.r.ExtentScans += res.ExtentScans
	a.r.ElapsedMS += res.Elapsed.Milliseconds()
	a.elapsedSec += res.Elapsed.Seconds()
	a.commit.Merge(res.CommitLatency)
	a.read.Merge(res.ReadLatency)
}

func (a *ycsbAgg) finish() YCSBResult {
	if a.elapsedSec > 0 {
		a.r.OpsPerSec = float64(a.r.Ops) / a.elapsedSec
	}
	a.r.CommitP50US = usFromNS(a.commit.P50())
	a.r.CommitP95US = usFromNS(a.commit.P95())
	a.r.CommitP99US = usFromNS(a.commit.P99())
	a.r.ReadP50US = usFromNS(a.read.P50())
	a.r.ReadP95US = usFromNS(a.read.P95())
	a.r.ReadP99US = usFromNS(a.read.P99())
	return a.r
}

// E15 — YCSB-style versioned workload: the internal/workload harness
// (zipfian key skew, four version shapes, model-based oracle on every
// read) run as a benchmark across shard counts, ABBA-paired against a
// uniform-key control. Every window is also a correctness run: any
// oracle violation fails the experiment with its seed+trace repro.
func E15(root string, s Scale) (*Table, error) {
	workers := 8
	shardCounts := []int{1, 4, 8}
	// windowDists is the ABBA pairing: skewed/control/control/skewed,
	// each window on a fresh store with its own seed, so slow drift in
	// the host cancels out of the skew comparison.
	windowDists := []workload.KeyDist{workload.KeyZipfian, workload.KeyUniform, workload.KeyUniform, workload.KeyZipfian}
	if s.Smoke || s.Factor > 1 {
		// Smoke/quick keep the full shape matrix but shrink everything
		// else: fewer shards, one window per distribution.
		workers = 4
		shardCounts = []int{1, 4}
		windowDists = []workload.KeyDist{workload.KeyZipfian, workload.KeyUniform}
	}
	objects := s.n(2048)
	opsPerWorker := s.n(1600)

	t := &Table{
		Title: "E15 — YCSB-style versioned workload (oracle-checked)",
		Note: fmt.Sprintf("%d workers, %d objects, %d ops/worker per window; every read is validated against the in-memory reference model (internal/workload), so each cell doubles as a correctness run. zipfian windows are ABBA-paired with uniform-key controls on fresh stores; the skew ratio is zipfian/uniform throughput. commit = engine-side Update latency, read = harness-side validated View latency.",
			workers, objects, opsPerWorker),
		Headers: []string{"shape", "shards", "dist", "ops/s", "skew ratio", "commit p50/p95/p99 (µs)", "read p50/p95/p99 (µs)"},
	}

	var results []YCSBResult
	seed := int64(1500)
	cell := 0
	for _, shape := range workload.Shapes() {
		for _, shards := range shardCounts {
			aggs := map[workload.KeyDist]*ycsbAgg{}
			for _, dist := range windowDists {
				cell++
				seed++
				dir := filepath.Join(root, fmt.Sprintf("e15-%03d", cell))
				res, err := workload.Run(workload.Config{
					Seed: seed, Dir: dir, Shards: shards, Workers: workers,
					Objects: objects, OpsPerWorker: opsPerWorker,
					Shape: shape, Dist: dist,
					Options: &ode.Options{NoSync: true, CheckpointBytes: -1},
				})
				if err != nil {
					return nil, fmt.Errorf("E15 %s/%d shards/%s: %w", shape, shards, dist, err)
				}
				a := aggs[dist]
				if a == nil {
					a = &ycsbAgg{r: YCSBResult{
						Shape: string(shape), Shards: shards, Dist: string(dist),
						Workers: workers, Objects: objects,
					}}
					aggs[dist] = a
				}
				a.add(res)
			}
			zipf := aggs[workload.KeyZipfian].finish()
			uni := aggs[workload.KeyUniform].finish()
			skew := 0.0
			if uni.OpsPerSec > 0 {
				skew = zipf.OpsPerSec / uni.OpsPerSec
			}
			for _, r := range []YCSBResult{zipf, uni} {
				results = append(results, r)
				ratio := "—"
				if r.Dist == string(workload.KeyZipfian) {
					ratio = fmt.Sprintf("%.2fx", skew)
				}
				t.AddRow(r.Shape, fmt.Sprintf("%d", r.Shards), r.Dist,
					fmt.Sprintf("%.0f", r.OpsPerSec), ratio,
					fmt.Sprintf("%.0f/%.0f/%.0f", r.CommitP50US, r.CommitP95US, r.CommitP99US),
					fmt.Sprintf("%.0f/%.0f/%.0f", r.ReadP50US, r.ReadP95US, r.ReadP99US))
			}
		}
	}

	if YCSBJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string       `json:"experiment"`
			Results    []YCSBResult `json:"results"`
		}{"E15-ycsb-versioned-workload", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(YCSBJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
