package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ode"
	"ode/internal/obs"
)

// ConcurrencyJSONPath, when non-empty, is where E11 writes its
// machine-readable results. cmd/odebench points it at
// BENCH_concurrency.json in the invocation directory; tests leave it
// empty so quick runs emit nothing.
var ConcurrencyJSONPath = ""

// ConcurrencyResult is one E11 measurement cell. The reader-latency
// percentiles come from a per-cell obs histogram over individual View
// traversals (exact to within one power-of-two bucket width).
type ConcurrencyResult struct {
	Readers         int     `json:"readers"`
	Writer          string  `json:"writer"` // "idle" or "hot"
	ReaderOpsPerSec float64 `json:"reader_ops_per_sec"`
	ReaderP50US     float64 `json:"reader_p50_us"`
	ReaderP95US     float64 `json:"reader_p95_us"`
	ReaderP99US     float64 `json:"reader_p99_us"`
	WriterCommits   int64   `json:"writer_commits"`
	Millis          int64   `json:"window_ms"`
}

// concurrencySeed creates the hot object with a starting version window.
func concurrencySeed(db *ode.DB, ty *ode.Type[Blob]) (ode.OID, error) {
	var o ode.OID
	err := db.Update(func(tx *ode.Tx) error {
		p, err := ty.Create(tx, &Blob{Data: Payload(rand.New(rand.NewSource(11)), 256, 0.5)})
		if err != nil {
			return err
		}
		o = p.OID()
		for i := 0; i < 12; i++ {
			if _, err := p.NewVersion(tx); err != nil {
				return err
			}
		}
		return nil
	})
	return o, err
}

// concurrencyCell runs nReaders View-traversal loops (and, when hot, a
// writer churning NewVersion/DeleteVersion on the same object) for one
// wall-clock window. It returns total reader traversals and writer
// commits and a latency histogram over individual reader traversals.
func concurrencyCell(db *ode.DB, o ode.OID, nReaders int, hot bool, window time.Duration) (int64, int64, obs.HistSnapshot, error) {
	var (
		readerOps atomic.Int64
		commits   atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
		readerLat obs.Histogram
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}

	if hot {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Pace the writer: hundreds of synchronous commits/s is
				// already "hot" for a versioned store, and the gap keeps
				// a flat-out writer from monopolising small CPU counts —
				// the cell measures readers not blocking behind commits,
				// not time-slicing of one core.
				time.Sleep(time.Millisecond)
				err := db.Update(func(tx *ode.Tx) error {
					if _, err := tx.NewVersion(o); err != nil {
						return err
					}
					vs, err := tx.Versions(o)
					if err != nil {
						return err
					}
					if len(vs) > 16 {
						return tx.DeleteVersion(o, vs[1])
					}
					return nil
				})
				if err != nil {
					fail(fmt.Errorf("writer: %w", err))
					return
				}
				commits.Add(1)
			}
		}()
	}

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				t0 := time.Now()
				err := db.View(func(tx *ode.Tx) error {
					vs, err := tx.Versions(o)
					if err != nil {
						return err
					}
					for _, v := range vs {
						if _, err := tx.Dprev(o, v); err != nil {
							return err
						}
					}
					latest, err := tx.Latest(o)
					if err != nil {
						return err
					}
					_, err = tx.History(o, latest)
					return err
				})
				if err != nil {
					fail(fmt.Errorf("reader: %w", err))
					return
				}
				readerLat.ObserveDuration(time.Since(t0))
				readerOps.Add(1)
			}
		}()
	}

	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	return readerOps.Load(), commits.Load(), readerLat.Snapshot(), firstErr
}

// E11 — concurrent snapshot reads: View throughput while a writer
// commits (with real fsyncs). The epoch-pinned read path means readers
// never wait on the writer mutex or its commit fsync, so hot-writer
// throughput should stay within 2× of writer-idle throughput.
func E11(root string, s Scale) (*Table, error) {
	window := time.Duration(1200/s.Factor) * time.Millisecond
	if window < 100*time.Millisecond {
		window = 100 * time.Millisecond
	}

	dir := filepath.Join(root, "e11")
	// Deliberately NOT NoSync: the writer's commit fsync is the stall
	// this experiment proves readers no longer share.
	db, err := ode.Open(dir, &ode.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
	if err != nil {
		return nil, err
	}
	o, err := concurrencySeed(db, ty)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "E11 — Concurrent snapshot reads: View throughput vs a hot writer",
		Note:    fmt.Sprintf("Reader goroutines traverse Versions/Dprev/History of one object for %v per cell; the hot writer loops NewVersion+DeleteVersion with synchronous commits, paced ~1ms apart. Ratio = hot/idle reader throughput (1.0 = writers are free for readers).", window),
		Headers: []string{"readers", "idle reads/s", "hot reads/s", "hot/idle", "hot read p50/p99 (µs)", "writer commits/s"},
	}

	var results []ConcurrencyResult
	for _, nReaders := range []int{1, 4, 16} {
		var perWriter [2]float64 // idle, hot ops/sec
		var commitsPerSec float64
		var hotLat obs.HistSnapshot
		for wi, hot := range []bool{false, true} {
			ops, commits, lat, err := concurrencyCell(db, o, nReaders, hot, window)
			if err != nil {
				return nil, err
			}
			perWriter[wi] = float64(ops) / window.Seconds()
			label := "idle"
			if hot {
				label = "hot"
				commitsPerSec = float64(commits) / window.Seconds()
				hotLat = lat
			}
			results = append(results, ConcurrencyResult{
				Readers:         nReaders,
				Writer:          label,
				ReaderOpsPerSec: perWriter[wi],
				ReaderP50US:     usFromNS(lat.P50()),
				ReaderP95US:     usFromNS(lat.P95()),
				ReaderP99US:     usFromNS(lat.P99()),
				WriterCommits:   commits,
				Millis:          window.Milliseconds(),
			})
		}
		ratio := 0.0
		if perWriter[0] > 0 {
			ratio = perWriter[1] / perWriter[0]
		}
		t.AddRow(fmt.Sprintf("%d", nReaders),
			fmt.Sprintf("%.0f", perWriter[0]),
			fmt.Sprintf("%.0f", perWriter[1]),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.0f/%.0f", usFromNS(hotLat.P50()), usFromNS(hotLat.P99())),
			fmt.Sprintf("%.0f", commitsPerSec))
	}

	if ConcurrencyJSONPath != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string              `json:"experiment"`
			Results    []ConcurrencyResult `json:"results"`
		}{"E11-concurrency", results}, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(ConcurrencyJSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}
