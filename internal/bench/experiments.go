package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ode"
	"ode/internal/policy"
)

// Scale shrinks experiments for quick runs (tests) or full runs
// (cmd/odebench, EXPERIMENTS.md).
type Scale struct {
	// Factor divides iteration counts; 1 = full size.
	Factor int
	// Smoke further trims matrix dimensions (shard counts, ABBA
	// windows) in experiments that have them; `odebench -scale ci`
	// sets it for the in-CI correctness pass.
	Smoke bool
}

// Full is the EXPERIMENTS.md scale; Quick keeps CI fast; CI is the
// smoke mode `make check` runs under -race.
var (
	Full  = Scale{Factor: 1}
	Quick = Scale{Factor: 10}
	CI    = Scale{Factor: 20, Smoke: true}
)

func (s Scale) n(full int) int {
	v := full / s.Factor
	if v < 2 {
		v = 2
	}
	return v
}

// Blob is the payload type every experiment stores.
type Blob struct{ Data []byte }

// rawCodec avoids gob overhead in experiments that measure storage
// costs.
type rawCodec struct{}

func (rawCodec) Marshal(b *Blob) ([]byte, error) { return b.Data, nil }
func (rawCodec) Unmarshal(d []byte) (*Blob, error) {
	return &Blob{Data: append([]byte(nil), d...)}, nil
}

func openBench(dir string, opts *ode.Options) (*ode.DB, *ode.Type[Blob], error) {
	if opts == nil {
		opts = &ode.Options{}
	}
	opts.NoSync = true // experiments isolate CPU/structure costs
	db, err := ode.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, ty, nil
}

func dirSize(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}

// E1 — version orthogonality: unversioned objects pay nothing.
// Three modes over the same op counts: plain in-place updates on
// unversioned objects; the same after the object gained one version;
// and one newversion per update (full versioning).
func E1(root string, s Scale) (*Table, error) {
	const objSize = 1024
	nObjects := s.n(200)
	nUpdates := s.n(50)

	t := &Table{
		Title:   "E1 — Version orthogonality: cost before vs after versioning",
		Note:    fmt.Sprintf("%d objects × %d in-place updates of %d B payloads (NoSync). The paper's claim: objects that never call newversion pay nothing for the versioning machinery.", nObjects, nUpdates, objSize),
		Headers: []string{"mode", "update mean", "update p99", "db size", "versions/object"},
	}
	for _, mode := range []string{"unversioned", "versioned-once", "version-per-update"} {
		dir := filepath.Join(root, "e1-"+mode)
		db, ty, err := openBench(dir, nil)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(1))
		var ptrs []ode.Ptr[Blob]
		err = db.Update(func(tx *ode.Tx) error {
			for i := 0; i < nObjects; i++ {
				p, err := ty.Create(tx, &Blob{Data: Payload(rng, objSize, 0.5)})
				if err != nil {
					return err
				}
				if mode == "versioned-once" {
					if _, err := p.NewVersion(tx); err != nil {
						return err
					}
				}
				ptrs = append(ptrs, p)
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		var tm Timer
		for u := 0; u < nUpdates; u++ {
			err := db.Update(func(tx *ode.Tx) error {
				for _, p := range ptrs {
					content := Payload(rng, objSize, 0.5)
					tm.Time(func() {
						if mode == "version-per-update" {
							nv, err := p.NewVersion(tx)
							if err == nil {
								err = nv.Set(tx, &Blob{Data: content})
							}
							if err != nil {
								panic(err)
							}
						} else {
							if err := p.Set(tx, &Blob{Data: content}); err != nil {
								panic(err)
							}
						}
					})
				}
				return nil
			})
			if err != nil {
				db.Close()
				return nil, err
			}
		}
		var perObj uint64
		db.View(func(tx *ode.Tx) error {
			perObj, _ = ptrs[0].VersionCount(tx)
			return nil
		})
		if err := db.Close(); err != nil {
			return nil, err
		}
		t.AddRow(mode, Ns(tm.Mean()), Ns(tm.P99()), Bytes(dirSize(dir)), fmt.Sprintf("%d", perObj))
	}
	return t, nil
}

// E2 — generic vs specific dereference. The paper's design makes an oid
// bind to the latest version with a single object-table probe — no
// "generic object header" hop as in ORION/IRIS. We measure a raw
// specific deref, the generic deref, and a simulated header-hop scheme
// (one extra object dereference on the path).
func E2(root string, s Scale) (*Table, error) {
	const objSize = 512
	nObjects := s.n(500)
	nVersions := 8
	probes := s.n(20000)

	dir := filepath.Join(root, "e2")
	db, ty, err := openBench(dir, nil)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(2))
	var ptrs []ode.Ptr[Blob]
	var pinned []ode.VPtr[Blob]
	// headerObjs simulate ORION-style generic headers: an extra object
	// whose payload names the target version; a generic deref in that
	// scheme reads the header first.
	var headerObjs []ode.Ptr[Blob]
	err = db.Update(func(tx *ode.Tx) error {
		for i := 0; i < nObjects; i++ {
			p, err := ty.Create(tx, &Blob{Data: Payload(rng, objSize, 0.5)})
			if err != nil {
				return err
			}
			for v := 0; v < nVersions-1; v++ {
				if _, err := p.NewVersion(tx); err != nil {
					return err
				}
			}
			pin, err := p.Pin(tx)
			if err != nil {
				return err
			}
			h, err := ty.Create(tx, &Blob{Data: []byte(pin.String())})
			if err != nil {
				return err
			}
			ptrs = append(ptrs, p)
			pinned = append(pinned, pin)
			headerObjs = append(headerObjs, h)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "E2 — Dereference cost: generic (latest) vs specific vs header-hop baseline",
		Note:    fmt.Sprintf("%d objects × %d versions, %d B payloads, %d random derefs each (warm cache).", nObjects, nVersions, objSize, probes),
		Headers: []string{"reference kind", "mean", "p99"},
	}
	measure := func(name string, fn func(tx *ode.Tx, i int) error) error {
		var tm Timer
		err := db.View(func(tx *ode.Tx) error {
			for k := 0; k < probes; k++ {
				i := rng.Intn(nObjects)
				var err error
				tm.Time(func() { err = fn(tx, i) })
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		t.AddRow(name, Ns(tm.Mean()), Ns(tm.P99()))
		return nil
	}
	if err := measure("specific (vid)", func(tx *ode.Tx, i int) error {
		_, err := pinned[i].Deref(tx)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("generic (oid → latest)", func(tx *ode.Tx, i int) error {
		_, err := ptrs[i].Deref(tx)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("generic via header object (ORION-style)", func(tx *ode.Tx, i int) error {
		if _, err := headerObjs[i].Deref(tx); err != nil {
			return err
		}
		_, err := ptrs[i].Deref(tx)
		return err
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// E3 — delta chains vs full copies: space and materialisation latency
// across chain lengths and object sizes.
func E3(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E3 — Delta storage: space and tip-read latency vs chain length",
		Note:    "Each version applies 2 point edits of 16 B to its parent. DeltaChain uses MaxChain=16 keyframes. Space is the whole database directory.",
		Headers: []string{"object size", "versions", "policy", "db size", "bytes/version", "tip read"},
	}
	sizes := []int{1 << 10, 16 << 10}
	chains := []int{4, 32, 128}
	if s.Factor > 1 {
		chains = []int{4, 16}
	}
	for _, size := range sizes {
		for _, chainLen := range chains {
			for _, pol := range []struct {
				name string
				p    ode.StoragePolicy
			}{{"full-copy", ode.FullCopy}, {"delta-chain", ode.DeltaChain}} {
				dir := filepath.Join(root, fmt.Sprintf("e3-%d-%d-%s", size, chainLen, pol.name))
				db, ty, err := openBench(dir, &ode.Options{Policy: pol.p})
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(3))
				content := Payload(rng, size, 0.3)
				var p ode.Ptr[Blob]
				err = db.Update(func(tx *ode.Tx) error {
					var err error
					p, err = ty.Create(tx, &Blob{Data: content})
					if err != nil {
						return err
					}
					cur := content
					for i := 0; i < chainLen; i++ {
						nv, err := p.NewVersion(tx)
						if err != nil {
							return err
						}
						cur = Edit(rng, cur, 2, 16)
						if err := nv.Set(tx, &Blob{Data: cur}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					db.Close()
					return nil, err
				}
				if err := db.Checkpoint(); err != nil {
					db.Close()
					return nil, err
				}
				var tm Timer
				err = db.View(func(tx *ode.Tx) error {
					tm.TimeN(s.n(2000), func() {
						if _, err := p.Deref(tx); err != nil {
							panic(err)
						}
					})
					return nil
				})
				if err != nil {
					db.Close()
					return nil, err
				}
				if err := db.Close(); err != nil {
					return nil, err
				}
				sz := dirSize(dir)
				t.AddRow(Bytes(int64(size)), fmt.Sprintf("%d", chainLen+1), pol.name,
					Bytes(sz), Bytes(sz/int64(chainLen+1)), Ns(tm.Mean()))
			}
		}
	}
	return t, nil
}

// E4 — tree versioning vs the linear baseline: cost of starting an
// alternative from a historical version.
func E4(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E4 — Alternatives: derived-from tree vs linear model (GemStone/POSTGRES baseline)",
		Note:    "History of depth d, then one alternative derived from the midpoint version. Tree: newversion(vid), O(1). Linear: fork a new object and replay the history prefix.",
		Headers: []string{"history depth", "model", "branch latency", "extra versions", "extra db bytes"},
	}
	depths := []int{8, 64, 256}
	if s.Factor > 1 {
		depths = []int{8, 32}
	}
	const objSize = 2048
	for _, depth := range depths {
		for _, model := range []string{"tree", "linear"} {
			dir := filepath.Join(root, fmt.Sprintf("e4-%d-%s", depth, model))
			db, ty, err := openBench(dir, &ode.Options{Policy: ode.DeltaChain})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(4))
			var p ode.Ptr[Blob]
			var mid ode.VPtr[Blob]
			err = db.Update(func(tx *ode.Tx) error {
				var err error
				cur := Payload(rng, objSize, 0.3)
				p, err = ty.Create(tx, &Blob{Data: cur})
				if err != nil {
					return err
				}
				for i := 0; i < depth; i++ {
					nv, err := p.NewVersion(tx)
					if err != nil {
						return err
					}
					cur = Edit(rng, cur, 2, 16)
					if err := nv.Set(tx, &Blob{Data: cur}); err != nil {
						return err
					}
					if i == depth/2 {
						mid = nv
					}
				}
				return nil
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			if err := db.Checkpoint(); err != nil {
				db.Close()
				return nil, err
			}
			sizeBefore := dirSize(dir)
			versBefore := db.Stats().Versions

			lin := policy.NewLinear(db)
			var tm Timer
			err = db.Update(func(tx *ode.Tx) error {
				var err error
				tm.Time(func() {
					if model == "tree" {
						_, err = mid.NewVersion(tx)
					} else {
						_, _, err = lin.Branch(tx, ty.ID(), p.OID(), mid.VID())
					}
				})
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			if err := db.Checkpoint(); err != nil {
				db.Close()
				return nil, err
			}
			extraV := db.Stats().Versions - versBefore
			extraB := dirSize(dir) - sizeBefore
			if err := db.Close(); err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", depth), model, Ns(tm.Mean()),
				fmt.Sprintf("%d", extraV), Bytes(extraB))
		}
	}
	return t, nil
}

// E5 — small changes, small impact: version counts with and without the
// percolation policy.
func E5(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E5 — Percolation policy: impact of one component edit on an N-part composite design",
		Note:    "A root composite contains N parts (flat). One part gains one new version. Kernel primitives alone touch 1 object; the percolation policy (built on triggers) cascades to the composite — and in the deep variant, up a chain of C composites.",
		Headers: []string{"shape", "percolation", "versions created", "elapsed"},
	}
	type shape struct {
		name  string
		parts int
		depth int // chain of composites above the edited part
	}
	shapes := []shape{
		{"16 parts, 1 composite", 16, 1},
		{"64 parts, 1 composite", 64, 1},
		{"1 part, chain of 32 composites", 1, 32},
	}
	if s.Factor > 1 {
		shapes = shapes[:2]
	}
	for _, sh := range shapes {
		for _, perc := range []bool{false, true} {
			dir := filepath.Join(root, fmt.Sprintf("e5-%s-%v", sanitize(sh.name), perc))
			db, ty, err := openBench(dir, nil)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(5))
			var parts []ode.Ptr[Blob]
			var composites []ode.Ptr[Blob]
			err = db.Update(func(tx *ode.Tx) error {
				for i := 0; i < sh.parts; i++ {
					p, err := ty.Create(tx, &Blob{Data: Payload(rng, 256, 0.5)})
					if err != nil {
						return err
					}
					parts = append(parts, p)
				}
				for i := 0; i < sh.depth; i++ {
					c, err := ty.Create(tx, &Blob{Data: []byte("composite")})
					if err != nil {
						return err
					}
					composites = append(composites, c)
				}
				return nil
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			pc := policy.NewPercolator(db)
			// The first composite contains all parts; composites chain up.
			for _, p := range parts {
				pc.Declare(composites[0].OID(), p.OID())
			}
			for i := 1; i < len(composites); i++ {
				pc.Declare(composites[i].OID(), composites[i-1].OID())
			}
			if perc {
				pc.Enable()
			}
			before := db.Stats().Versions
			var tm Timer
			err = db.Update(func(tx *ode.Tx) error {
				var err error
				tm.Time(func() { _, err = parts[0].NewVersion(tx) })
				return err
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			if err := pc.Err(); err != nil {
				db.Close()
				return nil, err
			}
			created := db.Stats().Versions - before
			pc.Disable()
			if err := db.Close(); err != nil {
				return nil, err
			}
			mode := "off (kernel primitives)"
			if perc {
				mode = "on (trigger policy)"
			}
			t.AddRow(sh.name, mode, fmt.Sprintf("%d", created), Ns(tm.Mean()))
		}
	}
	return t, nil
}

// E6 — configurations: static vs dynamic binding resolution cost and
// behaviour after component evolution.
func E6(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E6 — Configurations: static vs dynamic binding",
		Note:    "A configuration over K components, each with 16 versions; components then evolve 1 more version. Static bindings stay on the pinned version (0 drift); dynamic bindings follow the tip (K drift).",
		Headers: []string{"K components", "binding", "resolve mean", "bindings drifted after evolution"},
	}
	ks := []int{4, 16, 64}
	if s.Factor > 1 {
		ks = []int{4, 16}
	}
	for _, k := range ks {
		dir := filepath.Join(root, fmt.Sprintf("e6-%d", k))
		db, ty, err := openBench(dir, nil)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(6))
		var comps []ode.Ptr[Blob]
		var pins []ode.VPtr[Blob]
		err = db.Update(func(tx *ode.Tx) error {
			for i := 0; i < k; i++ {
				p, err := ty.Create(tx, &Blob{Data: Payload(rng, 256, 0.5)})
				if err != nil {
					return err
				}
				for v := 0; v < 15; v++ {
					if _, err := p.NewVersion(tx); err != nil {
						return err
					}
				}
				pin, err := p.Pin(tx)
				if err != nil {
					return err
				}
				comps = append(comps, p)
				pins = append(pins, pin)
			}
			var static, dynamic []ode.Binding
			for i, p := range comps {
				slot := fmt.Sprintf("slot%03d", i)
				static = append(static, ode.Binding{Slot: slot, Obj: p.OID(), VID: pins[i].VID()})
				dynamic = append(dynamic, ode.Binding{Slot: slot, Obj: p.OID()})
			}
			if err := tx.SaveConfig("static", static); err != nil {
				return err
			}
			return tx.SaveConfig("dynamic", dynamic)
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		// Evolve every component once.
		err = db.Update(func(tx *ode.Tx) error {
			for _, p := range comps {
				if _, err := p.NewVersion(tx); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		for _, kind := range []string{"static", "dynamic"} {
			var tm Timer
			drift := 0
			err = db.View(func(tx *ode.Tx) error {
				var rs []ode.Resolved
				tm.TimeN(s.n(2000), func() {
					var err error
					rs, err = tx.ResolveConfig(kind)
					if err != nil {
						panic(err)
					}
				})
				for i, r := range rs {
					if r.VID != pins[i].VID() {
						drift++
					}
				}
				return nil
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", k), kind, Ns(tm.Mean()), fmt.Sprintf("%d/%d", drift, k))
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// E7 — trigger dispatch overhead per newversion.
func E7(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E7 — Change-notification policy: trigger dispatch overhead per newversion",
		Note:    "Cost of newversion on one object with S no-op subscribers attached (type-scoped).",
		Headers: []string{"subscribers", "newversion mean", "newversion p99"},
	}
	for _, subs := range []int{0, 1, 16, 256} {
		dir := filepath.Join(root, fmt.Sprintf("e7-%d", subs))
		db, ty, err := openBench(dir, nil)
		if err != nil {
			return nil, err
		}
		for i := 0; i < subs; i++ {
			db.OnType(ty.ID(), ode.On(ode.EvNewVersion), false, func(ode.Event) {})
		}
		var p ode.Ptr[Blob]
		err = db.Update(func(tx *ode.Tx) error {
			var err error
			p, err = ty.Create(tx, &Blob{Data: []byte("x")})
			return err
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		var tm Timer
		err = db.Update(func(tx *ode.Tx) error {
			for i := 0; i < s.n(2000); i++ {
				var err error
				tm.Time(func() { _, err = p.NewVersion(tx) })
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", subs), Ns(tm.Mean()), Ns(tm.P99()))
	}
	return t, nil
}

// E8 — historical access: as-of lookups via the temporal index vs the
// temporal-chain walk.
func E8(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E8 — Historical (as-of) access vs history length",
		Note:    "Random as-of lookups over one object's history: indexed SeekLE on the temporal index vs walking Tprev from the latest (both return the same version).",
		Headers: []string{"history length", "indexed mean", "walk mean", "walk/indexed"},
	}
	lengths := []int{16, 128, 1024}
	if s.Factor > 1 {
		lengths = []int{16, 128}
	}
	for _, n := range lengths {
		dir := filepath.Join(root, fmt.Sprintf("e8-%d", n))
		db, ty, err := openBench(dir, &ode.Options{Policy: ode.DeltaChain})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(8))
		var p ode.Ptr[Blob]
		var stamps []ode.Stamp
		err = db.Update(func(tx *ode.Tx) error {
			var err error
			p, err = ty.Create(tx, &Blob{Data: Payload(rng, 256, 0.5)})
			if err != nil {
				return err
			}
			pin, err := p.Pin(tx)
			if err != nil {
				return err
			}
			info, err := pin.Info(tx)
			if err != nil {
				return err
			}
			stamps = append(stamps, info.Stamp)
			for i := 1; i < n; i++ {
				nv, err := p.NewVersion(tx)
				if err != nil {
					return err
				}
				inf, err := nv.Info(tx)
				if err != nil {
					return err
				}
				stamps = append(stamps, inf.Stamp)
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		probes := s.n(5000)
		var tmIdx, tmWalk Timer
		err = db.View(func(tx *ode.Tx) error {
			for i := 0; i < probes; i++ {
				stamp := stamps[rng.Intn(len(stamps))]
				var vIdx, vWalk ode.VID
				var ok bool
				var err error
				tmIdx.Time(func() { vIdx, ok, err = tx.AsOf(p.OID(), stamp) })
				if err != nil || !ok {
					return fmt.Errorf("AsOf failed: %v %v", ok, err)
				}
				tmWalk.Time(func() { vWalk, ok, err = tx.AsOfWalk(p.OID(), stamp) })
				if err != nil || !ok {
					return fmt.Errorf("AsOfWalk failed: %v %v", ok, err)
				}
				if vIdx != vWalk {
					return fmt.Errorf("as-of disagreement at %v: %v vs %v", stamp, vIdx, vWalk)
				}
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		ratio := float64(tmWalk.Mean()) / float64(tmIdx.Mean())
		t.AddRow(fmt.Sprintf("%d", n), Ns(tmIdx.Mean()), Ns(tmWalk.Mean()), fmt.Sprintf("%.1f×", ratio))
	}
	return t, nil
}

// E9 — substrate soundness: WAL recovery time vs committed work, and
// extent scan vs point lookups.
func E9(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E9 — Substrate: crash-recovery time vs unchecked-pointed commits; extent scan vs point lookup",
		Note:    "Recovery replays committed page images from the WAL after a simulated crash (no checkpoint, no clean close).",
		Headers: []string{"metric", "parameter", "value"},
	}
	txns := []int{10, 100, 1000}
	if s.Factor > 1 {
		txns = []int{10, 100}
	}
	for _, n := range txns {
		dir := filepath.Join(root, fmt.Sprintf("e9-rec-%d", n))
		// Durable commits here: the crash-recovery experiment needs the
		// WAL on disk (NoSync deliberately sacrifices the newest commits).
		db, err := ode.Open(dir, &ode.Options{CheckpointBytes: -1})
		if err != nil {
			return nil, err
		}
		ty, err := ode.RegisterWithCodec[Blob](db, "Blob", rawCodec{})
		if err != nil {
			db.Close()
			return nil, err
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < n; i++ {
			if err := db.Update(func(tx *ode.Tx) error {
				_, err := ty.Create(tx, &Blob{Data: Payload(rng, 512, 0.5)})
				return err
			}); err != nil {
				db.Close()
				return nil, err
			}
		}
		walBytes := db.Stats().WALBytes
		// Simulated crash: abandon db (no Close), reopen from disk.
		start := time.Now()
		db2, err := ode.Open(dir, nil)
		if err != nil {
			return nil, err
		}
		recTime := time.Since(start)
		if got := db2.Stats().Objects; got != uint64(n) {
			db2.Close()
			return nil, fmt.Errorf("recovery lost objects: %d of %d", got, n)
		}
		db2.Close()
		t.AddRow("recovery time", fmt.Sprintf("%d txns, WAL %s", n, Bytes(walBytes)), Ns(recTime))
	}
	// Extent scan vs point lookups.
	dir := filepath.Join(root, "e9-scan")
	db, ty, err := openBench(dir, nil)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(10))
	nObjects := s.n(5000)
	var oids []ode.OID
	err = db.Update(func(tx *ode.Tx) error {
		for i := 0; i < nObjects; i++ {
			p, err := ty.Create(tx, &Blob{Data: Payload(rng, 128, 0.5)})
			if err != nil {
				return err
			}
			oids = append(oids, p.OID())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tmScan, tmPoint Timer
	err = db.View(func(tx *ode.Tx) error {
		tmScan.TimeN(5, func() {
			n := 0
			if err := tx.Extent(ty.ID(), func(ode.OID) (bool, error) { n++; return true, nil }); err != nil || n != nObjects {
				panic(fmt.Sprintf("scan: %d %v", n, err))
			}
		})
		tmPoint.TimeN(s.n(5000), func() {
			if _, err := tx.Latest(oids[rng.Intn(len(oids))]); err != nil {
				panic(err)
			}
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("extent scan", fmt.Sprintf("%d objects", nObjects), Ns(tmScan.Mean()))
	t.AddRow("point lookup (object table)", "random oid", Ns(tmPoint.Mean()))
	return t, nil
}

// E10 — ablation of the MaxChain keyframe interval, the delta policy's
// central tuning knob: longer chains save space but lengthen the
// materialisation path; MaxChain=1 degenerates to (near) full copies.
func E10(root string, s Scale) (*Table, error) {
	t := &Table{
		Title:   "E10 — Ablation: delta keyframe interval (MaxChain)",
		Note:    "One object, 128 versions of an 8 KiB payload, 2×16 B edits per version. MaxChain bounds the number of dependent links before a full keyframe.",
		Headers: []string{"MaxChain", "db size", "bytes/version", "tip read", "random version read"},
	}
	nVersions := 128
	if s.Factor > 1 {
		nVersions = 32
	}
	const objSize = 8 << 10
	for _, maxChain := range []int{1, 4, 16, 64} {
		dir := filepath.Join(root, fmt.Sprintf("e10-%d", maxChain))
		db, ty, err := openBench(dir, &ode.Options{Policy: ode.DeltaChain, MaxChain: maxChain})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(10))
		content := Payload(rng, objSize, 0.3)
		var p ode.Ptr[Blob]
		var pins []ode.VPtr[Blob]
		err = db.Update(func(tx *ode.Tx) error {
			var err error
			p, err = ty.Create(tx, &Blob{Data: content})
			if err != nil {
				return err
			}
			pin, err := p.Pin(tx)
			if err != nil {
				return err
			}
			pins = append(pins, pin)
			cur := content
			for i := 1; i < nVersions; i++ {
				nv, err := p.NewVersion(tx)
				if err != nil {
					return err
				}
				cur = Edit(rng, cur, 2, 16)
				if err := nv.Set(tx, &Blob{Data: cur}); err != nil {
					return err
				}
				pins = append(pins, nv)
			}
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Checkpoint(); err != nil {
			db.Close()
			return nil, err
		}
		var tipTm, rndTm Timer
		err = db.View(func(tx *ode.Tx) error {
			tipTm.TimeN(s.n(1000), func() {
				if _, err := p.Deref(tx); err != nil {
					panic(err)
				}
			})
			rndTm.TimeN(s.n(1000), func() {
				if _, err := pins[rng.Intn(len(pins))].Deref(tx); err != nil {
					panic(err)
				}
			})
			return nil
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := db.Close(); err != nil {
			return nil, err
		}
		sz := dirSize(dir)
		t.AddRow(fmt.Sprintf("%d", maxChain), Bytes(sz),
			Bytes(sz/int64(nVersions)), Ns(tipTm.Mean()), Ns(rndTm.Mean()))
	}
	return t, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',':
			out = append(out, '-')
		}
	}
	return string(out)
}

// Experiment is a named experiment function.
type Experiment struct {
	ID   string
	Name string
	Run  func(root string, s Scale) (*Table, error)
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "version orthogonality", E1},
		{"E2", "generic vs specific dereference", E2},
		{"E3", "delta storage", E3},
		{"E4", "tree vs linear alternatives", E4},
		{"E5", "percolation policy", E5},
		{"E6", "configurations", E6},
		{"E7", "trigger overhead", E7},
		{"E8", "as-of access", E8},
		{"E9", "substrate soundness", E9},
		{"E10", "keyframe-interval ablation", E10},
		{"E11", "concurrent snapshot reads", E11},
		{"E12", "group commit throughput", E12},
		{"E13", "observability overhead", E13},
		{"E14", "shard scaling", E14},
		{"E15", "ycsb versioned workload", E15},
		{"E16", "online rebalance impact", E16},
		{"E17", "delta-compressed version storage", E17},
		{"E18", "hot-path allocations and deref cache", E18},
	}
}
