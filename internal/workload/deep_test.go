package workload

import (
	"fmt"
	"testing"
	"time"

	"ode"
)

// TestDeepChainShape is the delta tier's workload-scale acceptance net:
// the deep shape grows a 1000+ version linear chain of small edits with
// the delta tier ON and the background compactor sweeping every 10ms,
// while every as-of probe, random-depth deref and latest read validates
// against the reference model — and a live split+merge reshard migrates
// the delta chains mid-run. Afterwards the store must reopen, pass
// integrity, show real delta compression, and hold the anchor-interval
// depth bound at the compacted fixpoint.
func TestDeepChainShape(t *testing.T) {
	const interval = 8
	opsPerWorker, wantDepth := 800, 1000
	if testing.Short() {
		opsPerWorker, wantDepth = 200, 250
	}
	cfg := Config{
		Seed:         2026,
		Dir:          t.TempDir(),
		Shards:       2,
		Workers:      4,
		Objects:      2, // zipfian funnels most traffic onto one chain
		OpsPerWorker: opsPerWorker,
		Shape:        ShapeDeep,
		PayloadBytes: 192,
		ExtentEvery:  200,
		Options: &ode.Options{
			NoSync:          true,
			DeltaTier:       true,
			AnchorInterval:  interval,
			CompactInterval: 10 * time.Millisecond,
			MatCacheBytes:   1 << 20,
		},
	}
	cfg.Mid = func(db *ode.DB) error {
		if err := db.Reshard(4); err != nil {
			return fmt.Errorf("split 2->4: %w", err)
		}
		if err := db.Reshard(2); err != nil {
			return fmt.Errorf("merge 4->2: %w", err)
		}
		return nil
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("deep run: %v", err)
	}
	if res.Mutations == 0 || res.Reads == 0 {
		t.Fatalf("degenerate run: mutations=%d reads=%d", res.Mutations, res.Reads)
	}

	// The store must stand on its own after the run: reopen (background
	// compactor off — the sweep below is explicit), check integrity, and
	// confirm the hot chain actually went deep.
	db, err := ode.Open(cfg.Dir, &ode.Options{
		DeltaTier: true, AnchorInterval: interval, CompactInterval: -1,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after deep run: %v", err)
	}
	tid, err := db.Engine().RegisterType("WorkloadBlob")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var deepest uint64
	err = db.View(func(tx *ode.Tx) error {
		return tx.Extent(tid, func(o ode.OID) (bool, error) {
			n, err := tx.VersionCount(o)
			if err != nil {
				return false, err
			}
			if n > deepest {
				deepest = n
			}
			return true, nil
		})
	})
	if err != nil {
		t.Fatalf("extent scan: %v", err)
	}
	if deepest < uint64(wantDepth) {
		t.Fatalf("hot chain only %d versions deep, want >= %d", deepest, wantDepth)
	}

	// Compact to the fixpoint: deltas must dominate a chain of small
	// edits, the depth bound must hold, and the heap must be smaller
	// than the logical payload volume.
	if _, err := db.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	ps, err := db.Engine().PayloadStats()
	if err != nil {
		t.Fatalf("payload stats: %v", err)
	}
	if ps.Delta == 0 {
		t.Fatalf("no delta payloads after a %d-deep edit chain: %+v", deepest, ps)
	}
	if ps.MaxDepth > interval {
		t.Fatalf("delta chain depth %d exceeds anchor interval %d", ps.MaxDepth, interval)
	}
	if ps.HeapBytes() >= ps.LogicalBytes {
		t.Fatalf("no space saved: heap %d >= logical %d", ps.HeapBytes(), ps.LogicalBytes)
	}
	t.Logf("deep chain: %d versions, payloads full=%d delta=%d same=%d, heap %d / logical %d bytes, max depth %d",
		deepest, ps.Full, ps.Delta, ps.Same, ps.HeapBytes(), ps.LogicalBytes, ps.MaxDepth)
}
