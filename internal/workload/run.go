package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ode"
	"ode/internal/obs"
	"ode/internal/policy"
)

// harness is one run's shared state: the store, the model, and the
// failure latch.
type harness struct {
	cfg  Config
	db   *ode.DB
	tid  ode.TypeID
	objs []*object
	// all is the sorted oid population; the object set is fixed after
	// setup (no whole-object deletes), so a concurrent extent scan has
	// an exact expected answer.
	all []ode.OID
	// nComposite partitions the churn population: model indices
	// [0, nComposite) are composites, the rest components; a component's
	// composite always has the smaller index, which fixes the lock
	// order.
	nComposite int
	perc       *policy.Percolator

	failed   atomic.Bool
	failOnce sync.Once
	firstErr error

	mutations   atomic.Int64
	reads       atomic.Int64
	extentScans atomic.Int64
	mutHist     obs.Histogram
	readHist    obs.Histogram
}

func (h *harness) fail(err error) {
	h.failOnce.Do(func() { h.firstErr = err })
	h.failed.Store(true)
}

// viof builds a Violation for ob (nil for store-global checks like the
// extent scan) at worker w's op index.
func (h *harness) viof(ob *object, w, op int, format string, args ...any) error {
	v := &Violation{
		Seed: h.cfg.Seed, Shape: h.cfg.Shape, Dist: h.cfg.Dist,
		Shards: h.cfg.Shards, Workers: h.cfg.Workers, Objects: h.cfg.Objects,
		Worker: w, Op: op, Detail: fmt.Sprintf(format, args...),
	}
	if ob != nil {
		v.OID = ob.oid
		v.Trace = append([]string(nil), ob.trace...)
	}
	return v
}

func (h *harness) payload(rng *rand.Rand) []byte {
	p := make([]byte, 8+rng.Intn(h.cfg.PayloadBytes-7))
	rng.Read(p)
	return p
}

// randStamp draws an as-of probe stamp straddling the object's whole
// stamp range (one below the first ever stamp, one past the newest).
func randStamp(rng *rand.Rand, ob *object) ode.Stamp {
	lo := int64(ob.minStamp) - 1
	if lo < 0 {
		lo = 0
	}
	hi := int64(ob.maxStamp) + 1
	return ode.Stamp(lo + rng.Int63n(hi-lo+1))
}

// Run executes one workload: open, populate, fan out the worker pool,
// validate every read against the model, and sweep the final state.
// The first oracle divergence is returned as a *Violation error.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	opts := &ode.Options{}
	if cfg.Options != nil {
		o := *cfg.Options
		opts = &o
	}
	opts.Shards = cfg.Shards
	db, err := ode.Open(cfg.Dir, opts)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("WorkloadBlob")
	if err != nil {
		return nil, err
	}

	h := &harness{cfg: cfg, db: db, tid: tid}
	if cfg.Shape == ShapeChurn {
		if cfg.Objects < 4 {
			return nil, fmt.Errorf("workload: churn needs at least 4 objects, have %d", cfg.Objects)
		}
		h.nComposite = cfg.Objects / 8
		if h.nComposite < 1 {
			h.nComposite = 1
		}
	}
	if err := h.setup(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return nil, err
	}
	if cfg.Shape == ShapeChurn {
		h.perc = policy.NewPercolator(db)
		for i := h.nComposite; i < cfg.Objects; i++ {
			h.perc.Declare(h.objs[h.compositeOf(i)].oid, h.objs[i].oid)
		}
		h.perc.Enable()
		defer h.perc.Disable()
	}
	if cfg.corrupt != nil {
		cfg.corrupt(h.objs)
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go h.worker(w, &wg, deadline)
	}
	midDone := make(chan struct{})
	if cfg.Mid != nil {
		go func() {
			defer close(midDone)
			if err := cfg.Mid(db); err != nil {
				h.fail(fmt.Errorf("workload: mid hook: %w", err))
			}
		}()
	} else {
		close(midDone)
	}
	wg.Wait()
	<-midDone
	elapsed := time.Since(start)
	if h.firstErr != nil {
		return nil, h.firstErr
	}
	if h.perc != nil {
		if err := h.perc.Err(); err != nil {
			return nil, fmt.Errorf("workload: percolation: %w", err)
		}
	}
	if err := h.finalSweep(); err != nil {
		return nil, err
	}
	if err := db.CheckIntegrity(); err != nil {
		return nil, fmt.Errorf("workload: integrity check after run: %w", err)
	}

	res := &Result{
		Shape: cfg.Shape, Dist: cfg.Dist,
		Shards: cfg.Shards, Workers: cfg.Workers, Objects: cfg.Objects,
		Seed:        cfg.Seed,
		Mutations:   h.mutations.Load(),
		Reads:       h.reads.Load(),
		ExtentScans: h.extentScans.Load(),
		Elapsed:     elapsed,
	}
	res.Ops = res.Mutations + res.Reads
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	res.CommitLatency = db.Metrics().CommitLatency
	res.MutLatency = h.mutHist.Snapshot()
	res.ReadLatency = h.readHist.Snapshot()
	if err := db.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// setup creates the object population in batches (each batch is one
// transaction whose creates round-robin across the shards) and seeds
// the model from the acked vids and stamps. Payloads are drawn before
// the closure so a cross-shard join restart cannot advance the rng.
func (h *harness) setup(rng *rand.Rand) error {
	const batch = 128
	h.objs = make([]*object, 0, h.cfg.Objects)
	for len(h.objs) < h.cfg.Objects {
		n := h.cfg.Objects - len(h.objs)
		if n > batch {
			n = batch
		}
		pays := make([][]byte, n)
		for k := range pays {
			pays[k] = h.payload(rng)
		}
		oids := make([]ode.OID, 0, n)
		vids := make([]ode.VID, 0, n)
		stamps := make([]ode.Stamp, 0, n)
		err := h.db.Update(func(tx *ode.Tx) error {
			oids, vids, stamps = oids[:0], vids[:0], stamps[:0]
			for k := range pays {
				o, v, err := tx.CreateRaw(h.tid, pays[k])
				if err != nil {
					return err
				}
				inf, err := tx.Info(o, v)
				if err != nil {
					return err
				}
				oids = append(oids, o)
				vids = append(vids, v)
				stamps = append(stamps, inf.Stamp)
			}
			return nil
		})
		if err != nil {
			return err
		}
		for k := range oids {
			ob := newObject(len(h.objs), oids[k])
			ob.applyCreate(vids[k], stamps[k], pays[k])
			ob.tracef("setup create %v root=%v stamp=%d", oids[k], vids[k], stamps[k])
			h.objs = append(h.objs, ob)
			h.all = append(h.all, oids[k])
		}
	}
	sort.Slice(h.all, func(i, j int) bool { return h.all[i] < h.all[j] })
	return nil
}

func (h *harness) compositeOf(i int) int { return (i - h.nComposite) % h.nComposite }

// pickableN is the population the key distribution draws from: churn
// picks components only (composites change via percolation).
func (h *harness) pickableN() int {
	if h.cfg.Shape == ShapeChurn {
		return h.cfg.Objects - h.nComposite
	}
	return h.cfg.Objects
}

func (h *harness) pick(rng *rand.Rand, zipf *rand.Zipf) int {
	var d int
	if zipf != nil {
		d = int(zipf.Uint64())
	} else {
		d = rng.Intn(h.pickableN())
	}
	if h.cfg.Shape == ShapeChurn {
		return h.nComposite + d
	}
	return d
}

// worker runs one goroutine's op stream. Each worker has its own rng
// (seeded from Config.Seed and the worker index), and for churn its own
// workspace plus a local pin map mirroring the workspace's context.
func (h *harness) worker(w int, wg *sync.WaitGroup, deadline time.Time) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(h.cfg.Seed*1_000_003 + int64(w) + 1))
	var zipf *rand.Zipf
	if h.cfg.Dist == KeyZipfian {
		zipf = rand.NewZipf(rng, h.cfg.ZipfS, 1, uint64(h.pickableN()-1))
	}
	var ws *policy.Workspace
	var pins map[int]ode.VID
	if h.cfg.Shape == ShapeChurn {
		ws = policy.NewWorkspace(h.db, fmt.Sprintf("w%d", w))
		pins = map[int]ode.VID{}
	}
	for op := 0; ; op++ {
		if h.failed.Load() {
			return
		}
		if h.cfg.Duration > 0 {
			if !time.Now().Before(deadline) {
				return
			}
		} else if op >= h.cfg.OpsPerWorker {
			return
		}
		if err := h.step(w, op, rng, zipf, ws, pins); err != nil {
			h.fail(err)
			return
		}
		if (op+1)%h.cfg.ExtentEvery == 0 {
			if err := h.checkExtent(w, op); err != nil {
				h.fail(err)
				return
			}
		}
	}
}

// step locks the picked object (and, for churn, its composite first —
// the composite's smaller model index fixes a global lock order) and
// runs one generator op against it.
func (h *harness) step(w, op int, rng *rand.Rand, zipf *rand.Zipf, ws *policy.Workspace, pins map[int]ode.VID) error {
	i := h.pick(rng, zipf)
	ob := h.objs[i]
	if h.cfg.Shape == ShapeChurn {
		comp := h.objs[h.compositeOf(i)]
		comp.mu.Lock()
		defer comp.mu.Unlock()
		ob.mu.Lock()
		defer ob.mu.Unlock()
		return h.churnStep(w, op, rng, ws, pins, ob, comp)
	}
	ob.mu.Lock()
	defer ob.mu.Unlock()
	switch h.cfg.Shape {
	case ShapeLinear:
		return h.linearStep(w, op, rng, ob)
	case ShapeTree:
		return h.treeStep(w, op, rng, ob)
	case ShapeDeep:
		return h.deepStep(w, op, rng, ob)
	default: // ShapeTemporal
		return h.temporalStep(w, op, rng, ob)
	}
}

// mutOp wraps one db.Update in the mutation histogram.
func (h *harness) mutOp(fn func(tx *ode.Tx) error) error {
	t0 := time.Now()
	err := h.db.Update(fn)
	h.mutHist.ObserveDuration(time.Since(t0))
	if err == nil {
		h.mutations.Add(1)
	}
	return err
}

// readOp wraps one validating db.View in the read histogram.
func (h *harness) readOp(fn func(tx *ode.Tx) error) error {
	t0 := time.Now()
	err := h.db.View(fn)
	h.readHist.ObserveDuration(time.Since(t0))
	if err == nil {
		h.reads.Add(1)
	}
	return err
}

// --- shape generators ---

// linearStep grows a linear revision chain: newversion-on-latest and
// in-place latest updates, read back through the latest/history/
// temporal surfaces.
func (h *harness) linearStep(w, op int, rng *rand.Rand, ob *object) error {
	switch roll := rng.Intn(100); {
	case roll < 25:
		return h.opNewVersion(w, op, rng, ob, ob.latest())
	case roll < 40:
		return h.opUpdateLatest(w, op, rng, ob)
	case roll < 55:
		return h.readOp(func(tx *ode.Tx) error { return h.checkLatest(tx, w, op, ob) })
	case roll < 65:
		return h.readOp(func(tx *ode.Tx) error { return h.checkVersions(tx, w, op, rng, ob) })
	case roll < 75:
		return h.readOp(func(tx *ode.Tx) error { return h.checkHistory(tx, w, op, ob, ob.latest()) })
	case roll < 85:
		return h.readOp(func(tx *ode.Tx) error { return h.checkTemporal(tx, w, op, ob) })
	case roll < 95:
		return h.readOp(func(tx *ode.Tx) error { return h.checkAsOf(tx, w, op, rng, ob) })
	default:
		return h.readOp(func(tx *ode.Tx) error { return h.checkReadVersion(tx, w, op, rng, ob) })
	}
}

// treeStep grows a wide alternative tree: derivation from random live
// bases, in-place version edits, pdelete splicing; validated through
// leaves/D-children/history.
func (h *harness) treeStep(w, op int, rng *rand.Rand, ob *object) error {
	switch roll := rng.Intn(100); {
	case roll < 15:
		return h.opNewVersion(w, op, rng, ob, ob.latest())
	case roll < 30:
		return h.opNewVersion(w, op, rng, ob, ob.randLive(rng))
	case roll < 40:
		return h.opUpdateVersion(w, op, rng, ob)
	case roll < 50:
		if len(ob.order) < 3 {
			return h.opNewVersion(w, op, rng, ob, ob.randLive(rng))
		}
		return h.opDeleteVersion(w, op, rng, ob)
	case roll < 62:
		return h.readOp(func(tx *ode.Tx) error { return h.checkGraph(tx, w, op, rng, ob) })
	case roll < 74:
		return h.readOp(func(tx *ode.Tx) error { return h.checkHistory(tx, w, op, ob, ob.randLive(rng)) })
	case roll < 84:
		return h.readOp(func(tx *ode.Tx) error { return h.checkVersions(tx, w, op, rng, ob) })
	case roll < 94:
		return h.readOp(func(tx *ode.Tx) error { return h.checkLatest(tx, w, op, ob) })
	default:
		return h.readOp(func(tx *ode.Tx) error { return h.checkAsOf(tx, w, op, rng, ob) })
	}
}

// editOf derives the next payload as a small edit of prev: a short
// random splice plus occasional growth. Deep chains built this way are
// genuinely delta-compressible, so a run with Options.DeltaTier
// exercises real demotion instead of incompressible-payload bailouts.
func (h *harness) editOf(rng *rand.Rand, prev []byte) []byte {
	if len(prev) < 16 {
		return h.payload(rng)
	}
	out := append([]byte(nil), prev...)
	off := rng.Intn(len(out))
	n := 1 + rng.Intn(8)
	if off+n > len(out) {
		n = len(out) - off
	}
	rng.Read(out[off : off+n])
	if rng.Intn(8) == 0 {
		tail := make([]byte, 4+rng.Intn(12))
		rng.Read(tail)
		out = append(out, tail...)
	}
	return out
}

// deepStep grows one very deep linear chain per object — every mutation
// is newversion-on-latest carrying a small edit of the predecessor's
// content — and reads it back through as-of probes (index and walk),
// random-depth specific-version derefs (which materialise through the
// delta chain when the tier is on), the latest surface and the full
// derivation history.
func (h *harness) deepStep(w, op int, rng *rand.Rand, ob *object) error {
	switch roll := rng.Intn(100); {
	case roll < 55:
		p := h.editOf(rng, ob.content[ob.latest()])
		return h.opNewVersionP(w, op, p, ob, ob.latest())
	case roll < 70:
		return h.readOp(func(tx *ode.Tx) error { return h.checkAsOf(tx, w, op, rng, ob) })
	case roll < 82:
		return h.readOp(func(tx *ode.Tx) error { return h.checkReadVersion(tx, w, op, rng, ob) })
	case roll < 92:
		return h.readOp(func(tx *ode.Tx) error { return h.checkLatest(tx, w, op, ob) })
	default:
		return h.readOp(func(tx *ode.Tx) error { return h.checkHistory(tx, w, op, ob, ob.latest()) })
	}
}

// temporalStep grows chains and reads them back as of random pinned
// stamps, cross-checking the temporal index against the Tprevious walk.
func (h *harness) temporalStep(w, op int, rng *rand.Rand, ob *object) error {
	switch roll := rng.Intn(100); {
	case roll < 30:
		return h.opNewVersion(w, op, rng, ob, ob.latest())
	case roll < 40:
		return h.opUpdateLatest(w, op, rng, ob)
	case roll < 65:
		return h.readOp(func(tx *ode.Tx) error { return h.checkAsOf(tx, w, op, rng, ob) })
	case roll < 80:
		return h.readOp(func(tx *ode.Tx) error { return h.checkTemporal(tx, w, op, ob) })
	case roll < 90:
		return h.readOp(func(tx *ode.Tx) error { return h.checkVersions(tx, w, op, rng, ob) })
	default:
		return h.readOp(func(tx *ode.Tx) error { return h.checkLatest(tx, w, op, ob) })
	}
}
