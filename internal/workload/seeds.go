package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSeeds parses a comma-separated seed list as found in the
// ODE_SOAK_SEEDS environment variable ("1,2,3,17", whitespace around
// entries allowed). An empty (or all-whitespace) input returns nil so
// the caller can apply its default; anything else must be a list of
// valid integers — an empty entry or a non-integer is an error naming
// the offending entry, never a silent skip.
func ParseSeeds(env string) ([]int64, error) {
	if strings.TrimSpace(env) == "" {
		return nil, nil
	}
	parts := strings.Split(env, ",")
	seeds := make([]int64, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("workload: seed list %q: entry %d is empty", env, i+1)
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: seed list %q: entry %d (%q) is not an integer", env, i+1, part)
		}
		seeds = append(seeds, n)
	}
	return seeds, nil
}
