package workload

import (
	"errors"
	"math/rand"
	"testing"

	"ode"
	"ode/internal/policy"
)

// buildOracle opens a real single-shard store, creates a small
// population, and grows object 0 into a fork (root with two children,
// one grandchild) so every traversal surface has structure to disagree
// about.
func buildOracle(t *testing.T) *harness {
	t.Helper()
	cfg := Config{
		Seed: 5, Dir: t.TempDir(), Objects: 4, OpsPerWorker: 1,
		Shape: ShapeTree, Options: &ode.Options{NoSync: true},
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	db, err := ode.Open(cfg.Dir, &ode.Options{NoSync: true, Shards: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	tid, err := db.Engine().RegisterType("WorkloadBlob")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	h := &harness{cfg: cfg, db: db, tid: tid}
	if err := h.setup(rand.New(rand.NewSource(cfg.Seed))); err != nil {
		t.Fatalf("setup: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	ob := h.objs[0]
	root := ob.latest()
	if err := h.opNewVersion(0, 0, rng, ob, root); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := h.opNewVersion(0, 1, rng, ob, root); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := h.opNewVersion(0, 2, rng, ob, ob.latest()); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if err := h.opUpdateLatest(0, 3, rng, ob); err != nil {
		t.Fatalf("grow: %v", err)
	}
	return h
}

// cloneObject deep-copies a model object so a subtest can corrupt it
// without poisoning the shared harness.
func cloneObject(ob *object) *object {
	cp := newObject(ob.idx, ob.oid)
	cp.order = append([]ode.VID(nil), ob.order...)
	for k, v := range ob.stamp {
		cp.stamp[k] = v
	}
	for k, v := range ob.content {
		cp.content[k] = append([]byte(nil), v...)
	}
	for k, v := range ob.dprev {
		cp.dprev[k] = v
	}
	cp.minStamp, cp.maxStamp = ob.minStamp, ob.maxStamp
	cp.trace = append([]string(nil), ob.trace...)
	return cp
}

const bogusVID = ode.VID(1 << 40)

// TestOracleRejectsEachSurface corrupts one model fact at a time and
// asserts the corresponding read check reports a Violation against the
// real (uncorrupted) store.
func TestOracleRejectsEachSurface(t *testing.T) {
	h := buildOracle(t)
	rng := rand.New(rand.NewSource(99))
	cases := []struct {
		name    string
		corrupt func(ob *object)
		check   func(tx *ode.Tx, ob *object) error
	}{
		{"latest vid", func(ob *object) { ob.order = append(ob.order, bogusVID) },
			func(tx *ode.Tx, ob *object) error { return h.checkLatest(tx, 0, 0, ob) }},
		{"latest content", func(ob *object) { ob.content[ob.latest()] = []byte("drift") },
			func(tx *ode.Tx, ob *object) error { return h.checkLatest(tx, 0, 0, ob) }},
		{"version count", func(ob *object) { ob.order = append([]ode.VID{bogusVID}, ob.order...) },
			func(tx *ode.Tx, ob *object) error { return h.checkLatest(tx, 0, 0, ob) }},
		{"versions order", func(ob *object) { ob.order[0], ob.order[1] = ob.order[1], ob.order[0] },
			func(tx *ode.Tx, ob *object) error { return h.checkVersions(tx, 0, 0, rng, ob) }},
		{"stamps", func(ob *object) {
			for v := range ob.stamp {
				ob.stamp[v] += 1 << 20
			}
		}, func(tx *ode.Tx, ob *object) error { return h.checkVersions(tx, 0, 0, rng, ob) }},
		{"contents", func(ob *object) {
			for v := range ob.content {
				ob.content[v] = []byte("drift")
			}
		}, func(tx *ode.Tx, ob *object) error { return h.checkReadVersion(tx, 0, 0, rng, ob) }},
		{"history", func(ob *object) { ob.dprev[ob.latest()] = bogusVID },
			func(tx *ode.Tx, ob *object) error { return h.checkHistory(tx, 0, 0, ob, ob.latest()) }},
		{"temporal chain", func(ob *object) { ob.order = ob.order[1:] },
			func(tx *ode.Tx, ob *object) error { return h.checkTemporal(tx, 0, 0, ob) }},
		{"temporal order", func(ob *object) { ob.order[0], ob.order[1] = ob.order[1], ob.order[0] },
			func(tx *ode.Tx, ob *object) error { return h.checkTemporal(tx, 0, 0, ob) }},
		{"as-of", func(ob *object) {
			// A model claiming a single ancient bogus version disagrees
			// with the store at every probe stamp: below the real range
			// the store misses while the model answers, at or above it
			// the store answers a real vid.
			ob.order = []ode.VID{bogusVID}
			ob.stamp = map[ode.VID]ode.Stamp{bogusVID: 0}
		}, func(tx *ode.Tx, ob *object) error { return h.checkAsOf(tx, 0, 0, rng, ob) }},
		{"leaves", func(ob *object) { ob.dprev[bogusVID] = ob.latest() },
			func(tx *ode.Tx, ob *object) error { return h.checkGraph(tx, 0, 0, rng, ob) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ob := cloneObject(h.objs[0])
			tc.corrupt(ob)
			err := h.db.View(func(tx *ode.Tx) error { return tc.check(tx, ob) })
			var vio *Violation
			if !errors.As(err, &vio) {
				t.Fatalf("corrupted model not rejected: %v", err)
			}
			if vio.OID != ob.oid {
				t.Fatalf("violation names %v, want %v", vio.OID, ob.oid)
			}
		})
	}
}

// TestOracleRejectsMutationDrift corrupts the model's notion of the
// latest version and asserts the mutation-side link validations fire.
func TestOracleRejectsMutationDrift(t *testing.T) {
	h := buildOracle(t)
	rng := rand.New(rand.NewSource(100))

	t.Run("newversion tprev", func(t *testing.T) {
		ob := cloneObject(h.objs[1])
		base := ob.latest()
		ob.order = append(ob.order, bogusVID) // model now believes a phantom latest
		err := h.opNewVersion(0, 0, rng, ob, base)
		var vio *Violation
		if !errors.As(err, &vio) {
			t.Fatalf("tprev drift not rejected: %v", err)
		}
	})
	t.Run("update latest vid", func(t *testing.T) {
		ob := cloneObject(h.objs[2])
		ob.order = append(ob.order, bogusVID)
		err := h.opUpdateLatest(0, 0, rng, ob)
		var vio *Violation
		if !errors.As(err, &vio) {
			t.Fatalf("latest drift not rejected: %v", err)
		}
	})
}

// TestOracleRejectsExtentDrift corrupts the expected population and
// asserts the extent check fires on count and on order.
func TestOracleRejectsExtentDrift(t *testing.T) {
	h := buildOracle(t)
	real := h.all

	h.all = append(append([]ode.OID(nil), real...), ode.OID(1<<50))
	var vio *Violation
	if err := h.checkExtent(0, 0); !errors.As(err, &vio) {
		t.Fatalf("extent count drift not rejected: %v", err)
	}
	h.all = append([]ode.OID(nil), real...)
	h.all[0], h.all[1] = h.all[1], h.all[0]
	if err := h.checkExtent(0, 0); !errors.As(err, &vio) {
		t.Fatalf("extent order drift not rejected: %v", err)
	}
	h.all = real
	if err := h.checkExtent(0, 0); err != nil {
		t.Fatalf("clean extent rejected: %v", err)
	}
}

// TestOracleRejectsFinalSweepDrift corrupts per-version facts only the
// full end-of-run sweep examines.
func TestOracleRejectsFinalSweepDrift(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(ob *object)
	}{
		{"root content", func(ob *object) { ob.content[ob.order[0]] = []byte("drift") }},
		{"leaves", func(ob *object) { ob.dprev[bogusVID] = ob.latest() }},
		{"versions", func(ob *object) { ob.order[0], ob.order[1] = ob.order[1], ob.order[0] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := buildOracle(t)
			tc.corrupt(h.objs[0])
			var vio *Violation
			if err := h.finalSweep(); !errors.As(err, &vio) {
				t.Fatalf("sweep accepted corrupted model: %v", err)
			}
		})
	}
}

// TestOracleRejectsWorkspaceDrift checks the churn-side read check
// against a corrupted pin expectation.
func TestOracleRejectsWorkspaceDrift(t *testing.T) {
	h := buildOracle(t)
	ws := policy.NewWorkspace(h.db, "unit")
	ob := cloneObject(h.objs[3])
	pins := map[int]ode.VID{ob.idx: bogusVID} // model believes a phantom checkout
	err := h.db.View(func(tx *ode.Tx) error { return h.checkWsRead(tx, 0, 0, ws, pins, ob) })
	var vio *Violation
	if !errors.As(err, &vio) {
		t.Fatalf("phantom pin not rejected: %v", err)
	}
	// And the clean path: no pin means the workspace reads the latest.
	err = h.db.View(func(tx *ode.Tx) error { return h.checkWsRead(tx, 0, 0, ws, map[int]ode.VID{}, ob) })
	if err != nil {
		t.Fatalf("clean ws read rejected: %v", err)
	}
}

// TestRandStampClampsAtZero covers the probe's low-edge clamp.
func TestRandStampClampsAtZero(t *testing.T) {
	ob := newObject(0, ode.OID(1))
	ob.maxStamp = 3 // minStamp left at 0: lo would underflow without the clamp
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 32; i++ {
		if s := randStamp(rng, ob); s > 4 {
			t.Fatalf("stamp %d out of range", s)
		}
	}
}
