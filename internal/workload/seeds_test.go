package workload

import (
	"strings"
	"testing"
)

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in      string
		want    []int64
		wantErr string
	}{
		{in: "", want: nil},
		{in: "   \t ", want: nil},
		{in: "1,2,3,17", want: []int64{1, 2, 3, 17}},
		{in: " 1 ,\t2 , 3 ", want: []int64{1, 2, 3}},
		{in: "-5, 0, 9223372036854775807", want: []int64{-5, 0, 9223372036854775807}},
		{in: "42", want: []int64{42}},
		{in: "1,,3", wantErr: "entry 2 is empty"},
		{in: "1,2,", wantErr: "entry 3 is empty"},
		{in: ",1", wantErr: "entry 1 is empty"},
		{in: "1,two,3", wantErr: `entry 2 ("two") is not an integer`},
		{in: "1.5", wantErr: "is not an integer"},
		{in: "0x10", wantErr: "is not an integer"},
		{in: "9223372036854775808", wantErr: "is not an integer"},
	}
	for _, c := range cases {
		got, err := ParseSeeds(c.in)
		if c.wantErr != "" {
			if err == nil {
				t.Errorf("ParseSeeds(%q) = %v, want error containing %q", c.in, got, c.wantErr)
			} else if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSeeds(%q) error %q, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSeeds(%q): unexpected error %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSeeds(%q)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}
