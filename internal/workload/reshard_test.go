package workload

import (
	"fmt"
	"testing"

	"ode"
)

// TestShapesDuringLiveReshard is the online-resharding acceptance net:
// every shape runs its full oracle-checked op mix with ZERO violations
// while the store live-splits 4 → 8 and then live-merges 8 → 4
// underneath it. The Mid hook races the two reshards against the worker
// pool; in-flight transactions restart transparently when a chunk's
// routing flip commits under them, and every read keeps validating
// against the in-memory model throughout.
func TestShapesDuringLiveReshard(t *testing.T) {
	if testing.Short() {
		t.Skip("live reshard soak skipped in -short")
	}
	for _, shape := range Shapes() {
		shape := shape
		t.Run(string(shape), func(t *testing.T) {
			t.Parallel()
			cfg := tinyCfg(t, shape, 4, 1307)
			cfg.Objects = 48
			cfg.OpsPerWorker = 400
			var split, merge ode.ReshardProgress
			cfg.Mid = func(db *ode.DB) error {
				if err := db.Reshard(8); err != nil {
					return fmt.Errorf("split 4->8: %w", err)
				}
				split = db.ReshardProgress()
				if err := db.Reshard(4); err != nil {
					return fmt.Errorf("merge 8->4: %w", err)
				}
				merge = db.ReshardProgress()
				return nil
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("run with live reshard: %v", err)
			}
			if res.Mutations == 0 || res.Reads == 0 {
				t.Fatalf("degenerate run: mutations=%d reads=%d", res.Mutations, res.Reads)
			}
			// The split must have moved real data (half of each of the 4
			// original shards' populations heads to the new partners) and
			// the merge must have emptied the four top shards again.
			if split.Chunks == 0 || split.Objects == 0 {
				t.Fatalf("split moved nothing: %+v", split)
			}
			if merge.Chunks == 0 || merge.Objects == 0 {
				t.Fatalf("merge moved nothing: %+v", merge)
			}
			t.Logf("split: %d chunks, %d objects, %d versions; merge: %d chunks, %d objects, %d versions",
				split.Chunks, split.Objects, split.Versions,
				merge.Chunks, merge.Objects, merge.Versions)
		})
	}
}

// TestReshardedStoreReopens proves the post-reshard store stands on its
// own: after a live split+merge run, reopening the directory recovers
// cleanly and passes a full integrity check.
func TestReshardedStoreReopens(t *testing.T) {
	cfg := tinyCfg(t, ShapeLinear, 4, 99)
	cfg.Mid = func(db *ode.DB) error {
		if err := db.Reshard(8); err != nil {
			return err
		}
		return db.Reshard(4)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	db, err := ode.Open(cfg.Dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	if got := db.Shards(); got != 4 {
		t.Fatalf("reopened with %d logical shards, want 4", got)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
}
