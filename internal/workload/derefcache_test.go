package workload

import (
	"bytes"
	"fmt"
	"testing"

	"ode"
)

// TestDerefCacheNeverStaleAcrossReshard is the dereference cache's
// correctness net: the deep shape's full oracle-checked op mix (every
// read validated against the in-memory model) runs with a deliberately
// tiny cache budget — maximising put/evict/re-fill churn — while the
// store live-splits 4 → 8 and merges back underneath the workers. Any
// stale cached latest (wrong content, wrong vid, or pre-reshard
// placement served after a routing flip) is an oracle violation with a
// repro recipe. The run must also actually exercise the cache: zero
// hits would mean the test proved nothing.
func TestDerefCacheNeverStaleAcrossReshard(t *testing.T) {
	if testing.Short() {
		t.Skip("deref cache reshard soak skipped in -short")
	}
	cfg := tinyCfg(t, ShapeDeep, 4, 4711)
	cfg.Objects = 48
	cfg.OpsPerWorker = 400
	// ~8 KiB spread over the cache's buckets: a handful of entries per
	// bucket, so eviction and re-fill run constantly under the workers.
	cfg.Options = &ode.Options{NoSync: true, DerefCacheBytes: 8 << 10}
	var hits, misses uint64
	cfg.Mid = func(db *ode.DB) error {
		if err := db.Reshard(8); err != nil {
			return fmt.Errorf("split 4->8: %w", err)
		}
		if err := db.Reshard(4); err != nil {
			return fmt.Errorf("merge 8->4: %w", err)
		}
		// Post-reshard double-read probe: within one snapshot, the second
		// read of each object must be a cache hit serving exactly the
		// bytes and vid the first (cache-filling) read returned — read
		// directly against the just-moved placements, while the workers
		// keep mutating at later epochs.
		tid, err := db.Engine().RegisterType("WorkloadBlob")
		if err != nil {
			return err
		}
		if err := db.View(func(tx *ode.Tx) error {
			var oids []ode.OID
			if err := tx.Extent(tid, func(o ode.OID) (bool, error) {
				oids = append(oids, o)
				return true, nil
			}); err != nil {
				return err
			}
			for _, o := range oids {
				c1, v1, err := tx.ReadLatestRaw(o)
				if err != nil {
					return err
				}
				c2, v2, err := tx.ReadLatestRaw(o)
				if err != nil {
					return err
				}
				if v1 != v2 || !bytes.Equal(c1, c2) {
					return fmt.Errorf("cached re-read of %v diverged: (%v, %d bytes) then (%v, %d bytes)",
						o, v1, len(c1), v2, len(c2))
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("post-reshard probe: %w", err)
		}
		st := db.Stats()
		hits, misses = st.DerefCacheHits, st.DerefCacheMisses
		return nil
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run with live reshard and tiny deref cache: %v", err)
	}
	if res.Mutations == 0 || res.Reads == 0 {
		t.Fatalf("degenerate run: mutations=%d reads=%d", res.Mutations, res.Reads)
	}
	if hits == 0 {
		t.Fatalf("deref cache recorded no hits mid-run (%d misses): the net caught nothing", misses)
	}
	t.Logf("reads=%d mutations=%d; deref cache mid-run: %d hits, %d misses",
		res.Reads, res.Mutations, hits, misses)
}

// TestDerefCacheDisabledMatchesOracle pins the off switch: a negative
// budget must run the identical workload straight against the engine
// with the cache fully disabled.
func TestDerefCacheDisabledMatchesOracle(t *testing.T) {
	cfg := tinyCfg(t, ShapeChurn, 1, 4712)
	cfg.Options = &ode.Options{NoSync: true, DerefCacheBytes: -1}
	var hits, misses uint64
	cfg.Mid = func(db *ode.DB) error {
		st := db.Stats()
		hits, misses = st.DerefCacheHits, st.DerefCacheMisses
		return nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("run with deref cache disabled: %v", err)
	}
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %d hits, %d misses", hits, misses)
	}
}
