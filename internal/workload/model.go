package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ode"
)

// traceCap bounds the per-object op-trace ring kept for violation
// repros.
const traceCap = 48

// object is the reference model of one versioned object: the live
// version set in temporal order, each version's expected content, stamp
// and derived-from parent. It replicates the kernel semantics of
// internal/core exactly:
//
//   - newversion(base) appends the new version at the temporal maximum
//     (tprev = old latest regardless of base) with content identical to
//     base;
//   - pdelete(vid) splices: D-children re-parent onto the deleted
//     version's Dprev, the temporal chain closes over the hole, and the
//     object id re-binds to the temporal predecessor when the latest
//     dies;
//   - as-of(s) answers with the live version of largest stamp ≤ s.
//
// The mutex is the oracle's consistency protocol (see the package
// comment): held by the owning worker across mutation+mirror and across
// each validated read.
type object struct {
	mu  sync.Mutex
	idx int
	oid ode.OID

	order   []ode.VID             // live versions, temporal (stamp) order
	stamp   map[ode.VID]ode.Stamp // creation stamp per live version
	content map[ode.VID][]byte    // expected payload per live version
	dprev   map[ode.VID]ode.VID   // derived-from parent (0 = root)

	// minStamp/maxStamp track the stamp range ever observed (including
	// deleted versions) so as-of probes can straddle both edges.
	minStamp, maxStamp ode.Stamp

	trace  []string
	traceN int
}

func newObject(idx int, o ode.OID) *object {
	return &object{
		idx:     idx,
		oid:     o,
		stamp:   map[ode.VID]ode.Stamp{},
		content: map[ode.VID][]byte{},
		dprev:   map[ode.VID]ode.VID{},
	}
}

// tracef appends one line to the object's bounded op trace.
func (ob *object) tracef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if len(ob.trace) == traceCap {
		copy(ob.trace, ob.trace[1:])
		ob.trace[traceCap-1] = line
	} else {
		ob.trace = append(ob.trace, line)
	}
	ob.traceN++
}

func (ob *object) latest() ode.VID { return ob.order[len(ob.order)-1] }

// randLive returns a uniformly random live version.
func (ob *object) randLive(rng *rand.Rand) ode.VID {
	return ob.order[rng.Intn(len(ob.order))]
}

func (ob *object) noteStamp(s ode.Stamp) {
	if ob.minStamp == 0 || s < ob.minStamp {
		ob.minStamp = s
	}
	if s > ob.maxStamp {
		ob.maxStamp = s
	}
}

// applyCreate mirrors the root version made by Create.
func (ob *object) applyCreate(v ode.VID, s ode.Stamp, content []byte) {
	ob.order = append(ob.order, v)
	ob.stamp[v] = s
	ob.content[v] = content
	ob.dprev[v] = 0
	ob.noteStamp(s)
}

// applyNewVersion mirrors newversion(base): the new version is always
// the temporal maximum and starts with content identical to its base.
func (ob *object) applyNewVersion(base, v ode.VID, s ode.Stamp) {
	ob.order = append(ob.order, v)
	ob.stamp[v] = s
	ob.content[v] = append([]byte(nil), ob.content[base]...)
	ob.dprev[v] = base
	ob.noteStamp(s)
}

// applyUpdate mirrors an in-place content overwrite of one version.
func (ob *object) applyUpdate(v ode.VID, content []byte) {
	ob.content[v] = content
}

// applyDelete mirrors pdelete(vid): children re-parent onto the deleted
// version's parent and the version leaves the temporal order (the
// harness never deletes the last version, which would delete the
// object).
func (ob *object) applyDelete(v ode.VID) {
	parent := ob.dprev[v]
	for c, p := range ob.dprev {
		if p == v {
			ob.dprev[c] = parent
		}
	}
	for i, x := range ob.order {
		if x == v {
			ob.order = append(ob.order[:i], ob.order[i+1:]...)
			break
		}
	}
	delete(ob.stamp, v)
	delete(ob.content, v)
	delete(ob.dprev, v)
}

// expectAsOf answers as-of(s) from the model: the live version with the
// largest stamp ≤ s. order is stamp-ascending, so scan from the tail.
func (ob *object) expectAsOf(s ode.Stamp) (ode.VID, bool) {
	for i := len(ob.order) - 1; i >= 0; i-- {
		if ob.stamp[ob.order[i]] <= s {
			return ob.order[i], true
		}
	}
	return 0, false
}

// expectHistory is the derivation chain from v back to the root, v
// first.
func (ob *object) expectHistory(v ode.VID) []ode.VID {
	var out []ode.VID
	for v != 0 {
		out = append(out, v)
		v = ob.dprev[v]
	}
	return out
}

// expectDChildren lists the live versions directly derived from v, in
// vid order (the kernel scans the version index, which is vid-sorted).
func (ob *object) expectDChildren(v ode.VID) []ode.VID {
	var out []ode.VID
	for c, p := range ob.dprev {
		if p == v {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// expectLeaves lists the live versions with no D-children, in vid order.
func (ob *object) expectLeaves() []ode.VID {
	hasChild := map[ode.VID]bool{}
	for _, p := range ob.dprev {
		if p != 0 {
			hasChild[p] = true
		}
	}
	var out []ode.VID
	for _, v := range ob.order {
		if !hasChild[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// eqVIDs reports slice equality.
func eqVIDs(a, b []ode.VID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
