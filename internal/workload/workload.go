// Package workload is the YCSB-style versioned-workload harness with a
// model-based oracle (DESIGN.md §13, odebench E15).
//
// A Run drives a configurable pool of workers against a sharded store.
// A seed-driven generator picks objects under zipfian (or uniform) key
// skew and applies one of four version shapes — long linear revision
// chains, wide alternative trees, as-of temporal walks, or
// checkout/checkin + percolation churn. Every committed mutation is
// mirrored into an in-memory reference model, and every read (Deref,
// latest, as-of, history, leaves, Extent) is validated against the
// model's expected version-graph state.
//
// The oracle's consistency protocol: each model object carries a mutex
// that the owning worker holds across the db.Update AND the model
// mirror, and again across the db.View that validates a read. Because
// the engine's Update returns only after the commit's epoch is
// published, the snapshot a subsequent View pins provably contains
// exactly the mirrored commits for that object — the model state at the
// pinned epoch. Zipfian skew still produces real contention: workers
// collide on shard writer mutexes, group-commit batches and cross-shard
// 2PC, just not on the same model object mid-mirror.
//
// A violation does not merely fail: it carries the seed, the full
// generator configuration and the object's recent op trace, so the
// failure is a minimal repro recipe.
package workload

import (
	"fmt"
	"strings"
	"time"

	"ode"
)

// Shape selects the version-graph shape a run grows.
type Shape string

const (
	// ShapeLinear grows long linear revision chains: newversion on the
	// latest plus in-place updates, read back through latest/history.
	ShapeLinear Shape = "linear"
	// ShapeTree grows wide alternative trees: newversion from random
	// live bases, in-place version updates and pdelete splicing,
	// validated through leaves/D-children/history.
	ShapeTree Shape = "tree"
	// ShapeTemporal grows chains and reads them back through as-of
	// lookups (index and Tprevious walk) at random pinned stamps.
	ShapeTemporal Shape = "temporal"
	// ShapeChurn drives checkout/checkin/abandon through the workspace
	// policy with the percolation policy cascading component versions
	// into per-group composites.
	ShapeChurn Shape = "churn"
	// ShapeDeep grows very deep linear chains whose payloads are small
	// edits of their predecessor (so the delta tier can actually
	// compress them), read back through as-of walks and random-depth
	// derefs — the shape the delta storage tier is proven against.
	ShapeDeep Shape = "deep"
)

// Shapes lists every shape in a stable order.
func Shapes() []Shape {
	return []Shape{ShapeLinear, ShapeTree, ShapeTemporal, ShapeChurn, ShapeDeep}
}

// KeyDist selects how workers pick objects.
type KeyDist string

const (
	// KeyZipfian skews traffic onto a small hot set (YCSB's default).
	KeyZipfian KeyDist = "zipfian"
	// KeyUniform is the unskewed control the benchmark pairs against.
	KeyUniform KeyDist = "uniform"
)

// Config parameterises one Run. The zero value is not runnable; Seed,
// Dir, Shape and the sizing fields must be set (withDefaults fills the
// rest).
type Config struct {
	// Seed drives every generator decision. With one worker a run
	// replays exactly; with many, the seed still pins each worker's rng
	// (op choices also observe model state, so the concurrent mix
	// depends on interleaving).
	Seed int64
	// Dir is the database directory (created by Run).
	Dir string
	// Shards is the store's shard count (1 = legacy layout).
	Shards int
	// Workers is the worker-pool size.
	Workers int
	// Objects is the object population created at setup.
	Objects int
	// OpsPerWorker bounds the run by op count (ignored when Duration is
	// set).
	OpsPerWorker int
	// Duration bounds the run by wall clock instead of op count.
	Duration time.Duration
	// Shape is the version-graph shape to grow.
	Shape Shape
	// Dist is the key distribution (default zipfian).
	Dist KeyDist
	// ZipfS is the zipfian skew exponent (default 1.4; must be > 1).
	ZipfS float64
	// PayloadBytes bounds version payload sizes (default 96).
	PayloadBytes int
	// ExtentEvery runs a full extent validation every N ops per worker
	// (default 64).
	ExtentEvery int
	// Options are extra open options (e.g. NoSync for benchmarks).
	// Shards is overridden from Config.Shards.
	Options *ode.Options

	// Mid, when set, runs on its own goroutine concurrently with the
	// worker pool — the hook the live-reshard tests use to split or
	// merge the store under traffic. Run waits for it after the workers
	// finish; a non-nil error fails the run like an oracle violation.
	Mid func(db *ode.DB) error

	// corrupt, when set, is invoked on the model after setup — the test
	// hook that proves the oracle actually catches divergence.
	corrupt func(objs []*object)
}

func (c Config) withDefaults() (Config, error) {
	if c.Dir == "" {
		return c, fmt.Errorf("workload: Config.Dir is required")
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Objects < 2 {
		return c, fmt.Errorf("workload: need at least 2 objects, have %d", c.Objects)
	}
	if c.OpsPerWorker < 1 && c.Duration <= 0 {
		return c, fmt.Errorf("workload: one of OpsPerWorker or Duration is required")
	}
	switch c.Shape {
	case ShapeLinear, ShapeTree, ShapeTemporal, ShapeChurn, ShapeDeep:
	default:
		return c, fmt.Errorf("workload: unknown shape %q", c.Shape)
	}
	if c.Dist == "" {
		c.Dist = KeyZipfian
	}
	if c.Dist != KeyZipfian && c.Dist != KeyUniform {
		return c, fmt.Errorf("workload: unknown key distribution %q", c.Dist)
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	if c.PayloadBytes < 8 {
		c.PayloadBytes = 96
	}
	if c.ExtentEvery < 1 {
		c.ExtentEvery = 64
	}
	return c, nil
}

// Result summarises a completed run.
type Result struct {
	Shape   Shape
	Dist    KeyDist
	Shards  int
	Workers int
	Objects int
	Seed    int64

	// Ops is the total generator steps; every step is one mutation or
	// one validated read. Mutations + Reads == Ops.
	Ops       int64
	Mutations int64
	Reads     int64
	// ExtentScans counts full cross-shard extent validations.
	ExtentScans int64

	Elapsed   time.Duration
	OpsPerSec float64

	// CommitLatency is the engine-side whole-Update histogram (ns),
	// rolled up across shards by db.Metrics.
	CommitLatency ode.HistSnapshot
	// MutLatency / ReadLatency are harness-side per-op histograms (ns):
	// a mutation op is one db.Update incl. the oracle mirror; a read op
	// is one db.View incl. the oracle comparison.
	MutLatency  ode.HistSnapshot
	ReadLatency ode.HistSnapshot
}

// Violation is the oracle's failure report: what diverged, plus the
// seed, generator configuration and the object's recent op trace — a
// minimal repro recipe.
type Violation struct {
	Seed    int64
	Shape   Shape
	Dist    KeyDist
	Shards  int
	Workers int
	Objects int

	Worker int
	Op     int
	OID    ode.OID
	Detail string
	// Trace is the object's most recent committed mutations (newest
	// last), as recorded by the workers that produced them.
	Trace []string
}

func (v *Violation) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: oracle violation: %s\n", v.Detail)
	fmt.Fprintf(&sb, "  at: worker %d, op %d, object %v\n", v.Worker, v.Op, v.OID)
	fmt.Fprintf(&sb, "  repro: seed=%d shape=%s dist=%s shards=%d workers=%d objects=%d\n",
		v.Seed, v.Shape, v.Dist, v.Shards, v.Workers, v.Objects)
	if len(v.Trace) > 0 {
		fmt.Fprintf(&sb, "  object op trace (oldest first):\n")
		for _, line := range v.Trace {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}
	return strings.TrimRight(sb.String(), "\n")
}
