package workload

import (
	"bytes"
	"math/rand"
	"time"

	"ode"
	"ode/internal/policy"
)

// --- mutation ops (caller holds ob.mu) ---

// opNewVersion derives a new version from base, gives it fresh content,
// and mirrors it. The new version's links are validated against the
// model before the mirror: Dprev must be base, Tprev the old latest.
func (h *harness) opNewVersion(w, op int, rng *rand.Rand, ob *object, base ode.VID) error {
	return h.opNewVersionP(w, op, h.payload(rng), ob, base)
}

// opNewVersionP is opNewVersion with a caller-chosen payload — the deep
// shape passes edits of the predecessor instead of fresh random bytes.
func (h *harness) opNewVersionP(w, op int, p []byte, ob *object, base ode.VID) error {
	var nv ode.VID
	var inf ode.VersionInfo
	err := h.mutOp(func(tx *ode.Tx) error {
		var err error
		if nv, err = tx.NewVersionFrom(ob.oid, base); err != nil {
			return err
		}
		if err = tx.UpdateVersionRaw(ob.oid, nv, p); err != nil {
			return err
		}
		inf, err = tx.Info(ob.oid, nv)
		return err
	})
	if err != nil {
		return err
	}
	oldLatest := ob.latest()
	if inf.Dprev != base {
		return h.viof(ob, w, op, "newversion(%v): engine Dprev %v, want base %v", base, inf.Dprev, base)
	}
	if inf.Tprev != oldLatest {
		return h.viof(ob, w, op, "newversion(%v): engine Tprev %v, want old latest %v", base, inf.Tprev, oldLatest)
	}
	ob.applyNewVersion(base, nv, inf.Stamp)
	ob.applyUpdate(nv, p)
	ob.tracef("w%d#%d newversion base=%v -> %v stamp=%d", w, op, base, nv, inf.Stamp)
	return nil
}

// opUpdateLatest overwrites the latest version's content in place. The
// vid the engine reports as latest must match the model's.
func (h *harness) opUpdateLatest(w, op int, rng *rand.Rand, ob *object) error {
	p := h.payload(rng)
	var got ode.VID
	err := h.mutOp(func(tx *ode.Tx) error {
		var err error
		got, err = tx.UpdateLatestRaw(ob.oid, p)
		return err
	})
	if err != nil {
		return err
	}
	if want := ob.latest(); got != want {
		return h.viof(ob, w, op, "update-latest: engine latest %v, model %v", got, want)
	}
	ob.applyUpdate(got, p)
	ob.tracef("w%d#%d update-latest %v", w, op, got)
	return nil
}

// opUpdateVersion overwrites a random live version in place.
func (h *harness) opUpdateVersion(w, op int, rng *rand.Rand, ob *object) error {
	v := ob.randLive(rng)
	p := h.payload(rng)
	err := h.mutOp(func(tx *ode.Tx) error {
		return tx.UpdateVersionRaw(ob.oid, v, p)
	})
	if err != nil {
		return err
	}
	ob.applyUpdate(v, p)
	ob.tracef("w%d#%d update-version %v", w, op, v)
	return nil
}

// opDeleteVersion pdeletes a random live version (never the last two —
// the harness keeps objects alive so the extent stays fixed).
func (h *harness) opDeleteVersion(w, op int, rng *rand.Rand, ob *object) error {
	v := ob.randLive(rng)
	err := h.mutOp(func(tx *ode.Tx) error {
		return tx.DeleteVersion(ob.oid, v)
	})
	if err != nil {
		return err
	}
	ob.applyDelete(v)
	ob.tracef("w%d#%d pdelete %v", w, op, v)
	return nil
}

// --- read checks (caller holds ob.mu; run inside one db.View) ---

// checkLatest validates the generic-ref surface: ReadLatestRaw content
// and vid, Latest, and the live version count.
func (h *harness) checkLatest(tx *ode.Tx, w, op int, ob *object) error {
	want := ob.latest()
	content, v, err := tx.ReadLatestRaw(ob.oid)
	if err != nil {
		return err
	}
	if v != want {
		return h.viof(ob, w, op, "latest: engine vid %v, model %v", v, want)
	}
	if !bytes.Equal(content, ob.content[want]) {
		return h.viof(ob, w, op, "latest %v: engine content %d bytes, model %d bytes", want, len(content), len(ob.content[want]))
	}
	lv, err := tx.Latest(ob.oid)
	if err != nil {
		return err
	}
	if lv != want {
		return h.viof(ob, w, op, "Latest(): engine %v, model %v", lv, want)
	}
	n, err := tx.VersionCount(ob.oid)
	if err != nil {
		return err
	}
	if int(n) != len(ob.order) {
		return h.viof(ob, w, op, "version count: engine %d, model %d", n, len(ob.order))
	}
	return nil
}

// checkVersions validates the temporal enumeration and spot-checks one
// version's stamp.
func (h *harness) checkVersions(tx *ode.Tx, w, op int, rng *rand.Rand, ob *object) error {
	vs, err := tx.Versions(ob.oid)
	if err != nil {
		return err
	}
	if !eqVIDs(vs, ob.order) {
		return h.viof(ob, w, op, "versions: engine %v, model %v", vs, ob.order)
	}
	v := ob.randLive(rng)
	inf, err := tx.Info(ob.oid, v)
	if err != nil {
		return err
	}
	if inf.Stamp != ob.stamp[v] {
		return h.viof(ob, w, op, "stamp of %v: engine %d, model %d", v, inf.Stamp, ob.stamp[v])
	}
	if inf.Dprev != ob.dprev[v] {
		return h.viof(ob, w, op, "Dprev of %v: engine %v, model %v", v, inf.Dprev, ob.dprev[v])
	}
	return nil
}

// checkReadVersion validates a specific-ref deref of a random live
// version.
func (h *harness) checkReadVersion(tx *ode.Tx, w, op int, rng *rand.Rand, ob *object) error {
	v := ob.randLive(rng)
	content, err := tx.ReadVersionRaw(ob.oid, v)
	if err != nil {
		return err
	}
	if !bytes.Equal(content, ob.content[v]) {
		return h.viof(ob, w, op, "deref %v: engine content %d bytes, model %d bytes", v, len(content), len(ob.content[v]))
	}
	return nil
}

// checkHistory validates the derived-from chain of v back to the root.
func (h *harness) checkHistory(tx *ode.Tx, w, op int, ob *object, v ode.VID) error {
	hs, err := tx.History(ob.oid, v)
	if err != nil {
		return err
	}
	if want := ob.expectHistory(v); !eqVIDs(hs, want) {
		return h.viof(ob, w, op, "history of %v: engine %v, model %v", v, hs, want)
	}
	return nil
}

// checkTemporal walks the Tprevious chain from latest back to the first
// version and Tnext forward again, comparing both directions to the
// model's temporal order.
func (h *harness) checkTemporal(tx *ode.Tx, w, op int, ob *object) error {
	var back []ode.VID
	cur := ob.latest()
	for cur != 0 {
		back = append(back, cur)
		if len(back) > len(ob.order) {
			return h.viof(ob, w, op, "tprev walk: chain longer than model order (%d live)", len(ob.order))
		}
		prev, err := tx.Tprev(ob.oid, cur)
		if err != nil {
			return err
		}
		cur = prev
	}
	if len(back) != len(ob.order) {
		return h.viof(ob, w, op, "tprev walk: engine chain %d long, model %d", len(back), len(ob.order))
	}
	for i, v := range back {
		if want := ob.order[len(ob.order)-1-i]; v != want {
			return h.viof(ob, w, op, "tprev walk at %d: engine %v, model %v", i, v, want)
		}
	}
	cur = ob.order[0]
	for i := 0; cur != 0; i++ {
		if i >= len(ob.order) || cur != ob.order[i] {
			return h.viof(ob, w, op, "tnext walk at %d: engine %v, model order %v", i, cur, ob.order)
		}
		next, err := tx.Tnext(ob.oid, cur)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// checkAsOf probes a random stamp straddling the object's stamp range
// through both the temporal index (AsOf) and the Tprevious walk
// (AsOfWalk) and compares each against the model.
func (h *harness) checkAsOf(tx *ode.Tx, w, op int, rng *rand.Rand, ob *object) error {
	s := randStamp(rng, ob)
	wantV, wantOK := ob.expectAsOf(s)
	v, ok, err := tx.AsOf(ob.oid, s)
	if err != nil {
		return err
	}
	if ok != wantOK || (ok && v != wantV) {
		return h.viof(ob, w, op, "as-of(%d): engine (%v,%t), model (%v,%t)", s, v, ok, wantV, wantOK)
	}
	v, ok, err = tx.AsOfWalk(ob.oid, s)
	if err != nil {
		return err
	}
	if ok != wantOK || (ok && v != wantV) {
		return h.viof(ob, w, op, "as-of-walk(%d): engine (%v,%t), model (%v,%t)", s, v, ok, wantV, wantOK)
	}
	return nil
}

// checkGraph validates the alternative-tree surfaces: leaves, one
// random version's D-children, and its Dprev link.
func (h *harness) checkGraph(tx *ode.Tx, w, op int, rng *rand.Rand, ob *object) error {
	leaves, err := tx.Leaves(ob.oid)
	if err != nil {
		return err
	}
	if want := ob.expectLeaves(); !eqVIDs(leaves, want) {
		return h.viof(ob, w, op, "leaves: engine %v, model %v", leaves, want)
	}
	v := ob.randLive(rng)
	kids, err := tx.DChildren(ob.oid, v)
	if err != nil {
		return err
	}
	if want := ob.expectDChildren(v); !eqVIDs(kids, want) {
		return h.viof(ob, w, op, "dchildren of %v: engine %v, model %v", v, kids, want)
	}
	dp, err := tx.Dprev(ob.oid, v)
	if err != nil {
		return err
	}
	if dp != ob.dprev[v] {
		return h.viof(ob, w, op, "dprev of %v: engine %v, model %v", v, dp, ob.dprev[v])
	}
	return nil
}

// --- churn (caller holds comp.mu then ob.mu) ---

// churnStep drives the workspace checkout/checkin/abandon cycle on a
// component with the percolation policy cascading composite versions.
// pins mirrors the workspace's own pin context for this worker.
func (h *harness) churnStep(w, op int, rng *rand.Rand, ws *policy.Workspace, pins map[int]ode.VID, ob, comp *object) error {
	working, pinned := pins[ob.idx]
	if !pinned {
		switch roll := rng.Intn(100); {
		case roll < 55:
			return h.opCheckout(w, op, ws, pins, ob, comp)
		case roll < 80:
			return h.readOp(func(tx *ode.Tx) error { return h.checkWsRead(tx, w, op, ws, pins, ob) })
		default:
			return h.readOp(func(tx *ode.Tx) error { return h.checkLatest(tx, w, op, comp) })
		}
	}
	switch roll := rng.Intn(100); {
	case roll < 35:
		return h.opWsWrite(w, op, rng, ws, ob, working)
	case roll < 55:
		return h.opCheckin(w, op, ws, pins, ob, comp)
	case roll < 70:
		return h.opAbandon(w, op, ws, pins, ob, working)
	case roll < 85:
		return h.readOp(func(tx *ode.Tx) error { return h.checkWsRead(tx, w, op, ws, pins, ob) })
	default:
		return h.readOp(func(tx *ode.Tx) error { return h.checkHistory(tx, w, op, ob, working) })
	}
}

// validatePercolation checks that the firing transaction grew the
// composite by exactly one version derived from its old latest, then
// mirrors it.
func (h *harness) validatePercolation(w, op int, comp *object, pv ode.VID, pinf ode.VersionInfo, kind string) error {
	compBase := comp.latest()
	if pv == compBase {
		return h.viof(comp, w, op, "%s: percolation did not version composite %v (latest still %v)", kind, comp.oid, compBase)
	}
	if pinf.Dprev != compBase || pinf.Tprev != compBase {
		return h.viof(comp, w, op, "%s: percolated %v links Dprev=%v Tprev=%v, want both %v", kind, pv, pinf.Dprev, pinf.Tprev, compBase)
	}
	comp.applyNewVersion(compBase, pv, pinf.Stamp)
	comp.tracef("w%d#%d percolate(%s) -> %v stamp=%d", w, op, kind, pv, pinf.Stamp)
	return nil
}

// opCheckout derives a working version from the component's latest and
// pins it in the worker's workspace; percolation must version the
// composite inside the same firing transaction.
func (h *harness) opCheckout(w, op int, ws *policy.Workspace, pins map[int]ode.VID, ob, comp *object) error {
	obBase := ob.latest()
	var working, pv ode.VID
	var winf, pinf ode.VersionInfo
	err := h.mutOp(func(tx *ode.Tx) error {
		var err error
		if working, err = ws.Checkout(tx, ob.oid); err != nil {
			return err
		}
		if winf, err = tx.Info(ob.oid, working); err != nil {
			return err
		}
		if pv, err = tx.Latest(comp.oid); err != nil {
			return err
		}
		pinf, err = tx.Info(comp.oid, pv)
		return err
	})
	if err != nil {
		return err
	}
	if winf.Dprev != obBase {
		return h.viof(ob, w, op, "checkout: working %v Dprev %v, want latest %v", working, winf.Dprev, obBase)
	}
	ob.applyNewVersion(obBase, working, winf.Stamp)
	ob.tracef("w%d#%d checkout -> %v stamp=%d", w, op, working, winf.Stamp)
	if err := h.validatePercolation(w, op, comp, pv, pinf, "checkout"); err != nil {
		return err
	}
	pins[ob.idx] = working
	return nil
}

// opWsWrite overwrites the pinned working version through the
// workspace.
func (h *harness) opWsWrite(w, op int, rng *rand.Rand, ws *policy.Workspace, ob *object, working ode.VID) error {
	p := h.payload(rng)
	err := h.mutOp(func(tx *ode.Tx) error {
		return ws.Write(tx, ob.oid, p)
	})
	if err != nil {
		return err
	}
	ob.applyUpdate(working, p)
	ob.tracef("w%d#%d ws-write %v", w, op, working)
	return nil
}

// opCheckin promotes the working version (a new version derived from
// it) and drops the pin; percolation versions the composite again.
func (h *harness) opCheckin(w, op int, ws *policy.Workspace, pins map[int]ode.VID, ob, comp *object) error {
	working := pins[ob.idx]
	obLatest := ob.latest()
	var promoted, pv ode.VID
	var winf, pinf ode.VersionInfo
	err := h.mutOp(func(tx *ode.Tx) error {
		var err error
		if promoted, err = ws.Checkin(tx, ob.oid); err != nil {
			return err
		}
		if winf, err = tx.Info(ob.oid, promoted); err != nil {
			return err
		}
		if pv, err = tx.Latest(comp.oid); err != nil {
			return err
		}
		pinf, err = tx.Info(comp.oid, pv)
		return err
	})
	if err != nil {
		return err
	}
	if winf.Dprev != working {
		return h.viof(ob, w, op, "checkin: promoted %v Dprev %v, want working %v", promoted, winf.Dprev, working)
	}
	if winf.Tprev != obLatest {
		return h.viof(ob, w, op, "checkin: promoted %v Tprev %v, want old latest %v", promoted, winf.Tprev, obLatest)
	}
	ob.applyNewVersion(working, promoted, winf.Stamp)
	ob.tracef("w%d#%d checkin %v -> %v stamp=%d", w, op, working, promoted, winf.Stamp)
	if err := h.validatePercolation(w, op, comp, pv, pinf, "checkin"); err != nil {
		return err
	}
	delete(pins, ob.idx)
	return nil
}

// opAbandon pdeletes the working version and drops the pin. Abandon is
// a plain DeleteVersion, so the percolation trigger does not fire.
func (h *harness) opAbandon(w, op int, ws *policy.Workspace, pins map[int]ode.VID, ob *object, working ode.VID) error {
	err := h.mutOp(func(tx *ode.Tx) error {
		return ws.Abandon(tx, ob.oid)
	})
	if err != nil {
		return err
	}
	ob.applyDelete(working)
	ob.tracef("w%d#%d abandon %v", w, op, working)
	delete(pins, ob.idx)
	return nil
}

// checkWsRead validates the workspace's view of the component: the
// pinned working version when checked out, the latest otherwise.
func (h *harness) checkWsRead(tx *ode.Tx, w, op int, ws *policy.Workspace, pins map[int]ode.VID, ob *object) error {
	content, v, err := ws.Read(tx, ob.oid)
	if err != nil {
		return err
	}
	want, pinned := pins[ob.idx]
	if !pinned {
		want = ob.latest()
	}
	if v != want {
		return h.viof(ob, w, op, "ws-read: engine vid %v, model %v (pinned=%t)", v, want, pinned)
	}
	if !bytes.Equal(content, ob.content[want]) {
		return h.viof(ob, w, op, "ws-read %v: engine content %d bytes, model %d bytes", want, len(content), len(ob.content[want]))
	}
	return nil
}

// --- whole-store checks ---

// checkExtent validates the (possibly cross-shard streaming) extent
// against the fixed object population: exact sorted equality implies
// globally ordered and duplicate-free. A second early-stopped scan in
// the same View checks the prefix contract.
func (h *harness) checkExtent(w, op int) error {
	t0 := time.Now()
	var vio error
	err := h.db.View(func(tx *ode.Tx) error {
		seen := make([]ode.OID, 0, len(h.all))
		if err := tx.Extent(h.tid, func(o ode.OID) (bool, error) {
			seen = append(seen, o)
			return true, nil
		}); err != nil {
			return err
		}
		if len(seen) != len(h.all) {
			vio = h.viof(nil, w, op, "extent: engine %d objects, model %d", len(seen), len(h.all))
			return nil
		}
		for i := range seen {
			if seen[i] != h.all[i] {
				vio = h.viof(nil, w, op, "extent at %d: engine %v, model %v (order/dup violation)", i, seen[i], h.all[i])
				return nil
			}
		}
		n, err := tx.ExtentCount(h.tid)
		if err != nil {
			return err
		}
		if n != len(h.all) {
			vio = h.viof(nil, w, op, "extent count: engine %d, model %d", n, len(h.all))
			return nil
		}
		// Early-stop: the first k results of a stopped scan must be the
		// same prefix.
		k := len(h.all)/2 + 1
		prefix := make([]ode.OID, 0, k)
		if err := tx.Extent(h.tid, func(o ode.OID) (bool, error) {
			prefix = append(prefix, o)
			return len(prefix) < k, nil
		}); err != nil {
			return err
		}
		if len(prefix) != k {
			vio = h.viof(nil, w, op, "extent early-stop: got %d results, want %d", len(prefix), k)
			return nil
		}
		for i := range prefix {
			if prefix[i] != h.all[i] {
				vio = h.viof(nil, w, op, "extent early-stop at %d: engine %v, model %v", i, prefix[i], h.all[i])
				return nil
			}
		}
		return nil
	})
	h.readHist.ObserveDuration(time.Since(t0))
	if err != nil {
		return err
	}
	if vio != nil {
		return vio
	}
	h.extentScans.Add(1)
	return nil
}

// finalSweep revalidates every object's entire observable state in one
// snapshot after the workers drain: latest, temporal enumeration and
// stamps, every live version's content and links, leaves, the latest's
// history, plus a final extent check.
func (h *harness) finalSweep() error {
	err := h.db.View(func(tx *ode.Tx) error {
		for _, ob := range h.objs {
			if err := h.checkLatest(tx, -1, -1, ob); err != nil {
				return err
			}
			vs, err := tx.Versions(ob.oid)
			if err != nil {
				return err
			}
			if !eqVIDs(vs, ob.order) {
				return h.viof(ob, -1, -1, "final: versions engine %v, model %v", vs, ob.order)
			}
			for _, v := range ob.order {
				inf, err := tx.Info(ob.oid, v)
				if err != nil {
					return err
				}
				if inf.Stamp != ob.stamp[v] {
					return h.viof(ob, -1, -1, "final: stamp of %v engine %d, model %d", v, inf.Stamp, ob.stamp[v])
				}
				if inf.Dprev != ob.dprev[v] {
					return h.viof(ob, -1, -1, "final: Dprev of %v engine %v, model %v", v, inf.Dprev, ob.dprev[v])
				}
				content, err := tx.ReadVersionRaw(ob.oid, v)
				if err != nil {
					return err
				}
				if !bytes.Equal(content, ob.content[v]) {
					return h.viof(ob, -1, -1, "final: content of %v engine %d bytes, model %d bytes", v, len(content), len(ob.content[v]))
				}
			}
			if err := h.checkTemporal(tx, -1, -1, ob); err != nil {
				return err
			}
			leaves, err := tx.Leaves(ob.oid)
			if err != nil {
				return err
			}
			if want := ob.expectLeaves(); !eqVIDs(leaves, want) {
				return h.viof(ob, -1, -1, "final: leaves engine %v, model %v", leaves, want)
			}
			if err := h.checkHistory(tx, -1, -1, ob, ob.latest()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return h.checkExtent(-1, -1)
}
