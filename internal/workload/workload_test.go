package workload

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ode"
)

func tinyCfg(t *testing.T, shape Shape, shards int, seed int64) Config {
	t.Helper()
	return Config{
		Seed:         seed,
		Dir:          t.TempDir(),
		Shards:       shards,
		Workers:      4,
		Objects:      24,
		OpsPerWorker: 150,
		Shape:        shape,
		ExtentEvery:  40,
		Options:      &ode.Options{NoSync: true},
	}
}

// TestShapesAcrossShards is the package's core claim: every shape runs
// with zero oracle violations at 1 and 4 shards. ODE_SOAK_SEEDS widens
// the hunt to extra seeds per cell (strictly parsed — see ParseSeeds).
func TestShapesAcrossShards(t *testing.T) {
	seeds, err := ParseSeeds(os.Getenv("ODE_SOAK_SEEDS"))
	if err != nil {
		t.Fatalf("ODE_SOAK_SEEDS: %v", err)
	}
	if seeds == nil {
		seeds = []int64{42}
	}
	for _, seed := range seeds {
		for _, shape := range Shapes() {
			for _, shards := range []int{1, 4} {
				seed, shape, shards := seed, shape, shards
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", shape, shards, seed), func(t *testing.T) {
					t.Parallel()
					res, err := Run(tinyCfg(t, shape, shards, seed))
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if res.Ops != res.Mutations+res.Reads {
						t.Fatalf("ops %d != mutations %d + reads %d", res.Ops, res.Mutations, res.Reads)
					}
					if res.Mutations == 0 || res.Reads == 0 {
						t.Fatalf("degenerate run: mutations=%d reads=%d", res.Mutations, res.Reads)
					}
					if res.ExtentScans == 0 {
						t.Fatalf("no extent scans ran")
					}
					if res.OpsPerSec <= 0 {
						t.Fatalf("ops/sec not computed: %v", res.OpsPerSec)
					}
					if res.MutLatency.Count == 0 || res.ReadLatency.Count == 0 {
						t.Fatalf("latency histograms empty: mut=%d read=%d", res.MutLatency.Count, res.ReadLatency.Count)
					}
					if res.CommitLatency.Count == 0 {
						t.Fatalf("engine commit histogram empty")
					}
				})
			}
		}
	}
}

// TestUniformControl runs the unskewed control distribution.
func TestUniformControl(t *testing.T) {
	cfg := tinyCfg(t, ShapeLinear, 1, 7)
	cfg.Dist = KeyUniform
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Dist != KeyUniform {
		t.Fatalf("result dist = %q", res.Dist)
	}
}

// TestDurationBound runs in wall-clock mode.
func TestDurationBound(t *testing.T) {
	cfg := tinyCfg(t, ShapeTemporal, 1, 9)
	cfg.OpsPerWorker = 0
	cfg.Duration = 150 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Elapsed < cfg.Duration {
		t.Fatalf("elapsed %v < duration bound %v", res.Elapsed, cfg.Duration)
	}
	if res.Ops == 0 {
		t.Fatalf("no ops in %v", res.Elapsed)
	}
}

// TestOracleCatchesGraphDrift corrupts the model's derived-from link of
// one root version; nothing the generator does can mask it, so the run
// must fail with a Violation carrying the repro recipe.
func TestOracleCatchesGraphDrift(t *testing.T) {
	cfg := tinyCfg(t, ShapeLinear, 4, 11)
	cfg.corrupt = func(objs []*object) {
		ob := objs[0]
		ob.dprev[ob.order[0]] = ode.VID(1 << 40)
	}
	_, err := Run(cfg)
	var vio *Violation
	if !errors.As(err, &vio) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if vio.Seed != cfg.Seed || vio.Shape != cfg.Shape || vio.Shards != cfg.Shards {
		t.Fatalf("violation repro fields wrong: %+v", vio)
	}
	msg := err.Error()
	for _, want := range []string{"oracle violation", "repro: seed=11", "shape=linear", "shards=4"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("violation message missing %q:\n%s", want, msg)
		}
	}
}

// TestOracleCatchesStampDrift corrupts a root version's recorded stamp;
// the final sweep (at the latest) must reject it and include the
// object's op trace.
func TestOracleCatchesStampDrift(t *testing.T) {
	cfg := tinyCfg(t, ShapeTemporal, 1, 13)
	cfg.corrupt = func(objs []*object) {
		ob := objs[0]
		ob.stamp[ob.order[0]] += 1 << 30
	}
	_, err := Run(cfg)
	var vio *Violation
	if !errors.As(err, &vio) {
		t.Fatalf("want *Violation, got %v", err)
	}
	if len(vio.Trace) == 0 {
		t.Fatalf("violation carries no op trace")
	}
	if !strings.Contains(err.Error(), "object op trace") {
		t.Fatalf("violation message missing trace section:\n%s", err.Error())
	}
}

// TestDeterministicOpStreams: same seed, same generator decisions — a
// single-worker run (no interleaving feeding back into the generator)
// produces identical op counts on replay.
func TestDeterministicOpStreams(t *testing.T) {
	cfg := tinyCfg(t, ShapeTree, 1, 21)
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run a: %v", err)
	}
	cfg.Dir = t.TempDir()
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run b: %v", err)
	}
	if a.Mutations != b.Mutations || a.Reads != b.Reads {
		t.Fatalf("same seed diverged: a=(%d,%d) b=(%d,%d)", a.Mutations, a.Reads, b.Mutations, b.Reads)
	}
}

// TestConfigValidation exercises withDefaults' rejection paths.
func TestConfigValidation(t *testing.T) {
	base := func() Config { return tinyCfg(t, ShapeLinear, 1, 1) }
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no dir", func(c *Config) { c.Dir = "" }, "Dir is required"},
		{"too few objects", func(c *Config) { c.Objects = 1 }, "at least 2 objects"},
		{"no bound", func(c *Config) { c.OpsPerWorker = 0; c.Duration = 0 }, "OpsPerWorker or Duration"},
		{"bad shape", func(c *Config) { c.Shape = "spiral" }, "unknown shape"},
		{"bad dist", func(c *Config) { c.Dist = "gaussian" }, "unknown key distribution"},
		{"churn too small", func(c *Config) { c.Shape = ShapeChurn; c.Objects = 3 }, "churn needs at least 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := Run(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestConfigDefaults checks the fill-in side of withDefaults.
func TestConfigDefaults(t *testing.T) {
	c := Config{Dir: "x", Objects: 2, OpsPerWorker: 1, Shape: ShapeLinear}
	got, err := c.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if got.Shards != 1 || got.Workers != 4 || got.Dist != KeyZipfian ||
		got.ZipfS <= 1 || got.PayloadBytes < 8 || got.ExtentEvery < 1 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

// TestModelDeleteSplice unit-tests the model's pdelete semantics:
// children re-parent, the temporal order closes, leaves and as-of
// answers follow.
func TestModelDeleteSplice(t *testing.T) {
	ob := newObject(0, ode.OID(1))
	v1, v2, v3, v4 := ode.VID(1), ode.VID(2), ode.VID(3), ode.VID(4)
	ob.applyCreate(v1, 10, []byte("a"))
	ob.applyNewVersion(v1, v2, 20) // linear successor
	ob.applyNewVersion(v1, v3, 30) // alternative off the root
	ob.applyNewVersion(v2, v4, 40)

	if got := ob.expectHistory(v4); !eqVIDs(got, []ode.VID{v4, v2, v1}) {
		t.Fatalf("history(v4) = %v", got)
	}
	if got := ob.expectDChildren(v1); !eqVIDs(got, []ode.VID{v2, v3}) {
		t.Fatalf("dchildren(v1) = %v", got)
	}
	if got := ob.expectLeaves(); !eqVIDs(got, []ode.VID{v3, v4}) {
		t.Fatalf("leaves = %v", got)
	}
	if v, ok := ob.expectAsOf(25); !ok || v != v2 {
		t.Fatalf("asof(25) = (%v,%t)", v, ok)
	}
	if _, ok := ob.expectAsOf(5); ok {
		t.Fatalf("asof(5) before the first stamp should miss")
	}

	ob.applyDelete(v2)
	if !eqVIDs(ob.order, []ode.VID{v1, v3, v4}) {
		t.Fatalf("order after delete = %v", ob.order)
	}
	if ob.dprev[v4] != v1 {
		t.Fatalf("v4 did not re-parent to v1: %v", ob.dprev[v4])
	}
	if got := ob.expectHistory(v4); !eqVIDs(got, []ode.VID{v4, v1}) {
		t.Fatalf("history(v4) after splice = %v", got)
	}
	if v, ok := ob.expectAsOf(25); !ok || v != v1 {
		t.Fatalf("asof(25) after delete = (%v,%t)", v, ok)
	}
	if ob.minStamp != 10 || ob.maxStamp != 40 {
		t.Fatalf("stamp range = [%d,%d]", ob.minStamp, ob.maxStamp)
	}
}

// TestTraceRing checks the bounded repro trace keeps only the newest
// traceCap lines.
func TestTraceRing(t *testing.T) {
	ob := newObject(0, ode.OID(1))
	for i := 0; i < traceCap+10; i++ {
		ob.tracef("line %d", i)
	}
	if len(ob.trace) != traceCap {
		t.Fatalf("trace len = %d, want %d", len(ob.trace), traceCap)
	}
	if ob.trace[0] != "line 10" || ob.trace[traceCap-1] != "line 57" {
		t.Fatalf("trace window = [%s .. %s]", ob.trace[0], ob.trace[len(ob.trace)-1])
	}
	if ob.traceN != traceCap+10 {
		t.Fatalf("traceN = %d", ob.traceN)
	}
}
