package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfianSkewProperties pins the statistical shape of the key
// distribution the harness hands its workers: rand.NewZipf(rng, s, 1,
// n-1) with the default s=1.4 draws key k with probability
// (1+k)^-1.4 / H. If the construction drifted (wrong exponent, wrong v,
// off-by-one population, uniform fallback) the hot-set concentration —
// the whole point of a YCSB-style skew — would silently vanish; the
// E15/E16 "skew ratio" columns would then compare nothing. The test
// checks the empirical top-1 frequency and the tail mass (draws landing
// outside the hottest 10% of keys) against the exact truncated
// zipfian, with tolerances far wider than sampling noise at this draw
// count but far tighter than the uniform distribution's values.
func TestZipfianSkewProperties(t *testing.T) {
	const (
		s     = 1.4 // Config.ZipfS default (see withDefaults)
		n     = 1000
		draws = 200_000
	)
	// Exact distribution: P(k) = (1+k)^-s / H, H = Σ_{k<n} (1+k)^-s.
	probs := make([]float64, n)
	h := 0.0
	for k := 0; k < n; k++ {
		probs[k] = math.Pow(float64(1+k), -s)
		h += probs[k]
	}
	wantTop1 := probs[0] / h
	hot := n / 10
	wantTail := 0.0
	for k := hot; k < n; k++ {
		wantTail += probs[k] / h
	}

	rng := rand.New(rand.NewSource(1400))
	zipf := rand.NewZipf(rng, s, 1, uint64(n-1))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := zipf.Uint64()
		if k >= n {
			t.Fatalf("draw %d out of population range [0, %d)", k, n)
		}
		counts[k]++
	}

	gotTop1 := float64(counts[0]) / draws
	tail := 0
	for k := hot; k < n; k++ {
		tail += counts[k]
	}
	gotTail := float64(tail) / draws

	// ±10% relative on the head, ±20% on the thin tail. Uniform keys
	// would give top1 = 0.001 and tail = 0.9 — orders of magnitude out.
	if rel := math.Abs(gotTop1-wantTop1) / wantTop1; rel > 0.10 {
		t.Errorf("top-1 frequency %.4f, want %.4f ±10%% (rel err %.1f%%)", gotTop1, wantTop1, 100*rel)
	}
	if rel := math.Abs(gotTail-wantTail) / wantTail; rel > 0.20 {
		t.Errorf("tail mass (ranks ≥ %d) %.4f, want %.4f ±20%% (rel err %.1f%%)", hot, gotTail, wantTail, 100*rel)
	}
	// Monotone head: the exact distribution is strictly decreasing, so
	// with this many draws each of the first five counts must dominate
	// the next.
	for k := 0; k+1 < 5; k++ {
		if counts[k] <= counts[k+1] {
			t.Errorf("head not decreasing: count[%d]=%d <= count[%d]=%d", k, counts[k], k+1, counts[k+1])
		}
	}
}
