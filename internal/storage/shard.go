package storage

// Shard pairs a Store (file + buffer pool + superblock) with its slot
// in a sharded engine. Every shard is a fully independent storage unit:
// its own page file, pool, epoch pair, and root/counter set. The
// transaction layer owns one WAL and one commit pipeline per shard; the
// router below decides which shard a given object id lives on.
//
// A single-shard engine (N=1) is exactly the pre-shard engine: the
// router degenerates to the identity and the on-disk layout keeps the
// legacy file names.

// Shard is a Store plus its shard slot.
type Shard struct {
	*Store
	ID int
}

// Router maps object/version/stamp ids onto shards. Ids are composed at
// allocation time as raw*N + shard, so an id's shard is recoverable as
// id % N forever after, and an object's entire version chain (vids,
// stamps, payloads, headers) lives wholly in the shard that allocated
// its oid.
type Router struct{ n int }

// NewRouter returns a router over n shards (n >= 1).
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{n: n}
}

// N returns the shard count.
func (r Router) N() int { return r.n }

// ShardOf returns the shard an id routes to.
func (r Router) ShardOf(id uint64) int { return int(id % uint64(r.n)) }

// Compose builds the globally unique id for the raw-th allocation on
// shard s. With one shard this is the identity on raw, so a single-
// shard engine allocates the same ids the pre-shard engine did.
func (r Router) Compose(raw uint64, s int) uint64 {
	return raw*uint64(r.n) + uint64(s)
}
