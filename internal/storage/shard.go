package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Shard pairs a Store (file + buffer pool + superblock) with its slot
// in a sharded engine. Every shard is a fully independent storage unit:
// its own page file, pool, epoch pair, and root/counter set. The
// transaction layer owns one WAL and one commit pipeline per shard; the
// shard map below decides which shard a given object id lives on.
//
// A single-shard engine (N=1) is exactly the pre-shard engine: the map
// degenerates to the identity and the on-disk layout keeps the legacy
// file names.

// Shard is a Store plus its shard slot.
type Shard struct {
	*Store
	ID int
}

// Placement is data, not arithmetic. Ids are composed at allocation
// time as SlotBase(slot)|raw — the allocating shard's slot in the top
// bits, a per-slot monotonic counter below — so every shard owns a
// contiguous "home range" of the id space and an id's placement is a
// range lookup in the ShardMap rather than a modulus baked into the id.
// Resharding moves contiguous id ranges between shards by rewriting map
// entries; the ids themselves never change.

// SlotShift is the bit position of the slot field inside an id. The low
// 54 bits are the per-slot allocation counter (enough for ~1.8e16
// allocations per slot); the high 10 bits are the slot.
const SlotShift = 54

// MaxSlots bounds the slot field: ids carry 64-SlotShift slot bits.
const MaxSlots = 1 << (64 - SlotShift)

// SlotBase returns the first id of slot s's home range.
func SlotBase(s int) uint64 { return uint64(s) << SlotShift }

// SlotEnd returns one past the last id of slot s's home range. For the
// top slot this wraps to 0, which the map code treats as "end of the id
// space".
func SlotEnd(s int) uint64 { return uint64(s+1) << SlotShift }

// SlotOf returns the slot an id was allocated in (its birth shard). The
// id's current placement is ShardMap.ShardOf, which starts out equal to
// SlotOf and diverges as ranges migrate.
func SlotOf(id uint64) int { return int(id >> SlotShift) }

// Compose builds the globally unique id for the raw-th allocation on
// slot s. Slot 0 is the identity on raw, so a single-shard engine
// allocates the same ids the pre-shard engine did.
func Compose(raw uint64, s int) uint64 { return SlotBase(s) | raw }

// Range is one contiguous assignment in a ShardMap: ids in
// [Start, next.Start) live on Shard. The last range extends to the end
// of the 64-bit id space.
type Range struct {
	Start uint64
	Shard int
}

// ShardMap is an epoch-versioned assignment of contiguous id ranges to
// shards. Maps are immutable: mutation methods return a new map with
// the epoch bumped, so concurrent readers hold consistent snapshots and
// a pointer comparison detects routing changes. The epoch is globally
// monotonic across the life of a store (persisted in shards.ode and in
// coordinator-log overlay records), so recovery can order competing
// images by epoch alone.
type ShardMap struct {
	epoch  uint64
	n      int // logical shard count (what DB.Shards reports)
	ranges []Range
}

// NewShardMap returns the fresh map for an n-shard store: each slot
// s < n owns its home range, with the last shard extending to the end
// of the id space. Epoch 0.
func NewShardMap(n int) *ShardMap {
	if n < 1 {
		n = 1
	}
	rs := make([]Range, n)
	for s := 0; s < n; s++ {
		rs[s] = Range{Start: SlotBase(s), Shard: s}
	}
	return &ShardMap{n: n, ranges: rs}
}

// Epoch returns the map's routing epoch.
func (m *ShardMap) Epoch() uint64 { return m.epoch }

// N returns the logical shard count. After a merge this is smaller than
// the physical shard count (emptied shards stay open but receive no new
// allocations and route nothing).
func (m *ShardMap) N() int { return m.n }

// ShardOf returns the shard id routes to.
func (m *ShardMap) ShardOf(id uint64) int {
	// Last range whose Start <= id.
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Start > id })
	return m.ranges[i-1].Shard
}

// Ranges returns a copy of the assignment list.
func (m *ShardMap) Ranges() []Range {
	return append([]Range(nil), m.ranges...)
}

// NumRanges returns the number of contiguous assignments.
func (m *ShardMap) NumRanges() int { return len(m.ranges) }

// NextBoundary returns the smallest range start strictly greater than
// id, or 0 when id falls in the last range (no boundary above it).
// Reshard cursors use it to skip over stretches already owned by the
// destination.
func (m *ShardMap) NextBoundary(id uint64) uint64 {
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Start > id })
	if i == len(m.ranges) {
		return 0
	}
	return m.ranges[i].Start
}

// Allocatable reports whether shard s still owns the tail of its own
// home range — the precondition for s to allocate new ids (fresh ids in
// slot s must route to s).
func (m *ShardMap) Allocatable(s int) bool {
	return m.ShardOf(SlotEnd(s)-1) == s
}

// clone returns a mutable copy with the epoch bumped.
func (m *ShardMap) clone() *ShardMap {
	return &ShardMap{
		epoch:  m.epoch + 1,
		n:      m.n,
		ranges: append([]Range(nil), m.ranges...),
	}
}

// WithN returns a new map with the logical shard count set to n and the
// epoch bumped. Assignments are unchanged.
func (m *ShardMap) WithN(n int) *ShardMap {
	c := m.clone()
	c.n = n
	return c
}

// Assign returns a new map with ids in [lo, hi) routed to shard, and
// the epoch bumped. hi == 0 means the end of the id space. Adjacent
// equal-shard ranges are coalesced so the list stays proportional to
// the number of distinct contiguous assignments, not the number of
// historical migrations.
func (m *ShardMap) Assign(lo, hi uint64, shard int) *ShardMap {
	if hi != 0 && hi <= lo {
		panic(fmt.Sprintf("storage: ShardMap.Assign empty range [%d, %d)", lo, hi))
	}
	if shard < 0 || shard >= MaxSlots {
		panic(fmt.Sprintf("storage: ShardMap.Assign shard %d out of range", shard))
	}
	c := m.clone()
	// Owner of the id just past the assignment, which must keep its
	// shard after the splice.
	var succOwner int
	if hi != 0 {
		succOwner = m.ShardOf(hi)
	}
	out := make([]Range, 0, len(c.ranges)+2)
	for _, r := range c.ranges {
		if r.Start < lo {
			out = append(out, r)
		}
	}
	out = append(out, Range{Start: lo, Shard: shard})
	if hi != 0 {
		out = append(out, Range{Start: hi, Shard: succOwner})
		for _, r := range c.ranges {
			if r.Start > hi {
				out = append(out, r)
			}
		}
	}
	// Coalesce adjacent equal-shard ranges (and drop a duplicate start,
	// which can appear when hi coincided with an existing boundary).
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if r.Start == last.Start {
			last.Shard = r.Shard
			continue
		}
		if r.Shard == last.Shard {
			continue
		}
		merged = append(merged, r)
	}
	c.ranges = merged
	return c
}

// shardMapVersion tags the encoding; bump on layout change.
const shardMapVersion = 1

// Encode serialises the map for shards.ode and coordinator-log overlay
// records.
func (m *ShardMap) Encode() []byte {
	buf := make([]byte, 0, 2+8+4+4+len(m.ranges)*12)
	buf = append(buf, shardMapVersion)
	buf = binary.BigEndian.AppendUint64(buf, m.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.n))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.ranges)))
	for _, r := range m.ranges {
		buf = binary.BigEndian.AppendUint64(buf, r.Start)
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Shard))
	}
	return buf
}

// DecodeShardMap parses an Encode image, validating structure: starts
// strictly ascending from 0, shard ids within MaxSlots, n >= 1.
func DecodeShardMap(data []byte) (*ShardMap, error) {
	if len(data) < 1+8+4+4 {
		return nil, fmt.Errorf("storage: shard map image truncated (%d bytes)", len(data))
	}
	if data[0] != shardMapVersion {
		return nil, fmt.Errorf("storage: shard map version %d unsupported", data[0])
	}
	epoch := binary.BigEndian.Uint64(data[1:])
	n := int(binary.BigEndian.Uint32(data[9:]))
	nr := int(binary.BigEndian.Uint32(data[13:]))
	if n < 1 || n > MaxSlots {
		return nil, fmt.Errorf("storage: shard map logical count %d out of range", n)
	}
	if nr < 1 || len(data) != 17+nr*12 {
		return nil, fmt.Errorf("storage: shard map image length %d does not match %d ranges", len(data), nr)
	}
	rs := make([]Range, nr)
	for i := range rs {
		off := 17 + i*12
		rs[i].Start = binary.BigEndian.Uint64(data[off:])
		rs[i].Shard = int(binary.BigEndian.Uint32(data[off+8:]))
		if rs[i].Shard < 0 || rs[i].Shard >= MaxSlots {
			return nil, fmt.Errorf("storage: shard map range %d routes to invalid shard %d", i, rs[i].Shard)
		}
		if i == 0 && rs[i].Start != 0 {
			return nil, fmt.Errorf("storage: shard map does not cover id 0")
		}
		if i > 0 && rs[i].Start <= rs[i-1].Start {
			return nil, fmt.Errorf("storage: shard map range starts not ascending at %d", i)
		}
	}
	return &ShardMap{epoch: epoch, n: n, ranges: rs}, nil
}
