package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ode/internal/codec"
	"ode/internal/oid"
)

// Record cell encoding inside slotted pages:
//
//	inline:   flags=0x00 | uvarint payloadLen | payload | zero pad to ≥ minCell
//	overflow: flags=0x01 | uvarint totalLen  | u32 firstOverflowPage | pad
//
// Every cell is at least minCell bytes so an in-place update can always
// switch an inline record to the (small) overflow representation without
// moving the record: RIDs are stable for the record's lifetime, which the
// object table and version index rely on.
const (
	cellInline   = 0x00
	cellOverflow = 0x01
	minCell      = 16
)

// Overflow page body layout: [0:4] next page (0 = end), [4:6] chunk
// length, [6:] chunk bytes.
const ovHeader = 6

// ErrNoRecord reports a read of a deleted or never-written record.
var ErrNoRecord = errors.New("storage: no such record")

// HeapState is the heap's cross-transaction space-hunting state. It is
// advisory only (every entry is re-verified before use, and pageWithSpace
// self-heals stale entries), so the engine shares one HeapState across
// its write transactions and hands fresh ones to readers.
type HeapState struct {
	// space caches known free bytes of slotted pages discovered this
	// session (populated by inserts, updates, deletes, and the sweep).
	space map[oid.PageID]int
	// sweep is the next page id to examine when hunting for space not in
	// the cache; once it passes the end of the file it stays exhausted
	// (new space knowledge then only arrives via deletes).
	sweep     oid.PageID
	sweepDone bool
}

// NewHeapState returns empty heap space-hunting state.
func NewHeapState() *HeapState {
	return &HeapState{space: make(map[oid.PageID]int), sweep: 1}
}

// Heap is the record heap: variable-length records addressed by stable
// RIDs, with overflow chains for records larger than a page. One store
// has exactly one heap (B+trees use their own page type); each
// transaction binds it through its own TxView.
type Heap struct {
	st *TxView
	hs *HeapState
}

// NewHeap returns a heap over the transaction view st. hs carries the
// space cache across transactions; nil means start fresh (fine for
// readers and tests).
func NewHeap(st *TxView, hs *HeapState) *Heap {
	if hs == nil {
		hs = NewHeapState()
	}
	return &Heap{st: st, hs: hs}
}

// maxInlinePayload returns the largest payload storable inline.
func (h *Heap) maxInlinePayload() int {
	// flags + worst-case 5-byte uvarint length prefix.
	return MaxCell(h.st.PageSize()) - 6
}

func encodeInline(data []byte) []byte {
	w := codec.NewWriter(1 + 5 + len(data) + minCell)
	w.U8(cellInline)
	w.UVarint(uint64(len(data)))
	w.Raw(data)
	for w.Len() < minCell {
		w.U8(0)
	}
	return w.Bytes()
}

func encodeOverflow(totalLen int, first oid.PageID) []byte {
	w := codec.NewWriter(minCell)
	w.U8(cellOverflow)
	w.UVarint(uint64(totalLen))
	w.U32(uint32(first))
	for w.Len() < minCell {
		w.U8(0)
	}
	return w.Bytes()
}

// Insert stores data as a new record and returns its RID.
func (h *Heap) Insert(data []byte) (oid.RID, error) {
	cell, err := h.buildCell(data)
	if err != nil {
		return oid.NilRID, err
	}
	p, err := h.pageWithSpace(len(cell))
	if err != nil {
		return oid.NilRID, err
	}
	p = h.st.Touch(p)
	slot, err := SlottedInsert(p, cell)
	if err != nil {
		return oid.NilRID, fmt.Errorf("storage: insert on page %d: %w", p.ID, err)
	}
	h.hs.space[p.ID] = SlottedFreeSpace(p)
	return oid.RID{Page: p.ID, Slot: slot}, nil
}

// buildCell produces the cell bytes for data, writing an overflow chain
// if needed.
func (h *Heap) buildCell(data []byte) ([]byte, error) {
	if len(data) <= h.maxInlinePayload() {
		return encodeInline(data), nil
	}
	first, err := h.writeOverflow(data)
	if err != nil {
		return nil, err
	}
	return encodeOverflow(len(data), first), nil
}

func (h *Heap) writeOverflow(data []byte) (oid.PageID, error) {
	chunkCap := h.st.PageSize() - HeaderSize - ovHeader
	var first oid.PageID
	var prev *Page
	for off := 0; off < len(data); off += chunkCap {
		end := off + chunkCap
		if end > len(data) {
			end = len(data)
		}
		p, err := h.st.Allocate(PageOverflow)
		if err != nil {
			return oid.NilPage, err
		}
		body := p.Body()
		binary.BigEndian.PutUint32(body[0:4], 0)
		binary.BigEndian.PutUint16(body[4:6], uint16(end-off))
		copy(body[ovHeader:], data[off:end])
		if prev != nil {
			prev = h.st.Touch(prev)
			binary.BigEndian.PutUint32(prev.Body()[0:4], uint32(p.ID))
		} else {
			first = p.ID
		}
		prev = p
	}
	return first, nil
}

func (h *Heap) readOverflow(first oid.PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	id := first
	for id != oid.NilPage {
		p, err := h.st.GetTyped(id, PageOverflow)
		if err != nil {
			return nil, err
		}
		body := p.Body()
		n := int(binary.BigEndian.Uint16(body[4:6]))
		if ovHeader+n > len(body) {
			return nil, fmt.Errorf("storage: corrupt overflow page %d (chunk %d)", id, n)
		}
		out = append(out, body[ovHeader:ovHeader+n]...)
		id = oid.PageID(binary.BigEndian.Uint32(body[0:4]))
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

func (h *Heap) freeOverflow(first oid.PageID) error {
	id := first
	for id != oid.NilPage {
		p, err := h.st.GetTyped(id, PageOverflow)
		if err != nil {
			return err
		}
		next := oid.PageID(binary.BigEndian.Uint32(p.Body()[0:4]))
		if err := h.st.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// decodeCell parses a cell, returning the payload. For overflow cells it
// reads the chain.
func (h *Heap) decodeCell(cell []byte) ([]byte, error) {
	r := codec.NewReader(cell)
	flags := r.U8()
	n := int(r.UVarint())
	if r.Err() != nil {
		return nil, fmt.Errorf("storage: corrupt cell: %w", r.Err())
	}
	switch flags {
	case cellInline:
		if r.Remaining() < n {
			return nil, fmt.Errorf("storage: corrupt inline cell: %d < %d", r.Remaining(), n)
		}
		out := make([]byte, n)
		copy(out, r.Raw(n))
		return out, nil
	case cellOverflow:
		first := oid.PageID(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("storage: corrupt overflow cell: %w", r.Err())
		}
		return h.readOverflow(first, n)
	default:
		return nil, fmt.Errorf("storage: unknown cell flags %#x", flags)
	}
}

// cellOverflowHead returns the overflow chain head if the cell is an
// overflow cell, else NilPage.
func cellOverflowHead(cell []byte) oid.PageID {
	if len(cell) == 0 || cell[0] != cellOverflow {
		return oid.NilPage
	}
	r := codec.NewReader(cell[1:])
	_ = r.UVarint()
	return oid.PageID(r.U32())
}

// Read returns a copy of the record at rid.
func (h *Heap) Read(rid oid.RID) ([]byte, error) {
	p, err := h.st.GetTyped(rid.Page, PageSlotted)
	if err != nil {
		return nil, err
	}
	cell, err := SlottedRead(p, rid.Slot)
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%v)", ErrNoRecord, rid, err)
	}
	return h.decodeCell(cell)
}

// Update replaces the record at rid, preserving the RID.
func (h *Heap) Update(rid oid.RID, data []byte) error {
	p, err := h.st.GetTyped(rid.Page, PageSlotted)
	if err != nil {
		return err
	}
	old, err := SlottedRead(p, rid.Slot)
	if err != nil {
		return fmt.Errorf("%w: %v (%v)", ErrNoRecord, rid, err)
	}
	oldChain := cellOverflowHead(old)

	p = h.st.Touch(p)
	// Try inline first when it fits the page; otherwise use overflow.
	if len(data) <= h.maxInlinePayload() {
		cell := encodeInline(data)
		err = SlottedUpdate(p, rid.Slot, cell)
		if err == nil {
			h.hs.space[p.ID] = SlottedFreeSpace(p)
			if oldChain != oid.NilPage {
				return h.freeOverflow(oldChain)
			}
			return nil
		}
		if !errors.Is(err, ErrPageFull) {
			return err
		}
		// Fall through to the overflow representation, which always fits
		// because every cell is at least minCell bytes.
	}
	first, err := h.writeOverflow(data)
	if err != nil {
		return err
	}
	cell := encodeOverflow(len(data), first)
	if err := SlottedUpdate(p, rid.Slot, cell); err != nil {
		return fmt.Errorf("storage: overflow cell update on page %d: %w", p.ID, err)
	}
	h.hs.space[p.ID] = SlottedFreeSpace(p)
	if oldChain != oid.NilPage {
		return h.freeOverflow(oldChain)
	}
	return nil
}

// Delete removes the record at rid and frees any overflow chain.
func (h *Heap) Delete(rid oid.RID) error {
	p, err := h.st.GetTyped(rid.Page, PageSlotted)
	if err != nil {
		return err
	}
	cell, err := SlottedRead(p, rid.Slot)
	if err != nil {
		return fmt.Errorf("%w: %v (%v)", ErrNoRecord, rid, err)
	}
	chain := cellOverflowHead(cell)
	p = h.st.Touch(p)
	if err := SlottedDelete(p, rid.Slot); err != nil {
		return err
	}
	h.hs.space[p.ID] = SlottedFreeSpace(p)
	if chain != oid.NilPage {
		return h.freeOverflow(chain)
	}
	return nil
}

// pageWithSpace finds or allocates a slotted page with at least need
// bytes of cell space.
func (h *Heap) pageWithSpace(need int) (*Page, error) {
	for id, free := range h.hs.space {
		if free < need {
			continue
		}
		p, err := h.st.GetTyped(id, PageSlotted)
		if err != nil {
			// The cache can go stale across transaction aborts (the page
			// may have been rolled out of existence or repurposed);
			// self-heal by dropping the entry.
			delete(h.hs.space, id)
			continue
		}
		// Re-verify: the cached value may also be stale after an abort.
		if got := SlottedFreeSpace(p); got >= need {
			return p, nil
		} else {
			h.hs.space[id] = got
		}
	}
	if p, err := h.sweepForSpace(need); err != nil {
		return nil, err
	} else if p != nil {
		return p, nil
	}
	return h.st.Allocate(PageSlotted)
}

// sweepForSpace scans up to sweepBudget not-yet-seen pages per call,
// recording their free space, and returns the first with enough room.
func (h *Heap) sweepForSpace(need int) (*Page, error) {
	const sweepBudget = 16
	if h.hs.sweepDone {
		return nil, nil
	}
	for i := 0; i < sweepBudget; i++ {
		if uint64(h.hs.sweep) >= h.st.NumPages() {
			h.hs.sweepDone = true
			return nil, nil
		}
		id := h.hs.sweep
		h.hs.sweep++
		p, err := h.st.Get(id)
		if err != nil {
			return nil, err
		}
		if p.Type() != PageSlotted {
			continue
		}
		free := SlottedFreeSpace(p)
		h.hs.space[id] = free
		if free >= need {
			return p, nil
		}
	}
	return nil, nil
}

// Scan calls fn for every record in the heap in (page, slot) order,
// stopping early if fn returns false. fn receives the decoded payload,
// which it must not retain.
func (h *Heap) Scan(fn func(rid oid.RID, data []byte) (bool, error)) error {
	n := h.st.NumPages()
	for pid := uint64(1); pid < n; pid++ {
		p, err := h.st.Get(oid.PageID(pid))
		if err != nil {
			return err
		}
		if p.Type() != PageSlotted {
			continue
		}
		var slots []uint16
		SlottedSlots(p, func(slot uint16, _ []byte) bool {
			slots = append(slots, slot)
			return true
		})
		for _, slot := range slots {
			cell, err := SlottedRead(p, slot)
			if err != nil {
				return err
			}
			data, err := h.decodeCell(cell)
			if err != nil {
				return err
			}
			ok, err := fn(oid.RID{Page: oid.PageID(pid), Slot: slot}, data)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	return nil
}
