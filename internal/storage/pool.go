package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"ode/internal/obs"
	"ode/internal/oid"
)

// DefaultPoolPages is the clean-page cache capacity used unless
// configured otherwise. Dirty pages are held regardless of this limit
// until the next checkpoint flushes them.
const DefaultPoolPages = 1024

// snap is one retained pre-image of a page: the live image the page had
// at the moment a writer first mutated it during the given epoch. A
// reader pinned at epoch r resolves a page to the earliest snapshot
// whose epoch is >= r (the image unchanged since r), falling back to the
// live page when no such snapshot exists (the page has not been mutated
// since r). Snapshot pages are immutable: the copy-on-write swap in COW
// guarantees no writer ever mutates a page object once it is published
// here.
type snap struct {
	epoch uint64
	pg    *Page
}

// Pool is the buffer pool: an in-memory cache of page images keyed by
// PageID. Clean pages are evictable under an LRU policy; dirty pages are
// retained until FlushDirty writes them back.
//
// The pool also owns the snapshot machinery that gives readers epoch
// isolation: writers swap in fresh page copies on first mutation
// (copy-on-write), publishing the previous image into an epoch-tagged
// snapshot table; readers pin the epoch current at their start and
// resolve every page against that table. Snapshots are reclaimed when
// the last reader that could need them unpins.
type Pool struct {
	// mu guards all pool state. The transaction layer serialises
	// writers, but any number of readers share the pool concurrently,
	// and even a read-path Get mutates the LRU and may fault a page in.
	mu       sync.Mutex
	file     *File
	pages    map[oid.PageID]*Page
	cleanLRU *list.List // of *Page, front = most recent
	capacity int
	nDirty   int

	// epoch counts prepared write transactions this session: it advances
	// when a transaction reaches its in-memory commit point (its live
	// pages carry the new state and its WAL records are staged). durable
	// trails it, advancing only when those records are fsynced; readers
	// pin durable, so a prepared-but-not-yet-durable transaction is never
	// visible to a new reader. With group commit several transactions can
	// sit in the gap at once; their COW snapshots (tagged with the epoch
	// at first mutation) keep every pinned reader consistent.
	epoch   uint64
	durable uint64
	// pins refcounts readers per pinned epoch.
	pins map[uint64]int
	// snaps holds retained pre-images per page, epoch-ascending.
	snaps map[oid.PageID][]snap

	// stats
	hits, misses, evictions uint64

	// m, when set, mirrors pool activity into the shared observability
	// registry (hit/miss/eviction counters, reader-pin gauges, snapshot
	// retention). Nil — the NoMetrics baseline — records nothing.
	m *obs.Metrics
}

// SetMetrics wires the observability registry in; the manager calls it
// once at open, before the pool is shared.
func (pl *Pool) SetMetrics(m *obs.Metrics) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.m = m
}

// NewPool creates a pool over file with room for capacity clean pages.
func NewPool(file *File, capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		file:     file,
		pages:    make(map[oid.PageID]*Page),
		cleanLRU: list.New(),
		capacity: capacity,
		pins:     make(map[uint64]int),
		snaps:    make(map[oid.PageID][]snap),
	}
}

// Stats returns cache hit/miss/eviction counters.
func (pl *Pool) Stats() (hits, misses, evictions uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.hits, pl.misses, pl.evictions
}

// Resident returns the number of cached pages and how many are dirty.
func (pl *Pool) Resident() (total, dirty int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.pages), pl.nDirty
}

// --- epochs and snapshots ---

// Epoch returns the current prepared epoch (the count of write
// transactions that reached their in-memory commit point this session).
func (pl *Pool) Epoch() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.epoch
}

// DurableEpoch returns the durable epoch: the newest epoch whose
// transactions' WAL records are known to be on stable storage. This is
// the epoch readers pin.
func (pl *Pool) DurableEpoch() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.durable
}

// PinEpoch registers a reader at the current durable epoch and returns
// it. The reader sees exactly the durably committed state as of this
// moment until it calls UnpinEpoch, regardless of concurrent writers —
// including writers whose commits are staged in a group-commit batch
// but not yet fsynced.
func (pl *Pool) PinEpoch() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.pins[pl.durable]++
	if pl.m != nil {
		pl.m.ReaderPins.Inc()
		pl.m.ActiveReaders.Inc()
	}
	return pl.durable
}

// UnpinEpoch releases a reader's pin. When the last reader of the
// oldest pinned epoch leaves, snapshots nobody can need anymore are
// reclaimed.
func (pl *Pool) UnpinEpoch(epoch uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.m != nil {
		pl.m.ActiveReaders.Dec()
	}
	if n := pl.pins[epoch]; n > 1 {
		pl.pins[epoch] = n - 1
		return
	}
	delete(pl.pins, epoch)
	pl.reclaimLocked()
}

// AdvanceEpoch moves the pool to the next prepared epoch and returns
// it. The transaction layer calls it once per write transaction at the
// in-memory commit point (under the writer mutex, before the commit is
// durable). Readers do not observe the new state until AdvanceDurableTo
// catches the durable epoch up.
func (pl *Pool) AdvanceEpoch() uint64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.epoch++
	pl.reclaimLocked()
	return pl.epoch
}

// AdvanceDurableTo raises the durable epoch to e (typically the epoch
// of the newest member of a just-fsynced group-commit batch): readers
// that pin afterwards observe every transaction up to e. Rollback of a
// failed batch leaves durable where it was — the burned epochs are
// simply never pinned. Regressions are ignored.
func (pl *Pool) AdvanceDurableTo(e uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if e > pl.epoch {
		e = pl.epoch
	}
	if e > pl.durable {
		pl.durable = e
		pl.reclaimLocked()
	}
}

// SnapshotCount returns the number of retained snapshot pages (for
// tests and stats).
func (pl *Pool) SnapshotCount() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	n := 0
	for _, ss := range pl.snaps {
		n += len(ss)
	}
	return n
}

// reclaimLocked drops every snapshot no pinned reader (and no reader
// that could still pin the durable epoch) can resolve to: a snapshot
// tagged e serves readers pinned at epochs <= e, so it is garbage once
// every pin — and the durable epoch future readers would pin — is above
// it. Snapshots tagged between durable and the prepared epoch are
// always retained; they are what keeps readers consistent while a
// group-commit batch is in flight.
func (pl *Pool) reclaimLocked() {
	min := pl.durable
	for e := range pl.pins {
		if e < min {
			min = e
		}
	}
	dropped := 0
	for id, ss := range pl.snaps {
		i := 0
		for i < len(ss) && ss[i].epoch < min {
			i++
		}
		switch {
		case i == 0:
		case i == len(ss):
			delete(pl.snaps, id)
		default:
			pl.snaps[id] = append([]snap(nil), ss[i:]...)
		}
		dropped += i
	}
	if pl.m != nil && dropped > 0 {
		pl.m.SnapshotPages.Add(int64(-dropped))
	}
}

// publishLocked retains p's current image as the snapshot for the
// current epoch. Publishing is keep-first: if this epoch already has a
// snapshot of the page (a previous transaction in the same epoch
// aborted), the existing image is byte-identical and is kept.
func (pl *Pool) publishLocked(p *Page) {
	ss := pl.snaps[p.ID]
	if len(ss) > 0 && ss[len(ss)-1].epoch == pl.epoch {
		return
	}
	p.lruElem = nil
	pl.snaps[p.ID] = append(ss, snap{epoch: pl.epoch, pg: p})
	if pl.m != nil {
		pl.m.SnapshotPages.Inc()
	}
}

// COW performs the copy-on-write swap for a writer's first mutation of
// a page this transaction: the current image is published as this
// epoch's snapshot (so in-flight and future readers of the epoch keep a
// stable view), and a fresh writable copy replaces it as the live page.
// It returns the writable copy plus the pre-image the transaction layer
// needs for abort; before aliases the immutable snapshot (both stay
// untouched by construction), so no extra copy is made.
func (pl *Pool) COW(p *Page) (np *Page, before []byte, wasDirty bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	basis := pl.pages[p.ID]
	if basis == nil {
		// Evicted between the caller's Get and now; the caller's (clean)
		// image is still the current one.
		basis = p
	}
	if el, ok := basis.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
	}
	pl.publishLocked(basis)
	np = &Page{
		ID:     basis.ID,
		Data:   append([]byte(nil), basis.Data...),
		dirty:  true,
		pinned: basis.pinned,
	}
	if !basis.dirty || pl.pages[np.ID] == nil {
		pl.nDirty++
	}
	pl.pages[np.ID] = np
	return np, basis.Data, basis.dirty
}

// Live returns the current live page object for id, or nil if it is not
// resident. Writers use it to re-resolve page pointers taken before a
// COW swap.
func (pl *Pool) Live(id oid.PageID) *Page {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.pages[id]
}

// Get returns the live page with the given id, reading it from the file
// if it is not resident. The returned Page is shared; callers mutating
// Data must go through a write view's Touch.
func (pl *Pool) Get(id oid.PageID) (*Page, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.getLocked(id)
}

func (pl *Pool) getLocked(id oid.PageID) (*Page, error) {
	if p, ok := pl.pages[id]; ok {
		pl.hits++
		if pl.m != nil {
			pl.m.PoolHits.Inc()
		}
		pl.touch(p)
		return p, nil
	}
	pl.misses++
	if pl.m != nil {
		pl.m.PoolMisses.Inc()
	}
	buf := make([]byte, pl.file.PageSize())
	if err := pl.file.ReadPage(id, buf); err != nil {
		return nil, err
	}
	p := &Page{ID: id, Data: buf}
	pl.insertClean(p)
	return p, nil
}

// GetAt returns the page as it was at the given pinned epoch: the
// earliest snapshot at or after the epoch if the page has been mutated
// since, otherwise the live page (whose image is then unchanged since
// that epoch). The returned page must be treated as immutable.
func (pl *Pool) GetAt(id oid.PageID, epoch uint64) (*Page, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if ss := pl.snaps[id]; len(ss) > 0 {
		// Epoch-ascending: linear scan; chains are short (one entry per
		// epoch with a pinned reader).
		for _, s := range ss {
			if s.epoch >= epoch {
				return s.pg, nil
			}
		}
	}
	return pl.getLocked(id)
}

// GetTyped is Get plus a page-type assertion.
func (pl *Pool) GetTyped(id oid.PageID, want PageType) (*Page, error) {
	p, err := pl.Get(id)
	if err != nil {
		return nil, err
	}
	if p.Type() != want {
		return nil, fmt.Errorf("%w: page %d is %v, want %v", ErrPageType, id, p.Type(), want)
	}
	return p, nil
}

// Install registers a freshly materialised page image (e.g. a newly
// allocated page, or a page rebuilt by recovery) as dirty.
func (pl *Pool) Install(id oid.PageID, data []byte) *Page {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if old, ok := pl.pages[id]; ok {
		copy(old.Data, data)
		pl.markDirtyLocked(old)
		return old
	}
	p := &Page{ID: id, Data: data, dirty: true}
	pl.pages[id] = p
	pl.nDirty++
	return p
}

// MarkDirty flags a page as modified, removing it from the clean LRU so
// it cannot be evicted before the next flush.
func (pl *Pool) MarkDirty(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.markDirtyLocked(p)
}

func (pl *Pool) markDirtyLocked(p *Page) {
	if p.dirty {
		return
	}
	p.dirty = true
	pl.nDirty++
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
		p.lruElem = nil
	}
}

// MarkClean clears a page's dirty flag without writing it (used when an
// abort restores the page to its last-flushed image).
func (pl *Pool) MarkClean(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !p.dirty {
		return
	}
	p.dirty = false
	pl.nDirty--
	pl.insertCleanExisting(p)
	pl.evictOverflow()
}

// DirtyPages returns the resident dirty pages in page-id order.
func (pl *Pool) DirtyPages() []*Page {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.dirtyPagesLocked()
}

func (pl *Pool) dirtyPagesLocked() []*Page {
	out := make([]*Page, 0, pl.nDirty)
	for _, p := range pl.pages {
		if p.dirty {
			out = append(out, p)
		}
	}
	// Sorted by page id so flushes issue sequential I/O and, just as
	// important, a deterministic write sequence: the fault matrix
	// identifies an injection point by its global operation number.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FlushDirty writes every dirty page to the page file (without syncing)
// and moves the pages to the clean LRU. The caller (the writer path) is
// responsible for ordering this after WAL durability and for the final
// Sync.
//
// The page I/O happens outside the pool mutex so concurrent readers are
// never stalled behind a checkpoint's writes; only the writer mutates
// pages, and it is the one in here. Each image is sealed into a scratch
// buffer because WritePage stamps the checksum in place, and the page
// objects being flushed are visible to concurrent readers at the
// current epoch.
func (pl *Pool) FlushDirty() error {
	pl.mu.Lock()
	dirty := pl.dirtyPagesLocked()
	pl.mu.Unlock()

	var scratch []byte
	written := 0
	var werr error
	for _, p := range dirty {
		if scratch == nil {
			scratch = make([]byte, len(p.Data))
		}
		copy(scratch, p.Data)
		if err := pl.file.WritePage(p.ID, scratch); err != nil {
			werr = err
			break
		}
		written++
	}

	pl.mu.Lock()
	for _, p := range dirty[:written] {
		if !p.dirty {
			continue
		}
		p.dirty = false
		pl.nDirty--
		pl.insertCleanExisting(p)
	}
	pl.evictOverflow()
	pl.mu.Unlock()
	return werr
}

// DropDirty discards every dirty page image without writing it (used on
// abort after before-images are restored, and by recovery resets).
func (pl *Pool) DropDirty() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for id, p := range pl.pages {
		if p.dirty {
			delete(pl.pages, id)
			pl.nDirty--
		}
	}
}

// Forget removes a page from the cache entirely (used when a page
// allocated by an aborted transaction is rolled out of existence).
func (pl *Pool) Forget(id oid.PageID) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p, ok := pl.pages[id]
	if !ok {
		return
	}
	if p.dirty {
		pl.nDirty--
	}
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
	}
	delete(pl.pages, id)
}

// Pin marks p as never evictable (used for the superblock, whose decoded
// form is cached by the Store).
func (pl *Pool) Pin(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p.pinned = true
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
		p.lruElem = nil
	}
}

func (pl *Pool) insertClean(p *Page) {
	pl.pages[p.ID] = p
	if !p.pinned {
		p.lruElem = pl.cleanLRU.PushFront(p)
	}
	pl.evictOverflow()
}

func (pl *Pool) insertCleanExisting(p *Page) {
	if !p.pinned {
		p.lruElem = pl.cleanLRU.PushFront(p)
	}
}

func (pl *Pool) touch(p *Page) {
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.MoveToFront(el)
	}
}

func (pl *Pool) evictOverflow() {
	for pl.cleanLRU.Len() > pl.capacity {
		back := pl.cleanLRU.Back()
		if back == nil {
			return
		}
		victim := pl.cleanLRU.Remove(back).(*Page)
		victim.lruElem = nil
		delete(pl.pages, victim.ID)
		pl.evictions++
		if pl.m != nil {
			pl.m.PoolEvictions.Inc()
		}
	}
}
