package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"ode/internal/oid"
)

// DefaultPoolPages is the clean-page cache capacity used unless
// configured otherwise. Dirty pages are held regardless of this limit
// until the next checkpoint flushes them.
const DefaultPoolPages = 1024

// Pool is the buffer pool: an in-memory cache of page images keyed by
// PageID. Clean pages are evictable under an LRU policy; dirty pages are
// retained until FlushDirty writes them back.
type Pool struct {
	// mu guards all pool state. The transaction layer serialises
	// writers, but any number of readers share the pool concurrently,
	// and even a read-path Get mutates the LRU and may fault a page in.
	mu       sync.Mutex
	file     *File
	pages    map[oid.PageID]*Page
	cleanLRU *list.List // of *Page, front = most recent
	capacity int
	nDirty   int

	// stats
	hits, misses, evictions uint64
}

// NewPool creates a pool over file with room for capacity clean pages.
func NewPool(file *File, capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		file:     file,
		pages:    make(map[oid.PageID]*Page),
		cleanLRU: list.New(),
		capacity: capacity,
	}
}

// Stats returns cache hit/miss/eviction counters.
func (pl *Pool) Stats() (hits, misses, evictions uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.hits, pl.misses, pl.evictions
}

// Resident returns the number of cached pages and how many are dirty.
func (pl *Pool) Resident() (total, dirty int) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.pages), pl.nDirty
}

// Get returns the page with the given id, reading it from the file if it
// is not resident. The returned Page is shared; callers mutating Data
// must call MarkDirty.
func (pl *Pool) Get(id oid.PageID) (*Page, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if p, ok := pl.pages[id]; ok {
		pl.hits++
		pl.touch(p)
		return p, nil
	}
	pl.misses++
	buf := make([]byte, pl.file.PageSize())
	if err := pl.file.ReadPage(id, buf); err != nil {
		return nil, err
	}
	p := &Page{ID: id, Data: buf}
	pl.insertClean(p)
	return p, nil
}

// GetTyped is Get plus a page-type assertion.
func (pl *Pool) GetTyped(id oid.PageID, want PageType) (*Page, error) {
	p, err := pl.Get(id)
	if err != nil {
		return nil, err
	}
	if p.Type() != want {
		return nil, fmt.Errorf("%w: page %d is %v, want %v", ErrPageType, id, p.Type(), want)
	}
	return p, nil
}

// Install registers a freshly materialised page image (e.g. a newly
// allocated page, or a page rebuilt by recovery) as dirty.
func (pl *Pool) Install(id oid.PageID, data []byte) *Page {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if old, ok := pl.pages[id]; ok {
		copy(old.Data, data)
		pl.markDirtyLocked(old)
		return old
	}
	p := &Page{ID: id, Data: data, dirty: true}
	pl.pages[id] = p
	pl.nDirty++
	return p
}

// MarkDirty flags a page as modified, removing it from the clean LRU so
// it cannot be evicted before the next flush.
func (pl *Pool) MarkDirty(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.markDirtyLocked(p)
}

func (pl *Pool) markDirtyLocked(p *Page) {
	if p.dirty {
		return
	}
	p.dirty = true
	pl.nDirty++
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
		p.lruElem = nil
	}
}

// MarkClean clears a page's dirty flag without writing it (used when an
// abort restores the page to its last-flushed image).
func (pl *Pool) MarkClean(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !p.dirty {
		return
	}
	p.dirty = false
	pl.nDirty--
	pl.insertCleanExisting(p)
	pl.evictOverflow()
}

// DirtyPages returns the resident dirty pages in unspecified order.
func (pl *Pool) DirtyPages() []*Page {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.dirtyPagesLocked()
}

func (pl *Pool) dirtyPagesLocked() []*Page {
	out := make([]*Page, 0, pl.nDirty)
	for _, p := range pl.pages {
		if p.dirty {
			out = append(out, p)
		}
	}
	// Sorted by page id so flushes issue sequential I/O and, just as
	// important, a deterministic write sequence: the fault matrix
	// identifies an injection point by its global operation number.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FlushDirty writes every dirty page to the page file (without syncing)
// and moves the pages to the clean LRU. The caller is responsible for
// ordering this after WAL durability and for the final Sync.
func (pl *Pool) FlushDirty() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, p := range pl.dirtyPagesLocked() {
		if err := pl.file.WritePage(p.ID, p.Data); err != nil {
			return err
		}
		p.dirty = false
		pl.nDirty--
		pl.insertCleanExisting(p)
	}
	pl.evictOverflow()
	return nil
}

// DropDirty discards every dirty page image without writing it (used on
// abort after before-images are restored, and by recovery resets).
func (pl *Pool) DropDirty() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for id, p := range pl.pages {
		if p.dirty {
			delete(pl.pages, id)
			pl.nDirty--
		}
	}
}

// Forget removes a page from the cache entirely (used when a page is
// freed).
func (pl *Pool) Forget(id oid.PageID) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p, ok := pl.pages[id]
	if !ok {
		return
	}
	if p.dirty {
		pl.nDirty--
	}
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
	}
	delete(pl.pages, id)
}

// Pin marks p as never evictable (used for the superblock, whose decoded
// form is cached by the Store).
func (pl *Pool) Pin(p *Page) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p.pinned = true
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.Remove(el)
		p.lruElem = nil
	}
}

func (pl *Pool) insertClean(p *Page) {
	pl.pages[p.ID] = p
	if !p.pinned {
		p.lruElem = pl.cleanLRU.PushFront(p)
	}
	pl.evictOverflow()
}

func (pl *Pool) insertCleanExisting(p *Page) {
	if !p.pinned {
		p.lruElem = pl.cleanLRU.PushFront(p)
	}
}

func (pl *Pool) touch(p *Page) {
	if el, ok := p.lruElem.(*list.Element); ok && el != nil {
		pl.cleanLRU.MoveToFront(el)
	}
}

func (pl *Pool) evictOverflow() {
	for pl.cleanLRU.Len() > pl.capacity {
		back := pl.cleanLRU.Back()
		if back == nil {
			return
		}
		victim := pl.cleanLRU.Remove(back).(*Page)
		victim.lruElem = nil
		delete(pl.pages, victim.ID)
		pl.evictions++
	}
}
