package storage

import (
	"bytes"
	"errors"
	"testing"

	"ode/internal/oid"
)

// chunkCap mirrors the heap's overflow chunk capacity for a page size.
func chunkCap(pageSize int) int { return pageSize - HeaderSize - ovHeader }

func TestOverflowChunkBoundaries(t *testing.T) {
	const ps = 512
	_, v, _ := tempWriter(t, Options{PageSize: ps})
	h := NewHeap(v, nil)
	cap1 := chunkCap(ps)
	// Records exactly at, one below, and one above chunk multiples.
	sizes := []int{
		h.maxInlinePayload(),     // largest inline
		h.maxInlinePayload() + 1, // smallest overflow
		cap1 - 1, cap1, cap1 + 1,
		2*cap1 - 1, 2 * cap1, 2*cap1 + 1,
		5*cap1 + 7,
	}
	for _, n := range sizes {
		data := bytes.Repeat([]byte{byte(n)}, n)
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, err := h.Read(rid)
		if err != nil {
			t.Fatalf("size %d read: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: roundtrip mismatch (%d bytes back)", n, len(got))
		}
	}
}

func TestEmptyRecord(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	rid, err := h.Insert(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty record: %v %v", got, err)
	}
	if err := h.Update(rid, []byte("now has content")); err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, nil); err != nil {
		t.Fatal(err)
	}
	got, err = h.Read(rid)
	if err != nil || len(got) != 0 {
		t.Fatalf("re-emptied record: %v %v", got, err)
	}
}

func TestHeapOpsOnWrongPageType(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	// Allocate a btree page and aim a RID at it.
	p, err := v.Allocate(PageBTree)
	if err != nil {
		t.Fatal(err)
	}
	bad := oid.RID{Page: p.ID, Slot: 0}
	if _, err := h.Read(bad); !errors.Is(err, ErrPageType) {
		t.Fatalf("read from btree page: %v", err)
	}
	if err := h.Update(bad, []byte("x")); !errors.Is(err, ErrPageType) {
		t.Fatalf("update on btree page: %v", err)
	}
	if err := h.Delete(bad); !errors.Is(err, ErrPageType) {
		t.Fatalf("delete on btree page: %v", err)
	}
}

func TestReadBeyondFile(t *testing.T) {
	st, _ := tempStore(t, Options{PageSize: 512})
	if _, err := st.Get(999); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read beyond EOF: %v", err)
	}
}

func TestScanEarlyStopAndError(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	for i := 0; i < 10; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := h.Scan(func(_ oid.RID, _ []byte) (bool, error) {
		n++
		return n < 3, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop: %d", n)
	}
	sentinel := errors.New("stop with error")
	err := h.Scan(func(oid.RID, []byte) (bool, error) { return false, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("scan error not propagated: %v", err)
	}
}
