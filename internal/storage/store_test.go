package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ode/internal/oid"
)

func tempStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.ode")
	st, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

// tempWriter is tempStore plus an untracked writer view, for tests that
// exercise page-level behaviour without a transaction layer.
func tempWriter(t *testing.T, opts Options) (*Store, *TxView, string) {
	t.Helper()
	st, path := tempStore(t, opts)
	return st, st.OpenWriter(nil), path
}

func TestCreateOpenRoundtrip(t *testing.T) {
	st, v, path := tempWriter(t, Options{PageSize: 1024})
	v.SetRoot(0, 7)
	v.SetCounter(2, 99)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.PageSize() != 1024 {
		t.Fatalf("page size %d", st2.PageSize())
	}
	v2 := st2.OpenWriter(nil)
	if v2.Root(0) != 7 {
		t.Fatalf("root = %v", v2.Root(0))
	}
	if v2.Counter(2) != 99 {
		t.Fatalf("counter = %d", v2.Counter(2))
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	_, path := tempStore(t, Options{})
	if _, err := Create(path, Options{}); err == nil {
		t.Fatal("Create over existing store must fail")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, bytes.Repeat([]byte("nope"), 300), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	st, v, path := tempWriter(t, Options{PageSize: 512})
	p, err := v.Allocate(PageSlotted)
	if err != nil {
		t.Fatal(err)
	}
	p = v.Touch(p)
	if _, err := SlottedInsert(p, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	pid := p.ID
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the allocated page on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[int(pid)*512+100] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Get(pid); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestAllocateFreeReuse(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	p1, err := v.Allocate(PageSlotted)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := v.Allocate(PageBTree)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID == p2.ID {
		t.Fatal("duplicate allocation")
	}
	id1 := p1.ID
	if err := v.Free(id1); err != nil {
		t.Fatal(err)
	}
	p3, err := v.Allocate(PageOverflow)
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID != id1 {
		t.Fatalf("free page not reused: got %v want %v", p3.ID, id1)
	}
	if p3.Type() != PageOverflow {
		t.Fatalf("recycled page type %v", p3.Type())
	}
}

func TestFreeSuperblockRejected(t *testing.T) {
	_, v, _ := tempWriter(t, Options{})
	if err := v.Free(0); err == nil {
		t.Fatal("freeing page 0 must fail")
	}
}

func TestPoolEviction(t *testing.T) {
	st, v, _ := tempWriter(t, Options{PageSize: 512, PoolPages: 8})
	// Allocate and flush many pages so they become clean and evictable.
	var ids []oid.PageID
	for i := 0; i < 64; i++ {
		p, err := v.Allocate(PageSlotted)
		if err != nil {
			t.Fatal(err)
		}
		p = v.Touch(p)
		if _, err := SlottedInsert(p, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	if err := st.FlushAll(); err != nil {
		t.Fatal(err)
	}
	total, dirty := st.Pool().Resident()
	if dirty != 0 {
		t.Fatalf("dirty pages after flush: %d", dirty)
	}
	if total > 16 { // 8 cap + pinned super + slack
		t.Fatalf("pool did not evict: %d resident", total)
	}
	// Every page still readable (from disk) with intact content.
	for i, id := range ids {
		p, err := st.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SlottedRead(p, 0)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("page %v content lost: %v", id, err)
		}
	}
	_, _, ev := st.Pool().Stats()
	if ev == 0 {
		t.Fatal("expected evictions")
	}
}

func TestSuperblockSurvivesEvictionPressure(t *testing.T) {
	st, v, path := tempWriter(t, Options{PageSize: 512, PoolPages: 8})
	v.SetCounter(0, 1234)
	for i := 0; i < 50; i++ {
		if _, err := v.Allocate(PageSlotted); err != nil {
			t.Fatal(err)
		}
		if err := st.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	if v.Counter(0) != 1234 {
		t.Fatal("superblock counter lost under pressure")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.OpenWriter(nil).Counter(0) != 1234 {
		t.Fatal("superblock counter lost across reopen")
	}
}

func TestHeapInsertReadDelete(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	r1, err := h.Insert([]byte("hello heap"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(r1)
	if err != nil || string(got) != "hello heap" {
		t.Fatalf("read: %q %v", got, err)
	}
	if err := h.Delete(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(r1); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("want ErrNoRecord, got %v", err)
	}
}

func TestHeapLargeRecordOverflow(t *testing.T) {
	st, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	big := make([]byte, 10_000)
	rng := rand.New(rand.NewSource(7))
	rng.Read(big)
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow roundtrip corrupt")
	}
	// Deleting must release the overflow pages back to the free list.
	before := st.NumPages()
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	// Re-inserting an equal record must not grow the file.
	if _, err := h.Insert(big); err != nil {
		t.Fatal(err)
	}
	if st.NumPages() > before {
		t.Fatalf("overflow pages not recycled: %d > %d", st.NumPages(), before)
	}
}

func TestHeapUpdateTransitions(t *testing.T) {
	st, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	rid, err := h.Insert([]byte("small"))
	if err != nil {
		t.Fatal(err)
	}
	// small -> huge (inline to overflow, RID stable)
	huge := bytes.Repeat([]byte("H"), 5000)
	if err := h.Update(rid, huge); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Read(rid); !bytes.Equal(got, huge) {
		t.Fatal("inline->overflow failed")
	}
	// huge -> small (overflow back to inline, chain freed)
	if err := h.Update(rid, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Read(rid); string(got) != "tiny" {
		t.Fatal("overflow->inline failed")
	}
	// Chain pages recycled: a fresh huge insert must reuse them.
	before := st.NumPages()
	if _, err := h.Insert(huge); err != nil {
		t.Fatal(err)
	}
	if st.NumPages() > before {
		t.Fatal("old overflow chain leaked")
	}
}

func TestHeapModelCheck(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 1024})
	h := NewHeap(v, nil)
	rng := rand.New(rand.NewSource(99))
	model := map[oid.RID][]byte{}
	var rids []oid.RID
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5:
			data := make([]byte, rng.Intn(300))
			rng.Read(data)
			rid, err := h.Insert(data)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("step %d: RID %v reused while live", step, rid)
			}
			model[rid] = data
			rids = append(rids, rid)
		case op < 8 && len(model) > 0:
			rid := rids[rng.Intn(len(rids))]
			if _, live := model[rid]; !live {
				continue
			}
			data := make([]byte, rng.Intn(2000))
			rng.Read(data)
			if err := h.Update(rid, data); err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			model[rid] = data
		case len(model) > 0:
			rid := rids[rng.Intn(len(rids))]
			if _, live := model[rid]; !live {
				continue
			}
			if err := h.Delete(rid); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, rid)
		}
	}
	for rid, want := range model {
		got, err := h.Read(rid)
		if err != nil {
			t.Fatalf("final read %v: %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final mismatch at %v", rid)
		}
	}
	// Scan agrees with the model.
	seen := 0
	err := h.Scan(func(rid oid.RID, data []byte) (bool, error) {
		want, ok := model[rid]
		if !ok {
			t.Fatalf("scan found unmodelled %v", rid)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("scan mismatch at %v", rid)
		}
		seen++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("scan saw %d of %d", seen, len(model))
	}
}

func TestHeapSpaceReuseAcrossReopen(t *testing.T) {
	st, v, path := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	var rids []oid.RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 50))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Free half the records, then reopen: the sweep should find the holes
	// instead of growing the file.
	for i := 0; i < len(rids); i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2 := NewHeap(st2.OpenWriter(nil), nil)
	before := st2.NumPages()
	for i := 0; i < 40; i++ {
		if _, err := h2.Insert(bytes.Repeat([]byte{0xAA}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if st2.NumPages() > before {
		t.Fatalf("sweep failed: file grew %d -> %d", before, st2.NumPages())
	}
}

type recordingTracker struct {
	mutated   map[oid.PageID]int
	allocated map[oid.PageID]bool
}

func (rt *recordingTracker) BeforeMutate(id oid.PageID, before []byte, wasDirty bool) {
	if rt.mutated == nil {
		rt.mutated = map[oid.PageID]int{}
	}
	rt.mutated[id]++
}

func (rt *recordingTracker) DidAllocate(id oid.PageID) {
	if rt.allocated == nil {
		rt.allocated = map[oid.PageID]bool{}
	}
	rt.allocated[id] = true
}

func (rt *recordingTracker) Tracked(id oid.PageID) bool {
	return rt.allocated[id] || rt.mutated[id] > 0
}

func TestTrackerSeesMutationsAndAllocations(t *testing.T) {
	st, _ := tempStore(t, Options{PageSize: 512})
	tr := &recordingTracker{}
	v := st.OpenWriter(tr)
	h := NewHeap(v, nil)
	rid, err := h.Insert([]byte("tracked"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.allocated) == 0 {
		t.Fatal("tracker missed allocation")
	}
	if tr.mutated[0] == 0 {
		t.Fatal("tracker missed superblock mutation")
	}
	// A Tracked page must be copied only once: the second insert touches
	// the same pages without growing the mutation counts unboundedly.
	if tr.mutated[0] != 1 {
		t.Fatalf("superblock before-image captured %d times", tr.mutated[0])
	}
	// A fresh untracked writer view (a new "transaction") still operates
	// on the same live pages.
	h2 := NewHeap(st.OpenWriter(nil), NewHeapState())
	if err := h2.Delete(rid); err != nil {
		t.Fatal(err)
	}
}

func TestCensus(t *testing.T) {
	_, v, _ := tempWriter(t, Options{PageSize: 512})
	h := NewHeap(v, nil)
	var rids []oid.RID
	for i := 0; i < 20; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte(i)}, 60))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// One big record forces overflow pages; one freed page.
	if _, err := h.Insert(bytes.Repeat([]byte("O"), 3000)); err != nil {
		t.Fatal(err)
	}
	p, err := v.Allocate(PageBTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Free(p.ID); err != nil {
		t.Fatal(err)
	}
	c, err := v.Census()
	if err != nil {
		t.Fatal(err)
	}
	if c.Super != 1 {
		t.Fatalf("super pages = %d", c.Super)
	}
	if c.Slotted == 0 || c.Overflow == 0 || c.Free != 1 {
		t.Fatalf("census = %+v", c)
	}
	if c.Records != 21 {
		t.Fatalf("records = %d", c.Records)
	}
	if c.SlottedLiveBytes < 20*60 {
		t.Fatalf("live bytes = %d", c.SlottedLiveBytes)
	}
	// Deleting half the records grows reusable space.
	before := c.SlottedFreeBytes
	for i := 0; i < 10; i++ {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := v.Census()
	if err != nil {
		t.Fatal(err)
	}
	if c2.SlottedFreeBytes <= before || c2.Records != 11 {
		t.Fatalf("census after deletes = %+v", c2)
	}
}
