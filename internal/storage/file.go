package storage

import (
	"errors"
	"fmt"
	"io"
	"os"

	"ode/internal/faultfs"
	"ode/internal/oid"
)

// ErrOutOfRange reports a read of a page beyond the end of the file.
var ErrOutOfRange = errors.New("storage: page out of range")

// File is the page-granular I/O layer over one file. It knows nothing
// about page contents beyond the checksum seal. All I/O goes through a
// faultfs.FS so the crash-consistency matrix can inject device faults;
// production uses faultfs.OS, a zero-cost passthrough.
type File struct {
	f        faultfs.File
	pageSize int
	nPages   uint32 // pages physically present in the file
	readonly bool
}

// OpenFile opens (or creates) a page file on fsys (nil means the real
// OS filesystem). pageSize is only used when the file is created; an
// existing file's true page size is established by the superblock and
// validated by the Store.
func OpenFile(fsys faultfs.FS, path string, pageSize int, readonly bool) (*File, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if pageSize < MinPageSize || pageSize > MaxPageSize {
		return nil, fmt.Errorf("storage: page size %d out of range [%d,%d]", pageSize, MinPageSize, MaxPageSize)
	}
	flags := os.O_RDWR | os.O_CREATE
	if readonly {
		flags = os.O_RDONLY
	}
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if size%int64(pageSize) != 0 {
		// A torn trailing page can only be an unflushed page the WAL will
		// re-write during recovery; round down rather than failing.
		// Recovery rewrites any page whose image is in the committed log.
		st0 := size - size%int64(pageSize)
		if !readonly {
			if err := f.Truncate(st0); err != nil {
				f.Close()
				return nil, fmt.Errorf("storage: truncate torn page: %w", err)
			}
		}
		size = st0
	}
	return &File{
		f:        f,
		pageSize: pageSize,
		nPages:   uint32(size / int64(pageSize)),
		readonly: readonly,
	}, nil
}

// PageSize returns the configured page size.
func (fl *File) PageSize() int { return fl.pageSize }

// NumPages returns the number of pages physically in the file.
func (fl *File) NumPages() uint32 { return fl.nPages }

// ReadPage reads page id into buf (which must be pageSize long) and
// verifies its checksum.
func (fl *File) ReadPage(id oid.PageID, buf []byte) error {
	if uint32(id) >= fl.nPages {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, id, fl.nPages)
	}
	if _, err := fl.f.ReadAt(buf, int64(id)*int64(fl.pageSize)); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: page %d (short file)", ErrOutOfRange, id)
		}
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if err := verifyChecksum(buf); err != nil {
		return fmt.Errorf("page %d: %w", id, err)
	}
	return nil
}

// WritePage seals buf's checksum and writes it as page id, extending the
// file if necessary. buf is modified in place (checksum field).
func (fl *File) WritePage(id oid.PageID, buf []byte) error {
	if fl.readonly {
		return errors.New("storage: write on read-only file")
	}
	sealChecksum(buf)
	if _, err := fl.f.WriteAt(buf, int64(id)*int64(fl.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if uint32(id) >= fl.nPages {
		fl.nPages = uint32(id) + 1
	}
	return nil
}

// Sync flushes the file to stable storage.
func (fl *File) Sync() error {
	if fl.readonly {
		return nil
	}
	if err := fl.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close closes the underlying file without flushing.
func (fl *File) Close() error { return fl.f.Close() }
