package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"ode/internal/oid"
)

// ErrTxDone reports use of a transaction handle after its closure
// returned (a *Tx that escaped View/Update, or a double Close).
var ErrTxDone = errors.New("ode: transaction has ended (handle escaped its closure?)")

// TxView is a per-transaction handle onto the store. All page and
// superblock access during a transaction goes through one: a writer view
// (OpenWriter) mutates live pages via copy-on-write Touch and carries
// the transaction's MutationTracker; a reader view (OpenReader) pins the
// current epoch and resolves every page — and its private superblock
// decode — against that epoch's snapshots, so it observes exactly the
// committed state at its start no matter what writers do concurrently.
//
// Replacing the old process-global Store.SetTracker seam, the handle is
// the transaction identity: it is created by the transaction layer,
// threaded through heap/btree/engine code, and dies with the
// transaction (Close flips done; later calls return ErrTxDone).
type TxView struct {
	store   *Store
	tracker MutationTracker // nil for readers
	epoch   uint64          // pinned epoch (readers only)
	rsuper  super           // reader's private superblock decode
	write   bool
	done    atomic.Bool
}

// OpenWriter creates the writer view for a transaction. The transaction
// layer has already serialised writers; tr captures before-images for
// abort and the dirty set for WAL logging.
func (s *Store) OpenWriter(tr MutationTracker) *TxView {
	return &TxView{store: s, tracker: tr, write: true}
}

// OpenReader creates a reader view pinned at the current epoch. It must
// be Closed to release the pin (and with it any snapshot pages held for
// this epoch).
func (s *Store) OpenReader() (*TxView, error) {
	v := &TxView{store: s, epoch: s.pool.PinEpoch()}
	sp, err := s.pool.GetAt(0, v.epoch)
	if err != nil {
		s.pool.UnpinEpoch(v.epoch)
		return nil, fmt.Errorf("storage: superblock at epoch %d: %w", v.epoch, err)
	}
	if err := v.rsuper.unmarshalFrom(sp); err != nil {
		s.pool.UnpinEpoch(v.epoch)
		return nil, err
	}
	return v, nil
}

// Close ends the view. For readers it releases the epoch pin; every
// later accessor call returns ErrTxDone. Close is idempotent.
func (v *TxView) Close() {
	if v.done.Swap(true) {
		return
	}
	if !v.write {
		v.store.pool.UnpinEpoch(v.epoch)
	}
}

// Writable reports whether this is a writer view.
func (v *TxView) Writable() bool { return v.write }

// Epoch returns the reader's pinned epoch (writers return the live
// epoch at call time).
func (v *TxView) Epoch() uint64 {
	if v.write {
		return v.store.pool.Epoch()
	}
	return v.epoch
}

// sup returns the superblock this view resolves against: the live one
// for writers, the private epoch-pinned decode for readers.
func (v *TxView) sup() *super {
	if v.write {
		return &v.store.super
	}
	return &v.rsuper
}

// Get fetches a page as seen by this view.
func (v *TxView) Get(id oid.PageID) (*Page, error) {
	if v.done.Load() {
		return nil, ErrTxDone
	}
	if v.write {
		return v.store.pool.Get(id)
	}
	return v.store.pool.GetAt(id, v.epoch)
}

// GetTyped is Get plus a page-type assertion.
func (v *TxView) GetTyped(id oid.PageID, want PageType) (*Page, error) {
	p, err := v.Get(id)
	if err != nil {
		return nil, err
	}
	if p.Type() != want {
		return nil, fmt.Errorf("%w: page %d is %v, want %v", ErrPageType, id, p.Type(), want)
	}
	return p, nil
}

// Touch prepares a page for mutation and returns the page object the
// caller must mutate from here on. On the first touch of a page in a
// transaction this performs the copy-on-write swap: the prior image is
// published as the current epoch's snapshot (keeping concurrent readers
// consistent), a writable copy becomes the live page, and the tracker
// records the before-image for abort and WAL logging. Later touches of
// the same page return the already-writable live object.
func (v *TxView) Touch(p *Page) *Page {
	if !v.write {
		panic("storage: Touch on read-only view")
	}
	if v.done.Load() {
		panic(ErrTxDone)
	}
	if v.tracker != nil && v.tracker.Tracked(p.ID) {
		// Already copied (or freshly allocated) this transaction; make
		// sure the caller holds the live object, not a stale pre-COW
		// pointer.
		if live := v.store.pool.Live(p.ID); live != nil {
			return live
		}
		return p
	}
	np, before, wasDirty := v.store.pool.COW(p)
	if v.tracker != nil {
		v.tracker.BeforeMutate(np.ID, before, wasDirty)
	}
	if np.ID == 0 {
		v.store.supPg = np
	}
	return np
}

// Allocate returns a zeroed dirty page of the requested type, reusing
// the free list when possible.
func (v *TxView) Allocate(t PageType) (*Page, error) {
	if !v.write {
		return nil, errors.New("storage: Allocate on read-only view")
	}
	if v.done.Load() {
		return nil, ErrTxDone
	}
	s := v.store
	var p *Page
	if s.super.freeHead != oid.NilPage {
		id := s.super.freeHead
		fp, err := s.pool.GetTyped(id, PageFree)
		if err != nil {
			return nil, fmt.Errorf("storage: free list: %w", err)
		}
		next := oid.PageID(binary.BigEndian.Uint32(fp.Body()[0:4]))
		fp = v.Touch(fp)
		s.super.freeHead = next
		v.touchSuper()
		clear(fp.Data)
		p = fp
	} else {
		id := oid.PageID(s.super.nPages)
		s.super.nPages++
		v.touchSuper()
		p = s.pool.Install(id, make([]byte, s.PageSize()))
		if v.tracker != nil {
			v.tracker.DidAllocate(id)
		}
	}
	p.SetType(t)
	if t == PageSlotted {
		SlottedInit(p)
	}
	return p, nil
}

// Free returns a page to the free list.
func (v *TxView) Free(id oid.PageID) error {
	if !v.write {
		return errors.New("storage: Free on read-only view")
	}
	if v.done.Load() {
		return ErrTxDone
	}
	if id == 0 {
		return errors.New("storage: cannot free superblock")
	}
	s := v.store
	p, err := s.pool.Get(id)
	if err != nil {
		return err
	}
	p = v.Touch(p)
	clear(p.Data)
	p.SetType(PageFree)
	binary.BigEndian.PutUint32(p.Body()[0:4], uint32(s.super.freeHead))
	s.super.freeHead = id
	v.touchSuper()
	return nil
}

// Root returns named structure root i as seen by this view.
func (v *TxView) Root(i int) oid.PageID { return v.sup().roots[i] }

// SetRoot updates named structure root i.
func (v *TxView) SetRoot(i int, id oid.PageID) {
	if !v.write {
		panic("storage: SetRoot on read-only view")
	}
	v.store.super.roots[i] = id
	v.touchSuper()
}

// Counter returns persistent counter i as seen by this view.
func (v *TxView) Counter(i int) uint64 { return v.sup().counters[i] }

// SetCounter stores persistent counter i.
func (v *TxView) SetCounter(i int, val uint64) {
	if !v.write {
		panic("storage: SetCounter on read-only view")
	}
	v.store.super.counters[i] = val
	v.touchSuper()
}

// NextCounter increments persistent counter i and returns the new value
// (so counters start handing out 1, keeping 0 as nil).
func (v *TxView) NextCounter(i int) uint64 {
	if !v.write {
		panic("storage: NextCounter on read-only view")
	}
	v.store.super.counters[i]++
	v.touchSuper()
	return v.store.super.counters[i]
}

// touchSuper re-marshals the (already mutated) live superblock into
// page 0, copy-on-writing it first so readers keep their epoch's image.
func (v *TxView) touchSuper() {
	sp := v.Touch(v.store.supPg)
	v.store.super.marshalInto(sp)
}

// PageSize returns the store's page size.
func (v *TxView) PageSize() int { return v.store.PageSize() }

// NumPages returns the logical page count as seen by this view.
func (v *TxView) NumPages() uint64 { return v.sup().nPages }

// Census scans every page visible to this view and tallies the census.
// O(file size).
func (v *TxView) Census() (Census, error) {
	var c Census
	n := v.sup().nPages
	for pid := uint64(0); pid < n; pid++ {
		p, err := v.Get(oid.PageID(pid))
		if err != nil {
			return Census{}, err
		}
		switch p.Type() {
		case PageSuper:
			c.Super++
		case PageSlotted:
			c.Slotted++
			c.SlottedFreeBytes += uint64(SlottedFreeSpace(p))
			SlottedSlots(p, func(_ uint16, data []byte) bool {
				c.Records++
				c.SlottedLiveBytes += uint64(len(data))
				return true
			})
		case PageOverflow:
			c.Overflow++
		case PageBTree:
			c.BTree++
		case PageFree:
			c.Free++
		}
	}
	return c, nil
}
