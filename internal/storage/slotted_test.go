package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newTestPage(size int) *Page {
	p := &Page{ID: 1, Data: make([]byte, size)}
	SlottedInit(p)
	return p
}

func TestSlottedInsertRead(t *testing.T) {
	p := newTestPage(512)
	s1, err := SlottedInsert(p, []byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SlottedInsert(p, []byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slots")
	}
	got, err := SlottedRead(p, s1)
	if err != nil || string(got) != "alpha" {
		t.Fatalf("read s1: %q %v", got, err)
	}
	got, err = SlottedRead(p, s2)
	if err != nil || string(got) != "beta" {
		t.Fatalf("read s2: %q %v", got, err)
	}
	if SlottedCount(p) != 2 {
		t.Fatalf("count = %d", SlottedCount(p))
	}
}

func TestSlottedDeleteReuse(t *testing.T) {
	p := newTestPage(512)
	s1, _ := SlottedInsert(p, []byte("one"))
	s2, _ := SlottedInsert(p, []byte("two"))
	if err := SlottedDelete(p, s1); err != nil {
		t.Fatal(err)
	}
	if _, err := SlottedRead(p, s1); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("want ErrBadSlot, got %v", err)
	}
	// s2 still readable.
	if got, err := SlottedRead(p, s2); err != nil || string(got) != "two" {
		t.Fatalf("s2 after delete: %q %v", got, err)
	}
	// New insert reuses the freed slot number.
	s3, err := SlottedInsert(p, []byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("slot not reused: got %d want %d", s3, s1)
	}
}

func TestSlottedDeleteErrors(t *testing.T) {
	p := newTestPage(512)
	if err := SlottedDelete(p, 0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("delete nonexistent: %v", err)
	}
	s, _ := SlottedInsert(p, []byte("x"))
	if err := SlottedDelete(p, s); err != nil {
		t.Fatal(err)
	}
	// Trailing slot was shrunk away, so the slot is now out of range.
	if err := SlottedDelete(p, s); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSlottedFull(t *testing.T) {
	p := newTestPage(512)
	payload := bytes.Repeat([]byte("z"), 64)
	inserted := 0
	for {
		_, err := SlottedInsert(p, payload)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
		if inserted > 100 {
			t.Fatal("page never filled")
		}
	}
	// (512 - 16 - 6) usable ≈ 490; each record costs 64+4.
	if inserted < 5 || inserted > 8 {
		t.Fatalf("implausible fill count %d", inserted)
	}
}

func TestSlottedOversizedCell(t *testing.T) {
	p := newTestPage(512)
	_, err := SlottedInsert(p, make([]byte, MaxCell(512)+1))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("want ErrPageFull, got %v", err)
	}
	// Exactly MaxCell fits in an empty page.
	if _, err := SlottedInsert(p, make([]byte, MaxCell(512))); err != nil {
		t.Fatalf("MaxCell insert failed: %v", err)
	}
}

func TestSlottedUpdateShrinkGrow(t *testing.T) {
	p := newTestPage(512)
	s, _ := SlottedInsert(p, []byte("0123456789"))
	if err := SlottedUpdate(p, s, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got, _ := SlottedRead(p, s); string(got) != "abc" {
		t.Fatalf("after shrink: %q", got)
	}
	if err := SlottedUpdate(p, s, bytes.Repeat([]byte("G"), 100)); err != nil {
		t.Fatal(err)
	}
	if got, _ := SlottedRead(p, s); len(got) != 100 || got[0] != 'G' {
		t.Fatalf("after grow: %d bytes", len(got))
	}
}

func TestSlottedUpdateTooBigLeavesOldIntact(t *testing.T) {
	p := newTestPage(256)
	s, _ := SlottedInsert(p, []byte("keepme"))
	err := SlottedUpdate(p, s, make([]byte, MaxCell(256)+10))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("want ErrPageFull, got %v", err)
	}
	if got, err := SlottedRead(p, s); err != nil || string(got) != "keepme" {
		t.Fatalf("old cell destroyed: %q %v", got, err)
	}
}

func TestSlottedCompactionReclaims(t *testing.T) {
	p := newTestPage(512)
	var slots []uint16
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 8; i++ {
		s, err := SlottedInsert(p, payload)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Delete every other cell, creating fragmentation.
	for i := 0; i < len(slots); i += 2 {
		if err := SlottedDelete(p, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A large insert must succeed via compaction.
	big := bytes.Repeat([]byte("B"), 120)
	s, err := SlottedInsert(p, big)
	if err != nil {
		t.Fatalf("compaction failed to reclaim: %v", err)
	}
	if got, _ := SlottedRead(p, s); !bytes.Equal(got, big) {
		t.Fatal("compacted insert corrupt")
	}
	// Survivors unharmed.
	for i := 1; i < 8; i += 2 {
		got, err := SlottedRead(p, slots[i])
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("survivor %d corrupted: %v", i, err)
		}
	}
}

// TestSlottedModelCheck drives a slotted page against a map model with
// random inserts, updates, and deletes.
func TestSlottedModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := newTestPage(1024)
	model := map[uint16][]byte{}
	for step := 0; step < 5000; step++ {
		op := rng.Intn(10)
		switch {
		case op < 5: // insert
			data := make([]byte, rng.Intn(60)+1)
			rng.Read(data)
			s, err := SlottedInsert(p, data)
			if errors.Is(err, ErrPageFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			if _, exists := model[s]; exists {
				t.Fatalf("step %d: slot %d reused while live", step, s)
			}
			model[s] = data
		case op < 8: // update
			s, ok := anyKey(rng, model)
			if !ok {
				continue
			}
			data := make([]byte, rng.Intn(120)+1)
			rng.Read(data)
			err := SlottedUpdate(p, s, data)
			if errors.Is(err, ErrPageFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d update: %v", step, err)
			}
			model[s] = data
		default: // delete
			s, ok := anyKey(rng, model)
			if !ok {
				continue
			}
			if err := SlottedDelete(p, s); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			delete(model, s)
		}
		// Periodic full validation.
		if step%250 == 0 {
			validateAgainstModel(t, p, model, step)
		}
	}
	validateAgainstModel(t, p, model, -1)
}

func anyKey(rng *rand.Rand, m map[uint16][]byte) (uint16, bool) {
	if len(m) == 0 {
		return 0, false
	}
	n := rng.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k, true
		}
		n--
	}
	panic("unreachable")
}

func validateAgainstModel(t *testing.T, p *Page, model map[uint16][]byte, step int) {
	t.Helper()
	if SlottedCount(p) != len(model) {
		t.Fatalf("step %d: count %d != model %d", step, SlottedCount(p), len(model))
	}
	for s, want := range model {
		got, err := SlottedRead(p, s)
		if err != nil {
			t.Fatalf("step %d slot %d: %v", step, s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d slot %d: data mismatch", step, s)
		}
	}
	seen := 0
	SlottedSlots(p, func(slot uint16, data []byte) bool {
		want, ok := model[slot]
		if !ok {
			t.Fatalf("step %d: iterator found unmodelled slot %d", step, slot)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("step %d: iterator data mismatch at %d", step, slot)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("step %d: iterator saw %d of %d", step, seen, len(model))
	}
}

func TestSlottedSlotsEarlyStop(t *testing.T) {
	p := newTestPage(512)
	for i := 0; i < 4; i++ {
		if _, err := SlottedInsert(p, []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	SlottedSlots(p, func(uint16, []byte) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop ignored: %d", n)
	}
}
