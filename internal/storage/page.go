// Package storage implements the persistent store underneath the Ode
// reproduction: a checksummed page file, a buffer pool, slotted record
// pages with overflow chains for large records, a free-page list, and a
// superblock holding the roots of every engine structure.
//
// Concurrency model: the transaction layer (internal/txn) serialises
// writers; readers run fully concurrently with the writer by pinning a
// buffer-pool epoch (Store.OpenReader) and resolving pages against
// copy-on-write snapshots, so a page object a reader can reach is never
// mutated. All transactional access goes through a per-transaction
// TxView handle — the Store holds no global transaction state. (The
// paper itself does not discuss concurrency control; this is the
// documented extension.)
package storage

import (
	"errors"
	"fmt"

	"ode/internal/codec"
	"ode/internal/oid"
)

// DefaultPageSize is the page size used unless overridden at creation.
const DefaultPageSize = 4096

// MinPageSize bounds configuration below; slotted arithmetic requires a
// sane minimum.
const MinPageSize = 512

// MaxPageSize bounds configuration above (slot offsets are uint16).
const MaxPageSize = 1 << 16

// PageType tags the role of a page so structural bugs surface as typed
// errors instead of silent corruption.
type PageType uint8

// Page types.
const (
	PageFree     PageType = 0 // on the free list
	PageSuper    PageType = 1 // page 0 only
	PageSlotted  PageType = 2 // record heap page
	PageOverflow PageType = 3 // large-record continuation
	PageBTree    PageType = 4 // B+tree node
)

// String implements fmt.Stringer.
func (t PageType) String() string {
	switch t {
	case PageFree:
		return "free"
	case PageSuper:
		return "super"
	case PageSlotted:
		return "slotted"
	case PageOverflow:
		return "overflow"
	case PageBTree:
		return "btree"
	default:
		return fmt.Sprintf("type%d", uint8(t))
	}
}

// Page header layout. The checksum covers [4:pageSize] and is computed
// when a page is written to stable media (page file or WAL) and verified
// when read back from the page file.
const (
	offChecksum = 0  // u32 CRC-32C
	offType     = 4  // u8 PageType
	offFlags    = 5  // u8 reserved
	offReserved = 6  // u16 reserved
	offPageLSN  = 8  // u64 reserved for LSN bookkeeping
	HeaderSize  = 16 // first byte usable by the page body
)

// ErrChecksum reports a page whose stored CRC does not match its
// contents.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// ErrPageType reports a page whose type tag differs from what the caller
// required.
var ErrPageType = errors.New("storage: unexpected page type")

// Page is an in-memory image of one on-disk page. Data always has
// exactly the store's page size. A Page is owned by the Pool; callers
// mutate Data only via the writable page returned by a writer view's
// Touch (snapshot pages handed to readers are immutable).
type Page struct {
	ID     oid.PageID
	Data   []byte
	dirty  bool
	pinned bool // excluded from eviction (superblock)

	// lruElem is the page's position in the pool's clean-page LRU
	// (a *list.Element), or nil while the page is dirty.
	lruElem any
}

// Type returns the page's type tag.
func (p *Page) Type() PageType { return PageType(p.Data[offType]) }

// SetType sets the page's type tag. The caller must MarkDirty.
func (p *Page) SetType(t PageType) { p.Data[offType] = uint8(t) }

// Dirty reports whether the page has unflushed modifications.
func (p *Page) Dirty() bool { return p.dirty }

// Body returns the page body after the header. Mutations require
// MarkDirty via the pool.
func (p *Page) Body() []byte { return p.Data[HeaderSize:] }

// sealChecksum stamps the CRC into buf (a full page image) prior to a
// stable write.
func sealChecksum(buf []byte) {
	sum := codec.Checksum(buf[offType:])
	buf[0] = byte(sum >> 24)
	buf[1] = byte(sum >> 16)
	buf[2] = byte(sum >> 8)
	buf[3] = byte(sum)
}

// verifyChecksum checks the CRC of a full page image read from disk.
func verifyChecksum(buf []byte) error {
	stored := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	if stored != codec.Checksum(buf[offType:]) {
		return ErrChecksum
	}
	return nil
}
