package storage

import (
	"errors"
	"fmt"

	"ode/internal/codec"
	"ode/internal/oid"
)

// Magic identifies an Ode store file.
const Magic uint64 = 0x4F44455245505231 // "ODEREP R1"

// FormatVersion is bumped on incompatible on-disk changes.
const FormatVersion uint32 = 1

// NumRoots is the number of named structure roots the superblock holds;
// the engine assigns meanings (object table, indexes, catalog, ...).
const NumRoots = 8

// NumCounters is the number of persistent monotonic counters (oid, vid,
// stamp, txid, ...).
const NumCounters = 8

// ErrBadMagic reports a file that is not an Ode store.
var ErrBadMagic = errors.New("storage: bad magic (not an ode store)")

// ErrBadVersion reports an incompatible store format version.
var ErrBadVersion = errors.New("storage: incompatible format version")

// super is the decoded superblock. It is cached by the Store and
// re-marshalled into page 0 whenever mutated.
type super struct {
	pageSize uint32
	nPages   uint64 // logical page count (may exceed physical until flush)
	freeHead oid.PageID
	roots    [NumRoots]oid.PageID
	counters [NumCounters]uint64
	ckptLSN  oid.LSN
}

// Fixed layout offsets within the page body for the peek in openStore:
// magic at body[0:8], version at body[8:12], pageSize at body[12:16].
func (s *super) marshalInto(p *Page) {
	w := codec.NewWriter(256)
	w.U64(Magic)
	w.U32(FormatVersion)
	w.U32(s.pageSize)
	w.U64(s.nPages)
	w.U32(uint32(s.freeHead))
	for _, r := range s.roots {
		w.U32(uint32(r))
	}
	for _, c := range s.counters {
		w.U64(c)
	}
	w.U64(uint64(s.ckptLSN))
	body := p.Body()
	n := copy(body, w.Bytes())
	clear(body[n:]) // deterministic checksums
}

func (s *super) unmarshalFrom(p *Page) error {
	r := codec.NewReader(p.Body())
	if got := r.U64(); got != Magic {
		return fmt.Errorf("%w: %#x", ErrBadMagic, got)
	}
	if got := r.U32(); got != FormatVersion {
		return fmt.Errorf("%w: %d (want %d)", ErrBadVersion, got, FormatVersion)
	}
	s.pageSize = r.U32()
	s.nPages = r.U64()
	s.freeHead = oid.PageID(r.U32())
	for i := range s.roots {
		s.roots[i] = oid.PageID(r.U32())
	}
	for i := range s.counters {
		s.counters[i] = r.U64()
	}
	s.ckptLSN = oid.LSN(r.U64())
	return r.Err()
}
