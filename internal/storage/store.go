package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ode/internal/faultfs"
	"ode/internal/oid"
)

// Options configures store creation and opening.
type Options struct {
	// PageSize applies only when creating a new store. Zero means
	// DefaultPageSize. Capped at 32768 so slotted offsets fit uint16.
	PageSize int
	// PoolPages is the clean-page cache capacity. Zero means
	// DefaultPoolPages.
	PoolPages int
	// ReadOnly opens the store without write permission.
	ReadOnly bool
	// FS is the filesystem the store does its I/O through. Nil means
	// the real OS; tests install a fault-injecting implementation
	// (internal/faultfs) here.
	FS faultfs.FS
}

// MaxStorePageSize is the largest supported page size (slot offsets are
// uint16 and page size itself must be representable).
const MaxStorePageSize = 32768

// MutationTracker observes page mutations so the transaction layer can
// capture before-images (for abort) and dirty sets (for WAL logging).
// BeforeMutate is called on the first copy-on-write of a page in a
// transaction with the pre-image (which aliases the pool's immutable
// snapshot — do not mutate) and whether the page was already dirty;
// DidAllocate when a page id is newly allocated (no before-image
// exists); Tracked reports whether the transaction has already captured
// the page, letting the view skip redundant copies.
type MutationTracker interface {
	BeforeMutate(id oid.PageID, before []byte, wasDirty bool)
	DidAllocate(id oid.PageID)
	Tracked(id oid.PageID) bool
}

// Store combines the page file, buffer pool and superblock into the unit
// the engine programs against. All transactional access goes through a
// per-transaction TxView handle (OpenWriter/OpenReader); the Store
// itself holds no transaction state.
type Store struct {
	file  *File
	pool  *Pool
	super super
	supPg *Page // live page 0, always resident
}

// ReloadSuper re-decodes the superblock from page 0's current image
// (used after abort restores before-images).
func (s *Store) ReloadSuper() error { return s.super.unmarshalFrom(s.supPg) }

// Create initialises a brand-new store file at path. It fails if the
// file already exists and is non-empty.
func Create(path string, opts Options) (*Store, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < MinPageSize || ps > MaxStorePageSize {
		return nil, fmt.Errorf("storage: page size %d out of range [%d,%d]", ps, MinPageSize, MaxStorePageSize)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if size, err := fsys.Stat(path); err == nil && size > 0 {
		return nil, fmt.Errorf("storage: %s already exists", path)
	}
	file, err := OpenFile(fsys, path, ps, false)
	if err != nil {
		return nil, err
	}
	s := &Store{file: file, pool: NewPool(file, poolCap(opts))}
	s.super = super{pageSize: uint32(ps), nPages: 1}
	data := make([]byte, ps)
	s.supPg = s.pool.Install(0, data)
	s.pool.Pin(s.supPg)
	s.supPg.SetType(PageSuper)
	s.super.marshalInto(s.supPg)
	if err := s.FlushAll(); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store, discovering its page size from the
// superblock.
func Open(path string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	ps, err := peekPageSize(fsys, path)
	if err != nil {
		return nil, err
	}
	file, err := OpenFile(fsys, path, ps, opts.ReadOnly)
	if err != nil {
		return nil, err
	}
	s := &Store{file: file, pool: NewPool(file, poolCap(opts))}
	sp, err := s.pool.GetTyped(0, PageSuper)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("storage: superblock: %w", err)
	}
	s.supPg = sp
	s.pool.Pin(sp)
	if err := s.super.unmarshalFrom(sp); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

func poolCap(opts Options) int {
	if opts.PoolPages > 0 {
		return opts.PoolPages
	}
	return DefaultPoolPages
}

// peekPageSize reads the fixed-offset pageSize field from page 0 without
// knowing the page size yet.
func peekPageSize(fsys faultfs.FS, path string) (int, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("storage: open %s: %w", path, err)
	}
	defer f.Close()
	var hdr [HeaderSize + 16]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil && !(n == len(hdr) && err == io.EOF) {
		return 0, fmt.Errorf("storage: %s too short for a store: %w", path, err)
	}
	magic := binary.BigEndian.Uint64(hdr[HeaderSize : HeaderSize+8])
	if magic != Magic {
		return 0, fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	ver := binary.BigEndian.Uint32(hdr[HeaderSize+8 : HeaderSize+12])
	if ver != FormatVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	ps := binary.BigEndian.Uint32(hdr[HeaderSize+12 : HeaderSize+16])
	if ps < MinPageSize || ps > MaxStorePageSize {
		return 0, fmt.Errorf("storage: implausible page size %d in superblock", ps)
	}
	return int(ps), nil
}

// PageSize returns the store's page size.
func (s *Store) PageSize() int { return int(s.super.pageSize) }

// NumPages returns the logical page count (allocated, possibly not yet
// flushed).
func (s *Store) NumPages() uint64 { return s.super.nPages }

// Pool exposes the buffer pool (for stats and txn before-imaging).
func (s *Store) Pool() *Pool { return s.pool }

// Get fetches a page.
func (s *Store) Get(id oid.PageID) (*Page, error) { return s.pool.Get(id) }

// GetTyped fetches a page and asserts its type.
func (s *Store) GetTyped(id oid.PageID, t PageType) (*Page, error) {
	return s.pool.GetTyped(id, t)
}

// Census reports page counts by type plus aggregate slotted-page
// utilisation — the space accounting odedump prints.
type Census struct {
	Super, Slotted, Overflow, BTree, Free uint64
	// SlottedLiveBytes is the sum of live cell bytes across slotted
	// pages; SlottedFreeBytes the reusable space in them.
	SlottedLiveBytes uint64
	SlottedFreeBytes uint64
	Records          uint64
}

// FlushAll writes every dirty page to the page file and syncs it. The
// transaction layer calls this at checkpoints, after WAL durability.
func (s *Store) FlushAll() error {
	if err := s.pool.FlushDirty(); err != nil {
		return err
	}
	return s.file.Sync()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	if err := s.FlushAll(); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}

// CloseNoFlush closes the store without writing anything. The
// transaction layer uses it when the page file must not be touched: the
// caller has either already flushed, or an I/O failure means the WAL is
// the only trustworthy copy and recovery will rebuild the pages.
func (s *Store) CloseNoFlush() error { return s.file.Close() }
