package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"ode/internal/faultfs"
	"ode/internal/oid"
)

// Options configures store creation and opening.
type Options struct {
	// PageSize applies only when creating a new store. Zero means
	// DefaultPageSize. Capped at 32768 so slotted offsets fit uint16.
	PageSize int
	// PoolPages is the clean-page cache capacity. Zero means
	// DefaultPoolPages.
	PoolPages int
	// ReadOnly opens the store without write permission.
	ReadOnly bool
	// FS is the filesystem the store does its I/O through. Nil means
	// the real OS; tests install a fault-injecting implementation
	// (internal/faultfs) here.
	FS faultfs.FS
}

// MaxStorePageSize is the largest supported page size (slot offsets are
// uint16 and page size itself must be representable).
const MaxStorePageSize = 32768

// MutationTracker observes page mutations so the transaction layer can
// capture before-images (for abort) and dirty sets (for WAL logging).
// BeforeMutate is called before the page's contents change; DidAllocate
// when a page id is newly allocated (no before-image exists).
type MutationTracker interface {
	BeforeMutate(p *Page)
	DidAllocate(id oid.PageID)
}

// Store combines the page file, buffer pool and superblock into the unit
// the engine programs against.
type Store struct {
	file    *File
	pool    *Pool
	super   super
	supPg   *Page // page 0, always resident
	tracker MutationTracker
}

// SetTracker installs (or clears, with nil) the mutation tracker.
func (s *Store) SetTracker(t MutationTracker) { s.tracker = t }

// Touch must be called before mutating a page's contents: it gives the
// tracker its chance to capture a before-image, then marks the page
// dirty. All engine code mutates pages via Touch.
func (s *Store) Touch(p *Page) {
	if s.tracker != nil {
		s.tracker.BeforeMutate(p)
	}
	s.pool.MarkDirty(p)
}

// ReloadSuper re-decodes the superblock from page 0's current image
// (used after abort restores before-images).
func (s *Store) ReloadSuper() error { return s.super.unmarshalFrom(s.supPg) }

// Create initialises a brand-new store file at path. It fails if the
// file already exists and is non-empty.
func Create(path string, opts Options) (*Store, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < MinPageSize || ps > MaxStorePageSize {
		return nil, fmt.Errorf("storage: page size %d out of range [%d,%d]", ps, MinPageSize, MaxStorePageSize)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if size, err := fsys.Stat(path); err == nil && size > 0 {
		return nil, fmt.Errorf("storage: %s already exists", path)
	}
	file, err := OpenFile(fsys, path, ps, false)
	if err != nil {
		return nil, err
	}
	s := &Store{file: file, pool: NewPool(file, poolCap(opts))}
	s.super = super{pageSize: uint32(ps), nPages: 1}
	data := make([]byte, ps)
	s.supPg = s.pool.Install(0, data)
	s.pool.Pin(s.supPg)
	s.supPg.SetType(PageSuper)
	s.super.marshalInto(s.supPg)
	if err := s.FlushAll(); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store, discovering its page size from the
// superblock.
func Open(path string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	ps, err := peekPageSize(fsys, path)
	if err != nil {
		return nil, err
	}
	file, err := OpenFile(fsys, path, ps, opts.ReadOnly)
	if err != nil {
		return nil, err
	}
	s := &Store{file: file, pool: NewPool(file, poolCap(opts))}
	sp, err := s.pool.GetTyped(0, PageSuper)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("storage: superblock: %w", err)
	}
	s.supPg = sp
	s.pool.Pin(sp)
	if err := s.super.unmarshalFrom(sp); err != nil {
		file.Close()
		return nil, err
	}
	return s, nil
}

func poolCap(opts Options) int {
	if opts.PoolPages > 0 {
		return opts.PoolPages
	}
	return DefaultPoolPages
}

// peekPageSize reads the fixed-offset pageSize field from page 0 without
// knowing the page size yet.
func peekPageSize(fsys faultfs.FS, path string) (int, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("storage: open %s: %w", path, err)
	}
	defer f.Close()
	var hdr [HeaderSize + 16]byte
	if n, err := f.ReadAt(hdr[:], 0); err != nil && !(n == len(hdr) && err == io.EOF) {
		return 0, fmt.Errorf("storage: %s too short for a store: %w", path, err)
	}
	magic := binary.BigEndian.Uint64(hdr[HeaderSize : HeaderSize+8])
	if magic != Magic {
		return 0, fmt.Errorf("%w: %#x", ErrBadMagic, magic)
	}
	ver := binary.BigEndian.Uint32(hdr[HeaderSize+8 : HeaderSize+12])
	if ver != FormatVersion {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	ps := binary.BigEndian.Uint32(hdr[HeaderSize+12 : HeaderSize+16])
	if ps < MinPageSize || ps > MaxStorePageSize {
		return 0, fmt.Errorf("storage: implausible page size %d in superblock", ps)
	}
	return int(ps), nil
}

// PageSize returns the store's page size.
func (s *Store) PageSize() int { return int(s.super.pageSize) }

// NumPages returns the logical page count (allocated, possibly not yet
// flushed).
func (s *Store) NumPages() uint64 { return s.super.nPages }

// Pool exposes the buffer pool (for stats and txn before-imaging).
func (s *Store) Pool() *Pool { return s.pool }

// Get fetches a page.
func (s *Store) Get(id oid.PageID) (*Page, error) { return s.pool.Get(id) }

// GetTyped fetches a page and asserts its type.
func (s *Store) GetTyped(id oid.PageID, t PageType) (*Page, error) {
	return s.pool.GetTyped(id, t)
}

// MarkDirty flags a page as modified.
func (s *Store) MarkDirty(p *Page) { s.pool.MarkDirty(p) }

// Allocate returns a zeroed dirty page of the requested type, reusing the
// free list when possible.
func (s *Store) Allocate(t PageType) (*Page, error) {
	var p *Page
	if s.super.freeHead != oid.NilPage {
		id := s.super.freeHead
		fp, err := s.pool.GetTyped(id, PageFree)
		if err != nil {
			return nil, fmt.Errorf("storage: free list: %w", err)
		}
		next := oid.PageID(binary.BigEndian.Uint32(fp.Body()[0:4]))
		s.Touch(fp)
		s.super.freeHead = next
		s.markSuper()
		clear(fp.Data)
		p = fp
	} else {
		id := oid.PageID(s.super.nPages)
		s.super.nPages++
		s.markSuper()
		p = s.pool.Install(id, make([]byte, s.PageSize()))
		if s.tracker != nil {
			s.tracker.DidAllocate(id)
		}
	}
	p.SetType(t)
	if t == PageSlotted {
		SlottedInit(p)
	}
	return p, nil
}

// Free returns a page to the free list.
func (s *Store) Free(id oid.PageID) error {
	if id == 0 {
		return errors.New("storage: cannot free superblock")
	}
	p, err := s.pool.Get(id)
	if err != nil {
		return err
	}
	s.Touch(p)
	clear(p.Data)
	p.SetType(PageFree)
	binary.BigEndian.PutUint32(p.Body()[0:4], uint32(s.super.freeHead))
	s.super.freeHead = id
	s.markSuper()
	return nil
}

// Root returns named structure root i.
func (s *Store) Root(i int) oid.PageID { return s.super.roots[i] }

// SetRoot updates named structure root i.
func (s *Store) SetRoot(i int, id oid.PageID) {
	s.super.roots[i] = id
	s.markSuper()
}

// Counter returns persistent counter i.
func (s *Store) Counter(i int) uint64 { return s.super.counters[i] }

// SetCounter stores persistent counter i.
func (s *Store) SetCounter(i int, v uint64) {
	s.super.counters[i] = v
	s.markSuper()
}

// NextCounter increments persistent counter i and returns the new value
// (so counters start handing out 1, keeping 0 as nil).
func (s *Store) NextCounter(i int) uint64 {
	s.super.counters[i]++
	s.markSuper()
	return s.super.counters[i]
}

// CheckpointLSN returns the LSN up to which the page file reflects the
// log.
func (s *Store) CheckpointLSN() oid.LSN { return s.super.ckptLSN }

// SetCheckpointLSN records a new checkpoint LSN.
func (s *Store) SetCheckpointLSN(lsn oid.LSN) {
	s.super.ckptLSN = lsn
	s.markSuper()
}

func (s *Store) markSuper() {
	if s.tracker != nil {
		s.tracker.BeforeMutate(s.supPg)
	}
	s.super.marshalInto(s.supPg)
	s.pool.MarkDirty(s.supPg)
}

// Census reports page counts by type plus aggregate slotted-page
// utilisation — the space accounting odedump prints.
type Census struct {
	Super, Slotted, Overflow, BTree, Free uint64
	// SlottedLiveBytes is the sum of live cell bytes across slotted
	// pages; SlottedFreeBytes the reusable space in them.
	SlottedLiveBytes uint64
	SlottedFreeBytes uint64
	Records          uint64
}

// Census scans every page and tallies the census. O(file size).
func (s *Store) Census() (Census, error) {
	var c Census
	for pid := uint64(0); pid < s.super.nPages; pid++ {
		p, err := s.Get(oid.PageID(pid))
		if err != nil {
			return Census{}, err
		}
		switch p.Type() {
		case PageSuper:
			c.Super++
		case PageSlotted:
			c.Slotted++
			c.SlottedFreeBytes += uint64(SlottedFreeSpace(p))
			SlottedSlots(p, func(_ uint16, data []byte) bool {
				c.Records++
				c.SlottedLiveBytes += uint64(len(data))
				return true
			})
		case PageOverflow:
			c.Overflow++
		case PageBTree:
			c.BTree++
		case PageFree:
			c.Free++
		}
	}
	return c, nil
}

// FlushAll writes every dirty page to the page file and syncs it. The
// transaction layer calls this at checkpoints, after WAL durability.
func (s *Store) FlushAll() error {
	if err := s.pool.FlushDirty(); err != nil {
		return err
	}
	return s.file.Sync()
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	if err := s.FlushAll(); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}

// CloseNoFlush closes the store without writing anything. The
// transaction layer uses it when the page file must not be touched: the
// caller has either already flushed, or an I/O failure means the WAL is
// the only trustworthy copy and recovery will rebuild the pages.
func (s *Store) CloseNoFlush() error { return s.file.Close() }
