package storage

// Buffer-pool behaviour under injected read faults: a page-in that
// fails with EIO must surface the error, must NOT leave a poisoned
// (empty or partial) page in the cache, must keep the hit/miss/eviction
// counters and residency bookkeeping consistent, and must succeed on
// retry once the fault clears.

import (
	"errors"
	"fmt"
	"testing"

	"ode/internal/faultfs"
	"ode/internal/oid"
)

// buildFaultStore creates a store with nRecs one-record pages on mem,
// flushes it, and returns the RIDs. The store is closed.
func buildFaultStore(t *testing.T, mem *faultfs.Mem, nRecs int) []oid.RID {
	t.Helper()
	st, err := Create("/pool.db", Options{PageSize: 512, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeap(st.OpenWriter(nil), nil)
	rids := make([]oid.RID, nRecs)
	for i := range rids {
		// 400-byte payloads: one record per 512-byte page.
		data := make([]byte, 400)
		copy(data, fmt.Sprintf("record-%d", i))
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return rids
}

// openReads counts the reads a plain Open performs, so tests can aim
// read faults at post-open page-ins.
func openReads(t *testing.T, mem *faultfs.Mem) uint64 {
	t.Helper()
	inj := faultfs.NewInjector(mem.Clone(), faultfs.Plan{})
	st, err := Open("/pool.db", Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	st.CloseNoFlush()
	return inj.Counts().Reads
}

func TestPoolReadFaultDoesNotPoisonCache(t *testing.T) {
	mem := faultfs.NewMem()
	rids := buildFaultStore(t, mem, 4)
	base := openReads(t, mem)

	// Fail the first post-open page-in.
	inj := faultfs.NewInjector(mem, faultfs.Plan{FailReadN: base + 1})
	st, err := Open("/pool.db", Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.CloseNoFlush()
	pl := st.Pool()

	h0, m0, e0 := pl.Stats()
	res0, dirty0 := pl.Resident()

	target := rids[2].Page
	if _, err := pl.Get(target); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("faulted page-in: got err %v, want ErrInjected", err)
	}

	// The failed read must count as a miss, nothing else.
	h1, m1, e1 := pl.Stats()
	if h1 != h0 || m1 != m0+1 || e1 != e0 {
		t.Fatalf("stats after fault: hits %d→%d misses %d→%d evict %d→%d",
			h0, h1, m0, m1, e0, e1)
	}
	// No phantom resident page.
	if res1, dirty1 := pl.Resident(); res1 != res0 || dirty1 != dirty0 {
		t.Fatalf("residency after fault: %d/%d → %d/%d", res0, dirty0, res1, dirty1)
	}

	// The fault was transient (it fires exactly once): the retry must
	// page in the true, checksum-verified image.
	p, err := pl.Get(target)
	if err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	if p.ID != target {
		t.Fatalf("retry returned page %d, want %d", p.ID, target)
	}
	h2, m2, _ := pl.Stats()
	if h2 != h1 || m2 != m1+1 {
		t.Fatalf("retry stats: hits %d→%d misses %d→%d", h1, h2, m1, m2)
	}
	if res2, _ := pl.Resident(); res2 != res0+1 {
		t.Fatalf("retry residency: %d, want %d", res2, res0+1)
	}
	// And the record on it is intact.
	hp := NewHeap(st.OpenWriter(nil), nil)
	data, err := hp.Read(rids[2])
	if err != nil || string(data[:len("record-2")]) != "record-2" {
		t.Fatalf("record after retry: %q, %v", data, err)
	}
	// Now cached: another Get is a pure hit.
	if _, err := pl.Get(target); err != nil {
		t.Fatal(err)
	}
	h3, m3, _ := pl.Stats()
	if h3 <= h2 || m3 != m2 {
		t.Fatalf("hit stats: hits %d→%d misses %d→%d", h2, h3, m2, m3)
	}
}

// TestPoolReadFaultSweep aims an EIO at every read a scan workload
// performs; whatever happens, a fault-free rescan must then see every
// record, and the cache bookkeeping must stay coherent.
func TestPoolReadFaultSweep(t *testing.T) {
	mem := faultfs.NewMem()
	rids := buildFaultStore(t, mem, 6)

	// Count the reads of a full fault-free scan from a cold open.
	probe := faultfs.NewInjector(mem.Clone(), faultfs.Plan{})
	st0, err := Open("/pool.db", Options{FS: probe, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	h0 := NewHeap(st0.OpenWriter(nil), nil)
	for _, rid := range rids {
		if _, err := h0.Read(rid); err != nil {
			t.Fatal(err)
		}
	}
	st0.CloseNoFlush()
	total := probe.Counts().Reads

	for n := uint64(1); n <= total; n++ {
		inj := faultfs.NewInjector(mem.Clone(), faultfs.Plan{FailReadN: n})
		st, err := Open("/pool.db", Options{FS: inj, PoolPages: 8})
		if err != nil {
			continue // fault hit the open path; that is its own trial
		}
		h := NewHeap(st.OpenWriter(nil), nil)
		for _, rid := range rids {
			if _, err := h.Read(rid); err != nil && !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("failRead=%d: unexpected error class: %v", n, err)
			}
		}
		// Fault cleared: a rescan must see every record intact.
		for i, rid := range rids {
			data, err := h.Read(rid)
			if err != nil {
				t.Fatalf("failRead=%d: rescan rid %d: %v", n, i, err)
			}
			if want := fmt.Sprintf("record-%d", i); string(data[:len(want)]) != want {
				t.Fatalf("failRead=%d: rescan rid %d corrupt: %q", n, i, data)
			}
		}
		if res, dirty := st.Pool().Resident(); res == 0 || dirty != 0 {
			t.Fatalf("failRead=%d: residency %d/%d after clean rescan", n, res, dirty)
		}
		st.CloseNoFlush()
	}
	t.Logf("pool read-fault sweep: %d read injection points", total)
}
