package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Slotted page layout (absolute offsets within Page.Data):
//
//	[16:18] nSlots    u16
//	[18:20] cellStart u16 — cells occupy [cellStart, pageSize)
//	[20:22] fragBytes u16 — dead bytes reclaimable by compaction
//	[22+4i : 26+4i]   slot i: cell offset u16 (0 = free slot), cell len u16
//
// Cells grow downward from the end of the page; the slot directory grows
// upward. Deleting a cell frees its slot (offset=0) and adds its length
// to fragBytes; compaction rewrites cells tightly against the page end.
const (
	offNSlots    = HeaderSize + 0
	offCellStart = HeaderSize + 2
	offFragBytes = HeaderSize + 4
	slotDirStart = HeaderSize + 6
	slotSize     = 4
)

// ErrPageFull reports an insert or update that cannot fit even after
// compaction.
var ErrPageFull = errors.New("storage: page full")

// ErrBadSlot reports access to a slot that does not exist or is free.
var ErrBadSlot = errors.New("storage: bad slot")

func getU16(d []byte, off int) uint16    { return binary.BigEndian.Uint16(d[off : off+2]) }
func putU16(d []byte, off int, v uint16) { binary.BigEndian.PutUint16(d[off:off+2], v) }

// SlottedInit formats p as an empty slotted page. The caller must mark
// the page dirty.
func SlottedInit(p *Page) {
	// Page sizes are capped at 32768 by the store so cellStart always
	// fits a uint16.
	p.SetType(PageSlotted)
	putU16(p.Data, offNSlots, 0)
	putU16(p.Data, offCellStart, uint16(len(p.Data)))
	putU16(p.Data, offFragBytes, 0)
}

// SlottedCount returns the number of live (non-free) cells in the page.
func SlottedCount(p *Page) int {
	n := int(getU16(p.Data, offNSlots))
	live := 0
	for i := 0; i < n; i++ {
		if getU16(p.Data, slotDirStart+i*slotSize) != 0 {
			live++
		}
	}
	return live
}

// slotEntry returns (offset, length) of slot i; offset 0 means free.
func slotEntry(p *Page, i int) (uint16, uint16) {
	base := slotDirStart + i*slotSize
	return getU16(p.Data, base), getU16(p.Data, base+2)
}

func setSlotEntry(p *Page, i int, off, length uint16) {
	base := slotDirStart + i*slotSize
	putU16(p.Data, base, off)
	putU16(p.Data, base+2, length)
}

// SlottedFreeSpace returns the bytes available for a new cell of the
// worst case (requiring a fresh slot), after hypothetical compaction.
func SlottedFreeSpace(p *Page) int {
	n := int(getU16(p.Data, offNSlots))
	cellStart := int(getU16(p.Data, offCellStart))
	frag := int(getU16(p.Data, offFragBytes))
	gap := cellStart - (slotDirStart + n*slotSize)
	free := gap + frag
	// Reserve room for one slot entry unless a free slot exists.
	if freeSlotIndex(p) < 0 {
		free -= slotSize
	}
	if free < 0 {
		free = 0
	}
	return free
}

func freeSlotIndex(p *Page) int {
	n := int(getU16(p.Data, offNSlots))
	for i := 0; i < n; i++ {
		if off, _ := slotEntry(p, i); off == 0 {
			return i
		}
	}
	return -1
}

// MaxCell returns the largest cell insertable into an empty page of the
// given size.
func MaxCell(pageSize int) int {
	return pageSize - slotDirStart - slotSize
}

// SlottedInsert places data as a new cell and returns its slot number.
// The caller must mark the page dirty.
func SlottedInsert(p *Page, data []byte) (uint16, error) {
	if len(data) > MaxCell(len(p.Data)) {
		return 0, fmt.Errorf("%w: cell %d > max %d", ErrPageFull, len(data), MaxCell(len(p.Data)))
	}
	if SlottedFreeSpace(p) < len(data) {
		return 0, ErrPageFull
	}
	slot := freeSlotIndex(p)
	needNewSlot := slot < 0
	n := int(getU16(p.Data, offNSlots))
	cellStart := int(getU16(p.Data, offCellStart))
	dirEnd := slotDirStart + n*slotSize
	if needNewSlot {
		dirEnd += slotSize
	}
	if cellStart-dirEnd < len(data) {
		slottedCompact(p)
		cellStart = int(getU16(p.Data, offCellStart))
		if cellStart-dirEnd < len(data) {
			return 0, ErrPageFull
		}
	}
	newStart := cellStart - len(data)
	copy(p.Data[newStart:cellStart], data)
	putU16(p.Data, offCellStart, uint16(newStart))
	if needNewSlot {
		slot = n
		putU16(p.Data, offNSlots, uint16(n+1))
	}
	setSlotEntry(p, slot, uint16(newStart), uint16(len(data)))
	return uint16(slot), nil
}

// SlottedRead returns the cell at slot. The slice aliases the page; the
// caller must copy before the page can change.
func SlottedRead(p *Page, slot uint16) ([]byte, error) {
	n := int(getU16(p.Data, offNSlots))
	if int(slot) >= n {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, n)
	}
	off, length := slotEntry(p, int(slot))
	if off == 0 {
		return nil, fmt.Errorf("%w: slot %d is free", ErrBadSlot, slot)
	}
	return p.Data[off : int(off)+int(length)], nil
}

// SlottedDelete frees the cell at slot. The caller must mark the page
// dirty.
func SlottedDelete(p *Page, slot uint16) error {
	n := int(getU16(p.Data, offNSlots))
	if int(slot) >= n {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, n)
	}
	off, length := slotEntry(p, int(slot))
	if off == 0 {
		return fmt.Errorf("%w: slot %d already free", ErrBadSlot, slot)
	}
	setSlotEntry(p, int(slot), 0, 0)
	frag := getU16(p.Data, offFragBytes)
	putU16(p.Data, offFragBytes, frag+length)
	// If the deleted cell is the lowest one, bump cellStart so the space
	// is directly reusable without compaction.
	if int(off) == int(getU16(p.Data, offCellStart)) {
		putU16(p.Data, offCellStart, off+length)
		putU16(p.Data, offFragBytes, getU16(p.Data, offFragBytes)-length)
	}
	// Shrink the slot directory if trailing slots are free.
	for n > 0 {
		if off, _ := slotEntry(p, n-1); off != 0 {
			break
		}
		n--
	}
	putU16(p.Data, offNSlots, uint16(n))
	return nil
}

// SlottedUpdate replaces the cell at slot with data, preserving the slot
// number. Fails with ErrPageFull if the page cannot hold the new cell
// even after compaction. The caller must mark the page dirty.
func SlottedUpdate(p *Page, slot uint16, data []byte) error {
	nSlots := int(getU16(p.Data, offNSlots))
	if int(slot) >= nSlots {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, nSlots)
	}
	off, length := slotEntry(p, int(slot))
	if off == 0 {
		return fmt.Errorf("%w: slot %d is free", ErrBadSlot, slot)
	}
	if int(length) >= len(data) {
		// Shrink or same-size: rewrite in place, leak the tail to frag.
		copy(p.Data[off:int(off)+len(data)], data)
		setSlotEntry(p, int(slot), off, uint16(len(data)))
		frag := getU16(p.Data, offFragBytes)
		putU16(p.Data, offFragBytes, frag+length-uint16(len(data)))
		return nil
	}
	// Grow: check feasibility before mutating anything so a failed update
	// leaves the old cell intact.
	cellStart := int(getU16(p.Data, offCellStart))
	frag := int(getU16(p.Data, offFragBytes))
	dirEnd := slotDirStart + nSlots*slotSize
	if (cellStart-dirEnd)+frag+int(length) < len(data) {
		return ErrPageFull
	}
	setSlotEntry(p, int(slot), 0, 0)
	putU16(p.Data, offFragBytes, uint16(frag)+length)
	if cellStart-dirEnd < len(data) {
		slottedCompact(p)
		cellStart = int(getU16(p.Data, offCellStart))
	}
	newStart := cellStart - len(data)
	copy(p.Data[newStart:cellStart], data)
	putU16(p.Data, offCellStart, uint16(newStart))
	setSlotEntry(p, int(slot), uint16(newStart), uint16(len(data)))
	return nil
}

// slottedCompact rewrites live cells tightly against the page end,
// clearing fragmentation. Slot numbers are preserved.
func slottedCompact(p *Page) {
	n := int(getU16(p.Data, offNSlots))
	type cell struct {
		slot int
		data []byte
	}
	cells := make([]cell, 0, n)
	for i := 0; i < n; i++ {
		off, length := slotEntry(p, i)
		if off == 0 {
			continue
		}
		buf := make([]byte, length)
		copy(buf, p.Data[off:int(off)+int(length)])
		cells = append(cells, cell{slot: i, data: buf})
	}
	end := len(p.Data)
	for _, c := range cells {
		start := end - len(c.data)
		copy(p.Data[start:end], c.data)
		setSlotEntry(p, c.slot, uint16(start), uint16(len(c.data)))
		end = start
	}
	putU16(p.Data, offCellStart, uint16(end))
	putU16(p.Data, offFragBytes, 0)
}

// SlottedSlots calls fn for every live slot in ascending slot order,
// stopping early if fn returns false.
func SlottedSlots(p *Page, fn func(slot uint16, data []byte) bool) {
	n := int(getU16(p.Data, offNSlots))
	for i := 0; i < n; i++ {
		off, length := slotEntry(p, i)
		if off == 0 {
			continue
		}
		if !fn(uint16(i), p.Data[off:int(off)+int(length)]) {
			return
		}
	}
}
