package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundtrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB).U16(0xCDEF).U32(0xDEADBEEF).U64(0x0102030405060708)
	w.UVarint(300).Varint(-12345)
	w.Bytes32([]byte("hello")).String32("world")
	w.F64(math.Pi).Bool(true).Bool(false)
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Fatalf("U16 = %x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 0x0102030405060708 {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.UVarint(); got != 300 {
		t.Fatalf("UVarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Bytes32 = %q", got)
	}
	if got := r.String32(); got != "world" {
		t.Fatalf("String32 = %q", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool roundtrip wrong")
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Fatalf("Raw = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
	// Poisoned reader keeps returning the same error.
	_ = r.U8()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("poisoning lost: %v", r.Err())
	}
}

func TestReaderEmptyVarint(t *testing.T) {
	r := NewReader(nil)
	_ = r.UVarint()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
}

func TestReaderVarintOverflow(t *testing.T) {
	// 11 continuation bytes overflow a uvarint.
	bad := bytes.Repeat([]byte{0xFF}, 11)
	r := NewReader(bad)
	_ = r.UVarint()
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", r.Err())
	}
}

func TestBytes32Oversized(t *testing.T) {
	w := NewWriter(16)
	w.UVarint(uint64(MaxBlob) + 1)
	r := NewReader(w.Bytes())
	_ = r.Bytes32()
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", r.Err())
	}
}

func TestExpect(t *testing.T) {
	sentinel := errors.New("bad structure")
	r := NewReader([]byte{1})
	r.Expect(true, sentinel)
	if r.Err() != nil {
		t.Fatal("Expect(true) must not fail")
	}
	r.Expect(false, sentinel)
	if !errors.Is(r.Err(), sentinel) {
		t.Fatalf("want sentinel, got %v", r.Err())
	}
}

func TestChecksumStability(t *testing.T) {
	a := Checksum([]byte("ode"))
	b := Checksum([]byte("ode"))
	c := Checksum([]byte("odf"))
	if a != b {
		t.Fatal("checksum not deterministic")
	}
	if a == c {
		t.Fatal("checksum collision on trivially different input")
	}
}

func TestQuickVarintRoundtrip(t *testing.T) {
	f := func(u uint64, v int64) bool {
		w := NewWriter(24)
		w.UVarint(u).Varint(v)
		r := NewReader(w.Bytes())
		return r.UVarint() == u && r.Varint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundtrip(t *testing.T) {
	f := func(b1, b2 []byte) bool {
		w := NewWriter(len(b1) + len(b2) + 8)
		w.Bytes32(b1).Bytes32(b2)
		r := NewReader(w.Bytes())
		g1 := append([]byte(nil), r.Bytes32()...)
		g2 := append([]byte(nil), r.Bytes32()...)
		return r.Err() == nil && bytes.Equal(g1, b1) && bytes.Equal(g2, b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.U32(7)
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	w.U8(1)
	if w.Len() != 1 {
		t.Fatal("writer unusable after reset")
	}
}
