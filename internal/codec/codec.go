// Package codec provides the low-level binary encoding helpers shared by
// every on-disk structure in the store: bounds-checked readers/writers
// over byte slices, varints, length-prefixed byte strings, and CRC
// framing. Keeping these in one place means every page, WAL record, and
// version record round-trips through the same audited primitives.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// ErrShortBuffer is returned when a decode runs off the end of its input.
var ErrShortBuffer = errors.New("codec: short buffer")

// ErrOverflow is returned when a varint is malformed or a length prefix
// exceeds sane bounds.
var ErrOverflow = errors.New("codec: varint overflow")

// castagnoli is the CRC-32C table used for all on-disk checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Writer appends binary data to a growing buffer. The zero value is ready
// to use. All Put methods return the Writer for chaining.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given capacity hint.
func NewWriter(capHint int) *Writer {
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Bytes returns the accumulated encoding. The slice aliases the Writer's
// internal buffer; callers must copy if they keep writing.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) *Writer {
	w.buf = append(w.buf, v)
	return w
}

// U16 appends v in big-endian order.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends v in big-endian order.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends v in big-endian order.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// UVarint appends v in unsigned LEB128-style varint encoding.
func (w *Writer) UVarint(v uint64) *Writer {
	w.buf = binary.AppendUvarint(w.buf, v)
	return w
}

// Varint appends v in zig-zag varint encoding.
func (w *Writer) Varint(v int64) *Writer {
	w.buf = binary.AppendVarint(w.buf, v)
	return w
}

// Bytes32 appends a uvarint length prefix followed by b. The name records
// that lengths are bounded by MaxBlob (well under 32 bits).
func (w *Writer) Bytes32(b []byte) *Writer {
	w.UVarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// String32 appends a length-prefixed string.
func (w *Writer) String32(s string) *Writer {
	w.UVarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Raw appends b with no framing.
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// F64 appends an IEEE-754 float64 in big-endian order.
func (w *Writer) F64(v float64) *Writer {
	return w.U64(math.Float64bits(v))
}

// Bool appends a 1-byte boolean.
func (w *Writer) Bool(v bool) *Writer {
	if v {
		return w.U8(1)
	}
	return w.U8(0)
}

// Append-style encoders: the zero-copy counterpart to Writer. Each
// function appends the same wire encoding its Writer method produces,
// but into a caller-owned buffer, so hot paths (WAL frame staging) can
// encode directly into their destination without an intermediate
// Writer allocation or copy. The two families MUST stay byte-for-byte
// identical; FuzzAppendEncoder enforces that.

// AppendU8 appends a single byte to b.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU16 appends v in big-endian order.
func AppendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// AppendU32 appends v in big-endian order.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends v in big-endian order.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendUVarint appends v in unsigned LEB128-style varint encoding.
func AppendUVarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendBytes32 appends a uvarint length prefix followed by p.
func AppendBytes32(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString32 appends a length-prefixed string.
func AppendString32(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendF64 appends an IEEE-754 float64 in big-endian order.
func AppendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends a 1-byte boolean.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// MaxBlob bounds length prefixes accepted by Reader to guard against
// corrupt inputs allocating unbounded memory.
const MaxBlob = 1 << 30

// Reader consumes binary data from a byte slice with bounds checking.
// After any method returns an error the Reader is poisoned and every
// later call returns the same error, so callers may decode a whole
// structure and check the error once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Offset returns the number of consumed bytes.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// UVarint consumes an unsigned varint.
func (r *Reader) UVarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrShortBuffer)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Varint consumes a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrShortBuffer)
		} else {
			r.fail(ErrOverflow)
		}
		return 0
	}
	r.off += n
	return v
}

// Bytes32 consumes a length-prefixed byte string. The returned slice
// aliases the Reader's input.
func (r *Reader) Bytes32() []byte {
	n := r.UVarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBlob {
		r.fail(fmt.Errorf("%w: blob length %d", ErrOverflow, n))
		return nil
	}
	return r.take(int(n))
}

// String32 consumes a length-prefixed string.
func (r *Reader) String32() string {
	return string(r.Bytes32())
}

// Raw consumes exactly n bytes with no framing. The returned slice
// aliases the Reader's input.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// F64 consumes a big-endian IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool consumes a 1-byte boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Expect fails the reader with err if cond is false. It lets decoders
// express structural invariants inline.
func (r *Reader) Expect(cond bool, err error) {
	if r.err == nil && !cond {
		r.fail(err)
	}
}
