package codec

// Native fuzz targets for the codec primitives every on-disk structure
// is framed with. Two properties carry the whole storage stack:
// arbitrary bytes fed to a Reader must never panic (the poisoned-error
// model must hold: after the first failure every further read is a
// cheap zero-valued no-op), and anything a Writer produces must read
// back exactly.

import (
	"bytes"
	"testing"
)

// FuzzReaderOps drives a Reader over arbitrary bytes with an op
// sequence also derived from those bytes, checking the poisoned-error
// invariants: the offset never runs past the buffer or backwards, and
// once Err() is set it stays set.
func FuzzReaderOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	// A varint with a continuation bit running off the end, and a
	// Bytes32 length word far larger than the buffer.
	f.Add([]byte{0x0a, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x07, 0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add(NewWriter(0).U8(1).U16(2).U32(3).U64(4).UVarint(5).Varint(-6).
		Bytes32([]byte("blob")).String32("str").F64(7.5).Bool(true).Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		ops := append([]byte(nil), data...) // ops double as the input
		for i := 0; i < len(ops)+8; i++ {
			var op byte
			if i < len(ops) {
				op = ops[i]
			}
			prevOff := r.Offset()
			prevErr := r.Err()
			switch op % 11 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.UVarint()
			case 5:
				r.Varint()
			case 6:
				r.Bytes32()
			case 7:
				r.String32()
			case 8:
				r.F64()
			case 9:
				r.Bool()
			case 10:
				r.Raw(int(op) % 5)
			}
			if off := r.Offset(); off < prevOff || off > len(data) {
				t.Fatalf("op %d: offset %d out of range (prev %d, len %d)", op%11, off, prevOff, len(data))
			}
			if prevErr != nil && r.Err() == nil {
				t.Fatalf("op %d: poisoned reader healed itself", op%11)
			}
			if prevErr != nil && r.Offset() != prevOff {
				t.Fatalf("op %d: poisoned reader advanced %d -> %d", op%11, prevOff, r.Offset())
			}
		}
		if r.Remaining() < 0 {
			t.Fatalf("negative remaining: %d", r.Remaining())
		}
	})
}

// FuzzRoundTrip writes one of every field type and reads it back; the
// decoded values and the consumed length must match exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint32(0), uint64(0), int64(0), []byte(nil), "", 0.0, false)
	f.Add(uint8(255), uint16(65535), uint32(1<<31), uint64(1)<<63, int64(-1),
		[]byte("payload"), "名前", 3.14159, true)
	f.Add(uint8(1), uint16(300), uint32(70000), uint64(1<<42), int64(-1<<40),
		bytes.Repeat([]byte{0xab}, 100), "x", -0.0, false)

	f.Fuzz(func(t *testing.T, a uint8, b uint16, c uint32, d uint64, e int64, blob []byte, s string, g float64, h bool) {
		w := NewWriter(0)
		w.U8(a).U16(b).U32(c).U64(d).UVarint(d).Varint(e).Bytes32(blob).String32(s).F64(g).Bool(h).Raw(blob)
		buf := w.Bytes()
		if w.Len() != len(buf) {
			t.Fatalf("Len %d != len(Bytes) %d", w.Len(), len(buf))
		}

		r := NewReader(buf)
		if got := r.U8(); got != a {
			t.Fatalf("U8: %v != %v", got, a)
		}
		if got := r.U16(); got != b {
			t.Fatalf("U16: %v != %v", got, b)
		}
		if got := r.U32(); got != c {
			t.Fatalf("U32: %v != %v", got, c)
		}
		if got := r.U64(); got != d {
			t.Fatalf("U64: %v != %v", got, d)
		}
		if got := r.UVarint(); got != d {
			t.Fatalf("UVarint: %v != %v", got, d)
		}
		if got := r.Varint(); got != e {
			t.Fatalf("Varint: %v != %v", got, e)
		}
		if got := r.Bytes32(); !bytes.Equal(got, blob) {
			t.Fatalf("Bytes32: %q != %q", got, blob)
		}
		if got := r.String32(); got != s {
			t.Fatalf("String32: %q != %q", got, s)
		}
		if got := r.F64(); got != g && !(got != got && g != g) { // NaN-safe
			t.Fatalf("F64: %v != %v", got, g)
		}
		if got := r.Bool(); got != h {
			t.Fatalf("Bool: %v != %v", got, h)
		}
		if got := r.Raw(len(blob)); !bytes.Equal(got, blob) {
			t.Fatalf("Raw: %q != %q", got, blob)
		}
		if r.Err() != nil {
			t.Fatalf("round trip poisoned the reader: %v", r.Err())
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}
