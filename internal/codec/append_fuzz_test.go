package codec

// Fuzz target for the append-style encoders (satellite of the zero-copy
// staging refactor). Two properties are enforced: the Append* family
// must produce byte-for-byte the same wire encoding as the Writer
// family (the WAL stages frames through Append* while recovery and the
// writeSync path still frame through Writer, so any divergence would be
// an on-disk format fork), and the appended bytes must round-trip
// through the existing Reader.

import (
	"bytes"
	"testing"
)

func FuzzAppendEncoder(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint32(0), uint64(0), int64(0), []byte(nil), "", 0.0, false, []byte(nil))
	f.Add(uint8(255), uint16(65535), uint32(1<<31), uint64(1)<<63, int64(-1),
		[]byte("payload"), "名前", 3.14159, true, []byte{0, 1, 2})
	f.Add(uint8(1), uint16(300), uint32(70000), uint64(1<<42), int64(-1<<40),
		bytes.Repeat([]byte{0xab}, 100), "x", -0.0, false, bytes.Repeat([]byte{0x42}, 33))
	f.Add(uint8(7), uint16(1), uint32(127), uint64(128), int64(63), []byte("a"), "b", 1e-300, true, []byte("prefix"))

	f.Fuzz(func(t *testing.T, a uint8, b uint16, c uint32, d uint64, e int64, blob []byte, s string, g float64, h bool, prefix []byte) {
		// The Append* chain, seeded with an arbitrary caller-owned prefix
		// that must survive untouched.
		buf := append([]byte(nil), prefix...)
		buf = AppendU8(buf, a)
		buf = AppendU16(buf, b)
		buf = AppendU32(buf, c)
		buf = AppendU64(buf, d)
		buf = AppendUVarint(buf, d)
		buf = AppendVarint(buf, e)
		buf = AppendBytes32(buf, blob)
		buf = AppendString32(buf, s)
		buf = AppendF64(buf, g)
		buf = AppendBool(buf, h)

		if !bytes.Equal(buf[:len(prefix)], prefix) {
			t.Fatalf("appender clobbered caller prefix")
		}
		enc := buf[len(prefix):]

		// Byte-for-byte equivalence with the Writer family.
		w := NewWriter(0)
		w.U8(a).U16(b).U32(c).U64(d).UVarint(d).Varint(e).Bytes32(blob).String32(s).F64(g).Bool(h)
		if !bytes.Equal(enc, w.Bytes()) {
			t.Fatalf("Append* encoding diverges from Writer:\n  append: %x\n  writer: %x", enc, w.Bytes())
		}

		// Round trip through the existing decoder.
		r := NewReader(enc)
		if got := r.U8(); got != a {
			t.Fatalf("U8: %v != %v", got, a)
		}
		if got := r.U16(); got != b {
			t.Fatalf("U16: %v != %v", got, b)
		}
		if got := r.U32(); got != c {
			t.Fatalf("U32: %v != %v", got, c)
		}
		if got := r.U64(); got != d {
			t.Fatalf("U64: %v != %v", got, d)
		}
		if got := r.UVarint(); got != d {
			t.Fatalf("UVarint: %v != %v", got, d)
		}
		if got := r.Varint(); got != e {
			t.Fatalf("Varint: %v != %v", got, e)
		}
		if got := r.Bytes32(); !bytes.Equal(got, blob) {
			t.Fatalf("Bytes32: %q != %q", got, blob)
		}
		if got := r.String32(); got != s {
			t.Fatalf("String32: %q != %q", got, s)
		}
		if got := r.F64(); got != g && !(got != got && g != g) { // NaN-safe
			t.Fatalf("F64: %v != %v", got, g)
		}
		if got := r.Bool(); got != h {
			t.Fatalf("Bool: %v != %v", got, h)
		}
		if r.Err() != nil {
			t.Fatalf("round trip poisoned the reader: %v", r.Err())
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}
