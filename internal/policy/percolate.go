package policy

import (
	"sync"

	"ode"
)

// Percolator implements version percolation as a policy: when a
// component object gains a new version, every composite that declared a
// dependency on it automatically gains a new version too, transitively.
// The paper excludes this from the kernel precisely because "creating a
// new version can lead to the automatic creation of a large number of
// versions of other objects" (§2) — experiment E5 measures that blowup.
//
// Handlers run inside the triggering transaction, so the percolated
// versions commit or abort atomically with the change that caused them.
type Percolator struct {
	db *ode.DB

	mu sync.Mutex
	// parents maps a component to the composites that contain it.
	parents map[ode.OID][]ode.OID
	// inFlight breaks cycles: objects currently being percolated.
	inFlight map[ode.OID]bool
	// created counts percolated versions (for the experiment harness).
	created uint64
	err     error
	trig    ode.TriggerID
	active  bool
}

// NewPercolator creates an inactive percolator; call Enable to attach
// its trigger.
func NewPercolator(db *ode.DB) *Percolator {
	return &Percolator{
		db:       db,
		parents:  make(map[ode.OID][]ode.OID),
		inFlight: make(map[ode.OID]bool),
	}
}

// Declare records that composite contains the given components, so a new
// version of any component percolates to composite.
func (p *Percolator) Declare(composite ode.OID, components ...ode.OID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range components {
		p.parents[c] = append(p.parents[c], composite)
	}
}

// Enable attaches the percolation trigger.
func (p *Percolator) Enable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		return
	}
	p.active = true
	p.trig = p.db.OnAll(ode.On(ode.EvNewVersion), false, p.onNewVersion)
}

// Disable detaches the trigger.
func (p *Percolator) Disable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return
	}
	p.active = false
	p.db.RemoveTrigger(p.trig)
}

// Created returns the number of versions this percolator has created.
func (p *Percolator) Created() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// onNewVersion runs inside the transaction that created a version.
func (p *Percolator) onNewVersion(e ode.Event) {
	tx := p.db.TxOf(e)
	if tx == nil {
		p.mu.Lock()
		if p.err == nil {
			p.err = ode.ErrTxDone
		}
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	composites := append([]ode.OID(nil), p.parents[e.Obj]...)
	p.mu.Unlock()
	for _, comp := range composites {
		p.mu.Lock()
		skip := p.inFlight[comp]
		if !skip {
			p.inFlight[comp] = true
		}
		p.mu.Unlock()
		if skip {
			continue
		}
		// We are inside the firing Update transaction and mutate through
		// its handle, so the percolated versions are atomic with the
		// triggering change. A failure here is recorded and surfaces via
		// Err (the kernel treats triggers as notifications and does not
		// let them veto operations).
		_, err := tx.NewVersion(comp)
		p.mu.Lock()
		delete(p.inFlight, comp)
		if err == nil {
			p.created++
		} else if p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	}
}

// Err returns the first error any percolation encountered, if any.
func (p *Percolator) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
