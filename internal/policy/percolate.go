package policy

import (
	"sync"

	"ode"
)

// Percolator implements version percolation as a policy: when a
// component object gains a new version, every composite that declared a
// dependency on it automatically gains a new version too, transitively.
// The paper excludes this from the kernel precisely because "creating a
// new version can lead to the automatic creation of a large number of
// versions of other objects" (§2) — experiment E5 measures that blowup.
//
// Handlers run inside the triggering transaction, so the percolated
// versions commit or abort atomically with the change that caused them.
type Percolator struct {
	db *ode.DB

	mu sync.Mutex
	// parents maps a component to the composites that contain it.
	parents map[ode.OID][]ode.OID
	// inFlight breaks cycles per firing transaction: the composites a
	// cascade is currently percolating, keyed by the firing engine
	// transaction (ode.Event.Tx, stable for one transaction attempt).
	// Keying per transaction keeps concurrent transactions from
	// suppressing each other's percolations, and entries are cleared by
	// defer so a cross-shard join-order restart — which unwinds the
	// handler by panic and reruns the whole closure — cannot leave a
	// stale entry that would silently skip percolation on the rerun.
	inFlight map[any]map[ode.OID]bool
	// created counts percolated versions (for the experiment harness).
	created uint64
	err     error
	trig    ode.TriggerID
	active  bool
}

// NewPercolator creates an inactive percolator; call Enable to attach
// its trigger.
func NewPercolator(db *ode.DB) *Percolator {
	return &Percolator{
		db:       db,
		parents:  make(map[ode.OID][]ode.OID),
		inFlight: make(map[any]map[ode.OID]bool),
	}
}

// Declare records that composite contains the given components, so a new
// version of any component percolates to composite.
func (p *Percolator) Declare(composite ode.OID, components ...ode.OID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range components {
		p.parents[c] = append(p.parents[c], composite)
	}
}

// Enable attaches the percolation trigger.
func (p *Percolator) Enable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active {
		return
	}
	p.active = true
	p.trig = p.db.OnAll(ode.On(ode.EvNewVersion), false, p.onNewVersion)
}

// Disable detaches the trigger.
func (p *Percolator) Disable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.active {
		return
	}
	p.active = false
	p.db.RemoveTrigger(p.trig)
}

// Created returns the number of versions this percolator has created.
func (p *Percolator) Created() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}

// onNewVersion runs inside the transaction that created a version.
func (p *Percolator) onNewVersion(e ode.Event) {
	tx := p.db.TxOf(e)
	if tx == nil {
		p.mu.Lock()
		if p.err == nil {
			p.err = ode.ErrTxDone
		}
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	composites := append([]ode.OID(nil), p.parents[e.Obj]...)
	p.mu.Unlock()
	for _, comp := range composites {
		if !p.enter(e.Tx, comp) {
			continue // already percolating comp in this cascade: a cycle
		}
		// We are inside the firing Update transaction and mutate through
		// its handle, so the percolated versions are atomic with the
		// triggering change. A failure here is recorded and surfaces via
		// Err (the kernel treats triggers as notifications and does not
		// let them veto operations). NewVersion may also panic to restart
		// the closure when the composite lives on a lower shard than the
		// triggering object (cross-shard join order); the deferred leave
		// keeps the in-flight set clean through that unwind.
		err := func() error {
			defer p.leave(e.Tx, comp)
			_, err := tx.NewVersion(comp)
			return err
		}()
		p.mu.Lock()
		if err == nil {
			p.created++
		} else if p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	}
}

// enter marks comp as being percolated by txKey's cascade; false means
// the cascade is already percolating it (a Declare cycle) and the
// caller must skip it.
func (p *Percolator) enter(txKey any, comp ode.OID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	fl := p.inFlight[txKey]
	if fl[comp] {
		return false
	}
	if fl == nil {
		fl = make(map[ode.OID]bool)
		p.inFlight[txKey] = fl
	}
	fl[comp] = true
	return true
}

// leave clears comp from txKey's cascade, dropping the per-transaction
// set when it empties so finished transactions leave nothing behind.
func (p *Percolator) leave(txKey any, comp ode.OID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fl := p.inFlight[txKey]
	delete(fl, comp)
	if len(fl) == 0 {
		delete(p.inFlight, txKey)
	}
}

// Err returns the first error any percolation encountered, if any.
func (p *Percolator) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
