package policy

import (
	"errors"
	"testing"

	"ode"
)

type Doc struct {
	Title string
	Body  string
}

func openDB(t testing.TB) *ode.DB {
	t.Helper()
	db, err := ode.Open(t.TempDir(), &ode.Options{Policy: ode.DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestNotifierDeliversScopedEvents(t *testing.T) {
	db := openDB(t)
	docs, err := ode.Register[Doc](db, "Doc")
	if err != nil {
		t.Fatal(err)
	}
	n := NewNotifier(db)
	var a, b ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		if a, err = docs.Create(tx, &Doc{Title: "a"}); err != nil {
			return err
		}
		b, err = docs.Create(tx, &Doc{Title: "b"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	n.WatchObject("alice", a.OID(), ode.On(ode.EvNewVersion))
	n.WatchType("team", docs.ID(), ode.OnAny)
	if err := db.Update(func(tx *ode.Tx) error {
		if _, err := a.NewVersion(tx); err != nil {
			return err
		}
		_, err := b.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	alice := n.Drain("alice")
	if len(alice) != 1 || alice[0].Event.Obj != a.OID() {
		t.Fatalf("alice notifications: %+v", alice)
	}
	team := n.Drain("team")
	if len(team) != 2 {
		t.Fatalf("team notifications: %d", len(team))
	}
	if n.Pending("alice") != 0 {
		t.Fatal("drain did not clear")
	}
	n.Unwatch("team")
	if err := db.Update(func(tx *ode.Tx) error {
		_, err := b.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n.Pending("team") != 0 {
		t.Fatal("unwatched subscriber still receives")
	}
}

func TestPercolationCascades(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	// Board contains module contains cell (three-level composite).
	var cell, module, board ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		if cell, err = docs.Create(tx, &Doc{Title: "cell"}); err != nil {
			return err
		}
		if module, err = docs.Create(tx, &Doc{Title: "module"}); err != nil {
			return err
		}
		board, err = docs.Create(tx, &Doc{Title: "board"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p := NewPercolator(db)
	p.Declare(module.OID(), cell.OID())
	p.Declare(board.OID(), module.OID())
	p.Enable()
	defer p.Disable()

	if err := db.Update(func(tx *ode.Tx) error {
		_, err := cell.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		// One explicit version of cell; percolation created one version
		// each of module and board.
		for _, c := range []struct {
			p    ode.Ptr[Doc]
			want uint64
		}{{cell, 2}, {module, 2}, {board, 2}} {
			n, err := c.p.VersionCount(tx)
			if err != nil {
				return err
			}
			if n != c.want {
				t.Fatalf("%v versions = %d want %d", c.p, n, c.want)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.Created() != 2 {
		t.Fatalf("percolated versions = %d", p.Created())
	}
	// Small change, big impact: that is why it is a policy. Disabled,
	// the same edit touches exactly one object.
	p.Disable()
	if err := db.Update(func(tx *ode.Tx) error {
		_, err := cell.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, _ := board.VersionCount(tx)
		if n != 2 {
			t.Fatalf("disabled percolator still fired: board=%d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPercolationCycleSafe(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	var a, b ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		if a, err = docs.Create(tx, &Doc{Title: "a"}); err != nil {
			return err
		}
		b, err = docs.Create(tx, &Doc{Title: "b"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	p := NewPercolator(db)
	p.Declare(a.OID(), b.OID())
	p.Declare(b.OID(), a.OID()) // cycle
	p.Enable()
	defer p.Disable()
	if err := db.Update(func(tx *ode.Tx) error {
		_, err := a.NewVersion(tx)
		return err
	}); err != nil {
		t.Fatal(err) // would hang or stack-overflow without the guard
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLinearEnforcement(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	lin := NewLinear(db)
	var p ode.Ptr[Doc]
	var v0 ode.VPtr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		if p, err = docs.Create(tx, &Doc{Title: "lin"}); err != nil {
			return err
		}
		if v0, err = p.Pin(tx); err != nil {
			return err
		}
		// Appending to the tip is allowed.
		if _, err := lin.NewVersionFrom(tx, p.OID(), v0.VID()); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Deriving from history is rejected.
	err := db.Update(func(tx *ode.Tx) error {
		_, err := lin.NewVersionFrom(tx, p.OID(), v0.VID())
		return err
	})
	if !errors.Is(err, ErrNonLinear) {
		t.Fatalf("want ErrNonLinear, got %v", err)
	}
	// Branch replays history into a fresh object.
	var branched ode.OID
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		branched, _, err = lin.Branch(tx, docs.ID(), p.OID(), v0.VID())
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		if branched == p.OID() {
			t.Fatal("branch did not fork")
		}
		content, _, err := tx.ReadLatestRaw(branched)
		if err != nil || len(content) == 0 {
			t.Fatalf("branched content: %v", err)
		}
		n, err := tx.VersionCount(branched)
		if err != nil || n != 1 {
			t.Fatalf("branch history length = %d (replayed up to v0)", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkspaceCheckoutCheckin(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	ws := NewWorkspace(db, "rajeev")
	var p ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		p, err = docs.Create(tx, &Doc{Title: "design", Body: "public v0"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Checkout and edit privately.
	if err := db.Update(func(tx *ode.Tx) error {
		if _, err := ws.Checkout(tx, p.OID()); err != nil {
			return err
		}
		// Double checkout rejected.
		if _, err := ws.Checkout(tx, p.OID()); err == nil {
			t.Fatal("double checkout accepted")
		}
		return ws.Write(tx, p.OID(), []byte("private draft"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		// The workspace sees the draft.
		got, _, err := ws.Read(tx, p.OID())
		if err != nil || string(got) != "private draft" {
			t.Fatalf("workspace read: %q %v", got, err)
		}
		outs, err := ws.CheckedOut(tx)
		if err != nil || len(outs) != 1 || outs[0] != p.OID() {
			t.Fatalf("checked out: %v %v", outs, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Checkin promotes: the public latest becomes the draft state.
	if err := db.Update(func(tx *ode.Tx) error {
		_, err := ws.Checkin(tx, p.OID())
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		content, _, err := tx.ReadLatestRaw(p.OID())
		if err != nil || string(content) != "private draft" {
			t.Fatalf("public after checkin: %q %v", content, err)
		}
		outs, _ := ws.CheckedOut(tx)
		if len(outs) != 0 {
			t.Fatalf("pin survived checkin: %v", outs)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkspaceAbandon(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	ws := NewWorkspace(db, "scratch")
	var p ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		p, err = docs.Create(tx, &Doc{Body: "keep"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *ode.Tx) error {
		if _, err := ws.Checkout(tx, p.OID()); err != nil {
			return err
		}
		if err := ws.Write(tx, p.OID(), []byte("discard me")); err != nil {
			return err
		}
		return ws.Abandon(tx, p.OID())
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, err := tx.VersionCount(p.OID())
		if err != nil || n != 1 {
			t.Fatalf("abandoned version survived: %d %v", n, err)
		}
		// Writes without checkout are rejected.
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	err := db.Update(func(tx *ode.Tx) error {
		return ws.Write(tx, p.OID(), []byte("x"))
	})
	if err == nil {
		t.Fatal("write without checkout accepted")
	}
}

func TestRetentionBoundsHistory(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	var p ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		p, err = docs.Create(tx, &Doc{Title: "bounded"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ret := NewRetention(db, 3)
	ret.WatchObject(p.OID())
	ret.Enable()
	defer ret.Disable()
	// Create 10 versions; the policy must keep the history at 3.
	for i := 0; i < 10; i++ {
		if err := db.Update(func(tx *ode.Tx) error {
			nv, err := p.NewVersion(tx)
			if err != nil {
				return err
			}
			return nv.Modify(tx, func(d *Doc) { d.Body = string(rune('a' + i)) })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ret.Err(); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, err := p.VersionCount(tx)
		if err != nil {
			return err
		}
		if n != 3 {
			t.Fatalf("retained %d versions, want 3", n)
		}
		// The latest survives with the newest content.
		v, err := p.Deref(tx)
		if err != nil || v.Body != "j" {
			t.Fatalf("latest after pruning: %+v %v", v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ret.Pruned() != 8 {
		t.Fatalf("pruned = %d, want 8", ret.Pruned())
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Unwatched objects are untouched.
	var q ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		q, err = docs.Create(tx, &Doc{Title: "free"})
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if _, err := q.NewVersion(tx); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, _ := q.VersionCount(tx)
		if n != 6 {
			t.Fatalf("unwatched object pruned: %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionWatchAll(t *testing.T) {
	db := openDB(t)
	docs, _ := ode.Register[Doc](db, "Doc")
	ret := NewRetention(db, 1)
	ret.WatchAll()
	ret.Enable()
	defer ret.Disable()
	var p ode.Ptr[Doc]
	if err := db.Update(func(tx *ode.Tx) error {
		var err error
		p, err = docs.Create(tx, &Doc{})
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if _, err := p.NewVersion(tx); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := ret.Err(); err != nil {
		t.Fatal(err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, _ := p.VersionCount(tx)
		if n != 1 {
			t.Fatalf("keep=1 retained %d", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPercolationSurvivesCrossOrderRestart is the regression for a bug
// the E15 workload oracle caught at scale: when the composite lives on
// a LOWER shard than the triggering component, the percolator's
// tx.NewVersion(composite) forces a descending shard join, which the
// coordinator handles by panicking out of the closure and rerunning it
// with every shard pre-locked. The old percolator kept its
// cycle-breaking in-flight set in plain (non-deferred) code keyed
// globally, so the panic left the composite permanently marked
// in-flight and every subsequent percolation of it — including the
// rerun's — was silently skipped.
func TestPercolationSurvivesCrossOrderRestart(t *testing.T) {
	db, err := ode.Open(t.TempDir(), &ode.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tid, err := db.Engine().RegisterType("Part")
	if err != nil {
		t.Fatal(err)
	}
	// One object per transaction spreads allocations round-robin across
	// the shards; collect one composite on shard 0 and one component on
	// shard 1 (an id's top bits name its birth shard — storage.SlotOf).
	var composite, component ode.OID
	for composite == 0 || component == 0 {
		var o ode.OID
		if err := db.Update(func(tx *ode.Tx) error {
			var err error
			o, _, err = tx.CreateRaw(tid, []byte("seed"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		switch uint64(o) >> 54 {
		case 0:
			if composite == 0 {
				composite = o
			}
		default:
			if component == 0 {
				component = o
			}
		}
	}
	p := NewPercolator(db)
	p.Declare(composite, component)
	p.Enable()
	defer p.Disable()

	// New version of the shard-1 component: the transaction joins shard
	// 1 first, the in-transaction percolation then joins shard 0 —
	// descending, so the closure must run exactly twice (the lazy
	// attempt and the pre-locked rerun).
	runs := 0
	if err := db.Update(func(tx *ode.Tx) error {
		runs++
		_, err := tx.NewVersion(component)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("closure ran %d times, want 2 (descending join must restart)", runs)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("percolation error: %v", err)
	}
	if err := db.View(func(tx *ode.Tx) error {
		n, err := tx.VersionCount(composite)
		if err != nil {
			return err
		}
		if n != 2 {
			t.Fatalf("composite has %d versions, want 2 (percolation lost across restart)", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
