// Package policy implements versioning policies on top of the kernel
// primitives, exactly as the paper prescribes: change notification (§1:
// "users can implement such a facility using O++ triggers"), version
// percolation (§2: deliberately not a kernel feature), linear-only
// versioning (the GemStone/POSTGRES model, §2/§7 — the baseline the
// paper argues is inadequate for design databases), and ORION-style
// checkout/checkin workspaces (§7).
//
// Nothing in this package touches engine internals: every policy is a
// client of the public ode API plus its trigger bus, demonstrating the
// paper's mechanism/policy separation.
package policy

import (
	"sync"

	"ode"
)

// Notification records one observed change for a subscriber.
type Notification struct {
	Event ode.Event
	// Seq is the order the notification arrived in (per Notifier).
	Seq int
}

// Notifier is the change-notification policy: subscribers register
// interest in objects or types and poll their accumulated notifications.
// This is the facility ORION builds into its kernel and O++ leaves to
// triggers.
type Notifier struct {
	db *ode.DB

	mu      sync.Mutex
	nextSeq int
	queues  map[string][]Notification
	subs    map[string][]ode.TriggerID
}

// NewNotifier creates a notifier over db.
func NewNotifier(db *ode.DB) *Notifier {
	return &Notifier{
		db:     db,
		queues: make(map[string][]Notification),
		subs:   make(map[string][]ode.TriggerID),
	}
}

// WatchObject subscribes name to changes of one object.
func (n *Notifier) WatchObject(name string, o ode.OID, mask ode.EventMask) {
	id := n.db.OnObject(o, mask, false, n.handler(name))
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs[name] = append(n.subs[name], id)
}

// WatchType subscribes name to changes of every object of a type.
func (n *Notifier) WatchType(name string, t ode.TypeID, mask ode.EventMask) {
	id := n.db.OnType(t, mask, false, n.handler(name))
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs[name] = append(n.subs[name], id)
}

func (n *Notifier) handler(name string) ode.TriggerHandler {
	return func(e ode.Event) {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.nextSeq++
		n.queues[name] = append(n.queues[name], Notification{Event: e, Seq: n.nextSeq})
	}
}

// Drain returns and clears name's pending notifications.
func (n *Notifier) Drain(name string) []Notification {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.queues[name]
	delete(n.queues, name)
	return out
}

// Pending returns the number of queued notifications for name.
func (n *Notifier) Pending(name string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queues[name])
}

// Unwatch cancels all of name's subscriptions and drops its queue.
func (n *Notifier) Unwatch(name string) {
	n.mu.Lock()
	ids := n.subs[name]
	delete(n.subs, name)
	delete(n.queues, name)
	n.mu.Unlock()
	for _, id := range ids {
		n.db.RemoveTrigger(id)
	}
}
