package policy

import (
	"fmt"
	"sort"

	"ode"
)

// Workspace implements ORION-style checkout/checkin (§7: "versions can
// be created by checkout and checkin, derivation, and promotion") as a
// policy over the kernel primitives plus contexts:
//
//   - Checkout derives a private working version from the version the
//     workspace currently sees and pins it in the workspace's context;
//   - reads and writes inside the workspace go to the working version;
//   - Checkin promotes the working version by deriving a new public
//     version from it (so the object id re-binds to the checked-in
//     state) and drops the pin;
//   - Abandon deletes the working version, splicing it out.
type Workspace struct {
	db   *ode.DB
	name string
}

// NewWorkspace opens (or creates) the named workspace.
func NewWorkspace(db *ode.DB, name string) *Workspace {
	return &Workspace{db: db, name: "ws/" + name}
}

// Name returns the workspace's context name.
func (w *Workspace) Name() string { return w.name }

func (w *Workspace) pins(tx *ode.Tx) (map[ode.OID]ode.VID, error) {
	m, ok, err := tx.GetContext(w.name)
	if err != nil {
		return nil, err
	}
	if !ok {
		m = map[ode.OID]ode.VID{}
	}
	return m, nil
}

func (w *Workspace) setPins(tx *ode.Tx, m map[ode.OID]ode.VID) error {
	if len(m) == 0 {
		return tx.DeleteContext(w.name)
	}
	return tx.SetContext(w.name, m)
}

// Checkout derives a private working version of o (an alternative in
// the derivation tree) and pins it into the workspace. Returns the
// working version id.
func (w *Workspace) Checkout(tx *ode.Tx, o ode.OID) (ode.VID, error) {
	pins, err := w.pins(tx)
	if err != nil {
		return 0, err
	}
	if v, already := pins[o]; already {
		return 0, fmt.Errorf("policy: %v already checked out in %s as %v", o, w.name, v)
	}
	base, err := tx.Latest(o)
	if err != nil {
		return 0, err
	}
	working, err := tx.NewVersionFrom(o, base)
	if err != nil {
		return 0, err
	}
	pins[o] = working
	if err := w.setPins(tx, pins); err != nil {
		return 0, err
	}
	return working, nil
}

// Read dereferences o as the workspace sees it: the checked-out working
// version if any, otherwise the public latest.
func (w *Workspace) Read(tx *ode.Tx, o ode.OID) ([]byte, ode.VID, error) {
	pins, err := w.pins(tx)
	if err != nil {
		return nil, 0, err
	}
	if v, ok := pins[o]; ok {
		content, err := tx.ReadVersionRaw(o, v)
		return content, v, err
	}
	content, v, err := tx.ReadLatestRaw(o)
	return content, v, err
}

// Write stores content into the workspace's working version of o; the
// object must be checked out.
func (w *Workspace) Write(tx *ode.Tx, o ode.OID, content []byte) error {
	pins, err := w.pins(tx)
	if err != nil {
		return err
	}
	v, ok := pins[o]
	if !ok {
		return fmt.Errorf("policy: %v not checked out in %s", o, w.name)
	}
	return tx.UpdateVersionRaw(o, v, content)
}

// Checkin promotes the working version: a new public version is derived
// from it (re-binding the object id, since new versions are always the
// temporal maximum) and the pin is dropped. Returns the promoted
// version id.
func (w *Workspace) Checkin(tx *ode.Tx, o ode.OID) (ode.VID, error) {
	pins, err := w.pins(tx)
	if err != nil {
		return 0, err
	}
	working, ok := pins[o]
	if !ok {
		return 0, fmt.Errorf("policy: %v not checked out in %s", o, w.name)
	}
	promoted, err := tx.NewVersionFrom(o, working)
	if err != nil {
		return 0, err
	}
	delete(pins, o)
	if err := w.setPins(tx, pins); err != nil {
		return 0, err
	}
	return promoted, nil
}

// Abandon discards the working version (pdelete on it) and drops the
// pin.
func (w *Workspace) Abandon(tx *ode.Tx, o ode.OID) error {
	pins, err := w.pins(tx)
	if err != nil {
		return err
	}
	working, ok := pins[o]
	if !ok {
		return fmt.Errorf("policy: %v not checked out in %s", o, w.name)
	}
	if err := tx.DeleteVersion(o, working); err != nil {
		return err
	}
	delete(pins, o)
	return w.setPins(tx, pins)
}

// CheckedOut lists the objects currently checked out, in oid order.
func (w *Workspace) CheckedOut(tx *ode.Tx) ([]ode.OID, error) {
	pins, err := w.pins(tx)
	if err != nil {
		return nil, err
	}
	out := make([]ode.OID, 0, len(pins))
	for o := range pins {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
