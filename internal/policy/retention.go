package policy

import (
	"sync"

	"ode"
)

// Retention implements history pruning as a policy: keep at most N live
// versions per object, deleting the temporally oldest versions as new
// ones are created. The kernel never discards history on its own (the
// paper's historical-database motivation depends on that); bounding it
// is an application decision, so — like percolation — it is built
// entirely from pdelete(vid) plus a trigger.
//
// Pruning uses DeleteVersion, so the derivation tree is spliced
// correctly: children of a pruned version are re-parented, and delta
// payloads are rewritten before their base disappears.
type Retention struct {
	db   *ode.DB
	keep int

	mu      sync.Mutex
	scoped  map[ode.OID]bool // nil/empty = all objects of the types watched
	allObjs bool
	pruned  uint64
	err     error
	trig    ode.TriggerID
	active  bool
}

// NewRetention creates an inactive retention policy keeping at most
// `keep` versions per object (keep >= 1).
func NewRetention(db *ode.DB, keep int) *Retention {
	if keep < 1 {
		keep = 1
	}
	return &Retention{db: db, keep: keep, scoped: make(map[ode.OID]bool)}
}

// WatchObject scopes the policy to specific objects (call before
// Enable; may be called repeatedly).
func (r *Retention) WatchObject(o ode.OID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scoped[o] = true
}

// WatchAll scopes the policy to every object in the database.
func (r *Retention) WatchAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.allObjs = true
}

// Enable attaches the pruning trigger.
func (r *Retention) Enable() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active {
		return
	}
	r.active = true
	r.trig = r.db.OnAll(ode.On(ode.EvNewVersion), false, r.onNewVersion)
}

// Disable detaches the trigger.
func (r *Retention) Disable() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.active {
		return
	}
	r.active = false
	r.db.RemoveTrigger(r.trig)
}

// Pruned returns how many versions the policy has deleted.
func (r *Retention) Pruned() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pruned
}

// Err returns the first pruning failure, if any.
func (r *Retention) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Retention) onNewVersion(e ode.Event) {
	r.mu.Lock()
	watch := r.allObjs || r.scoped[e.Obj]
	r.mu.Unlock()
	if !watch {
		return
	}
	// We run inside the creating transaction: prune synchronously
	// through its handle.
	tx := r.db.TxOf(e)
	if tx == nil {
		r.fail(ode.ErrTxDone)
		return
	}
	for {
		vs, err := tx.Versions(e.Obj)
		if err != nil {
			r.fail(err)
			return
		}
		if len(vs) <= r.keep {
			return
		}
		// Delete the temporally oldest version.
		if err := tx.DeleteVersion(e.Obj, vs[0]); err != nil {
			r.fail(err)
			return
		}
		r.mu.Lock()
		r.pruned++
		r.mu.Unlock()
	}
}

func (r *Retention) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = err
	}
}
