package policy

import (
	"errors"
	"fmt"

	"ode"
)

// Linear enforces the GemStone/POSTGRES versioning model the paper
// contrasts with (§2, §7): "the version relationship of an object is
// constrained to be linear". New versions may only be derived from the
// latest version; deriving from history — the tree model's alternative
// — requires forking the object wholesale (Branch), which is exactly
// the inadequacy the paper calls out for design databases. Experiment
// E4 measures the gap.
type Linear struct {
	db *ode.DB
}

// ErrNonLinear reports an attempt to derive from a non-latest version
// under the linear policy.
var ErrNonLinear = errors.New("policy: linear model forbids deriving from a non-latest version")

// NewLinear wraps db with linear-model enforcement.
func NewLinear(db *ode.DB) *Linear { return &Linear{db: db} }

// NewVersion appends a version to the object's linear history.
func (l *Linear) NewVersion(tx *ode.Tx, o ode.OID) (ode.VID, error) {
	return tx.NewVersion(o)
}

// NewVersionFrom permits derivation only from the latest version.
func (l *Linear) NewVersionFrom(tx *ode.Tx, o ode.OID, base ode.VID) (ode.VID, error) {
	latest, err := tx.Latest(o)
	if err != nil {
		return 0, err
	}
	if base != latest {
		return 0, fmt.Errorf("%w: base %v, latest %v", ErrNonLinear, base, latest)
	}
	return tx.NewVersionFrom(o, base)
}

// Branch is the linear model's only way to start an alternative from a
// historical version: fork a brand-new object and replay the history up
// to (and including) base into it, version by version. The cost is
// O(history length × version size) — versus O(1) for the tree model's
// NewVersionFrom. Returns the new object and its latest version (a copy
// of base's state).
func (l *Linear) Branch(tx *ode.Tx, t ode.TypeID, o ode.OID, base ode.VID) (ode.OID, ode.VID, error) {
	versions, err := tx.Versions(o)
	if err != nil {
		return 0, 0, err
	}
	// Replay the temporal prefix up to base.
	var prefix []ode.VID
	for _, v := range versions {
		prefix = append(prefix, v)
		if v == base {
			break
		}
	}
	if len(prefix) == 0 || prefix[len(prefix)-1] != base {
		return 0, 0, fmt.Errorf("policy: base %v not found in %v's history", base, o)
	}
	first, err := tx.ReadVersionRaw(o, prefix[0])
	if err != nil {
		return 0, 0, err
	}
	newObj, _, err := tx.CreateRaw(t, first)
	if err != nil {
		return 0, 0, err
	}
	var lastVID ode.VID
	lastVID, err = tx.Latest(newObj)
	if err != nil {
		return 0, 0, err
	}
	for _, v := range prefix[1:] {
		content, err := tx.ReadVersionRaw(o, v)
		if err != nil {
			return 0, 0, err
		}
		nv, err := tx.NewVersion(newObj)
		if err != nil {
			return 0, 0, err
		}
		if err := tx.UpdateVersionRaw(newObj, nv, content); err != nil {
			return 0, 0, err
		}
		lastVID = nv
	}
	return newObj, lastVID, nil
}
