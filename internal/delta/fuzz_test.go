package delta

// FuzzDeltaChain hardens the delta codec against hostile records: Apply
// on corrupted or truncated deltas must return ErrCorrupt-wrapped
// errors, never panic, and never produce output that disagrees with the
// record's declared target length. (Interior bytes of a structurally
// valid INSERT are covered by the storage layer's page checksums, not
// the codec — DESIGN.md §14.)

import (
	"bytes"
	"testing"

	"ode/internal/codec"
)

// declaredLen extracts the self-described target length of a delta.
func declaredLen(d []byte) (uint64, bool) {
	r := codec.NewReader(d)
	n := r.UVarint()
	return n, r.Err() == nil
}

// mustNotPanicApply applies d and enforces the structural contract.
func mustNotPanicApply(t *testing.T, base, d []byte) {
	t.Helper()
	out, err := Apply(base, d)
	if err != nil {
		return
	}
	want, ok := declaredLen(d)
	if !ok {
		t.Fatalf("Apply succeeded on a delta whose length header does not parse (%d bytes)", len(d))
	}
	if uint64(len(out)) != want {
		t.Fatalf("Apply returned %d bytes but the delta declares %d", len(out), want)
	}
}

func FuzzDeltaChain(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), []byte("the quick brown cat jumps over the lazy dog"), []byte{})
	f.Add(bytes.Repeat([]byte("abcdefgh"), 64), bytes.Repeat([]byte("abcdefgh"), 63), []byte{1, 0, 0, 0, 0})
	f.Add([]byte{}, []byte("from empty base"), []byte{0x05, 0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x02})
	f.Add([]byte("short"), []byte{}, []byte{0x00, 0x01})
	f.Fuzz(func(t *testing.T, base, target, corrupt []byte) {
		if len(base) > 1<<16 || len(target) > 1<<16 {
			t.Skip()
		}
		// A genuine Encode output must round-trip exactly.
		d := Encode(base, target)
		out, err := Apply(base, d)
		if err != nil {
			t.Fatalf("Apply(Encode) failed: %v", err)
		}
		if !bytes.Equal(out, target) {
			t.Fatalf("round trip: got %d bytes, want %d", len(out), len(target))
		}

		// Arbitrary bytes treated as a delta: error or length-consistent,
		// never a panic.
		mustNotPanicApply(t, base, corrupt)
		mustNotPanicApply(t, target, corrupt)

		// Every truncation of a valid delta is structurally broken and
		// must be rejected (checked exhaustively for small deltas).
		step := 1
		if len(d) > 128 {
			step = len(d) / 64
		}
		for cut := 0; cut < len(d); cut += step {
			if _, err := Apply(base, d[:cut]); err == nil && cut > 0 {
				t.Fatalf("truncated delta (%d of %d bytes) applied cleanly", cut, len(d))
			}
		}

		// Single-byte corruptions keep the structural contract.
		if len(d) > 0 && len(corrupt) > 0 {
			mut := append([]byte(nil), d...)
			for i, c := range corrupt {
				if c == 0 {
					continue
				}
				pos := (i * 131) % len(mut)
				mut[pos] ^= c
				mustNotPanicApply(t, base, mut)
				mut[pos] = d[pos]
			}
		}

		// A chain with an arbitrary final link must error or stay
		// length-consistent (Apply enforces that per link) — and never
		// panic, which is the property under fuzz.
		if out, err := MaterializeChain(base, [][]byte{d, corrupt}); err == nil {
			want, ok := declaredLen(corrupt)
			if !ok || uint64(len(out)) != want {
				t.Fatalf("chain result %d bytes disagrees with final link's declared length", len(out))
			}
		}
	})
}

// TestApplyCopyOverflow pins the uint64 wrap-around fix: a COPY whose
// off+n overflows must be rejected, not panic.
func TestApplyCopyOverflow(t *testing.T) {
	w := codec.NewWriter(32)
	w.UVarint(1)                  // declared target length
	w.U8(opCopy)                  // COPY ...
	w.UVarint(^uint64(0))         // off = 2^64-1
	w.UVarint(2)                  // n = 2: off+n wraps to 1
	if _, err := Apply([]byte("0123456789"), w.Bytes()); err == nil {
		t.Fatal("overflowing copy bounds accepted")
	}
}

// TestApplyOutputBounded pins the early output-length check: a delta
// declaring a small target cannot balloon the output with repeated
// full-base copies before being rejected.
func TestApplyOutputBounded(t *testing.T) {
	base := bytes.Repeat([]byte("x"), 1024)
	w := codec.NewWriter(64)
	w.UVarint(8) // declares 8 bytes...
	for i := 0; i < 16; i++ {
		w.U8(opCopy) // ...but copies the whole base 16 times
		w.UVarint(0)
		w.UVarint(uint64(len(base)))
	}
	if _, err := Apply(base, w.Bytes()); err == nil {
		t.Fatal("over-long output accepted")
	}
}
