// Package delta implements binary differencing for version payloads.
// The paper (§2) observes that the derived-from relationship "can be used
// to store versions by storing their differences (called deltas)", citing
// SCCS and RCS. This package provides that storage policy: a version's
// payload can be stored as a copy/insert delta against its derived-from
// parent and materialised by applying the delta chain.
//
// The encoder is a greedy block-hash matcher (in the spirit of xdelta):
// the base is indexed by the hash of every aligned block; the target is
// scanned, and block-hash hits are extended byte-wise forward to maximal
// matches, which become COPY ops; unmatched bytes become INSERT ops.
package delta

import (
	"bytes"
	"errors"
	"fmt"

	"ode/internal/codec"
)

// blockSize is the granularity of base indexing. Smaller blocks find more
// matches but cost more index space; 16 is a good fit for the record
// sizes an object store sees.
const blockSize = 16

// op tags in the encoded delta.
const (
	opInsert = 0
	opCopy   = 1
)

// ErrCorrupt reports a delta that cannot be decoded or applied.
var ErrCorrupt = errors.New("delta: corrupt delta")

// Encode produces a delta that transforms base into target. The result
// is self-describing (it embeds the target length) and is always valid
// to Apply against base. Encode never fails; for incompressible pairs
// the delta degenerates to one big INSERT (with a few bytes of framing
// overhead).
func Encode(base, target []byte) []byte {
	w := codec.NewWriter(64 + len(target)/8)
	w.UVarint(uint64(len(target)))

	if len(base) < blockSize || len(target) < blockSize {
		// Too small to match blocks; emit a pure insert.
		if len(target) > 0 {
			emitInsert(w, target)
		}
		return w.Bytes()
	}

	// Index base: hash of each aligned block -> offsets (chained).
	index := make(map[uint64][]int, len(base)/blockSize+1)
	for off := 0; off+blockSize <= len(base); off += blockSize {
		h := hashBlock(base[off : off+blockSize])
		index[h] = append(index[h], off)
	}

	var pendingInsert []byte
	i := 0
	for i < len(target) {
		if i+blockSize > len(target) {
			pendingInsert = append(pendingInsert, target[i:]...)
			break
		}
		h := hashBlock(target[i : i+blockSize])
		srcOff, matchLen := bestMatch(base, target, index[h], i)
		if matchLen < blockSize {
			pendingInsert = append(pendingInsert, target[i])
			i++
			continue
		}
		if len(pendingInsert) > 0 {
			emitInsert(w, pendingInsert)
			pendingInsert = pendingInsert[:0]
		}
		emitCopy(w, srcOff, matchLen)
		i += matchLen
	}
	if len(pendingInsert) > 0 {
		emitInsert(w, pendingInsert)
	}
	return w.Bytes()
}

// bestMatch finds the longest forward match among candidate base offsets
// for the block at target[i:].
func bestMatch(base, target []byte, candidates []int, i int) (srcOff, matchLen int) {
	// Cap the work per block; keep the earliest offsets, which maximise
	// the forward extension room and thus match length.
	const maxCandidates = 8
	if len(candidates) > maxCandidates {
		candidates = candidates[:maxCandidates]
	}
	for _, off := range candidates {
		if !bytes.Equal(base[off:off+blockSize], target[i:i+blockSize]) {
			continue // hash collision
		}
		n := blockSize
		for off+n < len(base) && i+n < len(target) && base[off+n] == target[i+n] {
			n++
		}
		if n > matchLen {
			srcOff, matchLen = off, n
		}
	}
	return srcOff, matchLen
}

func emitInsert(w *codec.Writer, data []byte) {
	w.U8(opInsert)
	w.Bytes32(data)
}

func emitCopy(w *codec.Writer, off, n int) {
	w.U8(opCopy)
	w.UVarint(uint64(off))
	w.UVarint(uint64(n))
}

func hashBlock(b []byte) uint64 {
	// FNV-1a over the block; collisions are verified byte-wise.
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Apply reconstructs the target from base and a delta produced by Encode.
func Apply(base, delta []byte) ([]byte, error) {
	r := codec.NewReader(delta)
	targetLen := r.UVarint()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.Err())
	}
	if targetLen > codec.MaxBlob {
		return nil, fmt.Errorf("%w: target length %d", ErrCorrupt, targetLen)
	}
	out := make([]byte, 0, targetLen)
	for r.Remaining() > 0 {
		switch tag := r.U8(); tag {
		case opInsert:
			data := r.Bytes32()
			if r.Err() != nil {
				return nil, fmt.Errorf("%w: insert: %v", ErrCorrupt, r.Err())
			}
			out = append(out, data...)
			if uint64(len(out)) > targetLen {
				return nil, fmt.Errorf("%w: output exceeds declared length %d", ErrCorrupt, targetLen)
			}
		case opCopy:
			off := r.UVarint()
			n := r.UVarint()
			if r.Err() != nil {
				return nil, fmt.Errorf("%w: copy: %v", ErrCorrupt, r.Err())
			}
			// Checked separately: off+n alone can wrap around uint64 and
			// slip past a combined bound.
			if n > uint64(len(base)) || off > uint64(len(base))-n {
				return nil, fmt.Errorf("%w: copy [%d,+%d) beyond base %d", ErrCorrupt, off, n, len(base))
			}
			out = append(out, base[off:off+n]...)
			if uint64(len(out)) > targetLen {
				return nil, fmt.Errorf("%w: output exceeds declared length %d", ErrCorrupt, targetLen)
			}
		default:
			if r.Err() != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.Err())
			}
			return nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, tag)
		}
	}
	if uint64(len(out)) != targetLen {
		return nil, fmt.Errorf("%w: produced %d bytes, want %d", ErrCorrupt, len(out), targetLen)
	}
	return out, nil
}

// MaterializeChain applies deltas in order starting from base:
// base -> chain[0] -> chain[1] -> ... and returns the final payload.
func MaterializeChain(base []byte, chain [][]byte) ([]byte, error) {
	cur := base
	for i, d := range chain {
		next, err := Apply(cur, d)
		if err != nil {
			return nil, fmt.Errorf("delta: chain link %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// Ratio returns len(delta)/len(target) as a compactness measure for the
// benchmarks (1.0 ≈ no savings; small values ≈ high redundancy).
func Ratio(deltaLen, targetLen int) float64 {
	if targetLen == 0 {
		return 1
	}
	return float64(deltaLen) / float64(targetLen)
}
