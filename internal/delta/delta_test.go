package delta

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, base, target []byte) []byte {
	t.Helper()
	d := Encode(base, target)
	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("roundtrip mismatch: got %d bytes want %d", len(got), len(target))
	}
	return d
}

func TestEmptyCases(t *testing.T) {
	roundtrip(t, nil, nil)
	roundtrip(t, []byte("base"), nil)
	roundtrip(t, nil, []byte("target"))
	roundtrip(t, []byte("x"), []byte("y"))
}

func TestIdenticalCompressesWell(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KiB
	d := roundtrip(t, payload, payload)
	if len(d) > 64 {
		t.Fatalf("identical payload delta too large: %d bytes", len(d))
	}
}

func TestSmallEditCompressesWell(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 8192)
	rng.Read(base)
	target := append([]byte(nil), base...)
	// Point edits at three places.
	target[100] ^= 0xFF
	target[4000] ^= 0xFF
	target[8000] ^= 0xFF
	d := roundtrip(t, base, target)
	if len(d) > len(target)/4 {
		t.Fatalf("small edit delta too large: %d of %d", len(d), len(target))
	}
}

func TestInsertionInMiddle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 4096)
	rng.Read(base)
	target := append(append(append([]byte(nil), base[:2000]...), []byte("INSERTED CONTENT HERE")...), base[2000:]...)
	d := roundtrip(t, base, target)
	if len(d) > len(target)/4 {
		t.Fatalf("insertion delta too large: %d of %d", len(d), len(target))
	}
}

func TestDeletionAndReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := make([]byte, 4096)
	rng.Read(base)
	// Delete the middle quarter and swap two halves of the rest.
	target := append(append([]byte(nil), base[3072:]...), base[:1024]...)
	roundtrip(t, base, target)
}

func TestUnrelatedDataDegeneratesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := make([]byte, 2048)
	target := make([]byte, 2048)
	rng.Read(base)
	rng.Read(target)
	d := roundtrip(t, base, target)
	// Pure insert plus framing: must not blow up beyond ~2x.
	if len(d) > 2*len(target)+64 {
		t.Fatalf("degenerate delta too large: %d of %d", len(d), len(target))
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(base, target []byte) bool {
		d := Encode(base, target)
		got, err := Apply(base, d)
		return err == nil && bytes.Equal(got, target)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundtripRelated(t *testing.T) {
	// Random edits of a shared base: the realistic versioning case.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(6000) + 1
		base := make([]byte, n)
		rng.Read(base)
		target := append([]byte(nil), base...)
		for e := rng.Intn(8); e >= 0; e-- {
			switch rng.Intn(3) {
			case 0: // mutate a run
				if len(target) == 0 {
					continue
				}
				at := rng.Intn(len(target))
				ln := rng.Intn(50) + 1
				for j := at; j < at+ln && j < len(target); j++ {
					target[j] ^= byte(rng.Intn(255) + 1)
				}
			case 1: // insert a run
				at := rng.Intn(len(target) + 1)
				ins := make([]byte, rng.Intn(100))
				rng.Read(ins)
				target = append(target[:at], append(ins, target[at:]...)...)
			case 2: // delete a run
				if len(target) < 2 {
					continue
				}
				at := rng.Intn(len(target) - 1)
				end := at + rng.Intn(len(target)-at)
				target = append(target[:at], target[end:]...)
			}
		}
		roundtrip(t, base, target)
	}
}

func TestApplyRejectsCorrupt(t *testing.T) {
	base := bytes.Repeat([]byte("b"), 100)
	target := bytes.Repeat([]byte("t"), 100)
	d := Encode(base, target)

	// Truncated delta.
	if _, err := Apply(base, d[:len(d)/2]); err == nil {
		t.Fatal("truncated delta accepted")
	}
	// Unknown op.
	bad := append([]byte(nil), d...)
	bad[1] = 0x7F
	if _, err := Apply(base, bad); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Copy beyond base: apply against a shorter base.
	dd := Encode(base, base) // all-copy delta
	if _, err := Apply(base[:10], dd); err == nil {
		t.Fatal("out-of-range copy accepted")
	}
}

func TestMaterializeChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := make([]byte, 2048)
	rng.Read(v)
	versions := [][]byte{v}
	var chain [][]byte
	for i := 0; i < 20; i++ {
		next := append([]byte(nil), versions[len(versions)-1]...)
		at := rng.Intn(len(next))
		next[at] ^= 0x55
		chain = append(chain, Encode(versions[len(versions)-1], next))
		versions = append(versions, next)
	}
	got, err := MaterializeChain(versions[0], chain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, versions[len(versions)-1]) {
		t.Fatal("chain materialisation mismatch")
	}
	// Prefixes materialise intermediate versions.
	for i := range chain {
		got, err := MaterializeChain(versions[0], chain[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, versions[i+1]) {
			t.Fatalf("prefix %d mismatch", i)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(50, 100) != 0.5 {
		t.Fatal("ratio arithmetic")
	}
	if Ratio(10, 0) != 1 {
		t.Fatal("zero target ratio")
	}
}

func BenchmarkEncodeSmallEdit(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	base := make([]byte, 4096)
	rng.Read(base)
	target := append([]byte(nil), base...)
	target[1000] ^= 1
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(base, target)
	}
}

func BenchmarkApplySmallEdit(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	base := make([]byte, 4096)
	rng.Read(base)
	target := append([]byte(nil), base...)
	target[1000] ^= 1
	d := Encode(base, target)
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(base, d); err != nil {
			b.Fatal(err)
		}
	}
}
