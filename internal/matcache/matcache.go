// Package matcache is the materialisation cache of the delta storage
// tier (DESIGN.md §14): a sharded, byte-bounded LRU mapping a version
// (object id, version id) to its fully materialised content, so hot
// reads of delta-compressed versions skip the chain walk entirely.
//
// Correctness does not rely on invalidation. Every entry is tagged with
// the (storage shard, commit epoch) it was materialised at, and a
// lookup only hits when the reader's own pinned (shard, epoch) pair
// matches exactly. Commits advance the shard's epoch, which makes every
// entry cached under the previous epoch unreachable — stale content can
// never be served, it can only age out of the LRU. The shard slot in
// the tag covers the reshard corner where an object moves to a
// different physical shard whose independent epoch counter happens to
// coincide with the old one.
//
// The cache is safe for concurrent use. Get copies content out and Put
// copies content in, so callers can never alias cache-owned bytes.
package matcache

import (
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the bookkeeping bytes charged per entry on
// top of its content, so caches full of tiny payloads still respect the
// byte budget.
const entryOverhead = 96

type key struct {
	o, v uint64
}

type entry struct {
	k          key
	shard      int
	epoch      uint64
	content    []byte
	prev, next *entry // LRU list; next is more recent
}

// bucket is one independently locked LRU segment.
type bucket struct {
	mu    sync.Mutex
	m     map[key]*entry
	head  *entry // least recently used
	tail  *entry // most recently used
	bytes int64
}

// Cache is a sharded LRU of materialised version payloads.
type Cache struct {
	buckets []*bucket
	capPer  int64 // byte budget per bucket

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int
}

// New builds a cache bounded by capacity bytes spread over nBuckets
// independently locked segments. nBuckets is rounded up to a power of
// two; values < 1 become 1. A capacity smaller than one entry still
// admits nothing larger than its per-bucket share.
func New(capacity int64, nBuckets int) *Cache {
	if nBuckets < 1 {
		nBuckets = 1
	}
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	if capacity < 0 {
		capacity = 0
	}
	c := &Cache{
		buckets: make([]*bucket, n),
		capPer:  capacity / int64(n),
	}
	for i := range c.buckets {
		c.buckets[i] = &bucket{m: make(map[key]*entry)}
	}
	return c
}

func (c *Cache) bucketOf(k key) *bucket {
	// fnv-1a over the two ids; buckets is a power of two.
	h := uint64(14695981039346656037)
	for _, x := range [2]uint64{k.o, k.v} {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return c.buckets[h&uint64(len(c.buckets)-1)]
}

// Get returns a copy of the cached content for (o, v) if an entry
// exists AND was stored at exactly the caller's (shard, epoch). An
// entry found under a different tag is deleted (it can never be served
// again — epochs only advance) and reported as a miss.
func (c *Cache) Get(o, v uint64, shard int, epoch uint64) ([]byte, bool) {
	k := key{o, v}
	b := c.bucketOf(k)
	b.mu.Lock()
	e, ok := b.m[k]
	if !ok {
		b.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if e.shard != shard || e.epoch != epoch {
		// Drop the entry only when it is provably stale: same shard but
		// an older epoch than the probing reader's (epochs only
		// advance). A probe from a reader pinned at an OLDER epoch, or
		// from a different shard slot, must not evict a fresh entry.
		if e.shard == shard && e.epoch < epoch {
			b.unlink(e)
			delete(b.m, k)
			b.bytes -= int64(len(e.content)) + entryOverhead
			b.mu.Unlock()
			c.bytes.Add(-(int64(len(e.content)) + entryOverhead))
			c.misses.Add(1)
			return nil, false
		}
		b.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	b.touch(e)
	out := make([]byte, len(e.content))
	copy(out, e.content)
	b.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// Put stores a copy of content for (o, v) tagged with (shard, epoch),
// evicting least-recently-used entries until the bucket fits its
// budget. Content larger than the per-bucket budget is not cached.
func (c *Cache) Put(o, v uint64, shard int, epoch uint64, content []byte) {
	cost := int64(len(content)) + entryOverhead
	if cost > c.capPer {
		return
	}
	k := key{o, v}
	b := c.bucketOf(k)
	cp := make([]byte, len(content))
	copy(cp, content)

	b.mu.Lock()
	var delta int64
	if old, ok := b.m[k]; ok {
		delta -= int64(len(old.content)) + entryOverhead
		b.bytes += delta
		old.shard, old.epoch, old.content = shard, epoch, cp
		b.bytes += cost
		delta += cost
		b.touch(old)
	} else {
		e := &entry{k: k, shard: shard, epoch: epoch, content: cp}
		b.m[k] = e
		b.append(e)
		b.bytes += cost
		delta += cost
	}
	var evicted int
	for b.bytes > c.capPer && b.head != nil {
		victim := b.head
		b.unlink(victim)
		delete(b.m, victim.k)
		freed := int64(len(victim.content)) + entryOverhead
		b.bytes -= freed
		delta -= freed
		evicted++
	}
	b.mu.Unlock()
	c.bytes.Add(delta)
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Reset drops every entry.
func (c *Cache) Reset() {
	for _, b := range c.buckets {
		b.mu.Lock()
		freed := b.bytes
		b.m = make(map[key]*entry)
		b.head, b.tail = nil, nil
		b.bytes = 0
		b.mu.Unlock()
		c.bytes.Add(-freed)
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
	for _, b := range c.buckets {
		b.mu.Lock()
		s.Entries += len(b.m)
		b.mu.Unlock()
	}
	return s
}

// --- intrusive LRU list (bucket.mu held) ---

func (b *bucket) append(e *entry) {
	e.prev, e.next = b.tail, nil
	if b.tail != nil {
		b.tail.next = e
	} else {
		b.head = e
	}
	b.tail = e
}

func (b *bucket) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *bucket) touch(e *entry) {
	if b.tail == e {
		return
	}
	b.unlink(e)
	b.append(e)
}
