package matcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1<<20, 4)
	c.Put(1, 2, 0, 7, []byte("hello"))
	got, ok := c.Get(1, 2, 0, 7)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("get = %q, %v; want hello, true", got, ok)
	}
	if _, ok := c.Get(1, 3, 0, 7); ok {
		t.Fatal("unexpected hit for absent version")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestEpochAndShardTagMismatch(t *testing.T) {
	c := New(1<<20, 1)
	c.Put(9, 9, 1, 5, []byte("v-at-epoch-5"))
	// Same shard, newer epoch: stale entry must not be served and must
	// be dropped.
	if _, ok := c.Get(9, 9, 1, 6); ok {
		t.Fatal("served entry from an older epoch")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale entry not dropped: %+v", st)
	}
	// Same epoch number, different shard slot (reshard coincidence).
	c.Put(9, 9, 1, 5, []byte("v"))
	if _, ok := c.Get(9, 9, 2, 5); ok {
		t.Fatal("served entry tagged for another shard")
	}
}

func TestCopyOnGetAndPut(t *testing.T) {
	c := New(1<<20, 1)
	src := []byte("immutable")
	c.Put(1, 1, 0, 1, src)
	src[0] = 'X' // caller mutates its buffer after Put
	got, ok := c.Get(1, 1, 0, 1)
	if !ok || string(got) != "immutable" {
		t.Fatalf("cache aliased caller's Put buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the Get result
	again, _ := c.Get(1, 1, 0, 1)
	if string(again) != "immutable" {
		t.Fatalf("cache aliased Get result: %q", again)
	}
}

func TestOverwriteSameKey(t *testing.T) {
	c := New(1<<20, 1)
	c.Put(1, 1, 0, 1, []byte("old"))
	c.Put(1, 1, 0, 2, []byte("newer-content"))
	if _, ok := c.Get(1, 1, 0, 1); ok {
		t.Fatal("old epoch still served after overwrite")
	}
	got, ok := c.Get(1, 1, 0, 2)
	if !ok || string(got) != "newer-content" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("overwrite duplicated entry: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// One bucket, room for roughly 4 entries of 100 bytes + overhead.
	c := New(4*(100+entryOverhead), 1)
	pay := make([]byte, 100)
	for i := uint64(0); i < 6; i++ {
		c.Put(i, i, 0, 1, pay)
	}
	// 0 and 1 are the least recently used and must be gone.
	if _, ok := c.Get(0, 0, 0, 1); ok {
		t.Fatal("LRU entry 0 survived eviction")
	}
	if _, ok := c.Get(1, 1, 0, 1); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for i := uint64(2); i < 6; i++ {
		if _, ok := c.Get(i, i, 0, 1); !ok {
			t.Fatalf("recent entry %d evicted", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d; want 2", st.Evictions)
	}
	if st.Bytes > 4*(100+entryOverhead) {
		t.Fatalf("bytes %d exceeds budget", st.Bytes)
	}
}

func TestTouchKeepsHotEntry(t *testing.T) {
	c := New(3*(10+entryOverhead), 1)
	pay := make([]byte, 10)
	c.Put(1, 1, 0, 1, pay)
	c.Put(2, 2, 0, 1, pay)
	c.Put(3, 3, 0, 1, pay)
	c.Get(1, 1, 0, 1) // touch 1: now 2 is the LRU
	c.Put(4, 4, 0, 1, pay)
	if _, ok := c.Get(2, 2, 0, 1); ok {
		t.Fatal("expected 2 to be evicted (1 was touched)")
	}
	if _, ok := c.Get(1, 1, 0, 1); !ok {
		t.Fatal("touched entry 1 was evicted")
	}
}

func TestOversizeAndZeroCapacity(t *testing.T) {
	c := New(256, 1)
	c.Put(1, 1, 0, 1, make([]byte, 1024))
	if _, ok := c.Get(1, 1, 0, 1); ok {
		t.Fatal("oversized content was cached")
	}
	z := New(0, 4)
	z.Put(1, 1, 0, 1, []byte("x"))
	if _, ok := z.Get(1, 1, 0, 1); ok {
		t.Fatal("zero-capacity cache accepted an entry")
	}
	n := New(-5, 0) // degenerate arguments must not panic
	n.Put(1, 1, 0, 1, []byte("x"))
}

func TestReset(t *testing.T) {
	c := New(1<<20, 8)
	for i := uint64(0); i < 64; i++ {
		c.Put(i, i, 0, 1, []byte("payload"))
	}
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("reset left %d entries, %d bytes", st.Entries, st.Bytes)
	}
	if _, ok := c.Get(3, 3, 0, 1); ok {
		t.Fatal("entry survived Reset")
	}
}

// TestConcurrent hammers the cache from many goroutines under -race and
// checks every hit returns the exact bytes stored for that key+epoch.
func TestConcurrent(t *testing.T) {
	c := New(64<<10, 4)
	content := func(o, v, epoch uint64) []byte {
		return []byte(fmt.Sprintf("content-%d-%d-%d", o, v, epoch))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				o, v := uint64(rng.Intn(16)), uint64(rng.Intn(16))
				epoch := uint64(rng.Intn(4))
				if rng.Intn(2) == 0 {
					c.Put(o, v, 0, epoch, content(o, v, epoch))
				} else if got, ok := c.Get(o, v, 0, epoch); ok {
					if want := content(o, v, epoch); !bytes.Equal(got, want) {
						panic(fmt.Sprintf("hit returned %q, want %q", got, want))
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 {
		t.Fatalf("negative byte accounting: %+v", st)
	}
}
