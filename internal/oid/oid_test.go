package oid

import (
	"testing"
	"testing/quick"
)

func TestNilPredicates(t *testing.T) {
	if !NilOID.IsNil() || OID(1).IsNil() {
		t.Fatal("OID nil predicate wrong")
	}
	if !NilVID.IsNil() || VID(1).IsNil() {
		t.Fatal("VID nil predicate wrong")
	}
	if !NilRID.IsNil() || (RID{Page: 3, Slot: 0}).IsNil() {
		t.Fatal("RID nil predicate wrong")
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{OID(42).String(), "o42"},
		{NilOID.String(), "o·nil"},
		{VID(7).String(), "v7"},
		{NilVID.String(), "v·nil"},
		{TypeID(3).String(), "t3"},
		{PageID(9).String(), "p9"},
		{RID{Page: 2, Slot: 5}.String(), "r2.5"},
		{LSN(100).String(), "lsn100"},
		{TxID(6).String(), "tx6"},
		{Stamp(11).String(), "@11"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestRIDPackRoundtrip(t *testing.T) {
	f := func(page uint32, slot uint16) bool {
		r := RID{Page: PageID(page), Slot: slot}
		b := r.Pack()
		return UnpackRID(b[:]) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRIDLess(t *testing.T) {
	a := RID{Page: 1, Slot: 9}
	b := RID{Page: 2, Slot: 0}
	c := RID{Page: 2, Slot: 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("RID ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestRIDLessMatchesPackOrder(t *testing.T) {
	// RID.Less must agree with big-endian byte order of Pack, so RIDs can
	// be used as B+tree key suffixes.
	f := func(p1 uint32, s1 uint16, p2 uint32, s2 uint16) bool {
		a := RID{Page: PageID(p1), Slot: s1}
		b := RID{Page: PageID(p2), Slot: s2}
		ab, bb := a.Pack(), b.Pack()
		byteLess := string(ab[:]) < string(bb[:])
		return a.Less(b) == byteLess
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
