// Package oid defines the identifier types used throughout the Ode
// reproduction: object ids (generic references that bind to the latest
// version of an object), version ids (specific references that pin one
// immutable version), record ids (physical addresses in the record heap),
// and type ids (catalog handles).
//
// The paper's §3 distinguishes generic references (object ids, which
// "logically refer to the latest version of the object") from specific
// references (version ids). Both are fixed-size opaque integers here so
// they can be embedded in on-disk structures and used as B+tree keys.
package oid

import (
	"encoding/binary"
	"fmt"
)

// OID is a persistent object identity ("object id" in the paper). An OID
// is a *generic* reference: dereferencing it yields the latest version of
// the object. OIDs are allocated monotonically per store and never reused.
type OID uint64

// NilOID is the zero OID; it never identifies an object.
const NilOID OID = 0

// IsNil reports whether o is the nil object id.
func (o OID) IsNil() bool { return o == NilOID }

// String renders the oid in the paper's notation, e.g. "o42".
func (o OID) String() string {
	if o.IsNil() {
		return "o·nil"
	}
	return fmt.Sprintf("o%d", uint64(o))
}

// VID is a version identity ("version id" in the paper). A VID is a
// *specific* reference: it pins one immutable version of one object.
// VIDs are allocated monotonically per store, so for versions of the same
// object, VID order is also temporal creation order — an invariant the
// version graph relies on and tests enforce.
type VID uint64

// NilVID is the zero VID; it never identifies a version.
const NilVID VID = 0

// IsNil reports whether v is the nil version id.
func (v VID) IsNil() bool { return v == NilVID }

// String renders the vid in the paper's notation, e.g. "v7".
func (v VID) String() string {
	if v.IsNil() {
		return "v·nil"
	}
	return fmt.Sprintf("v%d", uint64(v))
}

// TypeID identifies a registered persistent type in the catalog.
type TypeID uint32

// NilType is the zero TypeID.
const NilType TypeID = 0

// String implements fmt.Stringer.
func (t TypeID) String() string { return fmt.Sprintf("t%d", uint32(t)) }

// PageID addresses a fixed-size page in the store's page file. Page 0 is
// the superblock.
type PageID uint32

// NilPage is the invalid page id (the superblock page is never a valid
// record page target, so 0 doubles as "nil" for record addressing).
const NilPage PageID = 0

// String implements fmt.Stringer.
func (p PageID) String() string { return fmt.Sprintf("p%d", uint32(p)) }

// RID is a record id: the physical address (page, slot) of a record in
// the slotted-page heap.
type RID struct {
	Page PageID
	Slot uint16
}

// NilRID is the invalid record address.
var NilRID = RID{}

// IsNil reports whether r is the nil record id.
func (r RID) IsNil() bool { return r.Page == NilPage }

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("r%d.%d", uint32(r.Page), r.Slot) }

// Pack encodes the RID into 6 bytes (4-byte page, 2-byte slot).
func (r RID) Pack() [6]byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.Page))
	binary.BigEndian.PutUint16(b[4:6], r.Slot)
	return b
}

// UnpackRID decodes a RID previously encoded with Pack. It panics if b is
// shorter than 6 bytes; callers own framing.
func UnpackRID(b []byte) RID {
	return RID{
		Page: PageID(binary.BigEndian.Uint32(b[0:4])),
		Slot: binary.BigEndian.Uint16(b[4:6]),
	}
}

// Less orders RIDs by (page, slot); used by tests and iteration order.
func (r RID) Less(other RID) bool {
	if r.Page != other.Page {
		return r.Page < other.Page
	}
	return r.Slot < other.Slot
}

// LSN is a log sequence number: the byte offset of a record in the WAL.
// LSNs increase strictly within one log file.
type LSN uint64

// NilLSN is the zero LSN, used as "no log record".
const NilLSN LSN = 0

// String implements fmt.Stringer.
func (l LSN) String() string { return fmt.Sprintf("lsn%d", uint64(l)) }

// TxID identifies a transaction for WAL attribution.
type TxID uint64

// NilTx is the zero transaction id.
const NilTx TxID = 0

// String implements fmt.Stringer.
func (t TxID) String() string { return fmt.Sprintf("tx%d", uint64(t)) }

// Stamp is a logical creation timestamp maintained by the engine. Stamps
// increase strictly across version creations in one store, providing the
// total temporal order the paper requires of versions ("versions of an
// object should be ordered temporally according to their creation time").
// A logical clock (not wall time) keeps the order total and deterministic.
type Stamp uint64

// NilStamp is the zero Stamp.
const NilStamp Stamp = 0

// String implements fmt.Stringer.
func (s Stamp) String() string { return fmt.Sprintf("@%d", uint64(s)) }
