package derefcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetMissThenHit(t *testing.T) {
	c := New(1<<20, 4, 8)
	if _, _, ok := c.Get(7, 0, 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, 0, 1, 42, []byte("hello"))
	vid, content, ok := c.Get(7, 0, 1)
	if !ok || vid != 42 || !bytes.Equal(content, []byte("hello")) {
		t.Fatalf("got (%d, %q, %v), want (42, hello, true)", vid, content, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss 1 entry", st)
	}
	h, m := c.ShardStats(0)
	if h != 1 || m != 1 {
		t.Fatalf("shard stats (%d,%d), want (1,1)", h, m)
	}
}

func TestEpochTagMismatchNeverServes(t *testing.T) {
	c := New(1<<20, 1, 8)
	c.Put(7, 0, 5, 42, []byte("v5"))

	// Newer reader epoch on the same shard: entry is provably stale,
	// must miss AND be dropped.
	if _, _, ok := c.Get(7, 0, 6); ok {
		t.Fatal("served entry tagged with an older epoch")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entry not dropped: %+v", st)
	}

	// Older reader epoch: must miss but must NOT evict the fresh entry.
	c.Put(7, 0, 5, 42, []byte("v5"))
	if _, _, ok := c.Get(7, 0, 4); ok {
		t.Fatal("served entry tagged with a newer epoch")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatal("older-epoch probe evicted a fresh entry")
	}

	// Different shard slot, same epoch value: must miss, must not evict.
	if _, _, ok := c.Get(7, 1, 5); ok {
		t.Fatal("served entry tagged with a different shard")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatal("cross-shard probe evicted an entry")
	}

	// Exact tag still hits.
	if _, _, ok := c.Get(7, 0, 5); !ok {
		t.Fatal("exact (shard, epoch) probe missed")
	}
}

func TestPutReplacesEntry(t *testing.T) {
	c := New(1<<20, 1, 8)
	c.Put(7, 0, 5, 42, []byte("old"))
	c.Put(7, 0, 6, 43, []byte("newer"))
	vid, content, ok := c.Get(7, 0, 6)
	if !ok || vid != 43 || string(content) != "newer" {
		t.Fatalf("got (%d, %q, %v) after replace", vid, content, ok)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("replace left %d entries", st.Entries)
	}
	want := int64(len("newer")) + entryOverhead
	if st.Bytes != want {
		t.Fatalf("bytes %d after replace, want %d", st.Bytes, want)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// One bucket with room for ~4 entries of 100 bytes + overhead.
	per := int64(4 * (100 + entryOverhead))
	c := New(per, 1, 8)
	payload := make([]byte, 100)
	for i := 0; i < 32; i++ {
		c.Put(uint64(i), 0, 1, uint64(i), payload)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 8x overcommit")
	}
	if st.Bytes > per {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, per)
	}
	if st.Entries == 0 || st.Entries > 4 {
		t.Fatalf("entries %d after pressure, want 1..4", st.Entries)
	}
	// Most recent insert survives, oldest is gone.
	if _, _, ok := c.Get(31, 0, 1); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, _, ok := c.Get(0, 0, 1); ok {
		t.Fatal("oldest entry survived 8x overcommit")
	}
}

func TestLRUTouchOrder(t *testing.T) {
	per := int64(2 * (10 + entryOverhead))
	c := New(per, 1, 8)
	c.Put(1, 0, 1, 1, make([]byte, 10))
	c.Put(2, 0, 1, 2, make([]byte, 10))
	// Touch 1 so 2 becomes the LRU victim.
	if _, _, ok := c.Get(1, 0, 1); !ok {
		t.Fatal("expected hit on 1")
	}
	c.Put(3, 0, 1, 3, make([]byte, 10))
	if _, _, ok := c.Get(1, 0, 1); !ok {
		t.Fatal("recently touched entry was evicted")
	}
	if _, _, ok := c.Get(2, 0, 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
}

func TestOversizedContentNotCached(t *testing.T) {
	c := New(256, 1, 8)
	c.Put(1, 0, 1, 1, make([]byte, 1024))
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized content was cached: %+v", st)
	}
}

func TestGetCopiesOut(t *testing.T) {
	c := New(1<<20, 1, 8)
	c.Put(1, 0, 1, 1, []byte("abc"))
	_, content, ok := c.Get(1, 0, 1)
	if !ok {
		t.Fatal("miss")
	}
	content[0] = 'X'
	_, again, _ := c.Get(1, 0, 1)
	if string(again) != "abc" {
		t.Fatal("caller mutation leaked into cache-owned bytes")
	}
}

func TestReset(t *testing.T) {
	c := New(1<<20, 4, 8)
	for i := 0; i < 16; i++ {
		c.Put(uint64(i), 0, 1, uint64(i), []byte("x"))
	}
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("reset left %+v", st)
	}
	if _, _, ok := c.Get(3, 0, 1); ok {
		t.Fatal("hit after reset")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64<<10, 8, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				o := uint64(i % 97)
				if i%3 == 0 {
					c.Put(o, w%4, uint64(i/97+1), o, []byte(fmt.Sprintf("w%d-%d", w, i)))
				} else {
					c.Get(o, w%4, uint64(i/97+1))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 {
		t.Fatalf("negative byte accounting: %+v", st)
	}
}
