// Package derefcache is the read-side dereference cache: a sharded,
// byte-bounded LRU mapping an object id to its latest version id and
// fully materialised content, sitting in front of the buffer pool so a
// hot Deref/latest-version read skips the header probe, version-record
// decode, heap read and delta walk entirely.
//
// The design is the materialisation cache's (matcache) epoch-tagging
// model applied to the latest-version lookup, which — unlike a
// (oid, vid) materialisation — is mutable: an update changes which
// version is latest. Correctness still does not rely on invalidation.
// Every entry is tagged with the (storage shard, commit epoch) it was
// read at, and a lookup only hits when the reader's own pinned
// (shard, epoch) pair matches exactly. A commit advances the shard's
// epoch, making every entry cached under the previous epoch
// unreachable — a stale latest can never be served, it can only age
// out. The shard slot in the tag covers the reshard corner where an
// object moves to a different physical shard whose independent epoch
// counter happens to coincide with the old one, so a live reshard
// never serves stale placement.
//
// The cache is safe for concurrent use. Get copies content out and Put
// copies content in, so callers can never alias cache-owned bytes.
package derefcache

import (
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the bookkeeping bytes charged per entry on
// top of its content.
const entryOverhead = 104

type entry struct {
	o          uint64
	shard      int
	epoch      uint64
	vid        uint64
	content    []byte
	prev, next *entry // LRU list; next is more recent
}

// bucket is one independently locked LRU segment.
type bucket struct {
	mu    sync.Mutex
	m     map[uint64]*entry
	head  *entry // least recently used
	tail  *entry // most recently used
	bytes int64
}

// Cache is a sharded LRU of latest-version dereference results.
type Cache struct {
	buckets []*bucket
	capPer  int64 // byte budget per bucket

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	bytes     atomic.Int64

	// Per-storage-shard hit/miss counters, indexed by shard slot, for
	// the {shard="i"} metric series. Probes beyond the provisioned
	// range only land in the aggregate counters.
	shardHits   []atomic.Uint64
	shardMisses []atomic.Uint64
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Bytes     int64
	Entries   int
}

// New builds a cache bounded by capacity bytes spread over nBuckets
// independently locked segments, tracking per-shard hit rates for up to
// maxShards storage shards. nBuckets is rounded up to a power of two;
// values < 1 become 1.
func New(capacity int64, nBuckets, maxShards int) *Cache {
	if nBuckets < 1 {
		nBuckets = 1
	}
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	if capacity < 0 {
		capacity = 0
	}
	if maxShards < 0 {
		maxShards = 0
	}
	c := &Cache{
		buckets:     make([]*bucket, n),
		capPer:      capacity / int64(n),
		shardHits:   make([]atomic.Uint64, maxShards),
		shardMisses: make([]atomic.Uint64, maxShards),
	}
	for i := range c.buckets {
		c.buckets[i] = &bucket{m: make(map[uint64]*entry)}
	}
	return c
}

func (c *Cache) bucketOf(o uint64) *bucket {
	// fnv-1a over the id; buckets is a power of two.
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (o >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return c.buckets[h&uint64(len(c.buckets)-1)]
}

func (c *Cache) hit(shard int) {
	c.hits.Add(1)
	if shard >= 0 && shard < len(c.shardHits) {
		c.shardHits[shard].Add(1)
	}
}

func (c *Cache) miss(shard int) {
	c.misses.Add(1)
	if shard >= 0 && shard < len(c.shardMisses) {
		c.shardMisses[shard].Add(1)
	}
}

// Get returns the latest vid and a copy of the content for o if an
// entry exists AND was stored at exactly the caller's (shard, epoch).
// An entry found under the same shard but an older epoch is provably
// stale (epochs only advance) and is deleted on the way out.
func (c *Cache) Get(o uint64, shard int, epoch uint64) (uint64, []byte, bool) {
	b := c.bucketOf(o)
	b.mu.Lock()
	e, ok := b.m[o]
	if !ok {
		b.mu.Unlock()
		c.miss(shard)
		return 0, nil, false
	}
	if e.shard != shard || e.epoch != epoch {
		// Drop only the provably stale: same shard, older epoch than the
		// probing reader's. A probe from a reader pinned at an OLDER
		// epoch, or from a different shard slot, must not evict a fresh
		// entry.
		if e.shard == shard && e.epoch < epoch {
			b.unlink(e)
			delete(b.m, o)
			b.bytes -= int64(len(e.content)) + entryOverhead
			b.mu.Unlock()
			c.bytes.Add(-(int64(len(e.content)) + entryOverhead))
			c.miss(shard)
			return 0, nil, false
		}
		b.mu.Unlock()
		c.miss(shard)
		return 0, nil, false
	}
	b.touch(e)
	out := make([]byte, len(e.content))
	copy(out, e.content)
	vid := e.vid
	b.mu.Unlock()
	c.hit(shard)
	return vid, out, true
}

// Put stores a copy of content as o's latest-version result tagged with
// (shard, epoch), evicting least-recently-used entries until the bucket
// fits its budget. Content larger than the per-bucket budget is not
// cached.
func (c *Cache) Put(o uint64, shard int, epoch uint64, vid uint64, content []byte) {
	cost := int64(len(content)) + entryOverhead
	if cost > c.capPer {
		return
	}
	b := c.bucketOf(o)
	cp := make([]byte, len(content))
	copy(cp, content)

	b.mu.Lock()
	var delta int64
	if old, ok := b.m[o]; ok {
		delta -= int64(len(old.content)) + entryOverhead
		b.bytes += delta
		old.shard, old.epoch, old.vid, old.content = shard, epoch, vid, cp
		b.bytes += cost
		delta += cost
		b.touch(old)
	} else {
		e := &entry{o: o, shard: shard, epoch: epoch, vid: vid, content: cp}
		b.m[o] = e
		b.append(e)
		b.bytes += cost
		delta += cost
	}
	var evicted int
	for b.bytes > c.capPer && b.head != nil {
		victim := b.head
		b.unlink(victim)
		delete(b.m, victim.o)
		freed := int64(len(victim.content)) + entryOverhead
		b.bytes -= freed
		delta -= freed
		evicted++
	}
	b.mu.Unlock()
	c.bytes.Add(delta)
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Reset drops every entry.
func (c *Cache) Reset() {
	for _, b := range c.buckets {
		b.mu.Lock()
		freed := b.bytes
		b.m = make(map[uint64]*entry)
		b.head, b.tail = nil, nil
		b.bytes = 0
		b.mu.Unlock()
		c.bytes.Add(-freed)
	}
}

// Stats snapshots the aggregate cache counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bytes:     c.bytes.Load(),
	}
	for _, b := range c.buckets {
		b.mu.Lock()
		s.Entries += len(b.m)
		b.mu.Unlock()
	}
	return s
}

// ShardStats reads one storage shard's hit/miss counters (zeros when
// the slot is beyond the tracked range).
func (c *Cache) ShardStats(shard int) (hits, misses uint64) {
	if shard < 0 || shard >= len(c.shardHits) {
		return 0, 0
	}
	return c.shardHits[shard].Load(), c.shardMisses[shard].Load()
}

// --- intrusive LRU list (bucket.mu held) ---

func (b *bucket) append(e *entry) {
	e.prev, e.next = b.tail, nil
	if b.tail != nil {
		b.tail.next = e
	} else {
		b.head = e
	}
	b.tail = e
}

func (b *bucket) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (b *bucket) touch(e *entry) {
	if b.tail == e {
		return
	}
	b.unlink(e)
	b.append(e)
}
