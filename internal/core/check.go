package core

import (
	"encoding/binary"
	"fmt"

	"ode/internal/oid"
)

// CheckObject validates every structural invariant the paper's model
// implies for one object's version set:
//
//  1. the temporal chain (tprev/tnext) is a doubly-linked total order
//     over exactly the live versions, with strictly increasing stamps;
//  2. the object header's latest is the temporal maximum;
//  3. the derived-from relation is acyclic, with every dprev pointing at
//     a live version of the same object (a forest rooted at versions
//     with nil dprev);
//  4. the temporal index and vid index agree with the version records;
//  5. delta/shared payloads have a live parent and consistent depth.
//
// It is used by property tests, figure tests, and odedump --check.
func (tx *shardTx) CheckObject(o oid.OID) error {
	h, err := tx.loadHeader(o)
	if err != nil {
		return err
	}
	recs := map[oid.VID]verRec{}
	err = tx.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		v := oid.VID(binary.BigEndian.Uint64(k[8:16]))
		rec, err := decodeVerRec(val)
		if err != nil {
			return false, err
		}
		recs[v] = rec
		return true, nil
	})
	if err != nil {
		return err
	}
	if uint64(len(recs)) != h.count {
		return fmt.Errorf("%v: header count %d but %d version records", o, h.count, len(recs))
	}
	if _, ok := recs[h.latest]; !ok {
		return fmt.Errorf("%v: latest %v is not a live version", o, h.latest)
	}

	// (1) temporal chain.
	cur := h.firstVID
	visited := map[oid.VID]bool{}
	var prev oid.VID
	var prevStamp oid.Stamp
	for !cur.IsNil() {
		rec, ok := recs[cur]
		if !ok {
			return fmt.Errorf("%v: temporal chain reaches dead version %v", o, cur)
		}
		if visited[cur] {
			return fmt.Errorf("%v: temporal chain cycles at %v", o, cur)
		}
		visited[cur] = true
		if rec.tprev != prev {
			return fmt.Errorf("%v: %v.tprev = %v, want %v", o, cur, rec.tprev, prev)
		}
		if !prev.IsNil() && rec.stamp <= prevStamp {
			return fmt.Errorf("%v: stamps not strictly increasing at %v", o, cur)
		}
		prev, prevStamp = cur, rec.stamp
		cur = rec.tnext
	}
	if len(visited) != len(recs) {
		return fmt.Errorf("%v: temporal chain covers %d of %d versions", o, len(visited), len(recs))
	}
	// (2) latest is the temporal maximum (the chain's tail).
	if prev != h.latest {
		return fmt.Errorf("%v: chain tail %v but latest %v", o, prev, h.latest)
	}

	// (3) derived-from acyclicity and liveness.
	for v, rec := range recs {
		if rec.dprev.IsNil() {
			continue
		}
		if _, ok := recs[rec.dprev]; !ok {
			return fmt.Errorf("%v: %v derived from dead version %v", o, v, rec.dprev)
		}
		// Walk to the root; a cycle would exceed len(recs) hops.
		cur, hops := v, 0
		for !cur.IsNil() {
			if hops > len(recs) {
				return fmt.Errorf("%v: derived-from cycle through %v", o, v)
			}
			cur = recs[cur].dprev
			hops++
		}
	}

	// (4) index agreement.
	for v, rec := range recs {
		raw, ok, err := tx.tempIdx.Get(tempKey(o, rec.stamp))
		if err != nil {
			return err
		}
		if !ok || oid.VID(binary.BigEndian.Uint64(raw)) != v {
			return fmt.Errorf("%v: temporal index missing/wrong for %v", o, v)
		}
		// The vid→oid entry lives on the shard the vid's VALUE routes to,
		// which after a migration need not be this object's shard.
		owner, err := tx.rt.Owner(v)
		if err != nil || owner != o {
			return fmt.Errorf("%v: vid index wrong for %v: %v %v", o, v, owner, err)
		}
	}

	// (5) payload sanity.
	for v, rec := range recs {
		switch rec.kind {
		case payFull:
			if rec.payload.IsNil() {
				return fmt.Errorf("%v: %v full payload with nil RID", o, v)
			}
			if rec.depth != 0 {
				return fmt.Errorf("%v: %v full payload with depth %d", o, v, rec.depth)
			}
		case paySame:
			if !rec.payload.IsNil() {
				return fmt.Errorf("%v: %v shared payload with a record", o, v)
			}
			if rec.dprev.IsNil() {
				return fmt.Errorf("%v: %v shared payload with no parent", o, v)
			}
			if parent := recs[rec.dprev]; rec.depth != parent.depth+1 {
				return fmt.Errorf("%v: %v depth %d but parent depth %d", o, v, rec.depth, parent.depth)
			}
		case payDelta:
			if rec.payload.IsNil() || rec.dprev.IsNil() {
				return fmt.Errorf("%v: %v delta payload missing record or parent", o, v)
			}
			parent := recs[rec.dprev]
			if rec.depth != parent.depth+1 {
				return fmt.Errorf("%v: %v depth %d but parent depth %d", o, v, rec.depth, parent.depth)
			}
		default:
			return fmt.Errorf("%v: %v unknown payload kind %d", o, v, rec.kind)
		}
		// Content must materialise.
		content, err := tx.readContent(o, rec)
		if err != nil {
			return fmt.Errorf("%v: %v unreadable: %w", o, v, err)
		}
		if uint64(len(content)) != rec.size {
			return fmt.Errorf("%v: %v size field %d but content %d", o, v, rec.size, len(content))
		}
	}
	return nil
}

// CheckAll validates every object in the database plus the structural
// health of each index tree.
func (tx *shardTx) CheckAll() error {
	for _, t := range []interface{ Check() error }{
		tx.objTable, tx.verIdx, tx.tempIdx, tx.catalog, tx.extent, tx.config, tx.vidIdx,
	} {
		if err := t.Check(); err != nil {
			return err
		}
	}
	var objs []oid.OID
	err := tx.objTable.Ascend(nil, nil, func(k, _ []byte) (bool, error) {
		objs = append(objs, oid.OID(binary.BigEndian.Uint64(k)))
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, o := range objs {
		if err := tx.CheckObject(o); err != nil {
			return err
		}
	}
	return nil
}

// checkVidIdxEntries validates this shard's vid→oid entries against the
// routed object state: every entry's object must exist (on whichever
// shard the map places it) and carry that version. CheckObject proves
// every live version HAS an entry; this sweep proves no entry outlives
// its version — the direction a mis-migrated reverse index fails in.
func (tx *shardTx) checkVidIdxEntries() error {
	return tx.vidIdx.Ascend(nil, nil, func(k, val []byte) (bool, error) {
		v := oid.VID(binary.BigEndian.Uint64(k))
		o := oid.OID(binary.BigEndian.Uint64(val))
		ob, err := tx.rt.shardR(tx.rt.byO(o))
		if err != nil {
			return false, err
		}
		if _, err := ob.loadVer(o, v); err != nil {
			return false, fmt.Errorf("shard %d vid index: %v → %v: %w", tx.s, v, o, err)
		}
		return true, nil
	})
}
