package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ode/internal/codec"
	"ode/internal/oid"
)

// Version annotations: arbitrary key→value strings attached to a single
// version. The paper's related work (§7) describes Klahold et al.'s
// version environments, which "partition versions according to specific
// properties (valid, invalid, in-progress, alternative, effective,
// etc.)" — annotations are the primitive such partitioning policies
// need. Annotations are per-version (not per-object): they describe a
// state of the design, so they must not travel when the object id
// re-binds.
//
// Storage: one record per annotated version in the config tree
// ("a:" + oid + vid → encoded map), spilled to the heap via the same
// indirection as large configurations. Deleting a version or object
// removes its annotations.

const annPrefix = "a:"

func annKey(o oid.OID, v oid.VID) []byte {
	b := make([]byte, 2, 18)
	copy(b, annPrefix)
	b = binary.BigEndian.AppendUint64(b, uint64(o))
	return binary.BigEndian.AppendUint64(b, uint64(v))
}

func annObjPrefix(o oid.OID) []byte {
	b := make([]byte, 2, 10)
	copy(b, annPrefix)
	return binary.BigEndian.AppendUint64(b, uint64(o))
}

func encodeAnnotations(m map[string]string) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := codec.NewWriter(16 + 16*len(m))
	w.UVarint(uint64(len(keys)))
	for _, k := range keys {
		w.String32(k)
		w.String32(m[k])
	}
	return w.Bytes()
}

func decodeAnnotations(raw []byte) (map[string]string, error) {
	r := codec.NewReader(raw)
	n := int(r.UVarint())
	out := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.String32()
		v := r.String32()
		out[k] = v
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: annotations: %v", ErrCorrupt, r.Err())
	}
	return out, nil
}

// Annotate sets (or with value=="" clears) one annotation on a version.
func (tx *shardTx) Annotate(o oid.OID, v oid.VID, key, value string) error {
	if key == "" {
		return fmt.Errorf("ode: empty annotation key")
	}
	if _, err := tx.loadVer(o, v); err != nil {
		return err
	}
	m, _, err := tx.Annotations(o, v)
	if err != nil {
		return err
	}
	if m == nil {
		m = map[string]string{}
	}
	if value == "" {
		delete(m, key)
	} else {
		m[key] = value
	}
	k := annKey(o, v)
	if len(m) == 0 {
		if err := tx.deleteConfigValue(k); err != nil {
			return err
		}
	} else if err := tx.putConfigValue(k, encodeAnnotations(m)); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// Annotations returns a version's annotation map (nil, false when the
// version has none).
func (tx *shardTx) Annotations(o oid.OID, v oid.VID) (map[string]string, bool, error) {
	raw, ok, err := tx.getConfigValue(annKey(o, v))
	if err != nil || !ok {
		return nil, false, err
	}
	m, err := decodeAnnotations(raw)
	return m, err == nil, err
}

// Annotation returns one annotation value (ok=false when unset).
func (tx *shardTx) Annotation(o oid.OID, v oid.VID, key string) (string, bool, error) {
	m, ok, err := tx.Annotations(o, v)
	if err != nil || !ok {
		return "", false, err
	}
	val, present := m[key]
	return val, present, nil
}

// VersionsWhere returns the object's versions whose annotation key has
// the given value, in temporal order — the partitioning query the
// Klahold model builds its version environments from.
func (tx *shardTx) VersionsWhere(o oid.OID, key, value string) ([]oid.VID, error) {
	vs, err := tx.Versions(o)
	if err != nil {
		return nil, err
	}
	var out []oid.VID
	for _, v := range vs {
		got, ok, err := tx.Annotation(o, v, key)
		if err != nil {
			return nil, err
		}
		if ok && got == value {
			out = append(out, v)
		}
	}
	return out, nil
}

// dropAnnotations removes all annotations of one version (on version
// deletion).
func (tx *shardTx) dropAnnotations(o oid.OID, v oid.VID) error {
	return tx.deleteConfigValue(annKey(o, v))
}

// dropAllAnnotations removes every annotation of an object (on object
// deletion).
func (tx *shardTx) dropAllAnnotations(o oid.OID) error {
	var keys [][]byte
	err := tx.config.AscendPrefix(annObjPrefix(o), func(k, _ []byte) (bool, error) {
		keys = append(keys, append([]byte(nil), k...))
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := tx.deleteConfigValue(k); err != nil {
			return err
		}
	}
	return nil
}
