package core

// Error-path coverage: every engine operation must fail cleanly (typed
// errors, no corruption) on missing objects, missing versions, and
// misuse.

import (
	"errors"
	"testing"

	"ode/internal/oid"
)

func TestOpsOnMissingObject(t *testing.T) {
	e := newEngine(t, Options{})
	ghost := oid.OID(4242)
	w(t, e, func(tx *Tx) error {
		if _, _, err := tx.ReadLatest(ghost); !errors.Is(err, ErrNoObject) {
			t.Fatalf("ReadLatest: %v", err)
		}
		if _, err := tx.NewVersion(ghost); !errors.Is(err, ErrNoObject) {
			t.Fatalf("NewVersion: %v", err)
		}
		if err := tx.DeleteObject(ghost); !errors.Is(err, ErrNoObject) {
			t.Fatalf("DeleteObject: %v", err)
		}
		if err := tx.DeleteVersion(ghost, oid.VID(1)); !errors.Is(err, ErrNoObject) {
			t.Fatalf("DeleteVersion: %v", err)
		}
		if _, err := tx.Latest(ghost); !errors.Is(err, ErrNoObject) {
			t.Fatalf("Latest: %v", err)
		}
		if _, err := tx.Render(ghost); !errors.Is(err, ErrNoObject) {
			t.Fatalf("Render: %v", err)
		}
		if _, err := tx.Versions(ghost); err != nil {
			// Versions on a missing object is an empty scan, not an error.
			t.Fatalf("Versions: %v", err)
		}
		return nil
	})
}

func TestOpsOnMissingVersion(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	w(t, e, func(tx *Tx) error {
		var err error
		o, _, err = tx.Create(ty, []byte("x"))
		return err
	})
	ghost := oid.VID(777)
	w(t, e, func(tx *Tx) error {
		if _, err := tx.ReadVersion(o, ghost); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("ReadVersion: %v", err)
		}
		if err := tx.UpdateVersion(o, ghost, []byte("y")); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("UpdateVersion: %v", err)
		}
		if _, err := tx.NewVersionFrom(o, ghost); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("NewVersionFrom: %v", err)
		}
		// DeleteVersion on a multi-version object with a ghost vid.
		if _, err := tx.NewVersion(o); err != nil {
			return err
		}
		if err := tx.DeleteVersion(o, ghost); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("DeleteVersion: %v", err)
		}
		if _, err := tx.Dprev(o, ghost); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("Dprev: %v", err)
		}
		if _, err := tx.Info(o, ghost); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("Info: %v", err)
		}
		return nil
	})
	// Engine state undamaged by all the failures.
	w(t, e, func(tx *Tx) error { return tx.CheckAll() })
}

func TestConfigErrorPaths(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	w(t, e, func(tx *Tx) error {
		var err error
		o, _, err = tx.Create(ty, []byte("x"))
		return err
	})
	w(t, e, func(tx *Tx) error {
		if err := tx.SaveConfig("", nil); err == nil {
			t.Fatal("empty config name accepted")
		}
		if err := tx.SetContext("", nil); err == nil {
			t.Fatal("empty context name accepted")
		}
		if _, err := tx.ResolveConfig("missing"); err == nil {
			t.Fatal("missing config resolved")
		}
		if _, err := tx.ResolveInContext("missing", o); err == nil {
			t.Fatal("missing context resolved")
		}
		// Config naming a dead object fails validation.
		if err := tx.SaveConfig("bad", []Binding{{Slot: "s", Obj: oid.OID(999)}}); !errors.Is(err, ErrNoObject) {
			t.Fatalf("dead dynamic binding: %v", err)
		}
		if err := tx.SetContext("bad", map[oid.OID]oid.VID{o: oid.VID(999)}); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("dead context pin: %v", err)
		}
		// Deleting unknown config/context is a no-op, not an error.
		if err := tx.DeleteConfig("never-existed"); err != nil {
			t.Fatalf("DeleteConfig: %v", err)
		}
		if err := tx.DeleteContext("never-existed"); err != nil {
			t.Fatalf("DeleteContext: %v", err)
		}
		return nil
	})
}

func TestConfigResolutionAfterComponentDeletion(t *testing.T) {
	// A dynamic binding whose object is later deleted must fail to
	// resolve with a clear error (dangling reference detection).
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	w(t, e, func(tx *Tx) error {
		var err error
		o, _, err = tx.Create(ty, []byte("x"))
		if err != nil {
			return err
		}
		return tx.SaveConfig("cfg", []Binding{{Slot: "s", Obj: o}})
	})
	w(t, e, func(tx *Tx) error { return tx.DeleteObject(o) })
	w(t, e, func(tx *Tx) error {
		if _, err := tx.ResolveConfig("cfg"); !errors.Is(err, ErrNoObject) {
			t.Fatalf("dangling config resolve: %v", err)
		}
		return nil
	})
}

func TestEmptyTypeNameRejected(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.RegisterType(""); err == nil {
		t.Fatal("empty type name accepted")
	}
}

func TestAsOfAfterDeletions(t *testing.T) {
	// AsOf must skip deleted versions: after pruning the middle of a
	// history, an as-of query at the pruned stamp returns the nearest
	// surviving predecessor.
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var vids []oid.VID
	var stamps []oid.Stamp
	w(t, e, func(tx *Tx) error {
		var err error
		var v oid.VID
		o, v, err = tx.Create(ty, []byte("s"))
		if err != nil {
			return err
		}
		vids = append(vids, v)
		for i := 0; i < 4; i++ {
			v, err = tx.NewVersion(o)
			if err != nil {
				return err
			}
			vids = append(vids, v)
		}
		for _, v := range vids {
			info, err := tx.Info(o, v)
			if err != nil {
				return err
			}
			stamps = append(stamps, info.Stamp)
		}
		return nil
	})
	// Delete the middle version.
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, vids[2]) })
	w(t, e, func(tx *Tx) error {
		got, ok, err := tx.AsOf(o, stamps[2])
		if err != nil || !ok {
			t.Fatalf("AsOf after deletion: %v %v", ok, err)
		}
		if got != vids[1] {
			t.Fatalf("AsOf(%v) = %v, want predecessor %v", stamps[2], got, vids[1])
		}
		// The walk-based variant agrees.
		walk, ok, err := tx.AsOfWalk(o, stamps[2])
		if err != nil || !ok || walk != got {
			t.Fatalf("AsOfWalk disagrees: %v %v %v", walk, ok, err)
		}
		return nil
	})
}

func TestIndexOnMissingNameIsCreated(t *testing.T) {
	e := newEngine(t, Options{})
	w(t, e, func(tx *Tx) error {
		// Reading from a never-written index creates an empty tree.
		if _, ok, err := tx.IndexGet("fresh", []byte("k")); err != nil || ok {
			t.Fatalf("fresh index get: %v %v", ok, err)
		}
		if err := tx.IndexPut("fresh", []byte("k"), []byte("v")); err != nil {
			return err
		}
		v, ok, err := tx.IndexGet("fresh", []byte("k"))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("index roundtrip: %q %v %v", v, ok, err)
		}
		names, err := tx.IndexNames()
		if err != nil || len(names) != 1 || names[0] != "fresh" {
			t.Fatalf("index names: %v %v", names, err)
		}
		return tx.IndexCheck("fresh")
	})
}
