package core

import (
	"encoding/binary"

	"ode/internal/btree"
	"ode/internal/oid"
)

// Named secondary indexes. O++ supports indexed access to extents; this
// reproduction provides named B+trees whose roots are persisted in the
// catalog tree, so higher layers (ode.Index) can maintain content
// indexes over latest versions. The engine only provides the storage
// primitive; maintenance policy lives above, driven by triggers — the
// same mechanism/policy split the paper applies to versioning itself.

const idxRootPrefix = "r:" // catalog key: r:<name> → u32 root page

func idxRootKey(name string) []byte { return append([]byte(idxRootPrefix), name...) }

// indexTree returns the named index's tree, creating it on first use.
// Trees are cached per engine; the cache is dropped by reopenTrees after
// aborts. The cache mutex makes concurrent readers safe; tree creation
// (a mutation) only happens inside write transactions.
func (e *Engine) indexTree(name string) (*btree.Tree, error) {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if t, ok := e.indexes[name]; ok {
		return t, nil
	}
	raw, ok, err := e.catalog.Get(idxRootKey(name))
	if err != nil {
		return nil, err
	}
	var t *btree.Tree
	if ok {
		t = btree.Open(e.st, oid.PageID(binary.BigEndian.Uint32(raw)))
	} else {
		t, err = btree.Create(e.st)
		if err != nil {
			return nil, err
		}
		if err := e.putIndexRoot(name, t.Root()); err != nil {
			return nil, err
		}
	}
	e.indexes[name] = t
	return t, nil
}

func (e *Engine) putIndexRoot(name string, root oid.PageID) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(root))
	if err := e.catalog.Put(idxRootKey(name), b[:]); err != nil {
		return err
	}
	e.saveRoots()
	return nil
}

// saveIndexRoot persists a root movement after a mutation.
func (e *Engine) saveIndexRoot(name string, t *btree.Tree) error {
	raw, ok, err := e.catalog.Get(idxRootKey(name))
	if err != nil {
		return err
	}
	if ok && oid.PageID(binary.BigEndian.Uint32(raw)) == t.Root() {
		return nil
	}
	return e.putIndexRoot(name, t.Root())
}

// IndexPut inserts or replaces an entry in a named index.
func (e *Engine) IndexPut(name string, key, val []byte) error {
	t, err := e.indexTree(name)
	if err != nil {
		return err
	}
	if err := t.Put(key, val); err != nil {
		return err
	}
	return e.saveIndexRoot(name, t)
}

// IndexGet reads one entry from a named index.
func (e *Engine) IndexGet(name string, key []byte) ([]byte, bool, error) {
	t, err := e.indexTree(name)
	if err != nil {
		return nil, false, err
	}
	return t.Get(key)
}

// IndexDelete removes an entry, reporting whether it was present.
func (e *Engine) IndexDelete(name string, key []byte) (bool, error) {
	t, err := e.indexTree(name)
	if err != nil {
		return false, err
	}
	ok, err := t.Delete(key)
	if err != nil {
		return false, err
	}
	return ok, e.saveIndexRoot(name, t)
}

// IndexAscend iterates entries in [from, to) order (nil bounds are
// open).
func (e *Engine) IndexAscend(name string, from, to []byte, fn func(k, v []byte) (bool, error)) error {
	t, err := e.indexTree(name)
	if err != nil {
		return err
	}
	return t.Ascend(from, to, fn)
}

// IndexAscendPrefix iterates all entries whose key has the prefix.
func (e *Engine) IndexAscendPrefix(name string, prefix []byte, fn func(k, v []byte) (bool, error)) error {
	t, err := e.indexTree(name)
	if err != nil {
		return err
	}
	return t.AscendPrefix(prefix, fn)
}

// IndexDrop deletes a named index entirely, freeing its pages.
func (e *Engine) IndexDrop(name string) error {
	t, err := e.indexTree(name)
	if err != nil {
		return err
	}
	// Drain the tree so its pages return to the free list, then free the
	// remaining root page by clearing everything via deletes.
	var keys [][]byte
	if err := t.Ascend(nil, nil, func(k, _ []byte) (bool, error) {
		keys = append(keys, append([]byte(nil), k...))
		return true, nil
	}); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := t.Delete(k); err != nil {
			return err
		}
	}
	if err := e.st.Free(t.Root()); err != nil {
		return err
	}
	e.idxMu.Lock()
	delete(e.indexes, name)
	e.idxMu.Unlock()
	if _, err := e.catalog.Delete(idxRootKey(name)); err != nil {
		return err
	}
	e.saveRoots()
	return nil
}

// IndexNames lists the named indexes in order.
func (e *Engine) IndexNames() ([]string, error) {
	var out []string
	err := e.catalog.AscendPrefix([]byte(idxRootPrefix), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(idxRootPrefix):]))
		return true, nil
	})
	return out, err
}

// IndexLen counts the entries of a named index (O(n)).
func (e *Engine) IndexLen(name string) (int, error) {
	t, err := e.indexTree(name)
	if err != nil {
		return 0, err
	}
	return t.Len()
}

// IndexCheck validates the named index tree's structural invariants.
func (e *Engine) IndexCheck(name string) error {
	t, err := e.indexTree(name)
	if err != nil {
		return err
	}
	return t.Check()
}
