package core

import (
	"encoding/binary"

	"ode/internal/btree"
	"ode/internal/oid"
)

// Named secondary indexes. O++ supports indexed access to extents; this
// reproduction provides named B+trees whose roots are persisted in the
// catalog tree, so higher layers (ode.Index) can maintain content
// indexes over latest versions. The engine only provides the storage
// primitive; maintenance policy lives above, driven by triggers — the
// same mechanism/policy split the paper applies to versioning itself.

const idxRootPrefix = "r:" // catalog key: r:<name> → u32 root page

func idxRootKey(name string) []byte { return append([]byte(idxRootPrefix), name...) }

// indexTree returns the named index's tree, cached per transaction.
// With create=true (write paths) a missing index is created; with
// create=false a missing index yields (nil, nil) and the caller treats
// it as empty — read transactions must never mutate, and historically
// a read-path lookup of an unknown index silently created its tree.
func (tx *shardTx) indexTree(name string, create bool) (*btree.Tree, error) {
	if t, ok := tx.indexes[name]; ok {
		return t, nil
	}
	raw, ok, err := tx.catalog.Get(idxRootKey(name))
	if err != nil {
		return nil, err
	}
	var t *btree.Tree
	if ok {
		t = btree.Open(tx.st, oid.PageID(binary.BigEndian.Uint32(raw)))
	} else {
		if !create {
			return nil, nil
		}
		t, err = btree.Create(tx.st)
		if err != nil {
			return nil, err
		}
		if err := tx.putIndexRoot(name, t.Root()); err != nil {
			return nil, err
		}
	}
	tx.indexes[name] = t
	return t, nil
}

func (tx *shardTx) putIndexRoot(name string, root oid.PageID) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(root))
	if err := tx.catalog.Put(idxRootKey(name), b[:]); err != nil {
		return err
	}
	tx.saveRoots()
	tx.e.idxExist.Store(true)
	return nil
}

// saveIndexRoot persists a root movement after a mutation.
func (tx *shardTx) saveIndexRoot(name string, t *btree.Tree) error {
	raw, ok, err := tx.catalog.Get(idxRootKey(name))
	if err != nil {
		return err
	}
	if ok && oid.PageID(binary.BigEndian.Uint32(raw)) == t.Root() {
		return nil
	}
	return tx.putIndexRoot(name, t.Root())
}

// IndexPut inserts or replaces an entry in a named index, creating the
// index on first use.
func (tx *shardTx) IndexPut(name string, key, val []byte) error {
	t, err := tx.indexTree(name, true)
	if err != nil {
		return err
	}
	if err := t.Put(key, val); err != nil {
		return err
	}
	return tx.saveIndexRoot(name, t)
}

// IndexGet reads one entry from a named index. A missing index reads as
// empty.
func (tx *shardTx) IndexGet(name string, key []byte) ([]byte, bool, error) {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return nil, false, err
	}
	return t.Get(key)
}

// IndexDelete removes an entry, reporting whether it was present.
func (tx *shardTx) IndexDelete(name string, key []byte) (bool, error) {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return false, err
	}
	ok, err := t.Delete(key)
	if err != nil {
		return false, err
	}
	return ok, tx.saveIndexRoot(name, t)
}

// IndexAscend iterates entries in [from, to) order (nil bounds are
// open). A missing index iterates nothing.
func (tx *shardTx) IndexAscend(name string, from, to []byte, fn func(k, v []byte) (bool, error)) error {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return err
	}
	return t.Ascend(from, to, fn)
}

// IndexAscendPrefix iterates all entries whose key has the prefix.
func (tx *shardTx) IndexAscendPrefix(name string, prefix []byte, fn func(k, v []byte) (bool, error)) error {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return err
	}
	return t.AscendPrefix(prefix, fn)
}

// IndexDrop deletes a named index entirely, freeing its pages. Dropping
// an index that does not exist is a no-op.
func (tx *shardTx) IndexDrop(name string) error {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return err
	}
	// Drain the tree so its pages return to the free list, then free the
	// remaining root page by clearing everything via deletes.
	var keys [][]byte
	if err := t.Ascend(nil, nil, func(k, _ []byte) (bool, error) {
		keys = append(keys, append([]byte(nil), k...))
		return true, nil
	}); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := t.Delete(k); err != nil {
			return err
		}
	}
	if err := tx.st.Free(t.Root()); err != nil {
		return err
	}
	delete(tx.indexes, name)
	if _, err := tx.catalog.Delete(idxRootKey(name)); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// IndexNames lists the named indexes in order.
func (tx *shardTx) IndexNames() ([]string, error) {
	var out []string
	err := tx.catalog.AscendPrefix([]byte(idxRootPrefix), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(idxRootPrefix):]))
		return true, nil
	})
	return out, err
}

// IndexLen counts the entries of a named index (O(n)); a missing index
// has length 0.
func (tx *shardTx) IndexLen(name string) (int, error) {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return 0, err
	}
	return t.Len()
}

// IndexCheck validates the named index tree's structural invariants.
func (tx *shardTx) IndexCheck(name string) error {
	t, err := tx.indexTree(name, false)
	if err != nil || t == nil {
		return err
	}
	return t.Check()
}

// IndexNames is the self-transacting convenience form.
func (e *Engine) IndexNames() (out []string, err error) {
	err = e.Read(func(tx *Tx) error {
		out, err = tx.IndexNames()
		return err
	})
	return out, err
}

// IndexLen is the self-transacting convenience form.
func (e *Engine) IndexLen(name string) (n int, err error) {
	err = e.Read(func(tx *Tx) error {
		n, err = tx.IndexLen(name)
		return err
	})
	return n, err
}
