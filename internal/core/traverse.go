package core

import (
	"encoding/binary"

	"ode/internal/oid"
)

// VersionInfo is the public view of a version's metadata.
type VersionInfo struct {
	VID   oid.VID
	Stamp oid.Stamp
	Dprev oid.VID // derived-from parent
	Tprev oid.VID // temporal predecessor
	Tnext oid.VID // temporal successor
	Size  uint64  // content bytes
	// Delta reports whether the payload is stored dependently (delta or
	// shared) rather than in full.
	Delta bool
	// ChainDepth is the number of links to the nearest full payload.
	ChainDepth int
}

// Info returns a version's metadata.
func (tx *shardTx) Info(o oid.OID, v oid.VID) (VersionInfo, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return VersionInfo{}, err
	}
	return VersionInfo{
		VID:   v,
		Stamp: rec.stamp,
		Dprev: rec.dprev,
		Tprev: rec.tprev,
		Tnext: rec.tnext,
		Size:  rec.size,
		Delta: rec.kind != payFull,
		// ChainDepth counts materialisation links (deltas and shared
		// payloads) to the keyframe.
		ChainDepth: int(rec.depth),
	}, nil
}

// Dprev returns the version this version was derived from — the paper's
// Dprevious traversal. Nil for a root version.
func (tx *shardTx) Dprev(o oid.OID, v oid.VID) (oid.VID, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return oid.NilVID, err
	}
	return rec.dprev, nil
}

// Tprev returns the version temporally preceding v — the paper's
// Tprevious traversal. Nil for the object's oldest version.
func (tx *shardTx) Tprev(o oid.OID, v oid.VID) (oid.VID, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return oid.NilVID, err
	}
	return rec.tprev, nil
}

// Tnext returns the version temporally following v, nil for the latest.
func (tx *shardTx) Tnext(o oid.OID, v oid.VID) (oid.VID, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return oid.NilVID, err
	}
	return rec.tnext, nil
}

// DChildren returns the versions directly derived from v, in vid
// (creation) order. Multiple children are the paper's alternatives
// (§4.3): parallel versions derived from the same ancestor.
func (tx *shardTx) DChildren(o oid.OID, v oid.VID) ([]oid.VID, error) {
	var out []oid.VID
	err := tx.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		rec, err := decodeVerRec(val)
		if err != nil {
			return false, err
		}
		if rec.dprev == v {
			out = append(out, oid.VID(binary.BigEndian.Uint64(k[8:16])))
		}
		return true, nil
	})
	return out, err
}

// History returns the version history of v: the derivation chain from v
// back to the root version, in that order — §4.4's "v3, v1, and v0
// constitute a version history".
func (tx *shardTx) History(o oid.OID, v oid.VID) ([]oid.VID, error) {
	var out []oid.VID
	cur := v
	for !cur.IsNil() {
		out = append(out, cur)
		rec, err := tx.loadVer(o, cur)
		if err != nil {
			return nil, err
		}
		cur = rec.dprev
	}
	if m := tx.e.m; m != nil {
		// Chain-walk length: versions visited per History call. Growth
		// here is the signal that derivation chains are getting deep.
		m.DprevWalk.Observe(uint64(len(out)))
	}
	return out, nil
}

// Leaves returns the leaves of the derived-from tree in vid order. Each
// leaf is "the most up-to-date version of an alternative design" (§4.5);
// each root→leaf path is the evolution of one alternative.
func (tx *shardTx) Leaves(o oid.OID) ([]oid.VID, error) {
	hasChild := map[oid.VID]bool{}
	var all []oid.VID
	err := tx.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		rec, err := decodeVerRec(val)
		if err != nil {
			return false, err
		}
		all = append(all, oid.VID(binary.BigEndian.Uint64(k[8:16])))
		if !rec.dprev.IsNil() {
			hasChild[rec.dprev] = true
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	var leaves []oid.VID
	for _, v := range all {
		if !hasChild[v] {
			leaves = append(leaves, v)
		}
	}
	return leaves, nil
}

// Versions returns all live versions of the object in temporal
// (creation) order, oldest first.
func (tx *shardTx) Versions(o oid.OID) ([]oid.VID, error) {
	var out []oid.VID
	err := tx.tempIdx.AscendPrefix(objKey(o), func(_, val []byte) (bool, error) {
		out = append(out, oid.VID(binary.BigEndian.Uint64(val)))
		return true, nil
	})
	return out, err
}

// AsOf returns the version that was latest at the given stamp: the
// version with the largest creation stamp ≤ s. ok=false when the object
// had no version yet at s. This is the historical-database access the
// paper motivates with accounting/legal/financial applications (§2).
func (tx *shardTx) AsOf(o oid.OID, s oid.Stamp) (oid.VID, bool, error) {
	k, val, ok, err := tx.tempIdx.SeekLE(tempKey(o, s))
	if err != nil || !ok {
		return oid.NilVID, false, err
	}
	// SeekLE may land on a different object's key; verify the prefix.
	if binary.BigEndian.Uint64(k[0:8]) != uint64(o) {
		return oid.NilVID, false, nil
	}
	return oid.VID(binary.BigEndian.Uint64(val)), true, nil
}

// AsOfWalk answers the same question as AsOf by walking the temporal
// chain backwards from the latest version — the baseline E8 benchmarks
// against the indexed SeekLE.
func (tx *shardTx) AsOfWalk(o oid.OID, s oid.Stamp) (oid.VID, bool, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, false, err
	}
	visited := uint64(0)
	defer func() {
		if m := tx.e.m; m != nil {
			m.TprevWalk.Observe(visited)
		}
	}()
	cur := h.latest
	for !cur.IsNil() {
		rec, err := tx.loadVer(o, cur)
		if err != nil {
			return oid.NilVID, false, err
		}
		visited++
		if rec.stamp <= s {
			return cur, true, nil
		}
		cur = rec.tprev
	}
	return oid.NilVID, false, nil
}

// CurrentStamp returns the engine's logical clock value (the stamp of
// the most recent version-creating operation).
func (tx *shardTx) CurrentStamp() oid.Stamp {
	return oid.Stamp(tx.st.Counter(ctrStamp))
}
