// Package core implements the Ode versioned-object engine — the paper's
// primary contribution. It provides:
//
//   - persistent objects with identity (pnew → Create, oids);
//   - version orthogonality: any object can grow versions at any time
//     with no type-level declaration and no cost before the first
//     newversion (§2, §3);
//   - object ids as generic references that always dereference to the
//     latest version, and version ids as specific references (§3, §4);
//   - newversion with automatically maintained temporal (total order by
//     creation) and derived-from (tree) relationships (§2, §4);
//   - pdelete of a whole object or a single version with derivation-tree
//     splicing (§4.4);
//   - traversals Dprevious, Tprevious, Dchildren/alternatives, version
//     histories, and as-of temporal lookup (§4.5);
//   - delta storage of version payloads against their derived-from
//     parent (§2's SCCS/RCS deltas), switchable per database;
//   - configurations and contexts built over the primitives (§5);
//   - trigger events so notification/percolation policies can be built
//     outside the kernel (§1, §7).
//
// The engine is not locked internally: every public method must run
// inside the transaction manager's Write (mutating) or Read callback.
// The public ode package enforces that discipline.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ode/internal/btree"
	"ode/internal/codec"
	"ode/internal/oid"
	"ode/internal/storage"
	"ode/internal/trigger"
	"ode/internal/txn"
)

// Superblock counter slots (on-disk format).
const (
	ctrOID     = 0
	ctrVID     = 1
	ctrStamp   = 2
	ctrObjects = 3
	ctrVersion = 4
)

// Superblock root slots (on-disk format).
const (
	rootObjTable = 0
	rootVerIdx   = 1
	rootTempIdx  = 2
	rootCatalog  = 3
	rootExtent   = 4
	rootConfig   = 5
	rootVidIdx   = 6
)

// Errors surfaced by the engine (re-exported by the ode package).
var (
	ErrNoObject   = errors.New("ode: no such object")
	ErrNoVersion  = errors.New("ode: no such version")
	ErrNoType     = errors.New("ode: type not registered")
	ErrWrongType  = errors.New("ode: object has different type")
	ErrCorrupt    = errors.New("ode: corrupt database structure")
	ErrChainDepth = errors.New("ode: delta chain too deep")
)

// PayloadPolicy selects how version payloads are stored.
type PayloadPolicy uint8

const (
	// FullCopy stores every version's payload in full.
	FullCopy PayloadPolicy = iota
	// DeltaChain stores a version as a binary delta against its
	// derived-from parent, up to MaxChain links; every MaxChain-th
	// version is a full keyframe bounding materialisation cost.
	DeltaChain
)

// Options configures the engine.
type Options struct {
	Policy PayloadPolicy
	// MaxChain bounds delta chains under DeltaChain; 0 means
	// DefaultMaxChain.
	MaxChain int
}

// DefaultMaxChain is the delta-chain keyframe interval.
const DefaultMaxChain = 16

// Engine is the versioned-object store.
type Engine struct {
	mgr  *txn.Manager
	st   *storage.Store
	heap *storage.Heap
	bus  *trigger.Bus
	opts Options

	objTable *btree.Tree // oid → object header
	verIdx   *btree.Tree // oid+vid → version record
	tempIdx  *btree.Tree // oid+stamp → vid
	catalog  *btree.Tree // type names ↔ ids
	extent   *btree.Tree // typeid+oid → ()
	config   *btree.Tree // configurations and contexts
	vidIdx   *btree.Tree // vid → oid

	// indexes caches open named secondary-index trees (roots live in
	// the catalog tree); cleared whenever tree handles are rebound.
	// idxMu makes the cache safe for concurrent readers.
	idxMu   sync.Mutex
	indexes map[string]*btree.Tree
}

// New wires an engine over mgr, creating the persistent structures on
// first use.
func New(mgr *txn.Manager, opts Options) (*Engine, error) {
	if opts.MaxChain == 0 {
		opts.MaxChain = DefaultMaxChain
	}
	e := &Engine{
		mgr:  mgr,
		st:   mgr.Store(),
		heap: storage.NewHeap(mgr.Store()),
		bus:  trigger.NewBus(),
		opts: opts,
	}
	if e.st.Root(rootObjTable) == oid.NilPage {
		// Fresh database: create every structure in one transaction.
		err := mgr.Write(func() error {
			for _, slot := range []int{
				rootObjTable, rootVerIdx, rootTempIdx, rootCatalog,
				rootExtent, rootConfig, rootVidIdx,
			} {
				t, err := btree.Create(e.st)
				if err != nil {
					return err
				}
				e.st.SetRoot(slot, t.Root())
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: init structures: %w", err)
		}
	}
	e.reopenTrees()
	return e, nil
}

// reopenTrees rebinds tree handles to the roots currently recorded in
// the superblock. Called at startup and after any abort (an abort can
// roll a root change back, leaving handles stale).
func (e *Engine) reopenTrees() {
	e.objTable = btree.Open(e.st, e.st.Root(rootObjTable))
	e.verIdx = btree.Open(e.st, e.st.Root(rootVerIdx))
	e.tempIdx = btree.Open(e.st, e.st.Root(rootTempIdx))
	e.catalog = btree.Open(e.st, e.st.Root(rootCatalog))
	e.extent = btree.Open(e.st, e.st.Root(rootExtent))
	e.config = btree.Open(e.st, e.st.Root(rootConfig))
	e.vidIdx = btree.Open(e.st, e.st.Root(rootVidIdx))
	e.idxMu.Lock()
	e.indexes = make(map[string]*btree.Tree)
	e.idxMu.Unlock()
}

// saveRoots persists any root page movements after a mutating operation.
func (e *Engine) saveRoots() {
	set := func(slot int, t *btree.Tree) {
		if e.st.Root(slot) != t.Root() {
			e.st.SetRoot(slot, t.Root())
		}
	}
	set(rootObjTable, e.objTable)
	set(rootVerIdx, e.verIdx)
	set(rootTempIdx, e.tempIdx)
	set(rootCatalog, e.catalog)
	set(rootExtent, e.extent)
	set(rootConfig, e.config)
	set(rootVidIdx, e.vidIdx)
}

// Bus exposes the trigger bus.
func (e *Engine) Bus() *trigger.Bus { return e.bus }

// Manager exposes the transaction manager.
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Policy returns the configured payload policy.
func (e *Engine) Policy() PayloadPolicy { return e.opts.Policy }

// Write runs fn as a transaction, refreshing tree handles after aborts.
func (e *Engine) Write(fn func() error) error {
	err := e.mgr.Write(fn)
	if err != nil {
		// Abort may have rolled back root changes and heap state.
		e.reopenTrees()
		e.heap = storage.NewHeap(e.st)
	}
	return err
}

// Read runs fn under the shared reader lock.
func (e *Engine) Read(fn func() error) error { return e.mgr.Read(fn) }

// --- keys ---

func objKey(o oid.OID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(o))
	return b[:]
}

func verKey(o oid.OID, v oid.VID) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(v))
	return b[:]
}

func tempKey(o oid.OID, s oid.Stamp) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(s))
	return b[:]
}

func vidKey(v oid.VID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func extKey(t oid.TypeID, o oid.OID) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(t))
	binary.BigEndian.PutUint64(b[4:12], uint64(o))
	return b[:]
}

// --- object header ---

// objHeader is the per-object record in the object table. The paper's §3
// point is embodied here: there is no "generic object header" users
// dereference through — the header exists only so the engine can find
// the latest version; an oid dereference is a single extra index probe,
// identical in cost for versioned and unversioned objects.
type objHeader struct {
	typ      oid.TypeID
	latest   oid.VID
	count    uint64 // live version count
	firstVID oid.VID
	created  oid.Stamp
}

func (h *objHeader) encode() []byte {
	w := codec.NewWriter(40)
	w.U32(uint32(h.typ))
	w.UVarint(uint64(h.latest))
	w.UVarint(h.count)
	w.UVarint(uint64(h.firstVID))
	w.UVarint(uint64(h.created))
	return w.Bytes()
}

func decodeObjHeader(b []byte) (objHeader, error) {
	r := codec.NewReader(b)
	h := objHeader{}
	h.typ = oid.TypeID(r.U32())
	h.latest = oid.VID(r.UVarint())
	h.count = r.UVarint()
	h.firstVID = oid.VID(r.UVarint())
	h.created = oid.Stamp(r.UVarint())
	if r.Err() != nil {
		return objHeader{}, fmt.Errorf("%w: object header: %v", ErrCorrupt, r.Err())
	}
	return h, nil
}

func (e *Engine) loadHeader(o oid.OID) (objHeader, error) {
	raw, ok, err := e.objTable.Get(objKey(o))
	if err != nil {
		return objHeader{}, err
	}
	if !ok {
		return objHeader{}, fmt.Errorf("%w: %v", ErrNoObject, o)
	}
	return decodeObjHeader(raw)
}

func (e *Engine) storeHeader(o oid.OID, h objHeader) error {
	return e.objTable.Put(objKey(o), h.encode())
}

// Exists reports whether an object is present.
func (e *Engine) Exists(o oid.OID) (bool, error) {
	_, ok, err := e.objTable.Get(objKey(o))
	return ok, err
}

// TypeOf returns the catalog type of an object.
func (e *Engine) TypeOf(o oid.OID) (oid.TypeID, error) {
	h, err := e.loadHeader(o)
	if err != nil {
		return oid.NilType, err
	}
	return h.typ, nil
}

// Latest returns the vid the object id currently binds to — the paper's
// generic-reference resolution ("an object id ... logically refers to
// the latest version of the object").
func (e *Engine) Latest(o oid.OID) (oid.VID, error) {
	h, err := e.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	return h.latest, nil
}

// VersionCount returns the number of live versions of the object.
func (e *Engine) VersionCount(o oid.OID) (uint64, error) {
	h, err := e.loadHeader(o)
	if err != nil {
		return 0, err
	}
	return h.count, nil
}

// Owner resolves a vid to its object (reverse index).
func (e *Engine) Owner(v oid.VID) (oid.OID, error) {
	raw, ok, err := e.vidIdx.Get(vidKey(v))
	if err != nil {
		return oid.NilOID, err
	}
	if !ok {
		return oid.NilOID, fmt.Errorf("%w: %v", ErrNoVersion, v)
	}
	return oid.OID(binary.BigEndian.Uint64(raw)), nil
}

// Stats reports engine-level totals.
type Stats struct {
	Objects  uint64
	Versions uint64
	NextOID  uint64
	NextVID  uint64
	Stamp    uint64
}

// Stats returns engine totals.
func (e *Engine) Stats() Stats {
	return Stats{
		Objects:  e.st.Counter(ctrObjects),
		Versions: e.st.Counter(ctrVersion),
		NextOID:  e.st.Counter(ctrOID),
		NextVID:  e.st.Counter(ctrVID),
		Stamp:    e.st.Counter(ctrStamp),
	}
}
