// Package core implements the Ode versioned-object engine — the paper's
// primary contribution. It provides:
//
//   - persistent objects with identity (pnew → Create, oids);
//   - version orthogonality: any object can grow versions at any time
//     with no type-level declaration and no cost before the first
//     newversion (§2, §3);
//   - object ids as generic references that always dereference to the
//     latest version, and version ids as specific references (§3, §4);
//   - newversion with automatically maintained temporal (total order by
//     creation) and derived-from (tree) relationships (§2, §4);
//   - pdelete of a whole object or a single version with derivation-tree
//     splicing (§4.4);
//   - traversals Dprevious, Tprevious, Dchildren/alternatives, version
//     histories, and as-of temporal lookup (§4.5);
//   - delta storage of version payloads against their derived-from
//     parent (§2's SCCS/RCS deltas), switchable per database;
//   - configurations and contexts built over the primitives (§5);
//   - trigger events so notification/percolation policies can be built
//     outside the kernel (§1, §7).
//
// Every engine operation runs on a Tx — a per-transaction handle that
// routes each object to the shard its oid lives on through the
// epoch-versioned shard map snapshot pinned at begin. Under a
// single shard the Tx binds exactly one storage view, heap and tree set,
// as it always did; under N shards it lazily joins the shards the
// transaction touches and the transaction layer commits across them with
// two-phase commit. Engine.Write and Engine.Read mint the Tx and scope
// its lifetime to the callback; read transactions run against
// epoch-pinned snapshots and never block behind writers.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ode/internal/btree"
	"ode/internal/codec"
	"ode/internal/derefcache"
	"ode/internal/matcache"
	"ode/internal/obs"
	"ode/internal/oid"
	"ode/internal/storage"
	"ode/internal/trigger"
	"ode/internal/txn"
)

// ErrTxDone reports use of a transaction handle whose transaction has
// ended (re-exported by the ode package).
var ErrTxDone = storage.ErrTxDone

// Superblock counter slots (on-disk format). Each shard has its own
// counter set; oids and vids are composed as SlotBase(shard)|raw so an
// id names its BIRTH shard forever, while its current placement is a
// range lookup in the shard map (storage.ShardMap) and can move. The
// stamp counter holds the per-shard high-water mark of the engine's
// global stamp clock.
const (
	ctrOID     = 0
	ctrVID     = 1
	ctrStamp   = 2
	ctrObjects = 3
	ctrVersion = 4
)

// Superblock root slots (on-disk format). Every shard carries the full
// root set; the catalog, config (named configurations/contexts) and
// named-index trees are authoritative on shard 0 only, while annotation
// records live in the config tree of the shard that owns the annotated
// object.
const (
	rootObjTable = 0
	rootVerIdx   = 1
	rootTempIdx  = 2
	rootCatalog  = 3
	rootExtent   = 4
	rootConfig   = 5
	rootVidIdx   = 6
)

// Errors surfaced by the engine (re-exported by the ode package).
var (
	ErrNoObject   = errors.New("ode: no such object")
	ErrNoVersion  = errors.New("ode: no such version")
	ErrNoType     = errors.New("ode: type not registered")
	ErrWrongType  = errors.New("ode: object has different type")
	ErrCorrupt    = errors.New("ode: corrupt database structure")
	ErrChainDepth = errors.New("ode: delta chain too deep")
)

// PayloadPolicy selects how version payloads are stored.
type PayloadPolicy uint8

const (
	// FullCopy stores every version's payload in full.
	FullCopy PayloadPolicy = iota
	// DeltaChain stores a version as a binary delta against its
	// derived-from parent, up to MaxChain links; every MaxChain-th
	// version is a full keyframe bounding materialisation cost.
	DeltaChain
)

// Options configures the engine.
type Options struct {
	Policy PayloadPolicy
	// MaxChain bounds delta chains under DeltaChain; 0 means
	// DefaultMaxChain.
	MaxChain int

	// DeltaTier enables the delta storage tier (DESIGN.md §14): stored
	// full payloads are demoted to deltas against their D-parent when
	// they gain a dependent child or when the compactor sweeps them,
	// and materialised contents flow through the epoch-tagged LRU
	// cache. Orthogonal to Policy — FullCopy with DeltaTier writes full
	// copies that are demoted after the fact; DeltaChain with DeltaTier
	// additionally reclaims the full payloads DeltaChain leaves behind
	// (detached dependents, updated versions).
	DeltaTier bool
	// AnchorInterval bounds the materialisation chain the delta tier
	// may build: a version is only demoted while every dependent chain
	// through it stays within this many links of a full anchor, and the
	// compactor promotes versions found deeper (interval shrunk across
	// a reopen). 0 means MaxChain.
	AnchorInterval int
	// CacheBytes is the materialisation cache budget; 0 means
	// DefaultCacheBytes, negative disables the cache.
	CacheBytes int64

	// DerefCacheBytes is the read-side dereference cache budget (latest
	// version id + materialised content keyed by oid, epoch-tagged like
	// the materialisation cache); 0 means DefaultDerefCacheBytes,
	// negative disables it. Unlike CacheBytes it is independent of the
	// delta tier: the hot Deref path benefits under every policy.
	DerefCacheBytes int64
}

// DefaultMaxChain is the delta-chain keyframe interval.
const DefaultMaxChain = 16

// DefaultCacheBytes is the materialisation cache budget when the delta
// tier is on and Options.CacheBytes is zero.
const DefaultCacheBytes = 4 << 20

// DefaultDerefCacheBytes is the dereference cache budget when
// Options.DerefCacheBytes is zero.
const DefaultDerefCacheBytes = 4 << 20

// Engine is the versioned-object store. It holds only cross-transaction
// state; everything a single transaction needs lives on its Tx.
type Engine struct {
	c *txn.Coordinator
	// single marks a wrapped legacy (Shards=1 layout) database: no
	// coordinator log, no shard map changes, bit-for-bit pre-shard
	// behavior (notably the stamp clock living in the shard counter).
	single bool
	bus    *trigger.Bus
	opts   Options

	// m is the coordinator's observability registry (nil under
	// NoMetrics); the engine records version-chain walk lengths into it.
	m *obs.Metrics

	// cache is the materialisation cache (nil unless the delta tier is
	// on and Options.CacheBytes >= 0). Entries are tagged with the
	// (shard, epoch) they were built at and only served to readers
	// pinned at exactly that pair, so no invalidation is needed.
	cache *matcache.Cache

	// dcache is the read-side dereference cache (nil when disabled):
	// oid → (latest vid, content), tagged with the reading snapshot's
	// (shard, epoch) under the same exact-match rule as cache, so a hot
	// Deref skips the header probe and payload walk entirely and a live
	// reshard can never serve stale placement.
	dcache *derefcache.Cache

	// heapSpace holds each shard's heap free-space cache, shared across
	// write transactions (writers on one shard are serialised by its
	// writer mutex; hsMu orders the reset-after-abort against the next
	// writer's pickup). The slice grows under hsMu when a reshard adds
	// physical shards.
	hsMu      sync.Mutex
	heapSpace []*storage.HeapState

	// alloc holds the per-shard batched id-allocation leases (alloc.go).
	// Like heapSpace, each shard's state is used only under that shard's
	// writer mutex; the registry grows when a reshard adds shards.
	alloc allocState

	// stamp is the global version-creation clock under N > 1: stamps
	// must be comparable across shards (AsOf, CurrentStamp), so they
	// cannot be composed per shard the way oids are. Each allocation
	// mirrors the clock into the allocating shard's ctrStamp counter, so
	// reopening seeds the clock from the per-shard maxima. With one
	// shard the counter itself is the clock, exactly as before sharding.
	stamp atomic.Uint64

	// cursor round-robins fresh transactions across shards for object
	// allocation; a transaction's later allocations stay on its first
	// shard so the common transaction commits without 2PC.
	cursor atomic.Uint64

	// idxExist notes that at least one named secondary index exists, in
	// which case write transactions join shard 0 up front: trigger-driven
	// index maintenance writes shard 0, and joining it first keeps the
	// ascending join order cheap.
	idxExist atomic.Bool
}

// shardTx binds one transaction's presence on one shard: the storage
// view plus tree and heap handles for that shard. All shard-local engine
// logic is shardTx methods; the routing Tx (route.go) picks the shardTx
// an operation belongs to and delegates.
type shardTx struct {
	e    *Engine
	rt   *Tx // the routing transaction this bundle belongs to
	s    int // shard slot
	st   *storage.TxView
	heap *storage.Heap
	bus  *trigger.Bus
	opts Options

	objTable *btree.Tree // oid → object header
	verIdx   *btree.Tree // oid+vid → version record
	tempIdx  *btree.Tree // oid+stamp → vid
	catalog  *btree.Tree // type names ↔ ids (authoritative on shard 0)
	extent   *btree.Tree // typeid+oid → ()
	config   *btree.Tree // configurations, contexts, annotations
	vidIdx   *btree.Tree // vid → oid

	// indexes caches named secondary-index trees opened by this
	// transaction (roots live in shard 0's catalog tree).
	indexes map[string]*btree.Tree

	// al caches this shard's batched id-allocator state (alloc.go),
	// resolved on first allocation.
	al *shardAlloc

	writable bool
}

// New wires an engine over a single standalone manager, creating the
// persistent structures on first use. It is the single-shard form used
// by tests and tools that build a Manager directly; Open-level callers
// go through NewSharded.
func New(mgr *txn.Manager, opts Options) (*Engine, error) {
	return NewSharded(txn.WrapManager(mgr), opts)
}

// NewSharded wires an engine over a shard coordinator, creating the
// persistent structures on every shard on first use.
func NewSharded(c *txn.Coordinator, opts Options) (*Engine, error) {
	if opts.MaxChain == 0 {
		opts.MaxChain = DefaultMaxChain
	}
	if opts.AnchorInterval == 0 {
		opts.AnchorInterval = opts.MaxChain
	}
	phys := c.NumShards()
	e := &Engine{
		c:         c,
		single:    phys == 1,
		bus:       trigger.NewBus(),
		opts:      opts,
		m:         c.Metrics(),
		heapSpace: make([]*storage.HeapState, phys),
	}
	for i := range e.heapSpace {
		e.heapSpace[i] = storage.NewHeapState()
	}
	if opts.DeltaTier && opts.CacheBytes >= 0 {
		cap := opts.CacheBytes
		if cap == 0 {
			cap = DefaultCacheBytes
		}
		e.cache = matcache.New(cap, 16)
	}
	if opts.DerefCacheBytes >= 0 {
		cap := opts.DerefCacheBytes
		if cap == 0 {
			cap = DefaultDerefCacheBytes
		}
		e.dcache = derefcache.New(cap, 16, storage.MaxSlots)
	}
	// Initialize any physical shard still lacking the engine trees: all
	// of them on a fresh database, and — after a crash between a
	// reshard's grow step and its provisioning transaction — just the
	// newly created ones. One transaction, ascending joins, 2PC when it
	// spans shards.
	var missing []int
	if err := c.Read(func(r *txn.ReadTx) error {
		for s := 0; s < r.N(); s++ {
			if r.View(s).Root(rootObjTable) == oid.NilPage {
				missing = append(missing, s)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if len(missing) > 0 && !c.ReadOnly() {
		err := c.Write(func(w *txn.WriteTx) error {
			for _, s := range missing {
				v, err := w.Join(s)
				if err != nil {
					return err
				}
				for _, slot := range []int{
					rootObjTable, rootVerIdx, rootTempIdx, rootCatalog,
					rootExtent, rootConfig, rootVidIdx,
				} {
					t, err := btree.Create(v)
					if err != nil {
						return err
					}
					v.SetRoot(slot, t.Root())
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: init structures: %w", err)
		}
	}
	// Seed the stamp clock from the per-shard high-water marks and note
	// whether any named index exists (write transactions then join shard
	// 0 eagerly; see idxExist).
	if err := c.Read(func(r *txn.ReadTx) error {
		var max uint64
		for s := 0; s < r.N(); s++ {
			if v := r.View(s).Counter(ctrStamp); v > max {
				max = v
			}
		}
		e.stamp.Store(max)
		cat := btree.Open(r.View(0), r.View(0).Root(rootCatalog))
		found := false
		err := cat.AscendPrefix([]byte(idxRootPrefix), func(_, _ []byte) (bool, error) {
			found = true
			return false, nil
		})
		e.idxExist.Store(found)
		return err
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// newShardTx binds a shard bundle to v, opening every tree at the root
// the view's superblock snapshot records.
func (e *Engine) newShardTx(v *storage.TxView, hs *storage.HeapState, rt *Tx, s int, writable bool) *shardTx {
	return &shardTx{
		e:        e,
		rt:       rt,
		s:        s,
		st:       v,
		heap:     storage.NewHeap(v, hs),
		bus:      e.bus,
		opts:     e.opts,
		objTable: btree.Open(v, v.Root(rootObjTable)),
		verIdx:   btree.Open(v, v.Root(rootVerIdx)),
		tempIdx:  btree.Open(v, v.Root(rootTempIdx)),
		catalog:  btree.Open(v, v.Root(rootCatalog)),
		extent:   btree.Open(v, v.Root(rootExtent)),
		config:   btree.Open(v, v.Root(rootConfig)),
		vidIdx:   btree.Open(v, v.Root(rootVidIdx)),
		indexes:  make(map[string]*btree.Tree),
		writable: writable,
	}
}

// takeHeapSpace hands out shard s's heap free-space cache, growing the
// slice when a reshard has added physical shards. The caller holds s's
// writer mutex (it joined the shard), which serialises use.
func (e *Engine) takeHeapSpace(s int) *storage.HeapState {
	e.hsMu.Lock()
	defer e.hsMu.Unlock()
	for len(e.heapSpace) <= s {
		e.heapSpace = append(e.heapSpace, storage.NewHeapState())
	}
	hs := e.heapSpace[s]
	if hs == nil {
		hs = storage.NewHeapState()
		e.heapSpace[s] = hs
	}
	return hs
}

// resetHeapSpaces starts every shard's next writer with a fresh heap
// cache. Called after an abort: the rollback reverted pages underneath
// the shared caches; their entries self-heal, but the sweep position may
// hide reverted pages. Allocation leases are dropped for the same
// reason: re-leasing from the persisted counter is always safe, while a
// lease minted against rolled-back counter state is simpler to discard
// than to reason about.
func (e *Engine) resetHeapSpaces() {
	e.hsMu.Lock()
	for i := range e.heapSpace {
		e.heapSpace[i] = storage.NewHeapState()
	}
	e.hsMu.Unlock()
	e.alloc.reset()
}

// newOID allocates an oid on this shard: the shard-local counter
// composed with the shard slot (identity under one shard). The routing
// Tx only allocates on shards whose home-range tail is still their own
// (ShardMap.Allocatable), so a fresh id routes to its birth shard.
// Allocation draws from the shard's batched lease (alloc.go), so the
// common case costs no superblock touch.
func (tx *shardTx) newOID() oid.OID {
	return oid.OID(storage.Compose(tx.allocID(ctrOID), tx.s))
}

// newVID allocates a vid on this shard, composed like newOID. Unlike a
// fresh oid, the value can fall in a range migrated elsewhere (vids are
// minted on the OBJECT's current shard, wherever it moved), so the
// vid→oid index entry routes by vid value (Tx.putVidIdx), not by tx.s.
func (tx *shardTx) newVID() oid.VID {
	return oid.VID(storage.Compose(tx.allocID(ctrVID), tx.s))
}

// newStamp allocates a creation stamp. With one shard the shard counter
// is the clock (bit-for-bit the pre-shard behavior, including counter
// rollback on abort); with N shards the engine's global clock supplies
// the value and the shard counter keeps the high-water mark for reopen.
func (tx *shardTx) newStamp() oid.Stamp {
	if tx.e.single {
		return oid.Stamp(tx.st.NextCounter(ctrStamp))
	}
	s := tx.e.stamp.Add(1)
	if tx.st.Counter(ctrStamp) < s {
		tx.st.SetCounter(ctrStamp, s)
	}
	return oid.Stamp(s)
}

// saveRoots persists any root page movements after a mutating operation.
func (tx *shardTx) saveRoots() {
	set := func(slot int, t *btree.Tree) {
		if tx.st.Root(slot) != t.Root() {
			tx.st.SetRoot(slot, t.Root())
		}
	}
	set(rootObjTable, tx.objTable)
	set(rootVerIdx, tx.verIdx)
	set(rootTempIdx, tx.tempIdx)
	set(rootCatalog, tx.catalog)
	set(rootExtent, tx.extent)
	set(rootConfig, tx.config)
	set(rootVidIdx, tx.vidIdx)
}

// Bus exposes the trigger bus.
func (e *Engine) Bus() *trigger.Bus { return e.bus }

// Manager exposes shard 0's transaction manager (the only shard when
// N = 1). Tools that need the whole shard set use Coordinator.
func (e *Engine) Manager() *txn.Manager { return e.c.Shards()[0] }

// Coordinator exposes the transaction coordinator.
func (e *Engine) Coordinator() *txn.Coordinator { return e.c }

// Policy returns the configured payload policy.
func (e *Engine) Policy() PayloadPolicy { return e.opts.Policy }

// DeltaTier reports whether the delta storage tier is enabled.
func (e *Engine) DeltaTier() bool { return e.opts.DeltaTier }

// AnchorInterval returns the effective delta-tier anchor interval.
func (e *Engine) AnchorInterval() int { return e.opts.AnchorInterval }

// MatCacheStats snapshots the materialisation cache counters; ok is
// false when the cache is disabled.
func (e *Engine) MatCacheStats() (matcache.Stats, bool) {
	if e.cache == nil {
		return matcache.Stats{}, false
	}
	return e.cache.Stats(), true
}

// ResetMatCache drops every materialisation cache entry (benchmarks use
// this to measure cold chain walks).
func (e *Engine) ResetMatCache() {
	if e.cache != nil {
		e.cache.Reset()
	}
}

// DerefCacheStats snapshots the dereference cache counters; ok is false
// when the cache is disabled.
func (e *Engine) DerefCacheStats() (derefcache.Stats, bool) {
	if e.dcache == nil {
		return derefcache.Stats{}, false
	}
	return e.dcache.Stats(), true
}

// DerefCacheShardStats reads one shard's dereference cache hit/miss
// counters (zeros when the cache is disabled).
func (e *Engine) DerefCacheShardStats(s int) (hits, misses uint64) {
	if e.dcache == nil {
		return 0, 0
	}
	return e.dcache.ShardStats(s)
}

// ResetDerefCache drops every dereference cache entry (benchmarks use
// this to measure cold reads).
func (e *Engine) ResetDerefCache() {
	if e.dcache != nil {
		e.dcache.Reset()
	}
}

// Write runs fn as a write transaction. The Tx is valid only until fn
// returns; on error or panic every effect is rolled back.
func (e *Engine) Write(fn func(tx *Tx) error) error {
	err := e.c.Write(func(w *txn.WriteTx) error {
		if w.Restarted() {
			// The first attempt was rolled back under the heap caches.
			e.resetHeapSpaces()
		}
		tx := &Tx{
			e:         e,
			w:         w,
			writable:  true,
			n:         w.NumShards(),
			rmap:      w.Map(),
			shards:    make([]*shardTx, w.NumShards()),
			lastAlloc: -1,
		}
		if !e.single && e.idxExist.Load() {
			if _, err := tx.shardW(0); err != nil {
				return err
			}
		}
		return fn(tx)
	})
	if err != nil {
		e.resetHeapSpaces()
	}
	return err
}

// Read runs fn against a snapshot of the most recently committed state;
// it neither blocks nor is blocked by concurrent writers.
func (e *Engine) Read(fn func(tx *Tx) error) error {
	return e.c.Read(func(r *txn.ReadTx) error {
		return fn(&Tx{
			e:         e,
			r:         r,
			n:         r.N(),
			rmap:      r.Map(),
			shards:    make([]*shardTx, r.N()),
			lastAlloc: -1,
		})
	})
}

// --- keys ---

func objKey(o oid.OID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(o))
	return b[:]
}

func verKey(o oid.OID, v oid.VID) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(v))
	return b[:]
}

func tempKey(o oid.OID, s oid.Stamp) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(s))
	return b[:]
}

func vidKey(v oid.VID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func extKey(t oid.TypeID, o oid.OID) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(t))
	binary.BigEndian.PutUint64(b[4:12], uint64(o))
	return b[:]
}

// --- object header ---

// objHeader is the per-object record in the object table. The paper's §3
// point is embodied here: there is no "generic object header" users
// dereference through — the header exists only so the engine can find
// the latest version; an oid dereference is a single extra index probe,
// identical in cost for versioned and unversioned objects.
type objHeader struct {
	typ      oid.TypeID
	latest   oid.VID
	count    uint64 // live version count
	firstVID oid.VID
	created  oid.Stamp
}

func (h *objHeader) encode() []byte {
	b := make([]byte, 0, 40)
	b = codec.AppendU32(b, uint32(h.typ))
	b = codec.AppendUVarint(b, uint64(h.latest))
	b = codec.AppendUVarint(b, h.count)
	b = codec.AppendUVarint(b, uint64(h.firstVID))
	b = codec.AppendUVarint(b, uint64(h.created))
	return b
}

func decodeObjHeader(b []byte) (objHeader, error) {
	r := codec.NewReader(b)
	h := objHeader{}
	h.typ = oid.TypeID(r.U32())
	h.latest = oid.VID(r.UVarint())
	h.count = r.UVarint()
	h.firstVID = oid.VID(r.UVarint())
	h.created = oid.Stamp(r.UVarint())
	if r.Err() != nil {
		return objHeader{}, fmt.Errorf("%w: object header: %v", ErrCorrupt, r.Err())
	}
	return h, nil
}

func (tx *shardTx) loadHeader(o oid.OID) (objHeader, error) {
	raw, ok, err := tx.objTable.Get(objKey(o))
	if err != nil {
		return objHeader{}, err
	}
	if !ok {
		return objHeader{}, fmt.Errorf("%w: %v", ErrNoObject, o)
	}
	return decodeObjHeader(raw)
}

func (tx *shardTx) storeHeader(o oid.OID, h objHeader) error {
	return tx.objTable.Put(objKey(o), h.encode())
}

// Exists reports whether an object is present.
func (tx *shardTx) Exists(o oid.OID) (bool, error) {
	_, ok, err := tx.objTable.Get(objKey(o))
	return ok, err
}

// TypeOf returns the catalog type of an object.
func (tx *shardTx) TypeOf(o oid.OID) (oid.TypeID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilType, err
	}
	return h.typ, nil
}

// Latest returns the vid the object id currently binds to — the paper's
// generic-reference resolution ("an object id ... logically refers to
// the latest version of the object").
func (tx *shardTx) Latest(o oid.OID) (oid.VID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	return h.latest, nil
}

// VersionCount returns the number of live versions of the object.
func (tx *shardTx) VersionCount(o oid.OID) (uint64, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return 0, err
	}
	return h.count, nil
}

// Owner resolves a vid to its object (reverse index).
func (tx *shardTx) Owner(v oid.VID) (oid.OID, error) {
	raw, ok, err := tx.vidIdx.Get(vidKey(v))
	if err != nil {
		return oid.NilOID, err
	}
	if !ok {
		return oid.NilOID, fmt.Errorf("%w: %v", ErrNoVersion, v)
	}
	return oid.OID(binary.BigEndian.Uint64(raw)), nil
}

// Stats reports engine-level totals.
type Stats struct {
	Objects  uint64
	Versions uint64
	NextOID  uint64
	NextVID  uint64
	Stamp    uint64
}

// Stats returns this shard's contribution to the engine totals.
func (tx *shardTx) Stats() Stats {
	return Stats{
		Objects:  tx.st.Counter(ctrObjects),
		Versions: tx.st.Counter(ctrVersion),
		NextOID:  tx.st.Counter(ctrOID),
		NextVID:  tx.st.Counter(ctrVID),
		Stamp:    tx.st.Counter(ctrStamp),
	}
}

// Stats returns engine totals as of the most recent commit.
func (e *Engine) Stats() Stats {
	var s Stats
	_ = e.Read(func(tx *Tx) error {
		s = tx.Stats()
		return nil
	})
	return s
}

// ShardStats returns each physical shard's contribution to the engine
// totals, indexed by shard. A merged-away or not-yet-provisioned shard
// reports zeros.
func (e *Engine) ShardStats() []Stats {
	var out []Stats
	_ = e.Read(func(tx *Tx) error {
		out = make([]Stats, tx.n)
		for s := 0; s < tx.n; s++ {
			b, err := tx.shardR(s)
			if err != nil {
				return err
			}
			out[s] = b.Stats()
		}
		return nil
	})
	return out
}
