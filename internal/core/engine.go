// Package core implements the Ode versioned-object engine — the paper's
// primary contribution. It provides:
//
//   - persistent objects with identity (pnew → Create, oids);
//   - version orthogonality: any object can grow versions at any time
//     with no type-level declaration and no cost before the first
//     newversion (§2, §3);
//   - object ids as generic references that always dereference to the
//     latest version, and version ids as specific references (§3, §4);
//   - newversion with automatically maintained temporal (total order by
//     creation) and derived-from (tree) relationships (§2, §4);
//   - pdelete of a whole object or a single version with derivation-tree
//     splicing (§4.4);
//   - traversals Dprevious, Tprevious, Dchildren/alternatives, version
//     histories, and as-of temporal lookup (§4.5);
//   - delta storage of version payloads against their derived-from
//     parent (§2's SCCS/RCS deltas), switchable per database;
//   - configurations and contexts built over the primitives (§5);
//   - trigger events so notification/percolation policies can be built
//     outside the kernel (§1, §7).
//
// Every engine operation runs on a Tx — a per-transaction handle binding
// the storage view, heap and tree handles of exactly one transaction.
// Engine.Write and Engine.Read mint the Tx and scope its lifetime to the
// callback; read transactions run against an epoch-pinned snapshot and
// never block behind writers.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ode/internal/btree"
	"ode/internal/codec"
	"ode/internal/obs"
	"ode/internal/oid"
	"ode/internal/storage"
	"ode/internal/trigger"
	"ode/internal/txn"
)

// ErrTxDone reports use of a transaction handle whose transaction has
// ended (re-exported by the ode package).
var ErrTxDone = storage.ErrTxDone

// Superblock counter slots (on-disk format).
const (
	ctrOID     = 0
	ctrVID     = 1
	ctrStamp   = 2
	ctrObjects = 3
	ctrVersion = 4
)

// Superblock root slots (on-disk format).
const (
	rootObjTable = 0
	rootVerIdx   = 1
	rootTempIdx  = 2
	rootCatalog  = 3
	rootExtent   = 4
	rootConfig   = 5
	rootVidIdx   = 6
)

// Errors surfaced by the engine (re-exported by the ode package).
var (
	ErrNoObject   = errors.New("ode: no such object")
	ErrNoVersion  = errors.New("ode: no such version")
	ErrNoType     = errors.New("ode: type not registered")
	ErrWrongType  = errors.New("ode: object has different type")
	ErrCorrupt    = errors.New("ode: corrupt database structure")
	ErrChainDepth = errors.New("ode: delta chain too deep")
)

// PayloadPolicy selects how version payloads are stored.
type PayloadPolicy uint8

const (
	// FullCopy stores every version's payload in full.
	FullCopy PayloadPolicy = iota
	// DeltaChain stores a version as a binary delta against its
	// derived-from parent, up to MaxChain links; every MaxChain-th
	// version is a full keyframe bounding materialisation cost.
	DeltaChain
)

// Options configures the engine.
type Options struct {
	Policy PayloadPolicy
	// MaxChain bounds delta chains under DeltaChain; 0 means
	// DefaultMaxChain.
	MaxChain int
}

// DefaultMaxChain is the delta-chain keyframe interval.
const DefaultMaxChain = 16

// Engine is the versioned-object store. It holds only cross-transaction
// state; everything a single transaction needs lives on its Tx.
type Engine struct {
	mgr  *txn.Manager
	bus  *trigger.Bus
	opts Options

	// m is the manager's observability registry (nil under NoMetrics);
	// the engine records version-chain walk lengths into it.
	m *obs.Metrics

	// heapSpace is the heap's advisory free-space cache, shared across
	// write transactions (writers are serialised; hsMu orders the
	// reset-after-abort against the next writer's pickup).
	hsMu      sync.Mutex
	heapSpace *storage.HeapState
}

// Tx is one transaction's engine handle: the storage view plus tree and
// heap handles bound to that view. All engine operations are Tx methods;
// a Tx is created by Engine.Write/Engine.Read and is invalid once the
// callback returns (the underlying view returns ErrTxDone).
type Tx struct {
	e    *Engine
	st   *storage.TxView
	heap *storage.Heap
	bus  *trigger.Bus
	opts Options

	objTable *btree.Tree // oid → object header
	verIdx   *btree.Tree // oid+vid → version record
	tempIdx  *btree.Tree // oid+stamp → vid
	catalog  *btree.Tree // type names ↔ ids
	extent   *btree.Tree // typeid+oid → ()
	config   *btree.Tree // configurations and contexts
	vidIdx   *btree.Tree // vid → oid

	// indexes caches named secondary-index trees opened by this
	// transaction (roots live in the catalog tree).
	indexes map[string]*btree.Tree

	writable bool
}

// New wires an engine over mgr, creating the persistent structures on
// first use.
func New(mgr *txn.Manager, opts Options) (*Engine, error) {
	if opts.MaxChain == 0 {
		opts.MaxChain = DefaultMaxChain
	}
	e := &Engine{
		mgr:       mgr,
		bus:       trigger.NewBus(),
		opts:      opts,
		m:         mgr.Metrics(),
		heapSpace: storage.NewHeapState(),
	}
	fresh := false
	if err := mgr.Read(func(v *storage.TxView) error {
		fresh = v.Root(rootObjTable) == oid.NilPage
		return nil
	}); err != nil {
		return nil, err
	}
	if fresh {
		// Fresh database: create every structure in one transaction.
		err := mgr.Write(func(v *storage.TxView) error {
			for _, slot := range []int{
				rootObjTable, rootVerIdx, rootTempIdx, rootCatalog,
				rootExtent, rootConfig, rootVidIdx,
			} {
				t, err := btree.Create(v)
				if err != nil {
					return err
				}
				v.SetRoot(slot, t.Root())
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: init structures: %w", err)
		}
	}
	return e, nil
}

// newTx binds a transaction handle to v, opening every tree at the root
// the view's superblock snapshot records.
func (e *Engine) newTx(v *storage.TxView, hs *storage.HeapState, writable bool) *Tx {
	return &Tx{
		e:        e,
		st:       v,
		heap:     storage.NewHeap(v, hs),
		bus:      e.bus,
		opts:     e.opts,
		objTable: btree.Open(v, v.Root(rootObjTable)),
		verIdx:   btree.Open(v, v.Root(rootVerIdx)),
		tempIdx:  btree.Open(v, v.Root(rootTempIdx)),
		catalog:  btree.Open(v, v.Root(rootCatalog)),
		extent:   btree.Open(v, v.Root(rootExtent)),
		config:   btree.Open(v, v.Root(rootConfig)),
		vidIdx:   btree.Open(v, v.Root(rootVidIdx)),
		indexes:  make(map[string]*btree.Tree),
		writable: writable,
	}
}

// saveRoots persists any root page movements after a mutating operation.
func (tx *Tx) saveRoots() {
	set := func(slot int, t *btree.Tree) {
		if tx.st.Root(slot) != t.Root() {
			tx.st.SetRoot(slot, t.Root())
		}
	}
	set(rootObjTable, tx.objTable)
	set(rootVerIdx, tx.verIdx)
	set(rootTempIdx, tx.tempIdx)
	set(rootCatalog, tx.catalog)
	set(rootExtent, tx.extent)
	set(rootConfig, tx.config)
	set(rootVidIdx, tx.vidIdx)
}

// Bus exposes the trigger bus.
func (e *Engine) Bus() *trigger.Bus { return e.bus }

// Manager exposes the transaction manager.
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Policy returns the configured payload policy.
func (e *Engine) Policy() PayloadPolicy { return e.opts.Policy }

// Write runs fn as a write transaction. The Tx is valid only until fn
// returns; on error or panic every effect is rolled back.
func (e *Engine) Write(fn func(tx *Tx) error) error {
	e.hsMu.Lock()
	hs := e.heapSpace
	e.hsMu.Unlock()
	err := e.mgr.Write(func(v *storage.TxView) error {
		return fn(e.newTx(v, hs, true))
	})
	if err != nil {
		// Abort rolled pages back underneath the shared heap space
		// cache; its entries self-heal, but the sweep position may hide
		// reverted pages, so start the next writer fresh.
		e.hsMu.Lock()
		e.heapSpace = storage.NewHeapState()
		e.hsMu.Unlock()
	}
	return err
}

// Read runs fn against a snapshot of the most recently committed state;
// it neither blocks nor is blocked by concurrent writers.
func (e *Engine) Read(fn func(tx *Tx) error) error {
	return e.mgr.Read(func(v *storage.TxView) error {
		return fn(e.newTx(v, nil, false))
	})
}

// Writable reports whether this transaction may mutate.
func (tx *Tx) Writable() bool { return tx.writable }

// Epoch returns the snapshot epoch this transaction reads at.
func (tx *Tx) Epoch() uint64 { return tx.st.Epoch() }

// --- keys ---

func objKey(o oid.OID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(o))
	return b[:]
}

func verKey(o oid.OID, v oid.VID) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(v))
	return b[:]
}

func tempKey(o oid.OID, s oid.Stamp) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(o))
	binary.BigEndian.PutUint64(b[8:16], uint64(s))
	return b[:]
}

func vidKey(v oid.VID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func extKey(t oid.TypeID, o oid.OID) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(t))
	binary.BigEndian.PutUint64(b[4:12], uint64(o))
	return b[:]
}

// --- object header ---

// objHeader is the per-object record in the object table. The paper's §3
// point is embodied here: there is no "generic object header" users
// dereference through — the header exists only so the engine can find
// the latest version; an oid dereference is a single extra index probe,
// identical in cost for versioned and unversioned objects.
type objHeader struct {
	typ      oid.TypeID
	latest   oid.VID
	count    uint64 // live version count
	firstVID oid.VID
	created  oid.Stamp
}

func (h *objHeader) encode() []byte {
	w := codec.NewWriter(40)
	w.U32(uint32(h.typ))
	w.UVarint(uint64(h.latest))
	w.UVarint(h.count)
	w.UVarint(uint64(h.firstVID))
	w.UVarint(uint64(h.created))
	return w.Bytes()
}

func decodeObjHeader(b []byte) (objHeader, error) {
	r := codec.NewReader(b)
	h := objHeader{}
	h.typ = oid.TypeID(r.U32())
	h.latest = oid.VID(r.UVarint())
	h.count = r.UVarint()
	h.firstVID = oid.VID(r.UVarint())
	h.created = oid.Stamp(r.UVarint())
	if r.Err() != nil {
		return objHeader{}, fmt.Errorf("%w: object header: %v", ErrCorrupt, r.Err())
	}
	return h, nil
}

func (tx *Tx) loadHeader(o oid.OID) (objHeader, error) {
	raw, ok, err := tx.objTable.Get(objKey(o))
	if err != nil {
		return objHeader{}, err
	}
	if !ok {
		return objHeader{}, fmt.Errorf("%w: %v", ErrNoObject, o)
	}
	return decodeObjHeader(raw)
}

func (tx *Tx) storeHeader(o oid.OID, h objHeader) error {
	return tx.objTable.Put(objKey(o), h.encode())
}

// Exists reports whether an object is present.
func (tx *Tx) Exists(o oid.OID) (bool, error) {
	_, ok, err := tx.objTable.Get(objKey(o))
	return ok, err
}

// TypeOf returns the catalog type of an object.
func (tx *Tx) TypeOf(o oid.OID) (oid.TypeID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilType, err
	}
	return h.typ, nil
}

// Latest returns the vid the object id currently binds to — the paper's
// generic-reference resolution ("an object id ... logically refers to
// the latest version of the object").
func (tx *Tx) Latest(o oid.OID) (oid.VID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	return h.latest, nil
}

// VersionCount returns the number of live versions of the object.
func (tx *Tx) VersionCount(o oid.OID) (uint64, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return 0, err
	}
	return h.count, nil
}

// Owner resolves a vid to its object (reverse index).
func (tx *Tx) Owner(v oid.VID) (oid.OID, error) {
	raw, ok, err := tx.vidIdx.Get(vidKey(v))
	if err != nil {
		return oid.NilOID, err
	}
	if !ok {
		return oid.NilOID, fmt.Errorf("%w: %v", ErrNoVersion, v)
	}
	return oid.OID(binary.BigEndian.Uint64(raw)), nil
}

// Stats reports engine-level totals.
type Stats struct {
	Objects  uint64
	Versions uint64
	NextOID  uint64
	NextVID  uint64
	Stamp    uint64
}

// Stats returns engine totals from this transaction's snapshot.
func (tx *Tx) Stats() Stats {
	return Stats{
		Objects:  tx.st.Counter(ctrObjects),
		Versions: tx.st.Counter(ctrVersion),
		NextOID:  tx.st.Counter(ctrOID),
		NextVID:  tx.st.Counter(ctrVID),
		Stamp:    tx.st.Counter(ctrStamp),
	}
}

// Stats returns engine totals as of the most recent commit.
func (e *Engine) Stats() Stats {
	var s Stats
	_ = e.Read(func(tx *Tx) error {
		s = tx.Stats()
		return nil
	})
	return s
}
