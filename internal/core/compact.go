package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"ode/internal/delta"
	"ode/internal/oid"
)

// This file is the delta storage tier's write side (DESIGN.md §14).
// Reads materialise through readContent/the cache; here live the two
// primitives that change how a version's payload is REPRESENTED without
// changing its content:
//
//   - demotion: a stored full payload is re-encoded as a delta against
//     its D-parent and the full copy reclaimed, provided every
//     dependent chain through it stays within AnchorInterval links of a
//     full anchor and the delta actually saves space;
//   - promotion: a dependent payload is rewritten as a full anchor,
//     restoring the depth bound when a chain is found too deep (for
//     example after AnchorInterval shrank across a reopen).
//
// Both are ordinary logged mutations inside a write transaction, so
// crash safety falls out of the WAL/2PC machinery: a demotion either
// committed (delta on disk, chain intact) or it didn't (full payload
// untouched). The background compactor (ode.DB) sweeps shards through
// CompactShard below.

// maybeDemote demotes (o, v) if the delta tier is on and v is eligible;
// it reports whether a demotion happened. Ineligibility is not an
// error: the caller is an opportunistic hook on NewVersion/delete.
func (tx *shardTx) maybeDemote(o oid.OID, v oid.VID) (bool, error) {
	if !tx.opts.DeltaTier {
		return false, nil
	}
	return tx.demoteVersion(o, v)
}

// demoteVersion re-encodes a stored full payload as a delta against its
// D-parent. It refuses (returning false, nil) when v is not a full
// payload, is a derivation root, is the object's latest version (the
// hot dereference target stays cheap), when the resulting dependent
// chains would exceed AnchorInterval, or when the delta would not
// actually be smaller.
func (tx *shardTx) demoteVersion(o oid.OID, v oid.VID) (bool, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return false, err
	}
	if rec.kind != payFull || rec.dprev.IsNil() {
		return false, nil
	}
	h, err := tx.loadHeader(o)
	if err != nil {
		return false, err
	}
	if h.latest == v {
		return false, nil
	}
	parent, err := tx.loadVer(o, rec.dprev)
	if err != nil {
		return false, err
	}
	below, err := tx.depBelow(o, v)
	if err != nil {
		return false, err
	}
	if int(parent.depth)+1+below > tx.opts.AnchorInterval {
		return false, nil
	}
	base, err := tx.readContent(o, parent)
	if err != nil {
		return false, err
	}
	content, err := tx.readContent(o, rec)
	if err != nil {
		return false, err
	}
	d := delta.Encode(base, content)
	if len(d) >= len(content) {
		return false, nil
	}
	if err := tx.heap.Update(rec.payload, d); err != nil {
		return false, err
	}
	rec.kind = payDelta
	rec.depth = parent.depth + 1
	if err := tx.storeVer(o, v, rec); err != nil {
		return false, err
	}
	if err := tx.fixDepths(o, v, rec.depth); err != nil {
		return false, err
	}
	tx.saveRoots()
	if m := tx.e.m; m != nil {
		m.DeltaDemotions.Inc()
		m.DeltaBytesSaved.Add(uint64(len(content) - len(d)))
	}
	return true, nil
}

// promoteVersion rewrites a dependent payload as a full anchor (depth
// 0), re-basing its dependent descendants' depth hints. False when v is
// already full.
func (tx *shardTx) promoteVersion(o oid.OID, v oid.VID) (bool, error) {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return false, err
	}
	if rec.kind == payFull {
		return false, nil
	}
	content, err := tx.readContent(o, rec)
	if err != nil {
		return false, err
	}
	if rec.kind == paySame {
		rid, err := tx.heap.Insert(content)
		if err != nil {
			return false, err
		}
		rec.payload = rid
	} else {
		if err := tx.heap.Update(rec.payload, content); err != nil {
			return false, err
		}
	}
	rec.kind = payFull
	rec.depth = 0
	rec.size = uint64(len(content))
	if err := tx.storeVer(o, v, rec); err != nil {
		return false, err
	}
	if err := tx.fixDepths(o, v, 0); err != nil {
		return false, err
	}
	tx.saveRoots()
	if m := tx.e.m; m != nil {
		m.DeltaPromotions.Inc()
	}
	return true, nil
}

// depBelow returns the deepest dependent-descendant chain hanging off
// v, in links relative to v: 0 when no child depends on v's bytes. A
// payFull child is its own anchor and contributes nothing.
func (tx *shardTx) depBelow(o oid.OID, v oid.VID) (int, error) {
	children, err := tx.DChildren(o, v)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, c := range children {
		crec, err := tx.loadVer(o, c)
		if err != nil {
			return 0, err
		}
		if crec.kind == payFull {
			continue
		}
		d, err := tx.depBelow(o, c)
		if err != nil {
			return 0, err
		}
		if 1+d > max {
			max = 1 + d
		}
	}
	return max, nil
}

// CompactStats reports the effect of a compaction sweep.
type CompactStats struct {
	Objects    int   // objects examined
	Demoted    int   // full payloads re-encoded as deltas
	Promoted   int   // dependent payloads anchored as fulls
	BytesSaved int64 // payload bytes reclaimed by the demotions
	More       bool  // the mutation budget ran out before the sweep finished
}

func (s *CompactStats) add(o CompactStats) {
	s.Objects += o.Objects
	s.Demoted += o.Demoted
	s.Promoted += o.Promoted
	s.BytesSaved += o.BytesSaved
	s.More = s.More || o.More
}

// verNode is compactObject's in-memory copy of one version record.
type verNode struct {
	v        oid.VID
	rec      verRec
	children []*verNode
	depBelow int // scan-time dependent-descendant depth below this node
}

// compactObject walks one object's whole derivation forest top-down,
// demoting eligible full payloads, promoting over-deep dependents, and
// repairing stale depth hints — the batch form of demoteVersion that
// costs one version scan per object instead of one per version. At most
// lim demotions+promotions are performed (depth repairs are always
// applied, keeping the object consistent); stats.More reports a budget
// cut. The walk carries each parent's materialised content down the
// tree so no chain is ever walked twice.
func (tx *shardTx) compactObject(o oid.OID, lim int) (CompactStats, error) {
	var stats CompactStats
	h, err := tx.loadHeader(o)
	if err != nil {
		return stats, err
	}

	// One scan: load every version record.
	nodes := make(map[oid.VID]*verNode)
	err = tx.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		v := oid.VID(binary.BigEndian.Uint64(k[8:16]))
		rec, err := decodeVerRec(val)
		if err != nil {
			return false, err
		}
		nodes[v] = &verNode{v: v, rec: rec}
		return true, nil
	})
	if err != nil {
		return stats, err
	}
	var roots []*verNode
	for _, n := range nodes {
		if p, ok := nodes[n.rec.dprev]; ok && !n.rec.dprev.IsNil() {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	// Scan-time dependent depths, bottom-up. A node's decision below
	// only ever extends chains whose other links are re-checked with
	// exact post-decision depths, so these stay valid during the walk.
	var fillDep func(n *verNode) int
	fillDep = func(n *verNode) int {
		max := 0
		for _, c := range n.children {
			d := fillDep(c)
			if c.rec.kind != payFull && 1+d > max {
				max = 1 + d
			}
		}
		n.depBelow = max
		return max
	}
	for _, r := range roots {
		fillDep(r)
	}

	budget := lim
	var walk func(n *verNode, parentDepth int, parentContent []byte) error
	walk = func(n *verNode, parentDepth int, parentContent []byte) error {
		rec := &n.rec
		// Materialise this node from its parent's content.
		var content []byte
		switch rec.kind {
		case payFull:
			c, err := tx.heap.Read(rec.payload)
			if err != nil {
				return err
			}
			content = c
		case paySame:
			content = parentContent
		case payDelta:
			d, err := tx.heap.Read(rec.payload)
			if err != nil {
				return err
			}
			c, err := delta.Apply(parentContent, d)
			if err != nil {
				return err
			}
			content = c
		default:
			return fmt.Errorf("%w: payload kind %d", ErrCorrupt, rec.kind)
		}

		depth := 0
		dirty := false
		switch {
		case rec.kind == payFull:
			// Demote when cold (not latest, not a root), within the
			// anchor bound, affordable, and actually smaller.
			if budget > 0 && n.v != h.latest && !rec.dprev.IsNil() &&
				parentDepth+1+n.depBelow <= tx.opts.AnchorInterval {
				d := delta.Encode(parentContent, content)
				if len(d) < len(content) {
					if err := tx.heap.Update(rec.payload, d); err != nil {
						return err
					}
					rec.kind = payDelta
					rec.depth = uint16(parentDepth + 1)
					depth = parentDepth + 1
					dirty = true
					budget--
					stats.Demoted++
					stats.BytesSaved += int64(len(content) - len(d))
				}
			}
			if !dirty && budget <= 0 && n.v != h.latest && !rec.dprev.IsNil() &&
				parentDepth+1+n.depBelow <= tx.opts.AnchorInterval {
				stats.More = true
			}
		case parentDepth+1 > tx.opts.AnchorInterval:
			// Over-deep dependent: insert a full anchor here.
			if budget > 0 {
				if rec.kind == paySame {
					rid, err := tx.heap.Insert(content)
					if err != nil {
						return err
					}
					rec.payload = rid
				} else {
					if err := tx.heap.Update(rec.payload, content); err != nil {
						return err
					}
				}
				rec.kind = payFull
				rec.depth = 0
				rec.size = uint64(len(content))
				dirty = true
				budget--
				stats.Promoted++
			} else {
				// Budget cut: keep the (over-deep but readable) chain
				// and let the next pass anchor it.
				depth = parentDepth + 1
				if rec.depth != uint16(depth) {
					rec.depth = uint16(depth)
					dirty = true
				}
				stats.More = true
			}
		default:
			depth = parentDepth + 1
			if rec.depth != uint16(depth) {
				rec.depth = uint16(depth)
				dirty = true
			}
		}
		if dirty {
			if err := tx.storeVer(o, n.v, *rec); err != nil {
				return err
			}
		}
		for _, c := range n.children {
			if err := walk(c, depth, content); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0, nil); err != nil {
			return stats, err
		}
	}
	stats.Objects = 1
	if stats.Demoted+stats.Promoted > 0 {
		tx.saveRoots()
	}
	if m := tx.e.m; m != nil {
		m.CompactObjects.Inc()
		m.DeltaDemotions.Add(uint64(stats.Demoted))
		m.DeltaPromotions.Add(uint64(stats.Promoted))
		m.DeltaBytesSaved.Add(uint64(stats.BytesSaved))
	}
	return stats, nil
}

// CompactShard runs one bounded compaction pass over physical shard s,
// starting at the first object with oid >= from (NilOID starts at the
// beginning). At most lim demotions+promotions are committed in the one
// write transaction this makes — demotion is just another logged
// mutation, so a crash either keeps or loses the whole pass. Returns
// the resume cursor: NilOID when the shard's object table is exhausted.
func (e *Engine) CompactShard(s int, from oid.OID, lim int) (CompactStats, oid.OID, error) {
	if lim <= 0 {
		lim = 256
	}
	var (
		stats CompactStats
		next  oid.OID
	)
	start := time.Now()
	err := e.Write(func(tx *Tx) error {
		stats, next = CompactStats{}, oid.NilOID // reset on restart
		if s >= tx.n {
			return nil
		}
		b, err := tx.shardW(s)
		if err != nil {
			return err
		}
		if b.st.Root(rootObjTable) == oid.NilPage {
			return nil // merged-away or not-yet-provisioned shard
		}
		budget := lim
		var lo []byte
		if from != oid.NilOID {
			lo = objKey(from)
		}
		return b.objTable.Ascend(lo, nil, func(k, _ []byte) (bool, error) {
			o := oid.OID(binary.BigEndian.Uint64(k[:8]))
			st, err := b.compactObject(o, budget)
			if err != nil {
				return false, err
			}
			budget -= st.Demoted + st.Promoted
			stats.add(st)
			if st.More || budget <= 0 {
				// Resume at this object (More) or after it.
				if st.More {
					next = o
				} else {
					next = o + 1
				}
				stats.More = true
				return false, nil
			}
			return true, nil
		})
	})
	if err != nil {
		return stats, from, err
	}
	if m := e.m; m != nil {
		m.CompactNS.Observe(uint64(time.Since(start).Nanoseconds()))
		if next == oid.NilOID {
			m.CompactPasses.Inc()
		}
	}
	return stats, next, nil
}

// CompactAll sweeps every physical shard to completion in bounded
// transactions of at most lim mutations each — the deterministic driver
// behind ode.DB.Compact and the test batteries.
func (e *Engine) CompactAll(lim int) (CompactStats, error) {
	if lim <= 0 {
		lim = 256
	}
	var total CompactStats
	for s := 0; s < e.c.NumShards(); s++ {
		from := oid.NilOID
		for {
			st, next, err := e.CompactShard(s, from, lim)
			if err != nil {
				return total, err
			}
			st.More = false // budget cuts are internal to the loop
			total.add(st)
			if next == oid.NilOID {
				break
			}
			from = next
		}
	}
	return total, nil
}

// PayloadStats aggregates how version payloads are physically
// represented across the database — the space side of the delta tier's
// trade-off, reported by odedump and measured by odebench E17.
type PayloadStats struct {
	Full  int // versions stored as full payloads (anchors)
	Delta int // versions stored as deltas against their D-parent
	Same  int // versions sharing their D-parent's bytes outright

	FullBytes    int64 // payload heap bytes held by full payloads
	DeltaBytes   int64 // payload heap bytes held by deltas
	LogicalBytes int64 // sum of materialised content lengths
	MaxDepth     int   // deepest stored chain-depth hint
}

// HeapBytes returns the total payload heap footprint.
func (p PayloadStats) HeapBytes() int64 { return p.FullBytes + p.DeltaBytes }

// PayloadStats scans every physical shard's version index.
func (tx *Tx) PayloadStats() (PayloadStats, error) {
	var ps PayloadStats
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			return ps, err
		}
		if b.st.Root(rootObjTable) == oid.NilPage {
			continue
		}
		err = b.verIdx.Ascend(nil, nil, func(_, val []byte) (bool, error) {
			rec, err := decodeVerRec(val)
			if err != nil {
				return false, err
			}
			ps.LogicalBytes += int64(rec.size)
			if int(rec.depth) > ps.MaxDepth {
				ps.MaxDepth = int(rec.depth)
			}
			switch rec.kind {
			case payFull:
				ps.Full++
				raw, err := b.heap.Read(rec.payload)
				if err != nil {
					return false, err
				}
				ps.FullBytes += int64(len(raw))
			case payDelta:
				ps.Delta++
				raw, err := b.heap.Read(rec.payload)
				if err != nil {
					return false, err
				}
				ps.DeltaBytes += int64(len(raw))
			case paySame:
				ps.Same++
			}
			return true, nil
		})
		if err != nil {
			return ps, err
		}
	}
	return ps, nil
}

// PayloadStats reports payload representation totals as of the most
// recent commit.
func (e *Engine) PayloadStats() (PayloadStats, error) {
	var ps PayloadStats
	err := e.Read(func(tx *Tx) error {
		var err error
		ps, err = tx.PayloadStats()
		return err
	})
	return ps, err
}

// DemoteVersion demotes one version through the routing layer (odeshell
// surface; tests use it to build precise shapes).
func (tx *Tx) DemoteVersion(o oid.OID, v oid.VID) (bool, error) {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return false, err
	}
	return b.demoteVersion(o, v)
}

// PromoteVersion anchors one version as a full payload through the
// routing layer.
func (tx *Tx) PromoteVersion(o oid.OID, v oid.VID) (bool, error) {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return false, err
	}
	return b.promoteVersion(o, v)
}
