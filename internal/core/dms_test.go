package core

// TestDMSScenario reproduces the paper's §5 design example (F5 in
// DESIGN.md): an ALU chip with schematic, fault, and timing
// representations, modelled after the DMS design database the authors
// simulated. Representations are configurations over shared data
// objects; design evolution adds versions; static bindings keep old
// representations reproducible while dynamic bindings track the tip.

import (
	"testing"

	"ode/internal/oid"
)

func TestDMSScenario(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	tySchem := mustType(t, e, "SchematicData")
	tyVec := mustType(t, e, "Vectors")
	tyTim := mustType(t, e, "TimingCommands")

	var schematic, vectors, timing oid.OID
	var schemV0, vecV0 oid.VID

	// Initial design state: one version of each data object, and the
	// three representations as configurations (§5: "each representation
	// can be thought of as a configuration").
	w(t, e, func(tx *Tx) error {
		var err error
		schematic, schemV0, err = tx.Create(tySchem, []byte("alu schematic rev A"))
		if err != nil {
			return err
		}
		vectors, vecV0, err = tx.Create(tyVec, []byte("test vectors rev A"))
		if err != nil {
			return err
		}
		timing, _, err = tx.Create(tyTim, []byte("timing commands rev A"))
		if err != nil {
			return err
		}
		// Schematic representation: just the schematic, tracking latest.
		if err := tx.SaveConfig("alu/schematic", []Binding{
			{Slot: "schematic", Obj: schematic},
		}); err != nil {
			return err
		}
		// Fault representation: the schematic it was qualified against is
		// pinned (static); vectors track the latest.
		if err := tx.SaveConfig("alu/fault", []Binding{
			{Slot: "schematic", Obj: schematic, VID: schemV0},
			{Slot: "vectors", Obj: vectors},
		}); err != nil {
			return err
		}
		// Timing representation: schematic data (same object as in the
		// schematic representation), vectors (same as in fault), and the
		// timing commands — all dynamic.
		return tx.SaveConfig("alu/timing", []Binding{
			{Slot: "schematic", Obj: schematic},
			{Slot: "timing", Obj: timing},
			{Slot: "vectors", Obj: vectors},
		})
	})

	// Design evolution: the engineer revises the schematic twice (a
	// revision chain) and derives an alternative vector set.
	var schemV1, schemV2, vecAlt oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		schemV1, err = tx.NewVersion(schematic)
		if err != nil {
			return err
		}
		if err := tx.UpdateVersion(schematic, schemV1, []byte("alu schematic rev B")); err != nil {
			return err
		}
		schemV2, err = tx.NewVersion(schematic)
		if err != nil {
			return err
		}
		if err := tx.UpdateVersion(schematic, schemV2, []byte("alu schematic rev C")); err != nil {
			return err
		}
		vecAlt, err = tx.NewVersionFrom(vectors, vecV0)
		if err != nil {
			return err
		}
		return tx.UpdateVersion(vectors, vecAlt, []byte("test vectors alt B"))
	})

	w(t, e, func(tx *Tx) error {
		// The schematic representation follows the tip.
		rs, err := tx.ResolveConfig("alu/schematic")
		if err != nil {
			return err
		}
		if rs[0].VID != schemV2 {
			t.Fatalf("schematic rep at %v, want tip %v", rs[0].VID, schemV2)
		}
		// The fault representation still sees the schematic it was
		// qualified against (static binding), but the newest vectors.
		rs, err = tx.ResolveConfig("alu/fault")
		if err != nil {
			return err
		}
		byName := map[string]Resolved{}
		for _, r := range rs {
			byName[r.Slot] = r
		}
		if byName["schematic"].VID != schemV0 {
			t.Fatalf("fault rep schematic drifted to %v", byName["schematic"].VID)
		}
		if byName["vectors"].VID != vecAlt {
			t.Fatalf("fault rep vectors = %v, want %v", byName["vectors"].VID, vecAlt)
		}
		content, err := tx.ReadVersion(schematic, byName["schematic"].VID)
		if err != nil || string(content) != "alu schematic rev A" {
			t.Fatalf("pinned schematic content: %q %v", content, err)
		}
		return nil
	})

	// A release context fixes default versions for the whole design
	// (§5: "contexts may also be created to specify default versions").
	w(t, e, func(tx *Tx) error {
		return tx.SetContext("alu/release-1", map[oid.OID]oid.VID{
			schematic: schemV1,
			vectors:   vecV0,
		})
	})
	w(t, e, func(tx *Tx) error {
		v, err := tx.ResolveInContext("alu/release-1", schematic)
		if err != nil || v != schemV1 {
			t.Fatalf("release context schematic = %v, %v", v, err)
		}
		// Objects the context does not pin resolve to their latest.
		v, err = tx.ResolveInContext("alu/release-1", timing)
		if err != nil {
			return err
		}
		latest, _ := tx.Latest(timing)
		if v != latest {
			t.Fatalf("unpinned resolve = %v, want %v", v, latest)
		}
		content, err := tx.ReadVersion(schematic, schemV1)
		if err != nil || string(content) != "alu schematic rev B" {
			t.Fatalf("release content: %q %v", content, err)
		}
		return nil
	})

	// The derivation structure matches the design narrative.
	w(t, e, func(tx *Tx) error {
		hist, err := tx.History(schematic, schemV2)
		if err != nil || len(hist) != 3 {
			t.Fatalf("schematic history = %v, %v", hist, err)
		}
		leaves, err := tx.Leaves(vectors)
		if err != nil || len(leaves) != 1 || leaves[0] != vecAlt {
			// vecV0 has one child (vecAlt), so the only leaf is vecAlt.
			t.Fatalf("vector leaves = %v, %v", leaves, err)
		}
		return tx.CheckAll()
	})
}
