package core

// Property tests: a random operation sequence is applied to (a) an
// in-memory model of the paper's semantics, (b) a FullCopy engine, and
// (c) a DeltaChain engine. After every burst the three must agree on all
// version contents, latest bindings, derivation parents, and temporal
// order — and both engines must pass the full invariant check. This is
// the strongest statement that delta storage is a pure storage policy
// with no semantic footprint.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ode/internal/oid"
)

// modelObject is the reference implementation of a versioned object.
type modelObject struct {
	versions map[int][]byte // seq → content
	dprev    map[int]int    // seq → parent seq (-1 root)
	temporal []int          // alive seqs in creation order
	alive    bool
}

func (m *modelObject) latest() int { return m.temporal[len(m.temporal)-1] }

func TestPolicyEquivalenceRandomised(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPolicyEquivalence(t, seed)
		})
	}
}

func runPolicyEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	eFull := newEngine(t, Options{Policy: FullCopy})
	eDelta := newEngine(t, Options{Policy: DeltaChain, MaxChain: 4})
	tyF := mustType(t, eFull, "X")
	tyD := mustType(t, eDelta, "X")

	// Engine vids are allocated identically (same op sequence), so we
	// can map model (objIdx, seq) pairs to each engine's ids directly.
	type ids struct {
		full, delta struct {
			o uint64
			v map[int]uint64
		}
	}
	var objects []*modelObject
	var objIDs []*ids

	randContent := func() []byte {
		b := make([]byte, rng.Intn(600)+1)
		rng.Read(b)
		return b
	}
	aliveObjects := func() []int {
		var out []int
		for i, m := range objects {
			if m.alive {
				out = append(out, i)
			}
		}
		return out
	}

	const bursts = 12
	const opsPerBurst = 25
	nextSeq := 0

	for burst := 0; burst < bursts; burst++ {
		for op := 0; op < opsPerBurst; op++ {
			alive := aliveObjects()
			choice := rng.Intn(10)
			switch {
			case choice < 2 || len(alive) == 0: // create
				content := randContent()
				m := &modelObject{
					versions: map[int][]byte{},
					dprev:    map[int]int{},
					alive:    true,
				}
				seq := nextSeq
				nextSeq++
				m.versions[seq] = content
				m.dprev[seq] = -1
				m.temporal = []int{seq}
				objects = append(objects, m)
				id := &ids{}
				id.full.v = map[int]uint64{}
				id.delta.v = map[int]uint64{}
				applyCreate := func(e *Engine, tyID uint32, o *uint64, vm map[int]uint64) {
					if err := e.Write(func(tx *Tx) error {
						oo, vv, err := tx.Create(toTypeID(tyID), content)
						if err != nil {
							return err
						}
						*o = uint64(oo)
						vm[seq] = uint64(vv)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
				applyCreate(eFull, uint32(tyF), &id.full.o, id.full.v)
				applyCreate(eDelta, uint32(tyD), &id.delta.o, id.delta.v)
				objIDs = append(objIDs, id)

			case choice < 5: // newversion (from latest or from a random base)
				oi := alive[rng.Intn(len(alive))]
				m, id := objects[oi], objIDs[oi]
				fromLatest := rng.Intn(2) == 0
				base := m.latest()
				if !fromLatest {
					base = m.temporal[rng.Intn(len(m.temporal))]
				}
				seq := nextSeq
				nextSeq++
				m.versions[seq] = append([]byte(nil), m.versions[base]...)
				m.dprev[seq] = base
				m.temporal = append(m.temporal, seq)
				applyNV := func(e *Engine, o uint64, vm map[int]uint64) {
					if err := e.Write(func(tx *Tx) error {
						vv, err := tx.NewVersionFrom(toOID(o), toVID(vm[base]))
						if err != nil {
							return err
						}
						vm[seq] = uint64(vv)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
				applyNV(eFull, id.full.o, id.full.v)
				applyNV(eDelta, id.delta.o, id.delta.v)

			case choice < 8: // update a random live version in place
				oi := alive[rng.Intn(len(alive))]
				m, id := objects[oi], objIDs[oi]
				seq := m.temporal[rng.Intn(len(m.temporal))]
				content := randContent()
				m.versions[seq] = content
				applyUp := func(e *Engine, o uint64, vm map[int]uint64) {
					if err := e.Write(func(tx *Tx) error {
						return tx.UpdateVersion(toOID(o), toVID(vm[seq]), content)
					}); err != nil {
						t.Fatal(err)
					}
				}
				applyUp(eFull, id.full.o, id.full.v)
				applyUp(eDelta, id.delta.o, id.delta.v)

			case choice < 9: // delete one version
				oi := alive[rng.Intn(len(alive))]
				m, id := objects[oi], objIDs[oi]
				seq := m.temporal[rng.Intn(len(m.temporal))]
				applyDel := func(e *Engine, o uint64, vm map[int]uint64) {
					if err := e.Write(func(tx *Tx) error {
						return tx.DeleteVersion(toOID(o), toVID(vm[seq]))
					}); err != nil {
						t.Fatal(err)
					}
				}
				applyDel(eFull, id.full.o, id.full.v)
				applyDel(eDelta, id.delta.o, id.delta.v)
				// Model: splice.
				if len(m.temporal) == 1 {
					m.alive = false
					m.temporal = nil
				} else {
					parent := m.dprev[seq]
					for s, p := range m.dprev {
						if p == seq {
							m.dprev[s] = parent
						}
					}
					for i, s := range m.temporal {
						if s == seq {
							m.temporal = append(m.temporal[:i], m.temporal[i+1:]...)
							break
						}
					}
					delete(m.versions, seq)
					delete(m.dprev, seq)
				}

			default: // delete whole object
				oi := alive[rng.Intn(len(alive))]
				m, id := objects[oi], objIDs[oi]
				applyDO := func(e *Engine, o uint64) {
					if err := e.Write(func(tx *Tx) error {
						return tx.DeleteObject(toOID(o))
					}); err != nil {
						t.Fatal(err)
					}
				}
				applyDO(eFull, id.full.o)
				applyDO(eDelta, id.delta.o)
				m.alive = false
				m.temporal = nil
			}
		}

		// Burst validation: model vs both engines.
		for oi, m := range objects {
			id := objIDs[oi]
			for which, pair := range []struct {
				e *Engine
				o uint64
				v map[int]uint64
			}{
				{eFull, id.full.o, id.full.v},
				{eDelta, id.delta.o, id.delta.v},
			} {
				err := pair.e.Read(func(tx *Tx) error {
					exists, err := tx.Exists(toOID(pair.o))
					if err != nil {
						return err
					}
					if exists != m.alive {
						t.Fatalf("burst %d eng %d obj %d: exists=%v model=%v", burst, which, oi, exists, m.alive)
					}
					if !m.alive {
						return nil
					}
					// Latest binding.
					latest, err := tx.Latest(toOID(pair.o))
					if err != nil {
						return err
					}
					if uint64(latest) != pair.v[m.latest()] {
						t.Fatalf("burst %d eng %d obj %d: latest %v != model %d", burst, which, oi, latest, m.latest())
					}
					// All contents and derivation parents.
					for seq, want := range m.versions {
						got, err := tx.ReadVersion(toOID(pair.o), toVID(pair.v[seq]))
						if err != nil {
							return fmt.Errorf("obj %d seq %d: %w", oi, seq, err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("burst %d eng %d obj %d seq %d: content mismatch", burst, which, oi, seq)
						}
						d, err := tx.Dprev(toOID(pair.o), toVID(pair.v[seq]))
						if err != nil {
							return err
						}
						wantD := uint64(0)
						if p := m.dprev[seq]; p >= 0 {
							wantD = pair.v[p]
						}
						if uint64(d) != wantD {
							t.Fatalf("burst %d eng %d obj %d seq %d: dprev %v != %d", burst, which, oi, seq, d, wantD)
						}
					}
					// Temporal order.
					vs, err := tx.Versions(toOID(pair.o))
					if err != nil {
						return err
					}
					if len(vs) != len(m.temporal) {
						t.Fatalf("burst %d eng %d obj %d: %d versions vs model %d", burst, which, oi, len(vs), len(m.temporal))
					}
					for i, s := range m.temporal {
						if uint64(vs[i]) != pair.v[s] {
							t.Fatalf("burst %d eng %d obj %d: temporal[%d] mismatch", burst, which, oi, i)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		// Full invariant sweep on both engines.
		if err := eFull.Read(func(tx *Tx) error { return tx.CheckAll() }); err != nil {
			t.Fatalf("burst %d FullCopy invariants: %v", burst, err)
		}
		if err := eDelta.Read(func(tx *Tx) error { return tx.CheckAll() }); err != nil {
			t.Fatalf("burst %d DeltaChain invariants: %v", burst, err)
		}
	}
}

// Tiny conversion helpers keep the table-driven loops readable.
func toOID(v uint64) oid.OID       { return oid.OID(v) }
func toVID(v uint64) oid.VID       { return oid.VID(v) }
func toTypeID(v uint32) oid.TypeID { return oid.TypeID(v) }
