package core

// Online resharding, engine half. The transaction layer owns the
// orchestration (txn.Coordinator.Reshard: growing the physical layout,
// flipping the logical count, committing one map flip per migrated
// chunk); this file supplies the three hooks that know what a shard's
// data actually IS:
//
//   - reshardInit provisions every shard that will allocate under the
//     target count: fresh shards get the seven engine trees, revived
//     shards (a split after an earlier merge) get their unminted id
//     tail back;
//   - reshardMoves plans the range migrations from the CURRENT map, so
//     a reshard interrupted by a crash resumes by replanning — every
//     rule is a function of the map alone, never of the old count;
//   - migrateChunk copies one bounded slice of objects and vid-index
//     entries from source to destination inside the caller's write
//     transaction, so the chunk's data motion and its map flip commit
//     atomically through the ordinary 2PC path.
//
// An object moves whole: header, version records, payload heap records
// (delta chains never cross objects), temporal-index entries, extent
// entry and annotations all travel together. The vid→oid reverse index
// routes by vid VALUE, so its entries in the moving range migrate
// independently of the objects they point at.

import (
	"encoding/binary"
	"fmt"

	"ode/internal/btree"
	"ode/internal/oid"
	"ode/internal/storage"
	"ode/internal/txn"
)

// Chunk bounds: one migration transaction moves at most this many
// objects and this many vid-index entries. Small enough to keep the
// per-chunk write set (and writer-lock hold time on both shards)
// bounded under live traffic; large enough that a reshard is not
// dominated by per-transaction commit cost.
const (
	reshardChunkObjects  = 64
	reshardChunkVersions = 256
)

// Reshard changes the database's logical shard count to target while
// serving traffic, migrating data in small transactional chunks. See
// txn.Coordinator.Reshard for the protocol and crash-safety argument.
func (e *Engine) Reshard(target int) error {
	err := e.c.Reshard(target, txn.ReshardHooks{
		Init:    e.reshardInit,
		Moves:   e.reshardMoves,
		Migrate: e.migrateChunk,
	})
	if err != nil {
		// A failed migration transaction rolled back under the shared
		// heap free-space caches, exactly like an aborted engine write.
		e.resetHeapSpaces()
	}
	return err
}

// ReshardProgress reports the live progress of an in-flight Reshard.
func (e *Engine) ReshardProgress() txn.ReshardProgress {
	return e.c.ReshardProgress()
}

// reshardInit makes every shard below target allocatable: fresh shards
// (just created by the grow step) get the full engine tree set, and
// revived shards — slots that allocated before an earlier merge folded
// them away — get back the tail of their id space past everything they
// ever minted. Runs as one ordinary write transaction; the tail
// assignments ride the transaction's shard-map flip.
func (e *Engine) reshardInit(target int) error {
	return e.c.Write(func(w *txn.WriteTx) error {
		if w.Restarted() {
			e.resetHeapSpaces()
		}
		m := w.Map()
		changed := false
		for s := 0; s < target; s++ {
			if m.Allocatable(s) {
				continue
			}
			v, err := w.Join(s)
			if err != nil {
				return err
			}
			lo := storage.SlotBase(s)
			if v.Root(rootObjTable) == oid.NilPage {
				for _, slot := range []int{
					rootObjTable, rootVerIdx, rootTempIdx, rootCatalog,
					rootExtent, rootConfig, rootVidIdx,
				} {
					t, err := btree.Create(v)
					if err != nil {
						return err
					}
					v.SetRoot(slot, t.Root())
				}
			} else {
				// Revived shard: ids it minted before the merge may live
				// anywhere now, so only the slot tail past its counter
				// high-water mark is safely its own again.
				max := v.Counter(ctrOID)
				if c := v.Counter(ctrVID); c > max {
					max = c
				}
				lo += max + 1
			}
			hi := storage.SlotEnd(s) // 0 for the top slot: end of id space
			if hi != 0 && lo >= hi {
				continue // slot's id space exhausted; stays non-allocatable
			}
			m = m.Assign(lo, hi, s)
			changed = true
		}
		if changed {
			w.SetShardMap(m)
		}
		return nil
	})
}

// reshardMoves plans the range migrations that bring the CURRENT map to
// the target shape. Two mandatory rules, both functions of the map
// alone so an interrupted reshard replans correctly on resume:
//
//   - merge: every range owned by a shard >= target folds onto shard
//     owner%target;
//   - restoration: a range lying in slot s's home id space but owned by
//     a LOWER shard moves back to s when s allocates again (s < target)
//     — an earlier merge parked it there; owner > s means a deliberate
//     load-balance placement and is left alone.
//
// Plus one best-effort rule that is deliberately NOT resume-safe (it
// reads the pre-split count, which a resumed run no longer sees): on a
// split, the upper half of each old shard's minted ids moves to its new
// partner shard, so a split actually spreads existing load.
func (e *Engine) reshardMoves(oldN, target int) ([]txn.ReshardStep, error) {
	var steps []txn.ReshardStep
	ranges := e.c.Map().Ranges()
	for i, r := range ranges {
		rHi := uint64(0) // 0 = end of id space
		if i+1 < len(ranges) {
			rHi = ranges[i+1].Start
		}
		if r.Shard >= target {
			steps = append(steps, txn.ReshardStep{
				Lo: r.Start, Hi: rHi, Src: r.Shard, Dst: r.Shard % target,
			})
			continue
		}
		// Restoration: clip the range against the home span of every
		// revived slot above its owner.
		s := storage.SlotOf(r.Start)
		if s <= r.Shard {
			s = r.Shard + 1
		}
		for ; s < target; s++ {
			homeLo, homeHi := storage.SlotBase(s), storage.SlotEnd(s)
			if rHi != 0 && homeLo >= rHi {
				break // range ends before this slot
			}
			lo := r.Start
			if homeLo > lo {
				lo = homeLo
			}
			hi := rHi
			if hi == 0 || (homeHi != 0 && homeHi < hi) {
				hi = homeHi
			}
			if hi != 0 && lo >= hi {
				continue
			}
			steps = append(steps, txn.ReshardStep{Lo: lo, Hi: hi, Src: r.Shard, Dst: s})
		}
	}
	// Load-balance on a split: shard s hands the upper half of its minted
	// ids to its new partner s+oldN. Skipped entirely on resume (then
	// oldN == target) and for partners beyond the target.
	if target > oldN {
		err := e.c.Read(func(rd *txn.ReadTx) error {
			for s := 0; s < oldN && s+oldN < target; s++ {
				v := rd.View(s)
				// Cut at the OBJECT-counter midpoint — vid counters run
				// far ahead of oid counters (every version mints one), so
				// a max-counter midpoint would land past every object and
				// move only reverse-index entries. The range still runs to
				// the counter high-water mark so the vid tail travels too.
				oidRaw := v.Counter(ctrOID)
				if oidRaw < 2 {
					continue // nothing worth splitting
				}
				maxRaw := oidRaw
				if c := v.Counter(ctrVID); c > maxRaw {
					maxRaw = c
				}
				steps = append(steps, txn.ReshardStep{
					Lo:  storage.SlotBase(s) + oidRaw/2,
					Hi:  storage.SlotBase(s) + maxRaw + 1,
					Src: s,
					Dst: s + oldN,
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return steps, nil
}

// migrateChunk moves one bounded slice of step's range — objects and
// vid-index entries with ids in [cursor, boundary) — from step.Src to
// step.Dst inside the caller's write transaction. The returned boundary
// is chosen so the chunk never exceeds reshardChunkObjects objects or
// reshardChunkVersions vid entries: the smaller of the two cut points
// (0 meaning the range ran out at the end of the id space).
func (e *Engine) migrateChunk(w *txn.WriteTx, step txn.ReshardStep, cursor uint64) (txn.MigrateResult, error) {
	if w.Restarted() {
		e.resetHeapSpaces()
	}
	tx := &Tx{
		e:         e,
		w:         w,
		writable:  true,
		n:         w.NumShards(),
		rmap:      w.Map(),
		shards:    make([]*shardTx, w.NumShards()),
		lastAlloc: -1,
	}
	// Join both shards up front in ascending order: the migration then
	// cannot hit a cross-order restart mid-copy.
	lo, hi := step.Src, step.Dst
	if lo > hi {
		lo, hi = hi, lo
	}
	if _, err := tx.shardW(lo); err != nil {
		return txn.MigrateResult{}, err
	}
	if _, err := tx.shardW(hi); err != nil {
		return txn.MigrateResult{}, err
	}
	src, dst := tx.shards[step.Src], tx.shards[step.Dst]

	oids, err := collectRangeIDs(src.objTable, cursor, step.Hi, reshardChunkObjects)
	if err != nil {
		return txn.MigrateResult{}, err
	}
	vids, err := collectRangeIDs(src.vidIdx, cursor, step.Hi, reshardChunkVersions)
	if err != nil {
		return txn.MigrateResult{}, err
	}
	// Cut points: where each collection would overflow its chunk bound,
	// or the end of the range (step.Hi, possibly 0 = end of id space).
	oLim, vLim := step.Hi, step.Hi
	if len(oids) > reshardChunkObjects {
		oLim = oids[reshardChunkObjects]
		oids = oids[:reshardChunkObjects]
	}
	if len(vids) > reshardChunkVersions {
		vLim = vids[reshardChunkVersions]
		vids = vids[:reshardChunkVersions]
	}
	bound := oLim
	if bound == 0 || (vLim != 0 && vLim < bound) {
		bound = vLim
	}

	res := txn.MigrateResult{Boundary: bound}
	for _, id := range oids {
		if bound != 0 && id >= bound {
			continue
		}
		nv, err := moveObject(src, dst, oid.OID(id))
		if err != nil {
			return txn.MigrateResult{}, err
		}
		res.Objects++
		res.Versions += nv
	}
	for _, id := range vids {
		if bound != 0 && id >= bound {
			continue
		}
		if err := moveVidEntry(src, dst, oid.VID(id)); err != nil {
			return txn.MigrateResult{}, err
		}
	}
	src.saveRoots()
	dst.saveRoots()
	return res, nil
}

// collectRangeIDs returns up to limit+1 distinct 8-byte-prefixed ids in
// [lo, hi) from t, in order (hi == 0 means unbounded). The limit+1'th
// id, when present, becomes the chunk's cut point.
func collectRangeIDs(t *btree.Tree, lo, hi uint64, limit int) ([]uint64, error) {
	var from, to [8]byte
	binary.BigEndian.PutUint64(from[:], lo)
	var toKey []byte
	if hi != 0 {
		binary.BigEndian.PutUint64(to[:], hi)
		toKey = to[:]
	}
	var out []uint64
	err := t.Ascend(from[:], toKey, func(k, _ []byte) (bool, error) {
		id := binary.BigEndian.Uint64(k[:8])
		if len(out) > 0 && out[len(out)-1] == id {
			return true, nil
		}
		out = append(out, id)
		return len(out) <= limit, nil
	})
	return out, err
}

// moveObject transplants one whole object from src to dst: header,
// version records (re-homing each payload heap record and rewriting its
// RID; shared payloads move once), temporal-index entries, extent entry
// and annotations. Returns the number of version records moved.
func moveObject(src, dst *shardTx, o oid.OID) (int, error) {
	hraw, ok, err := src.objTable.Get(objKey(o))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: migrating %v", ErrNoObject, o)
	}
	h, err := decodeObjHeader(hraw)
	if err != nil {
		return 0, err
	}

	type entry struct{ k, val []byte }
	var vers []entry
	err = src.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		vers = append(vers, entry{append([]byte(nil), k...), append([]byte(nil), val...)})
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	movedRID := map[oid.RID]oid.RID{}
	for _, ve := range vers {
		rec, err := decodeVerRec(ve.val)
		if err != nil {
			return 0, err
		}
		if !rec.payload.IsNil() {
			nrid, done := movedRID[rec.payload]
			if !done {
				raw, err := src.heap.Read(rec.payload)
				if err != nil {
					return 0, err
				}
				nrid, err = dst.heap.Insert(raw)
				if err != nil {
					return 0, err
				}
				if err := src.heap.Delete(rec.payload); err != nil {
					return 0, err
				}
				movedRID[rec.payload] = nrid
			}
			rec.payload = nrid
		}
		if err := dst.verIdx.Put(ve.k, rec.encode()); err != nil {
			return 0, err
		}
		if _, err := src.verIdx.Delete(ve.k); err != nil {
			return 0, err
		}
	}

	var temps []entry
	err = src.tempIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		temps = append(temps, entry{append([]byte(nil), k...), append([]byte(nil), val...)})
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, te := range temps {
		if err := dst.tempIdx.Put(te.k, te.val); err != nil {
			return 0, err
		}
		if _, err := src.tempIdx.Delete(te.k); err != nil {
			return 0, err
		}
	}

	var annKeys [][]byte
	err = src.config.AscendPrefix(annObjPrefix(o), func(k, _ []byte) (bool, error) {
		annKeys = append(annKeys, append([]byte(nil), k...))
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	for _, k := range annKeys {
		raw, ok, err := src.getConfigValue(k)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		if err := dst.putConfigValue(k, raw); err != nil {
			return 0, err
		}
		if err := src.deleteConfigValue(k); err != nil {
			return 0, err
		}
	}

	if err := dst.extent.Put(extKey(h.typ, o), nil); err != nil {
		return 0, err
	}
	if _, err := src.extent.Delete(extKey(h.typ, o)); err != nil {
		return 0, err
	}
	if err := dst.objTable.Put(objKey(o), hraw); err != nil {
		return 0, err
	}
	if _, err := src.objTable.Delete(objKey(o)); err != nil {
		return 0, err
	}

	src.st.SetCounter(ctrObjects, src.st.Counter(ctrObjects)-1)
	dst.st.SetCounter(ctrObjects, dst.st.Counter(ctrObjects)+1)
	src.st.SetCounter(ctrVersion, src.st.Counter(ctrVersion)-uint64(len(vers)))
	dst.st.SetCounter(ctrVersion, dst.st.Counter(ctrVersion)+uint64(len(vers)))
	return len(vers), nil
}

// moveVidEntry transplants one vid→oid reverse-index entry. The entry
// routes by the vid's value, independent of where its object lives.
func moveVidEntry(src, dst *shardTx, v oid.VID) error {
	raw, ok, err := src.vidIdx.Get(vidKey(v))
	if err != nil || !ok {
		return err
	}
	if err := dst.vidIdx.Put(vidKey(v), append([]byte(nil), raw...)); err != nil {
		return err
	}
	_, err = src.vidIdx.Delete(vidKey(v))
	return err
}
