package core

import (
	"fmt"
	"sort"
	"strings"

	"ode/internal/oid"
)

// Render produces a deterministic textual picture of one object's
// version graph in the paper's vocabulary: the derived-from tree drawn
// with solid branches, and the temporal ordering drawn as a dotted
// chain. The figure golden tests (figures_test.go) compare these
// renderings against the states in the paper's §4 walkthrough, and
// odedump prints them.
func (tx *shardTx) Render(o oid.OID) (string, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return "", err
	}
	name, _, err := tx.rt.TypeName(h.typ)
	if err != nil {
		return "", err
	}
	versions, err := tx.Versions(o)
	if err != nil {
		return "", err
	}
	children := map[oid.VID][]oid.VID{}
	var roots []oid.VID
	for _, v := range versions {
		rec, err := tx.loadVer(o, v)
		if err != nil {
			return "", err
		}
		if rec.dprev.IsNil() {
			roots = append(roots, v)
		} else {
			children[rec.dprev] = append(children[rec.dprev], v)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "%v (%s) latest=%v versions=%d\n", o, name, h.latest, h.count)
	b.WriteString("derived-from:\n")
	var draw func(v oid.VID, prefix string, last bool)
	draw = func(v oid.VID, prefix string, last bool) {
		connector := "├── "
		childPrefix := prefix + "│   "
		if last {
			connector = "└── "
			childPrefix = prefix + "    "
		}
		marker := ""
		if v == h.latest {
			marker = " *latest"
		}
		fmt.Fprintf(&b, "%s%s%v%s\n", prefix, connector, v, marker)
		cs := children[v]
		for i, c := range cs {
			draw(c, childPrefix, i == len(cs)-1)
		}
	}
	for i, r := range roots {
		draw(r, "  ", i == len(roots)-1)
	}
	b.WriteString("temporal:  ")
	for i, v := range versions {
		if i > 0 {
			b.WriteString(" ··▶ ")
		}
		fmt.Fprintf(&b, "%v", v)
	}
	b.WriteString("\n")
	return b.String(), nil
}
