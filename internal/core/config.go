package core

import (
	"fmt"
	"sort"

	"ode/internal/codec"
	"ode/internal/oid"
)

// Configurations and contexts are the paper's §5 policies, built from
// the primitives exactly as the DMS example builds them: a
// configuration names a composition of specific versions of component
// objects (a "representation" of a complex object); a context supplies
// default versions so generic references can be resolved against a
// chosen baseline rather than the latest.

// Config tree key prefixes.
const (
	cfgPrefix = "c:" // c:<name> → encoded bindings
	ctxPrefix = "x:" // x:<name> → encoded default-version map
)

// Binding ties a named slot of a configuration to a component. A nil VID
// is a dynamic binding (resolves to the latest version at use time); a
// set VID is a static binding (pins that version forever) — the paper's
// "versions in a configuration can be bound statically or dynamically".
type Binding struct {
	Slot string
	Obj  oid.OID
	VID  oid.VID // NilVID = dynamic
}

// Resolved is a binding after resolution: always a concrete version.
type Resolved struct {
	Slot string
	Obj  oid.OID
	VID  oid.VID
}

func cfgKey(name string) []byte { return append([]byte(cfgPrefix), name...) }
func ctxKey(name string) []byte { return append([]byte(ctxPrefix), name...) }

// Config tree values are prefixed with a representation tag: large
// configurations and contexts spill into the record heap because B+tree
// values are size-capped.
const (
	cfgInline   = 0 // tag byte followed by the raw encoding
	cfgIndirect = 1 // tag byte followed by a packed RID
)

// putConfigValue stores raw under key, spilling to the heap when it
// exceeds the tree's value budget, and frees any heap record the key's
// previous value used.
func (tx *shardTx) putConfigValue(key, raw []byte) error {
	if err := tx.dropConfigIndirect(key); err != nil {
		return err
	}
	if len(raw)+1 <= tx.config.MaxValueSize() {
		return tx.config.Put(key, append([]byte{cfgInline}, raw...))
	}
	rid, err := tx.heap.Insert(raw)
	if err != nil {
		return err
	}
	packed := rid.Pack()
	return tx.config.Put(key, append([]byte{cfgIndirect}, packed[:]...))
}

// getConfigValue loads a value stored by putConfigValue.
func (tx *shardTx) getConfigValue(key []byte) ([]byte, bool, error) {
	v, ok, err := tx.config.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	if len(v) == 0 {
		return nil, false, fmt.Errorf("%w: empty config value", ErrCorrupt)
	}
	switch v[0] {
	case cfgInline:
		return v[1:], true, nil
	case cfgIndirect:
		if len(v) != 7 {
			return nil, false, fmt.Errorf("%w: bad indirect config value", ErrCorrupt)
		}
		raw, err := tx.heap.Read(oid.UnpackRID(v[1:7]))
		return raw, err == nil, err
	default:
		return nil, false, fmt.Errorf("%w: config value tag %d", ErrCorrupt, v[0])
	}
}

// dropConfigIndirect frees the heap record behind key's current value,
// if it has one.
func (tx *shardTx) dropConfigIndirect(key []byte) error {
	v, ok, err := tx.config.Get(key)
	if err != nil || !ok {
		return err
	}
	if len(v) == 7 && v[0] == cfgIndirect {
		return tx.heap.Delete(oid.UnpackRID(v[1:7]))
	}
	return nil
}

// deleteConfigValue removes key and any heap spill.
func (tx *shardTx) deleteConfigValue(key []byte) error {
	if err := tx.dropConfigIndirect(key); err != nil {
		return err
	}
	_, err := tx.config.Delete(key)
	return err
}

func encodeBindings(bs []Binding) []byte {
	w := codec.NewWriter(16 + 24*len(bs))
	w.UVarint(uint64(len(bs)))
	for _, b := range bs {
		w.String32(b.Slot)
		w.UVarint(uint64(b.Obj))
		w.UVarint(uint64(b.VID))
	}
	return w.Bytes()
}

func decodeBindings(raw []byte) ([]Binding, error) {
	r := codec.NewReader(raw)
	n := int(r.UVarint())
	out := make([]Binding, 0, n)
	for i := 0; i < n; i++ {
		b := Binding{
			Slot: r.String32(),
			Obj:  oid.OID(r.UVarint()),
			VID:  oid.VID(r.UVarint()),
		}
		out = append(out, b)
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: configuration: %v", ErrCorrupt, r.Err())
	}
	return out, nil
}

// SaveConfig stores (or replaces) a named configuration. Bindings are
// normalised to slot order. Static bindings are validated against live
// versions; dynamic bindings against live objects.
func (tx *shardTx) SaveConfig(name string, bindings []Binding) error {
	if name == "" {
		return fmt.Errorf("ode: empty configuration name")
	}
	bs := append([]Binding(nil), bindings...)
	sort.Slice(bs, func(i, j int) bool { return bs[i].Slot < bs[j].Slot })
	for _, b := range bs {
		if b.VID.IsNil() {
			if ok, err := tx.rt.Exists(b.Obj); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("%w: %v in configuration %q", ErrNoObject, b.Obj, name)
			}
			continue
		}
		if _, err := tx.rt.loadVerOf(b.Obj, b.VID); err != nil {
			return fmt.Errorf("configuration %q slot %q: %w", name, b.Slot, err)
		}
	}
	if err := tx.putConfigValue(cfgKey(name), encodeBindings(bs)); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// GetConfig returns a configuration's raw bindings.
func (tx *shardTx) GetConfig(name string) ([]Binding, bool, error) {
	raw, ok, err := tx.getConfigValue(cfgKey(name))
	if err != nil || !ok {
		return nil, false, err
	}
	bs, err := decodeBindings(raw)
	return bs, err == nil, err
}

// ResolveConfig resolves a configuration to concrete versions: static
// bindings keep their pinned vid; dynamic bindings bind to the latest
// version at call time (late binding).
func (tx *shardTx) ResolveConfig(name string) ([]Resolved, error) {
	bs, ok, err := tx.GetConfig(name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("ode: no configuration %q", name)
	}
	out := make([]Resolved, 0, len(bs))
	for _, b := range bs {
		v := b.VID
		if v.IsNil() {
			v, err = tx.rt.Latest(b.Obj)
			if err != nil {
				return nil, fmt.Errorf("configuration %q slot %q: %w", name, b.Slot, err)
			}
		}
		out = append(out, Resolved{Slot: b.Slot, Obj: b.Obj, VID: v})
	}
	return out, nil
}

// DeleteConfig removes a configuration; unknown names are not an error.
func (tx *shardTx) DeleteConfig(name string) error {
	if err := tx.deleteConfigValue(cfgKey(name)); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// Configs lists configuration names in order.
func (tx *shardTx) Configs() ([]string, error) {
	var out []string
	err := tx.config.AscendPrefix([]byte(cfgPrefix), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(cfgPrefix):]))
		return true, nil
	})
	return out, err
}

// --- contexts ---

// SetContext stores a context: a set of default versions, one per
// object. Dereferencing an object id "in" a context yields the context's
// pinned version when present, the latest otherwise.
func (tx *shardTx) SetContext(name string, defaults map[oid.OID]oid.VID) error {
	if name == "" {
		return fmt.Errorf("ode: empty context name")
	}
	objs := make([]oid.OID, 0, len(defaults))
	for o := range defaults {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	w := codec.NewWriter(16 + 16*len(objs))
	w.UVarint(uint64(len(objs)))
	for _, o := range objs {
		v := defaults[o]
		if _, err := tx.rt.loadVerOf(o, v); err != nil {
			return fmt.Errorf("context %q: %w", name, err)
		}
		w.UVarint(uint64(o))
		w.UVarint(uint64(v))
	}
	if err := tx.putConfigValue(ctxKey(name), w.Bytes()); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// GetContext returns a context's default-version map.
func (tx *shardTx) GetContext(name string) (map[oid.OID]oid.VID, bool, error) {
	raw, ok, err := tx.getConfigValue(ctxKey(name))
	if err != nil || !ok {
		return nil, false, err
	}
	r := codec.NewReader(raw)
	n := int(r.UVarint())
	out := make(map[oid.OID]oid.VID, n)
	for i := 0; i < n; i++ {
		o := oid.OID(r.UVarint())
		v := oid.VID(r.UVarint())
		out[o] = v
	}
	if r.Err() != nil {
		return nil, false, fmt.Errorf("%w: context: %v", ErrCorrupt, r.Err())
	}
	return out, true, nil
}

// ResolveInContext dereferences an object id under a context: the
// context's default version when the context pins one, the latest
// otherwise. An empty context name resolves to the latest directly.
func (tx *shardTx) ResolveInContext(ctx string, o oid.OID) (oid.VID, error) {
	if ctx != "" {
		m, ok, err := tx.GetContext(ctx)
		if err != nil {
			return oid.NilVID, err
		}
		if !ok {
			return oid.NilVID, fmt.Errorf("ode: no context %q", ctx)
		}
		if v, pinned := m[o]; pinned {
			return v, nil
		}
	}
	return tx.rt.Latest(o)
}

// DeleteContext removes a context; unknown names are not an error.
func (tx *shardTx) DeleteContext(name string) error {
	if err := tx.deleteConfigValue(ctxKey(name)); err != nil {
		return err
	}
	tx.saveRoots()
	return nil
}

// Contexts lists context names in order.
func (tx *shardTx) Contexts() ([]string, error) {
	var out []string
	err := tx.config.AscendPrefix([]byte(ctxPrefix), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(ctxPrefix):]))
		return true, nil
	})
	return out, err
}
