package core

import (
	"ode/internal/oid"
	"ode/internal/storage"
	"ode/internal/txn"
)

// Tx is one transaction's engine handle. It routes every operation to
// the shard the addressed object lives on — a range lookup in the
// shard map snapshot pinned at begin — joining shards
// lazily as the transaction touches them. Catalog, named-configuration,
// context and named-index state is authoritative on shard 0; annotation
// records live with their object. With one shard the Tx degenerates to
// exactly the pre-shard handle: one view, one heap, one tree set.
//
// A Tx is created by Engine.Write/Engine.Read and is invalid once the
// callback returns (the underlying views return ErrTxDone).
//
// Isolation under N > 1: a write transaction locks every shard it
// touches — reads join too (per-shard two-phase locking), so a
// read-modify-write sees live state under the shard's writer mutex,
// exactly as the single writer mutex guaranteed before sharding. Only
// read-only catalog lookups peek a committed snapshot (shardPeek0). A
// read transaction pins a committed snapshot per shard at first touch.
type Tx struct {
	e        *Engine
	w        *txn.WriteTx
	r        *txn.ReadTx
	writable bool

	// n is the physical shard count and rmap the shard map snapshot,
	// both pinned at begin from the transaction's routing bundle. A
	// reshard committing mid-transaction restarts the whole closure
	// (ErrRoutingEpochChanged), so routing through the pinned map is
	// always consistent with the data the transaction can see.
	n    int
	rmap *storage.ShardMap

	// shards holds the bundle for every shard this transaction is live
	// on: joined (mutable) shards of a write transaction, or pinned
	// snapshot bundles of a read transaction.
	shards []*shardTx
	// metaPeek is a snapshot bundle of shard 0 a write transaction uses
	// for read-only catalog lookups only (see shardPeek); a later join
	// of shard 0 drops it.
	metaPeek *shardTx
	// lastAlloc is the shard this transaction allocated its first object
	// on (-1 before the first Create); later allocations reuse it so a
	// transaction's creations commit without 2PC.
	lastAlloc int
}

// shardW returns the live (joined) bundle for shard s, joining the
// shard on first use. On a read transaction it falls back to the pinned
// snapshot bundle — the mutation then fails downstream exactly as it
// did before sharding.
func (tx *Tx) shardW(s int) (*shardTx, error) {
	if b := tx.shards[s]; b != nil {
		return b, nil
	}
	if !tx.writable {
		return tx.shardR(s)
	}
	v, err := tx.w.Join(s)
	if err != nil {
		return nil, err
	}
	if s == 0 {
		tx.metaPeek = nil // Join released the peek's snapshot
	}
	b := tx.e.newShardTx(v, tx.e.takeHeapSpace(s), tx, s, true)
	tx.shards[s] = b
	return b, nil
}

// shardR returns a bundle for reading shard s: the pinned snapshot on a
// read transaction, or the live (joined) bundle on a write transaction.
// Writers always read through the join — per-shard two-phase locking —
// so a read-modify-write inside one Update sees live state under the
// shard's writer mutex, exactly like the pre-sharding engine where the
// whole Update ran under the single mutex. Reading from a snapshot peek
// instead would permit lost updates (two Updates both deriving their
// write from the same stale image). A join forced out of ascending
// order restarts the closure with every shard pre-locked, so reads can
// never deadlock cross-shard writers.
func (tx *Tx) shardR(s int) (*shardTx, error) {
	if b := tx.shards[s]; b != nil {
		return b, nil
	}
	if !tx.writable {
		b := tx.e.newShardTx(tx.r.View(s), nil, tx, s, false)
		tx.shards[s] = b
		return b, nil
	}
	return tx.shardW(s)
}

// shardPeek returns a bundle for a read-only CATALOG lookup on shard 0:
// the live bundle when shard 0 is joined, the pinned snapshot on a read
// transaction, otherwise a committed-snapshot peek that does NOT join
// the shard. The type catalog is append-only (types are registered,
// never removed or rebound), so a lookup that misses a concurrently
// registered type is equivalent to serializing before the registering
// transaction — no lost-update cycle is possible, unlike object reads
// (shardR). The peek keeps the hot create path (type check on shard 0,
// allocation on a higher shard) free of both shard-0 lock traffic and
// ascending-join restarts.
func (tx *Tx) shardPeek0() (*shardTx, error) {
	if !tx.writable || tx.shards[0] != nil {
		return tx.shardR(0)
	}
	if tx.metaPeek != nil {
		return tx.metaPeek, nil
	}
	v, err := tx.w.View(0)
	if err != nil {
		return nil, err
	}
	if tx.w.Joined(0) {
		return tx.shardR(0)
	}
	b := tx.e.newShardTx(v, nil, tx, 0, false)
	tx.metaPeek = b
	return b, nil
}

// byO / byV route an id to its shard through the pinned map snapshot.
func (tx *Tx) byO(o oid.OID) int { return tx.rmap.ShardOf(uint64(o)) }
func (tx *Tx) byV(v oid.VID) int { return tx.rmap.ShardOf(uint64(v)) }

// allocShard picks the shard for a new object: the transaction's first
// allocation shard when it has one, otherwise the engine's round-robin
// cursor over the LOGICAL shards. Shards whose home-range tail has been
// assigned away (possible transiently while a reshard is growing, see
// ShardMap.Allocatable) are skipped — a fresh id must route to the
// shard that minted it.
func (tx *Tx) allocShard() int {
	if tx.lastAlloc >= 0 {
		return tx.lastAlloc
	}
	s := 0
	if n := tx.rmap.N(); n > 1 {
		for i := 0; i < n; i++ {
			cand := int((tx.e.cursor.Add(1) - 1) % uint64(n))
			if tx.rmap.Allocatable(cand) {
				s = cand
				break
			}
		}
	}
	tx.lastAlloc = s
	return s
}

// putVidIdx records v → o in the vid→oid reverse index. The entry
// routes by the VID's value: versions are minted on their object's
// current shard, which after a migration need not own the slot range
// the new vid's value falls in.
func (tx *Tx) putVidIdx(v oid.VID, o oid.OID) error {
	b, err := tx.shardW(tx.byV(v))
	if err != nil {
		return err
	}
	if err := b.vidIdx.Put(vidKey(v), objKey(o)); err != nil {
		return err
	}
	b.saveRoots()
	return nil
}

// delVidIdx drops v's reverse-index entry (see putVidIdx for routing).
func (tx *Tx) delVidIdx(v oid.VID) error {
	b, err := tx.shardW(tx.byV(v))
	if err != nil {
		return err
	}
	if _, err := b.vidIdx.Delete(vidKey(v)); err != nil {
		return err
	}
	b.saveRoots()
	return nil
}

// loadVerOf loads a version record from its object's shard (used by
// cross-object validation in configurations and contexts).
func (tx *Tx) loadVerOf(o oid.OID, v oid.VID) (verRec, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return verRec{}, err
	}
	return b.loadVer(o, v)
}

// Writable reports whether this transaction may mutate.
func (tx *Tx) Writable() bool { return tx.writable }

// Epoch returns the snapshot epoch this transaction reads shard 0 at.
func (tx *Tx) Epoch() uint64 {
	b, err := tx.shardR(0)
	if err != nil {
		return 0
	}
	return b.st.Epoch()
}

// --- objects and versions (routed by oid/vid) ---

// Create allocates a persistent object — the paper's pnew. See
// shardTx.Create for the semantics; the router picks the allocation
// shard.
func (tx *Tx) Create(t oid.TypeID, content []byte) (oid.OID, oid.VID, error) {
	b, err := tx.shardW(tx.allocShard())
	if err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	return b.Create(t, content)
}

// Exists reports whether an object is present.
func (tx *Tx) Exists(o oid.OID) (bool, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return false, err
	}
	return b.Exists(o)
}

// TypeOf returns the catalog type of an object.
func (tx *Tx) TypeOf(o oid.OID) (oid.TypeID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilType, err
	}
	return b.TypeOf(o)
}

// Latest returns the vid the object id currently binds to.
func (tx *Tx) Latest(o oid.OID) (oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.Latest(o)
}

// VersionCount returns the number of live versions of the object.
func (tx *Tx) VersionCount(o oid.OID) (uint64, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return 0, err
	}
	return b.VersionCount(o)
}

// Owner resolves a vid to its object (reverse index).
func (tx *Tx) Owner(v oid.VID) (oid.OID, error) {
	b, err := tx.shardR(tx.byV(v))
	if err != nil {
		return oid.NilOID, err
	}
	return b.Owner(v)
}

// ReadVersion returns the content of a specific version.
func (tx *Tx) ReadVersion(o oid.OID, v oid.VID) ([]byte, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.ReadVersion(o, v)
}

// ReadLatest returns the latest version's content and its vid.
func (tx *Tx) ReadLatest(o oid.OID) ([]byte, oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, oid.NilVID, err
	}
	return b.ReadLatest(o)
}

// UpdateVersion overwrites the content of one version in place.
func (tx *Tx) UpdateVersion(o oid.OID, v oid.VID, content []byte) error {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return err
	}
	return b.UpdateVersion(o, v, content)
}

// UpdateLatest overwrites the latest version's content.
func (tx *Tx) UpdateLatest(o oid.OID, content []byte) (oid.VID, error) {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.UpdateLatest(o, content)
}

// NewVersion creates a new version derived from the latest.
func (tx *Tx) NewVersion(o oid.OID) (oid.VID, error) {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.NewVersion(o)
}

// NewVersionFrom creates a new version derived from a specific base.
func (tx *Tx) NewVersionFrom(o oid.OID, base oid.VID) (oid.VID, error) {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.NewVersionFrom(o, base)
}

// DeleteVersion removes a single version — the paper's pdelete(vid).
func (tx *Tx) DeleteVersion(o oid.OID, v oid.VID) error {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return err
	}
	return b.DeleteVersion(o, v)
}

// DeleteObject removes an object and all its versions.
func (tx *Tx) DeleteObject(o oid.OID) error {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return err
	}
	return b.DeleteObject(o)
}

// --- traversals (routed by oid; chains are shard-local) ---

// Info returns a version's metadata.
func (tx *Tx) Info(o oid.OID, v oid.VID) (VersionInfo, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return VersionInfo{}, err
	}
	return b.Info(o, v)
}

// Dprev returns the version this version was derived from.
func (tx *Tx) Dprev(o oid.OID, v oid.VID) (oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.Dprev(o, v)
}

// Tprev returns the version temporally preceding v.
func (tx *Tx) Tprev(o oid.OID, v oid.VID) (oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.Tprev(o, v)
}

// Tnext returns the version temporally following v.
func (tx *Tx) Tnext(o oid.OID, v oid.VID) (oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, err
	}
	return b.Tnext(o, v)
}

// DChildren returns the versions directly derived from v.
func (tx *Tx) DChildren(o oid.OID, v oid.VID) ([]oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.DChildren(o, v)
}

// History returns the derivation chain from v back to the root.
func (tx *Tx) History(o oid.OID, v oid.VID) ([]oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.History(o, v)
}

// Leaves returns the leaves of the derived-from tree in vid order.
func (tx *Tx) Leaves(o oid.OID) ([]oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.Leaves(o)
}

// Versions returns all live versions of the object in temporal order.
func (tx *Tx) Versions(o oid.OID) ([]oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.Versions(o)
}

// AsOf returns the version that was latest at the given stamp.
func (tx *Tx) AsOf(o oid.OID, s oid.Stamp) (oid.VID, bool, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, false, err
	}
	return b.AsOf(o, s)
}

// AsOfWalk answers AsOf by walking the temporal chain backwards.
func (tx *Tx) AsOfWalk(o oid.OID, s oid.Stamp) (oid.VID, bool, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return oid.NilVID, false, err
	}
	return b.AsOfWalk(o, s)
}

// CurrentStamp returns the engine's logical clock value (the stamp of
// the most recent version-creating operation).
func (tx *Tx) CurrentStamp() oid.Stamp {
	if tx.e.single {
		b, err := tx.shardR(0)
		if err != nil {
			return 0
		}
		return oid.Stamp(b.st.Counter(ctrStamp))
	}
	if tx.writable {
		return oid.Stamp(tx.e.stamp.Load())
	}
	var max uint64
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			continue
		}
		if c := b.st.Counter(ctrStamp); c > max {
			max = c
		}
	}
	return oid.Stamp(max)
}

// --- catalog (authoritative on shard 0) ---

// RegisterType returns the TypeID for name, creating it on first use.
func (tx *Tx) RegisterType(name string) (oid.TypeID, error) {
	b, err := tx.shardW(0)
	if err != nil {
		return oid.NilType, err
	}
	return b.RegisterType(name)
}

// LookupType returns the TypeID for a registered name.
func (tx *Tx) LookupType(name string) (oid.TypeID, bool, error) {
	b, err := tx.shardPeek0()
	if err != nil {
		return oid.NilType, false, err
	}
	return b.LookupType(name)
}

// TypeName returns the registered name of t.
func (tx *Tx) TypeName(t oid.TypeID) (string, bool, error) {
	b, err := tx.shardPeek0()
	if err != nil {
		return "", false, err
	}
	return b.TypeName(t)
}

// typeExists reports whether t is a registered type id.
func (tx *Tx) typeExists(t oid.TypeID) (bool, error) {
	b, err := tx.shardPeek0()
	if err != nil {
		return false, err
	}
	return b.typeExists(t)
}

// Types lists all registered type names in name order.
func (tx *Tx) Types() ([]string, error) {
	b, err := tx.shardPeek0()
	if err != nil {
		return nil, err
	}
	return b.Types()
}

// Extent calls fn for every object of type t in oid order, across every
// shard's extent tree. With N > 1 it runs a k-way merge over per-shard
// extent cursors: one oid buffered per shard, each refilled with a
// single-key tree descent after it wins the merge. Early termination
// (fn returning false) and O(shards) memory are preserved — no shard's
// extent is ever materialized.
func (tx *Tx) Extent(t oid.TypeID, fn func(o oid.OID) (bool, error)) error {
	if tx.n == 1 {
		b, err := tx.shardR(0)
		if err != nil {
			return err
		}
		return b.Extent(t, fn)
	}
	// Every object lives in exactly one shard's extent tree (its current
	// placement), so heads never tie and picking the minimum head is
	// unambiguous. The merge runs over the PHYSICAL shards: a merged-away
	// shard may still hold ranges the map assigns to it.
	bundles := make([]*shardTx, tx.n)
	heads := make([]oid.OID, tx.n)
	has := make([]bool, tx.n)
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			return err
		}
		if b.st.Root(rootObjTable) == oid.NilPage {
			// A shard created by a reshard grow step the crash interrupted
			// before provisioning (possible on a read-only open); it holds
			// no data.
			continue
		}
		bundles[s] = b
		heads[s], has[s], err = b.extentNext(t, 0, true)
		if err != nil {
			return err
		}
	}
	for {
		min := -1
		for s := range heads {
			if has[s] && (min < 0 || heads[s] < heads[min]) {
				min = s
			}
		}
		if min < 0 {
			return nil
		}
		ok, err := fn(heads[min])
		if err != nil || !ok {
			return err
		}
		heads[min], has[min], err = bundles[min].extentNext(t, heads[min], false)
		if err != nil {
			return err
		}
	}
}

// ExtentCount returns the number of objects of type t.
func (tx *Tx) ExtentCount(t oid.TypeID) (int, error) {
	n := 0
	err := tx.Extent(t, func(oid.OID) (bool, error) { n++; return true, nil })
	return n, err
}

// --- configurations and contexts (authoritative on shard 0) ---

// SaveConfig stores (or replaces) a named configuration.
func (tx *Tx) SaveConfig(name string, bindings []Binding) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.SaveConfig(name, bindings)
}

// GetConfig returns a configuration's raw bindings.
func (tx *Tx) GetConfig(name string) ([]Binding, bool, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, false, err
	}
	return b.GetConfig(name)
}

// ResolveConfig resolves a configuration to concrete versions.
func (tx *Tx) ResolveConfig(name string) ([]Resolved, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, err
	}
	return b.ResolveConfig(name)
}

// DeleteConfig removes a configuration.
func (tx *Tx) DeleteConfig(name string) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.DeleteConfig(name)
}

// Configs lists configuration names in order.
func (tx *Tx) Configs() ([]string, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, err
	}
	return b.Configs()
}

// SetContext stores a context.
func (tx *Tx) SetContext(name string, defaults map[oid.OID]oid.VID) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.SetContext(name, defaults)
}

// GetContext returns a context's default-version map.
func (tx *Tx) GetContext(name string) (map[oid.OID]oid.VID, bool, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, false, err
	}
	return b.GetContext(name)
}

// ResolveInContext dereferences an object id under a context.
func (tx *Tx) ResolveInContext(ctx string, o oid.OID) (oid.VID, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return oid.NilVID, err
	}
	return b.ResolveInContext(ctx, o)
}

// DeleteContext removes a context.
func (tx *Tx) DeleteContext(name string) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.DeleteContext(name)
}

// Contexts lists context names in order.
func (tx *Tx) Contexts() ([]string, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, err
	}
	return b.Contexts()
}

// --- annotations (routed by oid: stored with their object) ---

// Annotate sets (or with value=="" clears) one annotation on a version.
func (tx *Tx) Annotate(o oid.OID, v oid.VID, key, value string) error {
	b, err := tx.shardW(tx.byO(o))
	if err != nil {
		return err
	}
	return b.Annotate(o, v, key, value)
}

// Annotations returns a version's annotation map.
func (tx *Tx) Annotations(o oid.OID, v oid.VID) (map[string]string, bool, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, false, err
	}
	return b.Annotations(o, v)
}

// Annotation returns one annotation value.
func (tx *Tx) Annotation(o oid.OID, v oid.VID, key string) (string, bool, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return "", false, err
	}
	return b.Annotation(o, v, key)
}

// VersionsWhere returns the object's versions whose annotation key has
// the given value, in temporal order.
func (tx *Tx) VersionsWhere(o oid.OID, key, value string) ([]oid.VID, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return nil, err
	}
	return b.VersionsWhere(o, key, value)
}

// --- named indexes (authoritative on shard 0) ---

// IndexPut inserts or replaces an entry in a named index.
func (tx *Tx) IndexPut(name string, key, val []byte) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.IndexPut(name, key, val)
}

// IndexGet reads one entry from a named index.
func (tx *Tx) IndexGet(name string, key []byte) ([]byte, bool, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, false, err
	}
	return b.IndexGet(name, key)
}

// IndexDelete removes an entry, reporting whether it was present.
func (tx *Tx) IndexDelete(name string, key []byte) (bool, error) {
	b, err := tx.shardW(0)
	if err != nil {
		return false, err
	}
	return b.IndexDelete(name, key)
}

// IndexAscend iterates entries in [from, to) order.
func (tx *Tx) IndexAscend(name string, from, to []byte, fn func(k, v []byte) (bool, error)) error {
	b, err := tx.shardR(0)
	if err != nil {
		return err
	}
	return b.IndexAscend(name, from, to, fn)
}

// IndexAscendPrefix iterates all entries whose key has the prefix.
func (tx *Tx) IndexAscendPrefix(name string, prefix []byte, fn func(k, v []byte) (bool, error)) error {
	b, err := tx.shardR(0)
	if err != nil {
		return err
	}
	return b.IndexAscendPrefix(name, prefix, fn)
}

// IndexDrop deletes a named index entirely.
func (tx *Tx) IndexDrop(name string) error {
	b, err := tx.shardW(0)
	if err != nil {
		return err
	}
	return b.IndexDrop(name)
}

// IndexNames lists the named indexes in order.
func (tx *Tx) IndexNames() ([]string, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return nil, err
	}
	return b.IndexNames()
}

// IndexLen counts the entries of a named index.
func (tx *Tx) IndexLen(name string) (int, error) {
	b, err := tx.shardR(0)
	if err != nil {
		return 0, err
	}
	return b.IndexLen(name)
}

// IndexCheck validates the named index tree's structural invariants.
func (tx *Tx) IndexCheck(name string) error {
	b, err := tx.shardR(0)
	if err != nil {
		return err
	}
	return b.IndexCheck(name)
}

// --- integrity and rendering ---

// CheckObject validates every structural invariant of one object.
func (tx *Tx) CheckObject(o oid.OID) error {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return err
	}
	return b.CheckObject(o)
}

// CheckAll validates every object and tree on every shard, then sweeps
// every shard's vid→oid index cross-shard: each entry must name an
// object (wherever the map placed it) that actually carries that
// version — the invariant a botched migration of vidIdx entries would
// break first.
func (tx *Tx) CheckAll() error {
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			return err
		}
		if b.st.Root(rootObjTable) == oid.NilPage {
			continue // unprovisioned shard (read-only open mid-grow)
		}
		if err := b.CheckAll(); err != nil {
			return err
		}
	}
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			return err
		}
		if b.st.Root(rootObjTable) == oid.NilPage {
			continue
		}
		if err := b.checkVidIdxEntries(); err != nil {
			return err
		}
	}
	return nil
}

// Render produces a deterministic textual picture of one object's
// version graph.
func (tx *Tx) Render(o oid.OID) (string, error) {
	b, err := tx.shardR(tx.byO(o))
	if err != nil {
		return "", err
	}
	return b.Render(o)
}

// Stats returns engine totals from this transaction's snapshots, summed
// across shards (the stamp is the per-shard maximum: the global clock).
func (tx *Tx) Stats() Stats {
	var out Stats
	for s := 0; s < tx.n; s++ {
		b, err := tx.shardR(s)
		if err != nil {
			continue
		}
		ss := b.Stats()
		out.Objects += ss.Objects
		out.Versions += ss.Versions
		out.NextOID += ss.NextOID
		out.NextVID += ss.NextVID
		if ss.Stamp > out.Stamp {
			out.Stamp = ss.Stamp
		}
	}
	return out
}
