package core

import (
	"encoding/binary"
	"fmt"

	"ode/internal/codec"
	"ode/internal/delta"
	"ode/internal/oid"
	"ode/internal/trigger"
)

// payload kinds in a version record.
const (
	payFull  = 0 // payload record holds the content verbatim
	payDelta = 1 // payload record holds a delta against dprev's content
	paySame  = 2 // content identical to dprev's; no payload record
)

// verRec is the per-version record in the version index. The paper's two
// automatically maintained relationships live here: dprev (derived-from
// tree edge) and tprev/tnext (temporal chain links).
type verRec struct {
	stamp   oid.Stamp
	dprev   oid.VID // derived-from parent (nil for a root version)
	tprev   oid.VID // temporal predecessor among the object's versions
	tnext   oid.VID // temporal successor (nil for the latest)
	payload oid.RID // heap record holding content or delta (nil for paySame)
	kind    uint8
	depth   uint16 // materialisation links to the nearest full payload
	size    uint64 // content length in bytes
}

func (v *verRec) encode() []byte {
	b := make([]byte, 0, 64)
	b = codec.AppendUVarint(b, uint64(v.stamp))
	b = codec.AppendUVarint(b, uint64(v.dprev))
	b = codec.AppendUVarint(b, uint64(v.tprev))
	b = codec.AppendUVarint(b, uint64(v.tnext))
	rid := v.payload.Pack()
	b = append(b, rid[:]...)
	b = codec.AppendU8(b, v.kind)
	b = codec.AppendU16(b, v.depth)
	b = codec.AppendUVarint(b, v.size)
	return b
}

func decodeVerRec(b []byte) (verRec, error) {
	r := codec.NewReader(b)
	v := verRec{}
	v.stamp = oid.Stamp(r.UVarint())
	v.dprev = oid.VID(r.UVarint())
	v.tprev = oid.VID(r.UVarint())
	v.tnext = oid.VID(r.UVarint())
	ridRaw := r.Raw(6)
	if ridRaw != nil {
		v.payload = oid.UnpackRID(ridRaw)
	}
	v.kind = r.U8()
	v.depth = r.U16()
	v.size = r.UVarint()
	if r.Err() != nil {
		return verRec{}, fmt.Errorf("%w: version record: %v", ErrCorrupt, r.Err())
	}
	return v, nil
}

func (tx *shardTx) loadVer(o oid.OID, v oid.VID) (verRec, error) {
	raw, ok, err := tx.verIdx.Get(verKey(o, v))
	if err != nil {
		return verRec{}, err
	}
	if !ok {
		return verRec{}, fmt.Errorf("%w: %v of %v", ErrNoVersion, v, o)
	}
	return decodeVerRec(raw)
}

func (tx *shardTx) storeVer(o oid.OID, v oid.VID, rec verRec) error {
	return tx.verIdx.Put(verKey(o, v), rec.encode())
}

// --- object lifecycle ---

// Create allocates a persistent object of type t with the given initial
// content — the paper's pnew. The object starts with a single root
// version (it is "unversioned" in the paper's sense: versioning costs
// nothing until the first newversion). Returns the oid and the root vid.
func (tx *shardTx) Create(t oid.TypeID, content []byte) (oid.OID, oid.VID, error) {
	if ok, err := tx.rt.typeExists(t); err != nil {
		return oid.NilOID, oid.NilVID, err
	} else if !ok {
		return oid.NilOID, oid.NilVID, fmt.Errorf("%w: %v", ErrNoType, t)
	}
	o := tx.newOID()
	v := tx.newVID()
	stamp := tx.newStamp()

	rid, err := tx.heap.Insert(content)
	if err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	rec := verRec{stamp: stamp, payload: rid, kind: payFull, size: uint64(len(content))}
	if err := tx.storeVer(o, v, rec); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	h := objHeader{typ: t, latest: v, count: 1, firstVID: v, created: stamp}
	if err := tx.storeHeader(o, h); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	if err := tx.rt.putVidIdx(v, o); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	if err := tx.tempIdx.Put(tempKey(o, stamp), vidKey(v)); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	if err := tx.extent.Put(extKey(t, o), nil); err != nil {
		return oid.NilOID, oid.NilVID, err
	}
	tx.st.SetCounter(ctrObjects, tx.st.Counter(ctrObjects)+1)
	tx.st.SetCounter(ctrVersion, tx.st.Counter(ctrVersion)+1)
	tx.saveRoots()
	tx.bus.Fire(trigger.Event{Kind: trigger.KindCreate, Obj: o, VID: v, Type: t, Stamp: stamp, Tx: tx.rt})
	return o, v, nil
}

// --- content materialisation ---

// readContent materialises the content of (o, rec) by walking the delta
// chain down to the nearest full payload and applying the deltas back up.
// Iterative so that long chains cannot exhaust the stack; the chain
// length is bounded by Options.MaxChain via depth accounting anyway.
func (tx *shardTx) readContent(o oid.OID, rec verRec) ([]byte, error) {
	var chain [][]byte // deltas from rec down toward the keyframe
	cur := rec
	visited := uint64(1)
	for {
		switch cur.kind {
		case payFull:
			if m := tx.e.m; m != nil {
				m.DeltaChainLen.Observe(visited)
			}
			base, err := tx.heap.Read(cur.payload)
			if err != nil {
				return nil, err
			}
			// Apply collected deltas in reverse (keyframe-first) order.
			for i := len(chain) - 1; i >= 0; i-- {
				base, err = delta.Apply(base, chain[i])
				if err != nil {
					return nil, err
				}
			}
			return base, nil
		case paySame:
			// Content equals the parent's; nothing to collect.
		case payDelta:
			d, err := tx.heap.Read(cur.payload)
			if err != nil {
				return nil, err
			}
			chain = append(chain, d)
		default:
			return nil, fmt.Errorf("%w: payload kind %d", ErrCorrupt, cur.kind)
		}
		if cur.dprev.IsNil() {
			return nil, fmt.Errorf("%w: dependent payload with no parent", ErrCorrupt)
		}
		parent, err := tx.loadVer(o, cur.dprev)
		if err != nil {
			return nil, err
		}
		cur = parent
		visited++
	}
}

// cacheGet consults the materialisation cache. Only snapshot (read)
// transactions use the cache: their (shard, epoch) pin is exactly the
// tag entries are stored under, while a writer reads its own in-flight
// state which the cache must neither serve nor absorb.
func (tx *shardTx) cacheGet(o oid.OID, v oid.VID) ([]byte, bool) {
	c := tx.e.cache
	if c == nil || tx.writable {
		return nil, false
	}
	return c.Get(uint64(o), uint64(v), tx.s, tx.st.Epoch())
}

// cachePut stores a materialised content under the reading snapshot's
// (shard, epoch) tag; no-op on write transactions.
func (tx *shardTx) cachePut(o oid.OID, v oid.VID, content []byte) {
	c := tx.e.cache
	if c == nil || tx.writable {
		return
	}
	c.Put(uint64(o), uint64(v), tx.s, tx.st.Epoch(), content)
}

// derefGet consults the dereference cache for o's latest version. Like
// cacheGet, only snapshot transactions participate: their (shard,
// epoch) pin matches the tag entries are stored under exactly, while a
// writer observes its own in-flight latest which the cache must neither
// serve nor absorb.
func (tx *shardTx) derefGet(o oid.OID) ([]byte, oid.VID, bool) {
	c := tx.e.dcache
	if c == nil || tx.writable {
		return nil, oid.NilVID, false
	}
	vid, content, ok := c.Get(uint64(o), tx.s, tx.st.Epoch())
	if !ok {
		return nil, oid.NilVID, false
	}
	return content, oid.VID(vid), true
}

// derefPut stores o's materialised latest under the reading snapshot's
// (shard, epoch) tag; no-op on write transactions.
func (tx *shardTx) derefPut(o oid.OID, v oid.VID, content []byte) {
	c := tx.e.dcache
	if c == nil || tx.writable {
		return
	}
	c.Put(uint64(o), tx.s, tx.st.Epoch(), uint64(v), content)
}

// ReadVersion returns the content of a specific version — the paper's
// specific-reference dereference (*vp on a version id).
func (tx *shardTx) ReadVersion(o oid.OID, v oid.VID) ([]byte, error) {
	if content, ok := tx.cacheGet(o, v); ok {
		return content, nil
	}
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return nil, err
	}
	content, err := tx.readContent(o, rec)
	if err != nil {
		return nil, err
	}
	tx.cachePut(o, v, content)
	return content, nil
}

// ReadLatest returns the latest version's content and its vid — the
// paper's generic-reference dereference (*p on an object id binds to the
// latest version at access time).
func (tx *shardTx) ReadLatest(o oid.OID) ([]byte, oid.VID, error) {
	if content, v, ok := tx.derefGet(o); ok {
		return content, v, nil
	}
	h, err := tx.loadHeader(o)
	if err != nil {
		return nil, oid.NilVID, err
	}
	if content, ok := tx.cacheGet(o, h.latest); ok {
		tx.derefPut(o, h.latest, content)
		return content, h.latest, nil
	}
	rec, err := tx.loadVer(o, h.latest)
	if err != nil {
		return nil, oid.NilVID, err
	}
	content, err := tx.readContent(o, rec)
	if err != nil {
		return nil, oid.NilVID, err
	}
	tx.cachePut(o, h.latest, content)
	tx.derefPut(o, h.latest, content)
	return content, h.latest, nil
}

// --- payload write policy ---

// writePayload stores content for a version whose derived-from parent is
// dprev, choosing full or delta representation per policy. It updates
// rec's payload/kind/depth/size fields in place; rec.payload must be
// NilRID or an existing record to overwrite.
func (tx *shardTx) writePayload(o oid.OID, rec *verRec, content []byte) error {
	kind := uint8(payFull)
	var encoded []byte
	var depth uint16

	if tx.opts.Policy == DeltaChain && !rec.dprev.IsNil() {
		parent, err := tx.loadVer(o, rec.dprev)
		if err != nil {
			return err
		}
		if int(parent.depth)+1 <= tx.opts.MaxChain {
			base, err := tx.readContent(o, parent)
			if err != nil {
				return err
			}
			d := delta.Encode(base, content)
			// Keep the delta only when it actually saves space.
			if len(d) < len(content) {
				kind = payDelta
				encoded = d
				depth = parent.depth + 1
			}
		}
	}
	if kind == payFull {
		encoded = content
		depth = 0
	}

	if rec.payload.IsNil() {
		rid, err := tx.heap.Insert(encoded)
		if err != nil {
			return err
		}
		rec.payload = rid
	} else {
		if err := tx.heap.Update(rec.payload, encoded); err != nil {
			return err
		}
	}
	rec.kind = kind
	rec.depth = depth
	rec.size = uint64(len(content))
	return nil
}

// UpdateVersion overwrites the content of one version in place (no new
// version is created — in O++ a version is an object you may mutate
// through a specific reference). Children stored as deltas against this
// version are first converted to stand-alone payloads so their content
// is unaffected.
func (tx *shardTx) UpdateVersion(o oid.OID, v oid.VID, content []byte) error {
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return err
	}
	if err := tx.detachDependents(o, v); err != nil {
		return err
	}
	// Reload: detachDependents may have rewritten rec's entry? (It only
	// rewrites children.) rec is still current.
	if rec.kind == paySame {
		// Gains its own payload record now.
		rec.payload = oid.NilRID
	}
	if err := tx.writePayload(o, &rec, content); err != nil {
		return err
	}
	if err := tx.storeVer(o, v, rec); err != nil {
		return err
	}
	if err := tx.fixDepths(o, v, rec.depth); err != nil {
		return err
	}
	h, err := tx.loadHeader(o)
	if err != nil {
		return err
	}
	tx.saveRoots()
	tx.bus.Fire(trigger.Event{Kind: trigger.KindUpdate, Obj: o, VID: v, Type: h.typ, Stamp: rec.stamp, Tx: tx.rt})
	return nil
}

// UpdateLatest overwrites the latest version's content (generic-
// reference assignment).
func (tx *shardTx) UpdateLatest(o oid.OID, content []byte) (oid.VID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	return h.latest, tx.UpdateVersion(o, h.latest, content)
}

// fixDepths recomputes the chain-depth hints of v's dependent
// descendants after v's own depth changed. A child stored as a delta or
// shared payload has depth parent.depth+1; subtrees whose depth is
// already correct are pruned.
func (tx *shardTx) fixDepths(o oid.OID, v oid.VID, vDepth uint16) error {
	children, err := tx.DChildren(o, v)
	if err != nil {
		return err
	}
	for _, c := range children {
		crec, err := tx.loadVer(o, c)
		if err != nil {
			return err
		}
		if crec.kind == payFull {
			continue // its depth is 0 and its subtree hangs off it, unchanged
		}
		want := vDepth + 1
		if crec.depth == want {
			continue
		}
		crec.depth = want
		if err := tx.storeVer(o, c, crec); err != nil {
			return err
		}
		if err := tx.fixDepths(o, c, want); err != nil {
			return err
		}
	}
	return nil
}

// detachDependents rewrites every child version whose payload depends on
// v's content (paySame or payDelta with dprev == v) as a full payload.
func (tx *shardTx) detachDependents(o oid.OID, v oid.VID) error {
	children, err := tx.DChildren(o, v)
	if err != nil {
		return err
	}
	for _, c := range children {
		crec, err := tx.loadVer(o, c)
		if err != nil {
			return err
		}
		if crec.kind == payFull {
			continue
		}
		content, err := tx.readContent(o, crec)
		if err != nil {
			return err
		}
		if crec.kind == paySame {
			rid, err := tx.heap.Insert(content)
			if err != nil {
				return err
			}
			crec.payload = rid
		} else {
			if err := tx.heap.Update(crec.payload, content); err != nil {
				return err
			}
		}
		crec.kind = payFull
		crec.depth = 0
		crec.size = uint64(len(content))
		if err := tx.storeVer(o, c, crec); err != nil {
			return err
		}
		if err := tx.fixDepths(o, c, 0); err != nil {
			return err
		}
	}
	return nil
}

// --- newversion ---

// NewVersion creates a new version derived from the object's latest
// version — the paper's newversion(oid). Returns the new vid.
func (tx *shardTx) NewVersion(o oid.OID) (oid.VID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	return tx.newVersionFrom(o, h, h.latest)
}

// NewVersionFrom creates a new version derived from a specific base
// version — the paper's newversion(vid); parallel calls on different
// bases create the alternatives of §4.3.
func (tx *shardTx) NewVersionFrom(o oid.OID, base oid.VID) (oid.VID, error) {
	h, err := tx.loadHeader(o)
	if err != nil {
		return oid.NilVID, err
	}
	if _, err := tx.loadVer(o, base); err != nil {
		return oid.NilVID, err
	}
	return tx.newVersionFrom(o, h, base)
}

func (tx *shardTx) newVersionFrom(o oid.OID, h objHeader, base oid.VID) (oid.VID, error) {
	baseRec, err := tx.loadVer(o, base)
	if err != nil {
		return oid.NilVID, err
	}
	v := tx.newVID()
	stamp := tx.newStamp()

	// The new version starts with content identical to its base. Under
	// DeltaChain (and within depth budget) that is represented without
	// copying anything — the paper's "small changes should have small
	// impact" principle. Under FullCopy the content is duplicated.
	rec := verRec{
		stamp: stamp,
		dprev: base,
		tprev: h.latest,
		size:  baseRec.size,
	}
	if tx.opts.Policy == DeltaChain && int(baseRec.depth)+1 <= tx.opts.MaxChain {
		rec.kind = paySame
		rec.depth = baseRec.depth + 1
	} else {
		content, err := tx.readContent(o, baseRec)
		if err != nil {
			return oid.NilVID, err
		}
		rid, err := tx.heap.Insert(content)
		if err != nil {
			return oid.NilVID, err
		}
		rec.kind = payFull
		rec.payload = rid
	}
	if err := tx.storeVer(o, v, rec); err != nil {
		return oid.NilVID, err
	}
	// Temporal chain: the old latest gains a successor.
	prevRec, err := tx.loadVer(o, h.latest)
	if err != nil {
		return oid.NilVID, err
	}
	prevRec.tnext = v
	if err := tx.storeVer(o, h.latest, prevRec); err != nil {
		return oid.NilVID, err
	}
	h.latest = v
	h.count++
	if err := tx.storeHeader(o, h); err != nil {
		return oid.NilVID, err
	}
	if err := tx.rt.putVidIdx(v, o); err != nil {
		return oid.NilVID, err
	}
	if err := tx.tempIdx.Put(tempKey(o, stamp), vidKey(v)); err != nil {
		return oid.NilVID, err
	}
	tx.st.SetCounter(ctrVersion, tx.st.Counter(ctrVersion)+1)
	// The base just gained a D-child and stopped being the write
	// target: under the delta tier its full payload is re-encoded as a
	// delta against its own D-parent right away (DESIGN.md §14).
	if _, err := tx.maybeDemote(o, base); err != nil {
		return oid.NilVID, err
	}
	tx.saveRoots()
	tx.bus.Fire(trigger.Event{
		Kind: trigger.KindNewVersion, Obj: o, VID: v, Prev: base,
		Type: h.typ, Stamp: stamp, Tx: tx.rt,
	})
	return v, nil
}

// --- pdelete ---

// DeleteVersion removes a single version — the paper's pdelete(vid).
// The derivation tree is spliced: children of the deleted version are
// re-parented onto its derived-from parent; the temporal chain is
// likewise spliced. If the deleted version was the latest, the object id
// re-binds to the temporally preceding version. Deleting the only
// version deletes the object.
func (tx *shardTx) DeleteVersion(o oid.OID, v oid.VID) error {
	h, err := tx.loadHeader(o)
	if err != nil {
		return err
	}
	if h.count == 1 {
		return tx.DeleteObject(o)
	}
	rec, err := tx.loadVer(o, v)
	if err != nil {
		return err
	}
	// Children depending on v's bytes must be made self-sufficient, then
	// re-parented onto v's parent.
	if err := tx.detachDependents(o, v); err != nil {
		return err
	}
	children, err := tx.DChildren(o, v)
	if err != nil {
		return err
	}
	for _, c := range children {
		crec, err := tx.loadVer(o, c)
		if err != nil {
			return err
		}
		crec.dprev = rec.dprev
		if err := tx.storeVer(o, c, crec); err != nil {
			return err
		}
	}
	// Splice the temporal chain.
	if !rec.tprev.IsNil() {
		p, err := tx.loadVer(o, rec.tprev)
		if err != nil {
			return err
		}
		p.tnext = rec.tnext
		if err := tx.storeVer(o, rec.tprev, p); err != nil {
			return err
		}
	}
	if !rec.tnext.IsNil() {
		n, err := tx.loadVer(o, rec.tnext)
		if err != nil {
			return err
		}
		n.tprev = rec.tprev
		if err := tx.storeVer(o, rec.tnext, n); err != nil {
			return err
		}
	}
	if h.latest == v {
		h.latest = rec.tprev
	}
	if h.firstVID == v {
		h.firstVID = rec.tnext
	}
	h.count--
	if err := tx.storeHeader(o, h); err != nil {
		return err
	}
	if !rec.payload.IsNil() {
		if err := tx.heap.Delete(rec.payload); err != nil {
			return err
		}
	}
	if err := tx.dropAnnotations(o, v); err != nil {
		return err
	}
	if _, err := tx.verIdx.Delete(verKey(o, v)); err != nil {
		return err
	}
	if err := tx.rt.delVidIdx(v); err != nil {
		return err
	}
	if _, err := tx.tempIdx.Delete(tempKey(o, rec.stamp)); err != nil {
		return err
	}
	tx.st.SetCounter(ctrVersion, tx.st.Counter(ctrVersion)-1)
	// detachDependents turned v's children into full copies before the
	// splice; now that they hang off v's parent, the delta tier tries
	// to re-encode each against its new D-parent.
	for _, c := range children {
		if _, err := tx.maybeDemote(o, c); err != nil {
			return err
		}
	}
	tx.saveRoots()
	tx.bus.Fire(trigger.Event{Kind: trigger.KindDeleteVersion, Obj: o, VID: v, Type: h.typ, Stamp: rec.stamp, Tx: tx.rt})
	return nil
}

// DeleteObject removes an object and all its versions — the paper's
// pdelete(oid).
func (tx *shardTx) DeleteObject(o oid.OID) error {
	h, err := tx.loadHeader(o)
	if err != nil {
		return err
	}
	type entry struct {
		v   oid.VID
		rec verRec
	}
	var versions []entry
	err = tx.verIdx.AscendPrefix(objKey(o), func(k, val []byte) (bool, error) {
		v := oid.VID(binary.BigEndian.Uint64(k[8:16]))
		rec, err := decodeVerRec(val)
		if err != nil {
			return false, err
		}
		versions = append(versions, entry{v, rec})
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, en := range versions {
		if !en.rec.payload.IsNil() {
			if err := tx.heap.Delete(en.rec.payload); err != nil {
				return err
			}
		}
		if _, err := tx.verIdx.Delete(verKey(o, en.v)); err != nil {
			return err
		}
		if err := tx.rt.delVidIdx(en.v); err != nil {
			return err
		}
		if _, err := tx.tempIdx.Delete(tempKey(o, en.rec.stamp)); err != nil {
			return err
		}
	}
	if err := tx.dropAllAnnotations(o); err != nil {
		return err
	}
	if _, err := tx.objTable.Delete(objKey(o)); err != nil {
		return err
	}
	if _, err := tx.extent.Delete(extKey(h.typ, o)); err != nil {
		return err
	}
	tx.st.SetCounter(ctrObjects, tx.st.Counter(ctrObjects)-1)
	tx.st.SetCounter(ctrVersion, tx.st.Counter(ctrVersion)-uint64(len(versions)))
	tx.saveRoots()
	tx.bus.Fire(trigger.Event{Kind: trigger.KindDeleteObject, Obj: o, Type: h.typ, Tx: tx.rt})
	return nil
}
