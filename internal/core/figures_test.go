package core

// Figure reproduction tests (DESIGN.md §4.1). The paper's §4 figures
// walk one object through newversion calls, drawing the derived-from
// tree (solid arrows) and temporal order (dotted arrows). Each test
// below reproduces one figure state and compares the engine's rendering
// against a golden string in the same notation.

import (
	"strings"
	"testing"

	"ode/internal/oid"
)

// figureObject builds the paper's running example up to step n:
//
//	step 1: p = pnew  (v0, the root version; oid p refers to it)
//	step 2: newversion(p)   → v1 derived from v0   (F1: revision)
//	step 3: newversion(vp0) → v2 derived from v0   (F2: alternatives)
//	step 4: newversion(vp1) → v3 derived from v1   (F3: history v3,v1,v0)
//
// In this database v0..v3 receive vids v1..v4 (ids start at 1).
func figureObject(t *testing.T, e *Engine, steps int) (oid.OID, []oid.VID) {
	t.Helper()
	ty := mustType(t, e, "item")
	var o oid.OID
	var vids []oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		var v oid.VID
		o, v, err = tx.Create(ty, []byte("v0"))
		if err != nil {
			return err
		}
		vids = append(vids, v)
		if steps >= 2 {
			v, err = tx.NewVersion(o) // derived from latest = v0
			if err != nil {
				return err
			}
			vids = append(vids, v)
		}
		if steps >= 3 {
			v, err = tx.NewVersionFrom(o, vids[0]) // alternative from v0
			if err != nil {
				return err
			}
			vids = append(vids, v)
		}
		if steps >= 4 {
			v, err = tx.NewVersionFrom(o, vids[1]) // revision of v1
			if err != nil {
				return err
			}
			vids = append(vids, v)
		}
		return nil
	})
	return o, vids
}

func renderOf(t *testing.T, e *Engine, o oid.OID) string {
	t.Helper()
	var out string
	w(t, e, func(tx *Tx) error {
		var err error
		out, err = tx.Render(o)
		return err
	})
	return out
}

// TestFigureRevision reproduces F1: after one newversion, v1 is a
// revision of v0; the oid binds to v1; temporal and derived-from edges
// coincide.
func TestFigureRevision(t *testing.T) {
	e := newEngine(t, Options{})
	o, vids := figureObject(t, e, 2)
	golden := strings.Join([]string{
		"o1 (item) latest=v2 versions=2",
		"derived-from:",
		"  └── v1",
		"      └── v2 *latest",
		"temporal:  v1 ··▶ v2",
		"",
	}, "\n")
	if got := renderOf(t, e, o); got != golden {
		t.Fatalf("F1 mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	w(t, e, func(tx *Tx) error { return tx.CheckObject(o) })
	_ = vids
}

// TestFigureAlternatives reproduces F2: v1 and v2 are variants
// (alternatives), both derived from v0; the temporal order is still the
// creation order.
func TestFigureAlternatives(t *testing.T) {
	e := newEngine(t, Options{})
	o, _ := figureObject(t, e, 3)
	golden := strings.Join([]string{
		"o1 (item) latest=v3 versions=3",
		"derived-from:",
		"  └── v1",
		"      ├── v2",
		"      └── v3 *latest",
		"temporal:  v1 ··▶ v2 ··▶ v3",
		"",
	}, "\n")
	if got := renderOf(t, e, o); got != golden {
		t.Fatalf("F2 mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestFigureHistory reproduces F3: newversion(v1) yields v3; v3, v1, v0
// constitute a version history; the leaves v2 and v3 are the tips of the
// two alternative designs; the oid binds to v3 (the temporal maximum)
// even though it was not derived from the previous latest.
func TestFigureHistory(t *testing.T) {
	e := newEngine(t, Options{})
	o, vids := figureObject(t, e, 4)
	golden := strings.Join([]string{
		"o1 (item) latest=v4 versions=4",
		"derived-from:",
		"  └── v1",
		"      ├── v2",
		"      │   └── v4 *latest",
		"      └── v3",
		"temporal:  v1 ··▶ v2 ··▶ v3 ··▶ v4",
		"",
	}, "\n")
	if got := renderOf(t, e, o); got != golden {
		t.Fatalf("F3 mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	w(t, e, func(tx *Tx) error {
		// "v3, v1, and v0 constitute a version history" — in our vids:
		// v4, v2, v1.
		hist, err := tx.History(o, vids[3])
		if err != nil {
			return err
		}
		want := []oid.VID{vids[3], vids[1], vids[0]}
		if len(hist) != 3 || hist[0] != want[0] || hist[1] != want[1] || hist[2] != want[2] {
			t.Fatalf("history = %v want %v", hist, want)
		}
		return tx.CheckObject(o)
	})
}

// TestFigurePdelete reproduces F4 (§4.4): pdelete on a version id
// removes one version and splices the tree; pdelete on an object id
// removes the object and all its versions.
func TestFigurePdelete(t *testing.T) {
	e := newEngine(t, Options{})
	o, vids := figureObject(t, e, 4)
	// Delete v1 (paper's v0's first revision): v4 re-parents onto v1's
	// parent v0 (our v1).
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, vids[1]) })
	golden := strings.Join([]string{
		"o1 (item) latest=v4 versions=3",
		"derived-from:",
		"  └── v1",
		"      ├── v3",
		"      └── v4 *latest",
		"temporal:  v1 ··▶ v3 ··▶ v4",
		"",
	}, "\n")
	if got := renderOf(t, e, o); got != golden {
		t.Fatalf("F4a mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
	w(t, e, func(tx *Tx) error { return tx.CheckObject(o) })
	// pdelete(oid): everything goes.
	w(t, e, func(tx *Tx) error { return tx.DeleteObject(o) })
	w(t, e, func(tx *Tx) error {
		if ok, _ := tx.Exists(o); ok {
			t.Fatal("object survived pdelete(oid)")
		}
		for _, v := range vids {
			if _, err := tx.Owner(v); err == nil {
				t.Fatalf("version %v survived pdelete(oid)", v)
			}
		}
		return nil
	})
	if st := e.Stats(); st.Objects != 0 || st.Versions != 0 {
		t.Fatalf("stats after pdelete: %+v", st)
	}
}

// TestFiguresIdenticalUnderDeltaPolicy re-runs the F3 state under
// DeltaChain storage: the storage policy must be invisible in the
// version graph (policy/mechanism separation).
func TestFiguresIdenticalUnderDeltaPolicy(t *testing.T) {
	eFull := newEngine(t, Options{Policy: FullCopy})
	eDelta := newEngine(t, Options{Policy: DeltaChain})
	oF, _ := figureObject(t, eFull, 4)
	oD, _ := figureObject(t, eDelta, 4)
	if a, b := renderOf(t, eFull, oF), renderOf(t, eDelta, oD); a != b {
		t.Fatalf("policies diverge:\n%s\nvs\n%s", a, b)
	}
}
