package core

// Property tests for the engine's on-disk record encodings: every
// field must round-trip bit-exactly through encode/decode for arbitrary
// values (testing/quick drives the value generation).

import (
	"testing"
	"testing/quick"

	"ode/internal/oid"
)

func TestVerRecRoundtripQuick(t *testing.T) {
	f := func(stamp, dprev, tprev, tnext uint64, page uint32, slot uint16, kind uint8, depth uint16, size uint64) bool {
		in := verRec{
			stamp:   oid.Stamp(stamp),
			dprev:   oid.VID(dprev),
			tprev:   oid.VID(tprev),
			tnext:   oid.VID(tnext),
			payload: oid.RID{Page: oid.PageID(page), Slot: slot},
			kind:    kind % 3,
			depth:   depth,
			size:    size,
		}
		out, err := decodeVerRec(in.encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObjHeaderRoundtripQuick(t *testing.T) {
	f := func(typ uint32, latest, count, first, created uint64) bool {
		in := objHeader{
			typ:      oid.TypeID(typ),
			latest:   oid.VID(latest),
			count:    count,
			firstVID: oid.VID(first),
			created:  oid.Stamp(created),
		}
		out, err := decodeObjHeader(in.encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBindingsRoundtripQuick(t *testing.T) {
	f := func(slots []string, objs []uint64) bool {
		n := len(slots)
		if len(objs) < n {
			n = len(objs)
		}
		in := make([]Binding, 0, n)
		for i := 0; i < n; i++ {
			in = append(in, Binding{
				Slot: slots[i],
				Obj:  oid.OID(objs[i]),
				VID:  oid.VID(objs[i] / 3),
			})
		}
		out, err := decodeBindings(encodeBindings(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	rec := verRec{stamp: 5, dprev: 2, payload: oid.RID{Page: 3, Slot: 1}, kind: payFull, size: 10}
	enc := rec.encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeVerRec(enc[:cut]); err == nil {
			t.Fatalf("truncated verRec at %d accepted", cut)
		}
	}
	h := objHeader{typ: 1, latest: 2, count: 3, firstVID: 2, created: 4}
	henc := h.encode()
	for cut := 0; cut < len(henc)-1; cut++ {
		if _, err := decodeObjHeader(henc[:cut]); err == nil {
			// Trailing varints of value 0 can decode from empty input only
			// if the reader allowed it; it must not.
			t.Fatalf("truncated objHeader at %d accepted", cut)
		}
	}
}
