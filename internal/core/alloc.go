// Batched id allocation: oids and vids are handed out from per-shard
// in-memory leases of allocBatch ids instead of bumping the persistent
// superblock counter once per id. The old path cost one superblock COW
// and full re-marshal per allocation — on the commit hot path, under
// the shard's writer mutex. With leases the common allocation touches
// nothing persistent at all.
//
// Correctness rests on one invariant, re-asserted on EVERY allocation
// (not just at lease time): the persisted counter must cover the whole
// lease before the allocating transaction commits. A transaction that
// takes a lease stages SetCounter(limit); if that transaction aborts,
// its rollback restores the old counter while the in-memory lease
// survives — and the next transaction allocating from the lease finds
// Counter < limit and re-stages the cover, which then commits with it.
// So no committed id is ever above the persisted counter, and a crash
// can only leak up to allocBatch ids per shard (ids need uniqueness,
// not density). The stamp clock (newStamp) is untouched: stamps order
// versions across shards and keep their exact pre-lease semantics.
package core

import (
	"sync"
	"sync/atomic"
)

// allocBatch is the lease size: how many ids a shard reserves from the
// persistent counter per superblock touch.
const allocBatch = 64

// allocLease is one counter's leased range on one shard. next is the
// last id handed out, limit the lease's inclusive high-water mark; the
// lease is empty when next == limit.
type allocLease struct {
	next  uint64
	limit uint64
}

// shardAlloc is one shard's allocator state. Allocation is serialised
// by the shard's writer mutex, but reset() runs from whichever
// goroutine aborted — possibly a DIFFERENT shard's writer, with this
// shard's writer mid-allocation — so the lease pair has its own mutex.
// It is uncontended on the allocation hot path (the only other taker
// is the rare abort-time reset); the counters are atomic so Stats can
// read them from anywhere.
type shardAlloc struct {
	mu     sync.Mutex    // guards lease against abort-time reset
	lease  [2]allocLease // indexed by ctrOID / ctrVID
	leases atomic.Uint64 // leases taken (superblock touches saved elsewhere)
	ids    atomic.Uint64 // ids handed out
}

// allocState holds every shard's allocator, growing like heapSpace when
// a reshard adds physical shards.
type allocState struct {
	mu     sync.Mutex
	shards []*shardAlloc
}

// take hands out shard s's allocator, growing the slice under the lock;
// use is serialised by s's writer mutex, exactly like takeHeapSpace.
func (a *allocState) take(s int) *shardAlloc {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.shards) <= s {
		a.shards = append(a.shards, &shardAlloc{})
	}
	sa := a.shards[s]
	if sa == nil {
		sa = &shardAlloc{}
		a.shards[s] = sa
	}
	return sa
}

// reset drops every lease so the next allocation re-leases from the
// persisted counter. Called after aborts alongside resetHeapSpaces:
// always safe (the persisted counter covers every committed id, so a
// fresh lease can never re-issue one), at worst leaking a partial
// lease.
func (a *allocState) reset() {
	a.mu.Lock()
	for _, sa := range a.shards {
		if sa != nil {
			sa.mu.Lock()
			sa.lease[0] = allocLease{}
			sa.lease[1] = allocLease{}
			sa.mu.Unlock()
		}
	}
	a.mu.Unlock()
}

// stats sums leases taken and ids handed out across shards.
func (a *allocState) stats() (leases, ids uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, sa := range a.shards {
		if sa != nil {
			leases += sa.leases.Load()
			ids += sa.ids.Load()
		}
	}
	return leases, ids
}

// shardStats reads one shard's allocator counters (zero if the shard
// has never allocated).
func (a *allocState) shardStats(s int) (leases, ids uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s < len(a.shards) && a.shards[s] != nil {
		return a.shards[s].leases.Load(), a.shards[s].ids.Load()
	}
	return 0, 0
}

// AllocStats sums allocator leases taken and ids handed out across
// shards.
func (e *Engine) AllocStats() (leases, ids uint64) {
	return e.alloc.stats()
}

// AllocShardStats reads one shard's allocator counters.
func (e *Engine) AllocShardStats(s int) (leases, ids uint64) {
	return e.alloc.shardStats(s)
}

// shardAlloc resolves (and caches) this shard's allocator so repeated
// allocations in one transaction skip the registry lock.
func (tx *shardTx) shardAlloc() *shardAlloc {
	if tx.al == nil {
		tx.al = tx.e.alloc.take(tx.s)
	}
	return tx.al
}

// allocID mints the next id for counter ctr (ctrOID or ctrVID) from the
// shard's lease, re-leasing from the persisted counter when the lease
// is dry and re-asserting the cover invariant described in the package
// comment.
func (tx *shardTx) allocID(ctr int) uint64 {
	sa := tx.shardAlloc()
	sa.mu.Lock()
	l := &sa.lease[ctr]
	if l.next >= l.limit {
		hw := tx.st.Counter(ctr)
		l.next, l.limit = hw, hw+allocBatch
		sa.leases.Add(1)
		if tx.e.m != nil {
			tx.e.m.AllocLeases.Inc()
		}
	}
	l.next++
	id := l.next
	if tx.st.Counter(ctr) < l.limit {
		tx.st.SetCounter(ctr, l.limit)
	}
	sa.mu.Unlock()
	sa.ids.Add(1)
	if tx.e.m != nil {
		tx.e.m.AllocIDs.Inc()
	}
	return id
}
