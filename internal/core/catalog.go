package core

import (
	"encoding/binary"
	"fmt"

	"ode/internal/oid"
)

// Catalog key prefixes. The catalog tree maps type names to ids and back;
// extents live in their own tree keyed by (typeid, oid).
const (
	catByName = "n:" // n:<name> → u32 type id
	catByID   = "i:" // i:<id BE> → name
)

// catalog counter slot for type ids (kept separate from engine counters;
// slot 5 of the superblock).
const ctrTypeID = 5

func catNameKey(name string) []byte { return append([]byte(catByName), name...) }

func catIDKey(t oid.TypeID) []byte {
	b := make([]byte, 2, 6)
	copy(b, catByID)
	return binary.BigEndian.AppendUint32(b, uint32(t))
}

// RegisterType returns the TypeID for name, creating it on first use.
// Registration is idempotent: the same name always maps to the same id
// for the lifetime of the database.
func (tx *shardTx) RegisterType(name string) (oid.TypeID, error) {
	if name == "" {
		return oid.NilType, fmt.Errorf("ode: empty type name")
	}
	raw, ok, err := tx.catalog.Get(catNameKey(name))
	if err != nil {
		return oid.NilType, err
	}
	if ok {
		return oid.TypeID(binary.BigEndian.Uint32(raw)), nil
	}
	t := oid.TypeID(tx.st.NextCounter(ctrTypeID))
	var idv [4]byte
	binary.BigEndian.PutUint32(idv[:], uint32(t))
	if err := tx.catalog.Put(catNameKey(name), idv[:]); err != nil {
		return oid.NilType, err
	}
	if err := tx.catalog.Put(catIDKey(t), []byte(name)); err != nil {
		return oid.NilType, err
	}
	tx.saveRoots()
	return t, nil
}

// RegisterType is the self-transacting convenience form for callers
// outside a transaction. An existing registration is resolved under a
// read snapshot so it works on read-only databases; only a genuinely
// new name opens a write transaction.
func (e *Engine) RegisterType(name string) (t oid.TypeID, err error) {
	var ok bool
	err = e.Read(func(tx *Tx) error {
		t, ok, err = tx.LookupType(name)
		return err
	})
	if err != nil || ok {
		return t, err
	}
	err = e.Write(func(tx *Tx) error {
		t, err = tx.RegisterType(name)
		return err
	})
	return t, err
}

// LookupType returns the TypeID for a registered name.
func (tx *shardTx) LookupType(name string) (oid.TypeID, bool, error) {
	raw, ok, err := tx.catalog.Get(catNameKey(name))
	if err != nil || !ok {
		return oid.NilType, false, err
	}
	return oid.TypeID(binary.BigEndian.Uint32(raw)), true, nil
}

// TypeName returns the registered name of t.
func (tx *shardTx) TypeName(t oid.TypeID) (string, bool, error) {
	raw, ok, err := tx.catalog.Get(catIDKey(t))
	if err != nil || !ok {
		return "", false, err
	}
	return string(raw), true, nil
}

// typeExists reports whether t is a registered type id.
func (tx *shardTx) typeExists(t oid.TypeID) (bool, error) {
	_, ok, err := tx.catalog.Get(catIDKey(t))
	return ok, err
}

// Types lists all registered type names in name order.
func (tx *shardTx) Types() ([]string, error) {
	var out []string
	err := tx.catalog.AscendPrefix([]byte(catByName), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(catByName):]))
		return true, nil
	})
	return out, err
}

// Extent calls fn for every object of type t in oid order — O++'s
// "for x in Extent" iteration over a persistent set. Iteration stops
// early when fn returns false.
func (tx *shardTx) Extent(t oid.TypeID, fn func(o oid.OID) (bool, error)) error {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(t))
	return tx.extent.AscendPrefix(prefix[:], func(k, _ []byte) (bool, error) {
		return fn(oid.OID(binary.BigEndian.Uint64(k[4:12])))
	})
}

// ExtentCount returns the number of objects of type t.
func (tx *shardTx) ExtentCount(t oid.TypeID) (int, error) {
	n := 0
	err := tx.Extent(t, func(oid.OID) (bool, error) { n++; return true, nil })
	return n, err
}

// extentNext returns the smallest oid of type t strictly greater than
// after (or the smallest overall when first is true), reading a single
// key from the extent tree. It is the per-shard cursor the router's
// k-way Extent merge advances: one O(log n) descent per step, so a
// cross-shard extent scan streams in oid order with O(shards)
// buffering and keeps early termination.
func (tx *shardTx) extentNext(t oid.TypeID, after oid.OID, first bool) (o oid.OID, ok bool, err error) {
	var from [12]byte
	binary.BigEndian.PutUint32(from[0:4], uint32(t))
	if !first {
		if uint64(after) == ^uint64(0) {
			return 0, false, nil // no greater oid exists
		}
		binary.BigEndian.PutUint64(from[4:12], uint64(after)+1)
	}
	var to []byte
	if uint32(t) != ^uint32(0) {
		var end [4]byte
		binary.BigEndian.PutUint32(end[:], uint32(t)+1)
		to = end[:]
	}
	err = tx.extent.Ascend(from[:], to, func(k, _ []byte) (bool, error) {
		o = oid.OID(binary.BigEndian.Uint64(k[4:12]))
		ok = true
		return false, nil
	})
	return o, ok, err
}

// Self-transacting convenience forms for callers outside a transaction
// (shell, dump tools); each runs one read snapshot.

// LookupType returns the TypeID for a registered name.
func (e *Engine) LookupType(name string) (t oid.TypeID, ok bool, err error) {
	err = e.Read(func(tx *Tx) error {
		t, ok, err = tx.LookupType(name)
		return err
	})
	return t, ok, err
}

// TypeName returns the registered name of t.
func (e *Engine) TypeName(t oid.TypeID) (name string, ok bool, err error) {
	err = e.Read(func(tx *Tx) error {
		name, ok, err = tx.TypeName(t)
		return err
	})
	return name, ok, err
}

// Types lists all registered type names in name order.
func (e *Engine) Types() (out []string, err error) {
	err = e.Read(func(tx *Tx) error {
		out, err = tx.Types()
		return err
	})
	return out, err
}
