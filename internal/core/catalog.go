package core

import (
	"encoding/binary"
	"fmt"

	"ode/internal/oid"
)

// Catalog key prefixes. The catalog tree maps type names to ids and back;
// extents live in their own tree keyed by (typeid, oid).
const (
	catByName = "n:" // n:<name> → u32 type id
	catByID   = "i:" // i:<id BE> → name
)

// catalog counter slot for type ids (kept separate from engine counters;
// slot 5 of the superblock).
const ctrTypeID = 5

func catNameKey(name string) []byte { return append([]byte(catByName), name...) }

func catIDKey(t oid.TypeID) []byte {
	b := make([]byte, 2, 6)
	copy(b, catByID)
	return binary.BigEndian.AppendUint32(b, uint32(t))
}

// RegisterType returns the TypeID for name, creating it on first use.
// Registration is idempotent: the same name always maps to the same id
// for the lifetime of the database.
func (e *Engine) RegisterType(name string) (oid.TypeID, error) {
	if name == "" {
		return oid.NilType, fmt.Errorf("ode: empty type name")
	}
	raw, ok, err := e.catalog.Get(catNameKey(name))
	if err != nil {
		return oid.NilType, err
	}
	if ok {
		return oid.TypeID(binary.BigEndian.Uint32(raw)), nil
	}
	var t oid.TypeID
	err = e.Write(func() error {
		// Re-check inside the transaction (a concurrent caller may have
		// registered it between our read and the lock).
		raw, ok, err := e.catalog.Get(catNameKey(name))
		if err != nil {
			return err
		}
		if ok {
			t = oid.TypeID(binary.BigEndian.Uint32(raw))
			return nil
		}
		t = oid.TypeID(e.st.NextCounter(ctrTypeID))
		var idv [4]byte
		binary.BigEndian.PutUint32(idv[:], uint32(t))
		if err := e.catalog.Put(catNameKey(name), idv[:]); err != nil {
			return err
		}
		if err := e.catalog.Put(catIDKey(t), []byte(name)); err != nil {
			return err
		}
		e.saveRoots()
		return nil
	})
	return t, err
}

// LookupType returns the TypeID for a registered name.
func (e *Engine) LookupType(name string) (oid.TypeID, bool, error) {
	raw, ok, err := e.catalog.Get(catNameKey(name))
	if err != nil || !ok {
		return oid.NilType, false, err
	}
	return oid.TypeID(binary.BigEndian.Uint32(raw)), true, nil
}

// TypeName returns the registered name of t.
func (e *Engine) TypeName(t oid.TypeID) (string, bool, error) {
	raw, ok, err := e.catalog.Get(catIDKey(t))
	if err != nil || !ok {
		return "", false, err
	}
	return string(raw), true, nil
}

// typeExists reports whether t is a registered type id.
func (e *Engine) typeExists(t oid.TypeID) (bool, error) {
	_, ok, err := e.catalog.Get(catIDKey(t))
	return ok, err
}

// Types lists all registered type names in name order.
func (e *Engine) Types() ([]string, error) {
	var out []string
	err := e.catalog.AscendPrefix([]byte(catByName), func(k, _ []byte) (bool, error) {
		out = append(out, string(k[len(catByName):]))
		return true, nil
	})
	return out, err
}

// Extent calls fn for every object of type t in oid order — O++'s
// "for x in Extent" iteration over a persistent set. Iteration stops
// early when fn returns false.
func (e *Engine) Extent(t oid.TypeID, fn func(o oid.OID) (bool, error)) error {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(t))
	return e.extent.AscendPrefix(prefix[:], func(k, _ []byte) (bool, error) {
		return fn(oid.OID(binary.BigEndian.Uint64(k[4:12])))
	})
}

// ExtentCount returns the number of objects of type t.
func (e *Engine) ExtentCount(t oid.TypeID) (int, error) {
	n := 0
	err := e.Extent(t, func(oid.OID) (bool, error) { n++; return true, nil })
	return n, err
}
