package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ode/internal/oid"
	"ode/internal/txn"
)

// newEngine creates an engine over a fresh temp database.
func newEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	mgr, err := txn.Create(t.TempDir(), txn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	e, err := New(mgr, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// w runs fn in a write transaction and fails the test on error.
func w(t testing.TB, e *Engine, fn func(tx *Tx) error) {
	t.Helper()
	if err := e.Write(fn); err != nil {
		t.Fatal(err)
	}
}

func mustType(t testing.TB, e *Engine, name string) oid.TypeID {
	t.Helper()
	id, err := e.RegisterType(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestCreateReadUpdate(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "Part")
	var o oid.OID
	var v0 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("v0 content"))
		return err
	})
	if o.IsNil() || v0.IsNil() {
		t.Fatal("nil ids")
	}
	w(t, e, func(tx *Tx) error {
		content, latest, err := tx.ReadLatest(o)
		if err != nil {
			return err
		}
		if string(content) != "v0 content" || latest != v0 {
			t.Fatalf("latest: %q %v", content, latest)
		}
		// In-place update does NOT create a version (version
		// orthogonality: unversioned objects stay unversioned).
		if _, err := tx.UpdateLatest(o, []byte("edited")); err != nil {
			return err
		}
		n, err := tx.VersionCount(o)
		if err != nil {
			return err
		}
		if n != 1 {
			t.Fatalf("update created a version: count=%d", n)
		}
		content, _, err = tx.ReadLatest(o)
		if err != nil || string(content) != "edited" {
			t.Fatalf("after update: %q %v", content, err)
		}
		return nil
	})
}

func TestCreateUnregisteredTypeFails(t *testing.T) {
	e := newEngine(t, Options{})
	err := e.Write(func(tx *Tx) error {
		_, _, err := tx.Create(oid.TypeID(999), []byte("x"))
		return err
	})
	if !errors.Is(err, ErrNoType) {
		t.Fatalf("want ErrNoType, got %v", err)
	}
}

func TestRegisterTypeIdempotent(t *testing.T) {
	e := newEngine(t, Options{})
	a := mustType(t, e, "Part")
	b := mustType(t, e, "Part")
	c := mustType(t, e, "Other")
	if a != b {
		t.Fatalf("same name different ids: %v %v", a, b)
	}
	if a == c {
		t.Fatalf("different names same id")
	}
	name, ok, err := e.TypeName(a)
	if err != nil || !ok || name != "Part" {
		t.Fatalf("TypeName: %q %v %v", name, ok, err)
	}
	names, err := e.Types()
	if err != nil || len(names) != 2 {
		t.Fatalf("Types: %v %v", names, err)
	}
}

// TestGenericVsSpecificBinding reproduces the paper's core semantic
// claim (§3): an object id dynamically binds to the latest version; a
// version id statically pins one version.
func TestGenericVsSpecificBinding(t *testing.T) {
	for _, policy := range []PayloadPolicy{FullCopy, DeltaChain} {
		t.Run(fmt.Sprintf("policy%d", policy), func(t *testing.T) {
			e := newEngine(t, Options{Policy: policy})
			ty := mustType(t, e, "Doc")
			var o oid.OID
			var v0, v1 oid.VID
			w(t, e, func(tx *Tx) error {
				var err error
				o, v0, err = tx.Create(ty, []byte("original"))
				if err != nil {
					return err
				}
				v1, err = tx.NewVersion(o)
				if err != nil {
					return err
				}
				return tx.UpdateVersion(o, v1, []byte("revised"))
			})
			w(t, e, func(tx *Tx) error {
				// Generic reference (oid) now binds to v1.
				content, latest, err := tx.ReadLatest(o)
				if err != nil {
					return err
				}
				if latest != v1 || string(content) != "revised" {
					t.Fatalf("generic deref: %v %q", latest, content)
				}
				// Specific reference still sees the old state.
				old, err := tx.ReadVersion(o, v0)
				if err != nil {
					return err
				}
				if string(old) != "original" {
					t.Fatalf("specific deref: %q", old)
				}
				return nil
			})
		})
	}
}

func TestTemporalAndDerivedFromMaintenance(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0, v1, v2, v3 oid.VID
	// Reproduce the paper's §4 sequence: v1 := newversion(p);
	// v2 := newversion(v0); v3 := newversion(v1).
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("root"))
		if err != nil {
			return err
		}
		if v1, err = tx.NewVersion(o); err != nil { // from latest = v0
			return err
		}
		if v2, err = tx.NewVersionFrom(o, v0); err != nil { // alternative
			return err
		}
		if v3, err = tx.NewVersionFrom(o, v1); err != nil {
			return err
		}
		return nil
	})
	w(t, e, func(tx *Tx) error {
		// Derived-from tree: v0 → {v1, v2}; v1 → {v3}.
		check := func(v, wantD oid.VID) {
			d, err := tx.Dprev(o, v)
			if err != nil || d != wantD {
				t.Fatalf("Dprev(%v) = %v, %v; want %v", v, d, err, wantD)
			}
		}
		check(v1, v0)
		check(v2, v0)
		check(v3, v1)
		if d, _ := tx.Dprev(o, v0); !d.IsNil() {
			t.Fatalf("root Dprev = %v", d)
		}
		kids, err := tx.DChildren(o, v0)
		if err != nil || len(kids) != 2 || kids[0] != v1 || kids[1] != v2 {
			t.Fatalf("DChildren(v0) = %v, %v", kids, err)
		}
		// Temporal chain is creation order regardless of derivation:
		// v0 ·▶ v1 ·▶ v2 ·▶ v3.
		order := []oid.VID{v0, v1, v2, v3}
		for i := 1; i < len(order); i++ {
			tp, err := tx.Tprev(o, order[i])
			if err != nil || tp != order[i-1] {
				t.Fatalf("Tprev(%v) = %v, %v", order[i], tp, err)
			}
			tn, err := tx.Tnext(o, order[i-1])
			if err != nil || tn != order[i] {
				t.Fatalf("Tnext(%v) = %v, %v", order[i-1], tn, err)
			}
		}
		if tp, _ := tx.Tprev(o, v0); !tp.IsNil() {
			t.Fatal("oldest version has a Tprev")
		}
		if tn, _ := tx.Tnext(o, v3); !tn.IsNil() {
			t.Fatal("latest version has a Tnext")
		}
		// The object id binds to v3 (most recently created, even though
		// it was derived from v1, not from the previous latest v2).
		latest, err := tx.Latest(o)
		if err != nil || latest != v3 {
			t.Fatalf("latest = %v, %v", latest, err)
		}
		// Version history of v3 (paper §4.4): v3, v1, v0.
		hist, err := tx.History(o, v3)
		if err != nil || len(hist) != 3 || hist[0] != v3 || hist[1] != v1 || hist[2] != v0 {
			t.Fatalf("history = %v, %v", hist, err)
		}
		// Leaves (alternatives' tips): v2 and v3.
		leaves, err := tx.Leaves(o)
		if err != nil || len(leaves) != 2 || leaves[0] != v2 || leaves[1] != v3 {
			t.Fatalf("leaves = %v, %v", leaves, err)
		}
		// Temporal enumeration.
		vs, err := tx.Versions(o)
		if err != nil || len(vs) != 4 {
			t.Fatalf("versions = %v, %v", vs, err)
		}
		for i := range order {
			if vs[i] != order[i] {
				t.Fatalf("versions[%d] = %v want %v", i, vs[i], order[i])
			}
		}
		return nil
	})
}

func TestDeleteVersionSplices(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0, v1, v2, v3 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("r"))
		if err != nil {
			return err
		}
		v1, _ = tx.NewVersion(o)
		v2, _ = tx.NewVersionFrom(o, v1)
		v3, _ = tx.NewVersionFrom(o, v1)
		return nil
	})
	// Delete the middle version v1: v2 and v3 must re-parent to v0, and
	// the temporal chain v0 ·▶ v2 ·▶ v3 must close over the gap.
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, v1) })
	w(t, e, func(tx *Tx) error {
		if _, err := tx.ReadVersion(o, v1); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("deleted version readable: %v", err)
		}
		for _, v := range []oid.VID{v2, v3} {
			d, err := tx.Dprev(o, v)
			if err != nil || d != v0 {
				t.Fatalf("splice: Dprev(%v) = %v, %v", v, d, err)
			}
		}
		tp, err := tx.Tprev(o, v2)
		if err != nil || tp != v0 {
			t.Fatalf("temporal splice: Tprev(v2) = %v, %v", tp, err)
		}
		tn, err := tx.Tnext(o, v0)
		if err != nil || tn != v2 {
			t.Fatalf("temporal splice: Tnext(v0) = %v, %v", tn, err)
		}
		n, _ := tx.VersionCount(o)
		if n != 3 {
			t.Fatalf("count = %d", n)
		}
		return nil
	})
	// Deleting the latest re-binds the object id to its temporal
	// predecessor.
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, v3) })
	w(t, e, func(tx *Tx) error {
		latest, err := tx.Latest(o)
		if err != nil || latest != v2 {
			t.Fatalf("latest after delete = %v, %v", latest, err)
		}
		return nil
	})
}

func TestDeleteSoleVersionDeletesObject(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("only"))
		return err
	})
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, v0) })
	w(t, e, func(tx *Tx) error {
		if ok, _ := tx.Exists(o); ok {
			t.Fatal("object survived deletion of its only version")
		}
		n, _ := tx.ExtentCount(ty)
		if n != 0 {
			t.Fatalf("extent count = %d", n)
		}
		return nil
	})
}

func TestDeleteObjectRemovesEverything(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	ty := mustType(t, e, "T")
	var o, other oid.OID
	w(t, e, func(tx *Tx) error {
		var err error
		o, _, err = tx.Create(ty, bytes.Repeat([]byte("x"), 1000))
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			if err := tx.UpdateVersion(o, v, bytes.Repeat([]byte{byte(i)}, 1000)); err != nil {
				return err
			}
		}
		other, _, err = tx.Create(ty, []byte("survivor"))
		return err
	})
	before := e.Stats()
	w(t, e, func(tx *Tx) error { return tx.DeleteObject(o) })
	after := e.Stats()
	if after.Objects != before.Objects-1 {
		t.Fatalf("objects %d -> %d", before.Objects, after.Objects)
	}
	if after.Versions != before.Versions-6 {
		t.Fatalf("versions %d -> %d", before.Versions, after.Versions)
	}
	w(t, e, func(tx *Tx) error {
		if ok, _ := tx.Exists(o); ok {
			t.Fatal("object still exists")
		}
		if _, err := tx.Owner(oid.VID(2)); err == nil {
			t.Fatal("vid index entry survived")
		}
		content, _, err := tx.ReadLatest(other)
		if err != nil || string(content) != "survivor" {
			t.Fatalf("unrelated object damaged: %q %v", content, err)
		}
		n, _ := tx.ExtentCount(ty)
		if n != 1 {
			t.Fatalf("extent count = %d", n)
		}
		return nil
	})
}

func TestAsOf(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var vids []oid.VID
	var stamps []oid.Stamp
	w(t, e, func(tx *Tx) error {
		var err error
		var v oid.VID
		o, v, err = tx.Create(ty, []byte("s0"))
		if err != nil {
			return err
		}
		vids = append(vids, v)
		info, _ := tx.Info(o, v)
		stamps = append(stamps, info.Stamp)
		for i := 1; i < 6; i++ {
			v, err = tx.NewVersion(o)
			if err != nil {
				return err
			}
			vids = append(vids, v)
			info, _ := tx.Info(o, v)
			stamps = append(stamps, info.Stamp)
		}
		return nil
	})
	w(t, e, func(tx *Tx) error {
		for i, s := range stamps {
			got, ok, err := tx.AsOf(o, s)
			if err != nil || !ok || got != vids[i] {
				t.Fatalf("AsOf(exact %d) = %v, %v, %v", i, got, ok, err)
			}
			walk, ok2, err2 := tx.AsOfWalk(o, s)
			if err2 != nil || !ok2 || walk != got {
				t.Fatalf("AsOfWalk disagrees at %d: %v vs %v", i, walk, got)
			}
		}
		// Before the first version: nothing.
		if _, ok, _ := tx.AsOf(o, stamps[0]-1); ok {
			t.Fatal("AsOf before creation returned a version")
		}
		// Far future: the latest.
		got, ok, _ := tx.AsOf(o, stamps[len(stamps)-1]+1000)
		if !ok || got != vids[len(vids)-1] {
			t.Fatalf("AsOf(future) = %v, %v", got, ok)
		}
		return nil
	})
}

func TestDeltaChainContentFidelity(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain, MaxChain: 4})
	ty := mustType(t, e, "Blob")
	rng := rand.New(rand.NewSource(42))
	var o oid.OID
	contents := map[oid.VID][]byte{}
	w(t, e, func(tx *Tx) error {
		base := make([]byte, 2048)
		rng.Read(base)
		var err error
		var v oid.VID
		o, v, err = tx.Create(ty, base)
		if err != nil {
			return err
		}
		contents[v] = append([]byte(nil), base...)
		cur := append([]byte(nil), base...)
		// A long linear chain with edits: crosses several keyframes.
		for i := 0; i < 20; i++ {
			v, err = tx.NewVersion(o)
			if err != nil {
				return err
			}
			cur = append([]byte(nil), cur...)
			cur[rng.Intn(len(cur))] ^= byte(rng.Intn(255) + 1)
			if err := tx.UpdateVersion(o, v, cur); err != nil {
				return err
			}
			contents[v] = append([]byte(nil), cur...)
		}
		return nil
	})
	w(t, e, func(tx *Tx) error {
		for v, want := range contents {
			got, err := tx.ReadVersion(o, v)
			if err != nil {
				t.Fatalf("read %v: %v", v, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("content drift at %v", v)
			}
			info, err := tx.Info(o, v)
			if err != nil {
				return err
			}
			if info.ChainDepth > 4 {
				t.Fatalf("chain depth %d exceeds MaxChain", info.ChainDepth)
			}
		}
		return nil
	})
}

func TestUpdateParentDoesNotCorruptDeltaChildren(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	ty := mustType(t, e, "Blob")
	var o oid.OID
	var v0, v1 oid.VID
	childContent := []byte("child content derived from parent .....................")
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("parent content ........................................"))
		if err != nil {
			return err
		}
		v1, err = tx.NewVersion(o)
		if err != nil {
			return err
		}
		return tx.UpdateVersion(o, v1, childContent)
	})
	// Mutating the parent must not change the child's materialised
	// content even though the child may be stored as a delta against it.
	w(t, e, func(tx *Tx) error {
		return tx.UpdateVersion(o, v0, []byte("REWRITTEN"))
	})
	w(t, e, func(tx *Tx) error {
		got, err := tx.ReadVersion(o, v1)
		if err != nil || !bytes.Equal(got, childContent) {
			t.Fatalf("child corrupted: %q %v", got, err)
		}
		p, err := tx.ReadVersion(o, v0)
		if err != nil || string(p) != "REWRITTEN" {
			t.Fatalf("parent: %q %v", p, err)
		}
		return nil
	})
}

func TestDeleteDeltaBasePreservesChildren(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	ty := mustType(t, e, "Blob")
	var o oid.OID
	var v0, v1, v2 oid.VID
	c2 := bytes.Repeat([]byte("z"), 500)
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, bytes.Repeat([]byte("a"), 500))
		if err != nil {
			return err
		}
		v1, err = tx.NewVersion(o)
		if err != nil {
			return err
		}
		if err := tx.UpdateVersion(o, v1, bytes.Repeat([]byte("b"), 500)); err != nil {
			return err
		}
		v2, err = tx.NewVersion(o)
		if err != nil {
			return err
		}
		return tx.UpdateVersion(o, v2, c2)
	})
	// v2 is (likely) a delta against v1; deleting v1 must rewrite v2 so
	// its content survives.
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, v1) })
	w(t, e, func(tx *Tx) error {
		got, err := tx.ReadVersion(o, v2)
		if err != nil || !bytes.Equal(got, c2) {
			t.Fatalf("orphaned delta child: %v", err)
		}
		d, err := tx.Dprev(o, v2)
		if err != nil || d != v0 {
			t.Fatalf("Dprev(v2) = %v, %v", d, err)
		}
		_ = v0
		return nil
	})
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	mgr, err := txn.Create(dir, txn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(mgr, Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	ty, err := e.RegisterType("Part")
	if err != nil {
		t.Fatal(err)
	}
	var o oid.OID
	var v0, v1 oid.VID
	if err := e.Write(func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("persisted-root"))
		if err != nil {
			return err
		}
		v1, err = tx.NewVersion(o)
		if err != nil {
			return err
		}
		return tx.UpdateVersion(o, v1, []byte("persisted-edit"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := txn.Open(dir, txn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	e2, err := New(mgr2, Options{Policy: DeltaChain})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Read(func(tx *Tx) error {
		content, latest, err := tx.ReadLatest(o)
		if err != nil || latest != v1 || string(content) != "persisted-edit" {
			t.Fatalf("reopen latest: %q %v %v", content, latest, err)
		}
		old, err := tx.ReadVersion(o, v0)
		if err != nil || string(old) != "persisted-root" {
			t.Fatalf("reopen v0: %q %v", old, err)
		}
		ty2, ok, err := e2.LookupType("Part")
		if err != nil || !ok || ty2 != ty {
			t.Fatalf("catalog lost: %v %v %v", ty2, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExtentIteration(t *testing.T) {
	e := newEngine(t, Options{})
	tyA := mustType(t, e, "A")
	tyB := mustType(t, e, "B")
	var as []oid.OID
	w(t, e, func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			o, _, err := tx.Create(tyA, []byte{byte(i)})
			if err != nil {
				return err
			}
			as = append(as, o)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := tx.Create(tyB, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	w(t, e, func(tx *Tx) error {
		var got []oid.OID
		if err := tx.Extent(tyA, func(o oid.OID) (bool, error) {
			got = append(got, o)
			return true, nil
		}); err != nil {
			return err
		}
		if len(got) != 5 {
			t.Fatalf("extent A: %v", got)
		}
		for i := range as {
			if got[i] != as[i] {
				t.Fatalf("extent order: %v vs %v", got, as)
			}
		}
		nB, _ := tx.ExtentCount(tyB)
		if nB != 3 {
			t.Fatalf("extent B count = %d", nB)
		}
		return nil
	})
}

func TestConfigurations(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "Rep")
	var schematic, vectors oid.OID
	var sV0, sV1 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		schematic, sV0, err = tx.Create(ty, []byte("schematic-v0"))
		if err != nil {
			return err
		}
		vectors, _, err = tx.Create(ty, []byte("vectors-v0"))
		if err != nil {
			return err
		}
		// Static binding pins schematic@v0; dynamic binding tracks
		// vectors' latest.
		return tx.SaveConfig("timing", []Binding{
			{Slot: "schematic", Obj: schematic, VID: sV0},
			{Slot: "vectors", Obj: vectors}, // dynamic
		})
	})
	// Evolve both objects.
	w(t, e, func(tx *Tx) error {
		var err error
		sV1, err = tx.NewVersion(schematic)
		if err != nil {
			return err
		}
		_, err = tx.NewVersion(vectors)
		return err
	})
	w(t, e, func(tx *Tx) error {
		rs, err := tx.ResolveConfig("timing")
		if err != nil {
			return err
		}
		if len(rs) != 2 {
			t.Fatalf("resolved %d bindings", len(rs))
		}
		// Sorted by slot: schematic then vectors.
		if rs[0].Slot != "schematic" || rs[0].VID != sV0 {
			t.Fatalf("static binding drifted: %+v", rs[0])
		}
		vLatest, _ := tx.Latest(vectors)
		if rs[1].Slot != "vectors" || rs[1].VID != vLatest {
			t.Fatalf("dynamic binding stale: %+v (latest %v)", rs[1], vLatest)
		}
		_ = sV1
		names, err := tx.Configs()
		if err != nil || len(names) != 1 || names[0] != "timing" {
			t.Fatalf("Configs: %v %v", names, err)
		}
		return nil
	})
	// Validation: static binding to a bogus version fails.
	err := e.Write(func(tx *Tx) error {
		return tx.SaveConfig("bad", []Binding{{Slot: "x", Obj: schematic, VID: oid.VID(9999)}})
	})
	if err == nil {
		t.Fatal("bogus static binding accepted")
	}
	w(t, e, func(tx *Tx) error { return tx.DeleteConfig("timing") })
	w(t, e, func(tx *Tx) error {
		if _, ok, _ := tx.GetConfig("timing"); ok {
			t.Fatal("config survived delete")
		}
		return nil
	})
}

func TestContexts(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "Doc")
	var o oid.OID
	var v0 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("baseline"))
		if err != nil {
			return err
		}
		if _, err := tx.NewVersion(o); err != nil {
			return err
		}
		return tx.SetContext("release-1", map[oid.OID]oid.VID{o: v0})
	})
	w(t, e, func(tx *Tx) error {
		// In the context, the generic reference resolves to the pinned
		// default; outside, to the latest.
		pinned, err := tx.ResolveInContext("release-1", o)
		if err != nil || pinned != v0 {
			t.Fatalf("context resolve: %v %v", pinned, err)
		}
		latest, _ := tx.Latest(o)
		free, err := tx.ResolveInContext("", o)
		if err != nil || free != latest {
			t.Fatalf("no-context resolve: %v %v", free, err)
		}
		// Unpinned object in a context falls back to latest.
		var o2 oid.OID
		_ = o2
		names, err := tx.Contexts()
		if err != nil || len(names) != 1 || names[0] != "release-1" {
			t.Fatalf("Contexts: %v %v", names, err)
		}
		if _, err := tx.ResolveInContext("nope", o); err == nil {
			t.Fatal("unknown context accepted")
		}
		return nil
	})
}

func TestAbortRestoresEngineConsistency(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	ty := mustType(t, e, "T")
	var o oid.OID
	w(t, e, func(tx *Tx) error {
		var err error
		o, _, err = tx.Create(ty, []byte("stable"))
		return err
	})
	boom := errors.New("boom")
	err := e.Write(func(tx *Tx) error {
		for i := 0; i < 10; i++ {
			v, err := tx.NewVersion(o)
			if err != nil {
				return err
			}
			if err := tx.UpdateVersion(o, v, bytes.Repeat([]byte{byte(i)}, 300)); err != nil {
				return err
			}
		}
		if _, _, err := tx.Create(ty, []byte("doomed")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	w(t, e, func(tx *Tx) error {
		n, err := tx.VersionCount(o)
		if err != nil || n != 1 {
			t.Fatalf("aborted versions visible: %d %v", n, err)
		}
		content, _, err := tx.ReadLatest(o)
		if err != nil || string(content) != "stable" {
			t.Fatalf("content after abort: %q %v", content, err)
		}
		cnt, _ := tx.ExtentCount(ty)
		if cnt != 1 {
			t.Fatalf("extent after abort: %d", cnt)
		}
		// Engine fully usable after abort.
		v, err := tx.NewVersion(o)
		if err != nil {
			return err
		}
		return tx.UpdateVersion(o, v, []byte("post-abort"))
	})
}

func TestOwnerReverseIndex(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0, v1 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("x"))
		if err != nil {
			return err
		}
		v1, err = tx.NewVersion(o)
		return err
	})
	w(t, e, func(tx *Tx) error {
		for _, v := range []oid.VID{v0, v1} {
			owner, err := tx.Owner(v)
			if err != nil || owner != o {
				t.Fatalf("Owner(%v) = %v, %v", v, owner, err)
			}
		}
		if _, err := tx.Owner(oid.VID(424242)); !errors.Is(err, ErrNoVersion) {
			t.Fatalf("phantom owner: %v", err)
		}
		return nil
	})
}

func TestLargeConfigSpillsToHeap(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "C")
	var bindings []Binding
	w(t, e, func(tx *Tx) error {
		for i := 0; i < 200; i++ {
			o, _, err := tx.Create(ty, []byte{byte(i)})
			if err != nil {
				return err
			}
			bindings = append(bindings, Binding{
				Slot: fmt.Sprintf("component-%03d-with-a-long-slot-name", i),
				Obj:  o,
			})
		}
		return tx.SaveConfig("big", bindings)
	})
	w(t, e, func(tx *Tx) error {
		got, ok, err := tx.GetConfig("big")
		if err != nil || !ok || len(got) != 200 {
			t.Fatalf("big config roundtrip: %d %v %v", len(got), ok, err)
		}
		rs, err := tx.ResolveConfig("big")
		if err != nil || len(rs) != 200 {
			t.Fatalf("resolve: %d %v", len(rs), err)
		}
		return nil
	})
	// Replacing a spilled config must not leak its heap record: replace
	// it many times and ensure the store does not balloon.
	var before uint64
	w(t, e, func(tx *Tx) error {
		before = e.Manager().Store().NumPages()
		return nil
	})
	for i := 0; i < 20; i++ {
		w(t, e, func(tx *Tx) error { return tx.SaveConfig("big", bindings) })
	}
	w(t, e, func(tx *Tx) error {
		if after := e.Manager().Store().NumPages(); after > before+4 {
			t.Fatalf("spilled config leaked pages: %d -> %d", before, after)
		}
		return tx.DeleteConfig("big")
	})
	w(t, e, func(tx *Tx) error {
		if _, ok, _ := tx.GetConfig("big"); ok {
			t.Fatal("config survived delete")
		}
		return nil
	})
}

func TestLargeContextSpillsToHeap(t *testing.T) {
	e := newEngine(t, Options{})
	ty := mustType(t, e, "C")
	defaults := map[oid.OID]oid.VID{}
	w(t, e, func(tx *Tx) error {
		for i := 0; i < 500; i++ {
			o, v, err := tx.Create(ty, []byte{byte(i)})
			if err != nil {
				return err
			}
			defaults[o] = v
		}
		return tx.SetContext("bigctx", defaults)
	})
	w(t, e, func(tx *Tx) error {
		got, ok, err := tx.GetContext("bigctx")
		if err != nil || !ok || len(got) != 500 {
			t.Fatalf("big context roundtrip: %d %v %v", len(got), ok, err)
		}
		return tx.DeleteContext("bigctx")
	})
}

func TestDeleteRootCreatesForest(t *testing.T) {
	// Deleting a root version with several children leaves a forest of
	// derivation trees; all traversals and invariants must still hold.
	e := newEngine(t, Options{})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0, v1, v2 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, []byte("root"))
		if err != nil {
			return err
		}
		v1, _ = tx.NewVersionFrom(o, v0)
		v2, _ = tx.NewVersionFrom(o, v0)
		return nil
	})
	w(t, e, func(tx *Tx) error { return tx.DeleteVersion(o, v0) })
	w(t, e, func(tx *Tx) error {
		// Both children become roots.
		for _, v := range []oid.VID{v1, v2} {
			d, err := tx.Dprev(o, v)
			if err != nil || !d.IsNil() {
				t.Fatalf("Dprev(%v) = %v, %v", v, d, err)
			}
		}
		// Both are also leaves (no children of their own).
		leaves, err := tx.Leaves(o)
		if err != nil || len(leaves) != 2 {
			t.Fatalf("leaves = %v, %v", leaves, err)
		}
		// Renderer handles the forest.
		out, err := tx.Render(o)
		if err != nil {
			return err
		}
		if !strings.Contains(out, "├── v2") || !strings.Contains(out, "└── v3") {
			t.Fatalf("forest render wrong:\n%s", out)
		}
		return tx.CheckObject(o)
	})
}

func TestInfoFields(t *testing.T) {
	e := newEngine(t, Options{Policy: DeltaChain})
	ty := mustType(t, e, "T")
	var o oid.OID
	var v0, v1 oid.VID
	w(t, e, func(tx *Tx) error {
		var err error
		o, v0, err = tx.Create(ty, bytes.Repeat([]byte("a"), 100))
		if err != nil {
			return err
		}
		v1, err = tx.NewVersion(o)
		return err
	})
	w(t, e, func(tx *Tx) error {
		i0, err := tx.Info(o, v0)
		if err != nil {
			return err
		}
		if i0.VID != v0 || !i0.Dprev.IsNil() || !i0.Tprev.IsNil() || i0.Tnext != v1 {
			t.Fatalf("i0 = %+v", i0)
		}
		if i0.Size != 100 || i0.Delta || i0.ChainDepth != 0 {
			t.Fatalf("i0 storage = %+v", i0)
		}
		i1, err := tx.Info(o, v1)
		if err != nil {
			return err
		}
		if i1.Dprev != v0 || i1.Tprev != v0 || !i1.Tnext.IsNil() {
			t.Fatalf("i1 = %+v", i1)
		}
		if !i1.Delta || i1.ChainDepth != 1 || i1.Size != 100 {
			t.Fatalf("i1 storage = %+v (expected shared payload)", i1)
		}
		if i1.Stamp <= i0.Stamp {
			t.Fatalf("stamps not increasing: %v %v", i0.Stamp, i1.Stamp)
		}
		return nil
	})
}
