// Tracer spans: structured per-transaction events delivered to a
// user-supplied hook through a bounded queue, so a slow, blocking or
// panicking tracer can never corrupt or stall a commit.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind identifies a span event (DESIGN.md §11 event taxonomy).
type SpanKind uint8

const (
	// SpanBegin: a write transaction was admitted (its txid assigned).
	SpanBegin SpanKind = iota + 1
	// SpanPrepare: fn ran and the transaction's WAL frames were staged
	// under the writer lock; Dur is the time spent there.
	SpanPrepare
	// SpanFsync: one group-commit WAL flush; Batch is the number of
	// transactions it covered, Dur the append+fsync time. Tx is zero —
	// the flush belongs to the batch, not one member.
	SpanFsync
	// SpanPublish: the transaction is durable and acknowledged; Dur is
	// the whole commit latency its writer observed.
	SpanPublish
	// SpanAbort: the transaction rolled back; Err carries the cause.
	SpanAbort
	// SpanCheckpoint: a checkpoint ran; Dur is flush + WAL reset time.
	SpanCheckpoint
)

// String returns the event name used in exposition and logs.
func (k SpanKind) String() string {
	switch k {
	case SpanBegin:
		return "begin"
	case SpanPrepare:
		return "prepare"
	case SpanFsync:
		return "fsync"
	case SpanPublish:
		return "publish"
	case SpanAbort:
		return "abort"
	case SpanCheckpoint:
		return "checkpoint"
	}
	return "unknown"
}

// SpanEvent is one structured trace event.
type SpanEvent struct {
	Kind  SpanKind
	Seq   uint64 // per-sink monotone sequence, assigned at emit
	Tx    uint64 // transaction id; 0 for batch- or manager-level events
	Dur   time.Duration
	Batch int    // SpanFsync: transactions covered by the flush
	Err   string // SpanAbort / failed SpanFsync: cause
}

// Tracer receives span events. Implementations run on the sink's
// consumer goroutine, never on a commit path: they may block or panic
// without affecting the engine (events are dropped instead).
type Tracer interface {
	TraceSpan(SpanEvent)
}

// DefaultTracerBuffer is the sink queue capacity when unconfigured.
const DefaultTracerBuffer = 1024

// closeGrace bounds how long Sink.Close waits for a tracer stuck
// inside TraceSpan before abandoning the consumer goroutine. A
// well-behaved tracer drains in microseconds; a pathological one must
// not be able to hang db.Close.
const closeGrace = time.Second

// Sink decouples the engine from the tracer: Emit is a non-blocking
// send into a bounded channel, a single consumer goroutine delivers to
// the tracer with panics recovered, and events past the bound are
// counted in dropped and discarded. A nil *Sink is inert.
type Sink struct {
	ch      chan SpanEvent
	stop    chan struct{}
	done    chan struct{}
	dropped *Counter
	seq     atomic.Uint64
	closed  atomic.Bool
	once    sync.Once
}

// NewSink starts a sink delivering to t. A nil tracer yields a nil
// sink (every method is nil-safe). capacity ≤ 0 means
// DefaultTracerBuffer. dropped, if non-nil, counts discarded events.
func NewSink(t Tracer, capacity int, dropped *Counter) *Sink {
	if t == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultTracerBuffer
	}
	s := &Sink{
		ch:      make(chan SpanEvent, capacity),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		dropped: dropped,
	}
	go s.consume(t)
	return s
}

// Emit enqueues an event, assigning its sequence number. It never
// blocks: when the queue is full the event is dropped and counted.
func (s *Sink) Emit(ev SpanEvent) {
	if s == nil || s.closed.Load() {
		return
	}
	ev.Seq = s.seq.Add(1)
	select {
	case s.ch <- ev:
	default:
		s.drop()
	}
}

func (s *Sink) drop() {
	if s.dropped != nil {
		s.dropped.Inc()
	}
}

// Close stops accepting events, drains what is buffered, and waits up
// to closeGrace for the consumer to finish. A tracer blocked inside
// TraceSpan forfeits the remaining queue; the goroutine is abandoned
// rather than allowed to hang the caller.
func (s *Sink) Close() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		s.closed.Store(true)
		close(s.stop)
	})
	select {
	case <-s.done:
	case <-time.After(closeGrace):
	}
}

// consume delivers queued events until stopped, then drains whatever
// is still buffered without blocking for more.
func (s *Sink) consume(t Tracer) {
	defer close(s.done)
	for {
		select {
		case ev := <-s.ch:
			s.deliver(t, ev)
		case <-s.stop:
			for {
				select {
				case ev := <-s.ch:
					s.deliver(t, ev)
				default:
					return
				}
			}
		}
	}
}

// deliver hands one event to the tracer, absorbing panics. A panicked
// delivery counts as dropped: the tracer did not observe the event.
func (s *Sink) deliver(t Tracer, ev SpanEvent) {
	defer func() {
		if recover() != nil {
			s.drop()
		}
	}()
	t.TraceSpan(ev)
}
