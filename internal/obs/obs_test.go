package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Load(); got != -2 {
		t.Fatalf("gauge = %d, want -2", got)
	}
}

// TestBucketBoundaries pins the bucket map at its edge cases: zero,
// exact power-of-two boundaries (the first value of each bucket), the
// value just below each boundary, and overflow into the last bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1<<10 - 1, 10},
		{1 << 10, 11},
		{1 << (NumBuckets - 2), NumBuckets - 1}, // first overflow value
		{math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's upper bound must itself land in that bucket, and
	// the next value in the next one.
	for i := 1; i < NumBuckets-1; i++ {
		u := BucketUpper(i)
		if got := bucketOf(u); got != i {
			t.Errorf("bucketOf(BucketUpper(%d)=%d) = %d", i, u, got)
		}
		if got := bucketOf(u + 1); got != i+1 {
			t.Errorf("bucketOf(BucketUpper(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d", BucketUpper(0))
	}
	if BucketUpper(NumBuckets-1) != math.MaxUint64 {
		t.Errorf("overflow bucket upper = %d", BucketUpper(NumBuckets-1))
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 5, 1024, math.MaxUint64} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Max != math.MaxUint64 {
		t.Fatalf("max = %d", s.Max)
	}
	wantSum := uint64(0 + 1 + 1 + 5 + 1024)
	wantSum += math.MaxUint64 // wraps, deliberately: sum is modular
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[3] != 1 || s.Counts[11] != 1 || s.Counts[NumBuckets-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Counts)
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-time.Second)
	h.ObserveDuration(3 * time.Nanosecond)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[2] != 1 {
		t.Fatalf("buckets = %v", s.Counts[:4])
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	h.Observe(100)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 100 {
			// Single sample: every quantile clamps to Max == the sample.
			t.Fatalf("Quantile(%v) = %d, want 100", q, got)
		}
	}
	if s.Mean() != 100 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

// refQuantile is the straightforward reference: the sample of rank
// ceil(q*n) in sorted order.
func refQuantile(sorted []uint64, q float64) uint64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketWidth is the width of the bucket containing v.
func bucketWidth(v uint64) uint64 {
	b := bucketOf(v)
	if b <= 0 {
		return 1
	}
	if b >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1 << uint(b-1) // bucket b spans [2^(b-1), 2^b)
}

// TestQuantilePropertyVsReference: across random seeds and
// distributions, the histogram's quantile estimate stays within one
// bucket width of the exact sample quantile, and never undershoots it.
func TestQuantilePropertyVsReference(t *testing.T) {
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 1.0}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(5000)
		samples := make([]uint64, n)
		var h Histogram
		for i := range samples {
			var v uint64
			switch seed % 3 {
			case 0: // uniform over a wide range
				v = uint64(rng.Int63n(1 << 40))
			case 1: // exponential-ish latencies around 1ms
				v = uint64(rng.ExpFloat64() * 1e6)
			default: // heavy repetition incl. zeros
				v = uint64(rng.Intn(16)) * uint64(rng.Intn(1024))
			}
			samples[i] = v
			h.Observe(v)
		}
		sorted := append([]uint64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s := h.Snapshot()
		for _, q := range quantiles {
			ref := refQuantile(sorted, q)
			got := s.Quantile(q)
			if got < ref {
				t.Fatalf("seed %d q=%v: estimate %d undershoots reference %d", seed, q, got, ref)
			}
			if got-ref >= bucketWidth(ref) {
				t.Fatalf("seed %d q=%v: estimate %d more than one bucket width above reference %d (width %d)",
					seed, q, got, ref, bucketWidth(ref))
			}
		}
	}
}

// TestMergeEqualsSequential: merging the snapshots of concurrent
// recorders must equal recording every sample into one histogram.
func TestMergeEqualsSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const parts = 8
		all := make([][]uint64, parts)
		for i := range all {
			vals := make([]uint64, 200+rng.Intn(200))
			for j := range vals {
				vals[j] = uint64(rng.Int63n(1 << 30))
			}
			all[i] = vals
		}

		// Concurrent: one histogram per goroutine, then merge.
		hs := make([]Histogram, parts)
		var wg sync.WaitGroup
		for i := range hs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, v := range all[i] {
					hs[i].Observe(v)
				}
			}(i)
		}
		wg.Wait()
		var merged HistSnapshot
		for i := range hs {
			merged.Merge(hs[i].Snapshot())
		}

		// Sequential: everything into one.
		var seq Histogram
		for _, vals := range all {
			for _, v := range vals {
				seq.Observe(v)
			}
		}
		want := seq.Snapshot()
		if merged != want {
			t.Fatalf("seed %d: merged snapshot differs from sequential", seed)
		}
	}
}

// TestConcurrentObserveSameHistogram: many goroutines into ONE
// histogram must lose nothing (the lock-free claim, run under -race).
func TestConcurrentObserveSameHistogram(t *testing.T) {
	var h Histogram
	const gs, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Int63n(1 << 20)))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != gs*per {
		t.Fatalf("count = %d, want %d", s.Count, gs*per)
	}
}

func TestPercentileShorthands(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.P50() < 50 || s.P95() < 95 || s.P99() < 99 {
		t.Fatalf("p50/p95/p99 = %d/%d/%d undershoot", s.P50(), s.P95(), s.P99())
	}
	if s.P99() > s.Max || s.Max != 100 {
		t.Fatalf("p99 %d > max %d", s.P99(), s.Max)
	}
}

func TestNewAndMean(t *testing.T) {
	m := New()
	m.PoolHits.Inc()
	if got := m.PoolHits.Load(); got != 1 {
		t.Fatalf("fresh registry counter: got %d", got)
	}
	var h Histogram
	if got := h.Snapshot().Mean(); got != 0 {
		t.Fatalf("empty mean: got %v", got)
	}
	h.Observe(2)
	h.Observe(4)
	if got := h.Snapshot().Mean(); got != 3 {
		t.Fatalf("mean: got %v, want 3", got)
	}
}
