// Prometheus-style text exposition. The helpers here render one
// metric family each; the ode package composes them into the full
// /metrics page (and odeshell's .metrics command reuses that).
package obs

import (
	"fmt"
	"io"
	"math"
)

// WriteCounter renders one counter family in exposition format.
func WriteCounter(w io.Writer, name, help string, v uint64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteGauge renders one gauge family.
func WriteGauge(w io.Writer, name, help string, v int64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteHistogram renders one histogram family with cumulative le
// buckets. Trailing empty buckets are elided (the +Inf bucket always
// closes the family), keeping the page readable without changing its
// meaning — cumulative counts are unaffected by absent empty tails.
func WriteHistogram(w io.Writer, name, help string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	last := -1
	for i, n := range s.Counts {
		if n > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last && i < NumBuckets-1; i++ {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
	return err
}

// LabeledUint is one series of a labeled counter/gauge family.
type LabeledUint struct {
	Label string
	V     uint64
}

// LabeledHist is one series of a labeled histogram family.
type LabeledHist struct {
	Label string
	S     HistSnapshot
}

// WriteCounterVec renders one counter family with a series per label
// value: name{label="v"} count.
func WriteCounterVec(w io.Writer, name, help, label string, series []LabeledUint) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, s.Label, s.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteGaugeVec renders one gauge family with a series per label value.
func WriteGaugeVec(w io.Writer, name, help, label string, series []LabeledUint) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, s.Label, s.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteHistogramVec renders one histogram family with a full bucket
// ladder per label value; every series line carries the label before
// its le bucket bound.
func WriteHistogramVec(w io.Writer, name, help, label string, series []LabeledHist) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	for _, ls := range series {
		s := ls.S
		last := -1
		for i, n := range s.Counts {
			if n > 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last && i < NumBuckets-1; i++ {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%d\"} %d\n", name, label, ls.Label, BucketUpper(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, ls.Label, s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %d\n%s_count{%s=%q} %d\n", name, label, ls.Label, s.Sum, name, label, ls.Label, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteFloatGauge renders a gauge with a float value (ratios, means).
func WriteFloatGauge(w io.Writer, name, help string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	return err
}
