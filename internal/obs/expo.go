// Prometheus-style text exposition. The helpers here render one
// metric family each; the ode package composes them into the full
// /metrics page (and odeshell's .metrics command reuses that).
package obs

import (
	"fmt"
	"io"
	"math"
)

// WriteCounter renders one counter family in exposition format.
func WriteCounter(w io.Writer, name, help string, v uint64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteGauge renders one gauge family.
func WriteGauge(w io.Writer, name, help string, v int64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	return err
}

// WriteHistogram renders one histogram family with cumulative le
// buckets. Trailing empty buckets are elided (the +Inf bucket always
// closes the family), keeping the page readable without changing its
// meaning — cumulative counts are unaffected by absent empty tails.
func WriteHistogram(w io.Writer, name, help string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	last := -1
	for i, n := range s.Counts {
		if n > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last && i < NumBuckets-1; i++ {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
	return err
}

// WriteFloatGauge renders a gauge with a float value (ratios, means).
func WriteFloatGauge(w io.Writer, name, help string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	return err
}
