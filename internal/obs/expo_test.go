package obs

import (
	"math"
	"strings"
	"testing"
)

func TestWriteCounterAndGauge(t *testing.T) {
	var b strings.Builder
	if err := WriteCounter(&b, "ode_commits_total", "Committed transactions.", 7); err != nil {
		t.Fatal(err)
	}
	if err := WriteGauge(&b, "ode_active_readers", "In-flight readers.", -1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloatGauge(&b, "ode_ratio", "A ratio.", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloatGauge(&b, "ode_nan", "NaN clamps to 0.", math.NaN()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ode_commits_total counter",
		"ode_commits_total 7",
		"# TYPE ode_active_readers gauge",
		"ode_active_readers -1",
		"ode_ratio 0.5",
		"ode_nan 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteHistogramCumulativeBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(6) // bucket 3 (le=7)
	var b strings.Builder
	if err := WriteHistogram(&b, "ode_commit_latency_ns", "Commit latency.", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ode_commit_latency_ns histogram",
		`ode_commit_latency_ns_bucket{le="0"} 1`,
		`ode_commit_latency_ns_bucket{le="1"} 3`,
		`ode_commit_latency_ns_bucket{le="3"} 3`, // empty bucket still cumulative
		`ode_commit_latency_ns_bucket{le="7"} 4`,
		`ode_commit_latency_ns_bucket{le="+Inf"} 4`,
		"ode_commit_latency_ns_sum 8",
		"ode_commit_latency_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets past the last non-empty one are elided.
	if strings.Contains(out, `le="15"`) {
		t.Fatalf("empty tail bucket not elided:\n%s", out)
	}
}

func TestWriteHistogramEmpty(t *testing.T) {
	var h Histogram
	var b strings.Builder
	if err := WriteHistogram(&b, "ode_empty", "Nothing yet.", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `ode_empty_bucket{le="+Inf"} 0`) || !strings.Contains(out, "ode_empty_count 0") {
		t.Fatalf("empty histogram exposition wrong:\n%s", out)
	}
}

func TestWriteVecFamilies(t *testing.T) {
	var b strings.Builder
	err := WriteCounterVec(&b, "ode_shard_commits_total", "Commits per shard.", "shard",
		[]LabeledUint{{Label: "0", V: 3}, {Label: "1", V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	err = WriteGaugeVec(&b, "ode_shard_wal_bytes", "WAL bytes per shard.", "shard",
		[]LabeledUint{{Label: "0", V: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	var h Histogram
	h.Observe(0)
	h.Observe(6)
	var empty Histogram
	err = WriteHistogramVec(&b, "ode_shard_commit_ns", "Commit latency per shard.", "shard",
		[]LabeledHist{{Label: "0", S: h.Snapshot()}, {Label: "1", S: empty.Snapshot()}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ode_shard_commits_total counter",
		`ode_shard_commits_total{shard="0"} 3`,
		`ode_shard_commits_total{shard="1"} 5`,
		"# TYPE ode_shard_wal_bytes gauge",
		`ode_shard_wal_bytes{shard="0"} 4096`,
		"# TYPE ode_shard_commit_ns histogram",
		`ode_shard_commit_ns_bucket{shard="0",le="0"} 1`,
		`ode_shard_commit_ns_bucket{shard="0",le="7"} 2`,
		`ode_shard_commit_ns_bucket{shard="0",le="+Inf"} 2`,
		`ode_shard_commit_ns_sum{shard="0"} 6`,
		`ode_shard_commit_ns_count{shard="0"} 2`,
		// An empty series still closes with its +Inf bucket.
		`ode_shard_commit_ns_bucket{shard="1",le="+Inf"} 0`,
		`ode_shard_commit_ns_count{shard="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The cumulative ladder elides empty tails per series too.
	if strings.Contains(out, `{shard="0",le="15"}`) || strings.Contains(out, `{shard="1",le="0"}`) {
		t.Fatalf("empty buckets not elided:\n%s", out)
	}
}
