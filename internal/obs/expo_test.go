package obs

import (
	"math"
	"strings"
	"testing"
)

func TestWriteCounterAndGauge(t *testing.T) {
	var b strings.Builder
	if err := WriteCounter(&b, "ode_commits_total", "Committed transactions.", 7); err != nil {
		t.Fatal(err)
	}
	if err := WriteGauge(&b, "ode_active_readers", "In-flight readers.", -1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloatGauge(&b, "ode_ratio", "A ratio.", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloatGauge(&b, "ode_nan", "NaN clamps to 0.", math.NaN()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ode_commits_total counter",
		"ode_commits_total 7",
		"# TYPE ode_active_readers gauge",
		"ode_active_readers -1",
		"ode_ratio 0.5",
		"ode_nan 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteHistogramCumulativeBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(6) // bucket 3 (le=7)
	var b strings.Builder
	if err := WriteHistogram(&b, "ode_commit_latency_ns", "Commit latency.", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ode_commit_latency_ns histogram",
		`ode_commit_latency_ns_bucket{le="0"} 1`,
		`ode_commit_latency_ns_bucket{le="1"} 3`,
		`ode_commit_latency_ns_bucket{le="3"} 3`, // empty bucket still cumulative
		`ode_commit_latency_ns_bucket{le="7"} 4`,
		`ode_commit_latency_ns_bucket{le="+Inf"} 4`,
		"ode_commit_latency_ns_sum 8",
		"ode_commit_latency_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets past the last non-empty one are elided.
	if strings.Contains(out, `le="15"`) {
		t.Fatalf("empty tail bucket not elided:\n%s", out)
	}
}

func TestWriteHistogramEmpty(t *testing.T) {
	var h Histogram
	var b strings.Builder
	if err := WriteHistogram(&b, "ode_empty", "Nothing yet.", h.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `ode_empty_bucket{le="+Inf"} 0`) || !strings.Contains(out, "ode_empty_count 0") {
		t.Fatalf("empty histogram exposition wrong:\n%s", out)
	}
}
